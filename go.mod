module aide

go 1.24
