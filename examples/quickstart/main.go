// Quickstart: the AIDE loop end to end, in one process.
//
// It stands up a synthetic web site, tracks it with w3newer, remembers a
// page with the snapshot facility, lets the page change, and renders the
// HtmlDiff merged page showing exactly what changed — the workflow of
// §6's Remember / Diff / History links.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"aide/internal/hotlist"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/tracker"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

func main() {
	// A simulated web and clock: September 1995, compressed.
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	client := webclient.New(web)

	page := web.Site("www.usenix.org").Page("/")
	page.Set(websim.USENIXSept)

	// --- 1. w3newer: what's new on my hotlist? -------------------------
	entries := []hotlist.Entry{{URL: "http://www.usenix.org/", Title: "USENIX Association"}}
	hist := hotlist.NewHistory()
	hist.Visit("http://www.usenix.org/", clock.Now()) // we just read it

	cfg, err := w3config.ParseString("Default 0\n")
	if err != nil {
		log.Fatal(err)
	}
	tr := tracker.New(client, cfg, hist, clock)

	results := tr.Run(context.Background(), entries)
	fmt.Printf("day 0:  %s -> %s\n", results[0].Entry.Title, results[0].Status)

	// --- 2. snapshot: remember the page --------------------------------
	dataDir, err := os.MkdirTemp("", "aide-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	fac, err := snapshot.New(dataDir, client, clock)
	if err != nil {
		log.Fatal(err)
	}
	const user = "you@example.com"
	res, err := fac.Remember(context.Background(), user, "http://www.usenix.org/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("        remembered as revision %s\n", res.Rev)

	// --- 3. five weeks pass; the page changes --------------------------
	web.Advance(35 * 24 * time.Hour)
	page.Set(websim.USENIXNov)

	results = tr.Run(context.Background(), entries)
	fmt.Printf("day 35: %s -> %s (modified %s)\n",
		results[0].Entry.Title, results[0].Status,
		results[0].LastModified.Format("Jan 2 2006"))

	// --- 4. HtmlDiff: see exactly what changed -------------------------
	diff, err := fac.DiffSinceSaved(context.Background(), user, "http://www.usenix.org/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("        HtmlDiff vs your saved revision %s: %d difference regions\n",
		diff.OldRev, diff.Stats.Differences)
	fmt.Printf("        (%d deleted, %d inserted, %d modified tokens)\n",
		diff.Stats.Deleted, diff.Stats.Inserted, diff.Stats.Modified)

	out := "quickstart_diff.html"
	if err := os.WriteFile(out, []byte(diff.HTML), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("        merged page written to %s — open it in a browser:\n", out)
	fmt.Println("        deleted text is struck out, new text is bold italic,")
	fmt.Println("        and red/green arrows chain the changes together.")
}
