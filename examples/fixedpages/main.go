// Fixed pages: the §8.2 community "What's New" service.
//
// A community of users shares interest in a fixed set of pages. The AIDE
// server polls them, archives every change automatically the moment it
// is detected, and publishes a generated What's-New page from which
// anyone can jump straight into HtmlDiff for the latest change — or use
// the History feature "to see earlier versions they may have missed".
//
// Run:
//
//	go run ./examples/fixedpages
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"aide/internal/aide"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

func main() {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	client := webclient.New(web)

	// The community's fixed set: three pages with different tempos.
	mosaic := web.Site("www.ncsa.uiuc.edu").Page("/whats-new.html")
	web.Evolve(mosaic, 24*time.Hour, websim.ReplaceGenerator("What's New in Mosaic", 300, 1))
	mobile := web.Site("snapple.cs.washington.edu:600").Page("/mobile/")
	web.Evolve(mobile, 48*time.Hour, websim.AppendGenerator("Mobile Computing", 2))
	faq := web.Site("www.usenix.org").Page("/faq.html")
	web.Evolve(faq, 7*24*time.Hour, websim.EditGenerator("USENIX FAQ", 8, 3))

	dataDir, err := os.MkdirTemp("", "aide-fixed-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	fac, err := snapshot.New(dataDir, client, clock)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := w3config.ParseString("Default 0\n")
	if err != nil {
		log.Fatal(err)
	}
	srv := aide.NewServer(fac, client, cfg, clock)
	srv.AddFixed("http://www.ncsa.uiuc.edu/whats-new.html", "What's New in Mosaic")
	srv.AddFixed("http://snapple.cs.washington.edu:600/mobile/", "Mobile Computing")
	srv.AddFixed("http://www.usenix.org/faq.html", "USENIX FAQ")

	// Two weeks of daily sweeps: every change is archived automatically.
	for day := 0; day < 14; day++ {
		web.Advance(24 * time.Hour)
		stats := srv.TrackAll(context.Background())
		if stats.NewVersions > 0 {
			fmt.Printf("day %2d: %d page(s) changed and were auto-archived\n", day+1, stats.NewVersions)
		}
	}

	// The community What's-New page.
	fmt.Println("\nWhat's New (community view, newest first):")
	for _, c := range srv.FixedChanges() {
		fmt.Printf("  %-24s changed %s, now at rev %s\n",
			c.Title, c.Changed.Format("Jan _2"), c.Rev)
	}
	if err := os.WriteFile("fixed_whatsnew.html", []byte(srv.WhatsNewHTML()), 0o644); err != nil {
		log.Fatal(err)
	}

	// History lets a user who was away see versions they missed.
	revs, _, err := fac.History("", "http://snapple.cs.washington.edu:600/mobile/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMobile Computing history: %d versions archived (one per change)\n", len(revs))
	if len(revs) >= 2 {
		diff, err := fac.DiffRevs("http://snapple.cs.washington.edu:600/mobile/",
			revs[len(revs)-1].Num, revs[0].Num)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("HtmlDiff oldest->newest: %d items were added over the two weeks\n",
			diff.Stats.Inserted)
	}

	// Note the §8.2 caveat: for the full-replacement Mosaic page,
	// HtmlDiff is of little use — nearly everything differs.
	mrevs, _, _ := fac.History("", "http://www.ncsa.uiuc.edu/whats-new.html")
	if len(mrevs) >= 2 {
		diff, err := fac.DiffRevs("http://www.ncsa.uiuc.edu/whats-new.html",
			mrevs[1].Num, mrevs[0].Num)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nMosaic what's-new page (full replacement each time): change fraction %.0f%%\n",
			diff.Stats.ChangeFraction*100)
		fmt.Println("— as §8.2 notes, when the entire contents are replaced, HtmlDiff has no use,")
		fmt.Println("  and automatic archival is what lets users reach arbitrary old versions.")
	}
	fmt.Println("\ncommunity page written to fixed_whatsnew.html")
}
