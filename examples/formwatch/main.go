// Formwatch: tracking a POST service, the §8.4 extension.
//
// A CGI search service takes its input through an HTML form with
// METHOD=POST, so ordinary URL tracking cannot reach it — "the input to
// the service is not stored". The user saves the filled-out form with
// AIDE instead; AIDE replays the stored input on every check, archives
// the output when its checksum changes, and HtmlDiff shows what changed
// in the results.
//
// Run:
//
//	go run ./examples/formwatch
package main

import (
	"context"
	"fmt"
	"log"
	"net/url"
	"os"
	"strings"
	"time"

	"aide/internal/aide"
	"aide/internal/formreg"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

const user = "fred@research.att.com"

func main() {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	client := webclient.New(web)

	// A bibliography search service behind a POST form. Its result set
	// grows as new papers appear in the database.
	papers := []string{
		"Scale and performance in a distributed file system",
		"Caching in the Sprite network file system",
	}
	svc := web.Site("bib.example.org").Page("/cgi-bin/search")
	svc.SetForm(func(form url.Values, _ int) string {
		var sb strings.Builder
		sb.WriteString("<HTML><BODY><H1>Results for " + form.Get("q") + "</H1>\n<UL>\n")
		for _, p := range papers {
			if strings.Contains(strings.ToLower(p), strings.ToLower(form.Get("q"))) {
				sb.WriteString("<LI>" + p + "\n")
			}
		}
		sb.WriteString("</UL>\n</BODY></HTML>\n")
		return sb.String()
	})

	// AIDE server with form tracking enabled.
	dataDir, err := os.MkdirTemp("", "aide-formwatch-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	fac, err := snapshot.New(dataDir, client, clock)
	if err != nil {
		log.Fatal(err)
	}
	forms, err := formreg.New(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	fac.Forms = forms
	cfg, err := w3config.ParseString("Default 0\n")
	if err != nil {
		log.Fatal(err)
	}
	srv := aide.NewServer(fac, client, cfg, clock)
	srv.Forms = forms

	// The user saves their filled-out form once.
	saved, err := forms.Save("file-system papers",
		"http://bib.example.org/cgi-bin/search", url.Values{"q": {"file system"}})
	if err != nil {
		log.Fatal(err)
	}
	srv.Register(user, aide.Registration{URL: saved.PseudoURL(), Title: "File-system papers"})
	fmt.Printf("saved form -> trackable pseudo-URL %s\n", saved.PseudoURL())

	// First sweep records the baseline output.
	srv.TrackAll(context.Background())
	srv.MarkSeen(context.Background(), user, saved.PseudoURL())
	fmt.Println("day 0: baseline result set archived as revision 1.1")

	// Days pass; nothing changes; sweeps stay quiet.
	for day := 1; day <= 3; day++ {
		web.Advance(24 * time.Hour)
		if s := srv.TrackAll(context.Background()); s.NewVersions != 0 {
			log.Fatalf("unexpected change on day %d", day)
		}
	}
	fmt.Println("day 1-3: service output unchanged; no new versions")

	// A new paper lands in the bibliography.
	web.Advance(24 * time.Hour)
	papers = append(papers, "Tracking and viewing changes in a distributed file system world")
	stats := srv.TrackAll(context.Background())
	fmt.Printf("day 4: checksum changed -> %d new version archived\n", stats.NewVersions)

	// The user's report flags the form, and HtmlDiff shows the addition.
	rows := srv.ReportFor(user)
	fmt.Printf("report: %q changed=%v (head %s, you saw %s)\n",
		rows[0].Title, rows[0].Changed, rows[0].HeadRev, rows[0].SeenRev)
	diff, err := fac.DiffRevs(saved.PseudoURL(), "1.1", "1.2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HtmlDiff: %d inserted token(s)\n", diff.Stats.Inserted)
	if strings.Contains(diff.HTML, "<STRONG><I>Tracking") {
		fmt.Println("the new paper is emphasized in the merged page")
	}
	if err := os.WriteFile("formwatch_diff.html", []byte(diff.HTML), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("merged page written to formwatch_diff.html")
}
