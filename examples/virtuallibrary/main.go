// Virtual library: the §8.3 hierarchical (recursive) tracking scenario.
//
// "Virtual Library pages contain many links to other pages within some
// subject area and have a number of links added at a time; a bulletin
// that announces that '10 new links have been added' will not point the
// user to the specific locations." A single registration with the
// recursive flag makes the AIDE server follow the library's same-host
// links and track each referenced page too, so the user is notified
// whenever any of them changes — without adding them one by one.
//
// Run:
//
//	go run ./examples/virtuallibrary
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"aide/internal/aide"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

const user = "reader@research.att.com"

func main() {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	client := webclient.New(web)

	// The virtual library: an index page linking to topic pages on the
	// same host, plus one external link (not followed).
	lib := web.Site("vlib.example.org")
	lib.Page("/networking/").Set(`<HTML><BODY><H1>Virtual Library: Networking</H1>
<UL>
<LI><A HREF="/networking/protocols.html">Protocols</A>
<LI><A HREF="/networking/caching.html">Caching and replication</A>
<LI><A HREF="/networking/mobile.html">Mobile systems</A>
<LI><A HREF="http://elsewhere.example.com/">An external resource</A>
</UL>
</BODY></HTML>`)
	protocols := lib.Page("/networking/protocols.html")
	web.Evolve(protocols, 3*24*time.Hour, websim.EditGenerator("Protocols", 6, 1))
	caching := lib.Page("/networking/caching.html")
	web.Evolve(caching, 5*24*time.Hour, websim.AppendGenerator("Caching", 2))
	lib.Page("/networking/mobile.html").Set(
		websim.StaticGenerator("Mobile systems", 100, 3)(0))
	web.Site("elsewhere.example.com").Page("/").Set("external\n")

	dataDir, err := os.MkdirTemp("", "aide-vlib-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	fac, err := snapshot.New(dataDir, client, clock)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := w3config.ParseString("Default 1d\n")
	if err != nil {
		log.Fatal(err)
	}
	srv := aide.NewServer(fac, client, cfg, clock)

	// One registration covers the whole subject area.
	srv.Register(user, aide.Registration{
		URL:       "http://vlib.example.org/networking/",
		Title:     "Virtual Library: Networking",
		Recursive: true,
	})

	stats := srv.TrackAll(context.Background())
	total, derived := srv.TrackedCount()
	fmt.Printf("after the first sweep: %d URLs tracked (%d discovered from the index)\n",
		total, derived)
	fmt.Printf("discovered this sweep: %d (the external link was not followed)\n", stats.Discovered)

	// A week passes; the topic pages change on their own schedules.
	newVersions := 0
	for day := 0; day < 7; day++ {
		web.Advance(24 * time.Hour)
		s := srv.TrackAll(context.Background())
		newVersions += s.NewVersions
	}
	fmt.Printf("over one week: %d new versions auto-archived across the library\n", newVersions)

	// The reader's report covers the registered root; the discovered
	// pages are archived and diffable even though they were never
	// registered individually.
	urls, err := fac.ArchivedURLs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\narchived URLs:")
	for _, u := range urls {
		revs, _, err := fac.History(user, u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-48s %d version(s)\n", u, len(revs))
	}

	// Drill into the page with the most history.
	const hot = "http://vlib.example.org/networking/protocols.html"
	revs, _, err := fac.History(user, hot)
	if err != nil {
		log.Fatal(err)
	}
	if len(revs) >= 2 {
		diff, err := fac.DiffRevs(hot, revs[1].Num, revs[0].Num)
		if err != nil {
			log.Fatal(err)
		}
		out := "vlib_protocols_diff.html"
		if err := os.WriteFile(out, []byte(diff.HTML), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nlatest change to %s:\n  %d region(s); merged page written to %s\n",
			hot, diff.Stats.Differences, out)
	}
}
