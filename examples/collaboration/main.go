// Collaboration: the WikiWikiWeb / WebWeaver scenario of §1.
//
// Several authors edit shared wiki pages; content changes anywhere on a
// page, not just at the end, and "those changes may be too subtle to
// notice". The wiki keeps its own version archive (as AT&T's WebWeaver
// did, using AIDE's RCS store) and each reader uses HtmlDiff to see the
// differences from the version *they* last read — personalised views,
// unlike a shared RecentChanges page.
//
// Run:
//
//	go run ./examples/collaboration
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"aide/internal/rcs"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// wiki is a tiny WikiWikiWeb: pages edited in place, versioned through
// the snapshot facility.
type wiki struct {
	fac   *snapshot.Facility
	web   *websim.Web
	clock *simclock.Sim
}

// edit applies an author's edit and archives the new version.
func (w *wiki) edit(author, page, body string) {
	w.web.Site("wiki.example.com").Page("/" + page).Set(body)
	if _, err := w.fac.Remember(context.Background(), author, "http://wiki.example.com/"+page); err != nil {
		log.Fatal(err)
	}
}

// read records that a reader has caught up with a page's current state.
func (w *wiki) read(reader, page string) {
	if _, err := w.fac.Remember(context.Background(), reader, "http://wiki.example.com/"+page); err != nil {
		log.Fatal(err)
	}
}

// recentChanges is the wiki's RecentChanges page: documents sorted by
// modification date, newest first.
func (w *wiki) recentChanges() []rcs.Revision {
	var all []rcs.Revision
	urls, err := w.fac.ArchivedURLs()
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range urls {
		revs, _, err := w.fac.History("", u)
		if err != nil {
			log.Fatal(err)
		}
		head := revs[0]
		head.Log = u // reuse Log to carry the URL for display
		all = append(all, head)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Date.After(all[j].Date) })
	return all
}

func main() {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	dataDir, err := os.MkdirTemp("", "aide-wiki-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	fac, err := snapshot.New(dataDir, webclient.New(web), clock)
	if err != nil {
		log.Fatal(err)
	}
	w := &wiki{fac: fac, web: web, clock: clock}

	// Day 0: Ward seeds two pages; Fred reads both.
	w.edit("ward", "PatternLanguage", `<HTML><BODY><H1>Pattern Language</H1>
<P>A pattern language is a network of patterns that call upon one another.</P>
<P>Patterns help us remember insights and knowledge about design.</P>
</BODY></HTML>`)
	w.edit("ward", "FrontPage", `<HTML><BODY><H1>Front Page</H1>
<P>Welcome to the wiki. Start at the <A HREF="PatternLanguage">Pattern Language</A> page.</P>
</BODY></HTML>`)
	w.read("fred", "PatternLanguage")
	w.read("fred", "FrontPage")

	// Day 1: Tom makes a subtle mid-page edit — exactly the case where
	// "content can be modified anywhere on the page, and those changes
	// may be too subtle to notice".
	clock.Advance(24 * time.Hour)
	w.edit("tom", "PatternLanguage", `<HTML><BODY><H1>Pattern Language</H1>
<P>A pattern language is a network of patterns that build upon one another.</P>
<P>Patterns help us remember insights and knowledge about design.</P>
</BODY></HTML>`)

	// Day 2: Ward appends to the front page.
	clock.Advance(24 * time.Hour)
	w.edit("ward", "FrontPage", `<HTML><BODY><H1>Front Page</H1>
<P>Welcome to the wiki. Start at the <A HREF="PatternLanguage">Pattern Language</A> page.</P>
<P>New this week: a reading list is coming soon.</P>
</BODY></HTML>`)

	// RecentChanges: what the whole community sees.
	fmt.Println("RecentChanges (newest first):")
	for _, rev := range w.recentChanges() {
		fmt.Printf("  %-42s rev %-4s %s by %s\n",
			rev.Log, rev.Num, rev.Date.Format("Jan _2 15:04"), rev.Author)
	}

	// Fred's personalised view: HtmlDiff against the versions he read.
	fmt.Println("\nFred's personalised diffs (vs the versions he last read):")
	for _, page := range []string{"PatternLanguage", "FrontPage"} {
		url := "http://wiki.example.com/" + page
		diff, err := fac.DiffSinceSaved(context.Background(), "fred", url)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %d region(s): %d modified, %d inserted, %d deleted tokens\n",
			page, diff.Stats.Differences, diff.Stats.Modified,
			diff.Stats.Inserted, diff.Stats.Deleted)
		if page == "PatternLanguage" {
			// The subtle edit is visible: "call" became "build".
			if strings.Contains(diff.HTML, "<STRIKE>call</STRIKE>") &&
				strings.Contains(diff.HTML, "<STRONG><I>build</I></STRONG>") {
				fmt.Println("                     the one-word edit is highlighted: call -> build")
			}
		}
		if err := os.WriteFile("collab_"+page+".html", []byte(diff.HTML), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nmerged pages written to collab_PatternLanguage.html, collab_FrontPage.html")
}
