package bench

// Full-stack integration tests: the §6 loop closed end to end over real
// HTTP sockets. w3newer generates a report whose Remember / Diff /
// History links point into a running AIDE server; this test clicks
// those links the way a 1996 browser would and checks the whole story —
// tracking, archiving, and HtmlDiff — holds together.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"testing"
	"time"

	"aide/internal/aide"
	"aide/internal/hotlist"
	"aide/internal/obs"
	"aide/internal/proxycache"
	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/tracker"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// integrationRig boots the synthetic web and the AIDE server, both on
// real HTTP listeners.
type integrationRig struct {
	clock   *simclock.Sim
	web     *websim.Web
	webSrv  *httptest.Server
	aideSrv *httptest.Server
	fac     *snapshot.Facility
	server  *aide.Server
}

func newIntegrationRig(t *testing.T) *integrationRig {
	t.Helper()
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	webSrv := httptest.NewServer(web.Handler())
	t.Cleanup(webSrv.Close)

	client := webclient.New(&webclient.HTTPTransport{}) // real sockets
	fac, err := snapshot.New(t.TempDir(), client, clock)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := w3config.ParseString("Default 0\n")
	if err != nil {
		t.Fatal(err)
	}
	server := aide.NewServer(fac, client, cfg, clock)
	snapSrv := snapshot.NewServer(fac)
	snapSrv.KeepaliveInterval = 0
	aideSrv := httptest.NewServer(server.Handler(snapSrv))
	t.Cleanup(aideSrv.Close)
	return &integrationRig{
		clock: clock, web: web, webSrv: webSrv,
		aideSrv: aideSrv, fac: fac, server: server,
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestFullLoopReportLinksWork drives the paper's Figure 1 -> §6 flow:
// run w3newer, follow its Remember link, let the page change, follow the
// Diff link, and check History.
func TestFullLoopReportLinksWork(t *testing.T) {
	rig := newIntegrationRig(t)
	const user = "douglis@research.att.com"

	page := rig.web.Site("www.usenix.org").Page("/")
	page.Set(websim.USENIXSept)
	pageURL := rig.webSrv.URL + "/www.usenix.org/"

	// 1. w3newer pass over real HTTP, report links into the AIDE server.
	hist := hotlist.NewHistory()
	hist.Visit(pageURL, time.Now()) // wall clock: the transport is real
	tr := tracker.New(webclient.New(&webclient.HTTPTransport{}),
		mustCfg(t, "Default 0\n"), hist, nil)
	entries := []hotlist.Entry{{URL: pageURL, Title: "USENIX Association"}}
	results := tr.Run(context.Background(), entries)
	report := tracker.Report(results, tracker.ReportOptions{
		SnapshotBase: rig.aideSrv.URL,
		User:         user,
	})
	if !strings.Contains(report, "USENIX Association") {
		t.Fatalf("report:\n%s", report)
	}

	// 2. Click "Remember".
	rememberLink := extractLink(t, report, `/remember\?[^"]+`)
	code, body := httpGet(t, rig.aideSrv.URL+rememberLink)
	if code != 200 || !strings.Contains(body, "saved as revision 1.1") {
		t.Fatalf("remember link: %d\n%s", code, body)
	}

	// 3. The page changes out on the web.
	page.Set(websim.USENIXNov)

	// 4. Click "Diff": HtmlDiff against the saved version, live fetch.
	diffLink := extractLink(t, report, `/diff\?[^"]+`)
	code, body = httpGet(t, rig.aideSrv.URL+diffLink)
	if code != 200 {
		t.Fatalf("diff link code = %d", code)
	}
	if !strings.Contains(body, "<STRIKE>") || !strings.Contains(body, "usenix96.html") {
		t.Fatalf("diff content:\n%s", body)
	}

	// 5. Remember again, then "History" lists both revisions with a
	// working view link.
	httpGet(t, rig.aideSrv.URL+rememberLink)
	historyLink := extractLink(t, report, `/history\?[^"]+`)
	code, body = httpGet(t, rig.aideSrv.URL+historyLink)
	if code != 200 || !strings.Contains(body, "1.2") {
		t.Fatalf("history link: %d\n%s", code, body)
	}
	viewLink := extractLink(t, body, `/co\?[^"]+`)
	code, body = httpGet(t, rig.aideSrv.URL+unescapeAmp(viewLink))
	if code != 200 || !strings.Contains(body, "<BASE HREF=") {
		t.Fatalf("co link: %d\n%s", code, body)
	}
}

// TestServerSideLoopOverHTTP drives the §8.3 flow: register, sweep,
// per-user report, catch up, repeat.
func TestServerSideLoopOverHTTP(t *testing.T) {
	rig := newIntegrationRig(t)
	const user = "tball@research.att.com"
	page := rig.web.Site("h.example").Page("/paper.html")
	page.Set("<P>draft one of the paper.</P>")
	pageURL := rig.webSrv.URL + "/h.example/paper.html"

	code, _ := httpGet(t, rig.aideSrv.URL+"/register?user="+url.QueryEscape(user)+
		"&url="+url.QueryEscape(pageURL)+"&title=The+Paper")
	if code != 200 {
		t.Fatalf("register: %d", code)
	}
	rig.server.TrackAll(context.Background())

	code, body := httpGet(t, rig.aideSrv.URL+"/report?user="+url.QueryEscape(user))
	if code != 200 || !strings.Contains(body, "<B>Changed</B>") {
		t.Fatalf("report 1: %d\n%s", code, body)
	}
	// Catch up, then the report shows current.
	httpGet(t, rig.aideSrv.URL+"/seen?user="+url.QueryEscape(user)+"&url="+url.QueryEscape(pageURL))
	_, body = httpGet(t, rig.aideSrv.URL+"/report?user="+url.QueryEscape(user))
	if !strings.Contains(body, "you are current at revision 1.1") {
		t.Fatalf("report 2:\n%s", body)
	}
	// The page changes; the sweep archives it; the report flips back.
	rig.web.Advance(24 * time.Hour) // a later Last-Modified
	page.Set("<P>draft two of the paper.</P>")
	rig.server.TrackAll(context.Background())
	_, body = httpGet(t, rig.aideSrv.URL+"/report?user="+url.QueryEscape(user))
	if !strings.Contains(body, "revision 1.2") || !strings.Contains(body, "<B>Changed</B>") {
		t.Fatalf("report 3:\n%s", body)
	}
}

// TestDebugObservabilityEndpoints checks the observability layer end to
// end: after server-side sweeps through a caching transport, GET
// /debug/metrics on the AIDE server reports nonzero fetch attempts, a
// populated sweep-duration histogram, and proxy-cache hits; and
// /debug/traces holds the nested span chain of a single tracker check
// (sweep -> check -> fetch -> cache lookup).
func TestDebugObservabilityEndpoints(t *testing.T) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	webSrv := httptest.NewServer(web.Handler())
	t.Cleanup(webSrv.Close)

	// An isolated registry keeps other tests' metrics out of the
	// assertions; the trace side uses DefaultTracer because that is what
	// the server's /debug/traces endpoint serves in production.
	reg := obs.NewRegistry()
	obs.DefaultTracer.Reset()

	cache := proxycache.New(&webclient.HTTPTransport{}, clock)
	cache.Metrics = reg
	client := webclient.New(cache)
	client.Metrics = reg
	fac, err := snapshot.New(t.TempDir(), client, clock)
	if err != nil {
		t.Fatal(err)
	}
	fac.Metrics = reg
	server := aide.NewServer(fac, client, mustCfg(t, "Default 0\n"), clock)
	server.Metrics = reg
	snapSrv := snapshot.NewServer(fac)
	snapSrv.KeepaliveInterval = 0
	aideSrv := httptest.NewServer(server.Handler(snapSrv))
	t.Cleanup(aideSrv.Close)

	page := web.Site("obs.example").Page("/index.html")
	page.Set("<P>metrics draft one.</P>")
	pageURL := webSrv.URL + "/obs.example/index.html"

	code, _ := httpGet(t, aideSrv.URL+"/register?user=obs@example.com&url="+
		url.QueryEscape(pageURL)+"&title=Obs")
	if code != 200 {
		t.Fatalf("register: %d", code)
	}
	// Sweep twice without advancing the clock: the first fetch fills the
	// proxy cache, the second is answered from it.
	server.TrackAll(context.Background())
	server.TrackAll(context.Background())

	code, body := httpGet(t, aideSrv.URL+"/debug/metrics")
	if code != 200 {
		t.Fatalf("/debug/metrics: %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/metrics decode: %v\n%s", err, body)
	}
	if snap.Counters["webclient.attempts"] == 0 {
		t.Errorf("webclient.attempts = 0, want > 0\n%s", body)
	}
	if snap.Counters["proxycache.hits"] == 0 {
		t.Errorf("proxycache.hits = 0, want > 0\n%s", body)
	}
	if h, ok := snap.Histograms["tracker.sweep.duration"]; !ok || h.Count == 0 {
		t.Errorf("tracker.sweep.duration histogram missing or empty\n%s", body)
	}

	code, body = httpGet(t, aideSrv.URL+"/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	var spans []obs.SpanRecord
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/debug/traces decode: %v\n%s", err, body)
	}
	byID := make(map[uint64]obs.SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	// Walk one cache lookup up to its root: the chain must nest at least
	// three spans and terminate at the sweep.
	var chain []string
	for _, s := range spans {
		if s.Name != "proxycache.lookup" {
			continue
		}
		chain = chain[:0]
		for cur, ok := s, true; ok; cur, ok = byID[cur.Parent] {
			chain = append(chain, cur.Name)
		}
		if len(chain) >= 3 && chain[len(chain)-1] == "aide.sweep" {
			break
		}
	}
	if len(chain) < 3 || chain[len(chain)-1] != "aide.sweep" {
		t.Fatalf("no >=3-deep span chain from a cache lookup to aide.sweep; got %v in spans:\n%s", chain, body)
	}
}

func mustCfg(t *testing.T, src string) *w3config.Config {
	t.Helper()
	cfg, err := w3config.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// extractLink pulls the first link matching pattern out of an HTML page.
func extractLink(t *testing.T, html, pattern string) string {
	t.Helper()
	m := regexp.MustCompile(pattern).FindString(html)
	if m == "" {
		t.Fatalf("no link matching %q in:\n%s", pattern, html)
	}
	return m
}

// unescapeAmp undoes the minimal HTML escaping in extracted hrefs.
func unescapeAmp(s string) string { return strings.ReplaceAll(s, "&amp;", "&") }
