package websim

// Fixture pages shared by the Figure 2 experiment, the root benchmark
// harness, and the examples: two versions of a USENIX-style association
// home page, modelled on the 9/29/95 and 11/3/95 snapshots the paper's
// Figure 2 compares — an announcement replaced, a second one edited, and
// a brand-new item added.

// USENIXSept is the older version (as of 9/29/95).
const USENIXSept = `<HTML><HEAD><TITLE>USENIX Association</TITLE></HEAD><BODY>
<H1>USENIX: The UNIX and Advanced Computing Systems Association</H1>
<P>USENIX is the UNIX and Advanced Computing Systems professional and
technical association. Since 1975 the USENIX Association has brought
together the community of engineers and system administrators.</P>
<H2>Upcoming Events</H2>
<UL>
<LI><A HREF="events/calendar.html">Calendar of upcoming events</A>
<LI><A HREF="events/lisa95.html">LISA IX, Monterey, California, September 17-22, 1995</A>
<LI><A HREF="events/sec95.html">Fifth USENIX Security Symposium, Salt Lake City, June 1995</A>
</UL>
<H2>Membership</H2>
<P>Membership information is available online. Contact the USENIX office
for registration materials and conference proceedings.</P>
<HR>
<ADDRESS>USENIX Association, 2560 Ninth Street, Berkeley CA</ADDRESS>
</BODY></HTML>`

// USENIXNov is the newer version (as of 11/3/95).
const USENIXNov = `<HTML><HEAD><TITLE>USENIX Association</TITLE></HEAD><BODY>
<H1>USENIX: The UNIX and Advanced Computing Systems Association</H1>
<P>USENIX is the UNIX and Advanced Computing Systems professional and
technical association. Since 1975 the USENIX Association has brought
together the community of engineers and system administrators.</P>
<H2>Upcoming Events</H2>
<UL>
<LI><A HREF="events/calendar.html">Calendar of upcoming events</A>
<LI><A HREF="events/usenix96.html">1996 USENIX Technical Conference, San Diego,
January 22-26, 1996</A>
<LI><A HREF="events/sec96.html">Sixth USENIX Security Symposium, San Jose, July 1996</A>
<LI><A HREF="sage/">SAGE: the System Administrators Guild</A>
</UL>
<H2>Membership</H2>
<P>Membership information is available online. Contact the USENIX office
for registration materials and conference proceedings.</P>
<HR>
<ADDRESS>USENIX Association, 2560 Ninth Street, Berkeley CA</ADDRESS>
</BODY></HTML>`
