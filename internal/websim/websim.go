// Package websim is the synthetic web that stands in for the 1995/96
// Internet in this reproduction (see DESIGN.md, "Substitutions"). It
// models virtual hosts and pages whose content evolves over simulated
// time under configurable change processes, and exposes exactly the
// observables AIDE's tools consume: HEAD/GET with Last-Modified headers,
// status codes, redirects, robots.txt, and fault injection (down hosts,
// timeouts), plus per-request counters for the polling experiments.
//
// A Web implements webclient.Transport for fast in-process experiments
// and http.Handler for integration tests over real sockets.
package websim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"aide/internal/obs"
	"aide/internal/simclock"
	"aide/internal/webclient"
)

// ErrHostDown is returned when the virtual host is marked down.
var ErrHostDown = errors.New("websim: connection refused")

// ErrTimeout is returned when the virtual host is overloaded. It
// satisfies net.Error-style timeout checks by message only; AIDE treats
// all transport errors as transient anyway.
var ErrTimeout = errors.New("websim: request timed out")

// Version is one stored state of a page.
type Version struct {
	// Time is the modification instant.
	Time time.Time
	// Body is the page content.
	Body string
}

// Page is one resource on a virtual host.
type Page struct {
	site *Site
	path string

	mu       sync.Mutex
	versions []Version
	// noLastModified suppresses the Last-Modified header (CGI output).
	noLastModified bool
	// dynamic, when set, computes the body per request (counter pages,
	// embedded-clock pages — the paper's "noisy" modifications).
	dynamic func(now time.Time, requestNum int) string
	// gone makes the page answer 404 (deactivated URL).
	gone bool
	// redirect makes the page answer 302 to the given location (a URL
	// that moved with a forwarding pointer).
	redirect string
	// form, when set, makes the page a POST service: the handler maps a
	// URL-encoded form body to output (§8.4's CGI-with-POST case).
	form func(form url.Values, requestNum int) string
	// fetches counts GET/POST requests, for dynamic bodies.
	fetches int
}

// URL returns the page's absolute URL.
func (p *Page) URL() string { return "http://" + p.site.host + p.path }

// Set records a new version with the current simulated time.
func (p *Page) Set(body string) {
	p.SetAt(body, p.site.web.clock.Now())
}

// SetAt records a new version at an explicit instant.
func (p *Page) SetAt(body string, t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.versions = append(p.versions, Version{Time: t.UTC(), Body: body})
}

// Current returns the newest version.
func (p *Page) Current() Version {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.versions) == 0 {
		return Version{}
	}
	return p.versions[len(p.versions)-1]
}

// VersionCount returns how many versions the page has had.
func (p *Page) VersionCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.versions)
}

// SetNoLastModified marks the page as CGI-like: responses carry no
// Last-Modified header, forcing checksum-based change detection.
func (p *Page) SetNoLastModified() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.noLastModified = true
}

// SetDynamic installs a per-request body generator (noisy pages). The
// generator receives the simulated time and a running request count.
func (p *Page) SetDynamic(gen func(now time.Time, requestNum int) string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dynamic = gen
	p.noLastModified = true
}

// SetGone deactivates the URL (404).
func (p *Page) SetGone() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gone = true
}

// SetRedirect gives the URL a forwarding pointer.
func (p *Page) SetRedirect(location string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.redirect = location
}

// SetForm makes the page a POST service: the handler receives the
// parsed form and a running request count and returns the output body.
// GET/HEAD on a pure form service answer 405.
func (p *Page) SetForm(handler func(form url.Values, requestNum int) string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.form = handler
	p.noLastModified = true
}

// respond builds the response for one request.
func (p *Page) respond(req *webclient.Request, now time.Time) *webclient.Response {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case p.gone:
		return &webclient.Response{Status: 404}
	case p.redirect != "":
		return &webclient.Response{Status: 302, Location: p.redirect}
	}
	if req.Method == "POST" {
		if p.form == nil {
			return &webclient.Response{Status: 405}
		}
		vals, err := url.ParseQuery(req.Body)
		if err != nil {
			return &webclient.Response{Status: 400}
		}
		p.fetches++
		return &webclient.Response{Status: 200, Body: p.form(vals, p.fetches)}
	}
	if p.form != nil && p.dynamic == nil && len(p.versions) == 0 {
		return &webclient.Response{Status: 405} // POST-only service
	}
	if p.dynamic != nil {
		p.fetches++
		body := p.dynamic(now, p.fetches)
		resp := &webclient.Response{Status: 200}
		if req.Method != "HEAD" {
			resp.Body = body
		}
		return resp
	}
	if len(p.versions) == 0 {
		return &webclient.Response{Status: 404}
	}
	v := p.versions[len(p.versions)-1]
	// Conditional GET: unchanged since the client's copy -> 304.
	if !req.IfModifiedSince.IsZero() && !p.noLastModified && !v.Time.After(req.IfModifiedSince) {
		return &webclient.Response{Status: 304, LastModified: v.Time}
	}
	resp := &webclient.Response{Status: 200}
	if !p.noLastModified {
		resp.LastModified = v.Time
	}
	if req.Method != "HEAD" {
		resp.Body = v.Body
	}
	return resp
}

// Site is a virtual host.
type Site struct {
	web  *Web
	host string

	mu    sync.Mutex
	pages map[string]*Page
	// down simulates a dead or unreachable server.
	down bool
	// timeout simulates an overloaded server: every request errors.
	timeout bool
	// hang simulates a wedged server: requests block until the caller's
	// context is canceled or times out, instead of failing fast.
	hang bool
	// failEvery makes every n-th request time out (deterministic
	// intermittent failure, for the §3.1 error-handling experiments).
	failEvery int
	// heads and gets count requests served (fault-rejected requests
	// count too: they still cost the client a connection attempt).
	heads, gets int
}

// Page returns (creating if needed) the page at path ("/..." form).
func (s *Site) Page(path string) *Page {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[path]
	if !ok {
		p = &Page{site: s, path: path}
		s.pages[path] = p
	}
	return p
}

// SetRobots installs a robots.txt body for the host.
func (s *Site) SetRobots(body string) {
	s.Page("/robots.txt").Set(body)
}

// SetDown marks the host unreachable (or back up).
func (s *Site) SetDown(down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down = down
}

// SetTimeout makes every request to the host time out (or stop doing so).
func (s *Site) SetTimeout(timeout bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.timeout = timeout
}

// SetHang makes every request to the host block until the caller's
// context gives up (or stops doing so) — the wedged-server failure mode
// that only per-request deadlines can defend against, as opposed to
// SetTimeout's fast error.
func (s *Site) SetHang(hang bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hang = hang
}

// SetFailEvery makes every n-th request to the host time out — the
// intermittent overload of §3.1's "proxy-caching servers are sometimes
// overloaded to the point of timing out". n <= 0 disables the fault.
func (s *Site) SetFailEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failEvery = n
}

// Requests returns the HEAD and GET counts served by this host.
func (s *Site) Requests() (heads, gets int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heads, s.gets
}

// Web is the collection of virtual hosts sharing one simulated clock.
type Web struct {
	clock *simclock.Sim
	// Metrics receives the served-request and injected-fault counters;
	// obs.Default when nil.
	Metrics *obs.Registry

	mu        sync.Mutex
	sites     map[string]*Site
	processes []*process
}

// metrics returns the web's registry (obs.Default when unset).
func (w *Web) metrics() *obs.Registry {
	if w.Metrics != nil {
		return w.Metrics
	}
	return obs.Default
}

// New returns an empty web on the given clock (a fresh one if nil).
func New(clock *simclock.Sim) *Web {
	if clock == nil {
		clock = simclock.New(time.Time{})
	}
	return &Web{clock: clock, sites: make(map[string]*Site)}
}

// Clock returns the web's simulated clock.
func (w *Web) Clock() *simclock.Sim { return w.clock }

// Site returns (creating if needed) the virtual host with the given name
// (e.g. "www.yahoo.com" or "host:8080").
func (w *Web) Site(host string) *Site {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.sites[host]
	if !ok {
		s = &Site{web: w, host: host, pages: make(map[string]*Page)}
		w.sites[host] = s
	}
	return s
}

// Hosts lists the virtual host names, sorted.
func (w *Web) Hosts() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	hosts := make([]string, 0, len(w.sites))
	for h := range w.sites {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// TotalRequests sums HEAD and GET counts over all hosts.
func (w *Web) TotalRequests() (heads, gets int) {
	w.mu.Lock()
	sites := make([]*Site, 0, len(w.sites))
	for _, s := range w.sites {
		sites = append(sites, s)
	}
	w.mu.Unlock()
	for _, s := range sites {
		h, g := s.Requests()
		heads += h
		gets += g
	}
	return heads, gets
}

// ResetRequestCounts zeroes all request counters (between experiment
// phases).
func (w *Web) ResetRequestCounts() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, s := range w.sites {
		s.mu.Lock()
		s.heads, s.gets = 0, 0
		s.mu.Unlock()
	}
}

// RoundTrip implements webclient.Transport against the virtual web. It
// honours ctx: an already-done context fails immediately, and a hung
// host blocks exactly until the context is canceled or its deadline
// passes — so the per-request timeouts and cancellation that protect
// real fetches are exercised against the simulation too.
func (w *Web) RoundTrip(ctx context.Context, req *webclient.Request) (*webclient.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	host, path, err := splitHTTPURL(req.URL)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	site, ok := w.sites[host]
	w.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("websim: no such host %q", host)
	}
	site.mu.Lock()
	if req.Method == "HEAD" {
		site.heads++
	} else {
		site.gets++
	}
	down, timeout, hang := site.down, site.timeout, site.hang
	if site.failEvery > 0 && (site.heads+site.gets)%site.failEvery == 0 {
		timeout = true
	}
	page := site.pages[path]
	site.mu.Unlock()
	w.metrics().Counter("websim.requests").Inc()
	switch {
	case hang:
		w.metrics().Counter("websim.faults").Inc()
		<-ctx.Done()
		return nil, fmt.Errorf("websim: %s hung: %w", host, ctx.Err())
	case down:
		w.metrics().Counter("websim.faults").Inc()
		return nil, ErrHostDown
	case timeout:
		w.metrics().Counter("websim.faults").Inc()
		return nil, ErrTimeout
	case page == nil:
		return &webclient.Response{Status: 404}, nil
	}
	return page.respond(req, w.clock.Now()), nil
}

// splitHTTPURL splits an http:// URL into host and path.
func splitHTTPURL(url string) (host, path string, err error) {
	rest, ok := strings.CutPrefix(url, "http://")
	if !ok {
		return "", "", fmt.Errorf("websim: unsupported URL %q", url)
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i], rest[i:], nil
	}
	return rest, "/", nil
}

// Handler adapts the web to net/http for integration tests over real
// sockets. Because every virtual host shares one listener, the logical
// host is carried as the first path segment: GET /www.yahoo.com/path.
func (w *Web) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		trimmed := strings.TrimPrefix(r.URL.Path, "/")
		host, path, ok := strings.Cut(trimmed, "/")
		if !ok {
			path = ""
		}
		req := &webclient.Request{
			Method: r.Method,
			URL:    "http://" + host + "/" + path,
		}
		if ims := r.Header.Get("If-Modified-Since"); ims != "" {
			if t, perr := http.ParseTime(ims); perr == nil {
				req.IfModifiedSince = t
			}
		}
		if r.Method == "POST" {
			body, rerr := io.ReadAll(r.Body)
			if rerr != nil {
				http.Error(rw, rerr.Error(), http.StatusBadRequest)
				return
			}
			req.Body = string(body)
			req.ContentType = r.Header.Get("Content-Type")
		}
		resp, err := w.RoundTrip(r.Context(), req)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadGateway)
			return
		}
		if !resp.LastModified.IsZero() {
			rw.Header().Set("Last-Modified", resp.LastModified.UTC().Format(http.TimeFormat))
		}
		if resp.Location != "" {
			// Rewrite the logical URL into the path-prefixed form.
			loc := resp.Location
			if h, p, lerr := splitHTTPURL(loc); lerr == nil {
				loc = "/" + h + p
			}
			rw.Header().Set("Location", loc)
		}
		rw.WriteHeader(resp.Status)
		if r.Method != "HEAD" {
			fmt.Fprint(rw, resp.Body)
		}
	})
}

// --- change processes -------------------------------------------------------

// process drives one page's evolution on the simulated clock.
type process struct {
	page     *Page
	interval time.Duration
	next     time.Time
	step     int
	gen      func(step int) string
}

// Evolve schedules page to be regenerated by gen every interval of
// simulated time, starting one interval from now. gen receives the step
// number (1, 2, ...). The initial content (step 0) is installed
// immediately.
func (w *Web) Evolve(page *Page, interval time.Duration, gen func(step int) string) {
	page.Set(gen(0))
	w.mu.Lock()
	defer w.mu.Unlock()
	w.processes = append(w.processes, &process{
		page:     page,
		interval: interval,
		next:     w.clock.Now().Add(interval),
		gen:      gen,
	})
}

// AdvanceTo moves the simulated clock to t, applying every scheduled
// change that falls due on the way, in time order.
func (w *Web) AdvanceTo(t time.Time) {
	for {
		w.mu.Lock()
		var earliest *process
		for _, p := range w.processes {
			if !p.next.After(t) && (earliest == nil || p.next.Before(earliest.next)) {
				earliest = p
			}
		}
		w.mu.Unlock()
		if earliest == nil {
			break
		}
		w.clock.Set(earliest.next)
		earliest.step++
		earliest.page.SetAt(earliest.gen(earliest.step), earliest.next)
		earliest.next = earliest.next.Add(earliest.interval)
	}
	w.clock.Set(t)
}

// Advance moves the clock forward by d, applying due changes.
func (w *Web) Advance(d time.Duration) {
	w.AdvanceTo(w.clock.Now().Add(d))
}
