// Package websim is the synthetic web that stands in for the 1995/96
// Internet in this reproduction (see DESIGN.md, "Substitutions"). It
// models virtual hosts and pages whose content evolves over simulated
// time under configurable change processes, and exposes exactly the
// observables AIDE's tools consume: HEAD/GET with Last-Modified headers,
// status codes, redirects, robots.txt, and fault injection (down hosts,
// timeouts), plus per-request counters for the polling experiments.
//
// A Web implements webclient.Transport for fast in-process experiments
// and http.Handler for integration tests over real sockets.
package websim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aide/internal/httpdate"
	"aide/internal/obs"
	"aide/internal/simclock"
	"aide/internal/webclient"
)

// ErrHostDown is returned when the virtual host is marked down.
var ErrHostDown = errors.New("websim: connection refused")

// ErrTimeout is returned when the virtual host is overloaded. It
// satisfies net.Error-style timeout checks by message only; AIDE treats
// all transport errors as transient anyway.
var ErrTimeout = errors.New("websim: request timed out")

// Version is one stored state of a page.
type Version struct {
	// Time is the modification instant.
	Time time.Time
	// Body is the page content.
	Body string
}

// Page is one resource on a virtual host.
type Page struct {
	site *Site
	path string

	mu       sync.Mutex
	versions []Version
	// noLastModified suppresses the Last-Modified header (CGI output).
	noLastModified bool
	// dynamic, when set, computes the body per request (counter pages,
	// embedded-clock pages — the paper's "noisy" modifications).
	dynamic func(now time.Time, requestNum int) string
	// gone makes the page answer 404 (deactivated URL).
	gone bool
	// redirect makes the page answer 302 to the given location (a URL
	// that moved with a forwarding pointer).
	redirect string
	// form, when set, makes the page a POST service: the handler maps a
	// URL-encoded form body to output (§8.4's CGI-with-POST case).
	form func(form url.Values, requestNum int) string
	// fetches counts GET/POST requests, for dynamic bodies.
	fetches int
}

// URL returns the page's absolute URL.
func (p *Page) URL() string { return "http://" + p.site.host + p.path }

// Set records a new version with the current simulated time.
func (p *Page) Set(body string) {
	p.SetAt(body, p.site.web.clock.Now())
}

// SetAt records a new version at an explicit instant.
func (p *Page) SetAt(body string, t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.versions = append(p.versions, Version{Time: t.UTC(), Body: body})
}

// Current returns the newest version.
func (p *Page) Current() Version {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.versions) == 0 {
		return Version{}
	}
	return p.versions[len(p.versions)-1]
}

// VersionCount returns how many versions the page has had.
func (p *Page) VersionCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.versions)
}

// SetNoLastModified marks the page as CGI-like: responses carry no
// Last-Modified header, forcing checksum-based change detection.
func (p *Page) SetNoLastModified() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.noLastModified = true
}

// SetDynamic installs a per-request body generator (noisy pages). The
// generator receives the simulated time and a running request count.
func (p *Page) SetDynamic(gen func(now time.Time, requestNum int) string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dynamic = gen
	p.noLastModified = true
}

// SetGone deactivates the URL (404).
func (p *Page) SetGone() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gone = true
}

// SetRedirect gives the URL a forwarding pointer.
func (p *Page) SetRedirect(location string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.redirect = location
}

// SetForm makes the page a POST service: the handler receives the
// parsed form and a running request count and returns the output body.
// GET/HEAD on a pure form service answer 405.
func (p *Page) SetForm(handler func(form url.Values, requestNum int) string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.form = handler
	p.noLastModified = true
}

// respond builds the response for one request.
func (p *Page) respond(req *webclient.Request, now time.Time) *webclient.Response {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case p.gone:
		return &webclient.Response{Status: 404}
	case p.redirect != "":
		return &webclient.Response{Status: 302, Location: p.redirect}
	}
	if req.Method == "POST" {
		if p.form == nil {
			return &webclient.Response{Status: 405}
		}
		vals, err := url.ParseQuery(req.Body)
		if err != nil {
			return &webclient.Response{Status: 400}
		}
		p.fetches++
		return &webclient.Response{Status: 200, Body: p.form(vals, p.fetches)}
	}
	if p.form != nil && p.dynamic == nil && len(p.versions) == 0 {
		return &webclient.Response{Status: 405} // POST-only service
	}
	if p.dynamic != nil {
		p.fetches++
		body := p.dynamic(now, p.fetches)
		resp := &webclient.Response{Status: 200}
		if req.Method != "HEAD" {
			resp.Body = body
		}
		return resp
	}
	if len(p.versions) == 0 {
		return &webclient.Response{Status: 404}
	}
	v := p.versions[len(p.versions)-1]
	// Conditional GET: unchanged since the client's copy -> 304.
	if !req.IfModifiedSince.IsZero() && !p.noLastModified && !v.Time.After(req.IfModifiedSince) {
		return &webclient.Response{Status: 304, LastModified: v.Time}
	}
	resp := &webclient.Response{Status: 200}
	if !p.noLastModified {
		resp.LastModified = v.Time
	}
	if req.Method != "HEAD" {
		resp.Body = v.Body
	}
	return resp
}

// FaultProfile is a seeded, deterministic chaos specification for one
// site, composing the failure modes a 1996 host exhibited for weeks at
// a time: a fraction of requests answered with a 5xx, added latency on
// every request, bodies cut short on the wire, and scheduled flapping
// (down for part of every period). The profile composes with the
// blunter SetDown/SetHang/SetTimeout/SetFailEvery knobs; all
// randomness comes from Seed, so a given request sequence always sees
// the same faults.
type FaultProfile struct {
	// Seed seeds the per-site fault source; the same seed and request
	// order reproduce the same fault sequence exactly.
	Seed int64
	// FailProb is the probability (0..1) that a request is answered
	// with FailStatus instead of being served.
	FailProb float64
	// FailStatus is the injected status (default 503).
	FailStatus int
	// RetryAfter, when positive, is advertised on injected 5xx
	// responses — the load-shedding hint RetryPolicy honours.
	RetryAfter time.Duration
	// Latency is added to every request, spent on the web's clock
	// (simulated time under simclock.Sim).
	Latency time.Duration
	// TruncateBodies, when positive, cuts served bodies to this many
	// bytes: over the HTTP handler the full Content-Length is promised
	// but fewer bytes arrive, so the client's read path errors.
	TruncateBodies int
	// DribbleChunk and DribbleDelay, when positive, serve bodies in
	// chunks of DribbleChunk bytes with DribbleDelay between them — the
	// slow-body fault that exercises read deadlines rather than connect
	// errors. Over the in-process transport the delay is spent on the
	// web's clock; over the HTTP handler it is real time.
	DribbleChunk int
	// DribbleDelay is the pause between dribbled chunks.
	DribbleDelay time.Duration
	// FlapPeriod, when positive, makes the host flap on a schedule: at
	// the start of every period it is down (connection refused) for
	// FlapDown, then up for the remainder.
	FlapPeriod time.Duration
	// FlapDown is the down window at the start of each flap period.
	FlapDown time.Duration
}

// Site is a virtual host.
type Site struct {
	web  *Web
	host string

	mu    sync.Mutex
	pages map[string]*Page
	// down simulates a dead or unreachable server.
	down bool
	// timeout simulates an overloaded server: every request errors.
	timeout bool
	// hang simulates a wedged server: requests block until the caller's
	// context is canceled or times out, instead of failing fast.
	hang bool
	// failEvery makes every n-th request time out (deterministic
	// intermittent failure, for the §3.1 error-handling experiments).
	failEvery int
	// faults is the chaos profile, nil when none is installed.
	faults *FaultProfile
	// faultRng is the profile's seeded randomness source.
	faultRng *rand.Rand
	// flapStart anchors the flap schedule (set when the profile is
	// installed).
	flapStart time.Time
	// truncate / dribbleChunk / dribbleDelay are the standalone wire
	// faults (SetTruncate, SetDribble); a profile's values override.
	truncate     int
	dribbleChunk int
	dribbleDelay time.Duration
	// heads and gets count requests served (fault-rejected requests
	// count too: they still cost the client a connection attempt).
	heads, gets int
}

// Page returns (creating if needed) the page at path ("/..." form).
func (s *Site) Page(path string) *Page {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[path]
	if !ok {
		p = &Page{site: s, path: path}
		s.pages[path] = p
	}
	return p
}

// SetRobots installs a robots.txt body for the host.
func (s *Site) SetRobots(body string) {
	s.Page("/robots.txt").Set(body)
}

// SetDown marks the host unreachable (or back up).
func (s *Site) SetDown(down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down = down
}

// SetTimeout makes every request to the host time out (or stop doing so).
func (s *Site) SetTimeout(timeout bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.timeout = timeout
}

// SetHang makes every request to the host block until the caller's
// context gives up (or stops doing so) — the wedged-server failure mode
// that only per-request deadlines can defend against, as opposed to
// SetTimeout's fast error.
func (s *Site) SetHang(hang bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hang = hang
}

// SetFailEvery makes every n-th request to the host time out — the
// intermittent overload of §3.1's "proxy-caching servers are sometimes
// overloaded to the point of timing out". n <= 0 disables the fault.
func (s *Site) SetFailEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failEvery = n
}

// SetFaults installs a chaos profile on the host, anchoring its flap
// schedule at the current simulated time. The profile's fault source is
// reseeded, so installing the same profile twice replays the same fault
// sequence.
func (s *Site) SetFaults(p FaultProfile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := p
	s.faults = &cp
	s.faultRng = rand.New(rand.NewSource(p.Seed))
	s.flapStart = s.web.clock.Now()
}

// ClearFaults removes the chaos profile (the blunt SetDown/SetHang
// knobs are untouched).
func (s *Site) ClearFaults() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = nil
	s.faultRng = nil
}

// SetTruncate cuts served bodies to n bytes (0 disables). Over the
// HTTP handler the response promises the full Content-Length but
// delivers only n bytes, so the client fails mid-read — the
// truncated-body fault that exercises the read path rather than the
// connect path.
func (s *Site) SetTruncate(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.truncate = n
}

// SetDribble serves bodies in chunks of chunk bytes with delay between
// them (chunk <= 0 disables) — a slow body rather than a slow connect.
func (s *Site) SetDribble(chunk int, delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dribbleChunk = chunk
	s.dribbleDelay = delay
}

// Requests returns the HEAD and GET counts served by this host.
func (s *Site) Requests() (heads, gets int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heads, s.gets
}

// Web is the collection of virtual hosts sharing one simulated clock.
type Web struct {
	clock *simclock.Sim
	// Metrics receives the served-request and injected-fault counters;
	// obs.Default when nil.
	Metrics *obs.Registry

	mu        sync.Mutex
	sites     map[string]*Site
	processes []*process
}

// metrics returns the web's registry (obs.Default when unset).
func (w *Web) metrics() *obs.Registry {
	if w.Metrics != nil {
		return w.Metrics
	}
	return obs.Default
}

// New returns an empty web on the given clock (a fresh one if nil).
func New(clock *simclock.Sim) *Web {
	if clock == nil {
		clock = simclock.New(time.Time{})
	}
	return &Web{clock: clock, sites: make(map[string]*Site)}
}

// Clock returns the web's simulated clock.
func (w *Web) Clock() *simclock.Sim { return w.clock }

// Site returns (creating if needed) the virtual host with the given name
// (e.g. "www.yahoo.com" or "host:8080").
func (w *Web) Site(host string) *Site {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.sites[host]
	if !ok {
		s = &Site{web: w, host: host, pages: make(map[string]*Page)}
		w.sites[host] = s
	}
	return s
}

// Hosts lists the virtual host names, sorted.
func (w *Web) Hosts() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	hosts := make([]string, 0, len(w.sites))
	for h := range w.sites {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// TotalRequests sums HEAD and GET counts over all hosts.
func (w *Web) TotalRequests() (heads, gets int) {
	w.mu.Lock()
	sites := make([]*Site, 0, len(w.sites))
	for _, s := range w.sites {
		sites = append(sites, s)
	}
	w.mu.Unlock()
	for _, s := range sites {
		h, g := s.Requests()
		heads += h
		gets += g
	}
	return heads, gets
}

// ResetRequestCounts zeroes all request counters (between experiment
// phases).
func (w *Web) ResetRequestCounts() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, s := range w.sites {
		s.mu.Lock()
		s.heads, s.gets = 0, 0
		s.mu.Unlock()
	}
}

// wireFaults are the read-path faults the transport applies to a
// response after the page logic has produced it.
type wireFaults struct {
	truncate     int
	dribbleChunk int
	dribbleDelay time.Duration
}

// RoundTrip implements webclient.Transport against the virtual web. It
// honours ctx: an already-done context fails immediately, and a hung
// host blocks exactly until the context is canceled or its deadline
// passes — so the per-request timeouts and cancellation that protect
// real fetches are exercised against the simulation too. Wire faults
// (truncation, dribble) are applied in-process: a truncated body
// arrives short (forcing a checksum change or parse error) and a
// dribbled body spends the chunked delays on the web's clock.
func (w *Web) RoundTrip(ctx context.Context, req *webclient.Request) (*webclient.Response, error) {
	if req.GetBody != nil {
		// Materialize streaming bodies into a private copy of the
		// request — the simulation consumes Body as a string, and the
		// caller's request must stay replayable for retries.
		r, gerr := req.GetBody()
		if gerr != nil {
			return nil, gerr
		}
		data, gerr := io.ReadAll(r)
		if gerr != nil {
			return nil, gerr
		}
		matReq := *req
		matReq.Body = string(data)
		matReq.GetBody = nil
		req = &matReq
	}
	resp, wf, err := w.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if wf.truncate > 0 && len(resp.Body) > wf.truncate {
		resp.Body = resp.Body[:wf.truncate]
	}
	if wf.dribbleChunk > 0 && wf.dribbleDelay > 0 && len(resp.Body) > 0 {
		chunks := (len(resp.Body) + wf.dribbleChunk - 1) / wf.dribbleChunk
		total := time.Duration(chunks) * wf.dribbleDelay
		if serr := simclock.Sleep(ctx, w.clock, total); serr != nil {
			return nil, fmt.Errorf("websim: body read interrupted: %w", serr)
		}
	}
	return resp, nil
}

// roundTrip is the shared request path: fault decisions, counters, and
// page dispatch. It returns the full response plus the wire faults for
// the caller (in-process transport or HTTP handler) to apply.
func (w *Web) roundTrip(ctx context.Context, req *webclient.Request) (*webclient.Response, wireFaults, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var wf wireFaults
	if err := ctx.Err(); err != nil {
		return nil, wf, err
	}
	host, path, err := splitHTTPURL(req.URL)
	if err != nil {
		return nil, wf, err
	}
	w.mu.Lock()
	site, ok := w.sites[host]
	w.mu.Unlock()
	if !ok {
		return nil, wf, fmt.Errorf("websim: no such host %q", host)
	}
	now := w.clock.Now()
	site.mu.Lock()
	if req.Method == "HEAD" {
		site.heads++
	} else {
		site.gets++
	}
	down, timeout, hang := site.down, site.timeout, site.hang
	if site.failEvery > 0 && (site.heads+site.gets)%site.failEvery == 0 {
		timeout = true
	}
	wf = wireFaults{truncate: site.truncate, dribbleChunk: site.dribbleChunk, dribbleDelay: site.dribbleDelay}
	var latency time.Duration
	var inject5xx *webclient.Response
	if p := site.faults; p != nil {
		latency = p.Latency
		if p.TruncateBodies > 0 {
			wf.truncate = p.TruncateBodies
		}
		if p.DribbleChunk > 0 {
			wf.dribbleChunk, wf.dribbleDelay = p.DribbleChunk, p.DribbleDelay
		}
		if p.FlapPeriod > 0 && p.FlapDown > 0 {
			// Down at the start of every period, up for the rest.
			if elapsed := now.Sub(site.flapStart) % p.FlapPeriod; elapsed >= 0 && elapsed < p.FlapDown {
				down = true
			}
		}
		if !down && p.FailProb > 0 && site.faultRng.Float64() < p.FailProb {
			status := p.FailStatus
			if status == 0 {
				status = 503
			}
			inject5xx = &webclient.Response{Status: status, RetryAfter: p.RetryAfter}
		}
	}
	page := site.pages[path]
	site.mu.Unlock()
	w.metrics().Counter("websim.requests").Inc()
	if latency > 0 {
		if serr := simclock.Sleep(ctx, w.clock, latency); serr != nil {
			return nil, wf, fmt.Errorf("websim: %s latency interrupted: %w", host, serr)
		}
	}
	switch {
	case hang:
		w.metrics().Counter("websim.faults").Inc()
		<-ctx.Done()
		return nil, wf, fmt.Errorf("websim: %s hung: %w", host, ctx.Err())
	case down:
		w.metrics().Counter("websim.faults").Inc()
		return nil, wf, ErrHostDown
	case timeout:
		w.metrics().Counter("websim.faults").Inc()
		return nil, wf, ErrTimeout
	case inject5xx != nil:
		w.metrics().Counter("websim.faults").Inc()
		w.metrics().Counter("websim.faults.injected5xx").Inc()
		return inject5xx, wf, nil
	case page == nil:
		return &webclient.Response{Status: 404}, wf, nil
	}
	return page.respond(req, w.clock.Now()), wf, nil
}

// splitHTTPURL splits an http:// URL into host and path.
func splitHTTPURL(url string) (host, path string, err error) {
	rest, ok := strings.CutPrefix(url, "http://")
	if !ok {
		return "", "", fmt.Errorf("websim: unsupported URL %q", url)
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i], rest[i:], nil
	}
	return rest, "/", nil
}

// Handler adapts the web to net/http for integration tests over real
// sockets. Because every virtual host shares one listener, the logical
// host is carried as the first path segment: GET /www.yahoo.com/path.
func (w *Web) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		trimmed := strings.TrimPrefix(r.URL.Path, "/")
		host, path, ok := strings.Cut(trimmed, "/")
		if !ok {
			path = ""
		}
		req := &webclient.Request{
			Method: r.Method,
			URL:    "http://" + host + "/" + path,
		}
		if ims := r.Header.Get("If-Modified-Since"); ims != "" {
			// Robust HTTP-date parsing: real clients may send any of the
			// three RFC 9110 forms.
			if t, perr := httpdate.Parse(ims); perr == nil {
				req.IfModifiedSince = t
			}
		}
		if r.Method == "POST" {
			body, rerr := io.ReadAll(r.Body)
			if rerr != nil {
				http.Error(rw, rerr.Error(), http.StatusBadRequest)
				return
			}
			req.Body = string(body)
			req.ContentType = r.Header.Get("Content-Type")
		}
		ctx := r.Context()
		if tp := r.Header.Get(obs.TraceParentHeader); tp != "" {
			// Keep the socket transparent to tracing: a fetch through the
			// socket-backed sim joins the caller's trace like any server.
			if sc, ok := obs.Extract(tp); ok {
				ctx = obs.WithRemote(ctx, sc)
			}
			req.TraceParent = tp
		}
		resp, wf, err := w.roundTrip(ctx, req)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadGateway)
			return
		}
		if !resp.LastModified.IsZero() {
			rw.Header().Set("Last-Modified", resp.LastModified.UTC().Format(http.TimeFormat))
		}
		if resp.Location != "" {
			// Rewrite the logical URL into the path-prefixed form.
			loc := resp.Location
			if h, p, lerr := splitHTTPURL(loc); lerr == nil {
				loc = "/" + h + p
			}
			rw.Header().Set("Location", loc)
		}
		if resp.RetryAfter > 0 {
			secs := int(resp.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			rw.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		body := resp.Body
		if r.Method == "HEAD" {
			body = ""
		}
		if wf.truncate > 0 && len(body) > wf.truncate {
			// Promise the full body but deliver less: the client's body
			// read sees an unexpected EOF, exercising its read-error path
			// the way a dropped connection mid-transfer would.
			rw.Header().Set("Content-Length", strconv.Itoa(len(body)))
			rw.WriteHeader(resp.Status)
			io.WriteString(rw, body[:wf.truncate])
			return
		}
		rw.WriteHeader(resp.Status)
		if body == "" {
			return
		}
		if wf.dribbleChunk > 0 && wf.dribbleDelay > 0 {
			// Dribble the body out in small flushed chunks with real wall
			// pauses, so slow-reader handling is exercised over a socket.
			flusher, _ := rw.(http.Flusher)
			for len(body) > 0 {
				n := wf.dribbleChunk
				if n > len(body) {
					n = len(body)
				}
				io.WriteString(rw, body[:n])
				body = body[n:]
				if flusher != nil {
					flusher.Flush()
				}
				if len(body) > 0 {
					select {
					case <-r.Context().Done():
						return
					case <-time.After(wf.dribbleDelay):
					}
				}
			}
			return
		}
		fmt.Fprint(rw, body)
	})
}

// --- change processes -------------------------------------------------------

// process drives one page's evolution on the simulated clock.
type process struct {
	page     *Page
	interval time.Duration
	next     time.Time
	step     int
	gen      func(step int) string
}

// Evolve schedules page to be regenerated by gen every interval of
// simulated time, starting one interval from now. gen receives the step
// number (1, 2, ...). The initial content (step 0) is installed
// immediately.
func (w *Web) Evolve(page *Page, interval time.Duration, gen func(step int) string) {
	page.Set(gen(0))
	w.mu.Lock()
	defer w.mu.Unlock()
	w.processes = append(w.processes, &process{
		page:     page,
		interval: interval,
		next:     w.clock.Now().Add(interval),
		gen:      gen,
	})
}

// AdvanceTo moves the simulated clock to t, applying every scheduled
// change that falls due on the way, in time order.
func (w *Web) AdvanceTo(t time.Time) {
	for {
		w.mu.Lock()
		var earliest *process
		for _, p := range w.processes {
			if !p.next.After(t) && (earliest == nil || p.next.Before(earliest.next)) {
				earliest = p
			}
		}
		w.mu.Unlock()
		if earliest == nil {
			break
		}
		w.clock.Set(earliest.next)
		earliest.step++
		earliest.page.SetAt(earliest.gen(earliest.step), earliest.next)
		earliest.next = earliest.next.Add(earliest.interval)
	}
	w.clock.Set(t)
}

// Advance moves the clock forward by d, applying due changes.
func (w *Web) Advance(d time.Duration) {
	w.AdvanceTo(w.clock.Now().Add(d))
}
