package websim

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aide/internal/simclock"
	"aide/internal/webclient"
)

func newWeb() *Web {
	return New(simclock.New(time.Time{}))
}

func TestBasicServe(t *testing.T) {
	w := newWeb()
	p := w.Site("www.example.com").Page("/index.html")
	p.Set("<html>v1</html>")
	c := webclient.New(w)

	info, err := c.Get(context.Background(), "http://www.example.com/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != 200 || info.Body != "<html>v1</html>" {
		t.Fatalf("info = %+v", info)
	}
	if !info.HasLastModified {
		t.Error("static page missing Last-Modified")
	}
	// HEAD carries the date but no body.
	info, err = c.Head(context.Background(), "http://www.example.com/index.html")
	if err != nil || info.HasBody {
		t.Errorf("HEAD: %+v err=%v", info, err)
	}
}

func TestLastModifiedTracksClock(t *testing.T) {
	w := newWeb()
	p := w.Site("h").Page("/p")
	p.Set("v1")
	t1 := w.Clock().Now()
	w.Advance(48 * time.Hour)
	p.Set("v2")
	t2 := w.Clock().Now()

	c := webclient.New(w)
	info, _ := c.Head(context.Background(), "http://h/p")
	if !info.LastModified.Equal(t2) {
		t.Errorf("Last-Modified = %v, want %v", info.LastModified, t2)
	}
	if t2.Sub(t1) != 48*time.Hour {
		t.Errorf("clock advance wrong: %v", t2.Sub(t1))
	}
}

func TestMissingHostAndPage(t *testing.T) {
	w := newWeb()
	w.Site("h").Page("/exists").Set("x")
	c := webclient.New(w)
	if _, err := c.Head(context.Background(), "http://nohost/"); err == nil {
		t.Error("unknown host did not error")
	}
	info, err := c.Head(context.Background(), "http://h/missing")
	if err != nil || info.Status != 404 {
		t.Errorf("missing page: %+v err=%v", info, err)
	}
}

func TestFaultInjection(t *testing.T) {
	w := newWeb()
	s := w.Site("h")
	s.Page("/p").Set("x")
	c := webclient.New(w)

	s.SetDown(true)
	if _, err := c.Head(context.Background(), "http://h/p"); err == nil {
		t.Error("down host served request")
	}
	s.SetDown(false)
	s.SetTimeout(true)
	if _, err := c.Head(context.Background(), "http://h/p"); err == nil {
		t.Error("timing-out host served request")
	}
	s.SetTimeout(false)
	if info, err := c.Head(context.Background(), "http://h/p"); err != nil || info.Status != 200 {
		t.Errorf("recovered host: %+v err=%v", info, err)
	}
}

func TestGoneAndRedirect(t *testing.T) {
	w := newWeb()
	s := w.Site("h")
	s.Page("/dead").Set("x")
	s.Page("/dead").SetGone()
	s.Page("/old").SetRedirect("http://h/new")
	s.Page("/new").Set("moved here")
	c := webclient.New(w)

	info, err := c.Head(context.Background(), "http://h/dead")
	if err != nil || webclient.Classify(info.Status, nil) != webclient.Gone {
		t.Errorf("gone page: %+v err=%v", info, err)
	}
	info, err = c.Get(context.Background(), "http://h/old")
	if err != nil || info.Body != "moved here" || info.Redirected != 1 {
		t.Errorf("redirect: %+v err=%v", info, err)
	}
}

func TestDynamicCounterPage(t *testing.T) {
	w := newWeb()
	p := w.Site("h").Page("/counter")
	p.SetDynamic(CounterBody("Counter"))
	c := webclient.New(w)

	i1, _ := c.Get(context.Background(), "http://h/counter")
	i2, _ := c.Get(context.Background(), "http://h/counter")
	if i1.Body == i2.Body {
		t.Error("counter page identical across fetches")
	}
	if i1.HasLastModified || i2.HasLastModified {
		t.Error("dynamic page advertised Last-Modified")
	}
}

func TestClockBodyChangesWithTime(t *testing.T) {
	w := newWeb()
	p := w.Site("h").Page("/clock")
	p.SetDynamic(ClockBody("Clock"))
	c := webclient.New(w)
	i1, _ := c.Get(context.Background(), "http://h/clock")
	w.Advance(time.Hour)
	i2, _ := c.Get(context.Background(), "http://h/clock")
	if i1.Body == i2.Body {
		t.Error("clock page identical across time")
	}
}

func TestRequestCounters(t *testing.T) {
	w := newWeb()
	w.Site("a").Page("/p").Set("x")
	w.Site("b").Page("/p").Set("y")
	c := webclient.New(w)
	c.Head(context.Background(), "http://a/p")
	c.Head(context.Background(), "http://a/p")
	c.Get(context.Background(), "http://b/p")

	if h, g := w.Site("a").Requests(); h != 2 || g != 0 {
		t.Errorf("site a = (%d,%d)", h, g)
	}
	if h, g := w.TotalRequests(); h != 2 || g != 1 {
		t.Errorf("total = (%d,%d)", h, g)
	}
	w.ResetRequestCounts()
	if h, g := w.TotalRequests(); h != 0 || g != 0 {
		t.Errorf("after reset = (%d,%d)", h, g)
	}
}

func TestEvolveAppendsOnSchedule(t *testing.T) {
	w := newWeb()
	p := w.Site("h").Page("/news")
	w.Evolve(p, 24*time.Hour, AppendGenerator("News", 1))
	if p.VersionCount() != 1 {
		t.Fatalf("initial versions = %d", p.VersionCount())
	}
	w.Advance(72 * time.Hour)
	if p.VersionCount() != 4 { // initial + 3 daily steps
		t.Fatalf("versions after 3 days = %d, want 4", p.VersionCount())
	}
	// Append-only: the previous body is a prefix-preserving subset.
	body := p.Current().Body
	if !strings.Contains(body, "Item 0:") || !strings.Contains(body, "Item 3:") {
		t.Errorf("appended items missing:\n%s", body)
	}
	// Modification times ascend with the schedule.
	v := p.Current()
	if got := v.Time.Sub(simclock.Epoch); got != 72*time.Hour {
		t.Errorf("last mod at +%v, want +72h", got)
	}
}

func TestEvolveOrderAcrossPages(t *testing.T) {
	w := newWeb()
	var order []string
	p1 := w.Site("h").Page("/a")
	p2 := w.Site("h").Page("/b")
	w.Evolve(p1, 36*time.Hour, func(step int) string {
		if step > 0 {
			order = append(order, "a")
		}
		return "a"
	})
	w.Evolve(p2, 24*time.Hour, func(step int) string {
		if step > 0 {
			order = append(order, "b")
		}
		return "b"
	})
	w.Advance(80 * time.Hour)
	// b fires at 24,48,72; a at 36,72 — interleaved in time order, with
	// the 72h tie broken deterministically (earliest-first scan).
	want := "b a b a b" // 24,36,48,72(a),72(b) — a registered first wins ties
	got := strings.Join(order, " ")
	if got != "b a b a b" && got != "b a b b a" {
		t.Errorf("order = %q, want %q (tie either way)", got, want)
	}
}

func TestGeneratorsShapes(t *testing.T) {
	app := AppendGenerator("T", 7)
	if app(0) == app(1) {
		t.Error("append generator static")
	}
	if !strings.HasPrefix(app(1), app(0)[:100]) {
		t.Error("append generator not prefix-stable")
	}

	edit := EditGenerator("T", 10, 7)
	if edit(0) == edit(1) {
		t.Error("edit generator static")
	}
	// Edits are in place: sizes stay close.
	if d := len(edit(1)) - len(edit(0)); d > 500 || d < -500 {
		t.Errorf("edit changed size by %d", d)
	}

	rep := ReplaceGenerator("T", 200, 7)
	if rep(1) == rep(2) {
		t.Error("replace generator repeated content")
	}

	st := StaticGenerator("T", 100, 7)
	if st(0) != st(5) {
		t.Error("static generator changed")
	}

	sz := SizedChangeGenerator(400, 20, 7)
	if sz(1) == sz(2) {
		t.Error("sized-change generator static")
	}
}

func TestFillerDeterministic(t *testing.T) {
	a := AppendGenerator("X", 42)(3)
	b := AppendGenerator("X", 42)(3)
	if a != b {
		t.Error("generator not deterministic for same seed/step")
	}
}

func TestHTTPHandlerIntegration(t *testing.T) {
	w := newWeb()
	w.Site("www.usenix.org").Page("/index.html").Set("<html>usenix</html>")
	w.Site("www.usenix.org").Page("/old").SetRedirect("http://www.usenix.org/index.html")
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	c := webclient.New(&webclient.HTTPTransport{})
	info, err := c.Get(context.Background(), srv.URL+"/www.usenix.org/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != 200 || info.Body != "<html>usenix</html>" {
		t.Errorf("info = %+v", info)
	}
	if !info.HasLastModified {
		t.Error("Last-Modified header lost over real HTTP")
	}
	// Redirects are rewritten into the path-prefixed namespace.
	info, err = c.Get(context.Background(), srv.URL+"/www.usenix.org/old")
	if err != nil || info.Body != "<html>usenix</html>" {
		t.Errorf("redirect over real HTTP: %+v err=%v", info, err)
	}
}

func BenchmarkSimRoundTrip(b *testing.B) {
	w := newWeb()
	w.Site("h").Page("/p").Set(strings.Repeat("content ", 500))
	c := webclient.New(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Head(context.Background(), "http://h/p"); err != nil {
			b.Fatal(err)
		}
	}
}
