package websim

import (
	"context"
	"testing"
	"time"

	"aide/internal/simclock"
	"aide/internal/webclient"
)

// A wedged server (SetHang) holds the connection open forever; the
// client's per-request timeout must trip, and the failure must classify
// Transient — §3.1's overloaded-proxy scenario.
func TestHungHostTripsPerRequestTimeout(t *testing.T) {
	clock := simclock.New(time.Time{})
	web := New(clock)
	web.Site("stuck.example").Page("/p").Set("<P>never delivered.</P>")
	web.Site("stuck.example").SetHang(true)

	c := webclient.New(web)
	c.Timeout = 30 * time.Millisecond // wall time: WithTimeout is real
	c.Clock = clock                   // backoff (none here) in simulated time

	start := time.Now()
	_, err := c.Get(context.Background(), "http://stuck.example/p")
	if err == nil {
		t.Fatal("hung host returned success")
	}
	if !webclient.IsTimeout(err) {
		t.Errorf("err = %v, want a timeout", err)
	}
	if kind := webclient.Classify(0, err); kind != webclient.Transient {
		t.Errorf("Classify = %v, want Transient", kind)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v; per-request deadline did not trip", elapsed)
	}
}

// With retry enabled, each attempt against a hung host gets its own
// per-attempt deadline, and the backoff between them spends simulated
// time only.
func TestHungHostRetriedPerAttempt(t *testing.T) {
	clock := simclock.New(time.Time{})
	web := New(clock)
	site := web.Site("stuck.example")
	site.Page("/p").Set("<P>x</P>")
	site.SetHang(true)

	c := webclient.New(web)
	c.Timeout = 20 * time.Millisecond
	c.Retry = webclient.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Minute, MaxDelay: time.Hour}
	c.Clock = clock

	if _, err := c.Get(context.Background(), "http://stuck.example/p"); err == nil {
		t.Fatal("hung host returned success")
	}
	if _, gets := site.Requests(); gets != 3 {
		t.Errorf("attempts = %d, want 3", gets)
	}
	// Two backoff pauses, 1m then 2m, in simulated time.
	if got := clock.Now().Sub(simclock.Epoch); got != 3*time.Minute {
		t.Errorf("simulated backoff = %v, want 3m", got)
	}
}

// A caller's own deadline aborts the hang even with no per-request
// timeout configured.
func TestHungHostHonorsCallerDeadline(t *testing.T) {
	clock := simclock.New(time.Time{})
	web := New(clock)
	web.Site("stuck.example").Page("/p").Set("<P>x</P>")
	web.Site("stuck.example").SetHang(true)

	c := webclient.New(web)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Get(ctx, "http://stuck.example/p")
	if err == nil {
		t.Fatal("hung host returned success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("caller deadline did not abort the hang (%v)", elapsed)
	}
}
