package websim

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"aide/internal/simclock"
	"aide/internal/webclient"
)

func TestConditionalGet304(t *testing.T) {
	w := New(simclock.New(time.Time{}))
	p := w.Site("h").Page("/p")
	p.Set("v1")
	mod := w.Clock().Now()
	c := webclient.New(w)

	_, notMod, err := c.GetConditional(context.Background(), "http://h/p", mod.Add(time.Hour))
	if err != nil || !notMod {
		t.Fatalf("304 path: notMod=%v err=%v", notMod, err)
	}
	// Page changes: conditional GET returns the new body.
	w.Advance(24 * time.Hour)
	p.Set("v2")
	info, notMod, err := c.GetConditional(context.Background(), "http://h/p", mod)
	if err != nil || notMod || info.Body != "v2" {
		t.Fatalf("changed path: %+v notMod=%v err=%v", info, notMod, err)
	}
	// Pages without Last-Modified never answer 304.
	cgi := w.Site("h").Page("/cgi")
	cgi.Set("x")
	cgi.SetNoLastModified()
	_, notMod, err = c.GetConditional(context.Background(), "http://h/cgi", mod.Add(100*time.Hour))
	if err != nil || notMod {
		t.Fatalf("no-LM page answered 304: notMod=%v err=%v", notMod, err)
	}
}

func TestFormService(t *testing.T) {
	w := New(simclock.New(time.Time{}))
	p := w.Site("svc").Page("/search")
	p.SetForm(func(form url.Values, n int) string {
		return "results for " + form.Get("q")
	})
	c := webclient.New(w)

	info, err := c.Post(context.Background(), "http://svc/search", "q=mobile+computing")
	if err != nil || !strings.Contains(info.Body, "results for mobile computing") {
		t.Fatalf("post: %+v err=%v", info, err)
	}
	// Malformed body is a 400.
	info, err = c.Post(context.Background(), "http://svc/search", "%zz=bad")
	if err != nil || info.Status != 400 {
		t.Fatalf("bad form: %+v err=%v", info, err)
	}
	// POST to a non-form page is a 405.
	w.Site("svc").Page("/plain").Set("x")
	info, err = c.Post(context.Background(), "http://svc/plain", "a=1")
	if err != nil || info.Status != 405 {
		t.Fatalf("post to plain page: %+v err=%v", info, err)
	}
}

func TestFormServiceOverRealHTTP(t *testing.T) {
	w := New(simclock.New(time.Time{}))
	p := w.Site("svc.example").Page("/lookup")
	p.SetForm(func(form url.Values, n int) string {
		return "hello " + form.Get("name")
	})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/svc.example/lookup", url.Values{"name": {"fred"}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64)
	n, _ := resp.Body.Read(buf)
	if got := string(buf[:n]); got != "hello fred" {
		t.Errorf("body = %q", got)
	}
}

func TestConditionalGetOverRealHTTP(t *testing.T) {
	w := New(simclock.New(time.Time{}))
	p := w.Site("h").Page("/p")
	p.Set("body")
	mod := w.Clock().Now()
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	c := webclient.New(&webclient.HTTPTransport{})
	_, notMod, err := c.GetConditional(context.Background(), srv.URL+"/h/p", mod.Add(time.Minute))
	if err != nil || !notMod {
		t.Fatalf("real-HTTP 304: notMod=%v err=%v", notMod, err)
	}
}
