package websim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// This file holds the page generators used by the experiments and
// examples: deterministic synthetic content whose evolution mimics the
// page populations the paper's measurements depend on — append-mostly
// "what's new" pages, edit-in-place pages, full-replacement pages, and
// the "noisy" counter/clock pages of §3.1.

// vocabulary for deterministic filler text.
var vocabulary = []string{
	"system", "network", "server", "client", "protocol", "document",
	"version", "archive", "change", "update", "release", "research",
	"mobile", "computing", "software", "interface", "caching", "storage",
	"index", "project", "group", "paper", "conference", "workshop",
	"available", "information", "announcement", "meeting", "schedule",
}

// Filler produces n deterministic pseudo-English words from rng.
func Filler(rng *rand.Rand, n int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = vocabulary[rng.Intn(len(vocabulary))]
	}
	return strings.Join(words, " ")
}

// FillerSentences produces n sentences of 6–14 words each.
func FillerSentences(rng *rand.Rand, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(Filler(rng, 6+rng.Intn(9)))
		sb.WriteByte('.')
	}
	return sb.String()
}

// AppendGenerator returns a generator for a "what's new"-style page: a
// header plus a list that grows by one dated item per step. Old items
// are retained, so changes are small relative to page size — the shape
// the RCS deltas compress well.
func AppendGenerator(title string, seed int64) func(step int) string {
	return func(step int) string {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		fmt.Fprintf(&sb, "<HTML><HEAD><TITLE>%s</TITLE></HEAD><BODY>\n<H1>%s</H1>\n<UL>\n", title, title)
		for i := 0; i <= step; i++ {
			// Each item's text is a pure function of (seed, i), so item
			// i is identical across steps: append-only evolution.
			fmt.Fprintf(&sb, "<LI><A HREF=\"item%d.html\">Item %d: %s.</A>\n",
				i, i, Filler(rng, 5+rng.Intn(5)))
		}
		sb.WriteString("</UL>\n</BODY></HTML>\n")
		return sb.String()
	}
}

// EditGenerator returns a generator for a page of stable paragraphs in
// which each step rewrites one paragraph in place — the WikiWikiWeb-style
// "content can be modified anywhere on the page" case (§1).
func EditGenerator(title string, paragraphs int, seed int64) func(step int) string {
	base := make([]string, paragraphs)
	rng := rand.New(rand.NewSource(seed))
	for i := range base {
		base[i] = FillerSentences(rng, 2+rng.Intn(3))
	}
	return func(step int) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "<HTML><HEAD><TITLE>%s</TITLE></HEAD><BODY>\n<H1>%s</H1>\n", title, title)
		for i, para := range base {
			text := para
			if step > 0 && i == (step*7)%paragraphs {
				erng := rand.New(rand.NewSource(seed + int64(step)*1000))
				text = FillerSentences(erng, 2+erng.Intn(3))
			}
			fmt.Fprintf(&sb, "<P>%s</P>\n", text)
		}
		sb.WriteString("</BODY></HTML>\n")
		return sb.String()
	}
}

// ReplaceGenerator returns a generator whose every step is entirely new
// content of roughly bodyWords words — the paper's "What's New in
// Mosaic" case where the whole page is replaced and HtmlDiff is useless
// but archival cost is high (§8.2).
func ReplaceGenerator(title string, bodyWords int, seed int64) func(step int) string {
	return func(step int) string {
		rng := rand.New(rand.NewSource(seed + int64(step)))
		var sb strings.Builder
		fmt.Fprintf(&sb, "<HTML><HEAD><TITLE>%s #%d</TITLE></HEAD><BODY>\n<H1>%s</H1>\n", title, step, title)
		for remaining := bodyWords; remaining > 0; {
			n := 40
			if remaining < n {
				n = remaining
			}
			fmt.Fprintf(&sb, "<P>%s.</P>\n", Filler(rng, n))
			remaining -= n
		}
		sb.WriteString("</BODY></HTML>\n")
		return sb.String()
	}
}

// StaticGenerator returns a generator that never changes.
func StaticGenerator(title string, bodyWords int, seed int64) func(step int) string {
	body := func() string {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		fmt.Fprintf(&sb, "<HTML><HEAD><TITLE>%s</TITLE></HEAD><BODY>\n<H1>%s</H1>\n", title, title)
		fmt.Fprintf(&sb, "<P>%s</P>\n</BODY></HTML>\n", FillerSentences(rng, bodyWords/8+1))
		return sb.String()
	}()
	return func(int) string { return body }
}

// CounterBody returns a dynamic page body generator embedding the access
// count — a page that "reports the number of times it has been accessed"
// and therefore looks different on every retrieval (§3.1).
func CounterBody(title string) func(now time.Time, requestNum int) string {
	return func(_ time.Time, requestNum int) string {
		return fmt.Sprintf("<HTML><BODY><H1>%s</H1>\n<P>You are visitor number %d.</P>\n</BODY></HTML>\n",
			title, requestNum)
	}
}

// ClockBody returns a dynamic body generator embedding the current time
// — the other classic noisy page.
func ClockBody(title string) func(now time.Time, requestNum int) string {
	return func(now time.Time, _ int) string {
		return fmt.Sprintf("<HTML><BODY><H1>%s</H1>\n<P>Generated at %s.</P>\n</BODY></HTML>\n",
			title, now.UTC().Format(time.ANSIC))
	}
}

// SizedChangeGenerator returns a generator for the §7 storage experiment:
// a page with a stable body of baseWords words where each step rewrites a
// slice of changeWords words, so each check-in's delta is proportional to
// changeWords.
func SizedChangeGenerator(baseWords, changeWords int, seed int64) func(step int) string {
	rng := rand.New(rand.NewSource(seed))
	paras := make([]string, 0, baseWords/40+1)
	for remaining := baseWords; remaining > 0; {
		n := 40
		if remaining < n {
			n = remaining
		}
		paras = append(paras, Filler(rng, n))
		remaining -= n
	}
	return func(step int) string {
		var sb strings.Builder
		sb.WriteString("<HTML><BODY>\n")
		for i, p := range paras {
			text := p
			if step > 0 && len(paras) > 0 && i == step%len(paras) {
				crng := rand.New(rand.NewSource(seed + int64(step)*31))
				text = Filler(crng, changeWords)
			}
			fmt.Fprintf(&sb, "<P>%s.</P>\n", text)
		}
		sb.WriteString("</BODY></HTML>\n")
		return sb.String()
	}
}
