package websim

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aide/internal/webclient"
)

// fetchStatuses performs n GETs and returns the status sequence, with
// -1 standing in for transport errors.
func fetchStatuses(t *testing.T, c *webclient.Client, url string, n int) []int {
	t.Helper()
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		info, err := c.Get(context.Background(), url)
		if err != nil {
			out = append(out, -1)
			continue
		}
		out = append(out, info.Status)
	}
	return out
}

func TestFaultProfileDeterministic(t *testing.T) {
	w := newWeb()
	s := w.Site("flaky.example.com")
	s.Page("/p").Set("content")
	c := webclient.New(w)

	profile := FaultProfile{Seed: 42, FailProb: 0.5, RetryAfter: 7 * time.Second}
	s.SetFaults(profile)
	first := fetchStatuses(t, c, "http://flaky.example.com/p", 30)

	// Reinstalling the same profile reseeds the fault source, so the
	// exact same sequence must replay.
	s.SetFaults(profile)
	second := fetchStatuses(t, c, "http://flaky.example.com/p", 30)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d: first run %d, replay %d", i, first[i], second[i])
		}
	}
	var fives, oks int
	for _, st := range first {
		switch st {
		case 503:
			fives++
		case 200:
			oks++
		}
	}
	if fives == 0 || oks == 0 {
		t.Fatalf("FailProb=0.5 over 30 requests gave %d 503s and %d 200s", fives, oks)
	}

	// Injected 503s carry the advertised Retry-After over the transport.
	s.SetFaults(FaultProfile{Seed: 1, FailProb: 1, RetryAfter: 7 * time.Second})
	resp, err := w.RoundTrip(context.Background(), &webclient.Request{Method: "GET", URL: "http://flaky.example.com/p"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 503 || resp.RetryAfter != 7*time.Second {
		t.Errorf("injected fault = status %d RetryAfter %v", resp.Status, resp.RetryAfter)
	}
}

func TestFaultProfileFlapSchedule(t *testing.T) {
	w := newWeb()
	s := w.Site("flappy.example.com")
	s.Page("/p").Set("content")
	c := webclient.New(w)
	s.SetFaults(FaultProfile{FlapPeriod: 10 * time.Minute, FlapDown: 2 * time.Minute})

	url := "http://flappy.example.com/p"
	if _, err := c.Get(context.Background(), url); err == nil {
		t.Fatal("host up at start of flap period, want down")
	}
	w.Advance(2 * time.Minute)
	if _, err := c.Get(context.Background(), url); err != nil {
		t.Fatalf("host down after flap window: %v", err)
	}
	w.Advance(8 * time.Minute) // start of the next period
	if _, err := c.Get(context.Background(), url); err == nil {
		t.Fatal("host up at start of second flap period, want down")
	}
	w.Advance(3 * time.Minute)
	if _, err := c.Get(context.Background(), url); err != nil {
		t.Fatalf("host down mid-period: %v", err)
	}
}

func TestFaultProfileLatencySpendsSimTime(t *testing.T) {
	w := newWeb()
	s := w.Site("slow.example.com")
	s.Page("/p").Set("content")
	s.SetFaults(FaultProfile{Latency: 45 * time.Second})
	c := webclient.New(w)

	before := w.Clock().Now()
	if _, err := c.Get(context.Background(), "http://slow.example.com/p"); err != nil {
		t.Fatal(err)
	}
	if got := w.Clock().Now().Sub(before); got != 45*time.Second {
		t.Errorf("latency consumed %v of simulated time, want 45s", got)
	}
}

func TestTruncateInProcess(t *testing.T) {
	w := newWeb()
	s := w.Site("cut.example.com")
	s.Page("/p").Set("0123456789")
	s.SetTruncate(4)
	c := webclient.New(w)

	info, err := c.Get(context.Background(), "http://cut.example.com/p")
	if err != nil {
		t.Fatal(err)
	}
	if info.Body != "0123" {
		t.Errorf("truncated body = %q, want %q", info.Body, "0123")
	}
}

func TestTruncateOverSockets(t *testing.T) {
	w := newWeb()
	s := w.Site("cut.example.com")
	s.Page("/p").Set(strings.Repeat("x", 4096))
	s.SetFaults(FaultProfile{TruncateBodies: 100})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	// The handler promises the full Content-Length but delivers 100
	// bytes, so the client's body read must fail — this is a read-path
	// transport error, not a status.
	c := webclient.New(&webclient.HTTPTransport{})
	_, err := c.Get(context.Background(), srv.URL+"/cut.example.com/p")
	if err == nil {
		t.Fatal("GET of a wire-truncated body succeeded, want read error")
	}
	if webclient.Classify(0, err) != webclient.Transient {
		t.Errorf("truncation error classified %v, want Transient", webclient.Classify(0, err))
	}
}

func TestDribbleInProcessSpendsSimTime(t *testing.T) {
	w := newWeb()
	s := w.Site("drip.example.com")
	s.Page("/p").Set(strings.Repeat("x", 100))
	s.SetDribble(10, time.Second) // 10 chunks, 1s apiece
	c := webclient.New(w)

	before := w.Clock().Now()
	info, err := c.Get(context.Background(), "http://drip.example.com/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Body) != 100 {
		t.Errorf("dribbled body length = %d, want 100", len(info.Body))
	}
	if got := w.Clock().Now().Sub(before); got != 10*time.Second {
		t.Errorf("dribble consumed %v of simulated time, want 10s", got)
	}
}

func TestDribbleOverSockets(t *testing.T) {
	w := newWeb()
	s := w.Site("drip.example.com")
	s.Page("/p").Set(strings.Repeat("y", 64))
	s.SetDribble(16, time.Millisecond)
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	c := webclient.New(&webclient.HTTPTransport{})
	start := time.Now()
	info, err := c.Get(context.Background(), srv.URL+"/drip.example.com/p")
	if err != nil {
		t.Fatal(err)
	}
	if info.Body != strings.Repeat("y", 64) {
		t.Errorf("dribbled body corrupted: %d bytes", len(info.Body))
	}
	if time.Since(start) < 3*time.Millisecond {
		t.Error("dribble over sockets finished too fast to have paused")
	}
}

func TestRetryAfterHeaderOverSockets(t *testing.T) {
	w := newWeb()
	s := w.Site("busy.example.com")
	s.Page("/p").Set("content")
	s.SetFaults(FaultProfile{Seed: 1, FailProb: 1, RetryAfter: 9 * time.Second})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	tr := &webclient.HTTPTransport{}
	resp, err := tr.RoundTrip(context.Background(), &webclient.Request{
		Method: "GET", URL: srv.URL + "/busy.example.com/p",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 503 || resp.RetryAfter != 9*time.Second {
		t.Errorf("over sockets: status %d RetryAfter %v, want 503 / 9s", resp.Status, resp.RetryAfter)
	}
}

func TestFaultProfileComposesWithSetDown(t *testing.T) {
	w := newWeb()
	s := w.Site("dead.example.com")
	s.Page("/p").Set("content")
	s.SetFaults(FaultProfile{Seed: 3, FailProb: 0.1})
	s.SetDown(true)
	c := webclient.New(w)
	if _, err := c.Get(context.Background(), "http://dead.example.com/p"); err == nil {
		t.Fatal("SetDown(true) host served a request despite fault profile")
	}
	s.SetDown(false)
	s.ClearFaults()
	if _, err := c.Get(context.Background(), "http://dead.example.com/p"); err != nil {
		t.Fatalf("cleared host still failing: %v", err)
	}
}
