package lcs

// AnchorWeights extends Weights with a content hash per element, enabling
// the Hunt–McIlroy-style anchored fast path: elements whose hash occurs
// exactly once in each sequence pin the alignment, and the O(n·m)
// Hirschberg recurrence runs only on the (typically tiny) gaps between
// anchors.
//
// The hash contract: HashA(i) == HashB(j) must imply that A[i] and B[j]
// have identical content, and that Weight(i, j) is at least as large as
// any weight either element could earn in a different pairing (exact
// matches dominate fuzzy ones). HtmlDiff's sentence weights satisfy this:
// an identical sentence scores its full content length, while a fuzzy
// match scores only the common words. Anchored guards every pinned pair
// with a Weight check, so a hash collision can cost speed but never
// produce an invalid match.
type AnchorWeights interface {
	Weights
	// HashA returns the content hash of A[i].
	HashA(i int) uint64
	// HashB returns the content hash of B[j].
	HashB(j int) uint64
}

// AnchorStats reports how the anchored fast path handled one alignment.
type AnchorStats struct {
	// Trimmed counts pairs matched during common prefix/suffix trimming.
	Trimmed int
	// Anchors counts unique-hash pairs that pinned the alignment.
	Anchors int
	// Fallback is true when crossing anchors (content moved past unique
	// material) made anchoring ambiguous and the full Hirschberg
	// recurrence ran on the untrimmed middle instead.
	Fallback bool
	// Cells is the number of DP cells actually evaluated — the summed
	// area of the gap subproblems (or the whole middle on fallback).
	Cells int64
	// FullCells is n·m, the cost an unanchored run would have paid.
	FullCells int64
}

// Anchored computes a maximum-weight common subsequence like Hirschberg,
// using content hashes to trim the common prefix and suffix and to pin
// the alignment at sentences whose hash is unique in both sequences.
// Hirschberg's recurrence runs only on the gaps between anchors; when the
// unique hashes appear in different orders on the two sides (anchoring is
// ambiguous) the whole middle falls back to the full recurrence.
func Anchored(w AnchorWeights) []Pair {
	pairs, _ := AnchoredStats(w)
	return pairs
}

// AnchoredStats is Anchored plus instrumentation about the run.
func AnchoredStats(w AnchorWeights) ([]Pair, AnchorStats) {
	n, m := w.LenA(), w.LenB()
	st := AnchorStats{FullCells: int64(n) * int64(m)}
	if n == 0 || m == 0 {
		return nil, st
	}
	out := make([]Pair, 0, min(n, m))

	// Trim the common prefix: identical-content pairs are provably part
	// of some optimal alignment when exact matches dominate (see the
	// AnchorWeights contract).
	alo, ahi, blo, bhi := 0, n, 0, m
	for alo < ahi && blo < bhi && w.HashA(alo) == w.HashB(blo) {
		wt := w.Weight(alo, blo)
		if wt <= 0 {
			break // hash collision or unmatchable pair: stop trimming
		}
		out = append(out, Pair{AIdx: alo, BIdx: blo, Weight: wt})
		alo++
		blo++
		st.Trimmed++
	}
	// Trim the common suffix, collected innermost-first and appended in
	// index order at the end.
	var suffix []Pair
	for ahi > alo && bhi > blo && w.HashA(ahi-1) == w.HashB(bhi-1) {
		wt := w.Weight(ahi-1, bhi-1)
		if wt <= 0 {
			break
		}
		suffix = append(suffix, Pair{AIdx: ahi - 1, BIdx: bhi - 1, Weight: wt})
		ahi--
		bhi--
		st.Trimmed++
	}

	if ahi > alo && bhi > blo {
		anchors, ok := findAnchors(w, alo, ahi, blo, bhi)
		if !ok {
			// Crossing unique hashes: content moved. Pinning would force
			// a possibly suboptimal alignment, so run the full recurrence
			// on the middle.
			st.Fallback = true
			st.Cells += int64(ahi-alo) * int64(bhi-blo)
			hirschberg(w, alo, ahi, blo, bhi, &out)
		} else {
			st.Anchors = len(anchors)
			prevA, prevB := alo, blo
			for _, anc := range anchors {
				st.Cells += int64(anc.AIdx-prevA) * int64(anc.BIdx-prevB)
				hirschberg(w, prevA, anc.AIdx, prevB, anc.BIdx, &out)
				out = append(out, anc)
				prevA, prevB = anc.AIdx+1, anc.BIdx+1
			}
			st.Cells += int64(ahi-prevA) * int64(bhi-prevB)
			hirschberg(w, prevA, ahi, prevB, bhi, &out)
		}
	}

	for i := len(suffix) - 1; i >= 0; i-- {
		out = append(out, suffix[i])
	}
	return out, st
}

// hashOcc tracks how often a hash occurs in one sequence and where its
// single occurrence is (pos is meaningful only while count == 1).
type hashOcc struct {
	count int
	pos   int
}

// findAnchors returns the unique-hash anchor pairs of the middle ranges
// in increasing order on both sides. ok is false when the unique hashes
// cross (their B positions are not increasing), which means content moved
// past unique material and anchoring is ambiguous.
func findAnchors(w AnchorWeights, alo, ahi, blo, bhi int) (anchors []Pair, ok bool) {
	occA := make(map[uint64]hashOcc, ahi-alo)
	for i := alo; i < ahi; i++ {
		h := w.HashA(i)
		o := occA[h]
		o.count++
		o.pos = i
		occA[h] = o
	}
	occB := make(map[uint64]hashOcc, bhi-blo)
	for j := blo; j < bhi; j++ {
		h := w.HashB(j)
		o := occB[h]
		o.count++
		o.pos = j
		occB[h] = o
	}
	// Walk A in order so that anchors come out ascending in AIdx.
	lastB := -1
	for i := alo; i < ahi; i++ {
		h := w.HashA(i)
		if occA[h].count != 1 {
			continue
		}
		ob, present := occB[h]
		if !present || ob.count != 1 {
			continue
		}
		wt := w.Weight(i, ob.pos)
		if wt <= 0 {
			continue // hash collision across unequal content: not an anchor
		}
		if ob.pos <= lastB {
			return nil, false // crossing uniques: ambiguous
		}
		lastB = ob.pos
		anchors = append(anchors, Pair{AIdx: i, BIdx: ob.pos, Weight: wt})
	}
	return anchors, true
}
