// Package lcs implements the longest-common-subsequence algorithms that
// underlie both the RCS-style line deltas and HtmlDiff's weighted sentence
// comparison.
//
// Three algorithms are provided:
//
//   - DP: the textbook quadratic-time, quadratic-space dynamic program over
//     arbitrary non-negative match weights. Used as an oracle in tests and
//     as the ablation baseline for memory measurements.
//   - Hirschberg: the linear-space divide-and-conquer refinement of the
//     same recurrence (Hirschberg, JACM 1977), the algorithm the paper
//     cites for HtmlDiff. Same O(n·m) time, O(min(n,m)) space.
//   - Strings: a Hunt–McIlroy-flavoured algorithm for sequences of opaque
//     equal/unequal tokens (UNIX diff's problem), running in
//     O((r+n) log n) where r is the number of matching index pairs. Used
//     by the line differ that produces RCS ed-script deltas.
//
// All three return the same kind of answer: an increasing sequence of
// index pairs (i, j) meaning element i of A is matched with element j of
// B, such that the total match weight is maximal.
package lcs

import "sort"

// Weights describes two abstract sequences and the reward for matching an
// element of the first against an element of the second. A weight of zero
// means the elements may not be matched. Implementations must be cheap:
// Weight is called O(LenA·LenB) times.
type Weights interface {
	// LenA returns the length of the first sequence.
	LenA() int
	// LenB returns the length of the second sequence.
	LenB() int
	// Weight returns the non-negative reward for matching A[i] with B[j].
	Weight(i, j int) float64
}

// Pair records that A[AIdx] is matched with B[BIdx] at the given weight.
type Pair struct {
	AIdx, BIdx int
	Weight     float64
}

// TotalWeight sums the weights of a match sequence.
func TotalWeight(pairs []Pair) float64 {
	var t float64
	for _, p := range pairs {
		t += p.Weight
	}
	return t
}

// DP computes a maximum-weight common subsequence with the quadratic-space
// dynamic program. It is simple and allocation-heavy by design; prefer
// Hirschberg outside of tests and ablations.
func DP(w Weights) []Pair {
	n, m := w.LenA(), w.LenB()
	if n == 0 || m == 0 {
		return nil
	}
	// score[i][j] = best weight matching A[:i] against B[:j].
	score := make([][]float64, n+1)
	cells := make([]float64, (n+1)*(m+1))
	for i := range score {
		score[i] = cells[i*(m+1) : (i+1)*(m+1)]
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			best := score[i-1][j]
			if s := score[i][j-1]; s > best {
				best = s
			}
			if wt := w.Weight(i-1, j-1); wt > 0 {
				if s := score[i-1][j-1] + wt; s > best {
					best = s
				}
			}
			score[i][j] = best
		}
	}
	// Trace back, preferring diagonal moves so that ties yield matches.
	var rev []Pair
	i, j := n, m
	for i > 0 && j > 0 {
		wt := w.Weight(i-1, j-1)
		switch {
		case wt > 0 && score[i][j] == score[i-1][j-1]+wt:
			rev = append(rev, Pair{AIdx: i - 1, BIdx: j - 1, Weight: wt})
			i--
			j--
		case score[i][j] == score[i-1][j]:
			i--
		default:
			j--
		}
	}
	reverse(rev)
	return rev
}

// Hirschberg computes the same maximum-weight common subsequence as DP in
// linear space using divide and conquer.
func Hirschberg(w Weights) []Pair {
	n, m := w.LenA(), w.LenB()
	if n == 0 || m == 0 {
		return nil
	}
	out := make([]Pair, 0, min(n, m))
	hirschberg(w, 0, n, 0, m, &out)
	return out
}

// hirschberg appends to out the optimal pairs matching A[alo:ahi] against
// B[blo:bhi], in increasing index order.
func hirschberg(w Weights, alo, ahi, blo, bhi int, out *[]Pair) {
	an, bn := ahi-alo, bhi-blo
	if an == 0 || bn == 0 {
		return
	}
	if an == 1 {
		// Base case: match the single A element against the best B
		// element, if any match is possible.
		bestJ, bestW := -1, 0.0
		for j := blo; j < bhi; j++ {
			if wt := w.Weight(alo, j); wt > bestW {
				bestJ, bestW = j, wt
			}
		}
		if bestJ >= 0 {
			*out = append(*out, Pair{AIdx: alo, BIdx: bestJ, Weight: bestW})
		}
		return
	}
	mid := alo + an/2
	// Forward scores for A[alo:mid] vs prefixes of B[blo:bhi].
	fwd := nwScore(w, alo, mid, blo, bhi, false)
	// Backward scores for A[mid:ahi] vs suffixes of B[blo:bhi].
	bwd := nwScore(w, mid, ahi, blo, bhi, true)
	// Choose the split point k maximising fwd[k] + bwd[bn-k].
	split, best := blo, fwd[0]+bwd[bn]
	for k := 0; k <= bn; k++ {
		if s := fwd[k] + bwd[bn-k]; s > best {
			best = s
			split = blo + k
		}
	}
	hirschberg(w, alo, mid, blo, split, out)
	hirschberg(w, mid, ahi, split, bhi, out)
}

// nwScore returns the last row of the LCS score matrix for A[alo:ahi]
// against B[blo:bhi]. When rev is true, both ranges are traversed in
// reverse, producing the scores of suffix alignments. The returned slice
// has length bhi-blo+1; entry k is the best score using the first (or, in
// reverse, last) k elements of the B range.
func nwScore(w Weights, alo, ahi, blo, bhi int, rev bool) []float64 {
	bn := bhi - blo
	prev := make([]float64, bn+1)
	cur := make([]float64, bn+1)
	for i := alo; i < ahi; i++ {
		ai := i
		if rev {
			ai = ahi - 1 - (i - alo)
		}
		cur[0] = 0
		for k := 1; k <= bn; k++ {
			bj := blo + k - 1
			if rev {
				bj = bhi - k
			}
			best := prev[k]
			if cur[k-1] > best {
				best = cur[k-1]
			}
			if wt := w.Weight(ai, bj); wt > 0 {
				if s := prev[k-1] + wt; s > best {
					best = s
				}
			}
			cur[k] = best
		}
		prev, cur = cur, prev
	}
	return prev
}

// Strings computes the LCS of two string sequences under exact equality
// (each match has weight 1), using the match-point/longest-increasing-
// subsequence formulation of Hunt and McIlroy's diff algorithm.
func Strings(a, b []string) []Pair {
	return exactLCS(a, b)
}

// IDs is Strings over interned integer tokens. HtmlDiff interns sentence
// items once per document and runs its inner word-level LCS on the ids,
// replacing string hashing and comparison with integer operations.
func IDs(a, b []int32) []Pair {
	return exactLCS(a, b)
}

// exactLCS is the shared Hunt–McIlroy implementation behind Strings and
// IDs: exact equality, weight 1 per match.
func exactLCS[T comparable](a, b []T) []Pair {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil
	}
	// Trim the common prefix and suffix first; real documents share most
	// of their lines, and this keeps the candidate lists small.
	pre := 0
	for pre < n && pre < m && a[pre] == b[pre] {
		pre++
	}
	suf := 0
	for suf < n-pre && suf < m-pre && a[n-1-suf] == b[m-1-suf] {
		suf++
	}
	pairs := make([]Pair, 0, min(n, m))
	for i := 0; i < pre; i++ {
		pairs = append(pairs, Pair{AIdx: i, BIdx: i, Weight: 1})
	}
	pairs = appendMiddleLCS(a[pre:n-suf], b[pre:m-suf], pre, pairs)
	for i := suf; i > 0; i-- {
		pairs = append(pairs, Pair{AIdx: n - i, BIdx: m - i, Weight: 1})
	}
	return pairs
}

// lisNode is a candidate chain node in the increasing-subsequence search.
// Nodes live in one growable arena and link by index (prev < 0 means
// none), avoiding a heap allocation per match point.
type lisNode struct {
	ai, bj int
	prev   int32
}

// appendMiddleLCS computes the LCS of the trimmed middle sections and
// appends the resulting pairs (offset back into original coordinates).
func appendMiddleLCS[T comparable](a, b []T, off int, pairs []Pair) []Pair {
	if len(a) == 0 || len(b) == 0 {
		return pairs
	}
	// Positions of each line value in b, ascending.
	occ := make(map[T][]int, len(b))
	for j, s := range b {
		occ[s] = append(occ[s], j)
	}
	// tails[k] is the candidate ending the best known common subsequence
	// of length k+1 with the smallest final b index.
	nodes := make([]lisNode, 0, min(len(a), len(b)))
	var tails []int32
	for i, s := range a {
		js := occ[s]
		// Visit b positions in descending order so that multiple matches
		// for the same a element cannot extend one another.
		for x := len(js) - 1; x >= 0; x-- {
			j := js[x]
			// Find the first tail whose bj >= j; we will replace it.
			k := sort.Search(len(tails), func(k int) bool { return nodes[tails[k]].bj >= j })
			prev := int32(-1)
			if k > 0 {
				prev = tails[k-1]
			}
			nodes = append(nodes, lisNode{ai: i, bj: j, prev: prev})
			idx := int32(len(nodes) - 1)
			if k == len(tails) {
				tails = append(tails, idx)
			} else {
				tails[k] = idx
			}
		}
	}
	if len(tails) == 0 {
		return pairs
	}
	// Walk the best chain back to the start, then emit in forward order.
	chain := make([]int32, 0, len(tails))
	for n := tails[len(tails)-1]; n >= 0; n = nodes[n].prev {
		chain = append(chain, n)
	}
	for x := len(chain) - 1; x >= 0; x-- {
		n := nodes[chain[x]]
		pairs = append(pairs, Pair{AIdx: n.ai + off, BIdx: n.bj + off, Weight: 1})
	}
	return pairs
}

func reverse(p []Pair) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
