package lcs

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// eqWeights adapts two string slices to the Weights interface with
// weight-1 exact matching.
type eqWeights struct{ a, b []string }

func (w eqWeights) LenA() int { return len(w.a) }
func (w eqWeights) LenB() int { return len(w.b) }
func (w eqWeights) Weight(i, j int) float64 {
	if w.a[i] == w.b[j] {
		return 1
	}
	return 0
}

// fuzzyWeights gives partial credit for tokens sharing a prefix, to
// exercise the weighted (non-0/1) paths.
type fuzzyWeights struct{ a, b []string }

func (w fuzzyWeights) LenA() int { return len(w.a) }
func (w fuzzyWeights) LenB() int { return len(w.b) }
func (w fuzzyWeights) Weight(i, j int) float64 {
	x, y := w.a[i], w.b[j]
	if x == y {
		return 2
	}
	if len(x) > 0 && len(y) > 0 && x[0] == y[0] {
		return 0.5
	}
	return 0
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, " ")
}

func TestDPSimple(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"a", "", 0},
		{"", "b", 0},
		{"a b c", "a b c", 3},
		{"a b c", "a x c", 2},
		{"a b c d", "b c d a", 3},
		{"x y z", "p q r", 0},
		{"a a a", "a a", 2},
		{"a b a b a", "b a b a b", 4},
	}
	for _, c := range cases {
		got := TotalWeight(DP(eqWeights{split(c.a), split(c.b)}))
		if got != c.want {
			t.Errorf("DP(%q,%q) weight = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestHirschbergMatchesDPWeight(t *testing.T) {
	cases := [][2]string{
		{"", ""},
		{"a", "a"},
		{"a b c d e", "a c e"},
		{"a b c d e f g", "g f e d c b a"},
		{"the quick brown fox", "the slow brown dog"},
		{"a a b b c c", "c c b b a a"},
	}
	for _, c := range cases {
		w := eqWeights{split(c[0]), split(c[1])}
		dw := TotalWeight(DP(w))
		hw := TotalWeight(Hirschberg(w))
		if dw != hw {
			t.Errorf("weights differ for (%q,%q): DP=%v Hirschberg=%v", c[0], c[1], dw, hw)
		}
	}
}

func TestHirschbergWeighted(t *testing.T) {
	w := fuzzyWeights{split("apple banana cherry"), split("apricot banana citrus")}
	pairs := Hirschberg(w)
	// banana matches exactly (2), apple/apricot and cherry/citrus each 0.5.
	if got, want := TotalWeight(pairs), 3.0; got != want {
		t.Fatalf("weight = %v, want %v (pairs %v)", got, want, pairs)
	}
}

// validPairs checks that a match sequence is strictly increasing in both
// indexes, within bounds, and only uses nonzero-weight matches.
func validPairs(t *testing.T, w Weights, pairs []Pair) {
	t.Helper()
	lastA, lastB := -1, -1
	for _, p := range pairs {
		if p.AIdx <= lastA || p.BIdx <= lastB {
			t.Fatalf("pairs not strictly increasing: %v", pairs)
		}
		if p.AIdx >= w.LenA() || p.BIdx >= w.LenB() || p.AIdx < 0 || p.BIdx < 0 {
			t.Fatalf("pair out of range: %v", p)
		}
		if w.Weight(p.AIdx, p.BIdx) <= 0 {
			t.Fatalf("pair with non-positive weight: %v", p)
		}
		lastA, lastB = p.AIdx, p.BIdx
	}
}

func randTokens(r *rand.Rand, n, alphabet int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + r.Intn(alphabet)))
	}
	return out
}

func TestPropertyHirschbergEqualsDP(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a := randTokens(r, r.Intn(30), 4)
		b := randTokens(r, r.Intn(30), 4)
		w := eqWeights{a, b}
		dp := DP(w)
		hb := Hirschberg(w)
		validPairs(t, w, dp)
		validPairs(t, w, hb)
		if TotalWeight(dp) != TotalWeight(hb) {
			t.Fatalf("trial %d: DP=%v Hirschberg=%v (a=%v b=%v)",
				trial, TotalWeight(dp), TotalWeight(hb), a, b)
		}
	}
}

func TestPropertyStringsEqualsDP(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := randTokens(r, r.Intn(40), 3)
		b := randTokens(r, r.Intn(40), 3)
		sp := Strings(a, b)
		validPairs(t, eqWeights{a, b}, sp)
		want := TotalWeight(DP(eqWeights{a, b}))
		if got := TotalWeight(sp); got != want {
			t.Fatalf("trial %d: Strings=%v DP=%v (a=%v b=%v)", trial, got, want, a, b)
		}
	}
}

// TestQuickLCSInvariants uses testing/quick to assert structural
// invariants: the LCS of x with itself is x, and LCS length is symmetric.
func TestQuickLCSInvariants(t *testing.T) {
	self := func(raw []byte) bool {
		toks := bytesToTokens(raw, 5)
		pairs := Strings(toks, toks)
		if len(pairs) != len(toks) {
			return false
		}
		for i, p := range pairs {
			if p.AIdx != i || p.BIdx != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(self, nil); err != nil {
		t.Errorf("LCS(x,x) != identity: %v", err)
	}
	sym := func(ra, rb []byte) bool {
		a := bytesToTokens(ra, 4)
		b := bytesToTokens(rb, 4)
		return len(Strings(a, b)) == len(Strings(b, a))
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Errorf("LCS length not symmetric: %v", err)
	}
}

// TestQuickSubsequenceBound: the LCS is never longer than either input.
func TestQuickSubsequenceBound(t *testing.T) {
	f := func(ra, rb []byte) bool {
		a := bytesToTokens(ra, 6)
		b := bytesToTokens(rb, 6)
		n := len(Strings(a, b))
		return n <= len(a) && n <= len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func bytesToTokens(raw []byte, alphabet int) []string {
	if len(raw) > 64 {
		raw = raw[:64]
	}
	out := make([]string, len(raw))
	for i, c := range raw {
		out[i] = string(rune('a' + int(c)%alphabet))
	}
	return out
}

func TestStringsCommonPrefixSuffix(t *testing.T) {
	a := split("h1 h2 x y z t1 t2")
	b := split("h1 h2 p q t1 t2")
	pairs := Strings(a, b)
	if got, want := len(pairs), 4; got != want {
		t.Fatalf("len = %d want %d: %v", got, want, pairs)
	}
	// Prefix pairs must align identically.
	if pairs[0] != (Pair{0, 0, 1}) || pairs[1] != (Pair{1, 1, 1}) {
		t.Errorf("prefix pairs wrong: %v", pairs)
	}
	if pairs[2] != (Pair{5, 4, 1}) || pairs[3] != (Pair{6, 5, 1}) {
		t.Errorf("suffix pairs wrong: %v", pairs)
	}
}

func TestStringsAllEqualLines(t *testing.T) {
	// Pathological diff input: many identical lines.
	a := make([]string, 50)
	b := make([]string, 30)
	for i := range a {
		a[i] = "same"
	}
	for i := range b {
		b[i] = "same"
	}
	pairs := Strings(a, b)
	if len(pairs) != 30 {
		t.Fatalf("want 30 matches, got %d", len(pairs))
	}
}

func BenchmarkDPEqual1000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randTokens(r, 1000, 26)
	y := append([]string(nil), x...)
	for i := 0; i < len(y); i += 10 {
		y[i] = "CHANGED"
	}
	w := eqWeights{x, y}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DP(w)
	}
}

func BenchmarkHirschbergEqual1000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randTokens(r, 1000, 26)
	y := append([]string(nil), x...)
	for i := 0; i < len(y); i += 10 {
		y[i] = "CHANGED"
	}
	w := eqWeights{x, y}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hirschberg(w)
	}
}

func BenchmarkStrings10000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randTokens(r, 10000, 1000)
	y := append([]string(nil), x...)
	for i := 0; i < len(y); i += 50 {
		y[i] = "CHANGED"
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Strings(x, y)
	}
}
