package lcs

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
)

// hashedEq wraps eqWeights with FNV-1a content hashes, the simplest
// AnchorWeights implementation: weight 1 on string equality.
type hashedEq struct {
	eqWeights
	ha, hb []uint64
}

func newHashedEq(a, b []string) hashedEq {
	w := hashedEq{eqWeights: eqWeights{a, b}, ha: make([]uint64, len(a)), hb: make([]uint64, len(b))}
	for i, s := range a {
		w.ha[i] = hashString(s)
	}
	for j, s := range b {
		w.hb[j] = hashString(s)
	}
	return w
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func (w hashedEq) HashA(i int) uint64 { return w.ha[i] }
func (w hashedEq) HashB(j int) uint64 { return w.hb[j] }

func TestAnchoredSimple(t *testing.T) {
	cases := [][2]string{
		{"", ""},
		{"a", ""},
		{"a", "a"},
		{"a b c d e", "a c e"},
		{"h1 h2 u1 x y u2 t1 t2", "h1 h2 u1 p q u2 t1 t2"},
		{"the quick brown fox jumps", "the quick red fox leaps"},
		{"a a b b c c", "c c b b a a"},
		{"u1 u2 u3", "u3 u2 u1"},
	}
	for _, c := range cases {
		w := newHashedEq(split(c[0]), split(c[1]))
		an := Anchored(w)
		validPairs(t, w, an)
		if got, want := TotalWeight(an), TotalWeight(DP(w)); got != want {
			t.Errorf("Anchored(%q,%q) weight = %v, want %v (pairs %v)", c[0], c[1], got, want, an)
		}
	}
}

// TestAnchoredStatsPaths pins down which path each input shape takes:
// trimming, anchoring, and the crossing-uniques fallback.
func TestAnchoredStatsPaths(t *testing.T) {
	// Shared prefix/suffix, one unique anchor in the middle, edits around it.
	w := newHashedEq(
		split("h1 h2 x y ANCHOR p q t1 t2"),
		split("h1 h2 x z ANCHOR r q t1 t2"))
	pairs, st := AnchoredStats(w)
	validPairs(t, w, pairs)
	if st.Trimmed != 6 {
		t.Errorf("Trimmed = %d, want 6 (h1 h2 x | q t1 t2)", st.Trimmed)
	}
	if st.Anchors != 1 { // ANCHOR pins the middle; y/z and p/r differ
		t.Errorf("Anchors = %d, want 1", st.Anchors)
	}
	if st.Fallback {
		t.Error("unexpected fallback")
	}
	if st.Cells >= st.FullCells {
		t.Errorf("Cells = %d, want < FullCells %d", st.Cells, st.FullCells)
	}

	// Unique sentences in reversed order: ambiguous, must fall back.
	w = newHashedEq(split("u1 u2 u3 u4"), split("u4 u3 u2 u1"))
	pairs, st = AnchoredStats(w)
	validPairs(t, w, pairs)
	if !st.Fallback {
		t.Error("crossing uniques did not trigger fallback")
	}
	if got, want := TotalWeight(pairs), TotalWeight(DP(w)); got != want {
		t.Errorf("fallback weight = %v, want %v", got, want)
	}
}

// mutate derives b from a with order-preserving edits: keep, delete,
// replace-with-fresh, insert-fresh. This is the change class HtmlDiff
// sees on real pages (edits in place, no content moved across unique
// sentences), for which the anchored path is weight-equal to the oracle.
func mutate(r *rand.Rand, a []string) []string {
	b := make([]string, 0, len(a)+8)
	fresh := 0
	for _, s := range a {
		switch r.Intn(10) {
		case 0: // delete
		case 1: // replace with fresh content
			b = append(b, fmt.Sprintf("fresh%d", fresh))
			fresh++
		case 2: // insert fresh content before
			b = append(b, fmt.Sprintf("fresh%d", fresh), s)
			fresh++
		default: // keep
			b = append(b, s)
		}
	}
	return b
}

// baseCorpus builds a sequence mixing unique sentences (anchors) with
// repeated boilerplate (ambiguous material).
func baseCorpus(r *rand.Rand, n int) []string {
	a := make([]string, n)
	for i := range a {
		if r.Intn(3) == 0 {
			a[i] = fmt.Sprintf("boiler%d", r.Intn(4)) // repeats
		} else {
			a[i] = fmt.Sprintf("unique%d", i)
		}
	}
	return a
}

func TestPropertyAnchoredEqualsDP(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		a := baseCorpus(r, r.Intn(120))
		b := mutate(r, a)
		w := newHashedEq(a, b)
		an := Anchored(w)
		validPairs(t, w, an)
		if got, want := TotalWeight(an), TotalWeight(DP(w)); got != want {
			t.Fatalf("trial %d: Anchored=%v DP=%v\na=%v\nb=%v", trial, got, want, a, b)
		}
	}
}

// hashedFuzzy exercises the weighted path: exact matches score 2 and
// dominate the 0.5-weight fuzzy prefix matches, as the AnchorWeights
// contract requires.
type hashedFuzzy struct {
	fuzzyWeights
	ha, hb []uint64
}

func newHashedFuzzy(a, b []string) hashedFuzzy {
	w := hashedFuzzy{fuzzyWeights: fuzzyWeights{a, b}, ha: make([]uint64, len(a)), hb: make([]uint64, len(b))}
	for i, s := range a {
		w.ha[i] = hashString(s)
	}
	for j, s := range b {
		w.hb[j] = hashString(s)
	}
	return w
}

func (w hashedFuzzy) HashA(i int) uint64 { return w.ha[i] }
func (w hashedFuzzy) HashB(j int) uint64 { return w.hb[j] }

func TestPropertyAnchoredWeightedEqualsDP(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		a := baseCorpus(r, r.Intn(80))
		b := mutate(r, a)
		w := newHashedFuzzy(a, b)
		an := Anchored(w)
		validPairs(t, w, an)
		if got, want := TotalWeight(an), TotalWeight(DP(w)); got != want {
			t.Fatalf("trial %d: Anchored=%v DP=%v\na=%v\nb=%v", trial, got, want, a, b)
		}
	}
}

// FuzzAnchoredEquivalence drives the mutation class from fuzz data: the
// first half of the input selects base tokens, the second half an edit
// script. The anchored alignment must always be valid and must score
// exactly what the DP oracle scores.
func FuzzAnchoredEquivalence(f *testing.F) {
	f.Add([]byte("abcabcabc"), []byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte("aaaa"), []byte{9, 9, 9, 9})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, base, ops []byte) {
		if len(base) > 96 {
			base = base[:96]
		}
		a := make([]string, len(base))
		for i, c := range base {
			// Small alphabet so repeats (non-anchor material) are common.
			a[i] = string(rune('a' + int(c)%5))
		}
		b := make([]string, 0, len(a)+len(ops))
		fresh := 0
		for i, s := range a {
			op := byte(3)
			if i < len(ops) {
				op = ops[i] % 10
			}
			switch op {
			case 0:
			case 1:
				b = append(b, fmt.Sprintf("fresh%d", fresh))
				fresh++
			case 2:
				b = append(b, fmt.Sprintf("fresh%d", fresh), s)
				fresh++
			default:
				b = append(b, s)
			}
		}
		w := newHashedEq(a, b)
		an := Anchored(w)
		validPairs(t, w, an)
		if got, want := TotalWeight(an), TotalWeight(DP(w)); got != want {
			t.Fatalf("Anchored=%v DP=%v\na=%v\nb=%v", got, want, a, b)
		}
	})
}

func BenchmarkAnchoredVsHirschberg(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	a := baseCorpus(r, 800)
	bq := mutate(r, a)
	w := newHashedEq(a, bq)
	b.Run("anchored", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Anchored(w)
		}
	})
	b.Run("hirschberg", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Hirschberg(w)
		}
	})
}
