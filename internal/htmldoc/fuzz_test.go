package htmldoc

import (
	"strings"
	"testing"
)

// FuzzTokenize hammers the lexer with arbitrary bytes: it must always
// terminate without panicking, and re-tokenizing its own rendering must
// be stable (render∘tokenize is idempotent after one pass).
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"<P>Hello world. Bye.</P>",
		"<A HREF=\"x\">link</A> trailing",
		"<!-- comment --><!DOCTYPE x>",
		"<PRE>\n a  b \n</PRE>",
		"<SCRIPT>if (a<b) x();</SCRIPT>",
		"1 < 2 > 3 & 4",
		"<p><p><p>",
		"<A HREF='unterminated",
		"&amp;&#65;&bogus;",
		"<STYLE>p { color: red }</STYLE><P>text</P>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks := Tokenize(src)
		once := Render(toks)
		twice := Render(Tokenize(once))
		if once != twice {
			t.Fatalf("render not stable:\nsrc:   %q\nonce:  %q\ntwice: %q", src, once, twice)
		}
		for _, tok := range toks {
			_ = tok.NormKey()
			_ = tok.ContentLength()
		}
		_ = Links(src)
		_ = EntityRefs(src)
		_, _ = Bulletin(src)
	})
}

// FuzzDecodeEntities checks the decoder never panics and never expands
// pathologically.
func FuzzDecodeEntities(f *testing.F) {
	for _, s := range []string{"", "&amp;", "&#65;", "&#x41;", "&&&", "&unknown;", strings.Repeat("&", 100)} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		out := DecodeEntities(src)
		if len(out) > len(src)+8 {
			t.Fatalf("decode grew %d -> %d", len(src), len(out))
		}
	})
}
