package htmldoc

import "strings"

// Bulletin extracts a Smart-Bookmarks-style bulletin from a page: §2.1
// describes "an extension to HTML to allow a description of a page, or
// recent changes to it, to be obtained along with other 'header'
// information". The convention implemented here is the META form:
//
//	<META NAME="bulletin" CONTENT="10 new links have been added">
//
// The paper's critique — a bulletin reflects the *maintainer's* idea of
// what is new, not the reader's — is exactly why AIDE treats bulletins
// as an annotation on the report rather than a substitute for HtmlDiff.
func Bulletin(src string) (string, bool) {
	for _, tok := range Tokenize(src) {
		for _, it := range tok.Items {
			if it.Kind != Markup || it.Name != "META" {
				continue
			}
			var name, content string
			for _, a := range it.Attrs {
				switch a.Name {
				case "NAME":
					name = strings.ToLower(a.Value)
				case "CONTENT":
					content = a.Value
				}
			}
			if name == "bulletin" && strings.TrimSpace(content) != "" {
				return DecodeEntities(strings.TrimSpace(content)), true
			}
		}
	}
	return "", false
}
