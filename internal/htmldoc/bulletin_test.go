package htmldoc

import "testing"

func TestBulletin(t *testing.T) {
	src := `<HTML><HEAD>
<TITLE>Page</TITLE>
<META NAME="bulletin" CONTENT="10 new links have been added">
</HEAD><BODY>body</BODY></HTML>`
	b, ok := Bulletin(src)
	if !ok || b != "10 new links have been added" {
		t.Fatalf("Bulletin = (%q,%v)", b, ok)
	}
	if _, ok := Bulletin("<HTML><BODY>no meta</BODY></HTML>"); ok {
		t.Error("bulletin found where none exists")
	}
	if _, ok := Bulletin(`<META NAME="keywords" CONTENT="x">`); ok {
		t.Error("non-bulletin META matched")
	}
	if _, ok := Bulletin(`<META NAME="bulletin" CONTENT="  ">`); ok {
		t.Error("blank bulletin accepted")
	}
	// Case-insensitive NAME value, entities decoded.
	b, ok = Bulletin(`<META NAME="Bulletin" CONTENT="now with Q&amp;A section">`)
	if !ok || b != "now with Q&A section" {
		t.Errorf("bulletin = (%q,%v)", b, ok)
	}
}
