package htmldoc

import (
	"strings"
	"testing"
	"testing/quick"
)

// tokenKinds summarises a token stream for assertions.
func tokenKinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeSimpleParagraph(t *testing.T) {
	toks := Tokenize("<P>Hello world. Second sentence here.</P>")
	if len(toks) != 4 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Kind != Breaking || toks[0].Items[0].Name != "P" {
		t.Errorf("token 0 = %+v", toks[0])
	}
	if toks[1].Kind != Sentence || toks[1].Text() != "Hello world." {
		t.Errorf("token 1 = %q", toks[1].Text())
	}
	if toks[2].Kind != Sentence || toks[2].Text() != "Second sentence here." {
		t.Errorf("token 2 = %q", toks[2].Text())
	}
	if toks[3].Kind != Breaking || toks[3].Items[0].Name != "/P" {
		t.Errorf("token 3 = %+v", toks[3])
	}
}

func TestSentenceFragmentsWithoutPunctuation(t *testing.T) {
	// A fragment ends at the breaking markup, not only at punctuation.
	toks := Tokenize("some opening text<HR>closing text")
	want := []TokenKind{Sentence, Breaking, Sentence}
	got := tokenKinds(toks)
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kind[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNonBreakingMarkupStaysInSentence(t *testing.T) {
	toks := Tokenize(`This is <B>bold</B> and <A HREF="x.html">a link</A> inline.`)
	if len(toks) != 1 {
		t.Fatalf("want one sentence, got %d: %v", len(toks), toks)
	}
	s := toks[0]
	var markups []string
	for _, it := range s.Items {
		if it.Kind == Markup {
			markups = append(markups, it.Name)
		}
	}
	want := []string{"B", "/B", "A", "/A"}
	if strings.Join(markups, ",") != strings.Join(want, ",") {
		t.Errorf("markups = %v, want %v", markups, want)
	}
}

func TestContentLengthCountsWordsAndContentMarkups(t *testing.T) {
	// 4 words + <A> + <IMG> = 6; <B> and </B> don't count.
	toks := Tokenize(`one <B>two</B> three four <A HREF="u">...</A> <IMG SRC="i.gif">`)
	total := 0
	for _, tok := range toks {
		total += tok.ContentLength()
	}
	// words: one two three four ... (the "..." inside A is a word too)
	// content markups: A, IMG (closing /A also counts as content-defining
	// per classification of its base name).
	want := 5 + 3
	if total != want {
		t.Errorf("content length = %d, want %d (%v)", total, want, toks)
	}
}

func TestMarkupNormalization(t *testing.T) {
	a := Tokenize(`<a href="HTTP://X/" name=top>link text</a>`)
	b := Tokenize(`<A NAME="top"   HREF='http://x/'>link   text</A>`)
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("tokens: %v vs %v", a, b)
	}
	if a[0].NormKey() != b[0].NormKey() {
		t.Errorf("norm keys differ:\n%q\n%q", a[0].NormKey(), b[0].NormKey())
	}
}

func TestBreakingMarkupExactMatchKeys(t *testing.T) {
	a := Tokenize("<H1 ALIGN=center>")[0]
	b := Tokenize("<h1 align=CENTER>")[0]
	c := Tokenize("<h1 align=left>")[0]
	if a.NormKey() != b.NormKey() {
		t.Errorf("equivalent H1s differ: %q vs %q", a.NormKey(), b.NormKey())
	}
	if a.NormKey() == c.NormKey() {
		t.Errorf("different H1s match: %q", a.NormKey())
	}
}

func TestCommentsAndDeclarations(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE HTML PUBLIC "-//IETF//DTD HTML//EN"><!-- a comment -->text`)
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].Items[0].Name != "!" {
		t.Errorf("doctype name = %q", toks[0].Items[0].Name)
	}
	if toks[1].Items[0].Name != "!--" {
		t.Errorf("comment name = %q", toks[1].Items[0].Name)
	}
	if toks[1].Items[0].Raw != "<!-- a comment -->" {
		t.Errorf("comment raw = %q", toks[1].Items[0].Raw)
	}
}

func TestUnterminatedConstructs(t *testing.T) {
	// Lexer must not panic or lose the trailing text.
	for _, src := range []string{
		"<!-- never closed",
		"<A HREF=\"x",
		"text with a stray < here",
		"<",
		"<>",
		"1 < 2 but 3 > 2",
	} {
		toks := Tokenize(src)
		_ = toks // just verifying no panic and termination
	}
	// Stray '<' stays literal text.
	toks := Tokenize("1 < 2 done.")
	if len(toks) != 1 || toks[0].Kind != Sentence {
		t.Fatalf("tokens = %v", toks)
	}
	if got := toks[0].Text(); got != "1 < 2 done." {
		t.Errorf("text = %q", got)
	}
}

func TestPreservesPreLines(t *testing.T) {
	src := "<PRE>\ncol1   col2\n  indented\n\n</PRE>"
	toks := Tokenize(src)
	// <PRE>, line1, line2, </PRE>
	if len(toks) != 4 {
		t.Fatalf("tokens = %v", toks)
	}
	if !toks[1].Pre || toks[1].Text() != "col1   col2" {
		t.Errorf("pre line 1 = %q (pre=%v)", toks[1].Text(), toks[1].Pre)
	}
	if toks[2].Text() != "  indented" {
		t.Errorf("pre line 2 = %q", toks[2].Text())
	}
}

func TestWhitespaceInsignificantOutsidePre(t *testing.T) {
	a := Tokenize("<P>some   text\n\twith spacing</P>")
	b := Tokenize("<P>some text with spacing</P>")
	if len(a) != len(b) {
		t.Fatalf("token counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].NormKey() != b[i].NormKey() {
			t.Errorf("token %d differs: %q vs %q", i, a[i].NormKey(), b[i].NormKey())
		}
	}
}

func TestSentenceEndPunctuation(t *testing.T) {
	cases := []struct {
		word string
		want bool
	}{
		{"end.", true}, {"end!", true}, {"end?", true},
		{"end.)", true}, {"end.\"", true}, {"end...", true},
		{"mid", false}, {"e.g.x", false}, {"", false}, {"..", true},
		{"(a)", false},
	}
	for _, c := range cases {
		if got := endsSentence(c.word); got != c.want {
			t.Errorf("endsSentence(%q) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestParagraphToListExample(t *testing.T) {
	// The paper's example: turning a paragraph of sentences into a list
	// keeps the sentence content identical; only formatting changes.
	para := Tokenize("<P>First thing. Second thing.</P>")
	list := Tokenize("<UL><LI>First thing.<LI>Second thing.</UL>")
	var paraS, listS []string
	for _, tok := range para {
		if tok.Kind == Sentence {
			paraS = append(paraS, tok.NormKey())
		}
	}
	for _, tok := range list {
		if tok.Kind == Sentence {
			listS = append(listS, tok.NormKey())
		}
	}
	if strings.Join(paraS, "|") != strings.Join(listS, "|") {
		t.Errorf("sentence content differs:\n%v\n%v", paraS, listS)
	}
}

func TestRenderRoundTripTokens(t *testing.T) {
	src := `<HTML><BODY><H1>Title</H1><P>Hello <B>world</B>. Bye.</P></BODY></HTML>`
	once := Render(Tokenize(src))
	twice := Render(Tokenize(once))
	if once != twice {
		t.Errorf("render not stable:\n%q\n%q", once, twice)
	}
}

// TestQuickTokenizeTotal checks that every non-space source byte outside
// markup survives into some token (no text is silently dropped), for
// plain-text inputs.
func TestQuickTokenizeTotal(t *testing.T) {
	f := func(raw []byte) bool {
		// Build plain text without '<'.
		var sb strings.Builder
		for _, c := range raw {
			if c == '<' {
				c = 'x'
			}
			sb.WriteByte(c)
		}
		src := sb.String()
		toks := Tokenize(src)
		var joined []string
		for _, tok := range toks {
			for _, it := range tok.Items {
				joined = append(joined, it.Raw)
			}
		}
		return strings.Join(joined, " ") == strings.Join(strings.Fields(src), " ")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickTokenizeNeverPanics throws arbitrary bytes at the lexer.
func TestQuickTokenizeNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		Tokenize(string(raw))
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrsWithoutValues(t *testing.T) {
	toks := Tokenize("<DL COMPACT>")
	it := toks[0].Items[0]
	if len(it.Attrs) != 1 || it.Attrs[0].Name != "COMPACT" || it.Attrs[0].Value != "" {
		t.Errorf("attrs = %+v", it.Attrs)
	}
}

func TestIsBreakingTag(t *testing.T) {
	for _, name := range []string{"P", "p", "/p", "LI", "h3", "/TABLE"} {
		if !IsBreakingTag(name) {
			t.Errorf("IsBreakingTag(%q) = false", name)
		}
	}
	for _, name := range []string{"B", "a", "/i", "IMG", "FONT", "UNKNOWNTAG"} {
		if IsBreakingTag(name) {
			t.Errorf("IsBreakingTag(%q) = true", name)
		}
	}
}

func BenchmarkTokenize(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("<P>This is paragraph content with a <A HREF=\"x.html\">link</A> in it. ")
		sb.WriteString("And a second sentence too.</P>\n")
	}
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tokenize(src)
	}
}

func TestScriptAndStyleOpaque(t *testing.T) {
	src := `<HTML><HEAD>
<STYLE>BODY { color: black; }</STYLE>
<SCRIPT>
if (a<b && c>d) { document.write("<P>not markup</P>"); }
</SCRIPT>
</HEAD><BODY><P>Real prose here.</P></BODY></HTML>`
	toks := Tokenize(src)
	// The script body must be one verbatim token, not lexed as markup.
	var opaqueCount int
	for _, tok := range toks {
		for _, it := range tok.Items {
			if it.Kind == Word && strings.Contains(it.Raw, "a<b") {
				opaqueCount++
				if !strings.Contains(it.Raw, `document.write("<P>not markup</P>")`) {
					t.Errorf("script body split: %q", it.Raw)
				}
			}
			if it.Kind == Markup && it.Name == "P" && strings.Contains(it.Raw, "not markup") {
				t.Errorf("markup lexed inside script: %q", it.Raw)
			}
		}
	}
	if opaqueCount != 1 {
		t.Fatalf("script body items = %d, want 1\n%v", opaqueCount, toks)
	}
	// Identical scripts compare equal; changed scripts differ.
	a := Tokenize(src)
	b := Tokenize(strings.Replace(src, "c>d", "c>e", 1))
	same := true
	if len(a) == len(b) {
		for i := range a {
			if a[i].NormKey() != b[i].NormKey() {
				same = false
			}
		}
	} else {
		same = false
	}
	if same {
		t.Error("changed script body not detected")
	}
}

func TestUnterminatedScriptConsumesToEOF(t *testing.T) {
	toks := Tokenize("<SCRIPT>var x = 1; // never closed")
	if len(toks) < 2 {
		t.Fatalf("tokens = %v", toks)
	}
	last := toks[len(toks)-1]
	if last.Kind != Sentence || !strings.Contains(last.Text(), "var x = 1") {
		t.Errorf("script tail lost: %v", toks)
	}
}
