package htmldoc

import "strings"

// Links returns the HREF targets of every anchor in the document, in
// order, duplicates included. The AIDE server's recursive tracking
// (§8.3) uses this to follow a registered page's links.
func Links(src string) []string {
	var out []string
	for _, tok := range Tokenize(src) {
		for _, it := range tok.Items {
			if it.Kind != Markup || it.Name != "A" {
				continue
			}
			for _, a := range it.Attrs {
				if a.Name == "HREF" && a.Value != "" {
					out = append(out, a.Value)
				}
			}
		}
	}
	return out
}

// EntityRefs returns the URLs of the entities a page embeds or
// references — IMG/EMBED sources and anchor targets — as (markup-name,
// target) pairs in document order, duplicates removed. This is the
// reference set used by §5.3's "smarter comparisons": "store a checksum
// of each entity and use the checksums to determine if something has
// changed".
func EntityRefs(src string) []EntityRef {
	var out []EntityRef
	seen := map[string]bool{}
	add := func(name, target string) {
		if target == "" || seen[name+"\x00"+target] {
			return
		}
		seen[name+"\x00"+target] = true
		out = append(out, EntityRef{Markup: name, Target: target})
	}
	for _, tok := range Tokenize(src) {
		for _, it := range tok.Items {
			if it.Kind != Markup {
				continue
			}
			switch it.Name {
			case "A", "AREA":
				for _, a := range it.Attrs {
					if a.Name == "HREF" {
						add(it.Name, a.Value)
					}
				}
			case "IMG", "EMBED", "FRAME", "IFRAME":
				for _, a := range it.Attrs {
					if a.Name == "SRC" {
						add(it.Name, a.Value)
					}
				}
			}
		}
	}
	return out
}

// EntityRef is one referenced entity: the markup that referenced it and
// the (possibly relative) target URL.
type EntityRef struct {
	// Markup is the upper-cased tag name (A, IMG, ...).
	Markup string
	// Target is the HREF/SRC value as written.
	Target string
}

// ResolveLink resolves a possibly relative link against the page URL it
// appeared on. Fragments and non-HTTP schemes resolve to "".
func ResolveLink(pageURL, href string) string {
	href = strings.TrimSpace(href)
	switch {
	case href == "", strings.HasPrefix(href, "#"):
		return ""
	case strings.HasPrefix(href, "mailto:"), strings.HasPrefix(href, "news:"),
		strings.HasPrefix(href, "gopher:"), strings.HasPrefix(href, "ftp:"),
		strings.HasPrefix(href, "javascript:"):
		return ""
	case strings.Contains(href, "://"):
		if strings.HasPrefix(href, "http://") || strings.HasPrefix(href, "https://") {
			return stripFragment(href)
		}
		return ""
	}
	scheme, rest, ok := strings.Cut(pageURL, "://")
	if !ok {
		return ""
	}
	host, path, _ := strings.Cut(rest, "/")
	if strings.HasPrefix(href, "/") {
		return stripFragment(scheme + "://" + host + href)
	}
	dir := ""
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		dir = path[:i+1]
	}
	return stripFragment(scheme + "://" + host + "/" + dir + href)
}

// SameHost reports whether two URLs share a host, the boundary for
// recursive tracking ("by following the internal pages automatically").
func SameHost(a, b string) bool {
	return hostPart(a) != "" && hostPart(a) == hostPart(b)
}

func hostPart(u string) string {
	_, rest, ok := strings.Cut(u, "://")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest
}

func stripFragment(u string) string {
	if i := strings.IndexByte(u, '#'); i >= 0 {
		return u[:i]
	}
	return u
}
