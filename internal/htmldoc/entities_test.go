package htmldoc

import (
	"testing"
	"testing/quick"
)

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"plain text":        "plain text",
		"AT&amp;T":          "AT&T",
		"AT&amp T":          "AT& T", // missing semicolon still decodes
		"a &lt; b &gt; c":   "a < b > c",
		"&quot;hi&quot;":    "\"hi\"",
		"&copy; 1995":       "© 1995",
		"&eacute;tude":      "étude",
		"&#65;&#66;":        "AB",
		"&#x41;":            "A",
		"&unknown; stays":   "&unknown; stays",
		"&;":                "&;",
		"&":                 "&",
		"&&amp;":            "&&",
		"caf&eacute":        "café", // terminal entity without semicolon
		"1 &#0; bad":        "1 &#0; bad",
		"tail&":             "tail&",
		"&amp;&amp;&amp;":   "&&&",
		"fish &amp; chips.": "fish & chips.",
	}
	for in, want := range cases {
		if got := DecodeEntities(in); got != want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEntitySpellingsCompareEqual(t *testing.T) {
	a := Tokenize("<P>research at AT&amp;T Bell Labs.</P>")
	b := Tokenize("<P>research at AT&T Bell Labs.</P>")
	if len(a) != len(b) {
		t.Fatalf("token counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].NormKey() != b[i].NormKey() {
			t.Errorf("token %d keys differ: %q vs %q", i, a[i].NormKey(), b[i].NormKey())
		}
	}
}

func TestQuickDecodeEntitiesNeverPanicsOrGrows(t *testing.T) {
	f := func(raw []byte) bool {
		in := string(raw)
		out := DecodeEntities(in)
		// Decoding never makes the string longer (entities only shrink,
		// except multi-byte runes replacing short names — bound loosely).
		return len(out) <= len(in)+4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeEntitiesIdempotentOnDecoded(t *testing.T) {
	// Decoding plain text (no '&') is the identity.
	for _, s := range []string{"", "hello world", "a<b>c", "déjà vu"} {
		if got := DecodeEntities(s); got != s {
			t.Errorf("DecodeEntities(%q) = %q", s, got)
		}
	}
}
