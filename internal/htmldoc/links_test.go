package htmldoc

import (
	"reflect"
	"testing"
)

func TestLinks(t *testing.T) {
	src := `<HTML><BODY>
<A HREF="a.html">one</A>
<P>text <A HREF="/abs/b.html">two</A> more</P>
<A NAME="anchor-without-href">x</A>
<A HREF="http://other.host/c.html">three</A>
<A HREF="a.html">duplicate kept</A>
</BODY></HTML>`
	got := Links(src)
	want := []string{"a.html", "/abs/b.html", "http://other.host/c.html", "a.html"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Links = %v, want %v", got, want)
	}
}

func TestResolveLink(t *testing.T) {
	base := "http://h/dir/page.html"
	cases := []struct{ href, want string }{
		{"other.html", "http://h/dir/other.html"},
		{"/top.html", "http://h/top.html"},
		{"http://x/abs.html", "http://x/abs.html"},
		{"https://x/abs.html", "https://x/abs.html"},
		{"#frag", ""},
		{"", ""},
		{"mailto:u@h", ""},
		{"ftp://ftp.host/file", ""},
		{"gopher://g/x", ""},
		{"sub/deep.html", "http://h/dir/sub/deep.html"},
		{"page.html#sec", "http://h/dir/page.html"},
	}
	for _, c := range cases {
		if got := ResolveLink(base, c.href); got != c.want {
			t.Errorf("ResolveLink(%q) = %q, want %q", c.href, got, c.want)
		}
	}
	// Base without a path.
	if got := ResolveLink("http://h", "x.html"); got != "http://h/x.html" {
		t.Errorf("root-relative = %q", got)
	}
}

func TestSameHost(t *testing.T) {
	if !SameHost("http://h/a", "http://h/b") {
		t.Error("same host not detected")
	}
	if SameHost("http://h/a", "http://other/b") {
		t.Error("different hosts matched")
	}
	if SameHost("http://h:80/a", "http://h/b") {
		t.Error("port-differing hosts matched (ports are part of the host)")
	}
	if SameHost("not-a-url", "also-not") {
		t.Error("non-URLs matched")
	}
}

func TestEntityRefs(t *testing.T) {
	src := `<HTML><BODY>
<IMG SRC="logo.gif"> <IMG SRC="logo.gif">
<A HREF="page.html">text</A>
<EMBED SRC="movie.mpg">
<AREA HREF="map.html">
<IMG ALT="no src">
</BODY></HTML>`
	refs := EntityRefs(src)
	want := []EntityRef{
		{Markup: "IMG", Target: "logo.gif"},
		{Markup: "A", Target: "page.html"},
		{Markup: "EMBED", Target: "movie.mpg"},
		{Markup: "AREA", Target: "map.html"},
	}
	if !reflect.DeepEqual(refs, want) {
		t.Errorf("EntityRefs = %v, want %v", refs, want)
	}
}
