package htmldoc

import (
	"strconv"
	"strings"
)

// DecodeEntities resolves the character entities of mid-1990s HTML
// (named ISO-8859-1 entities and numeric references) so that word
// comparison sees "AT&T" and "AT&amp;T" as the same word regardless of
// which spelling a page revision used.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	sb.WriteString(s[:amp])
	s = s[amp:]
	for len(s) > 0 {
		if s[0] != '&' {
			next := strings.IndexByte(s, '&')
			if next < 0 {
				sb.WriteString(s)
				break
			}
			sb.WriteString(s[:next])
			s = s[next:]
			continue
		}
		// Find the entity terminator. Entities may legally omit the
		// semicolon in 1995-era HTML; treat any non-name byte as an end.
		end := 1
		for end < len(s) && end < 12 && isEntityChar(s[end]) {
			end++
		}
		name := s[1:end]
		consumed := end
		if consumed < len(s) && s[consumed] == ';' {
			consumed++
		}
		if decoded, ok := decodeEntity(name); ok {
			sb.WriteString(decoded)
			s = s[consumed:]
			continue
		}
		// Unknown entity: keep the ampersand literally.
		sb.WriteByte('&')
		s = s[1:]
	}
	return sb.String()
}

func isEntityChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '#':
		return true
	}
	return false
}

// decodeEntity resolves one entity name (without & and ;).
func decodeEntity(name string) (string, bool) {
	if name == "" {
		return "", false
	}
	if name[0] == '#' {
		num := name[1:]
		base := 10
		if len(num) > 0 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		n, err := strconv.ParseInt(num, base, 32)
		if err != nil || n <= 0 || n > 0x10FFFF {
			return "", false
		}
		return string(rune(n)), true
	}
	if r, ok := namedEntities[name]; ok {
		return r, true
	}
	return "", false
}

// namedEntities covers HTML 2.0's entity set: the four markup escapes
// plus the ISO-8859-1 (Latin-1) characters.
var namedEntities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": "\"", "apos": "'",
	"nbsp": " ", "iexcl": "¡", "cent": "¢", "pound": "£",
	"curren": "¤", "yen": "¥", "brvbar": "¦", "sect": "§",
	"uml": "¨", "copy": "©", "ordf": "ª", "laquo": "«",
	"not": "¬", "shy": "­", "reg": "®", "macr": "¯",
	"deg": "°", "plusmn": "±", "sup2": "²", "sup3": "³",
	"acute": "´", "micro": "µ", "para": "¶", "middot": "·",
	"cedil": "¸", "sup1": "¹", "ordm": "º", "raquo": "»",
	"frac14": "¼", "frac12": "½", "frac34": "¾", "iquest": "¿",
	"Agrave": "À", "Aacute": "Á", "Acirc": "Â", "Atilde": "Ã",
	"Auml": "Ä", "Aring": "Å", "AElig": "Æ", "Ccedil": "Ç",
	"Egrave": "È", "Eacute": "É", "Ecirc": "Ê", "Euml": "Ë",
	"Igrave": "Ì", "Iacute": "Í", "Icirc": "Î", "Iuml": "Ï",
	"ETH": "Ð", "Ntilde": "Ñ", "Ograve": "Ò", "Oacute": "Ó",
	"Ocirc": "Ô", "Otilde": "Õ", "Ouml": "Ö", "times": "×",
	"Oslash": "Ø", "Ugrave": "Ù", "Uacute": "Ú", "Ucirc": "Û",
	"Uuml": "Ü", "Yacute": "Ý", "THORN": "Þ", "szlig": "ß",
	"agrave": "à", "aacute": "á", "acirc": "â", "atilde": "ã",
	"auml": "ä", "aring": "å", "aelig": "æ", "ccedil": "ç",
	"egrave": "è", "eacute": "é", "ecirc": "ê", "euml": "ë",
	"igrave": "ì", "iacute": "í", "icirc": "î", "iuml": "ï",
	"eth": "ð", "ntilde": "ñ", "ograve": "ò", "oacute": "ó",
	"ocirc": "ô", "otilde": "õ", "ouml": "ö", "divide": "÷",
	"oslash": "ø", "ugrave": "ù", "uacute": "ú", "ucirc": "û",
	"uuml": "ü", "yacute": "ý", "thorn": "þ", "yuml": "ÿ",
}
