// Package htmldoc lexes HTML into the token model of the paper's §5.1: a
// document is a sequence of "sentences" and "sentence-breaking markups".
//
//   - A sentence-breaking markup (<P>, <HR>, <LI>, <H1>, ...) is a token by
//     itself.
//   - A sentence is a sequence of words and non-sentence-breaking markups
//     (<B>, <A>, <IMG>, ...) containing at most one English sentence (it
//     may be a fragment).
//
// Only lexical analysis is performed — no parse tree is built, exactly as
// in the paper. Markup names and attribute names are case-normalised, and
// attribute (variable,value) pairs are sorted, so that markups can be
// compared "modulo whitespace, case, and reordering".
//
// Whitespace carries no content and is normalised away, except inside
// <PRE>, where each line becomes its own sentence with spacing preserved.
package htmldoc

import (
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ItemKind distinguishes the constituents of a sentence.
type ItemKind int

// Item kinds.
const (
	// Word is a whitespace-delimited run of text.
	Word ItemKind = iota
	// Markup is a tag, comment, or declaration.
	Markup
)

// Attr is one normalised attribute of a markup: Name is upper-cased,
// Value keeps its source spelling (quotes removed).
type Attr struct {
	Name  string
	Value string
}

// Item is a word or a markup appearing inside a token.
type Item struct {
	Kind ItemKind
	// Raw is the exact source text: the word itself, or the full tag
	// including angle brackets. Rendering a document re-emits Raw.
	Raw string
	// Name is the upper-cased tag name for markups ("" for words). End
	// tags keep their slash: "/UL". Comments use "!--" and declarations
	// "!".
	Name string
	// Attrs are the normalised attributes, sorted by name (markups only).
	Attrs []Attr
}

// IsContentDefining reports whether the item is a markup that carries
// content in the paper's sense (an image or hypertext reference rather
// than pure formatting). Content-defining markups count toward sentence
// length and get change highlighting.
func (it Item) IsContentDefining() bool {
	if it.Kind != Markup {
		return false
	}
	return contentDefining[strings.TrimPrefix(it.Name, "/")]
}

// NormKey returns the comparison key for the item: words compare with
// character entities decoded (so "AT&amp;T" matches "AT&T"); markups
// compare by upper-cased name plus sorted attribute pairs with
// case-folded values.
func (it Item) NormKey() string {
	if it.Kind == Word {
		return DecodeEntities(it.Raw)
	}
	return string(it.AppendNormKey(nil))
}

// AppendNormKey appends the item's NormKey to buf and returns the
// extended slice. Callers that intern many keys reuse one scratch buffer
// and avoid a string allocation per item.
func (it Item) AppendNormKey(buf []byte) []byte {
	if it.Kind == Word {
		return append(buf, DecodeEntities(it.Raw)...)
	}
	buf = append(buf, '<')
	buf = append(buf, it.Name...)
	for _, a := range it.Attrs {
		buf = append(buf, ' ')
		buf = append(buf, a.Name...)
		buf = append(buf, '=')
		buf = append(buf, strings.ToLower(a.Value)...)
	}
	return append(buf, '>')
}

// TokenKind distinguishes the two top-level token types.
type TokenKind int

// Token kinds.
const (
	// Sentence is a sequence of words and non-breaking markups.
	Sentence TokenKind = iota
	// Breaking is a single sentence-breaking markup.
	Breaking
)

// Token is the unit of comparison for HtmlDiff.
type Token struct {
	Kind TokenKind
	// Items holds the sentence contents, or exactly one markup item for
	// Breaking tokens.
	Items []Item
	// Pre marks sentences lexed inside <PRE>; they render with their
	// original spacing and compare exactly.
	Pre bool
}

// ContentLength returns the paper's sentence length: the number of words
// plus content-defining markups. Formatting markups are not counted.
func (t Token) ContentLength() int {
	n := 0
	for _, it := range t.Items {
		if it.Kind == Word || it.IsContentDefining() {
			n++
		}
	}
	return n
}

// NormKey returns a whitespace/case-insensitive key for the whole token,
// used for the exact matching of breaking markups and for hashing.
func (t Token) NormKey() string {
	return string(t.AppendNormKey(nil))
}

// AppendNormKey appends the token's NormKey to buf and returns the
// extended slice, for allocation-free interning.
func (t Token) AppendNormKey(buf []byte) []byte {
	for i, it := range t.Items {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = it.AppendNormKey(buf)
	}
	return buf
}

// Text renders the token back to HTML source. Sentences rejoin their
// items with single spaces (or original lines for <PRE> content).
func (t Token) Text() string {
	sep := " "
	if t.Pre {
		sep = "\n"
	}
	var sb strings.Builder
	for i, it := range t.Items {
		if i > 0 {
			sb.WriteString(sep)
		}
		sb.WriteString(it.Raw)
	}
	return sb.String()
}

// IsBreakingTag reports whether the (possibly "/"-prefixed, any-case) tag
// name is sentence-breaking.
func IsBreakingTag(name string) bool {
	name = strings.ToUpper(strings.TrimPrefix(name, "/"))
	return breaking[name]
}

// breaking lists the sentence-breaking (structural) markups of
// mid-1990s HTML. Unknown tags default to non-breaking (inline).
var breaking = map[string]bool{
	"HTML": true, "HEAD": true, "BODY": true, "TITLE": true,
	"P": true, "BR": true, "HR": true,
	"H1": true, "H2": true, "H3": true, "H4": true, "H5": true, "H6": true,
	"UL": true, "OL": true, "DL": true, "LI": true, "DT": true, "DD": true,
	"MENU": true, "DIR": true,
	"TABLE": true, "TR": true, "TD": true, "TH": true, "CAPTION": true,
	"BLOCKQUOTE": true, "PRE": true, "DIV": true, "CENTER": true,
	"ADDRESS": true, "FORM": true, "ISINDEX": true, "META": true,
	"LINK": true, "BASE": true, "FRAMESET": true, "FRAME": true,
	"NOFRAMES": true, "STYLE": true, "SCRIPT": true,
	"!--": true, "!": true,
}

// contentDefining lists the markups that define content rather than
// formatting (paper §5.1: "<IMG src=...> and <A href=...>").
var contentDefining = map[string]bool{
	"A": true, "IMG": true, "APPLET": true, "EMBED": true, "OBJECT": true,
	"INPUT": true, "SELECT": true, "OPTION": true, "TEXTAREA": true,
	"FRAME": true, "IFRAME": true, "AREA": true, "MAP": true,
}

// Tokenize lexes src into the sentence / breaking-markup token stream.
func Tokenize(src string) []Token {
	lx := lexer{src: src}
	items := lx.run()
	return segment(items)
}

// lexer produces a flat item stream annotated with word/markup kinds and,
// for text inside <PRE>, line-preserving word items. Content inside
// <SCRIPT> and <STYLE> is opaque: it is not prose, so it becomes one
// verbatim item compared exactly.
type lexer struct {
	src    string
	pos    int
	pre    int // <PRE> nesting depth
	opaque int // <SCRIPT>/<STYLE> nesting depth
}

// lexItem is an Item plus segmentation hints.
type lexItem struct {
	Item
	sentenceEnd bool // word ends a sentence (terminal punctuation)
	preLine     bool // item is a raw <PRE> line
}

func (lx *lexer) run() []lexItem {
	var items []lexItem
	for lx.pos < len(lx.src) {
		if lx.opaque > 0 {
			if it, moved := lx.lexOpaqueText(); moved {
				if it != nil {
					items = append(items, *it)
				}
				continue
			}
			// Positioned at the closing tag: normal markup handling.
		}
		c := lx.src[lx.pos]
		switch {
		case c == '<' && lx.looksLikeMarkup():
			it, ok := lx.lexMarkup()
			if !ok {
				// Treat a stray '<' as text.
				items = lx.lexTextRun(items)
				continue
			}
			switch strings.TrimPrefix(it.Name, "/") {
			case "PRE":
				if strings.HasPrefix(it.Name, "/") {
					if lx.pre > 0 {
						lx.pre--
					}
				} else {
					lx.pre++
				}
			case "SCRIPT", "STYLE":
				if strings.HasPrefix(it.Name, "/") {
					if lx.opaque > 0 {
						lx.opaque--
					}
				} else {
					lx.opaque++
				}
			}
			items = append(items, lexItem{Item: it})
		case isSpace(c):
			lx.pos++
		default:
			items = lx.lexTextRun(items)
		}
	}
	return items
}

// looksLikeMarkup reports whether the '<' at pos starts a tag, comment,
// or declaration (rather than literal text such as "1 < 2").
func (lx *lexer) looksLikeMarkup() bool {
	if lx.pos+1 >= len(lx.src) {
		return false
	}
	c := lx.src[lx.pos+1]
	return isAlpha(c) || c == '/' || c == '!'
}

// lexMarkup consumes one tag/comment/declaration starting at '<'.
func (lx *lexer) lexMarkup() (Item, bool) {
	start := lx.pos
	if strings.HasPrefix(lx.src[lx.pos:], "<!--") {
		end := strings.Index(lx.src[lx.pos+4:], "-->")
		if end < 0 {
			lx.pos = len(lx.src)
			// Trailing whitespace is trimmed so that rendering (which
			// appends a newline) stays idempotent.
			return Item{Kind: Markup, Raw: strings.TrimRight(lx.src[start:], " \t\r\n"), Name: "!--"}, true
		}
		lx.pos += 4 + end + 3
		return Item{Kind: Markup, Raw: lx.src[start:lx.pos], Name: "!--"}, true
	}
	end := lx.findTagEnd()
	unterminated := end < 0
	if unterminated {
		// Unterminated tag: consume to EOF as a best effort.
		end = len(lx.src)
	}
	raw := lx.src[start:end]
	lx.pos = end
	if unterminated {
		raw = strings.TrimRight(raw, " \t\r\n")
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(raw, "<"), ">")
	inner = strings.TrimSpace(inner)
	if inner == "" {
		return Item{}, false
	}
	if inner[0] == '!' {
		return Item{Kind: Markup, Raw: raw, Name: "!"}, true
	}
	name, rest := splitTagName(inner)
	if name == "" {
		return Item{}, false
	}
	attrs := parseAttrs(rest)
	return Item{Kind: Markup, Raw: raw, Name: strings.ToUpper(name), Attrs: attrs}, true
}

// findTagEnd returns the index just past the '>' closing the tag at pos,
// honouring quoted attribute values.
func (lx *lexer) findTagEnd() int {
	i := lx.pos + 1
	var quote byte
	for i < len(lx.src) {
		c := lx.src[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '>':
			return i + 1
		}
		i++
	}
	return -1
}

// lexTextRun consumes text up to the next markup, appending word items to
// items. Inside <PRE>, each source line becomes one spacing-preserving
// item.
func (lx *lexer) lexTextRun(items []lexItem) []lexItem {
	start := lx.pos
	for lx.pos < len(lx.src) {
		if lx.src[lx.pos] == '<' && lx.looksLikeMarkup() {
			break
		}
		lx.pos++
	}
	text := lx.src[start:lx.pos]
	if lx.pre > 0 {
		return preLines(text, items)
	}
	// Split on whitespace in place (a manual strings.Fields, minus its
	// intermediate slice). Byte-at-a-time for ASCII; rune decoding only
	// for high bytes, so Unicode spaces still delimit words.
	i := 0
	for i < len(text) {
		i = skipSpace(text, i, true)
		j := skipSpace(text, i, false)
		if j > i {
			w := text[i:j]
			items = append(items, lexItem{
				Item:        Item{Kind: Word, Raw: w},
				sentenceEnd: endsSentence(w),
			})
		}
		i = j
	}
	return items
}

// skipSpace advances from i past whitespace (want=true) or past
// non-whitespace (want=false), with strings.Fields' notion of space.
func skipSpace(text string, i int, want bool) int {
	for i < len(text) {
		if c := text[i]; c < utf8.RuneSelf {
			if isSpace(c) != want {
				return i
			}
			i++
		} else {
			r, size := utf8.DecodeRuneInString(text[i:])
			if unicode.IsSpace(r) != want {
				return i
			}
			i += size
		}
	}
	return i
}

// lexOpaqueText consumes the body of a <SCRIPT> or <STYLE> element up to
// its closing tag (or EOF) as one verbatim item: code is not prose, and
// a `<` inside it ("if (a<b)") is not markup. moved is false when the
// cursor already sits on the closing tag.
func (lx *lexer) lexOpaqueText() (it *lexItem, moved bool) {
	rest := lx.src[lx.pos:]
	lower := strings.ToLower(rest)
	end := len(rest)
	for _, close := range []string{"</script", "</style"} {
		if i := strings.Index(lower, close); i >= 0 && i < end {
			end = i
		}
	}
	if end == 0 {
		return nil, false
	}
	text := rest[:end]
	lx.pos += end
	if strings.TrimSpace(text) == "" {
		return nil, true
	}
	return &lexItem{
		Item:    Item{Kind: Word, Raw: strings.TrimSpace(text)},
		preLine: true,
	}, true
}

// preLines splits <PRE> text into one item per line, keeping interior
// spacing, appending to items. Blank lines are dropped (they carry no
// content).
func preLines(text string, items []lexItem) []lexItem {
	for len(text) > 0 {
		line := text
		if nl := strings.IndexByte(text, '\n'); nl >= 0 {
			line, text = text[:nl], text[nl+1:]
		} else {
			text = ""
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		items = append(items, lexItem{
			Item:    Item{Kind: Word, Raw: line},
			preLine: true,
		})
	}
	return items
}

// endsSentence reports whether a word terminates an English sentence:
// '.', '!', or '?' possibly followed by closing quotes or brackets.
func endsSentence(w string) bool {
	i := len(w) - 1
	for i >= 0 {
		switch w[i] {
		case '"', '\'', ')', ']', '}':
			i--
			continue
		case '.', '!', '?':
			return true
		}
		return false
	}
	return false
}

// splitTagName separates the tag name (with any leading '/') from the
// attribute text.
func splitTagName(inner string) (name, rest string) {
	i := 0
	if i < len(inner) && inner[i] == '/' {
		i++
	}
	j := i
	for j < len(inner) && (isAlpha(inner[j]) || isDigit(inner[j])) {
		j++
	}
	if j == i {
		return "", ""
	}
	return inner[:j], inner[j:]
}

// parseAttrs parses attribute text into normalised, name-sorted pairs.
func parseAttrs(s string) []Attr {
	var attrs []Attr
	i := 0
	for i < len(s) {
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) {
			break
		}
		// Attribute name.
		j := i
		for j < len(s) && !isSpace(s[j]) && s[j] != '=' {
			j++
		}
		name := strings.ToUpper(s[i:j])
		i = j
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		value := ""
		if i < len(s) && s[i] == '=' {
			i++
			for i < len(s) && isSpace(s[i]) {
				i++
			}
			if i < len(s) && (s[i] == '"' || s[i] == '\'') {
				q := s[i]
				i++
				j = i
				for j < len(s) && s[j] != q {
					j++
				}
				value = s[i:j]
				i = j
				if i < len(s) {
					i++ // closing quote
				}
			} else {
				j = i
				for j < len(s) && !isSpace(s[j]) {
					j++
				}
				value = s[i:j]
				i = j
			}
		}
		if name != "" && name != "/" {
			attrs = append(attrs, Attr{Name: name, Value: value})
		}
	}
	sort.SliceStable(attrs, func(a, b int) bool { return attrs[a].Name < attrs[b].Name })
	return attrs
}

// segment groups the item stream into sentence and breaking-markup
// tokens. Every Item is copied exactly once into a single arena sized up
// front, and each token's Items field is a (capacity-limited) contiguous
// range of it — one allocation for the whole stream instead of one per
// token.
func segment(items []lexItem) []Token {
	if len(items) == 0 {
		return nil
	}
	arena := make([]Item, 0, len(items))
	tokens := make([]Token, 0, len(items)/4+1)
	start := 0 // arena index where the open sentence begins
	take := func() []Item {
		s := arena[start:len(arena):len(arena)]
		start = len(arena)
		return s
	}
	flush := func() {
		if len(arena) > start {
			tokens = append(tokens, Token{Kind: Sentence, Items: take()})
		}
	}
	for _, it := range items {
		switch {
		case it.Kind == Markup && breaking[strings.TrimPrefix(it.Name, "/")]:
			flush()
			arena = append(arena, it.Item)
			tokens = append(tokens, Token{Kind: Breaking, Items: take()})
		case it.preLine:
			// Each <PRE> line is its own sentence.
			flush()
			arena = append(arena, it.Item)
			tokens = append(tokens, Token{Kind: Sentence, Items: take(), Pre: true})
		default:
			arena = append(arena, it.Item)
			if it.sentenceEnd {
				flush()
			}
		}
	}
	flush()
	return tokens
}

// Render reassembles a token stream into HTML text, one token per line:
// breaking markups on their own lines, sentences flowing with single
// spaces. The output is semantically equivalent (modulo insignificant
// whitespace) to a source that produced the tokens.
func Render(tokens []Token) string {
	var sb strings.Builder
	for _, t := range tokens {
		if text := t.Text(); text != "" {
			sb.WriteString(text)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func isSpace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '\f', '\v':
		return true
	}
	return false
}

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
