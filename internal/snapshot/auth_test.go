package snapshot

import (
	"errors"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func TestAccountsCreateVerify(t *testing.T) {
	a, err := OpenAccounts("")
	if err != nil {
		t.Fatal(err)
	}
	id, err := a.CreateAnonymous("s3cret")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "acct-") {
		t.Errorf("id = %q", id)
	}
	if !a.Verify(id, "s3cret") {
		t.Error("correct password rejected")
	}
	if a.Verify(id, "wrong") {
		t.Error("wrong password accepted")
	}
	if a.Verify("acct-nonexistent", "s3cret") {
		t.Error("unknown account accepted")
	}
}

func TestAccountsAnonymousIDsDistinct(t *testing.T) {
	a, _ := OpenAccounts("")
	id1, _ := a.CreateAnonymous("p1")
	id2, _ := a.CreateAnonymous("p2")
	if id1 == id2 {
		t.Error("two anonymous accounts share an ID")
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestAccountsPersistence(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAccounts(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := a.CreateAnonymous("pw")
	a2, err := OpenAccounts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Verify(id, "pw") {
		t.Error("account lost across reload")
	}
}

func TestAccountsSetPassword(t *testing.T) {
	a, _ := OpenAccounts("")
	id, _ := a.CreateAnonymous("old")
	if err := a.SetPassword(id, "wrong", "new"); !errors.Is(err, ErrAuth) {
		t.Errorf("rotate with wrong password: %v", err)
	}
	if err := a.SetPassword(id, "old", "new"); err != nil {
		t.Fatal(err)
	}
	if a.Verify(id, "old") || !a.Verify(id, "new") {
		t.Error("rotation did not take effect")
	}
	if err := a.SetPassword(id, "new", ""); err == nil {
		t.Error("empty new password accepted")
	}
}

func TestEmptyPasswordRejected(t *testing.T) {
	a, _ := OpenAccounts("")
	if _, err := a.CreateAnonymous(""); err == nil {
		t.Error("empty password accepted")
	}
}

func TestAuthenticatedServerFlow(t *testing.T) {
	r := newRig(t)
	srv := NewServer(r.fac)
	srv.KeepaliveInterval = 0
	srv.Accounts, _ = OpenAccounts("")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	r.web.Site("h").Page("/p").Set("<P>secret page content.</P>\n")

	// Without credentials: 401.
	code, _ := get(t, ts.URL+"/remember?url="+url.QueryEscape("http://h/p")+"&user=whoever")
	if code != 401 {
		t.Fatalf("unauthenticated remember: code = %d, want 401", code)
	}
	// Create an anonymous account over HTTP.
	code, body := get(t, ts.URL+"/account/new?password=pw123")
	if code != 200 {
		t.Fatalf("account/new: %d %s", code, body)
	}
	start := strings.Index(body, "acct-")
	if start < 0 {
		t.Fatalf("no account id in %q", body)
	}
	id := body[start : start+len("acct-")+16]

	// With credentials the full flow works under the impersonal ID.
	q := "url=" + url.QueryEscape("http://h/p") + "&user=" + id + "&password=pw123"
	code, body = get(t, ts.URL+"/remember?"+q)
	if code != 200 || !strings.Contains(body, "saved as revision 1.1") {
		t.Fatalf("authenticated remember: %d\n%s", code, body)
	}
	code, _ = get(t, ts.URL+"/history?"+q)
	if code != 200 {
		t.Fatalf("authenticated history: %d", code)
	}
	// Wrong password: 401.
	code, _ = get(t, ts.URL+"/diff?url="+url.QueryEscape("http://h/p")+"&user="+id+"&password=nope")
	if code != 401 {
		t.Fatalf("wrong password diff: code = %d, want 401", code)
	}
}

func TestAccountNewDisabledWithoutStore(t *testing.T) {
	_, ts := serverRig(t) // no Accounts configured
	code, _ := get(t, ts.URL+"/account/new?password=x")
	if code != 501 {
		t.Errorf("account/new without store: code = %d, want 501", code)
	}
}
