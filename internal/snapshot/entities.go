package snapshot

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"aide/internal/fsatomic"
	"aide/internal/htmldoc"
	"aide/internal/webclient"
)

// This file implements §5.3's "smarter comparisons". HtmlDiff compares
// only the text of two pages: "if the contents of an image file are
// changed but the URL of the file does not, then the URL in the page
// will not be flagged as changed. ... Full versioning of all entities
// would dramatically increase storage requirements. A cheaper
// alternative would be to store a checksum of each entity and use the
// checksums to determine if something has changed."
//
// When entity tracking is enabled, each check-in also records a checksum
// per referenced entity (images and such — things whose content is not
// part of the page text). EntityChanges then reports which referenced
// entities changed content between two revisions even though the page
// text referencing them did not.

// EntityTrackingOptions configure the per-revision entity snapshots.
type EntityTrackingOptions struct {
	// Enabled switches entity snapshots on for subsequent check-ins.
	Enabled bool
	// MaxEntities bounds how many referenced entities are checksummed
	// per check-in (0 means the default of 32) — the storage/overhead
	// compromise the paper calls for.
	MaxEntities int
	// FollowAnchors extends tracking to <A HREF> targets, not just
	// embedded entities (IMG/EMBED). Off by default: anchor targets are
	// whole pages and checking them costs a GET each.
	FollowAnchors bool
}

func (o EntityTrackingOptions) maxEntities() int {
	if o.MaxEntities > 0 {
		return o.MaxEntities
	}
	return 32
}

// EntitySnapshot records the referenced entities of one page revision.
type EntitySnapshot struct {
	// Rev is the page revision this snapshot belongs to.
	Rev string `json:"rev"`
	// Checksums maps resolved entity URL -> content checksum ("" when
	// the entity could not be retrieved).
	Checksums map[string]string `json:"checksums"`
}

// EntityChange reports one referenced entity whose content changed.
type EntityChange struct {
	// URL is the resolved entity location.
	URL string
	// OldSum and NewSum are the recorded checksums ("" = unknown).
	OldSum, NewSum string
	// Kind classifies the change: "modified", "appeared", "vanished".
	Kind string
}

// SetEntityTracking configures entity snapshots for future check-ins.
func (f *Facility) SetEntityTracking(opt EntityTrackingOptions) {
	f.entityOpt = opt
}

// snapshotEntities checksums the entities body references under ctx and
// stores the result beside the archive, keyed by revision.
func (f *Facility) snapshotEntities(ctx context.Context, pageURL, body, rev string) error {
	refs := htmldoc.EntityRefs(body)
	sums := make(map[string]string)
	count := 0
	for _, ref := range refs {
		if count >= f.entityOpt.maxEntities() {
			break
		}
		if ref.Markup == "A" || ref.Markup == "AREA" {
			if !f.entityOpt.FollowAnchors {
				continue
			}
		}
		target := htmldoc.ResolveLink(pageURL, ref.Target)
		if target == "" || target == pageURL {
			continue
		}
		if _, done := sums[target]; done {
			continue
		}
		count++
		info, err := f.client.Get(ctx, target)
		if err != nil || webclient.Classify(info.Status, nil) != webclient.OK {
			sums[target] = "" // unreachable: recorded as unknown
			continue
		}
		sums[target] = info.Checksum
	}
	return f.writeEntitySnapshot(pageURL, EntitySnapshot{Rev: rev, Checksums: sums})
}

// entityFile is the sidecar path for a page's entity snapshots.
func (f *Facility) entityFile(pageURL string) string {
	return f.store.EntityPath(pageURL)
}

// loadEntitySnapshots reads all recorded snapshots for a page.
func (f *Facility) loadEntitySnapshots(pageURL string) (map[string]EntitySnapshot, error) {
	out := make(map[string]EntitySnapshot)
	data, err := os.ReadFile(f.entityFile(pageURL))
	if err != nil {
		if os.IsNotExist(err) {
			return out, nil
		}
		return nil, err
	}
	var list []EntitySnapshot
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("snapshot: corrupt entity file for %s: %v", pageURL, err)
	}
	for _, s := range list {
		out[s.Rev] = s
	}
	return out, nil
}

// writeEntitySnapshot appends/replaces the snapshot for one revision.
func (f *Facility) writeEntitySnapshot(pageURL string, snap EntitySnapshot) error {
	all, err := f.loadEntitySnapshots(pageURL)
	if err != nil {
		return err
	}
	all[snap.Rev] = snap
	list := make([]EntitySnapshot, 0, len(all))
	for _, s := range all {
		list = append(list, s)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Rev < list[j].Rev })
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return err
	}
	path := f.entityFile(pageURL)
	if err := fsatomic.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	f.recordChecksum(KindEntities, filepath.Base(path), data)
	return nil
}

// EntityChanges compares the entity snapshots of two revisions and
// reports referenced entities whose content changed, appeared, or
// vanished — differences HtmlDiff alone cannot see (§5.3).
func (f *Facility) EntityChanges(pageURL, oldRev, newRev string) ([]EntityChange, error) {
	all, err := f.loadEntitySnapshots(pageURL)
	if err != nil {
		return nil, err
	}
	oldSnap, okOld := all[oldRev]
	newSnap, okNew := all[newRev]
	if !okOld || !okNew {
		return nil, fmt.Errorf("snapshot: no entity snapshots for %s at %s/%s (entity tracking off?)",
			pageURL, oldRev, newRev)
	}
	var changes []EntityChange
	for u, oldSum := range oldSnap.Checksums {
		newSum, still := newSnap.Checksums[u]
		switch {
		case !still:
			changes = append(changes, EntityChange{URL: u, OldSum: oldSum, Kind: "vanished"})
		case oldSum != newSum && oldSum != "" && newSum != "":
			changes = append(changes, EntityChange{URL: u, OldSum: oldSum, NewSum: newSum, Kind: "modified"})
		}
	}
	for u, newSum := range newSnap.Checksums {
		if _, was := oldSnap.Checksums[u]; !was {
			changes = append(changes, EntityChange{URL: u, NewSum: newSum, Kind: "appeared"})
		}
	}
	sort.Slice(changes, func(i, j int) bool { return changes[i].URL < changes[j].URL })
	return changes, nil
}
