package snapshot

// This file is the facility's storage layer, made pluggable so the
// archive space can be partitioned. The paper's §4.2 anticipates the
// need: a saturated facility "could ... replicate itself among multiple
// computers, as many W3 services do". A Store maps page URLs and user
// names to the files that hold their archives, entity sidecars, and
// control files, and enumerates them for sweeps and replication.
//
// Two implementations:
//
//   - FlatStore is the original layout — one repo/ and one users/
//     directory under the root. Repositories created by earlier
//     versions open unchanged.
//
//   - ShardedStore partitions the same files across N shard
//     directories by consistent hashing (a hash ring with virtual
//     nodes), so shards can be added later and only ~1/N of the keys
//     move; Rebalance migrates the misplaced remainder.
//
// The ring is keyed on file *base names*, not raw URLs. A base name is
// a pure function of its URL (see archiveBase), so this is consistent
// hashing of the URL — but it lets Import, Rebalance, and replication
// place any repository file knowing only its name, which matters for
// overflow-hashed names whose URL is not recoverable from the name.

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"aide/internal/fsatomic"
)

// File-kind tags shared by export dumps, manifests, and Place.
const (
	KindArchive  = "archive"
	KindEntities = "entities"
	KindURL      = "url"
	KindUser     = "user"
)

// Suffixes that turn a base name into a concrete repository file.
const (
	archiveSuffix  = ",v"
	entitiesSuffix = ",entities.json"
	urlSuffix      = ",url"
	userSuffix     = ".json"
)

// maxNameLen is the portable NAME_MAX: a file base name longer than
// this fails to create on most filesystems.
const maxNameLen = 255

// StoredFile is one repository file as a store enumerates it.
type StoredFile struct {
	// Kind is one of KindArchive, KindEntities, KindURL, KindUser.
	Kind string
	// Name is the file's base name on disk.
	Name string
	// Path is the file's full path.
	Path string
	// Shard is the shard holding the file (0 in a flat store).
	Shard int
}

// Store is the snapshot facility's pluggable storage layer: it decides
// where archives, entity sidecars, and user control files live, and
// enumerates them for listings, export, and replication.
type Store interface {
	// Root returns the store's top-level data directory.
	Root() string
	// Shards reports how many shards partition the store (1 = flat).
	Shards() int
	// ShardOf maps a page URL to the shard holding its archive.
	ShardOf(pageURL string) int
	// ArchivePath returns the RCS archive path for a page URL.
	ArchivePath(pageURL string) string
	// EntityPath returns the entity-snapshot sidecar path for a page URL.
	EntityPath(pageURL string) string
	// UserPath returns the control-file path for a user.
	UserPath(user string) string
	// NoteURL persists the name→URL reverse mapping for pages whose
	// archive name had to be hashed (a ",url" sidecar); it is a no-op
	// for names that already decode back to their URL.
	NoteURL(pageURL string) error
	// ArchivedURLs lists every URL with an archive, sorted.
	ArchivedURLs() ([]string, error)
	// ShardURLs lists the archived URLs of one shard, sorted.
	ShardURLs(shard int) ([]string, error)
	// Files enumerates every repository file: repo files (archives,
	// entity and url sidecars) sorted by name, then user control files
	// sorted by name — the export order.
	Files() ([]StoredFile, error)
	// ShardFiles enumerates one shard's files in the same order.
	ShardFiles(shard int) ([]StoredFile, error)
	// Place returns the path where a file of the given kind and base
	// name belongs, so imported and replicated files land in the right
	// shard without the store needing the original URL.
	Place(kind, name string) (string, error)
	// ShardOfFile maps a file (by kind and base name) to the shard that
	// owns it — the name-keyed counterpart of ShardOf, for repair paths
	// that know a damaged file's name but not its URL.
	ShardOfFile(kind, name string) (int, error)
	// Remove deletes the file of the given kind and name (nil if absent).
	Remove(kind, name string) error
	// LockKey returns the per-URL mutual-exclusion key for a page,
	// scoped to the shard that owns it.
	LockKey(pageURL string) string
	// Rebalance moves files that do not live in the shard the ring now
	// assigns them — after adding shards, or when adopting a repository
	// laid out flat — and reports how many moved.
	Rebalance() (moved int, err error)
}

// --- naming -------------------------------------------------------------------

// archiveBase returns the file base name for a page URL: its URL-escaped
// form when every derived file name (base plus the longest suffix) fits
// in NAME_MAX, else a truncated prefix joined to an fnv64 hash of the
// full URL. Hashed names are not invertible; NoteURL records their URL
// in a ",url" sidecar so listings can still recover it.
func archiveBase(pageURL string) string {
	esc := url.QueryEscape(pageURL)
	if len(esc)+len(entitiesSuffix) <= maxNameLen {
		return esc
	}
	h := fnv.New64a()
	h.Write([]byte(pageURL))
	sum := fmt.Sprintf("%016x", h.Sum64())
	keep := maxNameLen - len(entitiesSuffix) - len(sum) - 1
	return esc[:keep] + "-" + sum
}

// userBase returns the control-file base name (sans ".json") for a
// user, with the same overflow fallback as archiveBase.
func userBase(user string) string {
	esc := url.QueryEscape(user)
	if len(esc)+len(userSuffix) <= maxNameLen {
		return esc
	}
	h := fnv.New64a()
	h.Write([]byte(user))
	sum := fmt.Sprintf("%016x", h.Sum64())
	keep := maxNameLen - len(userSuffix) - len(sum) - 1
	return esc[:keep] + "-" + sum
}

// baseOf strips a repository file name back to its ring key. ok is
// false for names that carry none of the known suffixes.
func baseOf(kind, name string) (base string, ok bool) {
	switch kind {
	case KindArchive:
		base = strings.TrimSuffix(name, archiveSuffix)
	case KindEntities:
		base = strings.TrimSuffix(name, entitiesSuffix)
	case KindURL:
		base = strings.TrimSuffix(name, urlSuffix)
	case KindUser:
		base = strings.TrimSuffix(name, userSuffix)
	default:
		return "", false
	}
	return base, base != name
}

// kindOfRepoFile classifies a repo-directory file by suffix.
func kindOfRepoFile(name string) (string, bool) {
	switch {
	case strings.HasSuffix(name, entitiesSuffix):
		return KindEntities, true
	case strings.HasSuffix(name, urlSuffix):
		return KindURL, true
	case strings.HasSuffix(name, archiveSuffix):
		return KindArchive, true
	}
	return "", false
}

// legacyArchivePath returns the pre-overflow-fix path for a URL whose
// base name is hashed today but whose plain ",v" name still fit in
// NAME_MAX — repositories written before the fix hold such archives
// under the full escaped name, and those stay readable.
func legacyArchivePath(repoDir, pageURL string) (string, bool) {
	esc := url.QueryEscape(pageURL)
	if len(esc)+len(entitiesSuffix) <= maxNameLen || len(esc)+len(archiveSuffix) > maxNameLen {
		return "", false
	}
	p := filepath.Join(repoDir, esc+archiveSuffix)
	if _, err := os.Stat(p); err != nil {
		return "", false
	}
	return p, true
}

// urlsInRepoDir resolves the archived URLs found in one repo directory:
// names decode via QueryUnescape unless a ",url" sidecar records the
// original (overflow-hashed names).
func urlsInRepoDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	sidecars := make(map[string]bool)
	var bases []string
	for _, e := range entries {
		name := e.Name()
		if base, ok := baseOf(KindURL, name); ok {
			sidecars[base] = true
			continue
		}
		if kind, ok := kindOfRepoFile(name); ok && kind == KindArchive {
			bases = append(bases, strings.TrimSuffix(name, archiveSuffix))
		}
	}
	var urls []string
	for _, base := range bases {
		if sidecars[base] {
			data, err := os.ReadFile(filepath.Join(dir, base+urlSuffix))
			if err != nil {
				return nil, err
			}
			urls = append(urls, strings.TrimSpace(string(data)))
			continue
		}
		u, err := url.QueryUnescape(base)
		if err != nil {
			continue // not one of ours
		}
		urls = append(urls, u)
	}
	return urls, nil
}

// filesInDir enumerates one directory's repository files as StoredFiles.
// Repo directories classify by suffix; user directories tag everything
// KindUser. Temp files are skipped.
func filesInDir(dir string, userDir bool, shard int) ([]StoredFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []StoredFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasSuffix(name, ".tmp") {
			continue
		}
		kind := KindUser
		if !userDir {
			var ok bool
			kind, ok = kindOfRepoFile(name)
			if !ok {
				continue
			}
		}
		out = append(out, StoredFile{Kind: kind, Name: name, Path: filepath.Join(dir, name), Shard: shard})
	}
	return out, nil
}

// noteURLAt writes the ",url" reverse-map sidecar beside an archive
// whose base name is hashed; a no-op when the name decodes on its own.
func noteURLAt(repoDir, pageURL string) error {
	base := archiveBase(pageURL)
	if base == url.QueryEscape(pageURL) {
		return nil
	}
	return fsatomic.WriteFile(filepath.Join(repoDir, base+urlSuffix), []byte(pageURL+"\n"), 0o644)
}

// --- consistent-hash ring ------------------------------------------------------

// ringVnodes is how many virtual nodes each shard contributes to the
// ring; more vnodes smooth the key distribution across shards.
const ringVnodes = 64

type ringPoint struct {
	hash  uint64
	shard int
}

// hashRing assigns keys to shards by consistent hashing: each shard
// owns the arc before each of its virtual points, so adding a shard
// moves only the keys falling on the new points' arcs (~1/N of them).
type hashRing struct {
	points []ringPoint
}

func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func newRing(shards int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, shards*ringVnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{fnv64(fmt.Sprintf("shard-%d-vnode-%d", s, v)), s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// locate returns the shard owning key: the first ring point at or after
// the key's hash, wrapping at the top.
func (r *hashRing) locate(key string) int {
	h := fnv64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// --- FlatStore -----------------------------------------------------------------

// FlatStore is the original single-directory layout: everything under
// root/repo and root/users. It is what repositories created before
// sharding look like, and remains the default.
type FlatStore struct {
	root string
}

// NewFlatStore creates (or reopens) the flat layout under dir.
func NewFlatStore(dir string) (*FlatStore, error) {
	for _, sub := range []string{"repo", "users", "locks"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &FlatStore{root: dir}, nil
}

func (s *FlatStore) Root() string               { return s.root }
func (s *FlatStore) Shards() int                { return 1 }
func (s *FlatStore) ShardOf(pageURL string) int { return 0 }

func (s *FlatStore) repoDir() string { return filepath.Join(s.root, "repo") }

func (s *FlatStore) ArchivePath(pageURL string) string {
	if p, ok := legacyArchivePath(s.repoDir(), pageURL); ok {
		return p
	}
	return filepath.Join(s.repoDir(), archiveBase(pageURL)+archiveSuffix)
}

func (s *FlatStore) EntityPath(pageURL string) string {
	return filepath.Join(s.repoDir(), archiveBase(pageURL)+entitiesSuffix)
}

func (s *FlatStore) UserPath(user string) string {
	return filepath.Join(s.root, "users", userBase(user)+userSuffix)
}

func (s *FlatStore) NoteURL(pageURL string) error {
	return noteURLAt(s.repoDir(), pageURL)
}

func (s *FlatStore) ArchivedURLs() ([]string, error) {
	urls, err := urlsInRepoDir(s.repoDir())
	if err != nil {
		return nil, err
	}
	sort.Strings(urls)
	return urls, nil
}

func (s *FlatStore) ShardURLs(shard int) ([]string, error) {
	if shard != 0 {
		return nil, fmt.Errorf("snapshot: flat store has no shard %d", shard)
	}
	return s.ArchivedURLs()
}

func (s *FlatStore) Files() ([]StoredFile, error) {
	return s.ShardFiles(0)
}

func (s *FlatStore) ShardFiles(shard int) ([]StoredFile, error) {
	if shard != 0 {
		return nil, fmt.Errorf("snapshot: flat store has no shard %d", shard)
	}
	repo, err := filesInDir(s.repoDir(), false, 0)
	if err != nil {
		return nil, err
	}
	users, err := filesInDir(filepath.Join(s.root, "users"), true, 0)
	if err != nil {
		return nil, err
	}
	sortFiles(repo)
	sortFiles(users)
	return append(repo, users...), nil
}

func (s *FlatStore) Place(kind, name string) (string, error) {
	if err := checkPlaceName(kind, name); err != nil {
		return "", err
	}
	if kind == KindUser {
		return filepath.Join(s.root, "users", name), nil
	}
	return filepath.Join(s.repoDir(), name), nil
}

func (s *FlatStore) ShardOfFile(kind, name string) (int, error) {
	if err := checkPlaceName(kind, name); err != nil {
		return 0, err
	}
	return 0, nil
}

func (s *FlatStore) Remove(kind, name string) error {
	p, err := s.Place(kind, name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

func (s *FlatStore) LockKey(pageURL string) string { return "url:" + pageURL }

// Rebalance is a no-op for the flat store: there is only one place for
// anything to live.
func (s *FlatStore) Rebalance() (int, error) { return 0, nil }

// --- ShardedStore --------------------------------------------------------------

// ShardedStore partitions the repository across N shard directories
// (root/shard-000 ... shard-N-1, each with its own repo/ and users/)
// by consistent hashing of file base names. Lock files stay shared at
// root/locks — lock keys are already shard-scoped.
type ShardedStore struct {
	root   string
	shards int
	ring   *hashRing
}

// NewShardedStore creates (or reopens) an N-shard layout under dir.
// Opening a directory that holds a flat repository (or one laid out
// with a different shard count) succeeds; run Rebalance to migrate the
// misplaced files before serving.
func NewShardedStore(dir string, shards int) (*ShardedStore, error) {
	if shards < 2 {
		return nil, fmt.Errorf("snapshot: sharded store needs >= 2 shards, got %d", shards)
	}
	if err := os.MkdirAll(filepath.Join(dir, "locks"), 0o755); err != nil {
		return nil, err
	}
	s := &ShardedStore{root: dir, shards: shards, ring: newRing(shards)}
	for i := 0; i < shards; i++ {
		for _, sub := range []string{"repo", "users"} {
			if err := os.MkdirAll(filepath.Join(s.shardDir(i), sub), 0o755); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

func (s *ShardedStore) Root() string { return s.root }
func (s *ShardedStore) Shards() int  { return s.shards }

func (s *ShardedStore) shardDir(i int) string {
	return filepath.Join(s.root, fmt.Sprintf("shard-%03d", i))
}

func (s *ShardedStore) repoDir(i int) string { return filepath.Join(s.shardDir(i), "repo") }

// ShardOf hashes the page's archive base name onto the ring, so the
// shard assignment survives name overflow and matches Place.
func (s *ShardedStore) ShardOf(pageURL string) int {
	return s.ring.locate(archiveBase(pageURL))
}

func (s *ShardedStore) ArchivePath(pageURL string) string {
	base := archiveBase(pageURL)
	if base != url.QueryEscape(pageURL) {
		// Overflow names: a pre-fix repository may hold this URL under
		// its full escaped name, which the ring places by that name.
		esc := url.QueryEscape(pageURL)
		if len(esc)+len(archiveSuffix) <= maxNameLen {
			if p, ok := legacyArchivePath(s.repoDir(s.ring.locate(esc)), pageURL); ok {
				return p
			}
		}
	}
	return filepath.Join(s.repoDir(s.ring.locate(base)), base+archiveSuffix)
}

func (s *ShardedStore) EntityPath(pageURL string) string {
	base := archiveBase(pageURL)
	return filepath.Join(s.repoDir(s.ring.locate(base)), base+entitiesSuffix)
}

func (s *ShardedStore) UserPath(user string) string {
	base := userBase(user)
	return filepath.Join(s.shardDir(s.ring.locate(base)), "users", base+userSuffix)
}

func (s *ShardedStore) NoteURL(pageURL string) error {
	return noteURLAt(s.repoDir(s.ShardOf(pageURL)), pageURL)
}

func (s *ShardedStore) ArchivedURLs() ([]string, error) {
	var urls []string
	for i := 0; i < s.shards; i++ {
		us, err := urlsInRepoDir(s.repoDir(i))
		if err != nil {
			return nil, err
		}
		urls = append(urls, us...)
	}
	sort.Strings(urls)
	return urls, nil
}

func (s *ShardedStore) ShardURLs(shard int) ([]string, error) {
	if shard < 0 || shard >= s.shards {
		return nil, fmt.Errorf("snapshot: no shard %d (store has %d)", shard, s.shards)
	}
	urls, err := urlsInRepoDir(s.repoDir(shard))
	if err != nil {
		return nil, err
	}
	sort.Strings(urls)
	return urls, nil
}

// Files lists all shards' files merged into the flat store's order —
// repo files sorted by name, then user files sorted by name — so an
// export of a sharded store is byte-identical to the flat equivalent.
func (s *ShardedStore) Files() ([]StoredFile, error) {
	var repo, users []StoredFile
	for i := 0; i < s.shards; i++ {
		r, err := filesInDir(s.repoDir(i), false, i)
		if err != nil {
			return nil, err
		}
		repo = append(repo, r...)
		u, err := filesInDir(filepath.Join(s.shardDir(i), "users"), true, i)
		if err != nil {
			return nil, err
		}
		users = append(users, u...)
	}
	sortFiles(repo)
	sortFiles(users)
	return append(repo, users...), nil
}

func (s *ShardedStore) ShardFiles(shard int) ([]StoredFile, error) {
	if shard < 0 || shard >= s.shards {
		return nil, fmt.Errorf("snapshot: no shard %d (store has %d)", shard, s.shards)
	}
	repo, err := filesInDir(s.repoDir(shard), false, shard)
	if err != nil {
		return nil, err
	}
	users, err := filesInDir(filepath.Join(s.shardDir(shard), "users"), true, shard)
	if err != nil {
		return nil, err
	}
	sortFiles(repo)
	sortFiles(users)
	return append(repo, users...), nil
}

func (s *ShardedStore) Place(kind, name string) (string, error) {
	if err := checkPlaceName(kind, name); err != nil {
		return "", err
	}
	base, ok := baseOf(kind, name)
	if !ok {
		return "", fmt.Errorf("snapshot: %s file %q lacks its suffix", kind, name)
	}
	shard := s.ring.locate(base)
	if kind == KindUser {
		return filepath.Join(s.shardDir(shard), "users", name), nil
	}
	return filepath.Join(s.repoDir(shard), name), nil
}

func (s *ShardedStore) ShardOfFile(kind, name string) (int, error) {
	if err := checkPlaceName(kind, name); err != nil {
		return 0, err
	}
	base, ok := baseOf(kind, name)
	if !ok {
		return 0, fmt.Errorf("snapshot: %s file %q lacks its suffix", kind, name)
	}
	return s.ring.locate(base), nil
}

func (s *ShardedStore) Remove(kind, name string) error {
	p, err := s.Place(kind, name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

func (s *ShardedStore) LockKey(pageURL string) string {
	return fmt.Sprintf("shard:%03d:url:%s", s.ShardOf(pageURL), pageURL)
}

// Rebalance walks every shard directory present on disk — including a
// legacy flat repo/ and users/ at the root, and shard dirs beyond the
// current count — and moves each file to the location the ring assigns
// its name. Adding a shard therefore migrates only the ~1/N of keys
// whose arcs the new shard took over. Run it before serving; it does
// not coordinate with concurrent check-ins.
func (s *ShardedStore) Rebalance() (moved int, err error) {
	type dirpair struct {
		dir     string
		userDir bool
	}
	var dirs []dirpair
	// Legacy flat layout at the root.
	dirs = append(dirs,
		dirpair{filepath.Join(s.root, "repo"), false},
		dirpair{filepath.Join(s.root, "users"), true})
	// Every shard directory on disk, current count or not.
	globbed, err := filepath.Glob(filepath.Join(s.root, "shard-*"))
	if err != nil {
		return 0, err
	}
	sort.Strings(globbed)
	for _, d := range globbed {
		dirs = append(dirs,
			dirpair{filepath.Join(d, "repo"), false},
			dirpair{filepath.Join(d, "users"), true})
	}
	for _, dp := range dirs {
		files, err := filesInDir(dp.dir, dp.userDir, -1)
		if err != nil {
			return moved, err
		}
		for _, f := range files {
			want, err := s.Place(f.Kind, f.Name)
			if err != nil {
				continue // unrecognised name: leave it where it is
			}
			if want == f.Path {
				continue
			}
			if err := os.Rename(f.Path, want); err != nil {
				return moved, fmt.Errorf("snapshot: rebalance %s: %w", f.Name, err)
			}
			moved++
		}
	}
	// A fully migrated legacy layout leaves empty flat dirs behind;
	// drop them so the root reads as sharded (ignore non-empty).
	os.Remove(filepath.Join(s.root, "repo"))
	os.Remove(filepath.Join(s.root, "users"))
	return moved, nil
}

// --- shared helpers -----------------------------------------------------------

// sortFiles orders files by base name, matching ReadDir's order within
// a single directory so flat and sharded enumerations agree.
func sortFiles(files []StoredFile) {
	sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
}

// checkPlaceName rejects names that could escape the store's
// directories (shared by Place on both stores and Import).
func checkPlaceName(kind, name string) error {
	switch kind {
	case KindArchive, KindEntities, KindURL, KindUser:
	default:
		return fmt.Errorf("snapshot: unknown file kind %q", kind)
	}
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("snapshot: unsafe file name %q", name)
	}
	return nil
}
