package snapshot

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"aide/internal/obs"
	"aide/internal/rcs"
)

func TestFailoverReadRepairsCorruptArchive(t *testing.T) {
	p := newReplicaPair(t, 4)
	reg := obs.NewRegistry()
	p.leader.fac.Metrics = reg
	urls := checkinN(t, p.leader.fac, 4, "fo")
	if _, _, err := p.repl.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.leader.fac.Failover = p.repl

	// Trash the local archive beyond parsing: a read must detect the
	// corruption, pull the replica's copy, and answer anyway.
	victim := urls[1]
	path := p.leader.fac.Store().ArchivePath(victim)
	if err := os.WriteFile(path, []byte("not an rcs archive\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	text, err := p.leader.fac.Checkout(victim, "")
	if err != nil || text != "fo body 1\n" {
		t.Fatalf("failover checkout = (%q,%v)", text, err)
	}
	if got := reg.Counter("failover.repaired").Value(); got != 1 {
		t.Fatalf("failover.repaired = %d", got)
	}
	// The damaged bytes were quarantined, and the local copy is whole
	// again: the next read never touches the replica.
	if q, err := os.ReadDir(filepath.Join(p.leader.fac.Root(), "quarantine")); err != nil || len(q) != 1 {
		t.Fatalf("quarantine = %v, %v", q, err)
	}
	if _, err := p.leader.fac.Checkout(victim, ""); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("failover.reads").Value(); got != 1 {
		t.Fatalf("failover.reads = %d (second read should be local)", got)
	}
}

func TestFailoverReadRestoresMissingArchive(t *testing.T) {
	p := newReplicaPair(t, 4)
	urls := checkinN(t, p.leader.fac, 4, "fom")
	if _, _, err := p.repl.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.leader.fac.Failover = p.repl
	victim := urls[2]
	name := filepath.Base(p.leader.fac.Store().ArchivePath(victim))
	if err := p.leader.fac.Store().Remove(KindArchive, name); err != nil {
		t.Fatal(err)
	}
	// History exercises the same failover path as checkout.
	revs, _, err := p.leader.fac.History(userA, victim)
	if err != nil || len(revs) != 1 {
		t.Fatalf("failover history = (%d revs, %v)", len(revs), err)
	}
}

func TestFailoverIgnoresNeverArchivedPages(t *testing.T) {
	p := newReplicaPair(t, 4)
	reg := obs.NewRegistry()
	p.leader.fac.Metrics = reg
	p.leader.fac.Failover = p.repl
	// No ledger entry for this page: the miss must not cost a replica
	// round trip per read.
	if _, err := p.leader.fac.Checkout("http://h/never-saved", ""); !errors.Is(err, rcs.ErrNoArchive) {
		t.Fatalf("err = %v, want ErrNoArchive", err)
	}
	if got := reg.Counter("failover.reads").Value(); got != 0 {
		t.Fatalf("failover.reads = %d for a never-archived page", got)
	}
}

func TestFailoverMissWhenReplicaHasNoCopy(t *testing.T) {
	p := newReplicaPair(t, 4)
	reg := obs.NewRegistry()
	p.leader.fac.Metrics = reg
	urls := checkinN(t, p.leader.fac, 2, "fox")
	// Deliberately no sync: the replica is empty.
	p.leader.fac.Failover = p.repl
	path := p.leader.fac.Store().ArchivePath(urls[0])
	if err := os.WriteFile(path, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := p.leader.fac.Checkout(urls[0], ""); !errors.Is(err, rcs.ErrCorrupt) {
		t.Fatalf("err = %v, want the original ErrCorrupt", err)
	}
	if got := reg.Counter("failover.misses").Value(); got != 1 {
		t.Fatalf("failover.misses = %d", got)
	}
}

func TestFailoverConcurrentReadsSingleRepair(t *testing.T) {
	p := newReplicaPair(t, 4)
	reg := obs.NewRegistry()
	p.leader.fac.Metrics = reg
	urls := checkinN(t, p.leader.fac, 1, "foc")
	if _, _, err := p.repl.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.leader.fac.Failover = p.repl
	path := p.leader.fac.Store().ArchivePath(urls[0])
	if err := os.WriteFile(path, []byte("broken beyond parsing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.leader.fac.Checkout(urls[0], "")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent read %d: %v", i, err)
		}
	}
	// Single-flight: the stampede performed one repair, not eight.
	if got := reg.Counter("failover.repaired").Value(); got != 1 {
		t.Fatalf("failover.repaired = %d under a read stampede", got)
	}
}
