package snapshot

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"aide/internal/httpdate"
	"aide/internal/memento"
)

// seedRevisions checks in one revision of pageURL per instant, so the
// archive's memento index is known exactly. Times must be ascending.
func seedRevisions(t *testing.T, r *rig, site, path string, times []time.Time, bodies []string) {
	t.Helper()
	pageURL := "http://" + site + path
	for i, at := range times {
		r.clock.Set(at)
		r.web.Site(site).Page(path).Set(bodies[i])
		if _, err := r.fac.Remember(context.Background(), userA, pageURL); err != nil {
			t.Fatalf("remember rev %d: %v", i+1, err)
		}
	}
}

func june(day, hour int) time.Time {
	return time.Date(1996, time.June, day, hour, 0, 0, 0, time.UTC)
}

func noFollow() *http.Client {
	return &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
}

func TestRevisionIndex(t *testing.T) {
	r := newRig(t)
	times := []time.Time{june(1, 12), june(2, 12), june(3, 12)}
	seedRevisions(t, r, "h", "/p", times, []string{"<html>v1</html>\n", "<html>v2</html>\n", "<html>v3</html>\n"})

	ms, err := r.fac.RevisionIndex("http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("index length = %d, want 3", len(ms))
	}
	for i, m := range ms {
		if !m.Time.Equal(times[i]) {
			t.Errorf("memento %d time = %v, want %v", i, m.Time, times[i])
		}
	}
	if ms[0].Rev != "1.1" || ms[2].Rev != "1.3" {
		t.Errorf("revision order = %s..%s, want 1.1..1.3 (oldest first)", ms[0].Rev, ms[2].Rev)
	}

	if _, err := r.fac.RevisionIndex("http://h/never-saved"); err == nil {
		t.Error("RevisionIndex(unknown) succeeded, want error")
	}
}

// TestTimeGateCompliance exercises RFC 7089 pattern 1 against a real
// archive: 302 with Vary/Location/Link, and the Location target serves
// the negotiated revision with Memento-Datetime.
func TestTimeGateCompliance(t *testing.T) {
	r, ts := serverRig(t)
	times := []time.Time{june(1, 12), june(2, 12), june(3, 12)}
	seedRevisions(t, r, "h", "/p", times, []string{"<html>v1</html>\n", "<html>v2</html>\n", "<html>v3</html>\n"})

	req, _ := http.NewRequest("GET", ts.URL+"/timegate?url=http://h/p", nil)
	req.Header.Set("Accept-Datetime", httpdate.Format(june(2, 15)))
	resp, err := noFollow().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("TimeGate status = %d, want 302", resp.StatusCode)
	}
	if v := resp.Header.Get("Vary"); !strings.EqualFold(v, "accept-datetime") {
		t.Errorf("Vary = %q", v)
	}
	loc := resp.Header.Get("Location")
	if !strings.Contains(loc, "/memento/"+memento.FormatTimestamp(june(2, 12))+"/http://h/p") {
		t.Errorf("Location = %q, want June 2 memento", loc)
	}
	link := resp.Header.Get("Link")
	for _, want := range []string{`rel="original"`, `rel="timemap"`, `rel="first memento"`, `rel="last memento"`} {
		if !strings.Contains(link, want) {
			t.Errorf("TimeGate Link missing %s: %q", want, link)
		}
	}

	// Follow the negotiated location: the memento itself.
	resp2, err := http.Get(loc)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("memento status = %d", resp2.StatusCode)
	}
	if got, want := resp2.Header.Get("Memento-Datetime"), httpdate.Format(june(2, 12)); got != want {
		t.Errorf("Memento-Datetime = %q, want %q", got, want)
	}
	if !strings.Contains(body, "v2") {
		t.Errorf("memento body is not revision 2:\n%s", body)
	}
	if !strings.Contains(body, `<BASE HREF="http://h/p">`) {
		t.Errorf("memento body lacks BASE directive:\n%s", body)
	}
	l2 := resp2.Header.Get("Link")
	for _, want := range []string{`rel="original"`, `rel="timegate"`, `rel="timemap"`, `rel="prev memento"`, `rel="next memento"`, `rel="memento"`} {
		if !strings.Contains(l2, want) {
			t.Errorf("memento Link missing %s: %q", want, l2)
		}
	}

	// Without Accept-Datetime the gate sends the current memento.
	resp3, err := noFollow().Get(ts.URL + "/timegate?url=http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if loc := resp3.Header.Get("Location"); !strings.Contains(loc, memento.FormatTimestamp(june(3, 12))) {
		t.Errorf("no-header Location = %q, want latest memento", loc)
	}
}

func TestTimeMapCompliance(t *testing.T) {
	r, ts := serverRig(t)
	times := []time.Time{june(1, 12), june(2, 12), june(3, 12)}
	seedRevisions(t, r, "h", "/p", times, []string{"<html>v1</html>\n", "<html>v2</html>\n", "<html>v3</html>\n"})

	resp, err := http.Get(ts.URL + "/timemap/link?url=http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("TimeMap status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != memento.ContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"<http://h/p>;rel=\"original\"",
		"rel=\"timegate\"",
		"rel=\"self\"",
		"rel=\"first memento\";datetime=\"" + httpdate.Format(june(1, 12)) + "\"",
		"rel=\"memento\";datetime=\"" + httpdate.Format(june(2, 12)) + "\"",
		"rel=\"last memento\";datetime=\"" + httpdate.Format(june(3, 12)) + "\"",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("TimeMap missing %s:\n%s", want, body)
		}
	}
}

func TestMementoDiffEndpoint(t *testing.T) {
	r, ts := serverRig(t)
	times := []time.Time{june(1, 12), june(2, 12), june(3, 12)}
	seedRevisions(t, r, "h", "/p", times, []string{
		"<html>alpha one</html>\n", "<html>alpha two</html>\n", "<html>alpha three</html>\n"})

	// Datetime-addressed diff: from clamps to rev 1, to negotiates to
	// rev 3 (default: latest).
	resp, err := http.Get(ts.URL + "/memento/diff?url=http://h/p&from=1996")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff status = %d\n%s", resp.StatusCode, body)
	}
	if got, want := resp.Header.Get("Memento-Datetime"), httpdate.Format(june(3, 12)); got != want {
		t.Errorf("diff Memento-Datetime = %q, want %q", got, want)
	}
	if n := strings.Count(resp.Header.Get("Link"), `rel="memento"`); n != 2 {
		t.Errorf("diff Link memento count = %d, want 2: %q", n, resp.Header.Get("Link"))
	}
	if !strings.Contains(body, "three") {
		t.Errorf("diff body lacks new text:\n%s", body)
	}
}

// TestCheckoutAndDiffCarryMementoHeaders checks the facility's native
// endpoints stamp the RFC 7089 headers on responses built from
// archived states.
func TestCheckoutAndDiffCarryMementoHeaders(t *testing.T) {
	r, ts := serverRig(t)
	times := []time.Time{june(1, 12), june(2, 12), june(3, 12)}
	seedRevisions(t, r, "h", "/p", times, []string{"<html>v1</html>\n", "<html>v2</html>\n", "<html>v3</html>\n"})

	// Explicit revision.
	resp, err := http.Get(ts.URL + "/co?url=http://h/p&rev=1.2")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got, want := resp.Header.Get("Memento-Datetime"), httpdate.Format(june(2, 12)); got != want {
		t.Errorf("/co Memento-Datetime = %q, want %q", got, want)
	}
	link := resp.Header.Get("Link")
	for _, want := range []string{`rel="original"`, `rel="timegate"`, `rel="prev memento"`, `rel="next memento"`} {
		if !strings.Contains(link, want) {
			t.Errorf("/co Link missing %s: %q", want, link)
		}
	}

	// Head checkout (no rev parameter) resolves to the newest memento.
	resp, err = http.Get(ts.URL + "/co?url=http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got, want := resp.Header.Get("Memento-Datetime"), httpdate.Format(june(3, 12)); got != want {
		t.Errorf("head /co Memento-Datetime = %q, want %q", got, want)
	}

	// Archived-pair diff.
	resp, err = http.Get(ts.URL + "/diff?url=http://h/p&r1=1.1&r2=1.3&user=" + userA)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got, want := resp.Header.Get("Memento-Datetime"), httpdate.Format(june(3, 12)); got != want {
		t.Errorf("/diff Memento-Datetime = %q, want %q", got, want)
	}

	// rcsdiff too.
	resp, err = http.Get(ts.URL + "/rcsdiff?url=http://h/p&r1=1.1&r2=1.2")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got, want := resp.Header.Get("Memento-Datetime"), httpdate.Format(june(2, 12)); got != want {
		t.Errorf("/rcsdiff Memento-Datetime = %q, want %q", got, want)
	}

	// Live-vs-saved diff derives from the live page, not a memento pair:
	// no Memento-Datetime.
	resp, err = http.Get(ts.URL + "/diff?url=http://h/p&user=" + userA)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if got := resp.Header.Get("Memento-Datetime"); got != "" {
		t.Errorf("live /diff Memento-Datetime = %q, want none", got)
	}
}

// TestMementoMetricsLabels checks the RED middleware sees the memento
// routes as their bounded mux patterns — never raw URLs — and counts
// TimeGate redirects in the 3xx class.
func TestMementoMetricsLabels(t *testing.T) {
	r, ts := serverRig(t)
	seedRevisions(t, r, "h", "/p", []time.Time{june(1, 12), june(2, 12)}, []string{"<html>v1</html>\n", "<html>v2</html>\n"})

	for _, u := range []string{
		"/timegate?url=http://h/p",
		"/timemap/link?url=http://h/p",
		// Pre-cleaned path form (as arrives after the mux's 301): the
		// request that actually serves the memento body.
		"/memento/" + memento.FormatTimestamp(june(1, 12)) + "/http:/h/p",
		"/memento/diff?url=http://h/p&from=1996",
	} {
		resp, err := noFollow().Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	out := readAll(t, resp)
	for _, want := range []string{
		`http_requests_total{endpoint="/timegate",code="3xx"} `,
		`http_requests_total{endpoint="/timemap/link",code="2xx"} `,
		`http_requests_total{endpoint="/memento/",code="2xx"} `,
		`http_requests_total{endpoint="/memento/diff",code="2xx"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Cardinality discipline: no endpoint label carries a raw target URL
	// or timestamp.
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, `endpoint="`) {
			continue
		}
		if strings.Contains(line, "http://h/p") || strings.Contains(line, "19960") {
			t.Errorf("unbounded endpoint label: %s", line)
		}
	}
}

// TestTimeGatePathFormAgainstServer drives the path-embedded target
// form end to end: the ServeMux 301 path-clean, the TimeGate 302, and
// the memento response.
func TestTimeGatePathFormAgainstServer(t *testing.T) {
	r, ts := serverRig(t)
	seedRevisions(t, r, "h", "/p", []time.Time{june(1, 12), june(2, 12)}, []string{"<html>v1</html>\n", "<html>v2</html>\n"})

	req, _ := http.NewRequest("GET", ts.URL+"/timegate/http://h/p", nil)
	req.Header.Set("Accept-Datetime", httpdate.Format(june(1, 12)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "v1") {
		t.Errorf("negotiated body is not revision 1:\n%s", body)
	}
}

func TestDebugCorpusDatetimes(t *testing.T) {
	r, ts := serverRig(t)
	seedRevisions(t, r, "h", "/p", []time.Time{june(1, 12), june(3, 12)}, []string{"<html>v1</html>\n", "<html>v2</html>\n"})

	code, body := get(t, ts.URL+"/debug/corpus")
	if code != 200 {
		t.Fatalf("corpus status = %d", code)
	}
	for _, want := range []string{
		`"first":"1996-06-01T12:00:00Z"`,
		`"last":"1996-06-03T12:00:00Z"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("corpus missing %s:\n%s", want, body)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
