package snapshot

// Chaos tests for the self-healing replicated store: replicas that die
// and come back mid-traffic, silent bit rot across many archives, and
// the interaction of health tracking, scrubbing, and failover under
// concurrency (run in CI with -race).

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"aide/internal/breaker"
	"aide/internal/faultfs"
	"aide/internal/obs"
	"aide/internal/webclient"
)

// checkGoroutineLeaks fails the test if it leaves goroutines behind
// (allowing scheduler noise and a settling window).
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before+2 || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if after > before+2 {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, buf[:runtime.Stack(buf, true)])
		}
	})
}

// flakyReplica fronts one replica server with a kill switch: while
// down, every request gets a 500 without reaching the facility — the
// observable behaviour of a crashed or partitioned replica, on a
// stable address it can come back to.
type flakyReplica struct {
	h        http.Handler
	down     atomic.Bool
	downHits atomic.Int64
}

func (fr *flakyReplica) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if fr.down.Load() {
		fr.downHits.Add(1)
		http.Error(w, "replica down", http.StatusInternalServerError)
		return
	}
	fr.h.ServeHTTP(w, r)
}

// chaosCluster is a sharded leader replicating to n replicas, each
// behind a flakyReplica switch.
type chaosCluster struct {
	leader   *rig
	reg      *obs.Registry
	replicas []*Facility
	flaky    []*flakyReplica
	repl     *Replicator
}

func newChaosCluster(t *testing.T, shards, n int) *chaosCluster {
	t.Helper()
	c := &chaosCluster{leader: shardedRig(t, shards), reg: obs.NewRegistry()}
	c.leader.fac.Metrics = c.reg
	var addrs []string
	for i := 0; i < n; i++ {
		fac, err := NewSharded(t.TempDir(), shards, nil, c.leader.clock)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(fac)
		srv.KeepaliveInterval = 0
		fr := &flakyReplica{h: srv.Handler()}
		ts := httptest.NewServer(fr)
		t.Cleanup(ts.Close)
		c.replicas = append(c.replicas, fac)
		c.flaky = append(c.flaky, fr)
		addrs = append(addrs, ts.URL)
	}
	c.repl = NewReplicator(c.leader.fac, webclient.New(&webclient.HTTPTransport{}), addrs, 42)
	c.repl.HealthConfig = breaker.Config{FailureThreshold: 2, Cooldown: time.Minute}
	return c
}

// health returns the current health word for replica i.
func (c *chaosCluster) health(i int) string {
	for _, st := range c.repl.Status() {
		if st.Replica == c.repl.Replicas[i] {
			return st.Health
		}
	}
	return "?"
}

// assertReplicaConverged fails unless replica i matches the leader on
// every shard.
func (c *chaosCluster) assertReplicaConverged(t *testing.T, i int) {
	t.Helper()
	for shard := 0; shard < c.leader.fac.Shards(); shard++ {
		lm, err := c.leader.fac.ShardManifest(shard)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := c.replicas[i].ShardManifest(shard)
		if err != nil {
			t.Fatal(err)
		}
		if lm.Hash() != rm.Hash() {
			t.Fatalf("replica %d shard %d diverged", i, shard)
		}
	}
}

func TestChaosReplicaFlapConvergence(t *testing.T) {
	checkGoroutineLeaks(t)
	c := newChaosCluster(t, 4, 2)
	ctx := context.Background()
	checkinN(t, c.leader.fac, 12, "flap")
	if _, _, err := c.repl.SyncAll(ctx); err != nil {
		t.Fatal(err)
	}
	c.assertReplicaConverged(t, 0)
	c.assertReplicaConverged(t, 1)

	// Replica 1 dies. Each sync cycle fails its first shard push and
	// counts one strike; at FailureThreshold the breaker marks it down.
	// Replica 0 keeps receiving deltas throughout.
	c.flaky[1].down.Store(true)
	checkinN(t, c.leader.fac, 4, "flap-down")
	for i := 0; i < 2; i++ {
		if _, _, err := c.repl.SyncAll(ctx); err == nil {
			t.Fatal("sync against a dead replica reported no error")
		}
	}
	if h := c.health(1); h != "down" {
		t.Fatalf("replica 1 health = %q, want down", h)
	}
	if h := c.health(0); h != "healthy" {
		t.Fatalf("replica 0 health = %q, want healthy", h)
	}
	c.assertReplicaConverged(t, 0)

	// While down and inside the cooldown, a cycle costs zero requests
	// to the dead replica — not 4 shards of manifest+POST — and the
	// healthy replica still syncs (the skip itself is not an error).
	c.flaky[1].downHits.Store(0)
	checkinN(t, c.leader.fac, 4, "flap-skip")
	if _, _, err := c.repl.SyncAll(ctx); err != nil {
		t.Fatalf("sync with one skipped replica: %v", err)
	}
	if hits := c.flaky[1].downHits.Load(); hits != 0 {
		t.Fatalf("down replica saw %d requests during cooldown, want 0", hits)
	}
	if got := c.reg.Counter("replica.health.skipped").Value(); got == 0 {
		t.Fatal("no cycles were skipped for the down replica")
	}
	c.assertReplicaConverged(t, 0)

	// Past the cooldown the replica is probed — one request, still down.
	c.leader.clock.Advance(2 * time.Minute)
	if _, _, err := c.repl.SyncAll(ctx); err == nil {
		t.Fatal("want an error from the failed probe")
	}
	if hits := c.flaky[1].downHits.Load(); hits != 1 {
		t.Fatalf("down replica saw %d requests at probe time, want exactly 1", hits)
	}

	// The replica comes back: the probe succeeds, the full sync resumes,
	// and the replica catches up on everything it missed — no manual
	// repair, no stall.
	c.flaky[1].down.Store(false)
	c.leader.clock.Advance(2 * time.Minute)
	if _, _, err := c.repl.SyncAll(ctx); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
	if h := c.health(1); h != "healthy" {
		t.Fatalf("recovered replica health = %q", h)
	}
	c.assertReplicaConverged(t, 0)
	c.assertReplicaConverged(t, 1)
	if got := c.reg.Counter("replica.health.probes").Value(); got == 0 {
		t.Fatal("recovery happened without a probe")
	}
}

// TestChaosSelfHealingSoak is the acceptance scenario: kill a replica,
// flip bits across the leader's archives, and require that every read
// still answers, the scrubber repairs all injected damage from the
// surviving replica, and the dead replica costs one probe per cycle.
func TestChaosSelfHealingSoak(t *testing.T) {
	checkGoroutineLeaks(t)
	c := newChaosCluster(t, 4, 2)
	ctx := context.Background()
	urls := checkinN(t, c.leader.fac, 24, "soak")
	if _, _, err := c.repl.SyncAll(ctx); err != nil {
		t.Fatal(err)
	}
	c.leader.fac.Failover = c.repl

	// Kill replica 1 and trip its breaker.
	c.flaky[1].down.Store(true)
	c.repl.SyncAll(ctx)
	c.repl.SyncAll(ctx)
	if h := c.health(1); h != "down" {
		t.Fatalf("replica 1 health = %q", h)
	}

	// Silent bit rot across a quarter of the archives (size and mtime
	// preserved), plus one outright lost file.
	damaged := 0
	for i, u := range urls {
		if i%4 != 0 {
			continue
		}
		if err := faultfs.FlipBit(c.leader.fac.Store().ArchivePath(u), int64(97+i)); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	lostName := filepath.Base(c.leader.fac.Store().ArchivePath(urls[1]))
	if err := c.leader.fac.Store().Remove(KindArchive, lostName); err != nil {
		t.Fatal(err)
	}

	// One full scrub rotation heals everything, fetching only from the
	// healthy replica.
	s := &Scrubber{Facility: c.leader.fac}
	probesBefore := c.flaky[1].downHits.Load()
	var totals ScrubReport
	for i := 0; i < 4; i++ {
		rep, err := s.ScrubNext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		totals.add(rep)
	}
	if totals.Corrupt != damaged || totals.Repaired != damaged+1 || totals.Missing != 1 || totals.Unrepaired != 0 {
		t.Fatalf("soak scrub totals = %+v (want %d corrupt, %d repaired)", totals, damaged, damaged+1)
	}
	if got := c.reg.Counter("scrub.repaired").Value(); got != int64(damaged+1) {
		t.Fatalf("scrub.repaired = %d", got)
	}
	// The dead replica was never asked for repair bytes.
	if hits := c.flaky[1].downHits.Load(); hits != probesBefore {
		t.Fatalf("dead replica saw %d repair requests", hits-probesBefore)
	}

	// Every read answers with the original content.
	for i, u := range urls {
		text, err := c.leader.fac.Checkout(u, "")
		if err != nil {
			t.Fatalf("read %d after healing: %v", i, err)
		}
		if want := fmt.Sprintf("soak body %d\n", i); text != want {
			t.Fatalf("read %d = %q, want %q", i, text, want)
		}
	}

	// The replica returns; one cycle after the cooldown it has
	// converged on the healed state.
	c.flaky[1].down.Store(false)
	c.leader.clock.Advance(2 * time.Minute)
	if _, _, err := c.repl.SyncAll(ctx); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
	c.assertReplicaConverged(t, 0)
	c.assertReplicaConverged(t, 1)
}

// TestChaosRotNeverPropagatesToReplicas covers the dangerous ordering
// the soak test cannot: bits rot on the leader while the replica is
// healthy and syncing every cycle. The manifest hashes content, so the
// rotted file diffs as "changed" — a naive push would overwrite the
// replica's good copy (the only repair source) within one sync cycle,
// and the scrubber's three-way judgment would then see disk == replica
// and adopt the corruption. The export guard must withhold the suspect
// file instead, so the scrubber can still repair from the replica.
func TestChaosRotNeverPropagatesToReplicas(t *testing.T) {
	checkGoroutineLeaks(t)
	c := newChaosCluster(t, 4, 1)
	ctx := context.Background()
	urls := checkinN(t, c.leader.fac, 8, "rot")
	if _, _, err := c.repl.SyncAll(ctx); err != nil {
		t.Fatal(err)
	}
	c.assertReplicaConverged(t, 0)
	c.leader.fac.Failover = c.repl

	// Silent rot on the leader, then several sync cycles before any
	// scrub runs — the window where corruption would spread.
	victim := urls[3]
	if err := faultfs.FlipBit(c.leader.fac.Store().ArchivePath(victim), 90); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.repl.SyncAll(ctx); err != nil {
			t.Fatalf("sync %d with a suspect file: %v", i, err)
		}
	}
	if got := c.reg.Counter("replica.push.suspect").Value(); got == 0 {
		t.Fatal("rotted file was never flagged suspect during sync")
	}
	if text, err := c.replicas[0].Checkout(victim, ""); err != nil || text != "rot body 3\n" {
		t.Fatalf("replica copy was overwritten by rot: %q, %v", text, err)
	}

	// The scrubber repairs the leader from the intact replica copy, and
	// the next sync converges on the healed content.
	s := &Scrubber{Facility: c.leader.fac}
	var totals ScrubReport
	for i := 0; i < 4; i++ {
		rep, err := s.ScrubNext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		totals.add(rep)
	}
	if totals.Corrupt != 1 || totals.Repaired != 1 || totals.Adopted != 0 {
		t.Fatalf("scrub totals = %+v, want exactly the one rotted file repaired", totals)
	}
	if text, err := c.leader.fac.Checkout(victim, ""); err != nil || text != "rot body 3\n" {
		t.Fatalf("leader read after repair = %q, %v", text, err)
	}
	if _, _, err := c.repl.SyncAll(ctx); err != nil {
		t.Fatal(err)
	}
	c.assertReplicaConverged(t, 0)
}

// TestChaosImportSurvivesWriteFaults drives the replica import path
// through an ENOSPC/torn-write storm: imports fail loudly (never
// silently truncate), and once the storm clears the same stream
// applies cleanly.
func TestChaosImportSurvivesWriteFaults(t *testing.T) {
	p := newReplicaPair(t, 2)
	checkinN(t, p.leader.fac, 6, "enospc")
	p.replica.Faults = faultfs.New(faultfs.Profile{Seed: 11, WriteErrProb: 0.5, TornWriteProb: 0.3})
	var failures int
	for i := 0; i < 4; i++ {
		if _, _, err := p.repl.SyncAll(context.Background()); err != nil {
			failures++
		}
	}
	if failures == 0 && p.replica.Faults.Injected() > 0 {
		t.Fatal("write faults were injected but every sync reported success")
	}
	// Storm over: the next sync converges. Torn writes left partial
	// content behind, which the manifest diff detects and re-pushes.
	p.replica.Faults = nil
	if _, _, err := p.repl.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.assertConverged(t)
}
