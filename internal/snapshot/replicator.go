package snapshot

// Per-shard replica fan-out, the full form of §4.2's "replicate itself
// among multiple computers". The leader compares per-shard manifests
// (file name → head revision + content hash) with each replica, pushes
// only the divergent files as a delta stream, and propagates deletions.
// A seeded anti-entropy pass re-checks randomly chosen shards so silent
// divergence (a replica losing a file, a torn import) is repaired even
// when no new check-ins arrive.
//
// Wire protocol (all under the replica's snapshot server):
//
//	GET  /shard/manifest?shard=K  → ShardManifest JSON
//	GET  /shard/export?shard=K    → dump stream of one shard
//	POST /shard/import            → install a dump/delta stream
//
// Replicas run the ordinary snapshot server over their imported store,
// so every read endpoint (/co, /diff, /history ...) is served from the
// replica's copy; PickReplica spreads read traffic across them.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aide/internal/breaker"
	"aide/internal/obs"
	"aide/internal/simclock"
	"aide/internal/webclient"
)

// exportContentType tags dump/delta streams on the wire.
const exportContentType = "application/x-aide-export"

// FileState is one file's identity in a shard manifest.
type FileState struct {
	// Kind is the file's KindArchive/KindEntities/KindURL/KindUser tag.
	Kind string `json:"kind"`
	// Size is the file length in bytes.
	Size int64 `json:"size"`
	// Hash is the fnv64a of the file content, hex.
	Hash string `json:"hash"`
	// HeadRev is the archive's head revision (archives only).
	HeadRev string `json:"head_rev,omitempty"`
}

// ShardManifest summarises one shard's files for replica comparison.
type ShardManifest struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Files maps file base name → state.
	Files map[string]FileState `json:"files"`
}

// ShardManifest builds the manifest of one shard from disk.
func (f *Facility) ShardManifest(shard int) (ShardManifest, error) {
	files, err := f.store.ShardFiles(shard)
	if err != nil {
		return ShardManifest{}, err
	}
	m := ShardManifest{Shard: shard, Files: make(map[string]FileState, len(files))}
	for _, sf := range files {
		data, err := os.ReadFile(sf.Path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // deleted between listing and read
			}
			return ShardManifest{}, err
		}
		st := FileState{Kind: sf.Kind, Size: int64(len(data)), Hash: fmt.Sprintf("%016x", fnv64(string(data)))}
		if sf.Kind == KindArchive {
			if head, err := f.archiveAt(sf.Path).Head(); err == nil {
				st.HeadRev = head
			}
		}
		m.Files[sf.Name] = st
	}
	return m, nil
}

// Hash condenses the manifest to one comparable value: equal hashes mean
// the shards hold identical file sets with identical content.
func (m ShardManifest) Hash() string {
	names := make([]string, 0, len(m.Files))
	for n := range m.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		st := m.Files[n]
		fmt.Fprintf(&sb, "%s\x00%s\x00%s\n", n, st.Hash, st.HeadRev)
	}
	return fmt.Sprintf("%016x", fnv64(sb.String()))
}

// Diff compares a leader manifest against a replica's: push lists files
// the replica is missing or holds with different content, drop lists
// files the replica holds that the leader no longer does.
func (m ShardManifest) Diff(replica ShardManifest) (push, drop []string) {
	for name, st := range m.Files {
		if rst, ok := replica.Files[name]; !ok || rst.Hash != st.Hash {
			push = append(push, name)
		}
	}
	for name := range replica.Files {
		if _, ok := m.Files[name]; !ok {
			drop = append(drop, name)
		}
	}
	sort.Strings(push)
	sort.Strings(drop)
	return push, drop
}

// ReplicaStatus is one replica's replication health, the /debug/shards
// "replicas" row.
type ReplicaStatus struct {
	// Replica is the replica's base URL.
	Replica string `json:"replica"`
	// LastSync is when the last successful full sync finished.
	LastSync time.Time `json:"last_sync,omitempty"`
	// LastErr is the most recent sync error ("" when healthy).
	LastErr string `json:"last_err,omitempty"`
	// Pushed and Deleted count files transferred / removed over the
	// replica's lifetime with this leader.
	Pushed  int64 `json:"pushed"`
	Deleted int64 `json:"deleted"`
	// LagFiles is the divergence observed at the start of the last sync
	// (files pushed + dropped); 0 means the replica was already current.
	LagFiles int `json:"lag_files"`
	// Health is the replica's position in the health state machine:
	// "healthy" (syncs flow), "probation" (a probe is deciding whether
	// the replica is back), or "down" (skipped until the cooldown ends).
	Health string `json:"health"`
	// ConsecutiveFailures is the current run of failed wire calls; the
	// replica goes down when it reaches the failure threshold.
	ConsecutiveFailures int `json:"consecutive_failures"`
}

// Replicator pushes a leader facility's shards to a set of replicas.
//
// Each replica carries a health breaker (healthy → probation → down,
// the closed/half-open/open machine from internal/breaker): a run of
// failed wire calls marks the replica down, and a down replica costs
// the sync loop nothing until its cooldown ends — then exactly one
// probe request per cycle decides whether it is back, instead of
// N shards × (manifest + POST) hammering a dead host. PickReplica and
// anti-entropy route around non-healthy replicas.
type Replicator struct {
	// Facility is the leader's store.
	Facility *Facility
	// Client performs the HTTP transfers; required.
	Client *webclient.Client
	// Replicas are the replica servers' base URLs.
	Replicas []string
	// Metrics receives the replica.* counters; the facility's registry
	// when nil.
	Metrics *obs.Registry
	// HealthConfig tunes the per-replica health breakers; read when the
	// first breaker is created. Zero fields get defaults (threshold 3,
	// cooldown 1 minute, 1 probe).
	HealthConfig breaker.Config
	// RepairShards is how many shards each Run round's anti-entropy
	// pass re-checks (0 = 1 shard; negative = every shard).
	RepairShards int

	mu     sync.Mutex
	rng    *rand.Rand
	status map[string]*ReplicaStatus
	health *breaker.Set
	probe  *webclient.Client // retry-free client for down-replica probes
}

// NewReplicator wires a replicator for the given replicas. seed drives
// the anti-entropy shard choice, making repair order reproducible.
func NewReplicator(f *Facility, client *webclient.Client, replicas []string, seed int64) *Replicator {
	r := &Replicator{
		Facility: f,
		Client:   client,
		rng:      rand.New(rand.NewSource(seed)),
		status:   make(map[string]*ReplicaStatus),
	}
	if f != nil {
		r.Metrics = f.Metrics
	}
	for _, addr := range replicas {
		addr = strings.TrimSuffix(strings.TrimSpace(addr), "/")
		if addr == "" {
			continue
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		r.Replicas = append(r.Replicas, addr)
		r.status[addr] = &ReplicaStatus{Replica: addr}
	}
	if client != nil {
		// The probe client shares the transport but carries no retry
		// policy: a probe to a dead replica is one wire attempt, full
		// stop. (A fresh struct rather than a copy — Client embeds a
		// mutex-bearing retrier.)
		r.probe = &webclient.Client{
			Transport:    client.Transport,
			MaxRedirects: client.MaxRedirects,
			Timeout:      client.Timeout,
			Clock:        client.Clock,
			Metrics:      client.Metrics,
			Breakers:     client.Breakers,
			Stat:         client.Stat,
			ReadFile:     client.ReadFile,
		}
	}
	return r
}

// healthFor returns (creating on first use) addr's health breaker. The
// breaker set is created lazily so HealthConfig assigned after
// NewReplicator still applies.
func (r *Replicator) healthFor(addr string) *breaker.Breaker {
	r.mu.Lock()
	if r.health == nil {
		cfg := r.HealthConfig
		if cfg.FailureThreshold == 0 {
			cfg.FailureThreshold = 3
		}
		var clk simclock.Clock
		if r.Facility != nil {
			clk = r.Facility.clock
		}
		r.health = &breaker.Set{Config: cfg, Clock: clk, Metrics: r.metrics()}
	}
	h := r.health
	r.mu.Unlock()
	return h.For(addr)
}

// healthName maps a breaker state onto the replica health vocabulary.
func healthName(s breaker.State) string {
	switch s {
	case breaker.Closed:
		return "healthy"
	case breaker.HalfOpen:
		return "probation"
	default:
		return "down"
	}
}

// healthyReplicas lists the replicas currently safe to contact.
func (r *Replicator) healthyReplicas() []string {
	healthy := make([]string, 0, len(r.Replicas))
	for _, addr := range r.Replicas {
		if r.healthFor(addr).State() == breaker.Closed {
			healthy = append(healthy, addr)
		}
	}
	return healthy
}

// wire runs one wire call against addr under its health breaker,
// maintaining the Allow/Record pairing. Any response below 500 counts
// as the replica being alive; transport errors and 5xx count against
// it. A down replica fails fast without touching the network.
func (r *Replicator) wire(addr string, fn func() (webclient.PageInfo, error)) (webclient.PageInfo, error) {
	hb := r.healthFor(addr)
	if !hb.Allow() {
		r.metrics().Counter("replica.health.skipped").Inc()
		return webclient.PageInfo{}, fmt.Errorf("snapshot: replica %s is down", addr)
	}
	info, err := fn()
	hb.Record(err == nil && info.Status < 500)
	return info, err
}

// metrics returns the replicator's registry (facility's, else obs.Default).
func (r *Replicator) metrics() *obs.Registry {
	if r.Metrics != nil {
		return r.Metrics
	}
	if r.Facility != nil {
		return r.Facility.metrics()
	}
	return obs.Default
}

// Status reports per-replica replication health, sorted by address.
func (r *Replicator) Status() []ReplicaStatus {
	r.mu.Lock()
	out := make([]ReplicaStatus, 0, len(r.status))
	for _, st := range r.status {
		out = append(out, *st)
	}
	r.mu.Unlock()
	for i := range out {
		hb := r.healthFor(out[i].Replica)
		hs := hb.Snapshot()
		out[i].Health = healthName(hb.State())
		out[i].ConsecutiveFailures = hs.ConsecutiveFailures
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Replica < out[j].Replica })
	return out
}

// PickReplica chooses the replica to serve a read for a URL ("" when
// none are configured or none are healthy): reads fan out across the
// healthy replicas by URL hash, so the leader's disks see only
// check-ins and repair traffic, and a down replica never receives
// read traffic.
func (r *Replicator) PickReplica(pageURL string) string {
	healthy := r.healthyReplicas()
	if len(healthy) == 0 {
		return ""
	}
	return healthy[int(fnv64(pageURL)%uint64(len(healthy)))]
}

// SyncAll pushes every shard's delta to every replica (replicas in
// parallel, shards serially within each) and returns the totals. The
// first error per replica stops that replica's pass; the last error
// seen is returned after all replicas finish.
func (r *Replicator) SyncAll(ctx context.Context) (pushed, deleted int, err error) {
	ctx, span := obs.StartSpan(ctx, "replica.sync")
	defer func() {
		span.SetAttr("pushed", strconv.Itoa(pushed))
		span.SetAttr("deleted", strconv.Itoa(deleted))
		span.End()
	}()
	shards := r.Facility.Shards()
	m := r.metrics()
	var wg sync.WaitGroup
	pushes := make([]int, len(r.Replicas))
	deletes := make([]int, len(r.Replicas))
	errs := make([]error, len(r.Replicas))
	for ri, addr := range r.Replicas {
		wg.Add(1)
		go func(ri int, addr string) {
			defer wg.Done()
			hb := r.healthFor(addr)
			if hb.State() != breaker.Closed {
				if !hb.Ready() {
					// Down within its cooldown: free skip — no wire
					// traffic, no manifest builds, no disk reads. The
					// status row keeps the error that tripped it.
					m.Counter("replica.health.skipped").Inc()
					return
				}
				// Cooldown over: spend exactly one probe request (no
				// retries) to decide whether the replica is back. A
				// failed probe re-opens the breaker for a fresh
				// cooldown; a successful one closes it and the full
				// sync below runs.
				m.Counter("replica.health.probes").Inc()
				if perr := r.probeReplica(ctx, addr); perr != nil {
					errs[ri] = perr
					r.note(addr, 0, 0, 0, perr)
					return
				}
			}
			lag := 0
			for shard := 0; shard < shards; shard++ {
				p, d, lerr := r.syncShard(ctx, addr, shard)
				pushes[ri] += p
				deletes[ri] += d
				lag += p + d
				if lerr != nil {
					errs[ri] = lerr
					break
				}
			}
			r.note(addr, pushes[ri], deletes[ri], lag, errs[ri])
		}(ri, addr)
	}
	wg.Wait()
	r.updateHealthGauges()
	for ri := range r.Replicas {
		pushed += pushes[ri]
		deleted += deletes[ri]
		if errs[ri] != nil {
			err = errs[ri]
		}
	}
	return pushed, deleted, err
}

// probeReplica issues the single recovery probe for a replica past its
// cooldown: one manifest GET through the retry-free probe client,
// under the health breaker's half-open admission.
func (r *Replicator) probeReplica(ctx context.Context, addr string) error {
	c := r.probe
	if c == nil {
		c = r.Client
	}
	info, err := r.wire(addr, func() (webclient.PageInfo, error) {
		return c.Get(ctx, addr+"/shard/manifest?shard=0")
	})
	if err != nil {
		return fmt.Errorf("snapshot: probing replica %s: %w", addr, err)
	}
	if kind := webclient.Classify(info.Status, nil); kind != webclient.OK {
		return fmt.Errorf("snapshot: probing replica %s: HTTP %d", addr, info.Status)
	}
	return nil
}

// updateHealthGauges publishes the replica population per health state.
func (r *Replicator) updateHealthGauges() {
	m := r.metrics()
	var healthy, probation, down int64
	for _, addr := range r.Replicas {
		switch r.healthFor(addr).State() {
		case breaker.Closed:
			healthy++
		case breaker.HalfOpen:
			probation++
		default:
			down++
		}
	}
	m.Gauge("replica.health.healthy").Set(healthy)
	m.Gauge("replica.health.probation").Set(probation)
	m.Gauge("replica.health.down").Set(down)
}

// AntiEntropy repairs up to maxShards randomly chosen shards (seeded
// order; maxShards <= 0 checks every shard) on every replica. The
// manifest hash decides cheaply whether a shard needs work, so a
// converged system pays one manifest round trip per shard. repaired
// counts files pushed or dropped.
func (r *Replicator) AntiEntropy(ctx context.Context, maxShards int) (repaired int, err error) {
	ctx, span := obs.StartSpan(ctx, "replica.antientropy")
	defer func() {
		span.SetAttr("repaired", strconv.Itoa(repaired))
		span.End()
	}()
	shards := r.Facility.Shards()
	order := make([]int, shards)
	for i := range order {
		order[i] = i
	}
	r.mu.Lock()
	r.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	r.mu.Unlock()
	if maxShards > 0 && maxShards < len(order) {
		order = order[:maxShards]
	}
	m := r.metrics()
	m.Counter("replica.antientropy.passes").Inc()
	for _, shard := range order {
		local, lerr := r.Facility.ShardManifest(shard)
		if lerr != nil {
			return repaired, lerr
		}
		for _, addr := range r.Replicas {
			if r.healthFor(addr).State() != breaker.Closed {
				// Not healthy: SyncAll's probe decides when it is back;
				// anti-entropy never pays wire calls for it.
				continue
			}
			remote, rerr := r.fetchManifest(ctx, addr, shard)
			if rerr != nil {
				err = rerr
				r.note(addr, 0, 0, 0, rerr)
				continue
			}
			if remote.Hash() == local.Hash() {
				continue
			}
			p, d, serr := r.syncShard(ctx, addr, shard)
			repaired += p + d
			if serr != nil {
				err = serr
			}
			r.note(addr, p, d, p+d, serr)
		}
	}
	if repaired > 0 {
		m.Counter("replica.antientropy.repaired").Add(int64(repaired))
	}
	return repaired, err
}

// Run keeps the replicas converged until ctx ends: a full delta sync
// every interval, with an anti-entropy sample of RepairShards shards
// each round. Errors are recorded in Status and retried next round.
func (r *Replicator) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Minute
	}
	repair := r.RepairShards
	if repair == 0 {
		repair = 1
	}
	for {
		if _, _, err := r.SyncAll(ctx); err != nil {
			obs.Logger().Warn("replica sync", "err", err)
		}
		if _, err := r.AntiEntropy(ctx, repair); err != nil {
			obs.Logger().Warn("replica anti-entropy", "err", err)
		}
		if err := simclock.Sleep(ctx, r.Facility.clock, interval); err != nil {
			return
		}
	}
}

// syncShard pushes one shard's delta to one replica: manifest exchange,
// then a single POST carrying changed files plus delete entries.
func (r *Replicator) syncShard(ctx context.Context, addr string, shard int) (pushed, deleted int, err error) {
	ctx, span := obs.StartSpan(ctx, "replica.syncshard")
	span.SetAttr("shard", strconv.Itoa(shard))
	span.SetAttr("replica", addr)
	defer func() {
		span.SetAttr("pushed", strconv.Itoa(pushed))
		span.SetAttr("deleted", strconv.Itoa(deleted))
		if err != nil {
			span.SetAttr("err", err.Error())
		}
		span.End()
	}()
	m := r.metrics()
	local, err := r.Facility.ShardManifest(shard)
	if err != nil {
		return 0, 0, err
	}
	remote, err := r.fetchManifest(ctx, addr, shard)
	if err != nil {
		m.Counter("replica.sync.errors").Inc()
		return 0, 0, err
	}
	push, drop := local.Diff(remote)
	// Withhold drops for files the ledger still records as live: the
	// leader lost them (no deletion path ran, or it would have
	// tombstoned the entry), and the replica holds the repair source.
	kept := drop[:0]
	for _, n := range drop {
		if r.Facility.suspectMissing(remote.Files[n].Kind, n) {
			m.Counter("replica.push.suspect").Inc()
			continue
		}
		kept = append(kept, n)
	}
	drop = kept
	if len(push) == 0 && len(drop) == 0 {
		return 0, 0, nil
	}
	names := make(map[string]bool, len(push))
	for _, n := range push {
		names[n] = true
	}
	// Stream the delta straight from disk to the socket: each wire
	// attempt gets a fresh pipe whose write side runs the export, so a
	// multi-megabyte shard push never materializes in memory and
	// retries replay the body from the start. The transport closes the
	// pipe's read end on failure, which unblocks and ends the exporter.
	getBody := func() (io.Reader, error) {
		pr, pw := io.Pipe()
		go func() {
			var werr error
			if len(push) > 0 {
				werr = r.Facility.ExportShard(pw, shard, names)
			}
			if werr == nil {
				enc := json.NewEncoder(pw)
				for _, n := range drop {
					if werr = enc.Encode(dumpFile{Kind: remote.Files[n].Kind, Name: n, Delete: true}); werr != nil {
						break
					}
				}
			}
			pw.CloseWithError(werr)
		}()
		return pr, nil
	}
	info, err := r.wire(addr, func() (webclient.PageInfo, error) {
		return r.Client.PostReader(ctx, addr+"/shard/import", exportContentType, getBody)
	})
	if err != nil {
		m.Counter("replica.sync.errors").Inc()
		return 0, 0, fmt.Errorf("snapshot: pushing shard %d to %s: %w", shard, addr, err)
	}
	if kind := webclient.Classify(info.Status, nil); kind != webclient.OK {
		m.Counter("replica.sync.errors").Inc()
		return 0, 0, fmt.Errorf("snapshot: pushing shard %d to %s: HTTP %d", shard, addr, info.Status)
	}
	m.Counter("replica.push.files").Add(int64(len(push)))
	m.Counter("replica.push.deletes").Add(int64(len(drop)))
	return len(push), len(drop), nil
}

// fetchManifest retrieves a replica's manifest for one shard.
func (r *Replicator) fetchManifest(ctx context.Context, addr string, shard int) (ShardManifest, error) {
	info, err := r.wire(addr, func() (webclient.PageInfo, error) {
		return r.Client.Get(ctx, fmt.Sprintf("%s/shard/manifest?shard=%d", addr, shard))
	})
	if err != nil {
		return ShardManifest{}, fmt.Errorf("snapshot: manifest of shard %d from %s: %w", shard, addr, err)
	}
	if kind := webclient.Classify(info.Status, nil); kind != webclient.OK {
		return ShardManifest{}, fmt.Errorf("snapshot: manifest of shard %d from %s: HTTP %d", shard, addr, info.Status)
	}
	var m ShardManifest
	if err := json.Unmarshal([]byte(info.Body), &m); err != nil {
		return ShardManifest{}, fmt.Errorf("snapshot: corrupt manifest from %s: %v", addr, err)
	}
	if m.Files == nil {
		m.Files = map[string]FileState{}
	}
	return m, nil
}

// FetchFile retrieves one file's raw content from a healthy replica —
// the repair source for failover reads and the checksum scrubber. The
// starting replica is chosen by name hash (spreading repair load), and
// the remaining healthy replicas are tried in turn; a replica that
// answers but does not hold the file is an error for that replica, not
// a success.
func (r *Replicator) FetchFile(ctx context.Context, kind, name string, shard int) ([]byte, error) {
	healthy := r.healthyReplicas()
	if len(healthy) == 0 {
		return nil, fmt.Errorf("snapshot: no healthy replica to fetch %s from", name)
	}
	start := int(fnv64(name) % uint64(len(healthy)))
	var lastErr error
	for i := 0; i < len(healthy); i++ {
		addr := healthy[(start+i)%len(healthy)]
		data, err := r.fetchFileFrom(ctx, addr, kind, name, shard)
		if err == nil {
			r.metrics().Counter("replica.fetch.files").Inc()
			return data, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// fetchFileFrom pulls one named file out of a replica's shard export.
func (r *Replicator) fetchFileFrom(ctx context.Context, addr, kind, name string, shard int) ([]byte, error) {
	info, err := r.wire(addr, func() (webclient.PageInfo, error) {
		return r.Client.Get(ctx, fmt.Sprintf("%s/shard/export?shard=%d&name=%s", addr, shard, url.QueryEscape(name)))
	})
	if err != nil {
		return nil, fmt.Errorf("snapshot: fetching %s from %s: %w", name, addr, err)
	}
	if kindOf := webclient.Classify(info.Status, nil); kindOf != webclient.OK {
		return nil, fmt.Errorf("snapshot: fetching %s from %s: HTTP %d", name, addr, info.Status)
	}
	dec := json.NewDecoder(strings.NewReader(info.Body))
	for {
		var df dumpFile
		if derr := dec.Decode(&df); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("snapshot: corrupt export from %s: %v", addr, derr)
		}
		if df.Name == name && df.Kind == kind && !df.Delete {
			return []byte(df.Data), nil
		}
	}
	return nil, fmt.Errorf("snapshot: replica %s does not hold %s %s", addr, kind, name)
}

// note updates a replica's status row after a sync attempt.
func (r *Replicator) note(addr string, pushed, deleted, lag int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.status[addr]
	if st == nil {
		st = &ReplicaStatus{Replica: addr}
		r.status[addr] = st
	}
	st.Pushed += int64(pushed)
	st.Deleted += int64(deleted)
	st.LagFiles = lag
	if err != nil {
		st.LastErr = err.Error()
		return
	}
	st.LastErr = ""
	st.LastSync = r.Facility.clock.Now()
}
