package snapshot

// Failover reads: when a leader's own copy of an archive is missing or
// corrupt, a read (checkout, history, diff) does not have to fail —
// the replica fan-out means an intact copy usually exists one HTTP
// round trip away. Every archive read path funnels through
// readArchive, which detects rcs.ErrNoArchive/rcs.ErrCorrupt, pulls
// the file from a healthy replica via the facility's FileFetcher,
// repairs the local copy (atomic replace, damaged original
// quarantined), and retries the read once. The scrubber would find
// the same damage eventually; failover fixes it at the moment a user
// is waiting on it.
//
// Repairs are serialised per file (the same lock the write paths
// hold, so a repair never clobbers a concurrent check-in) and bounded
// globally (maxConcurrentRepairs) so a burst of reads against one
// damaged shard cannot stampede the replicas.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"aide/internal/rcs"
)

// maxConcurrentRepairs bounds how many failover repairs may run at
// once across the facility.
const maxConcurrentRepairs = 4

// repairSem returns the facility's repair semaphore, created lazily.
func (f *Facility) repairSem() chan struct{} {
	f.repairMu.Lock()
	defer f.repairMu.Unlock()
	if f.repairSlots == nil {
		f.repairSlots = make(chan struct{}, maxConcurrentRepairs)
	}
	return f.repairSlots
}

// readArchive runs op against a page's archive; on a missing or
// corrupt archive it repairs the file from a replica and retries op
// once. Reads that fail for any other reason (ErrNoRevision, say)
// pass through untouched, as does everything when no failover source
// is wired.
func (f *Facility) readArchive(pageURL string, op func(*rcs.Archive) error) error {
	err := op(f.archive(pageURL))
	if err == nil || f.Failover == nil {
		return err
	}
	if !errors.Is(err, rcs.ErrNoArchive) && !errors.Is(err, rcs.ErrCorrupt) {
		return err
	}
	name := filepath.Base(f.store.ArchivePath(pageURL))
	// A missing archive is only worth a replica round trip when the
	// ledger says the file once existed here; otherwise every history
	// request for a never-remembered page would poll the replicas.
	if errors.Is(err, rcs.ErrNoArchive) {
		shard, serr := f.store.ShardOfFile(KindArchive, name)
		if serr != nil {
			return err
		}
		if _, ok := f.ledger.get(shard, KindArchive, name); !ok {
			return err
		}
	}
	m := f.metrics()
	m.Counter("failover.reads").Inc()
	if rerr := f.repairFile(context.Background(), KindArchive, name); rerr != nil {
		m.Counter("failover.misses").Inc()
		return err // the original, more useful error
	}
	return op(f.archive(pageURL))
}

// repairFile replaces a local file with a healthy replica's copy. It
// holds the file's write lock (single-flight: concurrent readers of
// the same damaged file queue here and find it already fixed) and a
// global semaphore slot. The damaged original, if present, is
// quarantined rather than deleted.
func (f *Facility) repairFile(ctx context.Context, kind, name string) error {
	sem := f.repairSem()
	select {
	case sem <- struct{}{}:
		defer func() { <-sem }()
	case <-ctx.Done():
		return ctx.Err()
	}
	unlock, err := f.locks.Lock(f.scrubLockKey(kind, name))
	if err != nil {
		return err
	}
	defer unlock()
	path, err := f.store.Place(kind, name)
	if err != nil {
		return err
	}
	shard, err := f.store.ShardOfFile(kind, name)
	if err != nil {
		return err
	}
	// Someone may have repaired (or legitimately rewritten) the file
	// while we waited for the lock: if the disk matches the ledger
	// again, the read's retry will succeed without touching a replica.
	if entry, ok := f.ledger.get(shard, kind, name); ok {
		if data, rerr := os.ReadFile(path); rerr == nil && contentHash(data) == entry.Hash {
			return nil
		}
	}
	good, err := f.Failover.FetchFile(ctx, kind, name, shard)
	if err != nil {
		return fmt.Errorf("snapshot: failover fetch of %s: %w", name, err)
	}
	if _, serr := os.Stat(path); serr == nil {
		if qerr := f.quarantine(path); qerr != nil {
			return qerr
		}
	}
	if err := f.writeStored(path, good); err != nil {
		return err
	}
	f.recordChecksum(kind, name, good)
	if kind == KindArchive {
		// The replica's copy may carry revisions the damaged local one
		// rendered from; cached diffs are file-scoped rewrites we can't
		// map back to a URL here, so drop everything. Repairs are rare.
		f.invalidateDiffCacheAll()
	}
	f.metrics().Counter("failover.repaired").Inc()
	return nil
}
