package snapshot

// Checksum scrub: the durability half of the self-healing store. The
// shard manifests already hash file content for replication, but
// nothing re-checks files at rest — bit rot or a torn write that
// preserves size and mtime is served to users (or crashes the read
// path) until a replica comparison happens to cover that shard. This
// file adds:
//
//   - A checksum ledger: every write path records the full-content
//     fnv64 of the file it just wrote (check-in, user control file,
//     entity sidecar, import, repair). The ledger is per-shard,
//     append-only JSONL under root/scrub/, replayed at open and
//     compacted by each scrub pass — so recording a check-in costs one
//     appended line, not a rewrite.
//
//   - ScrubShard: re-reads one shard's files (through the facility's
//     fault injector, when installed) and compares against the ledger.
//     Files the ledger has never seen are adopted (pre-ledger
//     repositories get covered incrementally). A mismatch is confirmed
//     under the file's lock — the same lock every write path holds —
//     then repaired from a replica when one holds the bytes the ledger
//     recorded; the damaged original is quarantined, never deleted.
//     A mismatch that cannot be safely resolved (no replica, or the
//     replica disagrees with both the ledger and the disk) is left in
//     place and retried next pass.
//
//   - Scrubber: the background loop (snapshotd -scrub-interval),
//     shard-at-a-time and rate-limited so a scrub never competes with
//     serving traffic for the disks.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"aide/internal/fsatomic"
	"aide/internal/obs"
	"aide/internal/simclock"
)

// FileFetcher retrieves one repository file's content from elsewhere —
// the repair source for scrub and failover reads. The Replicator
// implements it by querying healthy replicas.
type FileFetcher interface {
	FetchFile(ctx context.Context, kind, name string, shard int) ([]byte, error)
}

// contentHash is the ledger/manifest checksum of raw file bytes.
func contentHash(data []byte) string {
	return fmt.Sprintf("%016x", fnv64(string(data)))
}

// --- checksum ledger ------------------------------------------------------------

// ledgerEntry is one recorded file state (or its tombstone) in the
// append-only ledger stream.
type ledgerEntry struct {
	// Kind and Name identify the file as the store places it.
	Kind string `json:"kind"`
	Name string `json:"name"`
	// Size and Hash are the content length and fnv64 recorded at the
	// last write.
	Size int64  `json:"size,omitempty"`
	Hash string `json:"hash,omitempty"`
	// Delete tombstones the entry (the file was removed).
	Delete bool `json:"delete,omitempty"`
}

// checksumLedger holds the recorded checksums, one append-only JSONL
// file per shard under dir. Shard maps load lazily and stay in memory;
// every mutation appends one line, and compact rewrites the file.
type checksumLedger struct {
	dir string

	mu     sync.Mutex
	shards map[int]map[string]ledgerEntry
}

func newChecksumLedger(dir string) *checksumLedger {
	return &checksumLedger{dir: dir, shards: make(map[int]map[string]ledgerEntry)}
}

func ledgerKey(kind, name string) string { return kind + "\x00" + name }

func (l *checksumLedger) path(shard int) string {
	return filepath.Join(l.dir, fmt.Sprintf("ledger-%03d.jsonl", shard))
}

// loadLocked replays a shard's ledger file into memory; l.mu held.
func (l *checksumLedger) loadLocked(shard int) map[string]ledgerEntry {
	if m, ok := l.shards[shard]; ok {
		return m
	}
	m := make(map[string]ledgerEntry)
	l.shards[shard] = m
	data, err := os.ReadFile(l.path(shard))
	if err != nil {
		return m // absent or unreadable: start empty, adoption refills
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e ledgerEntry
		if json.Unmarshal([]byte(line), &e) != nil {
			continue // torn tail of a crashed append: ignore
		}
		if e.Delete {
			delete(m, ledgerKey(e.Kind, e.Name))
		} else {
			m[ledgerKey(e.Kind, e.Name)] = e
		}
	}
	return m
}

// record stores a file's checksum and appends it to the shard's stream.
func (l *checksumLedger) record(shard int, e ledgerEntry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.loadLocked(shard)
	if e.Delete {
		delete(m, ledgerKey(e.Kind, e.Name))
	} else {
		m[ledgerKey(e.Kind, e.Name)] = e
	}
	return l.appendLocked(shard, e)
}

func (l *checksumLedger) appendLocked(shard int, e ledgerEntry) error {
	if err := os.MkdirAll(l.dir, 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path(shard), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		return err
	}
	return f.Close()
}

// get returns the recorded state of a file, if any.
func (l *checksumLedger) get(shard int, kind, name string) (ledgerEntry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.loadLocked(shard)[ledgerKey(kind, name)]
	return e, ok
}

// entries snapshots a shard's ledger map.
func (l *checksumLedger) entries(shard int) map[string]ledgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.loadLocked(shard)
	out := make(map[string]ledgerEntry, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// compact rewrites a shard's stream as one line per live entry,
// bounding replay cost regardless of how many appends accumulated.
func (l *checksumLedger) compact(shard int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.loadLocked(shard)
	var sb strings.Builder
	for _, e := range m {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	if err := os.MkdirAll(l.dir, 0o755); err != nil {
		return err
	}
	return fsatomic.WriteFile(l.path(shard), []byte(sb.String()), 0o644)
}

// --- facility record hooks ------------------------------------------------------

// recordChecksum notes data as the current content of a file, so the
// scrubber can later tell rot from truth. Callers hold the same lock
// the write path held. Ledger trouble is reported as a metric, not an
// error — a failed bookkeeping append must not fail a check-in.
func (f *Facility) recordChecksum(kind, name string, data []byte) {
	shard, err := f.store.ShardOfFile(kind, name)
	if err != nil {
		return
	}
	e := ledgerEntry{Kind: kind, Name: name, Size: int64(len(data)), Hash: contentHash(data)}
	if err := f.ledger.record(shard, e); err != nil {
		f.metrics().Counter("scrub.ledger.errors").Inc()
	}
}

// recordChecksumPath reads a just-written file back and records it
// (no-op when the file is unreadable — the next scrub pass adopts it).
func (f *Facility) recordChecksumPath(kind, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	f.recordChecksum(kind, filepath.Base(path), data)
}

// dropChecksum tombstones a removed file's ledger entry.
func (f *Facility) dropChecksum(kind, name string) {
	shard, err := f.store.ShardOfFile(kind, name)
	if err != nil {
		return
	}
	if err := f.ledger.record(shard, ledgerEntry{Kind: kind, Name: name, Delete: true}); err != nil {
		f.metrics().Counter("scrub.ledger.errors").Inc()
	}
}

// --- scrubbing ------------------------------------------------------------------

// ScrubReport sums one scrub pass's outcomes.
type ScrubReport struct {
	// Shard is the shard scrubbed.
	Shard int `json:"shard"`
	// Scanned counts files whose content was re-read and hashed.
	Scanned int `json:"scanned"`
	// Adopted counts files recorded for the first time (pre-ledger
	// repositories, or files written outside the facility).
	Adopted int `json:"adopted"`
	// Corrupt counts confirmed content mismatches against the ledger.
	Corrupt int `json:"corrupt"`
	// Repaired counts corrupt or missing files restored from a replica.
	Repaired int `json:"repaired"`
	// Quarantined counts damaged originals moved aside before repair.
	Quarantined int `json:"quarantined"`
	// Missing counts ledger entries whose file had vanished from disk.
	Missing int `json:"missing"`
	// Unrepaired counts damage left in place for the next pass (no
	// replica copy matching the ledger was available).
	Unrepaired int `json:"unrepaired"`
}

func (r *ScrubReport) add(o ScrubReport) {
	r.Scanned += o.Scanned
	r.Adopted += o.Adopted
	r.Corrupt += o.Corrupt
	r.Repaired += o.Repaired
	r.Quarantined += o.Quarantined
	r.Missing += o.Missing
	r.Unrepaired += o.Unrepaired
}

// scrubLockKey returns the lock that serialises a file's writes, so a
// scrub confirmation never races a legitimate rewrite: per-URL lock
// for repo files, the per-user lock for control files. Overflow-hashed
// names recover their URL from the ",url" sidecar; a file whose owner
// cannot be determined gets a private scrub lock (best effort).
func (f *Facility) scrubLockKey(kind, name string) string {
	base, ok := baseOf(kind, name)
	if !ok {
		return "scrub:" + name
	}
	if kind == KindUser {
		if u, err := url.QueryUnescape(base); err == nil {
			return "user:" + u
		}
		return "scrub:" + name
	}
	// Overflow-hashed repo names: the sidecar holds the real URL.
	if p, err := f.store.Place(KindURL, base+urlSuffix); err == nil {
		if data, err := os.ReadFile(p); err == nil {
			return f.store.LockKey(strings.TrimSpace(string(data)))
		}
	}
	if u, err := url.QueryUnescape(base); err == nil {
		return f.store.LockKey(u)
	}
	return "scrub:" + name
}

// quarantine moves a damaged file into root/quarantine, stamped so
// repeated damage to one name never collides. The bytes are kept for
// post-mortem, not served.
func (f *Facility) quarantine(path string) error {
	qdir := filepath.Join(f.store.Root(), "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	dst := filepath.Join(qdir, fmt.Sprintf("%s.%d", filepath.Base(path), f.clock.Now().UnixNano()))
	return os.Rename(path, dst)
}

// readStored reads a repository file through the fault injector.
func (f *Facility) readStored(path string) ([]byte, error) {
	return f.Faults.ReadFile(path)
}

// writeStored writes a repository file through the fault injector
// (atomic replace).
func (f *Facility) writeStored(path string, data []byte) error {
	return f.Faults.WriteFile(path, data, 0o644)
}

// ScrubShard re-reads every file in one shard, verifies it against the
// checksum ledger, and repairs what it can. ratePerSec > 0 paces the
// scan (files per second on the facility's clock) so a scrub shares
// the disks politely with serving traffic.
func (f *Facility) ScrubShard(ctx context.Context, shard int, ratePerSec int) (ScrubReport, error) {
	ctx, span := obs.StartSpan(ctx, "snapshot.scrub")
	span.SetAttr("shard", fmt.Sprintf("%d", shard))
	defer span.End()
	rep := ScrubReport{Shard: shard}
	m := f.metrics()
	files, err := f.store.ShardFiles(shard)
	if err != nil {
		return rep, err
	}
	seen := make(map[string]bool, len(files))
	for _, sf := range files {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if ratePerSec > 0 {
			if err := simclock.Sleep(ctx, f.clock, time.Second/time.Duration(ratePerSec)); err != nil {
				return rep, err
			}
		}
		seen[ledgerKey(sf.Kind, sf.Name)] = true
		f.scrubFile(ctx, shard, sf, &rep)
	}
	// Ledger entries whose file is gone: restore from a replica, or —
	// when the store has legitimately moved or dropped the file — let
	// the tombstone stand.
	for key, e := range f.ledger.entries(shard) {
		if seen[key] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		f.scrubMissing(ctx, shard, e, &rep)
	}
	if err := f.ledger.compact(shard); err != nil {
		m.Counter("scrub.ledger.errors").Inc()
	}
	m.Counter("scrub.passes").Inc()
	m.Counter("scrub.scanned").Add(int64(rep.Scanned))
	m.Counter("scrub.adopted").Add(int64(rep.Adopted))
	m.Counter("scrub.corrupt").Add(int64(rep.Corrupt))
	m.Counter("scrub.repaired").Add(int64(rep.Repaired))
	m.Counter("scrub.quarantined").Add(int64(rep.Quarantined))
	m.Counter("scrub.missing").Add(int64(rep.Missing))
	m.Counter("scrub.unrepaired").Add(int64(rep.Unrepaired))
	return rep, nil
}

// scrubFile verifies one present file against the ledger.
func (f *Facility) scrubFile(ctx context.Context, shard int, sf StoredFile, rep *ScrubReport) {
	data, err := f.readStored(sf.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return // removed since listing; the missing pass handles the ledger
		}
		// Unreadable media (EIO): treat like a content mismatch — the
		// bytes cannot be trusted — and go straight to confirm/repair.
		f.confirmAndRepair(ctx, shard, sf, rep)
		return
	}
	rep.Scanned++
	entry, ok := f.ledger.get(shard, sf.Kind, sf.Name)
	if !ok {
		// First sight of this file: adopt its current content as truth.
		f.recordChecksum(sf.Kind, sf.Name, data)
		rep.Adopted++
		return
	}
	if contentHash(data) == entry.Hash {
		return
	}
	f.confirmAndRepair(ctx, shard, sf, rep)
}

// confirmAndRepair re-checks a suspected-corrupt file under its write
// lock and repairs it from a replica when the replica's bytes match
// what the ledger recorded. The decision table (disk D, ledger L,
// replica R):
//
//	D == L           → transient (injected read fault, or a write that
//	                   landed between reads): nothing to do.
//	R == L, D != L   → the disk rotted: quarantine D, install R.
//	R == D, D != L   → the ledger is stale (a write outside the
//	                   facility): adopt D.
//	otherwise        → ambiguous (replica lagging a legitimate write,
//	                   or everything disagrees): leave D, retry next
//	                   pass once replication has converged.
func (f *Facility) confirmAndRepair(ctx context.Context, shard int, sf StoredFile, rep *ScrubReport) {
	unlock, err := f.locks.Lock(f.scrubLockKey(sf.Kind, sf.Name))
	if err != nil {
		rep.Unrepaired++
		return
	}
	defer unlock()
	entry, ok := f.ledger.get(shard, sf.Kind, sf.Name)
	if !ok {
		return // tombstoned while we waited for the lock
	}
	// Confirmation read outside the injector: an injected read fault
	// models rot on the wire between media and memory, which a re-read
	// does not reproduce; real on-disk damage still mismatches here.
	data, err := os.ReadFile(sf.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return
		}
		data = nil // unreadable: fall through to repair
	}
	if data != nil && contentHash(data) == entry.Hash {
		return
	}
	rep.Corrupt++
	if f.Failover == nil {
		rep.Unrepaired++
		return
	}
	good, err := f.Failover.FetchFile(ctx, sf.Kind, sf.Name, shard)
	if err != nil {
		rep.Unrepaired++
		return
	}
	switch contentHash(good) {
	case entry.Hash:
		// The replica holds exactly what we recorded: the local copy
		// rotted. Keep the damaged bytes for post-mortem, restore.
		if data != nil {
			if err := f.quarantine(sf.Path); err != nil {
				rep.Unrepaired++
				return
			}
			rep.Quarantined++
		}
		if err := f.writeStored(sf.Path, good); err != nil {
			rep.Unrepaired++
			return
		}
		f.recordChecksum(sf.Kind, sf.Name, good)
		if sf.Kind == KindArchive {
			f.invalidateDiffCacheAll() // rewritten archive: cached renderings are suspect
		}
		rep.Repaired++
	case contentHash(data):
		// Replica agrees with the disk against the ledger: the ledger
		// is stale, the file is fine. Adopt.
		f.recordChecksum(sf.Kind, sf.Name, data)
		rep.Adopted++
	default:
		rep.Unrepaired++
	}
}

// scrubMissing handles a ledger entry whose file is absent.
func (f *Facility) scrubMissing(ctx context.Context, shard int, e ledgerEntry, rep *ScrubReport) {
	path, err := f.store.Place(e.Kind, e.Name)
	if err != nil {
		f.dropChecksum(e.Kind, e.Name)
		return
	}
	if _, serr := os.Stat(path); serr == nil {
		// Present after all (created after the listing, or the entry
		// belongs to another shard after a rebalance): the next pass
		// covers it where it lives now.
		return
	}
	rep.Missing++
	if f.Failover != nil {
		if good, ferr := f.Failover.FetchFile(ctx, e.Kind, e.Name, shard); ferr == nil {
			unlock, lerr := f.locks.Lock(f.scrubLockKey(e.Kind, e.Name))
			if lerr == nil {
				if _, serr := os.Stat(path); os.IsNotExist(serr) {
					if werr := f.writeStored(path, good); werr == nil {
						f.recordChecksum(e.Kind, e.Name, good)
						if e.Kind == KindArchive {
							f.invalidateDiffCacheAll()
						}
						rep.Repaired++
						unlock()
						return
					}
				}
				unlock()
			}
		}
	}
	// No replica copy: the file is gone for good (or was legitimately
	// deleted without a tombstone). Stop reporting it every pass.
	f.dropChecksum(e.Kind, e.Name)
}

// --- background scrubber --------------------------------------------------------

// Scrubber drives periodic shard-at-a-time scrubs of a facility.
type Scrubber struct {
	// Facility is the store to scrub.
	Facility *Facility
	// Interval is the pause between shard scrubs (default 10 minutes).
	Interval time.Duration
	// RatePerSec paces each scan in files per second (0 = unpaced).
	RatePerSec int

	mu     sync.Mutex
	next   int
	passes int64
	totals ScrubReport
	last   ScrubReport
}

// ScrubStatus is the scrubber's /debug/shards row.
type ScrubStatus struct {
	// Passes counts completed shard scrubs.
	Passes int64 `json:"passes"`
	// Last is the most recent pass's report.
	Last ScrubReport `json:"last"`
	// Totals accumulates all passes.
	Totals ScrubReport `json:"totals"`
}

// Status reports the scrubber's lifetime numbers.
func (s *Scrubber) Status() ScrubStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ScrubStatus{Passes: s.passes, Last: s.last, Totals: s.totals}
}

// ScrubNext scrubs the next shard in rotation (exported so tests and
// operators can single-step the rotation).
func (s *Scrubber) ScrubNext(ctx context.Context) (ScrubReport, error) {
	s.mu.Lock()
	shard := s.next % s.Facility.Shards()
	s.next = shard + 1
	s.mu.Unlock()
	rep, err := s.Facility.ScrubShard(ctx, shard, s.RatePerSec)
	s.mu.Lock()
	s.passes++
	s.last = rep
	s.totals.add(rep)
	s.mu.Unlock()
	return rep, err
}

// Run scrubs shards in rotation until ctx ends, pausing Interval
// between shards.
func (s *Scrubber) Run(ctx context.Context) {
	interval := s.Interval
	if interval <= 0 {
		interval = 10 * time.Minute
	}
	for {
		if _, err := s.ScrubNext(ctx); err != nil && ctx.Err() == nil {
			obs.Logger().Warn("scrub", "err", err)
		}
		if err := simclock.Sleep(ctx, s.Facility.clock, interval); err != nil {
			return
		}
	}
}
