package snapshot

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"aide/internal/simclock"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// rig bundles a facility bound to a synthetic web.
type rig struct {
	web   *websim.Web
	clock *simclock.Sim
	fac   *Facility
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	fac, err := New(t.TempDir(), webclient.New(web), clock)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{web: web, clock: clock, fac: fac}
}

const userA = "douglis@research.att.com"
const userB = "tball@research.att.com"

func TestRememberAndCheckout(t *testing.T) {
	r := newRig(t)
	r.web.Site("h").Page("/p").Set("<html>v1</html>\n")
	res, err := r.fac.Remember(context.Background(), userA, "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rev != "1.1" || !res.Changed || !res.FirstTime {
		t.Fatalf("remember = %+v", res)
	}
	text, err := r.fac.Checkout("http://h/p", "1.1")
	if err != nil || text != "<html>v1</html>\n" {
		t.Fatalf("checkout = (%q,%v)", text, err)
	}
}

func TestRememberUnchangedNotSavedAgain(t *testing.T) {
	r := newRig(t)
	r.web.Site("h").Page("/p").Set("same\n")
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}
	res, err := r.fac.Remember(context.Background(), userA, "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed || res.Rev != "1.1" {
		t.Fatalf("second remember = %+v (want unchanged at 1.1)", res)
	}
}

func TestPerUserVersionSets(t *testing.T) {
	r := newRig(t)
	p := r.web.Site("h").Page("/p")
	p.Set("v1\n")
	// User A saves v1; the page changes; user B saves v2.
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}
	r.web.Advance(24 * time.Hour)
	p.Set("v2\n")
	res, err := r.fac.Remember(context.Background(), userB, "http://h/p")
	if err != nil || res.Rev != "1.2" {
		t.Fatalf("user B remember = %+v err=%v", res, err)
	}
	// Each user's history view marks their own versions.
	_, seenA, err := r.fac.History(userA, "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if !seenA["1.1"] || seenA["1.2"] {
		t.Errorf("user A seen = %v", seenA)
	}
	_, seenB, _ := r.fac.History(userB, "http://h/p")
	if seenB["1.1"] || !seenB["1.2"] {
		t.Errorf("user B seen = %v", seenB)
	}
}

func TestUserCheckinTimesTrackedWhenUnchanged(t *testing.T) {
	// §2.2: "we wish to track the times at which each user checked in a
	// page, even if the page hasn't changed between check-ins of that
	// page by different users."
	r := newRig(t)
	r.web.Site("h").Page("/p").Set("stable\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	r.fac.Remember(context.Background(), userB, "http://h/p") // no new revision, but B has now seen 1.1
	_, seenB, err := r.fac.History(userB, "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if !seenB["1.1"] {
		t.Errorf("user B's unchanged check-in not recorded: %v", seenB)
	}
}

func TestDiffSinceSaved(t *testing.T) {
	r := newRig(t)
	p := r.web.Site("h").Page("/p")
	p.Set("<P>Original sentence here today.</P>\n")
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}
	r.web.Advance(time.Hour)
	p.Set("<P>Original sentence here today. Brand new addition arrives.</P>\n")

	res, err := r.fac.DiffSinceSaved(context.Background(), userA, "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if res.OldRev != "1.1" || res.NewRev != "live" {
		t.Fatalf("revs = %+v", res)
	}
	if !strings.Contains(res.HTML, "<STRONG><I>Brand") {
		t.Errorf("diff missing emphasized addition:\n%s", res.HTML)
	}
	if !res.Stats.Changed() {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestDiffSinceSavedNeverSaved(t *testing.T) {
	r := newRig(t)
	r.web.Site("h").Page("/p").Set("x\n")
	if _, err := r.fac.DiffSinceSaved(context.Background(), userA, "http://h/p"); !errors.Is(err, ErrNeverSaved) {
		t.Fatalf("err = %v, want ErrNeverSaved", err)
	}
}

func TestDiffRevsCached(t *testing.T) {
	r := newRig(t)
	p := r.web.Site("h").Page("/p")
	p.Set("<P>version one content.</P>\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	r.web.Advance(time.Hour)
	p.Set("<P>version two content.</P>\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")

	d1, err := r.fac.DiffRevs("http://h/p", "1.1", "1.2")
	if err != nil || d1.Cached {
		t.Fatalf("first diff: %+v err=%v", d1, err)
	}
	d2, err := r.fac.DiffRevs("http://h/p", "1.1", "1.2")
	if err != nil || !d2.Cached {
		t.Fatalf("second diff not cached: %+v err=%v", d2, err)
	}
	if d1.HTML != d2.HTML {
		t.Error("cached diff differs from original")
	}
	if r.fac.DiffCacheHits() != 1 {
		t.Errorf("cache hits = %d", r.fac.DiffCacheHits())
	}
}

func TestRememberFetchErrors(t *testing.T) {
	r := newRig(t)
	s := r.web.Site("h")
	s.Page("/p").Set("x\n")
	s.SetDown(true)
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err == nil {
		t.Fatal("remember succeeded against down host")
	}
	s.SetDown(false)
	dead := r.web.Site("h").Page("/dead")
	dead.Set("x")
	dead.SetGone()
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/dead"); err == nil {
		t.Fatal("remember succeeded for 404 page")
	}
}

func TestCheckoutAtDate(t *testing.T) {
	r := newRig(t)
	p := r.web.Site("h").Page("/p")
	p.Set("v1\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	mid := r.clock.Now().Add(12 * time.Hour)
	r.web.Advance(24 * time.Hour)
	p.Set("v2\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")

	text, rev, err := r.fac.CheckoutAtDate("http://h/p", mid)
	if err != nil || rev != "1.1" || text != "v1\n" {
		t.Fatalf("at-date = (%q,%q,%v)", text, rev, err)
	}
}

func TestArchivedURLsAndStorage(t *testing.T) {
	r := newRig(t)
	r.web.Site("h").Page("/a").Set(strings.Repeat("aaaa\n", 100))
	r.web.Site("h").Page("/b").Set("b\n")
	r.fac.Remember(context.Background(), userA, "http://h/a")
	r.fac.Remember(context.Background(), userA, "http://h/b")

	urls, err := r.fac.ArchivedURLs()
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 || urls[0] != "http://h/a" || urls[1] != "http://h/b" {
		t.Fatalf("urls = %v", urls)
	}
	stats, err := r.fac.Storage()
	if err != nil {
		t.Fatal(err)
	}
	if stats.URLs != 2 || stats.TotalBytes <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// PerURL is sorted descending; /a is far larger.
	if stats.PerURL[0].URL != "http://h/a" {
		t.Errorf("per-url order = %+v", stats.PerURL)
	}
	if stats.MeanBytes() <= 0 {
		t.Error("mean bytes not positive")
	}
}

func TestUserURLs(t *testing.T) {
	r := newRig(t)
	r.web.Site("h").Page("/a").Set("x\n")
	r.web.Site("h").Page("/b").Set("y\n")
	r.fac.Remember(context.Background(), userA, "http://h/b")
	r.fac.Remember(context.Background(), userA, "http://h/a")
	urls := r.fac.UserURLs(userA)
	if len(urls) != 2 || urls[0] != "http://h/a" {
		t.Errorf("user urls = %v", urls)
	}
	if got := r.fac.UserURLs("stranger@nowhere"); len(got) != 0 {
		t.Errorf("stranger urls = %v", got)
	}
}

func TestSimultaneousRemembersSerialized(t *testing.T) {
	// §4.2: simultaneous users of the same page must not corrupt the
	// repository; the per-URL lock queues them.
	r := newRig(t)
	p := r.web.Site("h").Page("/p")
	p.Set("v1\n")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := userA
			if i%2 == 1 {
				user = userB
			}
			if _, err := r.fac.Remember(context.Background(), user, "http://h/p"); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	revs, _, err := r.fac.History(userA, "http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(revs) != 1 {
		t.Fatalf("identical simultaneous saves made %d revisions, want 1", len(revs))
	}
}

func TestURLsWithSpecialCharacters(t *testing.T) {
	r := newRig(t)
	weird := "http://h/cgi-bin/search?q=a+b&lang=en/ü"
	r.web.Site("h").Page("/cgi-bin/search?q=a+b&lang=en/ü").Set("result\n")
	if _, err := r.fac.Remember(context.Background(), userA, weird); err != nil {
		t.Fatal(err)
	}
	urls, _ := r.fac.ArchivedURLs()
	if len(urls) != 1 || urls[0] != weird {
		t.Errorf("round-tripped URL = %v", urls)
	}
	if text, err := r.fac.Checkout(weird, ""); err != nil || text != "result\n" {
		t.Errorf("checkout = (%q,%v)", text, err)
	}
}

func TestFacilityPrune(t *testing.T) {
	r := newRig(t)
	p := r.web.Site("h").Page("/p")
	for i := 0; i < 6; i++ {
		p.Set(strings.Repeat("x", i+1) + "\n")
		if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
			t.Fatal(err)
		}
		r.web.Advance(time.Hour)
	}
	q := r.web.Site("h").Page("/q")
	q.Set("only one version\n")
	r.fac.Remember(context.Background(), userA, "http://h/q")

	results, err := r.fac.Prune(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].URL != "http://h/p" || results[0].Dropped != 4 {
		t.Fatalf("prune results = %+v", results)
	}
	revs, _, err := r.fac.History(userA, "http://h/p")
	if err != nil || len(revs) != 2 {
		t.Fatalf("history after prune: %d revs, err %v", len(revs), err)
	}
}
