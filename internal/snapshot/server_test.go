package snapshot

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// serverRig wires a facility + HTTP server to the synthetic web.
func serverRig(t *testing.T) (*rig, *httptest.Server) {
	t.Helper()
	r := newRig(t)
	srv := NewServer(r.fac)
	srv.KeepaliveInterval = 0 // no trickle in fast tests
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return r, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexForm(t *testing.T) {
	_, ts := serverRig(t)
	code, body := get(t, ts.URL+"/")
	if code != 200 || !strings.Contains(body, "<FORM ACTION=\"/remember\"") {
		t.Errorf("index: code=%d body:\n%s", code, body)
	}
	code, _ = get(t, ts.URL+"/nonexistent")
	if code != 404 {
		t.Errorf("unknown path code = %d", code)
	}
}

func TestRememberDiffHistoryFlow(t *testing.T) {
	r, ts := serverRig(t)
	p := r.web.Site("h").Page("/p")
	p.Set("<P>Version one sentence stays put.</P>\n")
	q := "url=" + url.QueryEscape("http://h/p") + "&user=" + url.QueryEscape(userA)

	// Remember.
	code, body := get(t, ts.URL+"/remember?"+q)
	if code != 200 || !strings.Contains(body, "saved as revision 1.1") {
		t.Fatalf("remember: %d\n%s", code, body)
	}
	// Remember again, unchanged.
	_, body = get(t, ts.URL+"/remember?"+q)
	if !strings.Contains(body, "unchanged since revision 1.1") {
		t.Fatalf("second remember:\n%s", body)
	}

	// The page changes; Diff shows the live difference.
	r.web.Advance(time.Hour)
	p.Set("<P>Version one sentence stays put. Appended material shows up.</P>\n")
	code, body = get(t, ts.URL+"/diff?"+q)
	if code != 200 || !strings.Contains(body, "<STRONG><I>Appended") {
		t.Fatalf("diff: %d\n%s", code, body)
	}

	// Remember the new version, then History lists both with links.
	get(t, ts.URL+"/remember?"+q)
	code, body = get(t, ts.URL+"/history?"+q)
	if code != 200 {
		t.Fatalf("history code = %d", code)
	}
	for _, want := range []string{"1.1", "1.2", "(seen by you)", "/co?url=", "diff to 1.1"} {
		if !strings.Contains(body, want) {
			t.Errorf("history missing %q:\n%s", want, body)
		}
	}
}

func TestDiffWithoutSaveReturns404(t *testing.T) {
	r, ts := serverRig(t)
	r.web.Site("h").Page("/p").Set("x\n")
	code, _ := get(t, ts.URL+"/diff?url="+url.QueryEscape("http://h/p")+"&user=u")
	if code != 404 {
		t.Errorf("diff without save: code = %d, want 404", code)
	}
}

func TestMissingParams(t *testing.T) {
	_, ts := serverRig(t)
	for _, path := range []string{"/remember", "/diff", "/history", "/co", "/rlog"} {
		code, _ := get(t, ts.URL+path)
		if code != 400 {
			t.Errorf("%s without url: code = %d, want 400", path, code)
		}
	}
	code, _ := get(t, ts.URL+"/rcsdiff?url=x") // missing r1/r2
	if code != 400 {
		t.Errorf("rcsdiff missing revs: code = %d", code)
	}
}

func TestCheckoutWithBaseInjection(t *testing.T) {
	r, ts := serverRig(t)
	r.web.Site("h").Page("/dir/p").Set("<HTML><HEAD><TITLE>T</TITLE></HEAD><BODY><A HREF=\"rel.html\">rel</A></BODY></HTML>\n")
	r.fac.Remember(context.Background(), userA, "http://h/dir/p")
	code, body := get(t, ts.URL+"/co?url="+url.QueryEscape("http://h/dir/p")+"&rev=1.1")
	if code != 200 {
		t.Fatalf("co code = %d", code)
	}
	if !strings.Contains(body, `<HEAD><BASE HREF="http://h/dir/p">`) {
		t.Errorf("BASE not injected after HEAD:\n%s", body)
	}
}

func TestCheckoutAtDateParam(t *testing.T) {
	r, ts := serverRig(t)
	p := r.web.Site("h").Page("/p")
	p.Set("v1\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	mid := r.clock.Now().Add(time.Hour)
	r.web.Advance(2 * time.Hour)
	p.Set("v2\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")

	code, body := get(t, ts.URL+"/co?url="+url.QueryEscape("http://h/p")+
		"&date="+url.QueryEscape(mid.Format(time.RFC3339)))
	if code != 200 || !strings.Contains(body, "v1") {
		t.Errorf("date checkout: %d %q", code, body)
	}
	code, _ = get(t, ts.URL+"/co?url="+url.QueryEscape("http://h/p")+"&date=NOTADATE")
	if code != 400 {
		t.Errorf("bad date code = %d", code)
	}
}

func TestRlogAndRcsdiff(t *testing.T) {
	r, ts := serverRig(t)
	p := r.web.Site("h").Page("/p")
	p.Set("<P>alpha beta gamma delta.</P>\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	r.web.Advance(time.Hour)
	p.Set("<P>alpha beta gamma epsilon.</P>\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")

	code, body := get(t, ts.URL+"/rlog?url="+url.QueryEscape("http://h/p"))
	if code != 200 || !strings.Contains(body, "revision 1.2") || !strings.Contains(body, "revision 1.1") {
		t.Errorf("rlog: %d\n%s", code, body)
	}

	// HtmlDiff mode (default).
	code, body = get(t, ts.URL+"/rcsdiff?url="+url.QueryEscape("http://h/p")+"&r1=1.1&r2=1.2")
	if code != 200 || !strings.Contains(body, "<STRIKE>delta.</STRIKE>") {
		t.Errorf("rcsdiff html: %d\n%s", code, body)
	}
	// Text mode.
	code, body = get(t, ts.URL+"/rcsdiff?url="+url.QueryEscape("http://h/p")+"&r1=1.1&r2=1.2&mode=text")
	if code != 200 || !strings.Contains(body, "-&lt;P&gt;alpha beta gamma delta.&lt;/P&gt;") {
		t.Errorf("rcsdiff text: %d\n%s", code, body)
	}
}

func TestKeepaliveTrickle(t *testing.T) {
	// A slow retrieval must produce ignorable bytes before the answer.
	r := newRig(t)
	srv := NewServer(r.fac)
	srv.KeepaliveInterval = 10 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := r.web.Site("h").Page("/p")
	p.SetDynamic(func(time.Time, int) string {
		time.Sleep(60 * time.Millisecond) // a slow origin
		return "<P>slow content.</P>\n"
	})
	code, body := get(t, ts.URL+"/remember?url="+url.QueryEscape("http://h/p")+"&user=u")
	if code != 200 {
		t.Fatalf("code = %d", code)
	}
	if !strings.HasPrefix(body, " ") {
		t.Errorf("no keepalive spaces before output: %q", body[:min(40, len(body))])
	}
	if !strings.Contains(body, "saved as revision 1.1") {
		t.Errorf("result missing after trickle:\n%s", body)
	}
}

func TestKeepaliveErrorInBand(t *testing.T) {
	r := newRig(t)
	srv := NewServer(r.fac)
	srv.KeepaliveInterval = 5 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	r.web.Site("h").SetDown(true)
	code, body := get(t, ts.URL+"/remember?url="+url.QueryEscape("http://h/x")+"&user=u")
	// Headers were already streaming, so the error arrives in-band.
	if code != 200 || !strings.Contains(body, "Error:") {
		t.Errorf("in-band error missing: %d\n%s", code, body)
	}
}

func TestInjectBase(t *testing.T) {
	cases := []struct {
		doc, want string
	}{
		{"<HTML><HEAD><TITLE>x</TITLE></HEAD></HTML>", "<HEAD><BASE HREF=\"http://u/\"><TITLE>"},
		{"<p>no head</p>", "<BASE HREF=\"http://u/\"><p>no head</p>"},
		{"<head><base href=\"http://already/\"></head>", "http://already/"},
	}
	for _, c := range cases {
		got := InjectBase(c.doc, "http://u/")
		if !strings.Contains(got, c.want) {
			t.Errorf("InjectBase(%q) = %q, want contains %q", c.doc, got, c.want)
		}
	}
	// Existing BASE is not duplicated.
	got := InjectBase("<head><base href=\"http://already/\"></head>", "http://u/")
	if strings.Contains(got, "http://u/") {
		t.Errorf("duplicate BASE injected: %q", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
