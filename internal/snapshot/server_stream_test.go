package snapshot

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// Streaming-path tests: the read handlers write through a
// flushwriter.Writer, so responses must flush progressively, stay flat
// in allocations on cache hits, stop early on client aborts, and still
// land correctly in the RED middleware's status and latency series.

// abortWriter is a ResponseWriter that accepts failAt bytes and then
// fails every write — a client that hung up mid-response.
type abortWriter struct {
	hdr     http.Header
	status  int
	n       int
	failAt  int
	flushes int
}

func newAbortWriter(failAt int) *abortWriter {
	return &abortWriter{hdr: http.Header{}, failAt: failAt}
}

func (a *abortWriter) Header() http.Header { return a.hdr }
func (a *abortWriter) WriteHeader(c int)   { a.status = c }
func (a *abortWriter) Flush()              { a.flushes++ }
func (a *abortWriter) Write(p []byte) (int, error) {
	if a.failAt > 0 && a.n+len(p) > a.failAt {
		return 0, errors.New("connection reset by peer")
	}
	a.n += len(p)
	return len(p), nil
}

// streamRig seeds a page with enough history that /history crosses the
// flush threshold several times.
func streamRig(t *testing.T, revs int) (*rig, *Server, string) {
	t.Helper()
	r := newRig(t)
	p := r.web.Site("h").Page("/p")
	for i := 0; i < revs; i++ {
		p.Set(fmt.Sprintf("<P>Revision %d body %s.</P>\n", i, strings.Repeat("pad ", 200)))
		if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
			t.Fatal(err)
		}
		r.web.Advance(time.Hour)
	}
	srv := NewServer(r.fac)
	srv.KeepaliveInterval = 0
	return r, srv, "http://h/p"
}

// TestStreamedResponseFlushesAndRecordsRED drives /history through the
// full middleware stack with a flush-counting writer: the response must
// reach the client in more than one flush, and the RED series must
// record the 2xx and the latency sample exactly as for a buffered
// response.
func TestStreamedResponseFlushesAndRecordsRED(t *testing.T) {
	r, srv, pageURL := streamRig(t, 40)
	h := srv.Handler()
	reg := r.fac.metrics()
	before := reg.CounterVec("http.requests", "endpoint", "code").With("/history", "2xx").Value()

	w := newAbortWriter(0) // never fails; counts flushes
	req := httptest.NewRequest("GET", "/history?url="+url.QueryEscape(pageURL)+"&user="+url.QueryEscape(userA), nil)
	h.ServeHTTP(w, req)

	if w.status != 0 && w.status != 200 {
		t.Fatalf("status = %d", w.status)
	}
	if w.n == 0 {
		t.Fatal("no body written")
	}
	if w.flushes == 0 {
		t.Errorf("long history (%d bytes) produced no mid-stream flush", w.n)
	}
	got := reg.CounterVec("http.requests", "endpoint", "code").With("/history", "2xx").Value()
	if got != before+1 {
		t.Errorf("http.requests{/history,2xx} = %d, want %d", got, before+1)
	}
	hs, ok := reg.Snapshot().Histograms[`http.request.duration{endpoint="/history"}`]
	if !ok || hs.Count == 0 {
		t.Errorf("latency histogram for /history missing (ok=%v, %+v)", ok, hs)
	}
}

// TestClientAbortStopsStreamAndKeepsREDCorrect aborts the connection
// partway through a streamed response: the handler must stop writing
// (sticky error, no panic), and the middleware still accounts the
// exchange — the status was committed before the abort, so it records
// as a 2xx with a latency sample, distinguishable from a complete
// response only by its byte count.
func TestClientAbortStopsStreamAndKeepsREDCorrect(t *testing.T) {
	r, srv, pageURL := streamRig(t, 40)
	h := srv.Handler()
	reg := r.fac.metrics()

	// A full read first, to learn the complete size.
	full := newAbortWriter(0)
	req := httptest.NewRequest("GET", "/history?url="+url.QueryEscape(pageURL)+"&user="+url.QueryEscape(userA), nil)
	h.ServeHTTP(full, req)
	if full.n < 4096 {
		t.Fatalf("test page too small to abort meaningfully: %d bytes", full.n)
	}

	before := reg.CounterVec("http.requests", "endpoint", "code").With("/history", "2xx").Value()
	w := newAbortWriter(full.n / 4)
	h.ServeHTTP(w, httptest.NewRequest("GET", req.URL.String(), nil))

	if w.n > full.n/4 {
		t.Errorf("handler kept writing after the abort: %d of %d bytes", w.n, full.n)
	}
	got := reg.CounterVec("http.requests", "endpoint", "code").With("/history", "2xx").Value()
	if got != before+1 {
		t.Errorf("aborted request not recorded: %d, want %d", got, before+1)
	}
}

// TestErrorBeforeStreamingRecordsStatus: when the preparation half fails
// (nothing archived), the streaming handlers must surface the HTTP error
// before any body bytes, and RED must classify it 4xx.
func TestErrorBeforeStreamingRecordsStatus(t *testing.T) {
	r := newRig(t)
	srv := NewServer(r.fac)
	srv.KeepaliveInterval = 0
	h := srv.Handler()
	reg := r.fac.metrics()

	for _, path := range []string{
		"/history?url=http%3A%2F%2Fh%2Fnothing",
		"/co?url=http%3A%2F%2Fh%2Fnothing",
		"/diff?url=http%3A%2F%2Fh%2Fnothing&r1=1.1&r2=1.2",
	} {
		w := newAbortWriter(0)
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.status < 400 || w.status >= 500 {
			t.Errorf("%s: status = %d, want 4xx", path, w.status)
		}
	}
	if v := reg.CounterVec("http.requests", "endpoint", "code").With("/history", "4xx").Value(); v == 0 {
		t.Error("4xx not recorded for /history")
	}
}

// TestDebugCorpus checks the load generator's discovery endpoint: every
// archived URL with its revisions oldest-first, and the limit parameter.
func TestDebugCorpus(t *testing.T) {
	r, srv, pageURL := streamRig(t, 3)
	q := r.web.Site("h").Page("/q")
	q.Set("<P>Other page.</P>\n")
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/q"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/corpus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("corpus: %d\n%s", resp.StatusCode, body)
	}
	s := string(body)
	for _, want := range []string{pageURL, "http://h/q", `"1.1"`, `"1.3"`} {
		if !strings.Contains(s, want) {
			t.Errorf("corpus missing %q:\n%s", want, s)
		}
	}
	// Revisions are listed oldest first — requestURL's span pair depends
	// on that ordering.
	if i, j := strings.Index(s, `"1.1"`), strings.Index(s, `"1.3"`); i > j {
		t.Errorf("revisions not oldest-first:\n%s", s)
	}

	resp2, err := http.Get(ts.URL + "/debug/corpus?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if c := strings.Count(string(body2), `"url"`); c != 1 {
		t.Errorf("limit=1 returned %d pages:\n%s", c, body2)
	}
}

// discardStringWriter gives io.WriteString a copy-free fast path, like
// the real ResponseWriter.
type discardStringWriter struct{ n int }

func (d *discardStringWriter) Write(p []byte) (int, error)       { d.n += len(p); return len(p), nil }
func (d *discardStringWriter) WriteString(s string) (int, error) { d.n += len(s); return len(s), nil }

// TestCachedDiffRenderFlatAllocations: streaming a cached rendering must
// cost a small constant number of allocations regardless of page size —
// the cached string is chunked straight to the writer, never
// re-materialised. A copy-per-chunk bug would show up as an allocation
// count scaling with the ~64 chunks of a 2 MB entry.
func TestCachedDiffRenderFlatAllocations(t *testing.T) {
	r := newRig(t)
	big := strings.Repeat("<P>cached diff body</P>\n", 1<<16) // ~1.5 MB
	key := dk("http://h/p", "1.1", "1.2")
	if stored, _ := r.fac.diffCache.put(key, big); !stored {
		t.Fatal("seed entry not stored")
	}
	ds, err := r.fac.DiffRevsStream("http://h/p", "1.1", "1.2")
	if err != nil || !ds.Cached {
		t.Fatalf("expected cache hit (err=%v)", err)
	}
	sink := &discardStringWriter{}
	allocs := testing.AllocsPerRun(20, func() {
		sink.n = 0
		if err := ds.Render(sink); err != nil {
			t.Fatal(err)
		}
	})
	if sink.n != len(big) {
		t.Fatalf("rendered %d bytes, want %d", sink.n, len(big))
	}
	if allocs > 16 {
		t.Errorf("cache-hit render costs %.0f allocs for %d bytes; want a small size-independent constant", allocs, len(big))
	}
}

// TestStreamedCheckoutDeliversWholePage sanity-checks /co end to end
// over a real connection: the streamed bytes must be byte-identical to
// the archived revision with the BASE directive injected.
func TestStreamedCheckoutDeliversWholePage(t *testing.T) {
	r, srv, pageURL := streamRig(t, 3)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	want, err := r.fac.Checkout(pageURL, "1.2")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/co?url=" + url.QueryEscape(pageURL) + "&rev=1.2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "<BASE HREF=") {
		t.Error("BASE directive missing from streamed checkout")
	}
	stripped := strings.Replace(string(body), "<BASE HREF=\""+pageURL+"\">", "", 1)
	if stripped != want {
		t.Errorf("streamed checkout differs from archive: %d vs %d bytes", len(stripped), len(want))
	}
}
