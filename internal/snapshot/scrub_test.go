package snapshot

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aide/internal/faultfs"
	"aide/internal/obs"
)

// scrubAll scrubs every shard of a facility and sums the reports.
func scrubAll(t *testing.T, fac *Facility) ScrubReport {
	t.Helper()
	var total ScrubReport
	for s := 0; s < fac.Shards(); s++ {
		rep, err := fac.ScrubShard(context.Background(), s, 0)
		if err != nil {
			t.Fatalf("scrub shard %d: %v", s, err)
		}
		total.add(rep)
	}
	return total
}

// checkinN remembers n distinct pages on a facility.
func checkinN(t *testing.T, fac *Facility, n int, prefix string) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://h/%s-%d", prefix, i)
		if _, err := fac.RememberContent(context.Background(), userA, urls[i], fmt.Sprintf("%s body %d\n", prefix, i)); err != nil {
			t.Fatal(err)
		}
	}
	return urls
}

func TestScrubCleanRepositoryFindsNothing(t *testing.T) {
	r := shardedRig(t, 4)
	checkinN(t, r.fac, 8, "clean")
	rep := scrubAll(t, r.fac)
	// Check-ins record their checksums as they go, so a clean pass
	// scans everything and flags nothing.
	if rep.Scanned == 0 || rep.Adopted != 0 || rep.Corrupt != 0 || rep.Missing != 0 || rep.Unrepaired != 0 {
		t.Fatalf("clean scrub = %+v", rep)
	}
}

func TestScrubAdoptsPreLedgerRepository(t *testing.T) {
	r := shardedRig(t, 4)
	checkinN(t, r.fac, 6, "adopt")
	// Simulate a repository written before the ledger existed: wipe the
	// ledger and reopen the facility over the same store.
	if err := os.RemoveAll(filepath.Join(r.fac.Root(), "scrub")); err != nil {
		t.Fatal(err)
	}
	fac2, err := NewSharded(r.fac.Root(), 4, nil, r.clock)
	if err != nil {
		t.Fatal(err)
	}
	rep := scrubAll(t, fac2)
	if rep.Adopted == 0 || rep.Corrupt != 0 {
		t.Fatalf("adoption scrub = %+v", rep)
	}
	// Once adopted, the next pass is clean — and damage is detectable.
	if rep2 := scrubAll(t, fac2); rep2.Adopted != 0 {
		t.Fatalf("second scrub re-adopted: %+v", rep2)
	}
}

func TestScrubDetectsBitFlipAndRepairsFromReplica(t *testing.T) {
	p := newReplicaPair(t, 4)
	p.leader.fac.Metrics = obs.NewRegistry()
	urls := checkinN(t, p.leader.fac, 8, "rot")
	if _, _, err := p.repl.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.assertConverged(t)
	p.leader.fac.Failover = p.repl

	// Silent bit rot: size unchanged, mtime restored — only the content
	// hash can tell.
	victim := urls[3]
	path := p.leader.fac.Store().ArchivePath(victim)
	if err := faultfs.FlipBit(path, 100); err != nil {
		t.Fatal(err)
	}
	rep := scrubAll(t, p.leader.fac)
	if rep.Corrupt != 1 || rep.Repaired != 1 || rep.Quarantined != 1 || rep.Unrepaired != 0 {
		t.Fatalf("bit-flip scrub = %+v", rep)
	}
	if got := p.leader.fac.Metrics.Counter("scrub.repaired").Value(); got != 1 {
		t.Fatalf("scrub.repaired = %d", got)
	}
	// The repaired archive serves the original content again.
	if text, err := p.leader.fac.Checkout(victim, ""); err != nil || text != "rot body 3\n" {
		t.Fatalf("post-repair checkout = (%q,%v)", text, err)
	}
	// The damaged original was kept for post-mortem.
	q, err := os.ReadDir(filepath.Join(p.leader.fac.Root(), "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir = %v entries, err %v", len(q), err)
	}
	if !strings.HasPrefix(q[0].Name(), filepath.Base(path)) {
		t.Fatalf("quarantined as %q", q[0].Name())
	}
	// And the follow-up pass is clean.
	if rep2 := scrubAll(t, p.leader.fac); rep2.Corrupt != 0 {
		t.Fatalf("second scrub = %+v", rep2)
	}
	p.assertConverged(t)
}

func TestScrubWithoutReplicaLeavesDamageInPlace(t *testing.T) {
	r := shardedRig(t, 2)
	urls := checkinN(t, r.fac, 4, "stuck")
	path := r.fac.Store().ArchivePath(urls[0])
	if err := faultfs.FlipBit(path, 64); err != nil {
		t.Fatal(err)
	}
	rep := scrubAll(t, r.fac)
	if rep.Corrupt != 1 || rep.Repaired != 0 || rep.Unrepaired != 1 {
		t.Fatalf("no-replica scrub = %+v", rep)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("damaged file was removed without a repair source: %v", err)
	}
}

func TestScrubRestoresMissingFileFromReplica(t *testing.T) {
	p := newReplicaPair(t, 4)
	urls := checkinN(t, p.leader.fac, 6, "lost")
	if _, _, err := p.repl.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.leader.fac.Failover = p.repl
	victim := urls[2]
	name := filepath.Base(p.leader.fac.Store().ArchivePath(victim))
	if err := p.leader.fac.Store().Remove(KindArchive, name); err != nil {
		t.Fatal(err)
	}
	rep := scrubAll(t, p.leader.fac)
	if rep.Missing != 1 || rep.Repaired != 1 {
		t.Fatalf("missing-file scrub = %+v", rep)
	}
	if text, err := p.leader.fac.Checkout(victim, ""); err != nil || text != "lost body 2\n" {
		t.Fatalf("restored checkout = (%q,%v)", text, err)
	}
}

func TestScrubDropsTombstoneWhenNoCopySurvives(t *testing.T) {
	r := shardedRig(t, 2)
	urls := checkinN(t, r.fac, 2, "gone")
	name := filepath.Base(r.fac.Store().ArchivePath(urls[0]))
	if err := r.fac.Store().Remove(KindArchive, name); err != nil {
		t.Fatal(err)
	}
	// First pass: the loss is reported once.
	if rep := scrubAll(t, r.fac); rep.Missing != 1 {
		t.Fatalf("first scrub = %+v", rep)
	}
	// The entry was dropped: later passes stay quiet instead of
	// re-reporting a file nothing can bring back.
	if rep := scrubAll(t, r.fac); rep.Missing != 0 {
		t.Fatalf("second scrub = %+v", rep)
	}
}

func TestScrubberRotatesThroughShards(t *testing.T) {
	r := shardedRig(t, 4)
	checkinN(t, r.fac, 12, "rotate")
	s := &Scrubber{Facility: r.fac}
	for i := 0; i < 4; i++ {
		if _, err := s.ScrubNext(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Status()
	if st.Passes != 4 {
		t.Fatalf("passes = %d", st.Passes)
	}
	// Four passes over a four-shard store cover every file exactly once.
	files := 0
	for shard := 0; shard < 4; shard++ {
		sf, err := r.fac.Store().ShardFiles(shard)
		if err != nil {
			t.Fatal(err)
		}
		files += len(sf)
	}
	if st.Totals.Scanned != files {
		t.Fatalf("scanned %d of %d files in one rotation", st.Totals.Scanned, files)
	}
	// A fifth pass wraps around to shard 0.
	rep, err := s.ScrubNext(context.Background())
	if err != nil || rep.Shard != 0 {
		t.Fatalf("fifth pass = shard %d, err %v", rep.Shard, err)
	}
}

func TestScrubLedgerSurvivesRestartViaCompaction(t *testing.T) {
	r := shardedRig(t, 2)
	urls := checkinN(t, r.fac, 4, "compact")
	scrubAll(t, r.fac) // compacts each shard's stream
	// Reopen: the replayed ledger must still describe every file, so a
	// bit flip introduced "while the facility was down" is caught.
	fac2, err := NewSharded(r.fac.Root(), 2, nil, r.clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.FlipBit(fac2.Store().ArchivePath(urls[1]), 80); err != nil {
		t.Fatal(err)
	}
	rep := scrubAll(t, fac2)
	if rep.Adopted != 0 || rep.Corrupt != 1 {
		t.Fatalf("post-restart scrub = %+v", rep)
	}
}

func TestScrubReadFaultInjectionEIO(t *testing.T) {
	r := shardedRig(t, 1)
	checkinN(t, r.fac, 3, "eio")
	// Every injected read fails with EIO, but the confirmation re-read
	// (outside the injector) sees intact bytes: no false corruption.
	r.fac.Faults = faultfs.New(faultfs.Profile{Seed: 7, ReadErrProb: 1.0})
	rep := scrubAll(t, r.fac)
	if rep.Corrupt != 0 || rep.Unrepaired != 0 {
		t.Fatalf("EIO-storm scrub misjudged intact files: %+v", rep)
	}
	if r.fac.Faults.Injected() == 0 {
		t.Fatal("injector never fired")
	}
}
