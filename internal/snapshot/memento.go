package snapshot

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"aide/internal/httpdate"
	"aide/internal/memento"
	"aide/internal/rcs"
)

// This file binds the RFC 7089 protocol layer (internal/memento) to
// the facility: the revision index read path, the Source adapter the
// memento handlers negotiate against, and the Memento headers the
// facility's native checkout/diff endpoints carry so that any response
// built from archived states advertises its place on the timeline.

// RevisionIndex lists a page's archived states oldest-first as
// mementos: revision number plus capture instant. It reads through the
// parsed-archive cache (no delta application, no text materialised)
// and the replica failover funnel, so a negotiation against a page
// whose primary shard lost its archive still resolves.
func (f *Facility) RevisionIndex(pageURL string) ([]memento.Memento, error) {
	var rts []rcs.RevTime
	err := f.readArchive(pageURL, func(a *rcs.Archive) error {
		var derr error
		rts, derr = a.Dates()
		return derr
	})
	if err != nil {
		return nil, err
	}
	// rcs lists newest-first (trunk head outward); mementos go
	// oldest-first.
	ms := make([]memento.Memento, len(rts))
	for i, rt := range rts {
		ms[len(rts)-1-i] = memento.Memento{Rev: rt.Num, Time: rt.Date.UTC()}
	}
	return ms, nil
}

// mementoSource adapts the facility to memento.Source: index reads
// resolve through shard placement and replica failover, checkouts get
// the §4.1 BASE directive so archived copies render with working
// relative links, and diffs ride the streaming diff cache.
type mementoSource struct {
	f *Facility
}

func (s mementoSource) Index(pageURL string) ([]memento.Memento, error) {
	ms, err := s.f.RevisionIndex(pageURL)
	if errors.Is(err, rcs.ErrNoArchive) || errors.Is(err, ErrNeverSaved) {
		return nil, fmt.Errorf("%w: %s", memento.ErrNotArchived, pageURL)
	}
	return ms, err
}

func (s mementoSource) Checkout(pageURL, rev string) (string, error) {
	text, err := s.f.Checkout(pageURL, rev)
	if err != nil {
		return "", err
	}
	return InjectBase(text, pageURL), nil
}

func (s mementoSource) DiffStream(pageURL, oldRev, newRev string) (func(io.Writer) error, error) {
	ds, err := s.f.DiffRevsStream(pageURL, oldRev, newRev)
	if err != nil {
		return nil, err
	}
	return ds.Render, nil
}

// revIndex locates rev in an oldest-first memento list; empty rev
// means the head (newest) revision. Returns -1 when absent.
func revIndex(ms []memento.Memento, rev string) int {
	if rev == "" {
		return len(ms) - 1
	}
	for i := range ms {
		if ms[i].Rev == rev {
			return i
		}
	}
	return -1
}

// setMementoHeaders stamps Memento-Datetime and the RFC 7089 Link set
// on a response serving revision rev of pageURL. Lookup failures leave
// the response unstamped — the headers are advisory and the body path
// reports real errors.
func (s *Server) setMementoHeaders(w http.ResponseWriter, r *http.Request, pageURL, rev string) {
	ms, err := s.Facility.RevisionIndex(pageURL)
	if err != nil || len(ms) == 0 {
		return
	}
	i := revIndex(ms, rev)
	if i < 0 {
		return
	}
	hdr := w.Header()
	hdr.Set("Memento-Datetime", httpdate.Format(ms[i].Time))
	hdr.Set("Link", memento.MementoLinks(memento.ResolverFor(r), pageURL, ms, i))
}

// setDiffMementoHeaders stamps Memento-Datetime (the newer side) and
// the two-memento Link set on a response diffing r1 against r2.
func (s *Server) setDiffMementoHeaders(w http.ResponseWriter, r *http.Request, pageURL, r1, r2 string) {
	ms, err := s.Facility.RevisionIndex(pageURL)
	if err != nil || len(ms) == 0 {
		return
	}
	fi, ti := revIndex(ms, r1), revIndex(ms, r2)
	if fi < 0 || ti < 0 {
		return
	}
	if fi > ti {
		fi, ti = ti, fi
	}
	hdr := w.Header()
	hdr.Set("Memento-Datetime", httpdate.Format(ms[ti].Time))
	hdr.Set("Link", memento.DiffLinks(memento.ResolverFor(r), pageURL, ms, fi, ti))
}
