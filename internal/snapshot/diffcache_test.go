package snapshot

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func dk(url, r1, r2 string) diffKey { return diffKey{url: url, oldRev: r1, newRev: r2} }

// put inserts under the key's current stamp — the no-race fast path the
// unit tests below use.
func (c *diffCache) put(key diffKey, html string) (bool, int) {
	return c.putIfCurrent(key, html, c.gen(key.url))
}

func TestDiffCacheLRUEviction(t *testing.T) {
	// Budget fits exactly four of these entries (the per-entry cap allows
	// at most a quarter of the budget); inserting a fifth must evict the
	// least recently used.
	body := strings.Repeat("x", 1000)
	c := newDiffCache(4 * entrySize(dk("a", "1.1", "1.2"), body))
	for _, u := range []string{"a", "b", "c", "d"} {
		if stored, _ := c.put(dk(u, "1.1", "1.2"), body); !stored {
			t.Fatalf("entry %s not stored", u)
		}
	}
	// Touch a so b is the eviction candidate.
	if _, ok := c.get(dk("a", "1.1", "1.2")); !ok {
		t.Fatal("a not cached")
	}
	if _, evicted := c.put(dk("e", "1.1", "1.2"), body); evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if c.contains(dk("b", "1.1", "1.2")) {
		t.Error("LRU entry b survived eviction")
	}
	for _, u := range []string{"a", "c", "d", "e"} {
		if !c.contains(dk(u, "1.1", "1.2")) {
			t.Errorf("recently-used entry %s evicted", u)
		}
	}
	if entries, bytes := c.stats(); entries != 4 || bytes > c.maxBytes {
		t.Errorf("stats = (%d entries, %d bytes), want 4 entries within %d", entries, bytes, c.maxBytes)
	}
}

func TestDiffCacheOversizeEntryNotStored(t *testing.T) {
	// An entry above a quarter of the budget must not displace the
	// working set — it is simply not cached.
	c := newDiffCache(4000)
	small := strings.Repeat("s", 100)
	c.put(dk("small", "1.1", "1.2"), small)
	if stored, _ := c.put(dk("big", "1.1", "1.2"), strings.Repeat("b", 2000)); stored {
		t.Error("oversize entry was stored")
	}
	if !c.contains(dk("small", "1.1", "1.2")) {
		t.Error("small entry displaced by rejected oversize entry")
	}
}

func TestDiffCacheSetMaxEvictsDown(t *testing.T) {
	body := strings.Repeat("x", 1000)
	c := newDiffCache(1 << 20)
	for _, u := range []string{"a", "b", "c", "d"} {
		c.put(dk(u, "1.1", "1.2"), body)
	}
	if evicted := c.setMax(2 * entrySize(dk("u", "1.1", "1.2"), body)); evicted != 2 {
		t.Errorf("setMax evicted %d, want 2", evicted)
	}
	if entries, bytes := c.stats(); entries != 2 || bytes > c.maxBytes {
		t.Errorf("after setMax: %d entries, %d bytes (max %d)", entries, bytes, c.maxBytes)
	}
}

func TestDiffCacheInvalidateURLScoped(t *testing.T) {
	c := newDiffCache(1 << 20)
	c.put(dk("a", "1.1", "1.2"), "one")
	c.put(dk("a", "1.2", "1.3"), "two")
	c.put(dk("b", "1.1", "1.2"), "other")
	removed, _ := c.invalidateURL("a")
	if removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	if c.contains(dk("a", "1.1", "1.2")) || c.contains(dk("a", "1.2", "1.3")) {
		t.Error("invalidated URL still cached")
	}
	if !c.contains(dk("b", "1.1", "1.2")) {
		t.Error("unrelated URL swept by per-URL invalidation")
	}
}

func TestDiffCacheStaleInsertDropped(t *testing.T) {
	c := newDiffCache(1 << 20)
	// Per-URL generation: a stamp captured before invalidateURL must not
	// land its insert.
	g := c.gen("a")
	c.invalidateURL("a")
	if stored, _ := c.putIfCurrent(dk("a", "1.1", "1.2"), "stale", g); stored {
		t.Error("insert with pre-invalidation stamp was stored")
	}
	// Global epoch: invalidateAll kills stamps for every URL.
	g = c.gen("b")
	c.invalidateAll()
	if stored, _ := c.putIfCurrent(dk("b", "1.1", "1.2"), "stale", g); stored {
		t.Error("insert with pre-epoch stamp was stored")
	}
	// A fresh stamp after both still works.
	if stored, _ := c.put(dk("b", "1.1", "1.2"), "fresh"); !stored {
		t.Error("insert with current stamp rejected")
	}
}

// TestPrewarmCachesHotPair checks the tentpole end to end: a changed
// check-in schedules an async render of (previous, latest), and the
// first viewer of that pair gets the cached bytes.
func TestPrewarmCachesHotPair(t *testing.T) {
	r := newRig(t)
	r.fac.EnablePrewarm(2)
	p := r.web.Site("h").Page("/p")
	p.Set("<P>Version one of the page.</P>\n")
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}
	r.web.Advance(time.Hour)
	p.Set("<P>Version two of the page.</P>\n")
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}
	r.fac.WaitPrewarm()

	if !r.fac.diffCache.contains(dk("http://h/p", "1.1", "1.2")) {
		t.Fatal("hot pair (1.1, 1.2) not pre-warmed")
	}
	ds, err := r.fac.DiffRevsStream("http://h/p", "1.1", "1.2")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Cached {
		t.Error("DiffRevsStream after pre-warm was not a cache hit")
	}
	var sb strings.Builder
	if err := ds.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "two") {
		t.Errorf("cached rendering missing new text: %q", sb.String())
	}
	if got := r.fac.metrics().Counter("diffcache.prewarm.computed").Value(); got == 0 {
		t.Error("prewarm.computed not incremented")
	}
	if r.fac.DiffCacheHits() == 0 {
		t.Error("cache hit not counted")
	}
}

// TestPrewarmInvalidationRace drives a rewrite through the prewarmHook
// seam: the invalidation lands after the pre-warm task has rendered but
// before it inserts. The generation guard must drop the insert — a
// check-in arriving mid-prewarm never leaves a stale entry behind.
func TestPrewarmInvalidationRace(t *testing.T) {
	r := newRig(t)
	r.fac.EnablePrewarm(1)
	p := r.web.Site("h").Page("/p")
	p.Set("<P>Version one of the page.</P>\n")
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}

	var once sync.Once
	r.fac.prewarmHook = func() {
		// The rewrite racing the pre-warm: it invalidates the page after
		// the task captured its stamp and rendered.
		once.Do(func() { r.fac.invalidateDiffCache("http://h/p") })
	}
	r.web.Advance(time.Hour)
	p.Set("<P>Version two of the page.</P>\n")
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}
	r.fac.WaitPrewarm()

	if r.fac.diffCache.contains(dk("http://h/p", "1.1", "1.2")) {
		t.Fatal("stale pre-warm entry survived a mid-render invalidation")
	}
	if got := r.fac.metrics().Counter("diffcache.prewarm.stale").Value(); got == 0 {
		t.Error("prewarm.stale not incremented for the dropped insert")
	}
	// The next on-demand request repopulates under the current stamp.
	if _, err := r.fac.DiffRevsStream("http://h/p", "1.1", "1.2"); err != nil {
		t.Fatal(err)
	}
}

// TestOnDemandMissPopulatesCache checks the serving path's side of the
// cache: a miss streams a fresh rendering and inserts it, so the second
// request for the same pair hits.
func TestOnDemandMissPopulatesCache(t *testing.T) {
	r := newRig(t) // no EnablePrewarm: misses are the only writers
	p := r.web.Site("h").Page("/p")
	p.Set("<P>Version one of the page.</P>\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	r.web.Advance(time.Hour)
	p.Set("<P>Version two of the page.</P>\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")

	ds, err := r.fac.DiffRevsStream("http://h/p", "1.1", "1.2")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Cached {
		t.Fatal("first request hit a cache nothing populated")
	}
	var first strings.Builder
	if err := ds.Render(&first); err != nil {
		t.Fatal(err)
	}
	ds2, err := r.fac.DiffRevsStream("http://h/p", "1.1", "1.2")
	if err != nil {
		t.Fatal(err)
	}
	if !ds2.Cached {
		t.Fatal("second request missed: render did not populate the cache")
	}
	var second strings.Builder
	if err := ds2.Render(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("cached bytes differ from the fresh rendering")
	}
}

// TestCheckinInvalidatesCachedDiff: a new revision rewrites the archive,
// so every cached pair for the page must vanish (the span diff 1.1..HEAD
// a viewer bookmarked now has different endpoints).
func TestCheckinInvalidatesCachedDiff(t *testing.T) {
	r := newRig(t)
	p := r.web.Site("h").Page("/p")
	p.Set("<P>Version one of the page.</P>\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	r.web.Advance(time.Hour)
	p.Set("<P>Version two of the page.</P>\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")

	ds, err := r.fac.DiffRevsStream("http://h/p", "1.1", "1.2")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	ds.Render(&sb) // populates the cache
	if !r.fac.diffCache.contains(dk("http://h/p", "1.1", "1.2")) {
		t.Fatal("render did not populate the cache")
	}

	r.web.Advance(time.Hour)
	p.Set("<P>Version three of the page.</P>\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	if r.fac.diffCache.contains(dk("http://h/p", "1.1", "1.2")) {
		t.Error("check-in left a cached pair for the rewritten page")
	}
}
