package snapshot

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"aide/internal/breaker"
	"aide/internal/flushwriter"
	"aide/internal/memento"
	"aide/internal/obs"
	"aide/internal/rcs"
)

// This file is the facility's HTTP face: the CGI-style GET endpoints of
// §4 and §6 (/remember, /diff, /history), the server-side version-control
// scripts of §8.1 (/rlog, /co, /rcsdiff), and the §4.2 keepalive trickle
// — while a long retrieval or comparison runs, the handler emits a space
// character (ignored by the browser) every few seconds so httpd's CGI
// timeout does not sever the connection.

// Server wraps a Facility with HTTP handlers.
type Server struct {
	// Facility is the underlying service.
	Facility *Facility
	// KeepaliveInterval is the trickle cadence for long operations;
	// zero disables the trickle (useful in tests).
	KeepaliveInterval time.Duration
	// Accounts, when non-nil, switches the facility to the §4.2
	// authenticated mode: the user parameter must be a valid account ID
	// and requests must carry its password.
	Accounts *Accounts
	// MaxSimultaneous, when positive, bounds concurrent requests; excess
	// clients get 503 (§4.2: "impose a limit on the number of
	// simultaneous users").
	MaxSimultaneous int
	// RequestTimeout, when positive, bounds the work done for one
	// request: each handler derives its context from the request's and
	// adds this deadline, so a hung upstream fetch cannot pin a handler
	// (and its Gate slot) forever.
	RequestTimeout time.Duration
	// Replicator, when non-nil, is this server's replica fan-out; its
	// per-replica status shows up in /debug/shards.
	Replicator *Replicator
	// Scrubber, when non-nil, is the background checksum scrubber; its
	// pass totals show up in /debug/shards.
	Scrubber *Scrubber
	// TimeMapPage is the memento count per TimeMap page on the RFC 7089
	// endpoints; zero means memento.DefaultPageSize.
	TimeMapPage int
}

// reqCtx derives the working context for one request: the request's own
// context (canceled when the client goes away) plus the server's
// per-request deadline. With no deadline configured the request context
// is used as-is — no derived context, no cancel bookkeeping per request.
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.RequestTimeout)
	}
	return ctx, noopCancel
}

func noopCancel() {}

// NewServer returns a Server with the paper-style keepalive enabled.
func NewServer(f *Facility) *Server {
	return &Server{Facility: f, KeepaliveInterval: 5 * time.Second}
}

// Handler returns the facility's HTTP face: the routes behind the
// optional load-shedding gate, the whole stack wrapped in the RED
// middleware so every route (gate rejections included) lands in the
// labeled http.* metrics and joins propagated traces.
func (s *Server) Handler() http.Handler {
	mux, setGate := s.routes()
	var h http.Handler = mux
	if s.MaxSimultaneous > 0 {
		gate := NewGate(mux, s.MaxSimultaneous)
		gate.Metrics = s.Facility.metrics()
		setGate(gate)
		h = gate
	}
	return obs.HTTPMiddleware(h, obs.MiddlewareConfig{
		Registry: s.Facility.metrics(),
		Service:  "snapshotd",
		Route:    obs.RouteFromMux(mux),
		Shard:    s.ShardLabel,
	})
}

// Embedded returns the routes without the server's own gate or RED
// middleware — for mounting under the aide mux, which applies its own
// gate and a single middleware over the combined routes — plus the
// route-pattern resolver the outer middleware labels these routes with.
func (s *Server) Embedded() (http.Handler, func(r *http.Request) string) {
	mux, _ := s.routes()
	return mux, obs.RouteFromMux(mux)
}

// ShardLabel maps a request to the shard its page lives on ("" for
// unsharded stores and shard-free requests) — the bounded shard label on
// http.requests.by_shard.
func (s *Server) ShardLabel(r *http.Request) string {
	if s.Facility == nil || s.Facility.Shards() <= 1 {
		return ""
	}
	q := r.URL.Query()
	if v := q.Get("shard"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 && n < s.Facility.Shards() {
			return v
		}
		return ""
	}
	if u := q.Get("url"); u != "" {
		return strconv.Itoa(s.Facility.ShardOf(u))
	}
	return ""
}

// routes builds the facility mux. The returned setter installs the gate
// the /debug/health closure reports on once the caller has built it.
func (s *Server) routes() (*http.ServeMux, func(*Gate)) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/remember", s.handleRemember)
	mux.HandleFunc("/diff", s.handleDiff)
	mux.HandleFunc("/history", s.handleHistory)
	mux.HandleFunc("/co", s.handleCheckout)
	mux.HandleFunc("/rlog", s.handleRlog)
	mux.HandleFunc("/rcsdiff", s.handleRcsdiff)
	mux.HandleFunc("/account/new", s.handleAccountNew)
	mux.HandleFunc("/export", s.handleExport)
	mux.HandleFunc("/shard/manifest", s.handleShardManifest)
	mux.HandleFunc("/shard/export", s.handleShardExport)
	mux.HandleFunc("/shard/import", s.handleShardImport)
	mux.HandleFunc("/debug/shards", s.handleDebugShards)
	mux.HandleFunc("/debug/corpus", s.handleDebugCorpus)
	// RFC 7089 time travel: TimeGate negotiation, TimeMaps, URI-Ms, and
	// datetime-addressed diffs, all resolving through the facility's
	// revision index. Mounted on the same mux, so the patterns land in
	// the RED middleware's bounded endpoint labels via RouteFromMux.
	mh := &memento.Handlers{Source: mementoSource{f: s.Facility}, PageSize: s.TimeMapPage}
	mh.Mount(mux)
	debug := obs.Handler(s.Facility.metrics(), nil)
	mux.Handle("/debug/metrics", debug)
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/traces", debug)
	var gate *Gate
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		var set *breaker.Set
		if s.Facility.client != nil {
			set = s.Facility.client.Breakers
		}
		ServeHealth(w, set, gate)
	})
	return mux, func(g *Gate) { gate = g }
}

// HealthStatus is the /debug/health payload: the failure-isolation
// layer's view of the process — which upstream hosts are tripped and
// how loaded the request gate is.
type HealthStatus struct {
	// Status is "ok" when no breaker is open, "degraded" otherwise.
	Status string `json:"status"`
	// OpenHosts counts breakers currently open or half-open.
	OpenHosts int `json:"open_hosts"`
	// Breakers is the per-host breaker state, sorted by host.
	Breakers []breaker.HostState `json:"breakers,omitempty"`
	// Gate reports the load-shedding gate, when one is configured.
	Gate *GateStatus `json:"gate,omitempty"`
}

// GateStatus is the load-shedding gate's health view.
type GateStatus struct {
	InFlight int `json:"in_flight"`
	Capacity int `json:"capacity"`
	Rejected int `json:"rejected"`
}

// Health assembles a HealthStatus from a breaker set and a gate (either
// may be nil).
func Health(set *breaker.Set, gate *Gate) HealthStatus {
	h := HealthStatus{Status: "ok"}
	if set != nil {
		h.Breakers = set.Snapshot()
		for _, b := range h.Breakers {
			if b.State != "closed" {
				h.OpenHosts++
			}
		}
	}
	if h.OpenHosts > 0 {
		h.Status = "degraded"
	}
	if gate != nil {
		h.Gate = &GateStatus{InFlight: gate.InFlight(), Capacity: gate.Capacity(), Rejected: gate.Rejected()}
	}
	return h
}

// ServeHealth writes the health payload as JSON — shared by the
// snapshot and aide servers' /debug/health endpoints.
func ServeHealth(w http.ResponseWriter, set *breaker.Set, gate *Gate) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(Health(set, gate))
}

// handleIndex serves the HTML form through which pages are registered
// with the service (§4.1: "Pages can be registered with the service via
// an HTML form, and differences can be retrieved in the same fashion").
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, `<HTML><HEAD><TITLE>AIDE snapshot facility</TITLE></HEAD><BODY>
<H1>AIDE snapshot facility</H1>
<P>Save a copy of a page, or see how it has changed since you saved it.</P>
<FORM ACTION="/remember" METHOD="GET">
URL: <INPUT NAME="url" SIZE=60>
Your email: <INPUT NAME="user" SIZE=30>
<INPUT TYPE=SUBMIT VALUE="Remember">
</FORM>
<FORM ACTION="/diff" METHOD="GET">
URL: <INPUT NAME="url" SIZE=60>
Your email: <INPUT NAME="user" SIZE=30>
<INPUT TYPE=SUBMIT VALUE="Diff">
</FORM>
<FORM ACTION="/history" METHOD="GET">
URL: <INPUT NAME="url" SIZE=60>
Your email: <INPUT NAME="user" SIZE=30>
<INPUT TYPE=SUBMIT VALUE="History">
</FORM>
</BODY></HTML>
`)
}

// userURL extracts the common query parameters.
func userURL(r *http.Request) (user, pageURL string) {
	q := r.URL.Query()
	return q.Get("user"), q.Get("url")
}

// handleRemember implements the report's Remember link (§6).
func (s *Server) handleRemember(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	user, err := s.authUser(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnauthorized)
		return
	}
	pageURL := q.Get("url")
	if pageURL == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	w.Header().Set("Content-Type", "text/html")
	s.withKeepalive(w, func() (string, error) {
		res, err := s.Facility.Remember(ctx, user, pageURL)
		if err != nil {
			return "", err
		}
		verb := "saved as revision " + res.Rev
		if !res.Changed {
			verb = "unchanged since revision " + res.Rev + "; not saved again"
		}
		return fmt.Sprintf(
			"<HTML><BODY><H2>Remembered</H2><P><A HREF=\"%s\">%s</A>: %s.</P></BODY></HTML>\n",
			html.EscapeString(pageURL), html.EscapeString(pageURL), verb), nil
	})
}

// handleDiff implements the report's Diff link: with r1/r2 it compares
// two archived revisions; otherwise it compares the user's last-saved
// version against the live page.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	user, err := s.authUser(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnauthorized)
		return
	}
	pageURL := q.Get("url")
	if pageURL == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	r1, r2 := q.Get("r1"), q.Get("r2")
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if r1 != "" && r2 != "" {
		// Archived-pair comparison: the response derives from two
		// mementos, so stamp their timeline position before any byte
		// (keepalive trickle included) flushes the headers.
		s.setDiffMementoHeaders(w, r, pageURL, r1, r2)
	}
	w.Header().Set("Content-Type", "text/html")
	s.streamKeepalive(w, func() (func(io.Writer) error, error) {
		var ds *DiffStream
		var err error
		if r1 != "" && r2 != "" {
			ds, err = s.Facility.DiffRevsStream(pageURL, r1, r2)
		} else {
			ds, err = s.Facility.DiffSinceSavedStream(ctx, user, pageURL)
		}
		if err != nil {
			return nil, err
		}
		return ds.Render, nil
	})
}

// handleHistory implements the report's History link: the full version
// log with links to view any revision or diff any adjacent pair (§6).
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	user, err := s.authUser(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnauthorized)
		return
	}
	pageURL := q.Get("url")
	if pageURL == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	revs, seen, err := s.Facility.History(user, pageURL)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	// Rows stream straight to the client: a long history never
	// materialises, and a hung-up client stops the loop at the next row.
	fw := flushwriter.New(w, 0)
	fmt.Fprintf(fw, "<HTML><HEAD><TITLE>History of %s</TITLE></HEAD><BODY>\n", html.EscapeString(pageURL))
	fmt.Fprintf(fw, "<H1>Version history</H1>\n<P><A HREF=\"%s\">%s</A></P>\n<UL>\n",
		html.EscapeString(pageURL), html.EscapeString(pageURL))
	esc := escapeQuery(pageURL)
	for i, rev := range revs {
		if fw.Err() != nil {
			return
		}
		seenMark := ""
		if seen[rev.Num] {
			seenMark = " <B>(seen by you)</B>"
		}
		fmt.Fprintf(fw, `<LI>%s &mdash; %s by %s%s [<A HREF="/co?url=%s&rev=%s">view</A>]`,
			rev.Num, rev.Date.UTC().Format(time.ANSIC), html.EscapeString(rev.Author), seenMark, esc, rev.Num)
		if i+1 < len(revs) {
			fmt.Fprintf(fw, ` [<A HREF="/diff?url=%s&r1=%s&r2=%s">diff to %s</A>]`,
				esc, revs[i+1].Num, rev.Num, revs[i+1].Num)
		}
		fw.WriteString("\n")
	}
	fw.WriteString("</UL>\n</BODY></HTML>\n")
}

// handleCheckout serves an archived revision (/cgi-bin/co of §8.1),
// injecting a BASE directive so relative links resolve against the
// original location rather than the facility (§4.1).
func (s *Server) handleCheckout(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pageURL := q.Get("url")
	if pageURL == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	var text, rev string
	var err error
	if dateStr := q.Get("date"); dateStr != "" {
		var t time.Time
		t, err = time.Parse(time.RFC3339, dateStr)
		if err != nil {
			http.Error(w, "bad date (want RFC 3339): "+err.Error(), http.StatusBadRequest)
			return
		}
		text, rev, err = s.Facility.CheckoutAtDate(pageURL, t)
	} else {
		rev = q.Get("rev")
		text, err = s.Facility.Checkout(pageURL, rev)
	}
	if err != nil {
		httpError(w, err)
		return
	}
	s.setMementoHeaders(w, r, pageURL, rev)
	w.Header().Set("Content-Type", "text/html")
	fw := flushwriter.New(w, 0)
	writeWithBase(fw, text, pageURL)
}

// handleRlog renders the plain revision log (/cgi-bin/rlog of §8.1).
func (s *Server) handleRlog(w http.ResponseWriter, r *http.Request) {
	_, pageURL := userURL(r)
	if pageURL == "" {
		http.Error(w, "missing url parameter", http.StatusBadRequest)
		return
	}
	revs, _, err := s.Facility.History("", pageURL)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fw := flushwriter.New(w, 0)
	fmt.Fprintf(fw, "<HTML><BODY><H1>rlog %s</H1>\n<PRE>\n", html.EscapeString(pageURL))
	for _, rev := range revs {
		if fw.Err() != nil {
			return
		}
		fmt.Fprintf(fw, "revision %s\ndate: %s;  author: %s\n%s\n----------------------------\n",
			rev.Num, rev.Date.UTC().Format("2006/01/02 15:04:05"), html.EscapeString(rev.Author),
			html.EscapeString(rev.Log))
	}
	fw.WriteString("</PRE></BODY></HTML>\n")
}

// handleRcsdiff shows differences between two revisions: HtmlDiff for
// HTML documents, a <PRE> unified diff otherwise ("If the file's name
// ends in .html then HtmlDiff is used", §8.1 — here selected by the
// mode parameter with HtmlDiff as the HTML-era default).
func (s *Server) handleRcsdiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pageURL, r1, r2 := q.Get("url"), q.Get("r1"), q.Get("r2")
	if pageURL == "" || r1 == "" || r2 == "" {
		http.Error(w, "need url, r1, r2 parameters", http.StatusBadRequest)
		return
	}
	s.setDiffMementoHeaders(w, r, pageURL, r1, r2)
	w.Header().Set("Content-Type", "text/html")
	if q.Get("mode") == "text" {
		d, err := s.Facility.archive(pageURL).DiffRevs(r1, r2)
		if err != nil {
			httpError(w, err)
			return
		}
		fmt.Fprintf(w, "<HTML><BODY><PRE>%s</PRE></BODY></HTML>\n", html.EscapeString(d))
		return
	}
	ds, err := s.Facility.DiffRevsStream(pageURL, r1, r2)
	if err != nil {
		httpError(w, err)
		return
	}
	fw := flushwriter.New(w, 0)
	ds.Render(fw)
}

// withKeepalive runs work while trickling ignorable bytes to the client,
// then writes the result. This reproduces the §4.2 hack: "snapshot forks
// a child process that generates one space character (ignored by the W3
// browser) every several seconds while the parent is retrieving a page
// or executing HtmlDiff".
func (s *Server) withKeepalive(w http.ResponseWriter, work func() (string, error)) {
	if s.KeepaliveInterval <= 0 {
		out, err := work()
		if err != nil {
			httpError(w, err)
			return
		}
		fmt.Fprint(w, out)
		return
	}
	type outcome struct {
		out string
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		out, err := work()
		done <- outcome{out, err}
	}()
	ticker := time.NewTicker(s.KeepaliveInterval)
	defer ticker.Stop()
	flusher, _ := w.(http.Flusher)
	for {
		select {
		case <-ticker.C:
			// One space, ignored by the browser, keeps httpd happy.
			fmt.Fprint(w, " ")
			if flusher != nil {
				flusher.Flush()
			}
		case o := <-done:
			if o.err != nil {
				// Headers may already be out; deliver the error in-band.
				fmt.Fprintf(w, "<HTML><BODY><B>Error:</B> %s</BODY></HTML>\n",
					html.EscapeString(o.err.Error()))
				return
			}
			fmt.Fprint(w, o.out)
			return
		}
	}
}

// streamKeepalive is withKeepalive for streamed responses: prepare does
// the slow work (fetch, checkout, alignment) while the §4.2 trickle
// keeps the connection alive, and the returned render function then
// streams the page through a Flusher-aware writer — first bytes reach
// the client while the tail is still being rendered, and a client that
// hung up turns the rest of the render into no-ops via the writer's
// sticky error.
func (s *Server) streamKeepalive(w http.ResponseWriter, prepare func() (func(io.Writer) error, error)) {
	stream := func(render func(io.Writer) error) {
		fw := flushwriter.New(w, 0)
		render(fw) // write errors are sticky in fw; nothing to add here
	}
	if s.KeepaliveInterval <= 0 {
		render, err := prepare()
		if err != nil {
			httpError(w, err)
			return
		}
		stream(render)
		return
	}
	type outcome struct {
		render func(io.Writer) error
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		render, err := prepare()
		done <- outcome{render, err}
	}()
	ticker := time.NewTicker(s.KeepaliveInterval)
	defer ticker.Stop()
	flusher, _ := w.(http.Flusher)
	for {
		select {
		case <-ticker.C:
			// One space, ignored by the browser, keeps httpd happy.
			fmt.Fprint(w, " ")
			if flusher != nil {
				flusher.Flush()
			}
		case o := <-done:
			if o.err != nil {
				// Headers may already be out; deliver the error in-band.
				fmt.Fprintf(w, "<HTML><BODY><B>Error:</B> %s</BODY></HTML>\n",
					html.EscapeString(o.err.Error()))
				return
			}
			stream(o.render)
			return
		}
	}
}

// CorpusPage is one archived page in the /debug/corpus listing: the URL
// and its revision numbers, oldest first — what a load generator needs
// to construct valid /diff, /history, and /co requests against a live
// server.
type CorpusPage struct {
	URL  string   `json:"url"`
	Revs []string `json:"revs"`
	// First and Last are the capture instants (RFC 3339) of the oldest
	// and newest revisions — the datetime range a load generator can
	// draw Accept-Datetime values and TimeMap expectations from.
	First string `json:"first,omitempty"`
	Last  string `json:"last,omitempty"`
}

// handleDebugCorpus lists the archived corpus as JSON for external
// benchmarking (cmd/loadgen -target). ?limit=N bounds the listing.
func (s *Server) handleDebugCorpus(w http.ResponseWriter, r *http.Request) {
	urls, err := s.Facility.ArchivedURLs()
	if err != nil {
		httpError(w, err)
		return
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, perr := strconv.Atoi(v); perr == nil && n >= 0 && n < len(urls) {
			urls = urls[:n]
		}
	}
	pages := make([]CorpusPage, 0, len(urls))
	for _, u := range urls {
		revs, _, herr := s.Facility.History("", u)
		if herr != nil {
			continue // mid-scrub or just-deleted archive: skip, don't fail the listing
		}
		p := CorpusPage{URL: u, Revs: make([]string, 0, len(revs))}
		for i := len(revs) - 1; i >= 0; i-- { // History is newest-first
			p.Revs = append(p.Revs, revs[i].Num)
		}
		if len(revs) > 0 {
			p.First = revs[len(revs)-1].Date.UTC().Format(time.RFC3339)
			p.Last = revs[0].Date.UTC().Format(time.RFC3339)
		}
		pages = append(pages, p)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Pages []CorpusPage `json:"pages"`
	}{pages})
}

// writeWithBase streams doc with the §4.1 BASE directive injected. It
// scans case-insensitively in place — InjectBase's strings.ToUpper
// would copy a multi-MB page just to find two tags.
func writeWithBase(fw *flushwriter.Writer, doc, baseURL string) error {
	if indexFold(doc, "<BASE") >= 0 {
		return fw.WriteStringChunks(doc) // author already set one
	}
	at := 0
	if i := indexFold(doc, "<HEAD>"); i >= 0 {
		at = i + len("<HEAD>")
	}
	if err := fw.WriteStringChunks(doc[:at]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(fw, "<BASE HREF=\"%s\">", baseURL); err != nil {
		return err
	}
	return fw.WriteStringChunks(doc[at:])
}

// indexFold is an allocation-free case-insensitive strings.Index for an
// already-uppercase ASCII needle.
func indexFold(s, upperNeedle string) int {
	n := len(upperNeedle)
	if n == 0 || n > len(s) {
		return -1
	}
	first := upperNeedle[0]
	for i := 0; i+n <= len(s); i++ {
		if upperASCII(s[i]) != first {
			continue
		}
		j := 1
		for ; j < n; j++ {
			if upperASCII(s[i+j]) != upperNeedle[j] {
				break
			}
		}
		if j == n {
			return i
		}
	}
	return -1
}

func upperASCII(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - ('a' - 'A')
	}
	return c
}

// InjectBase inserts a <BASE HREF=...> directive so that relative links
// in an archived copy resolve against the page's original home (§4.1).
// The directive goes just after <HEAD> when present, else at the front.
func InjectBase(doc, baseURL string) string {
	tag := fmt.Sprintf("<BASE HREF=\"%s\">", baseURL)
	upper := strings.ToUpper(doc)
	if strings.Contains(upper, "<BASE") {
		return doc // author already set one
	}
	if i := strings.Index(upper, "<HEAD>"); i >= 0 {
		at := i + len("<HEAD>")
		return doc[:at] + tag + doc[at:]
	}
	return tag + doc
}

// queryEscaper is built once: a strings.Replacer compiles its search
// structure on first use, which showed up in serving profiles when it
// was rebuilt per request.
var queryEscaper = strings.NewReplacer("%", "%25", "&", "%26", "+", "%2B", " ", "%20", "#", "%23", "?", "%3F", "=", "%3D", "/", "%2F", ":", "%3A")

func escapeQuery(s string) string {
	return queryEscaper.Replace(s)
}

// httpError maps facility errors to HTTP statuses.
func httpError(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		return
	case errors.Is(err, rcs.ErrNoRevision),
		errors.Is(err, rcs.ErrNoArchive),
		errors.Is(err, ErrNeverSaved):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
