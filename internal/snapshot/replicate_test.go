package snapshot

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aide/internal/webclient"
)

func TestExportImportRoundTrip(t *testing.T) {
	leader := newRig(t)
	p := leader.web.Site("h").Page("/p")
	p.Set("<P>version one content.</P>\n")
	leader.fac.Remember(context.Background(), userA, "http://h/p")
	leader.web.Advance(time.Hour)
	p.Set("<P>version two content.</P>\n")
	leader.fac.Remember(context.Background(), userA, "http://h/p")
	leader.web.Site("h").Page("/q").Set("other page\n")
	leader.fac.Remember(context.Background(), userB, "http://h/q")

	var dump bytes.Buffer
	if err := leader.fac.Export(&dump); err != nil {
		t.Fatal(err)
	}

	follower := newRig(t)
	files, err := follower.fac.Import(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if files < 4 { // two archives + two user control files
		t.Fatalf("imported %d files", files)
	}
	// The replica serves the same history and user state.
	revs, seenA, err := follower.fac.History(userA, "http://h/p")
	if err != nil || len(revs) != 2 || !seenA["1.2"] {
		t.Fatalf("replica history: %d revs, seen %v, err %v", len(revs), seenA, err)
	}
	text, err := follower.fac.Checkout("http://h/p", "1.1")
	if err != nil || text != "<P>version one content.</P>\n" {
		t.Fatalf("replica checkout: (%q,%v)", text, err)
	}
	urls, _ := follower.fac.ArchivedURLs()
	if len(urls) != 2 {
		t.Fatalf("replica urls = %v", urls)
	}
}

func TestReplicateOverHTTP(t *testing.T) {
	leader := newRig(t)
	leader.web.Site("h").Page("/p").Set("replicated content\n")
	leader.fac.Remember(context.Background(), userA, "http://h/p")
	srv := NewServer(leader.fac)
	srv.KeepaliveInterval = 0
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	follower := newRig(t)
	files, err := follower.fac.ReplicateFrom(context.Background(), ts.URL, &webclient.HTTPTransport{})
	if err != nil || files == 0 {
		t.Fatalf("replicate: %d files, err %v", files, err)
	}
	text, err := follower.fac.Checkout("http://h/p", "")
	if err != nil || text != "replicated content\n" {
		t.Fatalf("replica head: (%q,%v)", text, err)
	}
}

func TestImportRejectsUnsafeDumps(t *testing.T) {
	follower := newRig(t)
	cases := []string{
		`{"kind":"archive","name":"../escape,v","data":"x"}`,
		`{"kind":"weird","name":"a","data":"x"}`,
		`{"kind":"archive","name":"","data":"x"}`,
		`not json at all`,
	}
	for _, c := range cases {
		if _, err := follower.fac.Import(strings.NewReader(c)); err == nil {
			t.Errorf("Import(%q) succeeded", c)
		}
	}
}

func TestGateLimitsSimultaneousUsers(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(200)
	})
	gate := NewGate(slow, 2)
	ts := httptest.NewServer(gate)
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make(chan int, 4)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL)
			if err == nil {
				codes <- resp.StatusCode
				resp.Body.Close()
			}
		}()
	}
	<-started
	<-started
	// Both slots busy: the next request is turned away immediately.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third request code = %d, want 503", resp.StatusCode)
	}
	close(release)
	wg.Wait()
	close(codes)
	for c := range codes {
		if c != 200 {
			t.Errorf("admitted request code = %d", c)
		}
	}
	if gate.Rejected() != 1 {
		t.Errorf("rejected = %d", gate.Rejected())
	}
	// After the burst, capacity is available again.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestGateUnlimitedWhenZero(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	gate := NewGate(h, 0)
	ts := httptest.NewServer(gate)
	defer ts.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("unlimited gate: %v %d", err, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestServerMaxSimultaneousWired(t *testing.T) {
	r := newRig(t)
	srv := NewServer(r.fac)
	srv.KeepaliveInterval = 0
	srv.MaxSimultaneous = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// A single request passes through the gate.
	resp, err := http.Get(ts.URL + "/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("gated index: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// TestExportEndpoint checks /export streams a usable dump.
func TestExportEndpoint(t *testing.T) {
	r, ts := serverRig(t)
	r.web.Site("h").Page("/p").Set("x\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	code, body := get(t, ts.URL+"/export")
	if code != 200 || !strings.Contains(body, `"kind":"archive"`) {
		t.Fatalf("export: %d\n%s", code, body)
	}
	follower := newRig(t)
	if files, err := follower.fac.Import(strings.NewReader(body)); err != nil || files == 0 {
		t.Fatalf("import of endpoint dump: %d files, %v", files, err)
	}
}
