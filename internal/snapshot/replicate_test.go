package snapshot

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aide/internal/webclient"
)

func TestExportImportRoundTrip(t *testing.T) {
	leader := newRig(t)
	p := leader.web.Site("h").Page("/p")
	p.Set("<P>version one content.</P>\n")
	leader.fac.Remember(context.Background(), userA, "http://h/p")
	leader.web.Advance(time.Hour)
	p.Set("<P>version two content.</P>\n")
	leader.fac.Remember(context.Background(), userA, "http://h/p")
	leader.web.Site("h").Page("/q").Set("other page\n")
	leader.fac.Remember(context.Background(), userB, "http://h/q")

	var dump bytes.Buffer
	if err := leader.fac.Export(&dump); err != nil {
		t.Fatal(err)
	}

	follower := newRig(t)
	files, err := follower.fac.Import(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if files < 4 { // two archives + two user control files
		t.Fatalf("imported %d files", files)
	}
	// The replica serves the same history and user state.
	revs, seenA, err := follower.fac.History(userA, "http://h/p")
	if err != nil || len(revs) != 2 || !seenA["1.2"] {
		t.Fatalf("replica history: %d revs, seen %v, err %v", len(revs), seenA, err)
	}
	text, err := follower.fac.Checkout("http://h/p", "1.1")
	if err != nil || text != "<P>version one content.</P>\n" {
		t.Fatalf("replica checkout: (%q,%v)", text, err)
	}
	urls, _ := follower.fac.ArchivedURLs()
	if len(urls) != 2 {
		t.Fatalf("replica urls = %v", urls)
	}
}

func TestReplicateOverHTTP(t *testing.T) {
	leader := newRig(t)
	leader.web.Site("h").Page("/p").Set("replicated content\n")
	leader.fac.Remember(context.Background(), userA, "http://h/p")
	srv := NewServer(leader.fac)
	srv.KeepaliveInterval = 0
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	follower := newRig(t)
	files, err := follower.fac.ReplicateFrom(context.Background(), ts.URL, &webclient.HTTPTransport{})
	if err != nil || files == 0 {
		t.Fatalf("replicate: %d files, err %v", files, err)
	}
	text, err := follower.fac.Checkout("http://h/p", "")
	if err != nil || text != "replicated content\n" {
		t.Fatalf("replica head: (%q,%v)", text, err)
	}
}

// TestExportImportCarriesEntitySidecars checks the dump includes the
// §5.3 entity-checksum sidecars, so a replica can answer EntityChanges.
func TestExportImportCarriesEntitySidecars(t *testing.T) {
	leader := newRig(t)
	leader.fac.SetEntityTracking(EntityTrackingOptions{Enabled: true})
	site := leader.web.Site("h")
	site.Page("/i.gif").Set("image v1")
	site.Page("/p").Set(`<P>doc v1</P><IMG SRC="i.gif">`)
	if _, err := leader.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}
	leader.web.Advance(time.Hour)
	site.Page("/i.gif").Set("image v2")
	site.Page("/p").Set(`<P>doc v2</P><IMG SRC="i.gif">`)
	if _, err := leader.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}
	want, err := leader.fac.EntityChanges("http://h/p", "1.1", "1.2")
	if err != nil || len(want) != 1 || want[0].Kind != "modified" {
		t.Fatalf("leader entity changes = %+v, err %v", want, err)
	}

	var dump bytes.Buffer
	if err := leader.fac.Export(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), `"kind":"entities"`) {
		t.Fatal("dump carries no entity sidecars")
	}
	follower := newRig(t)
	if _, err := follower.fac.Import(bytes.NewReader(dump.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := follower.fac.EntityChanges("http://h/p", "1.1", "1.2")
	if err != nil || len(got) != 1 || got[0].URL != want[0].URL || got[0].Kind != "modified" {
		t.Fatalf("replica entity changes = %+v, err %v", got, err)
	}
	// User control files rode along too.
	if urls := follower.fac.UserURLs(userA); len(urls) != 1 || urls[0] != "http://h/p" {
		t.Fatalf("replica user urls = %v", urls)
	}
}

// TestImportIntoNonEmptyRepo checks an import merges with existing
// archives: same-name files take the dump's content, others survive.
func TestImportIntoNonEmptyRepo(t *testing.T) {
	leader := newRig(t)
	leader.web.Site("h").Page("/shared").Set("leader's shared content\n")
	leader.fac.Remember(context.Background(), userA, "http://h/shared")
	var dump bytes.Buffer
	if err := leader.fac.Export(&dump); err != nil {
		t.Fatal(err)
	}

	follower := newRig(t)
	follower.web.Site("h").Page("/shared").Set("follower's shared content\n")
	follower.fac.Remember(context.Background(), userB, "http://h/shared")
	follower.web.Site("h").Page("/own").Set("follower-only page\n")
	follower.fac.Remember(context.Background(), userB, "http://h/own")

	if _, err := follower.fac.Import(bytes.NewReader(dump.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The shared archive now holds the leader's history...
	text, err := follower.fac.Checkout("http://h/shared", "")
	if err != nil || text != "leader's shared content\n" {
		t.Fatalf("shared head after import = (%q,%v)", text, err)
	}
	// ...while the follower-only archive is untouched.
	text, err = follower.fac.Checkout("http://h/own", "")
	if err != nil || text != "follower-only page\n" {
		t.Fatalf("own head after import = (%q,%v)", text, err)
	}
	urls, _ := follower.fac.ArchivedURLs()
	if len(urls) != 2 {
		t.Fatalf("urls after merge import = %v", urls)
	}
}

// TestImportTruncatedStream checks a dump cut off mid-record reports a
// corrupt-stream error and the count of files installed before it.
func TestImportTruncatedStream(t *testing.T) {
	leader := newRig(t)
	leader.web.Site("h").Page("/p1").Set("first page body\n")
	leader.fac.Remember(context.Background(), userA, "http://h/p1")
	leader.web.Site("h").Page("/p2").Set("second page body\n")
	leader.fac.Remember(context.Background(), userA, "http://h/p2")
	var dump bytes.Buffer
	if err := leader.fac.Export(&dump); err != nil {
		t.Fatal(err)
	}
	full := dump.String()
	firstEnd := strings.Index(full, "\n") + 1
	if firstEnd <= 0 || firstEnd >= len(full) {
		t.Fatalf("unexpected dump shape:\n%s", full)
	}
	// Keep the first record whole and tear the second in half.
	torn := full[:firstEnd+(len(full)-firstEnd)/2]

	follower := newRig(t)
	files, err := follower.fac.Import(strings.NewReader(torn))
	if err == nil {
		t.Fatal("truncated import succeeded")
	}
	if !strings.Contains(err.Error(), "corrupt export stream") {
		t.Fatalf("truncated import error = %v", err)
	}
	if files != 1 {
		t.Fatalf("files before tear = %d, want 1", files)
	}
	// Truncating inside the very first record installs nothing.
	files, err = follower.fac.Import(strings.NewReader(full[:firstEnd/2]))
	if err == nil || files != 0 {
		t.Fatalf("tear in first record = (%d,%v)", files, err)
	}
}

// TestImportDeleteEntries checks the anti-entropy delete form removes
// the named files (and tolerates already-absent ones).
func TestImportDeleteEntries(t *testing.T) {
	r := newRig(t)
	r.web.Site("h").Page("/p").Set("to be deleted\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	name := archiveBase("http://h/p") + archiveSuffix
	del := `{"kind":"archive","name":"` + name + `","delete":true}` + "\n"
	if _, err := r.fac.Import(strings.NewReader(del)); err != nil {
		t.Fatal(err)
	}
	if urls, _ := r.fac.ArchivedURLs(); len(urls) != 0 {
		t.Fatalf("urls after delete = %v", urls)
	}
	// Deleting again is not an error (convergent repair).
	if _, err := r.fac.Import(strings.NewReader(del)); err != nil {
		t.Fatal(err)
	}
	// Unsafe delete names are still rejected.
	if _, err := r.fac.Import(strings.NewReader(`{"kind":"archive","name":"../x,v","delete":true}`)); err == nil {
		t.Fatal("unsafe delete name accepted")
	}
}

func TestImportRejectsUnsafeDumps(t *testing.T) {
	follower := newRig(t)
	cases := []string{
		`{"kind":"archive","name":"../escape,v","data":"x"}`,
		`{"kind":"weird","name":"a","data":"x"}`,
		`{"kind":"archive","name":"","data":"x"}`,
		`not json at all`,
	}
	for _, c := range cases {
		if _, err := follower.fac.Import(strings.NewReader(c)); err == nil {
			t.Errorf("Import(%q) succeeded", c)
		}
	}
}

func TestGateLimitsSimultaneousUsers(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(200)
	})
	gate := NewGate(slow, 2)
	ts := httptest.NewServer(gate)
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make(chan int, 4)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL)
			if err == nil {
				codes <- resp.StatusCode
				resp.Body.Close()
			}
		}()
	}
	<-started
	<-started
	// Both slots busy: the next request is turned away immediately.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third request code = %d, want 503", resp.StatusCode)
	}
	close(release)
	wg.Wait()
	close(codes)
	for c := range codes {
		if c != 200 {
			t.Errorf("admitted request code = %d", c)
		}
	}
	if gate.Rejected() != 1 {
		t.Errorf("rejected = %d", gate.Rejected())
	}
	// After the burst, capacity is available again.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestGateUnlimitedWhenZero(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	gate := NewGate(h, 0)
	ts := httptest.NewServer(gate)
	defer ts.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("unlimited gate: %v %d", err, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestServerMaxSimultaneousWired(t *testing.T) {
	r := newRig(t)
	srv := NewServer(r.fac)
	srv.KeepaliveInterval = 0
	srv.MaxSimultaneous = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// A single request passes through the gate.
	resp, err := http.Get(ts.URL + "/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("gated index: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// TestExportEndpoint checks /export streams a usable dump.
func TestExportEndpoint(t *testing.T) {
	r, ts := serverRig(t)
	r.web.Site("h").Page("/p").Set("x\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	code, body := get(t, ts.URL+"/export")
	if code != 200 || !strings.Contains(body, `"kind":"archive"`) {
		t.Fatalf("export: %d\n%s", code, body)
	}
	follower := newRig(t)
	if files, err := follower.fac.Import(strings.NewReader(body)); err != nil || files == 0 {
		t.Fatalf("import of endpoint dump: %d files, %v", files, err)
	}
}
