package snapshot

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sync"

	"aide/internal/fsatomic"
)

// This file implements the §4.2 security discussion: "In order to use
// the facility one must give an identifier (currently one's email
// address, which anyone can specify) ... By moving to an authenticated
// system ... The repository would associate impersonal account
// identifiers with a set of URLs and version numbers, and passwords
// would be needed to access one of these accounts. ... unless the
// account creation can be done anonymously."
//
// Accounts holds impersonal identifiers with salted password hashes.
// Account creation is anonymous: the service invents the identifier, so
// even the administrator cannot map accounts to people from the
// repository alone.

// ErrAuth is returned when credentials do not verify.
var ErrAuth = errors.New("snapshot: authentication failed")

// Accounts is the password store for an authenticated facility.
type Accounts struct {
	path string // "" = in-memory

	mu       sync.Mutex
	accounts map[string]accountRecord
}

type accountRecord struct {
	Salt string `json:"salt"`
	Hash string `json:"hash"`
}

// OpenAccounts loads (or initialises) the account store under dir. An
// empty dir keeps the store in memory.
func OpenAccounts(dir string) (*Accounts, error) {
	a := &Accounts{accounts: make(map[string]accountRecord)}
	if dir == "" {
		return a, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	a.path = filepath.Join(dir, "accounts.json")
	data, err := os.ReadFile(a.path)
	if err != nil {
		if os.IsNotExist(err) {
			return a, nil
		}
		return nil, err
	}
	if err := json.Unmarshal(data, &a.accounts); err != nil {
		return nil, fmt.Errorf("snapshot: corrupt account store: %v", err)
	}
	return a, nil
}

// CreateAnonymous mints a fresh impersonal account protected by
// password and returns its identifier.
func (a *Accounts) CreateAnonymous(password string) (string, error) {
	if password == "" {
		return "", fmt.Errorf("snapshot: empty password")
	}
	idBytes := make([]byte, 8)
	if _, err := rand.Read(idBytes); err != nil {
		return "", err
	}
	id := "acct-" + hex.EncodeToString(idBytes)
	return id, a.create(id, password)
}

// create installs an account record.
func (a *Accounts) create(id, password string) error {
	salt := make([]byte, 16)
	if _, err := rand.Read(salt); err != nil {
		return err
	}
	rec := accountRecord{
		Salt: hex.EncodeToString(salt),
		Hash: hashPassword(hex.EncodeToString(salt), password),
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, exists := a.accounts[id]; exists {
		return fmt.Errorf("snapshot: account %s already exists", id)
	}
	a.accounts[id] = rec
	return a.persistLocked()
}

// Verify checks credentials in constant time.
func (a *Accounts) Verify(id, password string) bool {
	a.mu.Lock()
	rec, ok := a.accounts[id]
	a.mu.Unlock()
	if !ok {
		// Burn comparable time for unknown accounts.
		subtle.ConstantTimeCompare([]byte(hashPassword("", password)), []byte(hashPassword("", "")))
		return false
	}
	want := rec.Hash
	got := hashPassword(rec.Salt, password)
	return subtle.ConstantTimeCompare([]byte(want), []byte(got)) == 1
}

// SetPassword rotates an account's password after verifying the old one.
func (a *Accounts) SetPassword(id, oldPassword, newPassword string) error {
	if !a.Verify(id, oldPassword) {
		return ErrAuth
	}
	if newPassword == "" {
		return fmt.Errorf("snapshot: empty password")
	}
	salt := make([]byte, 16)
	if _, err := rand.Read(salt); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.accounts[id] = accountRecord{
		Salt: hex.EncodeToString(salt),
		Hash: hashPassword(hex.EncodeToString(salt), newPassword),
	}
	return a.persistLocked()
}

// Len returns the number of accounts.
func (a *Accounts) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.accounts)
}

func (a *Accounts) persistLocked() error {
	if a.path == "" {
		return nil
	}
	data, err := json.MarshalIndent(a.accounts, "", "  ")
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(a.path, data, 0o600)
}

func hashPassword(saltHex, password string) string {
	h := sha256.Sum256([]byte(saltHex + "\x00" + password))
	return hex.EncodeToString(h[:])
}

// --- server enforcement --------------------------------------------------------

// authUser extracts and verifies the acting user from already-parsed
// query parameters (handlers parse once and share the values). Without
// an Accounts store the facility runs in the paper's original open mode
// (any identifier accepted); with one, user must be a valid account ID
// and password must verify.
func (s *Server) authUser(q url.Values) (string, error) {
	user := q.Get("user")
	if s.Accounts == nil {
		return user, nil
	}
	if user == "" || !s.Accounts.Verify(user, q.Get("password")) {
		return "", ErrAuth
	}
	return user, nil
}

// handleAccountNew creates an anonymous account: the response carries
// the minted identifier the user must use as `user` from now on.
func (s *Server) handleAccountNew(w http.ResponseWriter, r *http.Request) {
	if s.Accounts == nil {
		http.Error(w, "authentication not enabled", http.StatusNotImplemented)
		return
	}
	password := r.URL.Query().Get("password")
	id, err := s.Accounts.CreateAnonymous(password)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprintf(w, "<HTML><BODY>Your anonymous account is <CODE>%s</CODE>. "+
		"Pass it as the <CODE>user</CODE> parameter with your password.</BODY></HTML>\n", id)
}
