package snapshot

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aide/internal/simclock"
	"aide/internal/webclient"
)

// replicaPair is a sharded leader with one sharded replica behind a
// real HTTP server, plus the replicator wired between them.
type replicaPair struct {
	leader  *rig
	replica *Facility
	repl    *Replicator
	ts      *httptest.Server
}

func newReplicaPair(t *testing.T, shards int) *replicaPair {
	t.Helper()
	leader := shardedRig(t, shards)
	replica, err := NewSharded(t.TempDir(), shards, nil, simclock.New(time.Time{}))
	if err != nil {
		t.Fatal(err)
	}
	rsrv := NewServer(replica)
	rsrv.KeepaliveInterval = 0
	ts := httptest.NewServer(rsrv.Handler())
	t.Cleanup(ts.Close)
	repl := NewReplicator(leader.fac, webclient.New(&webclient.HTTPTransport{}), []string{ts.URL}, 42)
	return &replicaPair{leader: leader, replica: replica, repl: repl, ts: ts}
}

// assertConverged fails unless every shard's manifest hash matches
// between leader and replica.
func (p *replicaPair) assertConverged(t *testing.T) {
	t.Helper()
	for shard := 0; shard < p.leader.fac.Shards(); shard++ {
		lm, err := p.leader.fac.ShardManifest(shard)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := p.replica.ShardManifest(shard)
		if err != nil {
			t.Fatal(err)
		}
		if lm.Hash() != rm.Hash() {
			t.Fatalf("shard %d diverged: leader %s (%d files) vs replica %s (%d files)",
				shard, lm.Hash(), len(lm.Files), rm.Hash(), len(rm.Files))
		}
	}
}

func TestManifestDiff(t *testing.T) {
	leader := ShardManifest{Shard: 0, Files: map[string]FileState{
		"a,v": {Kind: KindArchive, Hash: "1111"},
		"b,v": {Kind: KindArchive, Hash: "2222"},
	}}
	replica := ShardManifest{Shard: 0, Files: map[string]FileState{
		"b,v": {Kind: KindArchive, Hash: "dead"}, // stale content
		"c,v": {Kind: KindArchive, Hash: "3333"}, // leader deleted it
	}}
	push, drop := leader.Diff(replica)
	if strings.Join(push, " ") != "a,v b,v" || strings.Join(drop, " ") != "c,v" {
		t.Fatalf("diff = push %v, drop %v", push, drop)
	}
	if leader.Hash() == replica.Hash() {
		t.Fatal("divergent manifests share a hash")
	}
}

func TestReplicaSyncPushesShardDeltas(t *testing.T) {
	p := newReplicaPair(t, 4)
	for i := 0; i < 16; i++ {
		u := fmt.Sprintf("http://h/repl-%d", i)
		if _, err := p.leader.fac.RememberContent(context.Background(), userA, u, fmt.Sprintf("repl body %d\n", i)); err != nil {
			t.Fatal(err)
		}
	}
	pushed, deleted, err := p.repl.SyncAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pushed == 0 || deleted != 0 {
		t.Fatalf("sync = pushed %d, deleted %d", pushed, deleted)
	}
	p.assertConverged(t)
	// Reads serve from the replica's copy.
	text, err := p.replica.Checkout("http://h/repl-3", "")
	if err != nil || text != "repl body 3\n" {
		t.Fatalf("replica checkout = (%q,%v)", text, err)
	}
	// A second sync is a no-op: every shard already matches.
	pushed, deleted, err = p.repl.SyncAll(context.Background())
	if err != nil || pushed != 0 || deleted != 0 {
		t.Fatalf("converged sync = (%d,%d,%v)", pushed, deleted, err)
	}
	st := p.repl.Status()
	if len(st) != 1 || st[0].Pushed == 0 || st[0].LastErr != "" || st[0].LagFiles != 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestAntiEntropyRepairsLostReplicaFile(t *testing.T) {
	p := newReplicaPair(t, 4)
	const victim = "http://h/victim"
	urls := []string{victim, "http://h/other-1", "http://h/other-2"}
	for _, u := range urls {
		if _, err := p.leader.fac.RememberContent(context.Background(), userA, u, "guarded content of "+u+"\n"); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := p.repl.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.assertConverged(t)

	// The replica silently loses an archive.
	name := archiveBase(victim) + archiveSuffix
	if err := p.replica.Store().Remove(KindArchive, name); err != nil {
		t.Fatal(err)
	}
	shard := p.leader.fac.ShardOf(victim)
	lm, _ := p.leader.fac.ShardManifest(shard)
	rm, _ := p.replica.ShardManifest(shard)
	if lm.Hash() == rm.Hash() {
		t.Fatal("deleting the archive did not change the replica's manifest hash")
	}

	// A full anti-entropy pass finds and repairs the divergence.
	repaired, err := p.repl.AntiEntropy(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Fatal("anti-entropy repaired nothing")
	}
	p.assertConverged(t)
	if text, err := p.replica.Checkout(victim, ""); err != nil || !strings.HasPrefix(text, "guarded content") {
		t.Fatalf("repaired checkout = (%q,%v)", text, err)
	}
}

func TestSyncPropagatesLeaderDeletes(t *testing.T) {
	p := newReplicaPair(t, 2)
	const doomed = "http://h/doomed"
	for _, u := range []string{doomed, "http://h/kept"} {
		if _, err := p.leader.fac.RememberContent(context.Background(), "", u, "delete test\n"); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := p.repl.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A deliberate deletion removes the file AND tombstones its ledger
	// entry; without the tombstone the sync treats the file as lost and
	// withholds the drop (see TestSyncWithholdsDropsForLostFiles).
	name := archiveBase(doomed) + archiveSuffix
	if err := p.leader.fac.Store().Remove(KindArchive, name); err != nil {
		t.Fatal(err)
	}
	p.leader.fac.dropChecksum(KindArchive, name)
	_, deleted, err := p.repl.SyncAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 1 {
		t.Fatalf("deleted = %d, want 1", deleted)
	}
	p.assertConverged(t)
	urls, _ := p.replica.ArchivedURLs()
	if len(urls) != 1 || urls[0] != "http://h/kept" {
		t.Fatalf("replica urls after delete = %v", urls)
	}
}

// TestSyncWithholdsDropsForLostFiles: a file that vanishes from the
// leader's disk with its ledger entry still live was lost, not deleted
// — the sync must NOT propagate the disappearance to the replica, whose
// copy is what the scrubber will restore the leader from.
func TestSyncWithholdsDropsForLostFiles(t *testing.T) {
	p := newReplicaPair(t, 2)
	const lost = "http://h/lost"
	if _, err := p.leader.fac.RememberContent(context.Background(), "", lost, "precious\n"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.repl.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	name := archiveBase(lost) + archiveSuffix
	if err := p.leader.fac.Store().Remove(KindArchive, name); err != nil {
		t.Fatal(err)
	}
	if _, deleted, err := p.repl.SyncAll(context.Background()); err != nil || deleted != 0 {
		t.Fatalf("sync after loss: deleted=%d err=%v, want the drop withheld", deleted, err)
	}
	if text, err := p.replica.Checkout(lost, ""); err != nil || text != "precious\n" {
		t.Fatalf("replica copy after leader loss = (%q, %v)", text, err)
	}
	// The scrubber then restores the leader from that surviving copy.
	p.leader.fac.Failover = p.repl
	var totals ScrubReport
	for shard := 0; shard < p.leader.fac.Shards(); shard++ {
		rep, err := p.leader.fac.ScrubShard(context.Background(), shard, 0)
		if err != nil {
			t.Fatal(err)
		}
		totals.add(rep)
	}
	if totals.Missing != 1 || totals.Repaired != 1 {
		t.Fatalf("scrub totals = %+v, want the lost file restored", totals)
	}
	if text, err := p.leader.fac.Checkout(lost, ""); err != nil || text != "precious\n" {
		t.Fatalf("leader read after restore = (%q, %v)", text, err)
	}
	p.assertConverged(t)
}

func TestPickReplicaSpreadsReads(t *testing.T) {
	r := NewReplicator(nil, nil, []string{"http://r1", "http://r2"}, 1)
	hits := map[string]int{}
	for i := 0; i < 50; i++ {
		hits[r.PickReplica(fmt.Sprintf("http://h/p%d", i))]++
	}
	if len(hits) != 2 {
		t.Fatalf("reads went to %v", hits)
	}
	// Stable per URL.
	if r.PickReplica("http://h/p1") != r.PickReplica("http://h/p1") {
		t.Fatal("replica choice not stable")
	}
	none := NewReplicator(nil, nil, nil, 1)
	if none.PickReplica("http://h/p") != "" {
		t.Fatal("no replicas should yield empty pick")
	}
}

func TestNewReplicatorNormalizesAddrs(t *testing.T) {
	r := NewReplicator(nil, nil, []string{"127.0.0.1:8290", " http://r2/ ", "", "https://r3"}, 1)
	want := []string{"http://127.0.0.1:8290", "http://r2", "https://r3"}
	if len(r.Replicas) != len(want) {
		t.Fatalf("replicas = %v, want %v", r.Replicas, want)
	}
	for i, w := range want {
		if r.Replicas[i] != w {
			t.Errorf("replica %d = %q, want %q", i, r.Replicas[i], w)
		}
	}
}

func TestDebugShardsEndpoint(t *testing.T) {
	p := newReplicaPair(t, 4)
	for i := 0; i < 8; i++ {
		u := fmt.Sprintf("http://h/dbg-%d", i)
		if _, err := p.leader.fac.RememberContent(context.Background(), "", u, "dbg\n"); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := p.repl.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(p.leader.fac)
	srv.KeepaliveInterval = 0
	srv.Replicator = p.repl
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body := get(t, ts.URL+"/debug/shards")
	if code != 200 {
		t.Fatalf("/debug/shards = %d\n%s", code, body)
	}
	var st ShardsStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad /debug/shards JSON: %v\n%s", err, body)
	}
	if st.Shards != 4 || len(st.PerShard) != 4 || len(st.Replicas) != 1 {
		t.Fatalf("shards status = %+v", st)
	}
	total := 0
	for _, row := range st.PerShard {
		total += row.Archives
	}
	if total != 8 {
		t.Fatalf("per-shard archives sum = %d", total)
	}
	// The shard protocol endpoints answer on the leader too.
	code, body = get(t, fmt.Sprintf("%s/shard/manifest?shard=%d", ts.URL, 0))
	if code != 200 || !strings.Contains(body, `"files"`) {
		t.Fatalf("/shard/manifest = %d\n%s", code, body)
	}
	if code, _ = get(t, ts.URL+"/shard/manifest?shard=99"); code != 400 {
		t.Fatalf("out-of-range shard = %d, want 400", code)
	}
	code, body = get(t, fmt.Sprintf("%s/shard/export?shard=%d", ts.URL, 0))
	if code != 200 {
		t.Fatalf("/shard/export = %d\n%s", code, body)
	}
}
