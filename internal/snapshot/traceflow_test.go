package snapshot

import (
	"context"
	"fmt"
	"testing"

	"aide/internal/obs"
)

// TestReplicaSyncCrossProcessTrace drives a real leader → replica sync
// over HTTP and checks the whole exchange is one trace: the replicator's
// spans on the client tracer, the replica server's http.server spans on
// its own tracer, stitched by the traceparent header the webclient sent
// over the socket — not by any shared in-process context.
func TestReplicaSyncCrossProcessTrace(t *testing.T) {
	// The replica's middleware records to DefaultTracer; start clean so
	// the ring cannot have rotated this test's spans out.
	obs.DefaultTracer.Reset()
	p := newReplicaPair(t, 2)
	for i := 0; i < 4; i++ {
		u := fmt.Sprintf("http://h/trace-%d", i)
		if _, err := p.leader.fac.RememberContent(context.Background(), userA, u, "traced\n"); err != nil {
			t.Fatal(err)
		}
	}

	// A distinctly-seeded client tracer, as a separate process would use.
	client := obs.NewTracer(64)
	client.Seed = 7
	ctx := obs.WithTracer(context.Background(), client)
	pushed, _, err := p.repl.SyncAll(ctx)
	if err != nil || pushed == 0 {
		t.Fatalf("sync = (%d,%v)", pushed, err)
	}

	// Client side: replica.sync roots the trace, replica.syncshard and
	// webclient.fetch nest under it.
	byID := map[uint64]obs.SpanRecord{}
	var trace string
	for _, sp := range client.Spans() {
		byID[sp.ID] = sp
		if sp.Name == "replica.sync" {
			if sp.Parent != 0 {
				t.Errorf("replica.sync is not a root span: parent %x", sp.Parent)
			}
			trace = sp.Trace
		}
	}
	if trace == "" {
		t.Fatal("no replica.sync span recorded on the client tracer")
	}
	for _, sp := range client.Spans() {
		if sp.Trace != trace {
			t.Errorf("client span %s left the trace: %s vs %s", sp.Name, sp.Trace, trace)
		}
	}

	// Server side: every http.server span for this trace parents under a
	// client webclient.fetch span, and walking parent links from it
	// reaches the root in ≥3 hops — the cross-process chain
	// http.server → webclient.fetch → replica.syncshard → replica.sync.
	serverSpans := 0
	for _, sp := range obs.DefaultTracer.Spans() {
		if sp.Name != "http.server" || sp.Trace != trace {
			continue
		}
		serverSpans++
		hops := 0
		cur, ok := byID[sp.Parent]
		if !ok || cur.Name != "webclient.fetch" {
			t.Fatalf("server span parent %x is not a client webclient.fetch span", sp.Parent)
		}
		for ok {
			hops++
			cur, ok = byID[cur.Parent]
		}
		if hops < 3 {
			t.Errorf("trace chain only %d hops deep from server span (route %s)", hops, sp.Attrs["route"])
		}
		if sp.Attrs["service"] != "snapshotd" {
			t.Errorf("server span service = %q", sp.Attrs["service"])
		}
	}
	if serverSpans < 2 {
		// At least a /shard/manifest fetch and a /shard/import per
		// touched shard crossed the wire.
		t.Fatalf("server spans in trace = %d, want >= 2", serverSpans)
	}
}
