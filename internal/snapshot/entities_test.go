package snapshot

import (
	"context"
	"strings"
	"testing"
	"time"
)

// pageWithImage is a page whose text references an image by URL.
const pageWithImage = `<HTML><BODY>
<P>Our logo: <IMG SRC="/images/logo.gif"> never changes its URL.</P>
<P>See also <A HREF="/other.html">the other page</A>.</P>
</BODY></HTML>
`

func enableEntities(r *rig, follow bool) {
	r.fac.SetEntityTracking(EntityTrackingOptions{Enabled: true, FollowAnchors: follow})
}

func TestEntityChangeDetectedBehindUnchangedURL(t *testing.T) {
	r := newRig(t)
	enableEntities(r, false)
	s := r.web.Site("h")
	s.Page("/p").Set(pageWithImage)
	s.Page("/images/logo.gif").Set("GIF89a-old-bytes")
	s.Page("/other.html").Set("other v1")

	if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}
	// The image content changes; the page text (and the IMG URL) do not.
	r.web.Advance(24 * time.Hour)
	s.Page("/images/logo.gif").Set("GIF89a-NEW-bytes")
	// The page must actually change for a second revision to exist; in
	// the paper's scenario the page text changes elsewhere while the
	// image URL stays put.
	s.Page("/p").Set(pageWithImage + "<P>An unrelated new paragraph.</P>\n")
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}

	changes, err := r.fac.EntityChanges("http://h/p", "1.1", "1.2")
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Fatalf("changes = %+v", changes)
	}
	c := changes[0]
	if c.URL != "http://h/images/logo.gif" || c.Kind != "modified" || c.OldSum == c.NewSum {
		t.Fatalf("change = %+v", c)
	}
	// HtmlDiff alone cannot see this: the page text's diff never
	// mentions the image bytes.
	d, err := r.fac.DiffRevs("http://h/p", "1.1", "1.2")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(d.HTML, "GIF89a") {
		t.Error("diff leaked entity bytes")
	}
}

func TestEntityAppearedAndVanished(t *testing.T) {
	r := newRig(t)
	enableEntities(r, false)
	s := r.web.Site("h")
	s.Page("/a.gif").Set("image A")
	s.Page("/b.gif").Set("image B")
	s.Page("/p").Set(`<P><IMG SRC="/a.gif"> here.</P>`)
	r.fac.Remember(context.Background(), userA, "http://h/p")
	r.web.Advance(time.Hour)
	s.Page("/p").Set(`<P><IMG SRC="/b.gif"> here instead.</P>`)
	r.fac.Remember(context.Background(), userA, "http://h/p")

	changes, err := r.fac.EntityChanges("http://h/p", "1.1", "1.2")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]string{}
	for _, c := range changes {
		kinds[c.URL] = c.Kind
	}
	if kinds["http://h/a.gif"] != "vanished" || kinds["http://h/b.gif"] != "appeared" {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestAnchorsFollowedOnlyWhenAsked(t *testing.T) {
	r := newRig(t)
	s := r.web.Site("h")
	s.Page("/p").Set(pageWithImage)
	s.Page("/images/logo.gif").Set("img")
	s.Page("/other.html").Set("other v1")

	// Without FollowAnchors, only the image is snapshotted.
	enableEntities(r, false)
	r.fac.Remember(context.Background(), userA, "http://h/p")
	snaps, err := r.fac.loadEntitySnapshots("http://h/p")
	if err != nil {
		t.Fatal(err)
	}
	sums := snaps["1.1"].Checksums
	if _, ok := sums["http://h/other.html"]; ok {
		t.Errorf("anchor target snapshotted without FollowAnchors: %v", sums)
	}
	if _, ok := sums["http://h/images/logo.gif"]; !ok {
		t.Errorf("image not snapshotted: %v", sums)
	}

	// With FollowAnchors, the anchor target is covered too.
	r2 := newRig(t)
	enableEntities(r2, true)
	s2 := r2.web.Site("h")
	s2.Page("/p").Set(pageWithImage)
	s2.Page("/images/logo.gif").Set("img")
	s2.Page("/other.html").Set("other v1")
	r2.fac.Remember(context.Background(), userA, "http://h/p")
	snaps2, _ := r2.fac.loadEntitySnapshots("http://h/p")
	if _, ok := snaps2["1.1"].Checksums["http://h/other.html"]; !ok {
		t.Errorf("anchor target missing with FollowAnchors: %v", snaps2["1.1"].Checksums)
	}
}

func TestUnreachableEntityRecordedUnknown(t *testing.T) {
	r := newRig(t)
	enableEntities(r, false)
	s := r.web.Site("h")
	s.Page("/p").Set(`<P><IMG SRC="/missing.gif"> broken.</P>`)
	// /missing.gif does not exist (404).
	if _, err := r.fac.Remember(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}
	snaps, _ := r.fac.loadEntitySnapshots("http://h/p")
	sum, ok := snaps["1.1"].Checksums["http://h/missing.gif"]
	if !ok || sum != "" {
		t.Errorf("missing entity recorded as %q ok=%v, want unknown", sum, ok)
	}
}

func TestMaxEntitiesBound(t *testing.T) {
	r := newRig(t)
	r.fac.SetEntityTracking(EntityTrackingOptions{Enabled: true, MaxEntities: 2})
	s := r.web.Site("h")
	var sb strings.Builder
	sb.WriteString("<P>")
	for _, img := range []string{"a", "b", "c", "d"} {
		s.Page("/" + img + ".gif").Set("img " + img)
		sb.WriteString(`<IMG SRC="/` + img + `.gif"> `)
	}
	sb.WriteString("pics.</P>")
	s.Page("/p").Set(sb.String())
	r.fac.Remember(context.Background(), userA, "http://h/p")
	snaps, _ := r.fac.loadEntitySnapshots("http://h/p")
	if n := len(snaps["1.1"].Checksums); n != 2 {
		t.Errorf("snapshotted %d entities, want 2 (bounded)", n)
	}
}

func TestEntityChangesWithoutTracking(t *testing.T) {
	r := newRig(t)
	r.web.Site("h").Page("/p").Set("x\n")
	r.fac.Remember(context.Background(), userA, "http://h/p")
	if _, err := r.fac.EntityChanges("http://h/p", "1.1", "1.1"); err == nil {
		t.Error("EntityChanges succeeded without tracking enabled")
	}
}

func TestNoOpCheckinSkipsEntitySnapshot(t *testing.T) {
	r := newRig(t)
	enableEntities(r, false)
	s := r.web.Site("h")
	s.Page("/img.gif").Set("v1")
	s.Page("/p").Set(`<P><IMG SRC="/img.gif"> x.</P>`)
	r.fac.Remember(context.Background(), userA, "http://h/p")
	r.web.ResetRequestCounts()
	// Unchanged page: no new revision, and no entity fetches either.
	r.fac.Remember(context.Background(), userB, "http://h/p")
	if _, g := r.web.TotalRequests(); g > 1 { // one GET for the page itself
		t.Errorf("no-op checkin still checksummed entities: %d GETs", g)
	}
}
