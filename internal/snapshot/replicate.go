package snapshot

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"aide/internal/fsatomic"
	"aide/internal/obs"
	"aide/internal/webclient"
)

// This file implements the rest of §4.2's resource-utilization remedies:
// "The facility could also impose a limit on the number of simultaneous
// users, or replicate itself among multiple computers, as many W3
// services do."
//
//   - Gate wraps the HTTP handler with a concurrency limit: beyond
//     MaxSimultaneous requests, clients get 503 Service Unavailable
//     immediately rather than piling onto a saturated machine.
//
//   - Export/Import move the whole repository (archives, user control
//     files, entity sidecars) as one portable JSON dump, and
//     ReplicateFrom pulls a leader's export over HTTP — the mechanism a
//     replica farm would use.

// Gate limits simultaneous requests to the wrapped handler. Shed
// requests get 503 plus a Retry-After hint, which webclient's
// RetryPolicy honours — overload turns into paced backoff instead of a
// retry storm.
type Gate struct {
	handler http.Handler
	slots   chan struct{}

	// RetryAfter is the pause advertised on shed requests; DefaultRetryAfter
	// when zero.
	RetryAfter time.Duration
	// Metrics receives the shed/admitted counters and the in-flight
	// gauge; obs.Default when nil.
	Metrics *obs.Registry

	mu       sync.Mutex
	rejected int
}

// DefaultRetryAfter is the Retry-After hint shed requests carry when
// the gate has no explicit setting.
const DefaultRetryAfter = 2 * time.Second

// NewGate wraps handler with a limit of max simultaneous requests
// (max <= 0 means unlimited).
func NewGate(handler http.Handler, max int) *Gate {
	g := &Gate{handler: handler}
	if max > 0 {
		g.slots = make(chan struct{}, max)
	}
	return g
}

// metrics returns the gate's registry (obs.Default when unset).
func (g *Gate) metrics() *obs.Registry {
	if g.Metrics != nil {
		return g.Metrics
	}
	return obs.Default
}

// ServeHTTP implements http.Handler.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.slots != nil {
		select {
		case g.slots <- struct{}{}:
			g.metrics().Gauge("gate.inflight").Add(1)
			defer func() {
				g.metrics().Gauge("gate.inflight").Add(-1)
				<-g.slots
			}()
		default:
			g.mu.Lock()
			g.rejected++
			g.mu.Unlock()
			g.metrics().Counter("gate.shed").Inc()
			ra := g.RetryAfter
			if ra <= 0 {
				ra = DefaultRetryAfter
			}
			secs := int(ra / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, "facility busy; try again shortly", http.StatusServiceUnavailable)
			return
		}
	}
	g.metrics().Counter("gate.admitted").Inc()
	g.handler.ServeHTTP(w, r)
}

// Rejected reports how many requests the gate turned away.
func (g *Gate) Rejected() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rejected
}

// InFlight reports how many requests currently hold a slot.
func (g *Gate) InFlight() int {
	if g.slots == nil {
		return 0
	}
	return len(g.slots)
}

// Capacity reports the gate's slot limit (0 = unlimited).
func (g *Gate) Capacity() int {
	if g.slots == nil {
		return 0
	}
	return cap(g.slots)
}

// dumpFile is one repository file in an export.
type dumpFile struct {
	// Kind is "archive", "user", or "entities".
	Kind string `json:"kind"`
	// Name is the file's base name (already URL-escaped on disk).
	Name string `json:"name"`
	// Data is the raw file content.
	Data string `json:"data"`
}

// Export writes the whole repository as a JSON stream of files. The
// snapshot is not atomic across files; replicate from a quiesced leader
// or tolerate a torn tail (each file itself is written atomically).
func (f *Facility) Export(w io.Writer) error {
	enc := json.NewEncoder(w)
	emit := func(kind, dir string) error {
		entries, err := os.ReadDir(filepath.Join(f.root, dir))
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(f.root, dir, e.Name()))
			if err != nil {
				return err
			}
			k := kind
			if kind == "archive" && strings.HasSuffix(e.Name(), ",entities.json") {
				k = "entities"
			}
			if err := enc.Encode(dumpFile{Kind: k, Name: e.Name(), Data: string(data)}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("archive", "repo"); err != nil {
		return err
	}
	return emit("user", "users")
}

// Import installs an Export stream into this facility, overwriting any
// files with the same names. Unknown kinds are rejected.
func (f *Facility) Import(r io.Reader) (files int, err error) {
	dec := json.NewDecoder(r)
	for {
		var df dumpFile
		if err := dec.Decode(&df); err == io.EOF {
			return files, nil
		} else if err != nil {
			return files, fmt.Errorf("snapshot: corrupt export stream: %v", err)
		}
		var dir string
		switch df.Kind {
		case "archive", "entities":
			dir = "repo"
		case "user":
			dir = "users"
		default:
			return files, fmt.Errorf("snapshot: unknown export kind %q", df.Kind)
		}
		if df.Name == "" || strings.ContainsAny(df.Name, "/\\") {
			return files, fmt.Errorf("snapshot: unsafe export name %q", df.Name)
		}
		path := filepath.Join(f.root, dir, df.Name)
		if err := fsatomic.WriteFile(path, []byte(df.Data), 0o644); err != nil {
			return files, err
		}
		files++
	}
}

// ReplicateFrom pulls a leader facility's /export over the given
// transport under ctx and imports it, returning the number of files
// installed.
func (f *Facility) ReplicateFrom(ctx context.Context, leaderBase string, transport webclient.Transport) (int, error) {
	client := webclient.New(transport)
	info, err := client.Get(ctx, strings.TrimSuffix(leaderBase, "/")+"/export")
	if err != nil {
		return 0, fmt.Errorf("snapshot: replicating from %s: %w", leaderBase, err)
	}
	if kind := webclient.Classify(info.Status, nil); kind != webclient.OK {
		return 0, fmt.Errorf("snapshot: replicating from %s: HTTP %d", leaderBase, info.Status)
	}
	return f.Import(strings.NewReader(info.Body))
}

// handleExport streams the repository dump (§4.2 replication).
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-aide-export")
	if err := s.Facility.Export(w); err != nil {
		// Headers are out; report in-band.
		fmt.Fprintf(w, "\nEXPORT ERROR: %s\n", err)
	}
}
