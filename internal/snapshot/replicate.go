package snapshot

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"aide/internal/obs"
	"aide/internal/webclient"
)

// This file implements the rest of §4.2's resource-utilization remedies:
// "The facility could also impose a limit on the number of simultaneous
// users, or replicate itself among multiple computers, as many W3
// services do."
//
//   - Gate wraps the HTTP handler with a concurrency limit: beyond
//     MaxSimultaneous requests, clients get 503 Service Unavailable
//     immediately rather than piling onto a saturated machine.
//
//   - Export/Import move the whole repository (archives, user control
//     files, entity sidecars) as one portable JSON dump, and
//     ReplicateFrom pulls a leader's export over HTTP — the mechanism a
//     replica farm would use.

// Gate limits simultaneous requests to the wrapped handler. Shed
// requests get 503 plus a Retry-After hint, which webclient's
// RetryPolicy honours — overload turns into paced backoff instead of a
// retry storm.
type Gate struct {
	handler http.Handler
	slots   chan struct{}

	// RetryAfter is the pause advertised on shed requests; DefaultRetryAfter
	// when zero.
	RetryAfter time.Duration
	// Metrics receives the shed/admitted counters and the in-flight
	// gauge; obs.Default when nil.
	Metrics *obs.Registry

	mu       sync.Mutex
	rejected int
}

// DefaultRetryAfter is the Retry-After hint shed requests carry when
// the gate has no explicit setting.
const DefaultRetryAfter = 2 * time.Second

// NewGate wraps handler with a limit of max simultaneous requests
// (max <= 0 means unlimited).
func NewGate(handler http.Handler, max int) *Gate {
	g := &Gate{handler: handler}
	if max > 0 {
		g.slots = make(chan struct{}, max)
	}
	return g
}

// metrics returns the gate's registry (obs.Default when unset).
func (g *Gate) metrics() *obs.Registry {
	if g.Metrics != nil {
		return g.Metrics
	}
	return obs.Default
}

// ServeHTTP implements http.Handler.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.slots != nil {
		select {
		case g.slots <- struct{}{}:
			g.metrics().Gauge("gate.inflight").Add(1)
			defer func() {
				g.metrics().Gauge("gate.inflight").Add(-1)
				<-g.slots
			}()
		default:
			g.mu.Lock()
			g.rejected++
			g.mu.Unlock()
			g.metrics().Counter("gate.shed").Inc()
			ra := g.RetryAfter
			if ra <= 0 {
				ra = DefaultRetryAfter
			}
			secs := int(ra / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, "facility busy; try again shortly", http.StatusServiceUnavailable)
			return
		}
	}
	g.metrics().Counter("gate.admitted").Inc()
	g.handler.ServeHTTP(w, r)
}

// Rejected reports how many requests the gate turned away.
func (g *Gate) Rejected() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rejected
}

// InFlight reports how many requests currently hold a slot.
func (g *Gate) InFlight() int {
	if g.slots == nil {
		return 0
	}
	return len(g.slots)
}

// Capacity reports the gate's slot limit (0 = unlimited).
func (g *Gate) Capacity() int {
	if g.slots == nil {
		return 0
	}
	return cap(g.slots)
}

// dumpFile is one repository file in an export or shard-delta stream.
type dumpFile struct {
	// Kind is "archive", "entities", "url", or "user".
	Kind string `json:"kind"`
	// Name is the file's base name on disk.
	Name string `json:"name"`
	// Data is the raw file content (empty for deletes).
	Data string `json:"data,omitempty"`
	// Delete marks an anti-entropy removal: the named file exists on the
	// receiver but not on the leader, and must go.
	Delete bool `json:"delete,omitempty"`
}

// Export writes the whole repository as a JSON stream of files, in an
// order independent of the store layout (a sharded store exports
// byte-identically to the flat equivalent). The snapshot is not atomic
// across files; replicate from a quiesced leader or tolerate a torn
// tail (each file itself is written atomically).
func (f *Facility) Export(w io.Writer) error {
	files, err := f.store.Files()
	if err != nil {
		return err
	}
	return f.exportFiles(w, files)
}

// ExportShard writes one shard's files as a dump stream. A non-nil
// names set restricts the dump to those base names — the delta form the
// replicator pushes after a manifest comparison.
func (f *Facility) ExportShard(w io.Writer, shard int, names map[string]bool) error {
	files, err := f.store.ShardFiles(shard)
	if err != nil {
		return err
	}
	if names != nil {
		kept := files[:0]
		for _, sf := range files {
			if names[sf.Name] {
				kept = append(kept, sf)
			}
		}
		files = kept
	}
	return f.exportFiles(w, files)
}

func (f *Facility) exportFiles(w io.Writer, files []StoredFile) error {
	enc := json.NewEncoder(w)
	for _, sf := range files {
		data, err := os.ReadFile(sf.Path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // deleted between listing and read
			}
			return err
		}
		if f.suspectContent(sf, data) {
			f.metrics().Counter("replica.push.suspect").Inc()
			continue
		}
		if err := enc.Encode(dumpFile{Kind: sf.Kind, Name: sf.Name, Data: string(data)}); err != nil {
			return err
		}
	}
	return nil
}

// suspectContent reports whether a file's bytes contradict its checksum
// ledger entry — the signature of bit rot the scrubber has not repaired
// yet. Suspect files are withheld from every export stream: the leader's
// manifest diff would otherwise push rotted bytes over the replicas'
// good copies within one sync cycle (the manifest hashes content, so rot
// looks like a legitimate update), destroying the very copies the
// scrubber repairs from. Withholding is cheap to be wrong about: a racing
// legitimate write just lags one sync cycle, and the file keeps showing
// in lag_files until the scrubber settles it.
func (f *Facility) suspectContent(sf StoredFile, data []byte) bool {
	if f.ledger == nil {
		return false
	}
	e, ok := f.ledger.get(sf.Shard, sf.Kind, sf.Name)
	if !ok {
		return false
	}
	return e.Hash != contentHash(data)
}

// suspectMissing reports whether a file absent from the leader's disk
// is missing by accident rather than deleted on purpose: every
// legitimate removal path tombstones the ledger, so a surviving live
// entry means the file was lost. Such names are withheld from the drop
// half of the sync delta — the replica's copy is the scrubber's repair
// source, not garbage to propagate the loss to.
func (f *Facility) suspectMissing(kind, name string) bool {
	if f.ledger == nil {
		return false
	}
	shard, err := f.store.ShardOfFile(kind, name)
	if err != nil {
		return false
	}
	_, ok := f.ledger.get(shard, kind, name)
	return ok
}

// Import installs an Export (or shard-delta) stream into this facility,
// overwriting files with the same names and honouring delete entries.
// The store decides where each file lands, so a dump taken from a flat
// leader imports correctly into a sharded replica and vice versa.
// Unknown kinds and unsafe names are rejected.
func (f *Facility) Import(r io.Reader) (files int, err error) {
	archives := false
	defer func() {
		if archives {
			// Imported archives may differ from whatever local copies the
			// cached diffs rendered from; the stream names files, not
			// URLs, so drop the whole cache.
			f.invalidateDiffCacheAll()
		}
	}()
	dec := json.NewDecoder(r)
	for {
		var df dumpFile
		if err := dec.Decode(&df); err == io.EOF {
			return files, nil
		} else if err != nil {
			return files, fmt.Errorf("snapshot: corrupt export stream: %v", err)
		}
		if df.Kind == KindArchive {
			archives = true
		}
		if df.Delete {
			if err := f.store.Remove(df.Kind, df.Name); err != nil {
				return files, err
			}
			f.dropChecksum(df.Kind, df.Name)
			files++
			continue
		}
		path, err := f.store.Place(df.Kind, df.Name)
		if err != nil {
			return files, err
		}
		if err := f.writeStored(path, []byte(df.Data)); err != nil {
			return files, err
		}
		f.recordChecksum(df.Kind, df.Name, []byte(df.Data))
		files++
	}
}

// ReplicateFrom pulls a leader facility's /export over the given
// transport under ctx and imports it, returning the number of files
// installed.
func (f *Facility) ReplicateFrom(ctx context.Context, leaderBase string, transport webclient.Transport) (int, error) {
	client := webclient.New(transport)
	info, err := client.Get(ctx, strings.TrimSuffix(leaderBase, "/")+"/export")
	if err != nil {
		return 0, fmt.Errorf("snapshot: replicating from %s: %w", leaderBase, err)
	}
	if kind := webclient.Classify(info.Status, nil); kind != webclient.OK {
		return 0, fmt.Errorf("snapshot: replicating from %s: HTTP %d", leaderBase, info.Status)
	}
	return f.Import(strings.NewReader(info.Body))
}

// handleExport streams the repository dump (§4.2 replication).
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", exportContentType)
	if err := s.Facility.Export(w); err != nil {
		// Headers are out; report in-band.
		fmt.Fprintf(w, "\nEXPORT ERROR: %s\n", err)
	}
}

// shardParam parses the shard query parameter and bounds-checks it.
func (s *Server) shardParam(r *http.Request) (int, error) {
	v := r.URL.Query().Get("shard")
	if v == "" {
		return 0, fmt.Errorf("missing shard parameter")
	}
	shard, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad shard parameter %q", v)
	}
	if shard < 0 || shard >= s.Facility.Shards() {
		return 0, fmt.Errorf("no shard %d (store has %d)", shard, s.Facility.Shards())
	}
	return shard, nil
}

// handleShardManifest serves one shard's manifest for replica
// comparison (the anti-entropy protocol's cheap first round trip).
func (s *Server) handleShardManifest(w http.ResponseWriter, r *http.Request) {
	shard, err := s.shardParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, err := s.Facility.ShardManifest(shard)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m)
}

// handleShardExport streams one shard's dump. Repeated name parameters
// restrict it to exactly those base names — the form failover repair
// uses, safe for names containing commas (every archive does: "x,v").
// The legacy names parameter (comma-separated) is still honoured.
func (s *Server) handleShardExport(w http.ResponseWriter, r *http.Request) {
	shard, err := s.shardParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var names map[string]bool
	if vs := r.URL.Query()["name"]; len(vs) > 0 {
		names = make(map[string]bool)
		for _, n := range vs {
			names[n] = true
		}
	}
	if v := r.URL.Query().Get("names"); v != "" {
		if names == nil {
			names = make(map[string]bool)
		}
		for _, n := range strings.Split(v, ",") {
			names[n] = true
		}
	}
	w.Header().Set("Content-Type", exportContentType)
	if err := s.Facility.ExportShard(w, shard, names); err != nil {
		fmt.Fprintf(w, "\nEXPORT ERROR: %s\n", err)
	}
}

// handleShardImport installs a pushed delta stream — the replica side
// of the leader's fan-out.
func (s *Server) handleShardImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	n, err := s.Facility.Import(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.Facility.metrics().Counter("replica.import.files").Add(int64(n))
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"files\": %d}\n", n)
}

// ShardsStatus is the /debug/shards payload: the store's partitioning
// and each replica's replication health.
type ShardsStatus struct {
	// Shards is the store's shard count (1 = flat).
	Shards int `json:"shards"`
	// PerShard lists each shard's archive population.
	PerShard []ShardStat `json:"per_shard"`
	// Replicas reports replication health when a replicator is wired.
	Replicas []ReplicaStatus `json:"replicas,omitempty"`
	// Scrub reports checksum-scrub progress when a scrubber is wired.
	Scrub *ScrubStatus `json:"scrub,omitempty"`
}

// handleDebugShards reports per-shard archive counts/bytes and replica
// lag.
func (s *Server) handleDebugShards(w http.ResponseWriter, r *http.Request) {
	stats, err := s.Facility.ShardStats()
	if err != nil {
		httpError(w, err)
		return
	}
	st := ShardsStatus{Shards: s.Facility.Shards(), PerShard: stats}
	if s.Replicator != nil {
		st.Replicas = s.Replicator.Status()
	}
	if s.Scrubber != nil {
		ss := s.Scrubber.Status()
		st.Scrub = &ss
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}
