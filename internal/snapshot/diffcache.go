package snapshot

// The rendered-diff cache and its pre-warmer. §4.2 observes that "many
// users who have seen versions N and N+1 of a page could retrieve
// HtmlDiff(pageN, pageN+1) with a single invocation"; at serving QPS
// the stronger version holds: nobody should wait for that invocation at
// all. Entries are keyed by (url, revA, revB) and held in a
// byte-bounded LRU; when a check-in lands a new revision, the facility
// invalidates the page's entries (any archive rewrite — check-in,
// prune, failover repair, scrub, import — may change what a revision
// pair renders to) and asynchronously re-renders the hot pairs: latest
// vs previous, and latest vs the checking-in user's last-viewed
// baseline.
//
// Invalidation and pre-warming race by construction: a pre-warm task
// reads the archive, renders, and only then inserts. Each URL carries a
// generation number, bumped by every invalidation; a task captures the
// generation before it reads and the insert is dropped if the
// generation moved, so a check-in arriving mid-render can never leave a
// stale entry behind (diffcache.prewarm.stale counts the drops).

import (
	"container/list"
	"fmt"
	"io"
	"strings"
	"sync"

	"aide/internal/htmldiff"
	"aide/internal/rcs"
)

// diffKey identifies one cached rendering: the page and the compared
// revision pair.
type diffKey struct {
	url            string
	oldRev, newRev string
}

// cacheGen is a cache-coherence stamp: the global epoch (bumped by
// whole-cache invalidations) and the per-URL generation (bumped by
// per-page invalidations). An insert guarded by a stale stamp is
// silently dropped.
type cacheGen struct {
	epoch uint64
	url   uint64
}

// diffEntry is one LRU node's payload.
type diffEntry struct {
	key  diffKey
	html string
}

// entryOverhead approximates the bookkeeping bytes an entry costs
// beyond its HTML: map and list nodes, the key strings.
const entryOverhead = 128

// diffCache is the byte-bounded LRU of rendered HtmlDiff pages.
type diffCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List // *diffEntry; front = most recently used
	entries  map[diffKey]*list.Element
	gens     map[string]uint64
	epoch    uint64
	hits     int
}

func newDiffCache(maxBytes int64) *diffCache {
	return &diffCache{
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  map[diffKey]*list.Element{},
		gens:     map[string]uint64{},
	}
}

// entrySize is what one entry charges against the byte bound.
func entrySize(key diffKey, html string) int64 {
	return int64(len(html) + len(key.url) + len(key.oldRev) + len(key.newRev) + entryOverhead)
}

// setMax resizes the byte bound and evicts down to it.
func (c *diffCache) setMax(maxBytes int64) (evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = maxBytes
	return c.evictLocked()
}

// get returns the cached rendering and promotes it to most recent.
func (c *diffCache) get(key diffKey) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return "", false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*diffEntry).html, true
}

// contains reports presence without promoting or counting a hit — the
// pre-warmer's "already cached?" probe.
func (c *diffCache) contains(key diffKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// gen returns the key's current coherence stamp.
func (c *diffCache) gen(url string) cacheGen {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheGen{epoch: c.epoch, url: c.gens[url]}
}

// putIfCurrent inserts html under key unless the URL was invalidated
// after g was captured. An entry too large for a quarter of the cache
// is not stored at all — one giant page must not wipe the working set.
func (c *diffCache) putIfCurrent(key diffKey, html string, g cacheGen) (stored bool, evicted int) {
	size := entrySize(key, html)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != g.epoch || c.gens[key.url] != g.url {
		return false, 0
	}
	if c.maxBytes > 0 && size > c.maxBytes/4 {
		return false, 0
	}
	if el, ok := c.entries[key]; ok {
		// Same pair re-rendered (e.g. on-demand miss racing a pre-warm):
		// keep the newer bytes.
		c.bytes += size - entrySize(key, el.Value.(*diffEntry).html)
		el.Value.(*diffEntry).html = html
		c.lru.MoveToFront(el)
		return true, c.evictLocked()
	}
	c.entries[key] = c.lru.PushFront(&diffEntry{key: key, html: html})
	c.bytes += size
	return true, c.evictLocked()
}

// evictLocked drops least-recently-used entries until the byte bound
// holds. Caller holds mu.
func (c *diffCache) evictLocked() (evicted int) {
	for c.bytes > c.maxBytes && c.lru.Len() > 0 {
		el := c.lru.Back()
		e := el.Value.(*diffEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= entrySize(e.key, e.html)
		evicted++
	}
	return evicted
}

// invalidateURL drops every entry for url, bumps its generation, and
// returns the new stamp — the one a pre-warm scheduled by the same
// rewrite must capture.
func (c *diffCache) invalidateURL(url string) (removed int, g cacheGen) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[url]++
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*diffEntry)
		if e.key.url == url {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.bytes -= entrySize(e.key, e.html)
			removed++
		}
		el = next
	}
	return removed, cacheGen{epoch: c.epoch, url: c.gens[url]}
}

// invalidateAll empties the cache and bumps the epoch — the coarse
// hammer for rewrites identified by file rather than URL (scrub
// repairs, shard imports).
func (c *diffCache) invalidateAll() (removed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed = c.lru.Len()
	c.lru.Init()
	c.entries = map[diffKey]*list.Element{}
	c.bytes = 0
	c.epoch++
	return removed
}

// stats reports the cache's occupancy.
func (c *diffCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len(), c.bytes
}

// --- facility integration ------------------------------------------------------

// DiffCacheHits reports how many diff requests were served from cache.
func (f *Facility) DiffCacheHits() int {
	f.diffCache.mu.Lock()
	defer f.diffCache.mu.Unlock()
	return f.diffCache.hits
}

// SetDiffCacheMax resizes the rendered-diff cache's byte bound
// (n <= 0 restores DefaultDiffCacheMax). Excess entries are evicted
// immediately.
func (f *Facility) SetDiffCacheMax(n int64) {
	if n <= 0 {
		n = DefaultDiffCacheMax
	}
	f.noteDiffCacheChange(f.diffCache.setMax(n))
}

// noteDiffCacheChange folds an eviction count and the cache's occupancy
// into the metrics registry.
func (f *Facility) noteDiffCacheChange(evicted int) {
	m := f.metrics()
	if evicted > 0 {
		m.Counter("snapshot.diffcache.evictions").Add(int64(evicted))
	}
	entries, bytes := f.diffCache.stats()
	m.Gauge("snapshot.diffcache.size").Set(int64(entries))
	m.Gauge("snapshot.diffcache.bytes").Set(bytes)
}

// invalidateDiffCache drops a page's cached renderings after an archive
// rewrite and returns the coherence stamp for any pre-warm the rewrite
// schedules.
func (f *Facility) invalidateDiffCache(pageURL string) cacheGen {
	removed, g := f.diffCache.invalidateURL(pageURL)
	if removed > 0 {
		f.metrics().Counter("snapshot.diffcache.invalidated").Add(int64(removed))
		f.noteDiffCacheChange(0)
	}
	return g
}

// invalidateDiffCacheAll drops everything — for rewrites that know the
// file touched but not the URL (scrub repair, import).
func (f *Facility) invalidateDiffCacheAll() {
	if removed := f.diffCache.invalidateAll(); removed > 0 {
		f.metrics().Counter("snapshot.diffcache.invalidated").Add(int64(removed))
		f.noteDiffCacheChange(0)
	}
}

// --- pre-warming ---------------------------------------------------------------

// DefaultPrewarmWorkers is the pre-warm pool size snapshotd's -prewarm
// flag defaults to.
const DefaultPrewarmWorkers = 2

// EnablePrewarm starts the facility's pre-warm pool: after every
// changed check-in, up to workers goroutines render the page's hot
// revision pairs into the diff cache so the first viewer of a new
// revision gets a cache hit. workers <= 0 disables pre-warming.
func (f *Facility) EnablePrewarm(workers int) {
	f.prewarmMu.Lock()
	defer f.prewarmMu.Unlock()
	if workers <= 0 {
		f.prewarmSem = nil
		return
	}
	f.prewarmSem = make(chan struct{}, workers)
}

// WaitPrewarm blocks until every scheduled pre-warm task has finished —
// the deterministic settling point for tests and shutdown.
func (f *Facility) WaitPrewarm() {
	f.prewarmWG.Wait()
}

// schedulePrewarm queues asynchronous renders of the hot pairs for a
// page that just checked in newRev: (prevRev, newRev) and
// (baselineRev, newRev). g must be the stamp returned by the check-in's
// invalidation, so any later rewrite kills the insert.
func (f *Facility) schedulePrewarm(pageURL, newRev, prevRev, baselineRev string, g cacheGen) {
	f.prewarmMu.Lock()
	sem := f.prewarmSem
	f.prewarmMu.Unlock()
	if sem == nil || newRev == "" {
		return
	}
	var pairs [][2]string
	if prevRev != "" && prevRev != newRev {
		pairs = append(pairs, [2]string{prevRev, newRev})
	}
	if baselineRev != "" && baselineRev != newRev && baselineRev != prevRev {
		pairs = append(pairs, [2]string{baselineRev, newRev})
	}
	m := f.metrics()
	for _, p := range pairs {
		key := diffKey{url: pageURL, oldRev: p[0], newRev: p[1]}
		m.Counter("diffcache.prewarm.scheduled").Inc()
		f.prewarmWG.Add(1)
		go func() {
			defer f.prewarmWG.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f.prewarmPair(key, g)
		}()
	}
}

// prewarmPair renders one revision pair into the cache unless someone
// beat it there or an invalidation overtook it.
func (f *Facility) prewarmPair(key diffKey, g cacheGen) {
	m := f.metrics()
	if f.diffCache.contains(key) {
		m.Counter("diffcache.prewarm.skipped").Inc()
		return
	}
	prep, err := f.prepareDiff(key.url, key.oldRev, key.newRev)
	if err != nil {
		m.Counter("diffcache.prewarm.errors").Inc()
		return
	}
	var sb strings.Builder
	prep.RenderTo(&sb)
	if hook := f.prewarmHook; hook != nil {
		hook() // test seam: a rewrite arriving mid-prewarm
	}
	stored, evicted := f.diffCache.putIfCurrent(key, sb.String(), g)
	f.noteDiffCacheChange(evicted)
	if stored {
		m.Counter("diffcache.prewarm.computed").Inc()
	} else {
		m.Counter("diffcache.prewarm.stale").Inc()
	}
}

// prepareDiff checks out both revisions and aligns them — the shared
// expensive half of the on-demand and pre-warm paths. Rendering is the
// caller's business: on-demand streams it, pre-warm buffers it.
func (f *Facility) prepareDiff(pageURL, oldRev, newRev string) (*htmldiff.Prepared, error) {
	var oldText, newText string
	err := f.readArchive(pageURL, func(a *rcs.Archive) error {
		var cerr error
		if oldText, cerr = a.Checkout(oldRev); cerr != nil {
			return cerr
		}
		newText, cerr = a.Checkout(newRev)
		return cerr
	})
	if err != nil {
		return nil, err
	}
	opt := f.DiffOptions
	opt.Title = fmt.Sprintf("%s (%s vs %s)", pageURL, oldRev, newRev)
	start := f.clock.Now()
	prep := htmldiff.Prepare(oldText, newText, opt)
	f.metrics().Histogram("snapshot.diff.duration", nil).ObserveDuration(f.clock.Now().Sub(start))
	return prep, nil
}

// DiffStream is a prepared diff response: the comparison metadata plus
// a Render function that writes the HTML to w exactly once. For cache
// hits Render streams the stored bytes in bounded chunks; for misses it
// streams a fresh rendering and, if the client accepted all of it,
// inserts the result into the cache (guarded by the coherence stamp
// captured before the archive was read).
type DiffStream struct {
	// DiffResult carries OldRev/NewRev/Stats/Cached; HTML stays empty —
	// the bytes go to Render's writer.
	DiffResult
	// Render writes the page. It returns the first write error; the
	// comparison itself cannot fail once the stream is handed out.
	Render func(w io.Writer) error
}

// DiffRevsStream is DiffRevs' streaming face: the §4.2-cached
// comparison of two archived revisions, without materialising the page
// on the serving path.
func (f *Facility) DiffRevsStream(pageURL, oldRev, newRev string) (*DiffStream, error) {
	key := diffKey{url: pageURL, oldRev: oldRev, newRev: newRev}
	m := f.metrics()
	if html, ok := f.diffCache.get(key); ok {
		m.Counter("snapshot.diffcache.hits").Inc()
		return &DiffStream{
			DiffResult: DiffResult{OldRev: oldRev, NewRev: newRev, Cached: true},
			Render: func(w io.Writer) error {
				return writeStringChunks(w, html)
			},
		}, nil
	}
	m.Counter("snapshot.diffcache.misses").Inc()
	g := f.diffCache.gen(pageURL) // before the read: a rewrite during render kills the insert
	prep, err := f.prepareDiff(pageURL, oldRev, newRev)
	if err != nil {
		return nil, err
	}
	ds := &DiffStream{
		DiffResult: DiffResult{OldRev: oldRev, NewRev: newRev, Stats: prep.Stats()},
	}
	ds.Render = func(w io.Writer) error {
		tee := &cacheTee{dst: w, limit: int(f.diffCache.maxBytes / 4)}
		err := prep.RenderTo(tee)
		if err == nil && !tee.over {
			_, evicted := f.diffCache.putIfCurrent(key, tee.buf.String(), g)
			f.noteDiffCacheChange(evicted)
		}
		return err
	}
	return ds, nil
}

// cacheTee copies a streamed rendering into a side buffer for cache
// insertion, giving up (over=true) once the page exceeds the cache's
// per-entry bound so an enormous page costs no extra memory.
type cacheTee struct {
	dst   io.Writer
	buf   strings.Builder
	limit int
	over  bool
}

func (t *cacheTee) Write(p []byte) (int, error) {
	if !t.over {
		if t.limit > 0 && t.buf.Len()+len(p) > t.limit {
			t.over = true
			t.buf.Reset()
		} else {
			t.buf.Write(p)
		}
	}
	return t.dst.Write(p)
}

// writeStringChunks writes s in bounded chunks through w's string fast
// path when it has one — cache hits stream like fresh renders.
func writeStringChunks(w io.Writer, s string) error {
	const chunk = 32 << 10
	for off := 0; off < len(s); off += chunk {
		end := off + chunk
		if end > len(s) {
			end = len(s)
		}
		if _, err := io.WriteString(w, s[off:end]); err != nil {
			return err
		}
	}
	return nil
}
