package snapshot

import (
	"bytes"
	"context"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aide/internal/rcs"
	"aide/internal/simclock"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// shardedRig builds a facility over an explicit N-shard store,
// independent of the SNAPSHOT_TEST_SHARDS hook.
func shardedRig(t *testing.T, shards int) *rig {
	t.Helper()
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	fac, err := NewSharded(t.TempDir(), shards, webclient.New(web), clock)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{web: web, clock: clock, fac: fac}
}

func TestRingDistribution(t *testing.T) {
	const shards, keys = 8, 2000
	r := newRing(shards)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.locate(fmt.Sprintf("http://site-%d.example.com/page/%d", i%97, i))]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d got no keys: %v", s, counts)
		}
		// Perfectly even would be keys/shards; allow generous skew but
		// catch a broken ring that dumps most keys on one shard.
		if c > 3*keys/shards {
			t.Fatalf("shard %d got %d of %d keys (counts %v)", s, c, keys, counts)
		}
	}
}

func TestRingStabilityOnShardAdd(t *testing.T) {
	const keys = 2000
	r8, r9 := newRing(8), newRing(9)
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("http://h/page-%d", i)
		if r8.locate(k) != r9.locate(k) {
			moved++
		}
	}
	// Consistent hashing: adding one shard to 8 should move roughly 1/9
	// of the keys, not the ~8/9 a mod-N scheme would.
	if moved > keys/3 {
		t.Fatalf("adding a shard moved %d of %d keys", moved, keys)
	}
	if moved == 0 {
		t.Fatal("adding a shard moved no keys at all")
	}
}

func TestArchiveBaseOverflow(t *testing.T) {
	short := "http://h/p"
	if got := archiveBase(short); got != url.QueryEscape(short) {
		t.Fatalf("short URL base = %q", got)
	}
	longA := "http://h/" + strings.Repeat("a", 400)
	longB := "http://h/" + strings.Repeat("a", 400) + "b"
	baseA, baseB := archiveBase(longA), archiveBase(longB)
	for _, base := range []string{baseA, baseB} {
		if len(base)+len(entitiesSuffix) > maxNameLen {
			t.Fatalf("overflow base still too long: %d bytes", len(base))
		}
	}
	if baseA == baseB {
		t.Fatalf("distinct long URLs share base %q", baseA)
	}
}

func TestLongURLCheckinAndListing(t *testing.T) {
	longURL := "http://h/" + strings.Repeat("x", 500)
	for _, shards := range []int{1, 4} {
		r := shardedRigOrFlat(t, shards)
		res, err := r.fac.RememberContent(context.Background(), userA, longURL, "long content\n")
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !res.FirstTime || res.Rev != "1.1" {
			t.Fatalf("shards=%d: remember = %+v", shards, res)
		}
		text, err := r.fac.Checkout(longURL, "")
		if err != nil || text != "long content\n" {
			t.Fatalf("shards=%d: checkout = (%q,%v)", shards, text, err)
		}
		// The ,url sidecar recovers the unabbreviated URL in listings.
		urls, err := r.fac.ArchivedURLs()
		if err != nil || len(urls) != 1 || urls[0] != longURL {
			t.Fatalf("shards=%d: urls = %v, err %v", shards, urls, err)
		}
	}
}

func shardedRigOrFlat(t *testing.T, shards int) *rig {
	t.Helper()
	if shards <= 1 {
		clock := simclock.New(time.Time{})
		web := websim.New(clock)
		fac, err := NewSharded(t.TempDir(), 1, webclient.New(web), clock)
		if err != nil {
			t.Fatal(err)
		}
		return &rig{web: web, clock: clock, fac: fac}
	}
	return shardedRig(t, shards)
}

func TestLegacyOverlongNamesStillReadable(t *testing.T) {
	// A URL whose escaped name fits NAME_MAX with ",v" but not with
	// ",entities.json": pre-fix repositories hold it under the full
	// escaped name, post-fix code hashes it. Both must resolve.
	longURL := "http://h/" + strings.Repeat("y", 232) // escaped len 249: +2 ok, +14 not
	esc := url.QueryEscape(longURL)
	if len(esc)+len(archiveSuffix) > maxNameLen || len(esc)+len(entitiesSuffix) <= maxNameLen {
		t.Fatalf("test URL not in the ambiguous range: escaped len %d", len(esc))
	}
	clock := simclock.New(time.Time{})
	dir := t.TempDir()
	fac, err := NewSharded(dir, 1, nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	// Write the archive the way a pre-fix version did: full escaped name.
	legacy := filepath.Join(dir, "repo", esc+archiveSuffix)
	if _, _, err := rcs.Open(legacy, clock).Checkin("legacy content\n", userA, "old layout"); err != nil {
		t.Fatal(err)
	}
	text, err := fac.Checkout(longURL, "")
	if err != nil || text != "legacy content\n" {
		t.Fatalf("legacy checkout = (%q,%v)", text, err)
	}
}

func TestRebalanceFlatToSharded(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.New(time.Time{})
	flat, err := NewSharded(dir, 1, nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	for i := 0; i < 12; i++ {
		u := fmt.Sprintf("http://h/page-%d", i)
		urls = append(urls, u)
		if _, err := flat.RememberContent(context.Background(), userA, u, fmt.Sprintf("content %d\n", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen the same directory sharded and migrate.
	sharded, err := NewSharded(dir, 4, nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := sharded.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("rebalance moved nothing out of the flat layout")
	}
	got, err := sharded.ArchivedURLs()
	if err != nil || len(got) != len(urls) {
		t.Fatalf("after rebalance: %d urls (%v), err %v", len(got), got, err)
	}
	for _, u := range urls {
		text, err := sharded.Checkout(u, "")
		if err != nil || !strings.HasPrefix(text, "content ") {
			t.Fatalf("checkout %s after rebalance = (%q,%v)", u, text, err)
		}
	}
	// User control files migrated too.
	if seen := sharded.UserURLs(userA); len(seen) != len(urls) {
		t.Fatalf("user urls after rebalance = %v", seen)
	}
	// The legacy flat dirs are gone once emptied.
	if _, err := os.Stat(filepath.Join(dir, "repo")); !os.IsNotExist(err) {
		t.Fatalf("legacy repo dir still present: %v", err)
	}
}

func TestRebalanceAfterShardAdd(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.New(time.Time{})
	fac4, err := NewSharded(dir, 4, nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("http://h/page-%d", i)
		if _, err := fac4.RememberContent(context.Background(), "", u, "body\n"); err != nil {
			t.Fatal(err)
		}
	}
	fac5, err := NewSharded(dir, 5, nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := fac5.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	// Consistent hashing: only the new shard's arcs move, not most keys.
	if moved >= n {
		t.Fatalf("shard add moved %d of %d archives", moved, n)
	}
	urls, err := fac5.ArchivedURLs()
	if err != nil || len(urls) != n {
		t.Fatalf("after shard add: %d urls, err %v", len(urls), err)
	}
	for _, u := range urls {
		if _, err := fac5.Checkout(u, ""); err != nil {
			t.Fatalf("checkout %s: %v", u, err)
		}
	}
}

func TestShardedExportMatchesFlat(t *testing.T) {
	checkins := func(fac *Facility) {
		for i := 0; i < 10; i++ {
			u := fmt.Sprintf("http://h/page-%d", i)
			if _, err := fac.RememberContent(context.Background(), userA, u, fmt.Sprintf("v1 of %d\n", i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := fac.RememberContent(context.Background(), userB, "http://h/page-0", "v1 of 0\n"); err != nil {
			t.Fatal(err)
		}
	}
	clock1 := simclock.New(time.Time{})
	flat, err := NewSharded(t.TempDir(), 1, nil, clock1)
	if err != nil {
		t.Fatal(err)
	}
	checkins(flat)
	clock2 := simclock.New(time.Time{})
	sharded, err := NewSharded(t.TempDir(), 8, nil, clock2)
	if err != nil {
		t.Fatal(err)
	}
	checkins(sharded)

	var flatDump, shardedDump bytes.Buffer
	if err := flat.Export(&flatDump); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Export(&shardedDump); err != nil {
		t.Fatal(err)
	}
	if flatDump.String() != shardedDump.String() {
		t.Fatalf("sharded export differs from flat:\nflat:\n%s\nsharded:\n%s",
			flatDump.String(), shardedDump.String())
	}
}

func TestCheckinBatchShardParallel(t *testing.T) {
	r := shardedRig(t, 8)
	var items []BatchItem
	for i := 0; i < 32; i++ {
		items = append(items, BatchItem{
			URL:  fmt.Sprintf("http://h/batch-%d", i),
			Body: fmt.Sprintf("batch body %d\n", i),
		})
	}
	results, errs := r.fac.CheckinBatch(context.Background(), userA, items)
	for i := range items {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if results[i].Rev != "1.1" || !results[i].FirstTime {
			t.Fatalf("item %d = %+v", i, results[i])
		}
	}
	urls, err := r.fac.ArchivedURLs()
	if err != nil || len(urls) != len(items) {
		t.Fatalf("archived %d urls, err %v", len(urls), err)
	}
}

func TestShardStats(t *testing.T) {
	r := shardedRig(t, 4)
	const n = 20
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("http://h/stat-%d", i)
		if _, err := r.fac.RememberContent(context.Background(), "", u, "stat body\n"); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := r.fac.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("stats rows = %d", len(stats))
	}
	total, bytesTotal := 0, int64(0)
	for _, st := range stats {
		total += st.Archives
		bytesTotal += st.Bytes
	}
	if total != n || bytesTotal == 0 {
		t.Fatalf("stats total = %d archives, %d bytes (%+v)", total, bytesTotal, stats)
	}
}

func TestSingleShardRepoOpensUnchanged(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.New(time.Time{})
	fac, err := NewSharded(dir, 1, nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fac.RememberContent(context.Background(), userA, "http://h/p", "original\n"); err != nil {
		t.Fatal(err)
	}
	// Reopen under -shards 1: same layout, same data, no migration.
	again, err := NewSharded(dir, 1, nil, clock)
	if err != nil {
		t.Fatal(err)
	}
	if moved, err := again.Rebalance(); err != nil || moved != 0 {
		t.Fatalf("flat rebalance = (%d,%v)", moved, err)
	}
	text, err := again.Checkout("http://h/p", "")
	if err != nil || text != "original\n" {
		t.Fatalf("reopened checkout = (%q,%v)", text, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "repo")); err != nil {
		t.Fatalf("flat repo dir missing after reopen: %v", err)
	}
}
