// Package snapshot implements AIDE's external versioning service (§4):
// an archive of web-page versions kept outside both the content provider
// and the client, built on the RCS work-alike in internal/rcs.
//
// A user "remembers" a page: the facility retrieves it, checks it into
// the page's archive (a no-op if unchanged), and records in the user's
// control file which version that user has now seen. Later the user asks
// for the differences since the version they last saved, rendered by
// HtmlDiff, or for the page's full version history.
//
// System issues handled per §4.2: per-URL and per-user locking
// (internal/lockmgr), bounded caching of HtmlDiff output (many users who
// saw versions N and N+1 share one invocation), and the CGI keepalive
// trickle (in server.go).
package snapshot

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"aide/internal/formreg"
	"aide/internal/fsatomic"
	"aide/internal/htmldiff"
	"aide/internal/lockmgr"
	"aide/internal/obs"
	"aide/internal/rcs"
	"aide/internal/simclock"
	"aide/internal/webclient"
)

// ErrNeverSaved is returned when a user asks for differences on a page
// they have never remembered.
var ErrNeverSaved = errors.New("snapshot: page never saved by this user")

// Facility is the snapshot service instance.
type Facility struct {
	root   string
	client *webclient.Client
	clock  simclock.Clock
	locks  *lockmgr.Manager

	// DiffOptions are the HtmlDiff defaults applied when callers pass a
	// zero Options.
	DiffOptions htmldiff.Options
	// Forms, when non-nil, lets the facility archive and diff saved
	// POST services via their form:<id> pseudo-URLs (§8.4).
	Forms *formreg.Registry
	// Metrics receives the check-in/delta/diff-latency metrics;
	// obs.Default when nil.
	Metrics *obs.Registry

	diffCache diffCache
	entityOpt EntityTrackingOptions
}

// metrics returns the facility's registry (obs.Default when unset).
func (f *Facility) metrics() *obs.Registry {
	if f.Metrics != nil {
		return f.Metrics
	}
	return obs.Default
}

// diff runs HtmlDiff and records its latency (on the facility's clock,
// so simulated runs are deterministic) — the §4.2 cost the paper's
// evaluation cares about.
func (f *Facility) diff(oldText, newText string, opt htmldiff.Options) htmldiff.Result {
	start := f.clock.Now()
	r := htmldiff.Diff(oldText, newText, opt)
	f.metrics().Histogram("snapshot.diff.duration", nil).ObserveDuration(f.clock.Now().Sub(start))
	return r
}

// New creates (or reopens) a facility rooted at dir. If clock is nil the
// wall clock is used.
func New(dir string, client *webclient.Client, clock simclock.Clock) (*Facility, error) {
	if clock == nil {
		clock = simclock.Wall{}
	}
	for _, sub := range []string{"repo", "users", "locks"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &Facility{
		root:      dir,
		client:    client,
		clock:     clock,
		locks:     lockmgr.New(filepath.Join(dir, "locks")),
		diffCache: diffCache{max: 128, entries: map[string]string{}},
	}, nil
}

// Root returns the facility's data directory.
func (f *Facility) Root() string { return f.root }

// archive returns the RCS archive handle for a URL.
func (f *Facility) archive(pageURL string) *rcs.Archive {
	name := url.QueryEscape(pageURL) + ",v"
	return rcs.Open(filepath.Join(f.root, "repo", name), f.clock)
}

// RememberResult reports a Remember operation.
type RememberResult struct {
	// Rev is the revision now current for the user.
	Rev string
	// Changed is false when the fetched page was identical to the
	// archive head (the RCS ci no-op case).
	Changed bool
	// FirstTime is true when this was the page's first check-in ever.
	FirstTime bool
}

// Remember fetches url under ctx and checks it into the archive on
// behalf of user, recording the version in the user's control file.
// Holding the per-URL lock across fetch+check-in serialises
// simultaneous users (§4.2).
func (f *Facility) Remember(ctx context.Context, user, pageURL string) (RememberResult, error) {
	unlock, err := f.locks.Lock("url:" + pageURL)
	if err != nil {
		return RememberResult{}, err
	}
	defer unlock()

	info, err := f.fetchLive(ctx, pageURL)
	if err != nil {
		return RememberResult{}, err
	}
	return f.RememberContent(ctx, user, pageURL, info.Body)
}

// RememberContent checks in content supplied by the caller (used by the
// fixed-page archiver and by tests to avoid a second fetch); ctx bounds
// the entity-checksum fetches that a changed check-in may trigger. The
// per-URL lock must not already be held by this goroutine.
func (f *Facility) RememberContent(ctx context.Context, user, pageURL, body string) (RememberResult, error) {
	ctx, span := obs.StartSpan(ctx, "snapshot.checkin")
	span.SetAttr("url", pageURL)
	defer span.End()
	m := f.metrics()
	m.Counter("snapshot.checkins").Inc()
	arch := f.archive(pageURL)
	first := !arch.Exists()
	rev, changed, err := arch.Checkin(body, user, "checked in via AIDE snapshot")
	if err != nil {
		return RememberResult{}, err
	}
	if changed {
		m.Counter("snapshot.checkins.changed").Inc()
		m.Counter("snapshot.delta.bytes").Add(int64(len(body)))
		obs.Logger().Debug("snapshot check-in", "url", pageURL, "rev", rev, "bytes", len(body), "first", first)
	}
	if user != "" {
		if err := f.markSeen(user, pageURL, rev); err != nil {
			return RememberResult{}, err
		}
	}
	if changed && f.entityOpt.Enabled {
		if err := f.snapshotEntities(ctx, pageURL, body, rev); err != nil {
			return RememberResult{}, err
		}
	}
	return RememberResult{Rev: rev, Changed: changed, FirstTime: first}, nil
}

// DiffResult is the outcome of a difference request.
type DiffResult struct {
	// HTML is the HtmlDiff presentation.
	HTML string
	// OldRev and NewRev identify the versions compared. NewRev is
	// "live" when the comparison is against the current page.
	OldRev, NewRev string
	// Stats summarises the comparison.
	Stats htmldiff.Stats
	// Cached is true when the output came from the HtmlDiff cache.
	Cached bool
}

// DiffSinceSaved compares the version the user last remembered against
// the live page — the report's "Diff" link ("display the changes in a
// page since it was last saved away by the user", §6). ctx bounds the
// live fetch.
func (f *Facility) DiffSinceSaved(ctx context.Context, user, pageURL string) (DiffResult, error) {
	seen := f.seenVersions(user, pageURL)
	if len(seen) == 0 {
		return DiffResult{}, ErrNeverSaved
	}
	oldRev := seen[len(seen)-1]
	oldText, err := f.archive(pageURL).Checkout(oldRev)
	if err != nil {
		return DiffResult{}, err
	}
	info, err := f.fetchLive(ctx, pageURL)
	if err != nil {
		return DiffResult{}, err
	}
	opt := f.DiffOptions
	opt.Title = pageURL
	r := f.diff(oldText, info.Body, opt)
	return DiffResult{HTML: r.HTML, OldRev: oldRev, NewRev: "live", Stats: r.Stats}, nil
}

// DiffRevs compares two archived revisions, caching the rendered output:
// "many users who have seen versions N and N+1 of a page could retrieve
// HtmlDiff(pageN, pageN+1) with a single invocation" (§4.2).
func (f *Facility) DiffRevs(pageURL, oldRev, newRev string) (DiffResult, error) {
	key := pageURL + "\x00" + oldRev + "\x00" + newRev
	if html, ok := f.diffCache.get(key); ok {
		f.metrics().Counter("snapshot.diffcache.hits").Inc()
		return DiffResult{HTML: html, OldRev: oldRev, NewRev: newRev, Cached: true}, nil
	}
	f.metrics().Counter("snapshot.diffcache.misses").Inc()
	arch := f.archive(pageURL)
	oldText, err := arch.Checkout(oldRev)
	if err != nil {
		return DiffResult{}, err
	}
	newText, err := arch.Checkout(newRev)
	if err != nil {
		return DiffResult{}, err
	}
	opt := f.DiffOptions
	opt.Title = fmt.Sprintf("%s (%s vs %s)", pageURL, oldRev, newRev)
	r := f.diff(oldText, newText, opt)
	f.diffCache.put(key, r.HTML)
	return DiffResult{HTML: r.HTML, OldRev: oldRev, NewRev: newRev, Stats: r.Stats}, nil
}

// History returns the page's revision log (newest first) and the set of
// revisions this user has seen.
func (f *Facility) History(user, pageURL string) (revs []rcs.Revision, seen map[string]bool, err error) {
	revs, err = f.archive(pageURL).Log()
	if err != nil {
		return nil, nil, err
	}
	seen = make(map[string]bool)
	for _, r := range f.seenVersions(user, pageURL) {
		seen[r] = true
	}
	return revs, seen, nil
}

// Checkout returns the archived text of a revision ("" = head).
func (f *Facility) Checkout(pageURL, rev string) (string, error) {
	return f.archive(pageURL).Checkout(rev)
}

// CheckoutAtDate returns the archived text as of an instant, the CGI
// "time travel" interface of §2.2.
func (f *Facility) CheckoutAtDate(pageURL string, t time.Time) (string, string, error) {
	return f.archive(pageURL).CheckoutAtDate(t)
}

// ArchivedURLs lists every URL with an archive, sorted.
func (f *Facility) ArchivedURLs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(f.root, "repo"))
	if err != nil {
		return nil, err
	}
	var urls []string
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ",v")
		if name == e.Name() {
			continue
		}
		u, err := url.QueryUnescape(name)
		if err != nil {
			continue
		}
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls, nil
}

// StorageStats reports archive disk usage, the §7 measurements.
type StorageStats struct {
	// URLs is the number of archived URLs.
	URLs int
	// TotalBytes is the summed archive file size.
	TotalBytes int64
	// PerURL lists each archive's size, descending.
	PerURL []URLSize
}

// URLSize pairs a URL with its archive size.
type URLSize struct {
	URL   string
	Bytes int64
}

// MeanBytes returns the average archive size per URL.
func (s StorageStats) MeanBytes() float64 {
	if s.URLs == 0 {
		return 0
	}
	return float64(s.TotalBytes) / float64(s.URLs)
}

// PruneResult reports one archive's pruning outcome.
type PruneResult struct {
	URL     string
	Dropped int
}

// Prune limits every archive to at most keep revisions, dropping the
// oldest — the §4.2 resource-utilization control. Per-URL locks are
// held across each rewrite.
func (f *Facility) Prune(keep int) ([]PruneResult, error) {
	urls, err := f.ArchivedURLs()
	if err != nil {
		return nil, err
	}
	var out []PruneResult
	for _, u := range urls {
		unlock, err := f.locks.Lock("url:" + u)
		if err != nil {
			return out, err
		}
		dropped, err := f.archive(u).Prune(keep)
		unlock()
		if err != nil {
			return out, err
		}
		if dropped > 0 {
			out = append(out, PruneResult{URL: u, Dropped: dropped})
		}
	}
	return out, nil
}

// Storage scans the repository and reports the §7 numbers.
func (f *Facility) Storage() (StorageStats, error) {
	urls, err := f.ArchivedURLs()
	if err != nil {
		return StorageStats{}, err
	}
	stats := StorageStats{URLs: len(urls)}
	for _, u := range urls {
		size := f.archive(u).Size()
		stats.TotalBytes += size
		stats.PerURL = append(stats.PerURL, URLSize{URL: u, Bytes: size})
	}
	sort.Slice(stats.PerURL, func(i, j int) bool { return stats.PerURL[i].Bytes > stats.PerURL[j].Bytes })
	return stats, nil
}

// fetchLive retrieves the current content of a URL under ctx: a GET for
// pages, a replayed POST for form:<id> pseudo-URLs.
func (f *Facility) fetchLive(ctx context.Context, pageURL string) (webclient.PageInfo, error) {
	var info webclient.PageInfo
	var err error
	if f.Forms != nil && formreg.IsFormURL(pageURL) {
		info, err = f.Forms.Invoke(ctx, f.client, pageURL)
	} else {
		info, err = f.client.Get(ctx, pageURL)
	}
	if err != nil {
		return info, fmt.Errorf("snapshot: retrieving %s: %w", pageURL, err)
	}
	if kind := webclient.Classify(info.Status, nil); kind != webclient.OK {
		return info, fmt.Errorf("snapshot: retrieving %s: HTTP %d (%s)", pageURL, info.Status, kind)
	}
	return info, nil
}

// --- per-user control files ---------------------------------------------------

// userControl is the persistent per-user record: for each URL, the
// ordered list of revisions the user has checked in or viewed. This is
// the paper's "set of version numbers retained for each <user,URL>
// combination", kept outside RCS.
type userControl struct {
	Versions map[string][]string `json:"versions"`
}

func (f *Facility) userFile(user string) string {
	return filepath.Join(f.root, "users", url.QueryEscape(user)+".json")
}

// loadUser reads a user's control file ({} when absent).
func (f *Facility) loadUser(user string) (userControl, error) {
	uc := userControl{Versions: map[string][]string{}}
	data, err := os.ReadFile(f.userFile(user))
	if err != nil {
		if os.IsNotExist(err) {
			return uc, nil
		}
		return uc, err
	}
	if err := json.Unmarshal(data, &uc); err != nil {
		return uc, fmt.Errorf("snapshot: corrupt control file for %s: %v", user, err)
	}
	if uc.Versions == nil {
		uc.Versions = map[string][]string{}
	}
	return uc, nil
}

// markSeen appends rev to the user's version set for url (idempotent on
// the latest entry), under the per-user lock.
func (f *Facility) markSeen(user, pageURL, rev string) error {
	unlock, err := f.locks.Lock("user:" + user)
	if err != nil {
		return err
	}
	defer unlock()
	uc, err := f.loadUser(user)
	if err != nil {
		return err
	}
	vs := uc.Versions[pageURL]
	if len(vs) == 0 || vs[len(vs)-1] != rev {
		uc.Versions[pageURL] = append(vs, rev)
	}
	data, err := json.MarshalIndent(uc, "", "  ")
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(f.userFile(user), data, 0o644)
}

// seenVersions returns the user's version list for url (oldest first).
func (f *Facility) seenVersions(user, pageURL string) []string {
	uc, err := f.loadUser(user)
	if err != nil {
		return nil
	}
	return uc.Versions[pageURL]
}

// UserURLs lists the URLs a user has remembered, sorted.
func (f *Facility) UserURLs(user string) []string {
	uc, err := f.loadUser(user)
	if err != nil {
		return nil
	}
	urls := make([]string, 0, len(uc.Versions))
	for u := range uc.Versions {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}

// --- HtmlDiff output cache ------------------------------------------------------

// diffCache is a bounded map of rendered HtmlDiff outputs. Simple random
// eviction suffices: entries are small and regeneration is cheap relative
// to correctness concerns.
type diffCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]string
	hits    int
}

func (c *diffCache) get(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if ok {
		c.hits++
	}
	return v, ok
}

func (c *diffCache) put(key, html string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.max {
		for k := range c.entries {
			delete(c.entries, k)
			break
		}
	}
	c.entries[key] = html
}

// DiffCacheHits reports how many diff requests were served from cache.
func (f *Facility) DiffCacheHits() int {
	f.diffCache.mu.Lock()
	defer f.diffCache.mu.Unlock()
	return f.diffCache.hits
}
