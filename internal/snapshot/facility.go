// Package snapshot implements AIDE's external versioning service (§4):
// an archive of web-page versions kept outside both the content provider
// and the client, built on the RCS work-alike in internal/rcs.
//
// A user "remembers" a page: the facility retrieves it, checks it into
// the page's archive (a no-op if unchanged), and records in the user's
// control file which version that user has now seen. Later the user asks
// for the differences since the version they last saved, rendered by
// HtmlDiff, or for the page's full version history.
//
// System issues handled per §4.2: per-URL and per-user locking
// (internal/lockmgr), bounded caching of HtmlDiff output (many users who
// saw versions N and N+1 share one invocation), and the CGI keepalive
// trickle (in server.go).
package snapshot

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aide/internal/faultfs"
	"aide/internal/formreg"
	"aide/internal/fsatomic"
	"aide/internal/htmldiff"
	"aide/internal/lockmgr"
	"aide/internal/obs"
	"aide/internal/rcs"
	"aide/internal/simclock"
	"aide/internal/webclient"
)

// ErrNeverSaved is returned when a user asks for differences on a page
// they have never remembered.
var ErrNeverSaved = errors.New("snapshot: page never saved by this user")

// Facility is the snapshot service instance.
type Facility struct {
	store  Store
	client *webclient.Client
	clock  simclock.Clock
	locks  *lockmgr.Manager

	// DiffOptions are the HtmlDiff defaults applied when callers pass a
	// zero Options.
	DiffOptions htmldiff.Options
	// Forms, when non-nil, lets the facility archive and diff saved
	// POST services via their form:<id> pseudo-URLs (§8.4).
	Forms *formreg.Registry
	// Metrics receives the check-in/delta/diff-latency metrics;
	// obs.Default when nil.
	Metrics *obs.Registry
	// Faults, when non-nil, injects disk faults into scrub reads and
	// import/repair writes (chaos tests); nil reads/writes normally.
	Faults *faultfs.Injector
	// Failover, when non-nil, fetches missing or corrupt files from a
	// healthy replica — the repair source for scrub and failover reads.
	// On a replicated leader this is the facility's Replicator.
	Failover FileFetcher

	diffCache *diffCache
	entityOpt EntityTrackingOptions
	ledger    *checksumLedger

	prewarmMu   sync.Mutex
	prewarmSem  chan struct{}
	prewarmWG   sync.WaitGroup
	prewarmHook func() // test seam: runs between a pre-warm render and its insert

	repairMu    sync.Mutex
	repairSlots chan struct{}
}

// metrics returns the facility's registry (obs.Default when unset).
func (f *Facility) metrics() *obs.Registry {
	if f.Metrics != nil {
		return f.Metrics
	}
	return obs.Default
}

// New creates (or reopens) a facility rooted at dir with the default
// flat store. If clock is nil the wall clock is used. When the
// SNAPSHOT_TEST_SHARDS environment variable is set to N > 1, New builds
// an N-shard store instead — the hook the CI matrix uses to run every
// suite against the sharded layout.
func New(dir string, client *webclient.Client, clock simclock.Clock) (*Facility, error) {
	shards := 1
	if s := os.Getenv("SNAPSHOT_TEST_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 1 {
			shards = n
		}
	}
	return NewSharded(dir, shards, client, clock)
}

// NewSharded creates (or reopens) a facility over an N-shard store
// (shards <= 1 means the flat layout).
func NewSharded(dir string, shards int, client *webclient.Client, clock simclock.Clock) (*Facility, error) {
	var st Store
	var err error
	if shards <= 1 {
		st, err = NewFlatStore(dir)
	} else {
		st, err = NewShardedStore(dir, shards)
	}
	if err != nil {
		return nil, err
	}
	return NewWithStore(st, client, clock)
}

// NewWithStore wires a facility over an already-constructed store.
func NewWithStore(st Store, client *webclient.Client, clock simclock.Clock) (*Facility, error) {
	if clock == nil {
		clock = simclock.Wall{}
	}
	return &Facility{
		store:     st,
		client:    client,
		clock:     clock,
		locks:     lockmgr.New(filepath.Join(st.Root(), "locks")),
		diffCache: newDiffCache(DefaultDiffCacheMax),
		ledger:    newChecksumLedger(filepath.Join(st.Root(), "scrub")),
	}, nil
}

// Root returns the facility's data directory.
func (f *Facility) Root() string { return f.store.Root() }

// Store returns the facility's storage layer.
func (f *Facility) Store() Store { return f.store }

// Shards reports how many shards partition the facility's store.
func (f *Facility) Shards() int { return f.store.Shards() }

// ShardOf maps a URL to the shard holding its archive.
func (f *Facility) ShardOf(pageURL string) int { return f.store.ShardOf(pageURL) }

// Rebalance migrates files the store's ring no longer places where they
// sit (after a shard-count change, or adopting a flat repository). It
// holds a store-wide lock against concurrent rebalances; run it before
// serving traffic.
func (f *Facility) Rebalance() (moved int, err error) {
	unlock, err := f.locks.Lock("store:rebalance")
	if err != nil {
		return 0, err
	}
	defer unlock()
	moved, err = f.store.Rebalance()
	f.metrics().Counter("shard.rebalance.moved").Add(int64(moved))
	return moved, err
}

// archive returns the RCS archive handle for a URL.
func (f *Facility) archive(pageURL string) *rcs.Archive {
	return rcs.Open(f.store.ArchivePath(pageURL), f.clock)
}

// archiveAt returns the RCS handle for an archive file path — used by
// manifest building, which enumerates files rather than URLs.
func (f *Facility) archiveAt(path string) *rcs.Archive {
	return rcs.Open(path, f.clock)
}

// RememberResult reports a Remember operation.
type RememberResult struct {
	// Rev is the revision now current for the user.
	Rev string
	// Changed is false when the fetched page was identical to the
	// archive head (the RCS ci no-op case).
	Changed bool
	// FirstTime is true when this was the page's first check-in ever.
	FirstTime bool
}

// Remember fetches url under ctx and checks it into the archive on
// behalf of user, recording the version in the user's control file.
// Holding the per-URL lock across fetch+check-in serialises
// simultaneous users (§4.2).
func (f *Facility) Remember(ctx context.Context, user, pageURL string) (RememberResult, error) {
	unlock, err := f.locks.Lock(f.store.LockKey(pageURL))
	if err != nil {
		return RememberResult{}, err
	}
	defer unlock()

	info, err := f.fetchLive(ctx, pageURL)
	if err != nil {
		return RememberResult{}, err
	}
	return f.RememberContent(ctx, user, pageURL, info.Body)
}

// RememberContent checks in content supplied by the caller (used by the
// fixed-page archiver and by tests to avoid a second fetch); ctx bounds
// the entity-checksum fetches that a changed check-in may trigger. The
// per-URL lock must not already be held by this goroutine.
func (f *Facility) RememberContent(ctx context.Context, user, pageURL, body string) (RememberResult, error) {
	ctx, span := obs.StartSpan(ctx, "snapshot.checkin")
	span.SetAttr("url", pageURL)
	defer span.End()
	m := f.metrics()
	m.Counter("snapshot.checkins").Inc()
	if n := f.store.Shards(); n > 1 {
		m.Counter(fmt.Sprintf("shard.%03d.checkins", f.store.ShardOf(pageURL))).Inc()
	}
	arch := f.archive(pageURL)
	first := !arch.Exists()
	// The pre-warmer's hot pairs: the head this check-in supersedes, and
	// the revision this user last viewed — both read before the archive
	// and control file move on.
	var prevRev string
	if !first {
		prevRev, _ = arch.Head()
	}
	var baselineRev string
	if user != "" {
		if seen := f.seenVersions(user, pageURL); len(seen) > 0 {
			baselineRev = seen[len(seen)-1]
		}
	}
	rev, changed, err := arch.Checkin(body, user, "checked in via AIDE snapshot")
	if err != nil {
		return RememberResult{}, err
	}
	if first {
		// Persist the name→URL reverse map for overflow-hashed archive
		// names (no-op for names that decode on their own).
		if err := f.store.NoteURL(pageURL); err != nil {
			return RememberResult{}, err
		}
		base := strings.TrimSuffix(filepath.Base(f.store.ArchivePath(pageURL)), archiveSuffix)
		if p, err := f.store.Place(KindURL, base+urlSuffix); err == nil {
			f.recordChecksumPath(KindURL, p)
		}
	}
	if changed || first {
		// Record the rewritten archive's checksum for the scrubber,
		// under the per-URL lock our callers hold.
		f.recordChecksumPath(KindArchive, f.store.ArchivePath(pageURL))
	}
	if changed {
		m.Counter("snapshot.checkins.changed").Inc()
		m.Counter("snapshot.delta.bytes").Add(int64(len(body)))
		obs.Logger().Debug("snapshot check-in", "url", pageURL, "rev", rev, "bytes", len(body), "first", first)
		// A new revision rewrites the archive: cached renderings for the
		// page are stale. Invalidate first, then pre-warm the hot pairs
		// under the post-invalidation generation so a later rewrite can
		// still cancel the inserts.
		g := f.invalidateDiffCache(pageURL)
		f.schedulePrewarm(pageURL, rev, prevRev, baselineRev, g)
	}
	if user != "" {
		if err := f.markSeen(user, pageURL, rev); err != nil {
			return RememberResult{}, err
		}
	}
	if changed && f.entityOpt.Enabled {
		if err := f.snapshotEntities(ctx, pageURL, body, rev); err != nil {
			return RememberResult{}, err
		}
	}
	return RememberResult{Rev: rev, Changed: changed, FirstTime: first}, nil
}

// DiffResult is the outcome of a difference request.
type DiffResult struct {
	// HTML is the HtmlDiff presentation.
	HTML string
	// OldRev and NewRev identify the versions compared. NewRev is
	// "live" when the comparison is against the current page.
	OldRev, NewRev string
	// Stats summarises the comparison.
	Stats htmldiff.Stats
	// Cached is true when the output came from the HtmlDiff cache.
	Cached bool
}

// DiffSinceSaved compares the version the user last remembered against
// the live page — the report's "Diff" link ("display the changes in a
// page since it was last saved away by the user", §6). ctx bounds the
// live fetch.
func (f *Facility) DiffSinceSaved(ctx context.Context, user, pageURL string) (DiffResult, error) {
	ds, err := f.DiffSinceSavedStream(ctx, user, pageURL)
	if err != nil {
		return DiffResult{}, err
	}
	return materialize(ds), nil
}

// DiffSinceSavedStream is DiffSinceSaved without the buffering: the
// comparison is prepared up front, the rendering streams to the
// handler's writer. Live comparisons are never cached — the right-hand
// side has no revision identity.
func (f *Facility) DiffSinceSavedStream(ctx context.Context, user, pageURL string) (*DiffStream, error) {
	seen := f.seenVersions(user, pageURL)
	if len(seen) == 0 {
		return nil, ErrNeverSaved
	}
	oldRev := seen[len(seen)-1]
	var oldText string
	err := f.readArchive(pageURL, func(a *rcs.Archive) error {
		var cerr error
		oldText, cerr = a.Checkout(oldRev)
		return cerr
	})
	if err != nil {
		return nil, err
	}
	info, err := f.fetchLive(ctx, pageURL)
	if err != nil {
		return nil, err
	}
	opt := f.DiffOptions
	opt.Title = pageURL
	start := f.clock.Now()
	prep := htmldiff.Prepare(oldText, info.Body, opt)
	f.metrics().Histogram("snapshot.diff.duration", nil).ObserveDuration(f.clock.Now().Sub(start))
	return &DiffStream{
		DiffResult: DiffResult{OldRev: oldRev, NewRev: "live", Stats: prep.Stats()},
		Render:     prep.RenderTo,
	}, nil
}

// DiffRevs compares two archived revisions, caching the rendered output:
// "many users who have seen versions N and N+1 of a page could retrieve
// HtmlDiff(pageN, pageN+1) with a single invocation" (§4.2). Buffered
// wrapper over DiffRevsStream for callers that want the whole page.
func (f *Facility) DiffRevs(pageURL, oldRev, newRev string) (DiffResult, error) {
	ds, err := f.DiffRevsStream(pageURL, oldRev, newRev)
	if err != nil {
		return DiffResult{}, err
	}
	return materialize(ds), nil
}

// materialize renders a stream into its DiffResult.
func materialize(ds *DiffStream) DiffResult {
	var sb strings.Builder
	ds.Render(&sb) // a Builder never fails
	r := ds.DiffResult
	r.HTML = sb.String()
	return r
}

// History returns the page's revision log (newest first) and the set of
// revisions this user has seen.
func (f *Facility) History(user, pageURL string) (revs []rcs.Revision, seen map[string]bool, err error) {
	err = f.readArchive(pageURL, func(a *rcs.Archive) error {
		var lerr error
		revs, lerr = a.Log()
		return lerr
	})
	if err != nil {
		return nil, nil, err
	}
	seen = make(map[string]bool)
	for _, r := range f.seenVersions(user, pageURL) {
		seen[r] = true
	}
	return revs, seen, nil
}

// Checkout returns the archived text of a revision ("" = head).
func (f *Facility) Checkout(pageURL, rev string) (string, error) {
	var text string
	err := f.readArchive(pageURL, func(a *rcs.Archive) error {
		var cerr error
		text, cerr = a.Checkout(rev)
		return cerr
	})
	return text, err
}

// CheckoutAtDate returns the archived text as of an instant, the CGI
// "time travel" interface of §2.2.
func (f *Facility) CheckoutAtDate(pageURL string, t time.Time) (string, string, error) {
	var text, rev string
	err := f.readArchive(pageURL, func(a *rcs.Archive) error {
		var cerr error
		text, rev, cerr = a.CheckoutAtDate(t)
		return cerr
	})
	return text, rev, err
}

// ArchivedURLs lists every URL with an archive, sorted.
func (f *Facility) ArchivedURLs() ([]string, error) {
	return f.store.ArchivedURLs()
}

// StorageStats reports archive disk usage, the §7 measurements.
type StorageStats struct {
	// URLs is the number of archived URLs.
	URLs int
	// TotalBytes is the summed archive file size.
	TotalBytes int64
	// PerURL lists each archive's size, descending.
	PerURL []URLSize
}

// URLSize pairs a URL with its archive size.
type URLSize struct {
	URL   string
	Bytes int64
}

// MeanBytes returns the average archive size per URL.
func (s StorageStats) MeanBytes() float64 {
	if s.URLs == 0 {
		return 0
	}
	return float64(s.TotalBytes) / float64(s.URLs)
}

// PruneResult reports one archive's pruning outcome.
type PruneResult struct {
	URL     string
	Dropped int
}

// Prune limits every archive to at most keep revisions, dropping the
// oldest — the §4.2 resource-utilization control. Per-URL locks are
// held across each rewrite. On a sharded store the shards are pruned in
// parallel, one worker each; results come back sorted by URL.
func (f *Facility) Prune(keep int) ([]PruneResult, error) {
	pruneShard := func(urls []string) ([]PruneResult, error) {
		var out []PruneResult
		for _, u := range urls {
			unlock, err := f.locks.Lock(f.store.LockKey(u))
			if err != nil {
				return out, err
			}
			dropped, err := f.archive(u).Prune(keep)
			if err == nil && dropped > 0 {
				// The archive was rewritten: refresh its checksum
				// while the lock still protects it, and drop cached
				// diffs that referenced the pruned revisions.
				f.recordChecksumPath(KindArchive, f.store.ArchivePath(u))
				f.invalidateDiffCache(u)
			}
			unlock()
			if err != nil {
				return out, err
			}
			if dropped > 0 {
				out = append(out, PruneResult{URL: u, Dropped: dropped})
			}
		}
		return out, nil
	}

	shards := f.store.Shards()
	if shards <= 1 {
		urls, err := f.ArchivedURLs()
		if err != nil {
			return nil, err
		}
		return pruneShard(urls)
	}
	var wg sync.WaitGroup
	outs := make([][]PruneResult, shards)
	errs := make([]error, shards)
	for i := 0; i < shards; i++ {
		urls, err := f.store.ShardURLs(i)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(i int, urls []string) {
			defer wg.Done()
			outs[i], errs[i] = pruneShard(urls)
		}(i, urls)
	}
	wg.Wait()
	var out []PruneResult
	for i := 0; i < shards; i++ {
		out = append(out, outs[i]...)
		if errs[i] != nil {
			return out, errs[i]
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out, nil
}

// Storage scans the repository and reports the §7 numbers.
func (f *Facility) Storage() (StorageStats, error) {
	urls, err := f.ArchivedURLs()
	if err != nil {
		return StorageStats{}, err
	}
	stats := StorageStats{URLs: len(urls)}
	for _, u := range urls {
		size := f.archive(u).Size()
		stats.TotalBytes += size
		stats.PerURL = append(stats.PerURL, URLSize{URL: u, Bytes: size})
	}
	sort.Slice(stats.PerURL, func(i, j int) bool { return stats.PerURL[i].Bytes > stats.PerURL[j].Bytes })
	return stats, nil
}

// fetchLive retrieves the current content of a URL under ctx: a GET for
// pages, a replayed POST for form:<id> pseudo-URLs.
func (f *Facility) fetchLive(ctx context.Context, pageURL string) (webclient.PageInfo, error) {
	var info webclient.PageInfo
	var err error
	if f.Forms != nil && formreg.IsFormURL(pageURL) {
		info, err = f.Forms.Invoke(ctx, f.client, pageURL)
	} else {
		info, err = f.client.Get(ctx, pageURL)
	}
	if err != nil {
		return info, fmt.Errorf("snapshot: retrieving %s: %w", pageURL, err)
	}
	if kind := webclient.Classify(info.Status, nil); kind != webclient.OK {
		return info, fmt.Errorf("snapshot: retrieving %s: HTTP %d (%s)", pageURL, info.Status, kind)
	}
	return info, nil
}

// --- per-user control files ---------------------------------------------------

// userControl is the persistent per-user record: for each URL, the
// ordered list of revisions the user has checked in or viewed. This is
// the paper's "set of version numbers retained for each <user,URL>
// combination", kept outside RCS.
type userControl struct {
	Versions map[string][]string `json:"versions"`
}

func (f *Facility) userFile(user string) string {
	return f.store.UserPath(user)
}

// loadUser reads a user's control file ({} when absent). The empty
// user never has one — markSeen only writes for named users — so the
// anonymous read path skips the file probe entirely.
func (f *Facility) loadUser(user string) (userControl, error) {
	uc := userControl{Versions: map[string][]string{}}
	if user == "" {
		return uc, nil
	}
	data, err := os.ReadFile(f.userFile(user))
	if err != nil {
		if os.IsNotExist(err) {
			return uc, nil
		}
		return uc, err
	}
	if err := json.Unmarshal(data, &uc); err != nil {
		return uc, fmt.Errorf("snapshot: corrupt control file for %s: %v", user, err)
	}
	if uc.Versions == nil {
		uc.Versions = map[string][]string{}
	}
	return uc, nil
}

// markSeen appends rev to the user's version set for url (idempotent on
// the latest entry), under the per-user lock.
func (f *Facility) markSeen(user, pageURL, rev string) error {
	unlock, err := f.locks.Lock("user:" + user)
	if err != nil {
		return err
	}
	defer unlock()
	uc, err := f.loadUser(user)
	if err != nil {
		return err
	}
	vs := uc.Versions[pageURL]
	if len(vs) == 0 || vs[len(vs)-1] != rev {
		uc.Versions[pageURL] = append(vs, rev)
	}
	data, err := json.MarshalIndent(uc, "", "  ")
	if err != nil {
		return err
	}
	if err := fsatomic.WriteFile(f.userFile(user), data, 0o644); err != nil {
		return err
	}
	f.recordChecksum(KindUser, filepath.Base(f.userFile(user)), data)
	return nil
}

// seenVersions returns the user's version list for url (oldest first).
func (f *Facility) seenVersions(user, pageURL string) []string {
	uc, err := f.loadUser(user)
	if err != nil {
		return nil
	}
	return uc.Versions[pageURL]
}

// UserURLs lists the URLs a user has remembered, sorted.
func (f *Facility) UserURLs(user string) []string {
	uc, err := f.loadUser(user)
	if err != nil {
		return nil
	}
	urls := make([]string, 0, len(uc.Versions))
	for u := range uc.Versions {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}

// --- bulk check-ins ------------------------------------------------------------

// BatchItem is one page of a bulk check-in.
type BatchItem struct {
	// URL is the page's location.
	URL string
	// Body is the content to check in.
	Body string
}

// CheckinBatch checks in a set of pages shard-parallel: items are
// partitioned by the shard that owns them and one worker per shard
// drains its partition serially (per-URL locks still held per item), so
// bulk archival scales with the shard count instead of serialising on
// one directory. Results and errors are indexed like items.
func (f *Facility) CheckinBatch(ctx context.Context, user string, items []BatchItem) ([]RememberResult, []error) {
	results := make([]RememberResult, len(items))
	errs := make([]error, len(items))
	byShard := make(map[int][]int)
	for i, it := range items {
		s := f.store.ShardOf(it.URL)
		byShard[s] = append(byShard[s], i)
	}
	var wg sync.WaitGroup
	for _, idxs := range byShard {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				it := items[i]
				unlock, err := f.locks.Lock(f.store.LockKey(it.URL))
				if err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = f.RememberContent(ctx, user, it.URL, it.Body)
				unlock()
			}
		}(idxs)
	}
	wg.Wait()
	return results, errs
}

// ShardStat is one shard's archive population, the /debug/shards row.
type ShardStat struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Archives is the number of archived URLs in the shard.
	Archives int `json:"archives"`
	// Bytes is the summed size of the shard's archive files.
	Bytes int64 `json:"bytes"`
}

// ShardStats reports per-shard archive counts and sizes (one row for a
// flat store), and keeps the shard.*.archives/bytes gauges current.
func (f *Facility) ShardStats() ([]ShardStat, error) {
	out := make([]ShardStat, f.store.Shards())
	for i := range out {
		out[i].Shard = i
		urls, err := f.store.ShardURLs(i)
		if err != nil {
			return nil, err
		}
		out[i].Archives = len(urls)
		for _, u := range urls {
			out[i].Bytes += f.archive(u).Size()
		}
		if f.store.Shards() > 1 {
			f.metrics().Gauge(fmt.Sprintf("shard.%03d.archives", i)).Set(int64(out[i].Archives))
			f.metrics().Gauge(fmt.Sprintf("shard.%03d.bytes", i)).Set(out[i].Bytes)
		}
	}
	return out, nil
}

// --- HtmlDiff output cache ------------------------------------------------------

// DefaultDiffCacheMax is the rendered-diff cache's byte bound when the
// caller does not configure one (snapshotd's -diffcache-max flag). The
// LRU itself lives in diffcache.go.
const DefaultDiffCacheMax = 32 << 20
