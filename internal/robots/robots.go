// Package robots implements the robot exclusion protocol ("A standard
// for robot exclusion", 1994) as used by w3newer (§3.1): before polling a
// URL, the tracker consults the site's /robots.txt; if the URL is
// disallowed for robots, that fact is cached so the page is not accessed
// again unless a special flag overrides the protocol.
package robots

import (
	"bufio"
	"context"
	"strings"
	"sync"
	"time"

	"aide/internal/obs"
	"aide/internal/simclock"
)

// Policy is a parsed robots.txt: ordered (agent-group, disallow-prefixes)
// records.
type Policy struct {
	groups []group
}

type group struct {
	agents    []string // lower-cased User-agent values; "*" matches all
	disallows []string // path prefixes; "" (empty Disallow) allows all
}

// Parse reads a robots.txt body. Unknown fields are ignored, per the
// protocol's tolerance requirements.
func Parse(body string) *Policy {
	p := &Policy{}
	sc := bufio.NewScanner(strings.NewReader(body))
	var cur *group
	lastWasAgent := false
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			// Blank lines end a record.
			cur = nil
			lastWasAgent = false
			continue
		}
		field, value, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		field = strings.ToLower(strings.TrimSpace(field))
		value = strings.TrimSpace(value)
		switch field {
		case "user-agent":
			if cur == nil || !lastWasAgent {
				p.groups = append(p.groups, group{})
				cur = &p.groups[len(p.groups)-1]
			}
			cur.agents = append(cur.agents, strings.ToLower(value))
			lastWasAgent = true
		case "disallow":
			if cur == nil {
				// Disallow before any User-agent applies to all agents.
				p.groups = append(p.groups, group{agents: []string{"*"}})
				cur = &p.groups[len(p.groups)-1]
			}
			cur.disallows = append(cur.disallows, value)
			lastWasAgent = false
		default:
			lastWasAgent = false
		}
	}
	return p
}

// Allowed reports whether the given agent may fetch path. The most
// specific matching agent group wins; within a group, any matching
// Disallow prefix forbids the path. An empty Disallow value allows
// everything.
func (p *Policy) Allowed(agent, path string) bool {
	if p == nil {
		return true
	}
	agent = strings.ToLower(agent)
	if path == "" {
		path = "/"
	}
	g := p.matchGroup(agent)
	if g == nil {
		return true
	}
	for _, d := range g.disallows {
		if d == "" {
			continue
		}
		if strings.HasPrefix(path, d) {
			return false
		}
	}
	return true
}

// matchGroup picks the group whose agent token is the longest substring
// of the caller's agent name, falling back to "*".
func (p *Policy) matchGroup(agent string) *group {
	var star *group
	var best *group
	bestLen := -1
	for i := range p.groups {
		g := &p.groups[i]
		for _, a := range g.agents {
			if a == "*" {
				if star == nil {
					star = g
				}
				continue
			}
			if strings.Contains(agent, a) && len(a) > bestLen {
				best = g
				bestLen = len(a)
			}
		}
	}
	if best != nil {
		return best
	}
	return star
}

// FetchFunc retrieves a URL under ctx and returns the HTTP status and
// body. It is satisfied by internal/webclient; the indirection keeps
// this package free of transport concerns.
type FetchFunc func(ctx context.Context, url string) (status int, body string, err error)

// Cache caches per-host policies and per-URL exclusion verdicts with a
// time-to-live, implementing w3newer's "that fact is cached" behaviour.
type Cache struct {
	// Agent is the robot name presented to exclusion rules.
	Agent string
	// TTL bounds how long a fetched policy is trusted.
	TTL time.Duration
	// Ignore disables the exclusion protocol entirely — the paper's
	// "special flag set when the script is invoked".
	Ignore bool
	// Metrics receives the cache-hit/fetch/exclusion counters;
	// obs.Default when nil.
	Metrics *obs.Registry

	fetch FetchFunc
	clock simclock.Clock

	mu       sync.Mutex
	policies map[string]cachedPolicy
}

type cachedPolicy struct {
	policy  *Policy
	fetched time.Time
}

// DefaultAgent is w3newer's robot name.
const DefaultAgent = "w3newer"

// NewCache returns a Cache using fetch to retrieve robots.txt files. If
// clock is nil the wall clock is used.
func NewCache(fetch FetchFunc, clock simclock.Clock) *Cache {
	if clock == nil {
		clock = simclock.Wall{}
	}
	return &Cache{
		Agent:    DefaultAgent,
		TTL:      7 * 24 * time.Hour,
		fetch:    fetch,
		clock:    clock,
		policies: make(map[string]cachedPolicy),
	}
}

// Allowed reports whether the robot may fetch the given URL; ctx bounds
// any robots.txt retrieval the verdict needs. Fetch failures fail open
// (a site without robots.txt allows robots), except that transport
// errors leave any cached policy in force.
func (c *Cache) Allowed(ctx context.Context, rawURL string) bool {
	if c.Ignore {
		return true
	}
	scheme, host, path := splitURL(rawURL)
	if scheme != "http" && scheme != "https" {
		return true // file: and friends have no exclusion protocol
	}
	pol := c.policyFor(ctx, scheme, host)
	allowed := pol.Allowed(c.Agent, path)
	if !allowed {
		c.metrics().Counter("robots.excluded").Inc()
	}
	return allowed
}

// metrics returns the cache's registry (obs.Default when unset).
func (c *Cache) metrics() *obs.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return obs.Default
}

// policyFor returns the cached policy for host, refreshing it if stale.
// Refreshes are traced as "robots.fetch" spans under the caller's span.
func (c *Cache) policyFor(ctx context.Context, scheme, host string) *Policy {
	m := c.metrics()
	now := c.clock.Now()
	c.mu.Lock()
	cached, ok := c.policies[host]
	c.mu.Unlock()
	if ok && now.Sub(cached.fetched) <= c.TTL {
		m.Counter("robots.cache.hits").Inc()
		return cached.policy
	}
	m.Counter("robots.fetches").Inc()
	ctx, span := obs.StartSpan(ctx, "robots.fetch")
	span.SetAttr("host", host)
	status, bodyText, err := c.fetch(ctx, scheme+"://"+host+"/robots.txt")
	span.End()
	var pol *Policy
	switch {
	case err != nil && ok:
		m.Counter("robots.fetch.errors").Inc()
		obs.Logger().Warn("robots.txt refresh failed; keeping stale policy", "host", host, "err", err)
		return cached.policy // keep the stale policy on transport errors
	case err != nil || status >= 400:
		if err != nil {
			m.Counter("robots.fetch.errors").Inc()
			obs.Logger().Warn("robots.txt fetch failed; failing open", "host", host, "err", err)
		}
		pol = &Policy{} // no robots.txt: everything allowed
	default:
		pol = Parse(bodyText)
	}
	c.mu.Lock()
	c.policies[host] = cachedPolicy{policy: pol, fetched: now}
	c.mu.Unlock()
	return pol
}

// splitURL extracts scheme, host[:port], and path from a URL without
// net/url's full generality (the tracker normalises URLs upstream).
func splitURL(raw string) (scheme, host, path string) {
	scheme, rest, ok := strings.Cut(raw, "://")
	if !ok {
		return "", "", raw
	}
	scheme = strings.ToLower(scheme)
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return scheme, rest[:i], rest[i:]
	}
	return scheme, rest, "/"
}
