package robots

import (
	"context"
	"errors"
	"testing"
	"time"

	"aide/internal/simclock"
)

const sample = `# robots.txt for http://www.example.com/
User-agent: *
Disallow: /cgi-bin/
Disallow: /private/

User-agent: w3newer
Disallow: /stats/

User-agent: badbot
Disallow: /
`

func TestParseAndAllowed(t *testing.T) {
	p := Parse(sample)
	cases := []struct {
		agent, path string
		want        bool
	}{
		{"somebot", "/index.html", true},
		{"somebot", "/cgi-bin/counter", false},
		{"somebot", "/private/x", false},
		{"w3newer/1.0", "/stats/daily.html", false},
		{"w3newer/1.0", "/cgi-bin/counter", true}, // specific group overrides *
		{"w3newer/1.0", "/index.html", true},
		{"badbot", "/anything", false},
		{"BADBOT", "/anything", false}, // case-insensitive agents
	}
	for _, c := range cases {
		if got := p.Allowed(c.agent, c.path); got != c.want {
			t.Errorf("Allowed(%q,%q) = %v, want %v", c.agent, c.path, got, c.want)
		}
	}
}

func TestEmptyDisallowAllowsAll(t *testing.T) {
	p := Parse("User-agent: *\nDisallow:\n")
	if !p.Allowed("w3newer", "/anything") {
		t.Error("empty Disallow blocked access")
	}
}

func TestEmptyPolicyAllowsAll(t *testing.T) {
	p := Parse("")
	if !p.Allowed("w3newer", "/x") {
		t.Error("empty robots.txt blocked access")
	}
	var nilPolicy *Policy
	if !nilPolicy.Allowed("w3newer", "/x") {
		t.Error("nil policy blocked access")
	}
}

func TestCommentsIgnored(t *testing.T) {
	p := Parse("User-agent: * # everyone\nDisallow: /secret/ # hidden\n")
	if p.Allowed("x", "/secret/a") {
		t.Error("commented Disallow ignored")
	}
}

func TestMultipleAgentsShareGroup(t *testing.T) {
	p := Parse("User-agent: alpha\nUser-agent: beta\nDisallow: /x/\n")
	if p.Allowed("alpha", "/x/1") || p.Allowed("beta", "/x/1") {
		t.Error("shared group not applied to both agents")
	}
	if !p.Allowed("gamma", "/x/1") {
		t.Error("unrelated agent blocked")
	}
}

// fakeFetcher serves robots.txt bodies and counts fetches.
type fakeFetcher struct {
	bodies map[string]string // url -> body
	status int
	err    error
	calls  int
}

func (f *fakeFetcher) fetch(ctx context.Context, url string) (int, string, error) {
	f.calls++
	if f.err != nil {
		return 0, "", f.err
	}
	body, ok := f.bodies[url]
	if !ok {
		return 404, "", nil
	}
	status := f.status
	if status == 0 {
		status = 200
	}
	return status, body, nil
}

func TestCacheAllowedAndCaching(t *testing.T) {
	ff := &fakeFetcher{bodies: map[string]string{
		"http://host.example/robots.txt": "User-agent: *\nDisallow: /cgi-bin/\n",
	}}
	clock := simclock.New(time.Time{})
	c := NewCache(ff.fetch, clock)

	if c.Allowed(context.Background(), "http://host.example/cgi-bin/counter") {
		t.Error("disallowed URL permitted")
	}
	if !c.Allowed(context.Background(), "http://host.example/page.html") {
		t.Error("allowed URL blocked")
	}
	if ff.calls != 1 {
		t.Errorf("robots.txt fetched %d times, want 1 (cached)", ff.calls)
	}

	// After the TTL the policy is refreshed.
	clock.Advance(c.TTL + time.Hour)
	c.Allowed(context.Background(), "http://host.example/page.html")
	if ff.calls != 2 {
		t.Errorf("stale policy not refreshed: calls = %d", ff.calls)
	}
}

func TestCacheMissingRobotsAllows(t *testing.T) {
	ff := &fakeFetcher{bodies: map[string]string{}}
	c := NewCache(ff.fetch, simclock.New(time.Time{}))
	if !c.Allowed(context.Background(), "http://nofile.example/anything") {
		t.Error("404 robots.txt blocked access")
	}
}

func TestCacheTransportErrorKeepsStalePolicy(t *testing.T) {
	ff := &fakeFetcher{bodies: map[string]string{
		"http://host.example/robots.txt": "User-agent: *\nDisallow: /x/\n",
	}}
	clock := simclock.New(time.Time{})
	c := NewCache(ff.fetch, clock)
	if c.Allowed(context.Background(), "http://host.example/x/1") {
		t.Fatal("initial policy not applied")
	}
	// Host becomes unreachable; the stale policy stays in force.
	ff.err = errors.New("network unreachable")
	clock.Advance(c.TTL + time.Hour)
	if c.Allowed(context.Background(), "http://host.example/x/1") {
		t.Error("stale policy dropped on transport error")
	}
}

func TestCacheTransportErrorNoPolicyFailsOpen(t *testing.T) {
	ff := &fakeFetcher{err: errors.New("timeout")}
	c := NewCache(ff.fetch, simclock.New(time.Time{}))
	if !c.Allowed(context.Background(), "http://unreachable.example/x") {
		t.Error("transport error with no cached policy blocked access")
	}
}

func TestCacheIgnoreFlag(t *testing.T) {
	ff := &fakeFetcher{bodies: map[string]string{
		"http://host.example/robots.txt": "User-agent: *\nDisallow: /\n",
	}}
	c := NewCache(ff.fetch, simclock.New(time.Time{}))
	c.Ignore = true // the paper's override flag
	if !c.Allowed(context.Background(), "http://host.example/anything") {
		t.Error("Ignore flag did not bypass exclusion")
	}
	if ff.calls != 0 {
		t.Error("robots.txt fetched despite Ignore")
	}
}

func TestNonHTTPSchemesExempt(t *testing.T) {
	ff := &fakeFetcher{}
	c := NewCache(ff.fetch, simclock.New(time.Time{}))
	if !c.Allowed(context.Background(), "file:/etc/motd") {
		t.Error("file: URL subjected to robots exclusion")
	}
	if ff.calls != 0 {
		t.Error("fetch attempted for file: URL")
	}
}

func TestSplitURL(t *testing.T) {
	cases := []struct {
		in                  string
		scheme, host, ppath string
	}{
		{"http://h/p/q", "http", "h", "/p/q"},
		{"http://h:8080/", "http", "h:8080", "/"},
		{"http://h", "http", "h", "/"},
		{"HTTPS://H/x", "https", "H", "/x"},
		{"file:/x", "", "", "file:/x"},
	}
	for _, c := range cases {
		s, h, p := splitURL(c.in)
		if s != c.scheme || h != c.host || p != c.ppath {
			t.Errorf("splitURL(%q) = (%q,%q,%q)", c.in, s, h, p)
		}
	}
}
