package w3config_test

import (
	"fmt"

	"aide/internal/w3config"
)

// Example parses the paper's literal Table 1 and resolves a few URLs.
func Example() {
	cfg, _ := w3config.ParseString(w3config.Table1)
	for _, url := range []string{
		"http://www.yahoo.com/Computers/",
		"http://www.research.att.com/orgs/ssr/",
		"http://www.unitedmedia.com/comics/dilbert/",
		"http://www.usenix.org/",
	} {
		fmt.Printf("%s -> %s\n", url, cfg.ThresholdFor(url))
	}
	// Output:
	// http://www.yahoo.com/Computers/ -> 7d
	// http://www.research.att.com/orgs/ssr/ -> 0
	// http://www.unitedmedia.com/comics/dilbert/ -> never
	// http://www.usenix.org/ -> 2d
}
