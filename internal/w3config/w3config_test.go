package w3config

import (
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, src string) *Config {
	t.Helper()
	cfg, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestTable1Semantics checks every row of the paper's Table 1 against the
// thresholds the text describes.
func TestTable1Semantics(t *testing.T) {
	cfg := mustParse(t, Table1)
	cases := []struct {
		url  string
		want Threshold
		why  string
	}{
		{"http://www.yahoo.com/Computers/", Threshold{Every: 7 * 24 * time.Hour},
			"Yahoo checked only every seven days to reduce load"},
		{"file:/home/douglis/notes.html", Threshold{},
			"local files checked on every run (stat is cheap)"},
		{"http://www.research.att.com/people/", Threshold{},
			"anything in att.com checked every execution"},
		{"http://www.ncsa.uiuc.edu/SDG/Software/Mosaic/Docs/whats-new.html",
			Threshold{Every: 12 * time.Hour}, "Mosaic what's-new every 12h"},
		{"http://snapple.cs.washington.edu:600/mobile/", Threshold{Every: 24 * time.Hour},
			"mobile page daily"},
		{"http://www.unitedmedia.com/comics/dilbert/", Threshold{Never: true},
			"Dilbert never checked: always different"},
		{"http://www.usenix.org/", Threshold{Every: 48 * time.Hour},
			"unmatched URLs use the 2d default"},
	}
	for _, c := range cases {
		if got := cfg.ThresholdFor(c.url); got != c.want {
			t.Errorf("%s: got %+v, want %+v (%s)", c.url, got, c.want, c.why)
		}
	}
	if !cfg.HasExplicitDefault() {
		t.Error("Table1 default not detected")
	}
}

func TestFirstMatchWins(t *testing.T) {
	cfg := mustParse(t, `
http://host/special/.* 0
http://host/.* 7d
`)
	if got := cfg.ThresholdFor("http://host/special/page.html"); got.Every != 0 || got.Never {
		t.Errorf("specific rule not preferred: %+v", got)
	}
	if got := cfg.ThresholdFor("http://host/other.html"); got.Every != 7*24*time.Hour {
		t.Errorf("general rule not applied: %+v", got)
	}
}

func TestPatternsAreAnchored(t *testing.T) {
	cfg := mustParse(t, `http://att\.com/x 0`)
	// A URL merely containing the pattern must not match.
	if got := cfg.ThresholdFor("http://evil.example/http://att.com/x"); got.Every == 0 && !got.Never {
		t.Error("unanchored pattern matched embedded URL")
	}
	if got := cfg.ThresholdFor("http://att.com/xy"); got.Every == 0 && !got.Never {
		t.Error("pattern matched URL with trailing garbage")
	}
}

func TestParseThreshold(t *testing.T) {
	cases := []struct {
		in      string
		want    Threshold
		wantErr bool
	}{
		{"0", Threshold{}, false},
		{"never", Threshold{Never: true}, false},
		{"NEVER", Threshold{Never: true}, false},
		{"2d", Threshold{Every: 48 * time.Hour}, false},
		{"12h", Threshold{Every: 12 * time.Hour}, false},
		{"1d12h", Threshold{Every: 36 * time.Hour}, false},
		{"30m", Threshold{Every: 30 * time.Minute}, false},
		{"", Threshold{}, true},
		{"abc", Threshold{}, true},
		{"12", Threshold{}, true},
		{"12x", Threshold{}, true},
		{"d", Threshold{}, true},
	}
	for _, c := range cases {
		got, err := ParseThreshold(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseThreshold(%q) succeeded, want error", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseThreshold(%q) = (%+v,%v), want %+v", c.in, got, err, c.want)
		}
	}
}

func TestThresholdString(t *testing.T) {
	cases := []struct {
		in   Threshold
		want string
	}{
		{Threshold{Never: true}, "never"},
		{Threshold{}, "0"},
		{Threshold{Every: 48 * time.Hour}, "2d"},
		{Threshold{Every: 36 * time.Hour}, "1d12h"},
		{Threshold{Every: 12 * time.Hour}, "12h"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.in, got, c.want)
		}
	}
	// Round trip.
	for _, s := range []string{"never", "0", "2d", "12h", "1d12h"} {
		th, err := ParseThreshold(s)
		if err != nil {
			t.Fatal(err)
		}
		if th.String() != s {
			t.Errorf("round trip %q -> %q", s, th.String())
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	cfg := mustParse(t, `
# leading comment

Default 1d
# comment between rules

http://x/.* 0
`)
	if len(cfg.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(cfg.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"http://x/ 0 extra",
		"http://x/",
		"http://x/ 5q",
		`http://[bad 0`,
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", c)
		}
	}
}

func TestNoDefaultUsesPackageDefault(t *testing.T) {
	cfg := mustParse(t, "http://x/.* 0\n")
	if cfg.HasExplicitDefault() {
		t.Error("spurious explicit default")
	}
	if got := cfg.ThresholdFor("http://unmatched/"); got != DefaultThreshold {
		t.Errorf("fallback = %+v, want %+v", got, DefaultThreshold)
	}
}

func TestMatchingRule(t *testing.T) {
	cfg := mustParse(t, Table1)
	if got := cfg.MatchingRule("http://www.yahoo.com/a"); !strings.Contains(got, "yahoo") {
		t.Errorf("MatchingRule = %q", got)
	}
	if got := cfg.MatchingRule("http://nomatch.example/"); got != "Default" {
		t.Errorf("MatchingRule fallback = %q", got)
	}
}

func BenchmarkConfigMatch(b *testing.B) {
	cfg, err := ParseString(Table1)
	if err != nil {
		b.Fatal(err)
	}
	urls := []string{
		"http://www.yahoo.com/Computers/WWW/",
		"http://www.research.att.com/orgs/ssr/",
		"http://www.usenix.org/events/",
		"file:/home/u/notes.html",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.ThresholdFor(urls[i%len(urls)])
	}
}
