// Package w3config parses w3newer's per-URL polling-threshold
// configuration, the format shown in the paper's Table 1:
//
//	# Comments start with a sharp sign.
//	# Default is equivalent to ending the file with ".*"
//	Default                                          2d
//	file:.*                                          0
//	http://www\.yahoo\.com/.*                        7d
//	http://.*\.att\.com/.*                           0
//	http://www\.unitedmedia\.com/comics/dilbert/     never
//
// Each line pairs a pattern with a threshold: the maximum frequency of
// direct HEAD requests for matching URLs. 0 means "check on every run",
// "never" means the URL is never checked, and durations combine days and
// hours ("2d", "12h", "1d12h"). The first matching pattern wins.
package w3config

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// DefaultThreshold applies when a configuration has no Default line: one
// day, a reasonable compromise between freshness and server load.
var DefaultThreshold = Threshold{Every: 24 * time.Hour}

// Threshold is a per-URL polling bound.
type Threshold struct {
	// Never means the URL must not be checked at all (e.g. pages known
	// to differ on every fetch, like the paper's Dilbert example).
	Never bool
	// Every is the minimum interval between direct checks. Zero means
	// check on every run.
	Every time.Duration
}

// String renders the threshold in the configuration syntax.
func (t Threshold) String() string {
	if t.Never {
		return "never"
	}
	if t.Every == 0 {
		return "0"
	}
	var sb strings.Builder
	d := t.Every
	if days := d / (24 * time.Hour); days > 0 {
		fmt.Fprintf(&sb, "%dd", days)
		d -= days * 24 * time.Hour
	}
	if hours := d / time.Hour; hours > 0 {
		fmt.Fprintf(&sb, "%dh", hours)
		d -= hours * time.Hour
	}
	if sb.Len() == 0 || d != 0 {
		// Sub-hour residue has no syntax; fall back to hours rounded up.
		return fmt.Sprintf("%dh", (t.Every+time.Hour-1)/time.Hour)
	}
	return sb.String()
}

// Rule pairs a URL pattern with its threshold.
type Rule struct {
	// Raw is the pattern as written in the file.
	Raw string
	// Pattern is the compiled, fully anchored form.
	Pattern *regexp.Regexp
	// Threshold is the polling bound for matching URLs.
	Threshold Threshold
}

// Config is an ordered rule list plus the default threshold.
type Config struct {
	// Rules are consulted in file order; the first match wins.
	Rules []Rule
	// Default applies when no rule matches.
	Default Threshold
	// hasDefault records whether the file set Default explicitly.
	hasDefault bool
}

// Parse reads a configuration in the Table 1 format.
func Parse(r io.Reader) (*Config, error) {
	cfg := &Config{Default: DefaultThreshold}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("w3config: line %d: want \"pattern threshold\", got %q", lineNo, line)
		}
		th, err := ParseThreshold(fields[1])
		if err != nil {
			return nil, fmt.Errorf("w3config: line %d: %v", lineNo, err)
		}
		if fields[0] == "Default" {
			cfg.Default = th
			cfg.hasDefault = true
			continue
		}
		re, err := regexp.Compile("^(?:" + fields[0] + ")$")
		if err != nil {
			return nil, fmt.Errorf("w3config: line %d: bad pattern %q: %v", lineNo, fields[0], err)
		}
		cfg.Rules = append(cfg.Rules, Rule{Raw: fields[0], Pattern: re, Threshold: th})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Config, error) { return Parse(strings.NewReader(s)) }

// ParseThreshold parses "0", "never", or a day/hour combination.
func ParseThreshold(s string) (Threshold, error) {
	switch strings.ToLower(s) {
	case "never":
		return Threshold{Never: true}, nil
	case "0":
		return Threshold{}, nil
	}
	var total time.Duration
	rest := strings.ToLower(s)
	seen := false
	for rest != "" {
		i := 0
		for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
			i++
		}
		if i == 0 || i >= len(rest) {
			return Threshold{}, fmt.Errorf("bad threshold %q", s)
		}
		n, err := strconv.Atoi(rest[:i])
		if err != nil {
			return Threshold{}, fmt.Errorf("bad threshold %q: %v", s, err)
		}
		switch rest[i] {
		case 'd':
			total += time.Duration(n) * 24 * time.Hour
		case 'h':
			total += time.Duration(n) * time.Hour
		case 'm':
			total += time.Duration(n) * time.Minute
		default:
			return Threshold{}, fmt.Errorf("bad threshold unit %q in %q", rest[i], s)
		}
		rest = rest[i+1:]
		seen = true
	}
	if !seen {
		return Threshold{}, fmt.Errorf("empty threshold %q", s)
	}
	return Threshold{Every: total}, nil
}

// ThresholdFor returns the threshold governing url: the first matching
// rule, or the default.
func (c *Config) ThresholdFor(url string) Threshold {
	for _, r := range c.Rules {
		if r.Pattern.MatchString(url) {
			return r.Threshold
		}
	}
	return c.Default
}

// MatchingRule returns the raw pattern that governs url ("Default" when
// none matches), for report annotations.
func (c *Config) MatchingRule(url string) string {
	for _, r := range c.Rules {
		if r.Pattern.MatchString(url) {
			return r.Raw
		}
	}
	return "Default"
}

// HasExplicitDefault reports whether the file set a Default line.
func (c *Config) HasExplicitDefault() bool { return c.hasDefault }

// Table1 is the paper's example configuration, usable as a ready-made
// Config for demos and the Table 1 experiment.
const Table1 = `# Comments start with a sharp sign.
# perl syntax requires that "." be escaped
# Default is equivalent to ending the file with ".*"
Default 2d
file:.* 0
http://www\.yahoo\.com/.* 7d
http://.*\.att\.com/.* 0
http://www\.ncsa\.uiuc\.edu/SDG/Software/Mosaic/Docs/whats-new\.html 12h
http://snapple\.cs\.washington\.edu:600/mobile/ 1d
# this is in my hotlist but will be different every day
http://www\.unitedmedia\.com/comics/dilbert/ never
`
