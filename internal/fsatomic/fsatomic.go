// Package fsatomic provides crash-durable atomic file replacement: the
// write-temp-then-rename idiom every AIDE save path uses, hardened with
// an fsync of the file contents before the rename. Without the sync, a
// power loss shortly after the rename can leave the *new* name pointing
// at zero-length or partial data on journaled filesystems — the classic
// "atomic replace that wasn't". The rename itself stays the atomicity
// point; the sync makes the data durable before the name flips.
package fsatomic

import "os"

// WriteFile atomically replaces path with data: the bytes are written
// to path+".tmp", fsynced, and renamed over path. On any error the
// temporary file is removed and the original file (if any) is left
// untouched. The containing directory is fsynced best-effort after the
// rename so the new directory entry itself survives a crash.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(path)
	return nil
}

// syncDir fsyncs path's parent directory, ignoring errors: not every
// platform or filesystem supports opening directories for sync, and the
// rename has already succeeded.
func syncDir(path string) {
	dir := "."
	if i := lastSlash(path); i >= 0 {
		dir = path[:i]
		if dir == "" {
			dir = "/"
		}
	}
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func lastSlash(path string) int {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return i
		}
	}
	return -1
}
