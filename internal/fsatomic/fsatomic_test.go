package fsatomic

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := WriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Errorf("content = %q, want %q", got, "two")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: stat err = %v", err)
	}
}

func TestWriteFilePermissions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "secrets.json")
	if err := WriteFile(path, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := fi.Mode().Perm(); perm != 0o600 {
		t.Errorf("perm = %o, want 600", perm)
	}
}

func TestWriteFileErrorLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nosuchdir", "state.json")
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("writing into a missing directory succeeded")
	}
	existing := filepath.Join(dir, "keep.json")
	if err := WriteFile(existing, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A failed replacement must not clobber the existing file. Simulate
	// by making the tmp path a directory so the open fails.
	if err := os.Mkdir(existing+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(existing, []byte("new"), 0o644); err == nil {
		t.Fatal("expected error when tmp path is unwritable")
	}
	os.Remove(existing + ".tmp")
	got, _ := os.ReadFile(existing)
	if string(got) != "original" {
		t.Errorf("original clobbered: %q", got)
	}
}
