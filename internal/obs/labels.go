package obs

// Labeled metric families. A *Vec is a named family of child metrics
// keyed by an ordered list of label values — the RED middleware records
// http.requests{endpoint="/diff",code="2xx"} style series here, and the
// Prometheus exposition renders each child as one sample line.
//
// Cardinality discipline: label values must come from small closed sets
// (route patterns, status classes, shard indices), never from raw URLs,
// user names, or other unbounded input. Each distinct value combination
// allocates a child that lives for the life of the registry.

import (
	"sort"
	"strings"
	"sync"
)

// labelKey renders a label set into the canonical child key / series
// name suffix: {k1="v1",k2="v2"} in declared label order. Values are
// escaped so that a quote or backslash in a value cannot forge a key.
func labelKey(names, values []string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue escapes backslash, double-quote, and newline per the
// Prometheus text format; the same form keys the child maps.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	name   string
	labels []string

	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label values (in the
// declared label order), creating it on first use. Missing values are
// treated as ""; extra values are ignored.
func (v *CounterVec) With(values ...string) *Counter {
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	name   string
	labels []string

	mu       sync.Mutex
	children map[string]*Gauge
}

// With returns the child gauge for the given label values, creating it
// on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[key]
	if !ok {
		g = &Gauge{}
		v.children[key] = g
	}
	return g
}

// HistogramVec is a family of histograms keyed by label values. All
// children share the family's bucket bounds.
type HistogramVec struct {
	name   string
	labels []string
	bounds []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label values, creating
// it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = &Histogram{bounds: v.bounds, counts: make([]int64, len(v.bounds)+1)}
		v.children[key] = h
	}
	return h
}

// CounterVec returns the named counter family with the given label
// names, creating it on first use. Later calls return the existing
// family regardless of label names.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = &CounterVec{
			name:     name,
			labels:   append([]string(nil), labels...),
			children: make(map[string]*Counter),
		}
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge family, creating it on first use.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{
			name:     name,
			labels:   append([]string(nil), labels...),
			children: make(map[string]*Gauge),
		}
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family with the given bucket
// upper bounds (nil means LatencyBuckets), creating it on first use.
func (r *Registry) HistogramVec(name string, bounds []float64, labels ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histVecs[name]
	if !ok {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		v = &HistogramVec{
			name:     name,
			labels:   append([]string(nil), labels...),
			bounds:   b,
			children: make(map[string]*Histogram),
		}
		r.histVecs[name] = v
	}
	return v
}

// counterChildren snapshots one family's children as rendered-name →
// counter pairs. Caller holds the registry lock only; the vec lock is
// taken here.
func (v *CounterVec) each(fn func(series string, c *Counter)) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*Counter, len(keys))
	for i, k := range keys {
		kids[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		fn(v.name+k, kids[i])
	}
}

func (v *GaugeVec) each(fn func(series string, g *Gauge)) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*Gauge, len(keys))
	for i, k := range keys {
		kids[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		fn(v.name+k, kids[i])
	}
}

func (v *HistogramVec) each(fn func(series string, h *Histogram)) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*Histogram, len(keys))
	for i, k := range keys {
		kids[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		fn(v.name+k, kids[i])
	}
}
