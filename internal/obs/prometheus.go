package obs

// Prometheus text exposition (format version 0.0.4) for the registry,
// served at /metrics alongside the JSON /debug/metrics. Metric names are
// sanitised (dots become underscores), counters gain the conventional
// _total suffix, and histograms are rendered with cumulative _bucket
// series, _sum, and _count — so a stock Prometheus scrape of snapshotd
// yields per-endpoint RED series without any bridge process.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// promContentType is the text-exposition content type Prometheus
// scrapers negotiate.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitises a registry metric name into the Prometheus name
// charset [a-zA-Z0-9_:], mapping the registry's dotted names onto the
// conventional underscore form (webclient.attempts → webclient_attempts).
func promName(name string) string {
	var sb strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// splitSeries separates a snapshot series name into its family name and
// label block ("" when unlabeled): `a.b{k="v"}` → `a.b`, `{k="v"}`.
func splitSeries(series string) (name, labels string) {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i], series[i:]
	}
	return series, ""
}

// promFloat renders a sample value; Prometheus spells infinities +Inf/-Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels appends an extra label to a rendered label block:
// (`{a="b"}`, `le="1"`) → `{a="b",le="1"}`; ("", `le="1"`) → `{le="1"}`.
func mergeLabels(block, extra string) string {
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}

// WritePrometheus writes the registry's current state in the Prometheus
// text exposition format. Series are grouped per family under one
// # TYPE line and emitted in sorted order, so identical metric states
// yield byte-identical output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	type series struct{ labels, value string }
	families := make(map[string][]series) // sanitised family name → samples
	types := make(map[string]string)      // sanitised family name → TYPE

	add := func(family, typ, labels, value string) {
		families[family] = append(families[family], series{labels, value})
		types[family] = typ
	}

	for s, v := range snap.Counters {
		name, labels := splitSeries(s)
		add(promName(name)+"_total", "counter", labels, strconv.FormatInt(v, 10))
	}
	for s, v := range snap.Gauges {
		name, labels := splitSeries(s)
		add(promName(name), "gauge", labels, strconv.FormatInt(v, 10))
	}
	for s, h := range snap.Histograms {
		name, labels := splitSeries(s)
		fam := promName(name)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := mergeLabels(labels, `le="`+promFloat(b.UpperBound)+`"`)
			families[fam+"_bucket"] = append(families[fam+"_bucket"],
				series{le, strconv.FormatInt(cum, 10)})
		}
		types[fam+"_bucket"] = "" // buckets ride under the family TYPE line
		add(fam+"_sum", "", labels, promFloat(h.Sum))
		add(fam+"_count", "", labels, strconv.FormatInt(h.Count, 10))
		types[fam] = "histogram"
	}

	names := make([]string, 0, len(families))
	for f := range families {
		names = append(names, f)
	}
	// Histogram families have no samples under the bare family name, only
	// a TYPE line; include them so the header is emitted.
	for f, t := range types {
		if t == "histogram" {
			if _, ok := families[f]; !ok {
				names = append(names, f)
			}
		}
	}
	sort.Strings(names)

	for _, fam := range names {
		if t := types[fam]; t != "" {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, t); err != nil {
				return err
			}
		}
		ss := families[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", fam, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrometheusHandler serves the registry (Default when nil) in the
// Prometheus text exposition format — the /metrics endpoint.
func PrometheusHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			reg = Default
		}
		w.Header().Set("Content-Type", promContentType)
		reg.WritePrometheus(w)
	})
}
