package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheus checks name sanitisation, the counter _total
// convention, labeled series, and cumulative histogram buckets.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("webclient.attempts").Add(7)
	reg.Gauge("sched.queue").Set(42)
	reg.CounterVec("http.requests", "endpoint", "code").With("/diff", "2xx").Add(3)
	h := reg.HistogramVec("http.request.duration", []float64{0.1, 1}, "endpoint").With("/diff")
	// Exactly representable values, so the _sum sample renders exactly.
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(5) // +Inf bucket

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE webclient_attempts_total counter\n",
		"webclient_attempts_total 7\n",
		"# TYPE sched_queue gauge\n",
		"sched_queue 42\n",
		`http_requests_total{endpoint="/diff",code="2xx"} 3` + "\n",
		"# TYPE http_request_duration histogram\n",
		`http_request_duration_bucket{endpoint="/diff",le="0.1"} 1` + "\n",
		`http_request_duration_bucket{endpoint="/diff",le="1"} 2` + "\n",
		`http_request_duration_bucket{endpoint="/diff",le="+Inf"} 3` + "\n",
		`http_request_duration_count{endpoint="/diff"} 3` + "\n",
		`http_request_duration_sum{endpoint="/diff"} 5.5625` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "webclient.attempts") {
		t.Error("unsanitised dotted name leaked into exposition")
	}
}

// TestWritePrometheusDeterministic checks identical states render
// byte-identically (sorted families and series).
func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		reg.CounterVec("c", "l").With("b").Inc()
		reg.CounterVec("c", "l").With("a").Add(2)
		reg.Counter("z.last").Inc()
		reg.Histogram("h", []float64{1}).Observe(0.5)
		return reg
	}
	var a, b strings.Builder
	build().WritePrometheus(&a)
	build().WritePrometheus(&b)
	if a.String() != b.String() {
		t.Errorf("nondeterministic exposition:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestPrometheusHandler drives the /metrics endpoint over HTTP.
func TestPrometheusHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	srv := httptest.NewServer(PrometheusHandler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 1") {
		t.Errorf("body = %q", string(buf[:n]))
	}
}
