package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"aide/internal/simclock"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race this also proves the registry's get-or-create is safe.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 32, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hits").Inc()
				r.Gauge("inflight").Add(1)
				r.Histogram("lat", nil).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("inflight").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestCounterIgnoresNegative checks counters are monotone.
func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

// TestHistogramBucketBoundaries pins the cumulative-bucket convention:
// a value exactly at a bound counts in that bound's bucket, values past
// every bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 9.99, 10, 11, 1e6} {
		h.Observe(v)
	}
	s := h.snapshot()
	wantCounts := []int64{2, 2, 2, 2} // [<=0.1, <=1, <=10, +Inf]
	if len(s.Buckets) != len(wantCounts) {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
}

// TestSnapshotDeterministicUnderSimclock runs the same simclock-paced
// observation schedule into two registries and demands identical JSON —
// the property that lets aidebench report reproducible numbers.
func TestSnapshotDeterministicUnderSimclock(t *testing.T) {
	run := func() string {
		clock := simclock.New(time.Time{})
		r := NewRegistry()
		for i := 0; i < 50; i++ {
			start := clock.Now()
			clock.Advance(time.Duration(i%7) * 100 * time.Millisecond)
			r.Histogram("fetch", nil).ObserveDuration(clock.Now().Sub(start))
			r.Counter("attempts").Inc()
			if i%3 == 0 {
				r.Counter("retries").Inc()
			}
			r.Gauge("inflight").Set(int64(i % 5))
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("snapshots differ:\n%s\n--- vs ---\n%s", a, b)
	}
	if !strings.Contains(a, `"attempts": 50`) {
		t.Errorf("snapshot missing attempts:\n%s", a)
	}
	if !strings.Contains(a, `"+Inf"`) {
		t.Errorf("snapshot missing +Inf bucket:\n%s", a)
	}
}

// TestSummaryLine checks prefix filtering, zero elision, and sorting.
func TestSummaryLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("webclient.attempts").Add(4)
	r.Counter("webclient.retries") // zero: elided
	r.Counter("other.thing").Inc()
	r.Histogram("tracker.sweep.duration", nil).Observe(0.25)
	got := r.SummaryLine("webclient.", "tracker.")
	want := "tracker.sweep.duration.count=1 tracker.sweep.duration.sum_ms=250.0 webclient.attempts=4"
	if got != want {
		t.Errorf("summary = %q, want %q", got, want)
	}
}
