package obs

// Structured leveled logging on log/slog. The default logger discards
// everything, so library code can log freely without polluting test
// output or the reports of the paper's quiet, cron-driven tools; the
// -log-level flag on snapshotd and w3newer installs a real handler.

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(slog.DiscardHandler))
}

// Logger returns the process logger (silent unless configured).
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the process logger.
func SetLogger(l *slog.Logger) {
	if l != nil {
		logger.Store(l)
	}
}

// ParseLevel maps a flag value to a slog.Level.
func ParseLevel(level string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(level)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
}

// EnableLogging installs a text handler writing to w at the given
// level — the -log-level flag's implementation.
func EnableLogging(w io.Writer, level string) error {
	lv, err := ParseLevel(level)
	if err != nil {
		return err
	}
	SetLogger(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lv})))
	return nil
}
