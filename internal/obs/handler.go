package obs

// HTTP exposure: /debug/metrics serves a registry snapshot as JSON,
// /debug/traces the tracer's ring buffer. Handler produces a handler
// bound to specific instances (the AIDE server mounts one for its
// registry); DebugMux additionally wires net/http/pprof for the
// -debug-addr sidecar server on snapshotd and w3newer.

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves /debug/metrics and /debug/traces for the given
// registry and tracer (Default/DefaultTracer when nil).
func Handler(reg *Registry, tr *Tracer) http.Handler {
	if reg == nil {
		reg = Default
	}
	if tr == nil {
		tr = DefaultTracer
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tr.Spans())
	})
	return mux
}

// DebugMux is the full diagnostics mux for a -debug-addr server:
// /debug/metrics, /debug/traces, and the pprof endpoints.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", Handler(nil, nil))
	mux.Handle("/debug/traces", Handler(nil, nil))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
