package obs

// HTTP exposure: /debug/metrics serves a registry snapshot as JSON,
// /metrics the same registry in Prometheus text-exposition format, and
// /debug/traces the tracer's ring buffer (filterable to one trace with
// ?trace=<32-hex id>, the cross-process view of a propagated request).
// Handler produces a handler bound to specific instances (the AIDE
// server mounts one for its registry); DebugMux additionally wires
// net/http/pprof for the -debug-addr sidecar server on snapshotd and
// w3newer.

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler serves /debug/metrics, /metrics, and /debug/traces for the
// given registry and tracer (Default/DefaultTracer when nil).
func Handler(reg *Registry, tr *Tracer) http.Handler {
	if reg == nil {
		reg = Default
	}
	if tr == nil {
		tr = DefaultTracer
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.Handle("/metrics", PrometheusHandler(reg))
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		ServeTraces(w, r, tr)
	})
	return mux
}

// ServeTraces writes the tracer's retained spans as JSON. With a
// ?trace=<32-hex id> query only that trace's spans are returned, oldest
// first — the single-request view spanning every process whose spans
// landed in this tracer.
func ServeTraces(w http.ResponseWriter, r *http.Request, tr *Tracer) {
	if tr == nil {
		tr = DefaultTracer
	}
	spans := tr.Spans()
	if want := strings.ToLower(strings.TrimSpace(r.URL.Query().Get("trace"))); want != "" {
		filtered := spans[:0:0]
		for _, s := range spans {
			if s.Trace == want {
				filtered = append(filtered, s)
			}
		}
		spans = filtered
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(spans)
}

// DebugMux is the full diagnostics mux for a -debug-addr server:
// /debug/metrics, /metrics, /debug/traces, and the pprof endpoints.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	h := Handler(nil, nil)
	mux.Handle("/debug/metrics", h)
	mux.Handle("/metrics", h)
	mux.Handle("/debug/traces", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
