package obs

// HTTPMiddleware wraps a server mux with RED instrumentation: request
// Rate, Error count, and Duration histogram, each labeled by route
// pattern and status class, plus an in-flight gauge and a server-side
// trace span that joins the remote caller's trace via the traceparent
// header. Routes come from the mux's registered patterns (RouteFromMux),
// so the label set stays bounded no matter what paths clients probe.

import (
	"bufio"
	"errors"
	"net"
	"net/http"
	"strconv"

	"aide/internal/simclock"
)

// MiddlewareConfig configures HTTPMiddleware. The zero value records to
// the Default registry and tracer with raw-path routes (fine for muxes
// with fixed patterns only; prefer RouteFromMux).
type MiddlewareConfig struct {
	// Registry receives the http.* metrics; Default when nil.
	Registry *Registry
	// Tracer receives the server spans; DefaultTracer when nil.
	Tracer *Tracer
	// Service annotates server spans (e.g. "snapshotd", "aide").
	Service string
	// Route maps a request to its endpoint label; r.URL.Path when nil.
	// Must return values from a bounded set — label cardinality is paid
	// for the registry's lifetime.
	Route func(*http.Request) string
	// Shard, when non-nil, maps a request to a shard label for the
	// http.requests.by_shard counter; return "" to skip the request.
	Shard func(*http.Request) string
	// Clock measures durations; wall clock when nil.
	Clock simclock.Clock
}

// RouteFromMux derives the endpoint label from the mux's registered
// pattern for the request — "/diff", "/shard/import", "/" for the
// catch-all — with "unmatched" for requests no pattern accepts.
func RouteFromMux(mux *http.ServeMux) func(*http.Request) string {
	return func(r *http.Request) string {
		_, pattern := mux.Handler(r)
		if pattern == "" {
			return "unmatched"
		}
		return pattern
	}
}

// statusClass buckets a status code for the code label: "2xx".."5xx",
// with "other" for anything outside 100..599.
func statusClass(status int) string {
	if status >= 100 && status < 600 {
		return strconv.Itoa(status/100) + "xx"
	}
	return "other"
}

// HTTPMiddleware returns next wrapped with RED metrics, in-flight
// accounting, and server-span tracing.
func HTTPMiddleware(next http.Handler, cfg MiddlewareConfig) http.Handler {
	reg := cfg.Registry
	if reg == nil {
		reg = Default
	}
	tr := cfg.Tracer
	if tr == nil {
		tr = DefaultTracer
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Wall{}
	}
	requests := reg.CounterVec("http.requests", "endpoint", "code")
	errorsVec := reg.CounterVec("http.errors", "endpoint", "code")
	byShard := reg.CounterVec("http.requests.by_shard", "endpoint", "shard")
	duration := reg.HistogramVec("http.request.duration", nil, "endpoint")
	inflight := reg.GaugeVec("http.inflight", "endpoint")

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := r.URL.Path
		if cfg.Route != nil {
			route = cfg.Route(r)
		}
		ctx := r.Context()
		if tp := r.Header.Get(TraceParentHeader); tp != "" {
			if sc, ok := Extract(tp); ok {
				ctx = WithRemote(ctx, sc)
			}
		}
		ctx = WithTracer(ctx, tr)
		ctx, span := StartSpan(ctx, "http.server")
		span.SetAttr("route", route)
		span.SetAttr("method", r.Method)
		if cfg.Service != "" {
			span.SetAttr("service", cfg.Service)
		}
		if r.Host != "" {
			span.SetAttr("host", r.Host)
		}
		shard := ""
		if cfg.Shard != nil {
			if shard = cfg.Shard(r); shard != "" {
				span.SetAttr("shard", shard)
			}
		}

		sw := &statusWriter{ResponseWriter: w}
		g := inflight.With(route)
		g.Add(1)
		start := clock.Now()
		defer func() {
			g.Add(-1)
			status := sw.Status()
			class := statusClass(status)
			if sw.hijacked {
				// The connection left HTTP's control (websocket-style
				// upgrade); latency and status no longer describe an HTTP
				// exchange, so record only the switch itself.
				class = "hijacked"
			} else {
				duration.With(route).ObserveDuration(clock.Now().Sub(start))
			}
			requests.With(route, class).Inc()
			if status >= 500 {
				errorsVec.With(route, class).Inc()
			}
			if shard != "" {
				byShard.With(route, shard).Inc()
			}
			span.SetAttr("status", strconv.Itoa(status))
			span.End()
		}()
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// statusWriter captures the response status without disturbing the
// optional ResponseWriter interfaces: a handler that never calls
// WriteHeader is recorded as the implicit 200, Flush passes through to a
// flushing underlying writer (and is a no-op otherwise, matching what
// callers that probe with a type assertion expect), and Hijack delegates
// when the underlying connection supports it. Unwrap exposes the inner
// writer for http.ResponseController, which finds any interface the
// wrapper doesn't re-declare.
type statusWriter struct {
	http.ResponseWriter
	status   int
	hijacked bool
}

// Status returns the recorded status: the explicit WriteHeader code, the
// implicit 200 once the body was written (or the handler returned
// without writing anything — net/http sends 200 there too), and 101 for
// hijacked connections.
func (w *statusWriter) Status() int {
	if w.hijacked {
		return http.StatusSwitchingProtocols
	}
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// WriteHeader records the first explicit status.
func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write records the implicit 200 of a body written before any
// WriteHeader call.
func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it can flush — the
// keepalive trickle and dribbled bodies depend on this reaching the
// socket.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack hands the connection over when the underlying writer supports
// it; the middleware then stops accounting the exchange as HTTP.
func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := w.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, errors.New("obs: underlying ResponseWriter does not support hijacking")
	}
	conn, rw, err := hj.Hijack()
	if err == nil {
		w.hijacked = true
	}
	return conn, rw, err
}

// Unwrap lets http.ResponseController reach interfaces the wrapper does
// not re-declare.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
