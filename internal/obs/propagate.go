package obs

// Cross-process trace propagation in the W3C Trace Context header form:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// The client side calls Inject to render its current span into the
// header it sends (webclient does this on every round trip); the server
// side calls Extract + WithRemote so the handler's first span becomes a
// child of the remote caller's span under the same trace id. A sweep on
// the leader that fans a shard delta out to a replica therefore shows up
// as one trace: the replicator's span, the webclient fetch span, and the
// replica's /shard/import server span all share the trace id and link
// parent-to-child across the socket.

import (
	"context"
	"os"
	"strings"
)

// TraceParentHeader is the propagation header name.
const TraceParentHeader = "traceparent"

// SpanContext is the cross-process identity of a span: just enough to
// parent a remote child. The zero value is "no context".
type SpanContext struct {
	// Trace is the 32-hex-digit trace id.
	Trace string
	// SpanID is the caller's span id (the parent-id field on the wire).
	SpanID uint64
}

// Valid reports whether the context can parent a child span.
func (sc SpanContext) Valid() bool {
	return len(sc.Trace) == 32 && sc.Trace != strings.Repeat("0", 32) && sc.SpanID != 0
}

// WithRemote returns a context under which the next StartSpan joins the
// remote caller's trace as a child of its span. An invalid SpanContext
// leaves ctx unchanged.
func WithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, sc)
}

// Inject renders the context's current span as a traceparent header
// value, or "" when no span is in flight.
func Inject(ctx context.Context) string {
	s := SpanFromContext(ctx)
	if s == nil {
		return ""
	}
	s.mu.Lock()
	trace, id := s.rec.Trace, s.rec.ID
	s.mu.Unlock()
	if len(trace) != 32 || id == 0 {
		return ""
	}
	return fmtTraceParent(trace, id)
}

func fmtTraceParent(trace string, spanID uint64) string {
	const hexdigits = "0123456789abcdef"
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(trace)
	b.WriteString("-")
	for shift := 60; shift >= 0; shift -= 4 {
		b.WriteByte(hexdigits[(spanID>>uint(shift))&0xf])
	}
	b.WriteString("-01")
	return b.String()
}

// Extract parses a traceparent header value. ok is false for malformed
// values, unknown lengths, or the all-zero ids the spec reserves.
func Extract(header string) (sc SpanContext, ok bool) {
	parts := strings.Split(strings.TrimSpace(header), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return SpanContext{}, false
	}
	if parts[0] == "ff" { // forbidden version
		return SpanContext{}, false
	}
	if !isHex(parts[0]) || !isHex(parts[1]) || !isHex(parts[2]) || !isHex(parts[3]) {
		return SpanContext{}, false
	}
	var spanID uint64
	for i := 0; i < 16; i++ {
		spanID = spanID<<4 | uint64(hexVal(parts[2][i]))
	}
	sc = SpanContext{Trace: strings.ToLower(parts[1]), SpanID: spanID}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return len(s) > 0
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

// SeedFromPID derives a per-process tracer seed from the process id —
// enough to keep span ids from two daemons distinct when their traces
// are merged, without obs itself touching the wall clock. Daemon mains
// call this once at startup:
//
//	obs.DefaultTracer.Seed = obs.SeedFromPID()
func SeedFromPID() uint64 {
	return mix64(uint64(os.Getpid())*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019)
}
