package obs

import (
	"context"
	"strings"
	"testing"
)

// TestInjectExtractRoundTrip checks a span injected on one side parents
// a span started on the other under the same trace id.
func TestInjectExtractRoundTrip(t *testing.T) {
	client := NewTracer(8)
	client.Seed = 11
	server := NewTracer(8)
	server.Seed = 22

	ctx, cs := StartSpan(WithTracer(context.Background(), client), "client.fetch")
	header := Inject(ctx)
	if header == "" {
		t.Fatal("Inject returned empty header for live span")
	}
	if !strings.HasPrefix(header, "00-") || len(header) != 55 {
		t.Fatalf("header = %q, want 00-<32hex>-<16hex>-01", header)
	}

	sc, ok := Extract(header)
	if !ok {
		t.Fatalf("Extract(%q) failed", header)
	}
	sctx := WithRemote(WithTracer(context.Background(), server), sc)
	_, ss := StartSpan(sctx, "server.handle")
	ss.End()
	cs.End()

	crec := client.Spans()[0]
	srec := server.Spans()[0]
	if crec.Trace != srec.Trace {
		t.Errorf("trace ids differ: client %s server %s", crec.Trace, srec.Trace)
	}
	if srec.Parent != crec.ID {
		t.Errorf("server parent = %x, want client span id %x", srec.Parent, crec.ID)
	}
	if srec.ID == crec.ID {
		t.Error("span ids collided across differently-seeded tracers")
	}
}

// TestExtractRejectsMalformed checks malformed traceparent values are
// rejected rather than producing garbage contexts.
func TestExtractRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"not-a-traceparent",
		"00-short-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-short-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
	} {
		if _, ok := Extract(bad); ok {
			t.Errorf("Extract(%q) accepted malformed input", bad)
		}
	}
}

// TestExtractCaseAndWhitespace checks tolerant parsing of valid inputs.
func TestExtractCaseAndWhitespace(t *testing.T) {
	sc, ok := Extract("  00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01  ")
	if !ok {
		t.Fatal("Extract rejected upper-case hex")
	}
	if sc.Trace != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace = %q, want lower-cased", sc.Trace)
	}
	if sc.SpanID != 0x00f067aa0ba902b7 {
		t.Errorf("span id = %x", sc.SpanID)
	}
}

// TestInjectNoSpan checks Inject is a no-op outside any span.
func TestInjectNoSpan(t *testing.T) {
	if h := Inject(context.Background()); h != "" {
		t.Errorf("Inject with no span = %q, want empty", h)
	}
}

// TestChildSpansInheritTrace checks in-process children keep the trace
// id their root minted.
func TestChildSpansInheritTrace(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	child.End()
	root.End()
	spans := tr.Spans()
	if spans[0].Trace == "" || spans[0].Trace != spans[1].Trace {
		t.Errorf("trace ids: %q vs %q", spans[0].Trace, spans[1].Trace)
	}
	if len(spans[0].Trace) != 32 {
		t.Errorf("trace id length = %d, want 32", len(spans[0].Trace))
	}
}

// TestDistinctRootsDistinctTraces checks two unrelated roots get
// different trace ids.
func TestDistinctRootsDistinctTraces(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)
	_, a := StartSpan(ctx, "a")
	a.End()
	_, b := StartSpan(ctx, "b")
	b.End()
	spans := tr.Spans()
	if spans[0].Trace == spans[1].Trace {
		t.Errorf("unrelated roots share trace id %s", spans[0].Trace)
	}
}
