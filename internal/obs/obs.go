// Package obs is AIDE's observability substrate: a dependency-free
// metrics registry (counters, gauges, fixed-bucket latency histograms),
// leveled structured logging with a silent default, and lightweight
// context-propagated trace spans with an in-memory ring-buffer exporter.
//
// The paper's w3newer "reports summary statistics" per sweep and the
// authors reason throughout about polling cost, cache hit rates, and
// diff latency; this package is the runtime counterpart. Every hot path
// (webclient attempts, tracker sweeps, proxy-cache lookups, snapshot
// check-ins, HtmlDiff invocations) records here, and the numbers are
// served as JSON from /debug/metrics and /debug/traces.
//
// Determinism: nothing in this package reads the wall clock on its own.
// Durations are observed by the instrumented code, which measures them
// on its injected simclock.Clock, so a run paced by simclock.Sim yields
// byte-for-byte identical snapshots.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous integer value, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (either direction).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LatencyBuckets are the default histogram bounds for network and diff
// latencies, in seconds: sub-millisecond cache hits through the paper's
// multi-minute wedged-proxy fetches.
var LatencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 5, 30, 120}

// Histogram counts observations into fixed cumulative buckets. An
// observation lands in the first bucket whose upper bound is >= the
// value; values above every bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []int64 // len(bounds)+1; last is +Inf
	sum    float64
}

// Observe records one value. NaN observations are dropped (a NaN would
// poison the sum and land in the +Inf bucket, skewing every quantile)
// and negative values — clock skew, subtraction bugs — are clamped to
// zero so the observation still counts without corrupting the sum.
// Values above the top bound land in the +Inf overflow bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n int64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// snapshot returns the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Sum: h.sum, Buckets: make([]Bucket, len(h.counts))}
	for i, c := range h.counts {
		b := Bucket{Count: c, UpperBound: math.Inf(1)}
		if i < len(h.bounds) {
			b.UpperBound = h.bounds[i]
		}
		s.Buckets[i] = b
		s.Count += c
	}
	return s
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. Metric accessors get-or-create,
// so instrumented code neither pre-registers nor error-checks.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// Default is the process-wide registry: instrumented packages record
// here unless a component was given its own registry, and the /debug
// endpoints serve it.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		counterVecs: make(map[string]*CounterVec),
		gaugeVecs:   make(map[string]*GaugeVec),
		histVecs:    make(map[string]*HistogramVec),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (sorted ascending) on first use; nil bounds mean
// LatencyBuckets. Later calls return the existing histogram regardless
// of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound (+Inf for the
	// overflow bucket, rendered as "+Inf" in JSON).
	UpperBound float64 `json:"le"`
	// Count is the number of observations in this bucket.
	Count int64 `json:"count"`
}

// MarshalJSON renders +Inf as a string, since JSON has no infinity.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b.UpperBound), "0"), ".")
	}
	return json.Marshal(struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON parses the string form written by MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if raw.Le == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	_, err := fmt.Sscanf(raw.Le, "%g", &b.UpperBound)
	return err
}

// HistogramSnapshot is a histogram's state at one instant.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the cumulative
// bucket counts, interpolating linearly within the containing bucket the
// way Prometheus histogram_quantile does. When the quantile falls in the
// +Inf overflow bucket the highest finite bound is returned (there is no
// upper edge to interpolate toward), so p99 stays computable even when
// observations exceed the top bound. An empty histogram yields NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 || q > 1 || len(s.Buckets) == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, b := range s.Buckets {
		cum += b.Count
		if float64(cum) < rank {
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			// Overflow bucket: report the last finite bound.
			if i == 0 {
				return math.NaN()
			}
			return s.Buckets[i-1].UpperBound
		}
		lower := 0.0
		if i > 0 {
			lower = s.Buckets[i-1].UpperBound
		}
		inBucket := float64(b.Count)
		if inBucket == 0 {
			return b.UpperBound
		}
		below := float64(cum) - inBucket
		return lower + (b.UpperBound-lower)*((rank-below)/inBucket)
	}
	return math.NaN()
}

// Snapshot is a registry's full state at one instant. Labeled families
// appear in the same maps as plain metrics, one entry per child under
// its rendered series name (`name{k="v",...}`). Maps marshal with
// sorted keys, so identical metric states yield identical JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value, labeled children
// included.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	for _, v := range r.counterVecs {
		v.each(func(series string, c *Counter) { s.Counters[series] = c.Value() })
	}
	for _, v := range r.gaugeVecs {
		v.each(func(series string, g *Gauge) { s.Gauges[series] = g.Value() })
	}
	for _, v := range r.histVecs {
		v.each(func(series string, h *Histogram) { s.Histograms[series] = h.snapshot() })
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// SummaryLine renders the registry as a single sorted "name=value" line
// for log output — w3newer's per-pass summary-statistics report. Only
// metrics whose name starts with one of the prefixes appear (no
// prefixes: everything); zero-valued counters are elided; histograms
// contribute name.count and name.sum_ms.
func (r *Registry) SummaryLine(prefixes ...string) string {
	match := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	s := r.Snapshot()
	var parts []string
	for name, v := range s.Counters {
		if v != 0 && match(name) {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	for name, v := range s.Gauges {
		if match(name) {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	for name, h := range s.Histograms {
		if h.Count != 0 && match(name) {
			parts = append(parts, fmt.Sprintf("%s.count=%d", name, h.Count),
				fmt.Sprintf("%s.sum_ms=%.1f", name, h.Sum*1000))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
