package obs

import (
	"context"
	"fmt"
	"testing"
	"time"

	"aide/internal/simclock"
)

// TestSpanNesting checks parent links and simclock-measured durations.
func TestSpanNesting(t *testing.T) {
	clock := simclock.New(time.Time{})
	tr := NewTracer(16)
	tr.Clock = clock
	ctx := WithTracer(context.Background(), tr)

	ctx, sweep := StartSpan(ctx, "sweep")
	ctx, check := StartSpan(ctx, "check")
	check.SetAttr("url", "http://h/")
	ctx2, fetch := StartSpan(ctx, "fetch")
	_ = ctx2
	clock.Advance(250 * time.Millisecond)
	fetch.End()
	check.End()
	clock.Advance(time.Second)
	sweep.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["fetch"].Parent != byName["check"].ID {
		t.Errorf("fetch parent = %d, want check %d", byName["fetch"].Parent, byName["check"].ID)
	}
	if byName["check"].Parent != byName["sweep"].ID {
		t.Errorf("check parent = %d, want sweep %d", byName["check"].Parent, byName["sweep"].ID)
	}
	if byName["sweep"].Parent != 0 {
		t.Errorf("sweep parent = %d, want 0 (root)", byName["sweep"].Parent)
	}
	if byName["fetch"].DurationMS != 250 {
		t.Errorf("fetch duration = %v ms, want 250", byName["fetch"].DurationMS)
	}
	if byName["sweep"].DurationMS != 1250 {
		t.Errorf("sweep duration = %v ms, want 1250", byName["sweep"].DurationMS)
	}
	if byName["check"].Attrs["url"] != "http://h/" {
		t.Errorf("check attrs = %v", byName["check"].Attrs)
	}
}

// TestTracerRingWraps checks the buffer keeps the newest spans.
func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, s := StartSpan(ctx, fmt.Sprintf("op%d", i))
		s.End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("op%d", 6+i); s.Name != want {
			t.Errorf("span %d = %s, want %s", i, s.Name, want)
		}
	}
}

// TestNilSpanSafe checks instrumented code need not guard nil spans.
func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.End() // must not panic
}

// TestEndIdempotent checks a double End exports once.
func TestEndIdempotent(t *testing.T) {
	tr := NewTracer(8)
	_, s := StartSpan(WithTracer(context.Background(), tr), "op")
	s.End()
	s.End()
	if got := len(tr.Spans()); got != 1 {
		t.Errorf("spans = %d, want 1", got)
	}
}
