package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestDebugEndpoints drives /debug/metrics and /debug/traces over HTTP.
func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("webclient.attempts").Add(3)
	reg.Histogram("tracker.sweep.duration", nil).Observe(0.5)
	tr := NewTracer(8)
	_, s := StartSpan(WithTracer(context.Background(), tr), "sweep")
	s.End()

	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["webclient.attempts"] != 3 {
		t.Errorf("attempts = %d, want 3", snap.Counters["webclient.attempts"])
	}
	if snap.Histograms["tracker.sweep.duration"].Count != 1 {
		t.Errorf("sweep histogram = %+v", snap.Histograms["tracker.sweep.duration"])
	}

	resp2, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var spans []SpanRecord
	if err := json.NewDecoder(resp2.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "sweep" {
		t.Errorf("spans = %+v", spans)
	}
}
