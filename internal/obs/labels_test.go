package obs

import (
	"math"
	"sync"
	"testing"
)

// TestLabeledSeriesInSnapshot checks labeled children fold into the
// registry snapshot under rendered series names.
func TestLabeledSeriesInSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("http.requests", "endpoint", "code").With("/diff", "2xx").Add(3)
	reg.CounterVec("http.requests", "endpoint", "code").With("/diff", "5xx").Inc()
	reg.GaugeVec("http.inflight", "endpoint").With("/co").Set(2)
	reg.HistogramVec("http.request.duration", nil, "endpoint").With("/diff").Observe(0.05)

	s := reg.Snapshot()
	if got := s.Counters[`http.requests{endpoint="/diff",code="2xx"}`]; got != 3 {
		t.Errorf("2xx series = %d, want 3", got)
	}
	if got := s.Counters[`http.requests{endpoint="/diff",code="5xx"}`]; got != 1 {
		t.Errorf("5xx series = %d, want 1", got)
	}
	if got := s.Gauges[`http.inflight{endpoint="/co"}`]; got != 2 {
		t.Errorf("inflight series = %d, want 2", got)
	}
	h, ok := s.Histograms[`http.request.duration{endpoint="/diff"}`]
	if !ok || h.Count != 1 {
		t.Errorf("duration series = %+v (ok=%v), want count 1", h, ok)
	}
}

// TestVecIdentity checks With returns the same child for the same
// values and distinct children otherwise.
func TestVecIdentity(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("c", "a")
	if v.With("x") != v.With("x") {
		t.Error("same labels returned different children")
	}
	if v.With("x") == v.With("y") {
		t.Error("different labels returned the same child")
	}
	if reg.CounterVec("c", "a") != v {
		t.Error("re-lookup returned a different family")
	}
}

// TestVecArity checks missing values pad with "" and extras are ignored
// rather than panicking.
func TestVecArity(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("c", "a", "b")
	v.With("x").Inc()                 // missing b
	v.With("x", "y", "ignored").Inc() // extra value
	s := reg.Snapshot()
	if got := s.Counters[`c{a="x",b=""}`]; got != 1 {
		t.Errorf("padded series = %d, want 1", got)
	}
	if got := s.Counters[`c{a="x",b="y"}`]; got != 1 {
		t.Errorf("truncated series = %d, want 1", got)
	}
}

// TestLabelValueEscaping checks quotes/backslashes/newlines in values
// cannot forge series names.
func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("c", "a").With("x\"}\ny\\").Inc()
	s := reg.Snapshot()
	want := `c{a="x\"}\ny\\"}`
	if got := s.Counters[want]; got != 1 {
		t.Errorf("escaped series missing; counters = %v", s.Counters)
	}
}

// TestVecConcurrent hammers one family from many goroutines — run under
// -race this is the labeled-metric thread-safety check.
func TestVecConcurrent(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("c", "worker")
	hv := reg.HistogramVec("h", []float64{1, 10}, "worker")
	gv := reg.GaugeVec("g", "worker")
	labels := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l := labels[(w+i)%len(labels)]
				cv.With(l).Inc()
				hv.With(l).Observe(float64(i % 12))
				gv.With(l).Add(1)
				if i%7 == 0 {
					reg.Snapshot() // concurrent reader
				}
			}
		}(w)
	}
	wg.Wait()
	s := reg.Snapshot()
	var total int64
	for series, v := range s.Counters {
		if len(series) > 1 && series[0] == 'c' {
			total += v
		}
	}
	if total != 8*500 {
		t.Errorf("counter total = %d, want %d", total, 8*500)
	}
	var hcount int64
	for series, h := range s.Histograms {
		if len(series) > 1 && series[0] == 'h' {
			hcount += h.Count
		}
	}
	if hcount != 8*500 {
		t.Errorf("histogram total = %d, want %d", hcount, 8*500)
	}
}

// TestObserveGuards checks NaN observations are dropped and negative
// ones clamped to zero.
func TestObserveGuards(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 10})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Errorf("NaN counted: count = %d", h.Count())
	}
	h.Observe(-5)
	s := reg.Snapshot().Histograms["h"]
	if s.Count != 1 || s.Sum != 0 {
		t.Errorf("negative observation: count=%d sum=%g, want 1/0", s.Count, s.Sum)
	}
	if s.Buckets[0].Count != 1 {
		t.Errorf("negative observation landed in bucket %+v", s.Buckets)
	}
}

// TestHistogramOverflowBucket checks values beyond the top bound land in
// the +Inf bucket and quantiles stay computable.
func TestHistogramOverflowBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 10})
	for i := 0; i < 10; i++ {
		h.Observe(1e6) // way past the top bound
	}
	s := reg.Snapshot().Histograms["h"]
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != 10 {
		t.Fatalf("overflow bucket = %+v", last)
	}
	// p99 of an all-overflow histogram reports the top finite bound
	// rather than NaN or infinity.
	if got := s.Quantile(0.99); got != 10 {
		t.Errorf("p99 = %g, want 10 (top finite bound)", got)
	}
}

// TestQuantileInterpolation checks the quantile estimate against a known
// uniform distribution.
func TestQuantileInterpolation(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := reg.Snapshot().Histograms["h"]
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 50, 5},
		{0.95, 95, 5},
		{0.99, 99, 5},
		{1.0, 100, 0.001},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%g) = %g, want %g±%g", tc.q, got, tc.want, tc.tol)
		}
	}
	if !math.IsNaN(s.Quantile(0)) || !math.IsNaN(s.Quantile(1.5)) {
		t.Error("out-of-range quantiles should be NaN")
	}
	var empty HistogramSnapshot
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}
