package obs

// Lightweight tracing for the fetch path: a span per logical operation
// (sweep, per-URL check, fetch, cache lookup, robots consultation),
// linked parent-to-child through context.Context, finished spans kept in
// a fixed-size ring buffer and served from /debug/traces. This is the
// minimal subset of distributed tracing that a single-process AIDE
// needs: enough to see that one tracker check nested a fetch which
// nested a cache lookup, and how long each layer took.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aide/internal/simclock"
)

// SpanRecord is one finished span as exported to the ring buffer.
type SpanRecord struct {
	// Trace is the 32-hex-digit W3C trace id shared by every span of one
	// logical request, across processes: a span started under a remote
	// parent (extracted from a traceparent header) carries the remote's
	// trace id, so a sweep → check → replica fan-out → import chain is
	// one trace even though its spans live in different tracers.
	Trace string `json:"trace,omitempty"`
	// ID identifies the span within its trace. With a zero tracer Seed
	// IDs are the bare counter values 1, 2, ...; a nonzero Seed mixes the
	// counter so spans from different processes don't collide when their
	// records are merged by trace id.
	ID uint64 `json:"id"`
	// Parent is the enclosing span's ID (0 for a root span). For the
	// first local span under an extracted remote context, Parent is the
	// remote caller's span ID.
	Parent uint64 `json:"parent,omitempty"`
	// Name is the operation, e.g. "webclient.fetch".
	Name string `json:"name"`
	// Start is the span's begin instant on the tracer's clock.
	Start time.Time `json:"start"`
	// DurationMS is the span's length in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Attrs are the span's key/value annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer issues spans and keeps the most recent finished ones.
type Tracer struct {
	// Clock timestamps spans; wall clock when nil. Inject a
	// simclock.Sim for deterministic traces.
	Clock simclock.Clock
	// Seed, when nonzero, is mixed into span and trace ids so that two
	// processes sharing one trace produce non-colliding span ids. The
	// tracer itself never reads the wall clock or a global RNG — daemons
	// set a per-process seed at startup (see SeedFromPID), tests set an
	// explicit one (or none: seed 0 keeps ids as bare counters, which the
	// existing single-process tests depend on).
	Seed uint64

	ids  atomic.Uint64
	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// mix64 is the splitmix64 finaliser: a cheap bijective scrambler that
// spreads (seed, counter) pairs across the id space.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// spanIDFor maps counter value c to a span id: the bare counter under
// seed 0, a seed-mixed (never-zero) value otherwise.
func (t *Tracer) spanIDFor(c uint64) uint64 {
	if t.Seed == 0 {
		return c
	}
	id := mix64(t.Seed ^ mix64(c))
	if id == 0 {
		id = 1
	}
	return id
}

// newTraceID mints a 32-hex trace id for a new root span, derived
// deterministically from the tracer's seed and counter.
func (t *Tracer) newTraceID(counter uint64) string {
	hi := mix64(t.Seed ^ mix64(counter) ^ 0x9e3779b97f4a7c15)
	lo := mix64(t.Seed + counter*0x9e3779b97f4a7c15)
	if hi == 0 && lo == 0 {
		lo = 1 // all-zero trace ids are invalid in W3C trace context
	}
	return fmt.Sprintf("%016x%016x", hi, lo)
}

// DefaultTracer receives spans started without an explicit tracer in
// the context; /debug/traces serves it.
var DefaultTracer = NewTracer(512)

// NewTracer returns a tracer retaining the last size finished spans.
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = 1
	}
	return &Tracer{ring: make([]SpanRecord, size)}
}

func (t *Tracer) clock() simclock.Clock {
	if t.Clock != nil {
		return t.Clock
	}
	return simclock.Wall{}
}

// export appends a finished span to the ring.
func (t *Tracer) export(rec SpanRecord) {
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Spans returns the retained finished spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]SpanRecord(nil), t.ring[:t.next]...)
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Reset drops every retained span (for tests).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next = 0
	t.full = false
}

// Span is an operation in progress. Methods are safe on a nil receiver
// so instrumented code never guards.
type Span struct {
	tracer *Tracer
	start  time.Time

	mu    sync.Mutex
	rec   SpanRecord
	ended bool
}

type ctxKey int

const (
	spanKey ctxKey = iota
	tracerKey
	remoteKey
)

// WithTracer returns a context whose spans report to tr — how a test or
// a component isolates its traces from DefaultTracer.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, tr)
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// tracerFrom picks the tracer for a new span: the enclosing span's,
// else the context's, else DefaultTracer.
func tracerFrom(ctx context.Context) *Tracer {
	if s := SpanFromContext(ctx); s != nil {
		return s.tracer
	}
	if tr, ok := ctx.Value(tracerKey).(*Tracer); ok {
		return tr
	}
	return DefaultTracer
}

// StartSpan begins a span named name, child of the context's current
// span if any — or of a remote caller's span when the context carries an
// extracted SpanContext (see WithRemote) — and returns the context
// carrying it. End the span with Span.End; an unended span is simply
// never exported.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr := tracerFrom(ctx)
	c := tr.ids.Add(1)
	var parent uint64
	var trace string
	if p := SpanFromContext(ctx); p != nil {
		parent = p.rec.ID
		trace = p.rec.Trace
	} else if rc, ok := ctx.Value(remoteKey).(SpanContext); ok && rc.Trace != "" {
		parent = rc.SpanID
		trace = rc.Trace
	}
	if trace == "" {
		trace = tr.newTraceID(c)
	}
	s := &Span{
		tracer: tr,
		start:  tr.clock().Now(),
		rec:    SpanRecord{Trace: trace, ID: tr.spanIDFor(c), Parent: parent, Name: name},
	}
	s.rec.Start = s.start
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string)
	}
	s.rec.Attrs[key] = value
	s.mu.Unlock()
}

// End finishes the span and exports it. Idempotent: only the first call
// exports.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.DurationMS = float64(s.tracer.clock().Now().Sub(s.start)) / float64(time.Millisecond)
	rec := s.rec
	s.mu.Unlock()
	s.tracer.export(rec)
}
