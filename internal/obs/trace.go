package obs

// Lightweight tracing for the fetch path: a span per logical operation
// (sweep, per-URL check, fetch, cache lookup, robots consultation),
// linked parent-to-child through context.Context, finished spans kept in
// a fixed-size ring buffer and served from /debug/traces. This is the
// minimal subset of distributed tracing that a single-process AIDE
// needs: enough to see that one tracker check nested a fetch which
// nested a cache lookup, and how long each layer took.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"aide/internal/simclock"
)

// SpanRecord is one finished span as exported to the ring buffer.
type SpanRecord struct {
	// ID identifies the span within its tracer; IDs start at 1.
	ID uint64 `json:"id"`
	// Parent is the enclosing span's ID (0 for a root span).
	Parent uint64 `json:"parent,omitempty"`
	// Name is the operation, e.g. "webclient.fetch".
	Name string `json:"name"`
	// Start is the span's begin instant on the tracer's clock.
	Start time.Time `json:"start"`
	// DurationMS is the span's length in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Attrs are the span's key/value annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer issues spans and keeps the most recent finished ones.
type Tracer struct {
	// Clock timestamps spans; wall clock when nil. Inject a
	// simclock.Sim for deterministic traces.
	Clock simclock.Clock

	ids  atomic.Uint64
	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// DefaultTracer receives spans started without an explicit tracer in
// the context; /debug/traces serves it.
var DefaultTracer = NewTracer(512)

// NewTracer returns a tracer retaining the last size finished spans.
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = 1
	}
	return &Tracer{ring: make([]SpanRecord, size)}
}

func (t *Tracer) clock() simclock.Clock {
	if t.Clock != nil {
		return t.Clock
	}
	return simclock.Wall{}
}

// export appends a finished span to the ring.
func (t *Tracer) export(rec SpanRecord) {
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Spans returns the retained finished spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]SpanRecord(nil), t.ring[:t.next]...)
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Reset drops every retained span (for tests).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next = 0
	t.full = false
}

// Span is an operation in progress. Methods are safe on a nil receiver
// so instrumented code never guards.
type Span struct {
	tracer *Tracer
	start  time.Time

	mu    sync.Mutex
	rec   SpanRecord
	ended bool
}

type ctxKey int

const (
	spanKey ctxKey = iota
	tracerKey
)

// WithTracer returns a context whose spans report to tr — how a test or
// a component isolates its traces from DefaultTracer.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, tr)
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// tracerFrom picks the tracer for a new span: the enclosing span's,
// else the context's, else DefaultTracer.
func tracerFrom(ctx context.Context) *Tracer {
	if s := SpanFromContext(ctx); s != nil {
		return s.tracer
	}
	if tr, ok := ctx.Value(tracerKey).(*Tracer); ok {
		return tr
	}
	return DefaultTracer
}

// StartSpan begins a span named name, child of the context's current
// span if any, and returns the context carrying it. End the span with
// Span.End; an unended span is simply never exported.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr := tracerFrom(ctx)
	var parent uint64
	if p := SpanFromContext(ctx); p != nil {
		parent = p.rec.ID
	}
	s := &Span{
		tracer: tr,
		start:  tr.clock().Now(),
		rec:    SpanRecord{ID: tr.ids.Add(1), Parent: parent, Name: name},
	}
	s.rec.Start = s.start
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string)
	}
	s.rec.Attrs[key] = value
	s.mu.Unlock()
}

// End finishes the span and exports it. Idempotent: only the first call
// exports.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.DurationMS = float64(s.tracer.clock().Now().Sub(s.start)) / float64(time.Millisecond)
	rec := s.rec
	s.mu.Unlock()
	s.tracer.export(rec)
}
