package obs

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func midSnapshot(t *testing.T, reg *Registry) Snapshot {
	t.Helper()
	return reg.Snapshot()
}

// TestMiddlewareREDMetrics checks per-route labeled rate/error/duration
// recording, including the implicit 200 of a handler that only writes.
func TestMiddlewareREDMetrics(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(32)
	mux := http.NewServeMux()
	mux.HandleFunc("/implicit", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "body, no WriteHeader") // implicit 200
	})
	mux.HandleFunc("/empty", func(w http.ResponseWriter, r *http.Request) {
		// Neither WriteHeader nor Write: net/http sends 200.
	})
	mux.HandleFunc("/teapot", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	h := HTTPMiddleware(mux, MiddlewareConfig{
		Registry: reg, Tracer: tr, Service: "test", Route: RouteFromMux(mux),
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, path := range []string{"/implicit", "/empty", "/teapot", "/boom", "/nowhere"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	s := midSnapshot(t, reg)
	for series, want := range map[string]int64{
		`http.requests{endpoint="/implicit",code="2xx"}`: 1,
		`http.requests{endpoint="/empty",code="2xx"}`:    1,
		`http.requests{endpoint="/teapot",code="4xx"}`:   1,
		`http.requests{endpoint="/boom",code="5xx"}`:     1,
		`http.requests{endpoint="/nowhere",code="4xx"}`:  0, // labeled by pattern, not path
		`http.requests{endpoint="unmatched",code="4xx"}`: 1, // ServeMux default 404
		`http.errors{endpoint="/boom",code="5xx"}`:       1,
	} {
		if got := s.Counters[series]; got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}
	if h := s.Histograms[`http.request.duration{endpoint="/implicit"}`]; h.Count != 1 {
		t.Errorf("duration for /implicit = %+v, want count 1", h)
	}
	if g := s.Gauges[`http.inflight{endpoint="/implicit"}`]; g != 0 {
		t.Errorf("inflight after completion = %d, want 0", g)
	}

	// Server spans recorded with route/status attrs.
	var serverSpans int
	for _, sp := range tr.Spans() {
		if sp.Name == "http.server" && sp.Attrs["route"] == "/boom" {
			serverSpans++
			if sp.Attrs["status"] != "500" {
				t.Errorf("boom span status = %q", sp.Attrs["status"])
			}
			if sp.Attrs["service"] != "test" {
				t.Errorf("boom span service = %q", sp.Attrs["service"])
			}
		}
	}
	if serverSpans != 1 {
		t.Errorf("http.server spans for /boom = %d, want 1", serverSpans)
	}
}

// TestMiddlewareFlusher checks Flush still reaches the client through
// the wrapper — the keepalive-trickle path.
func TestMiddlewareFlusher(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	flushed := false
	mux.HandleFunc("/trickle", func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("wrapper lost http.Flusher")
			return
		}
		io.WriteString(w, " ")
		f.Flush()
		flushed = true
		io.WriteString(w, "done")
	})
	srv := httptest.NewServer(HTTPMiddleware(mux, MiddlewareConfig{
		Registry: reg, Tracer: NewTracer(8), Route: RouteFromMux(mux),
	}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/trickle")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !flushed || string(body) != " done" {
		t.Errorf("flushed=%v body=%q", flushed, body)
	}
	if got := reg.Snapshot().Counters[`http.requests{endpoint="/trickle",code="2xx"}`]; got != 1 {
		t.Errorf("trickle requests = %d, want 1", got)
	}
}

// TestMiddlewareHijacker checks a handler can still hijack through the
// wrapper, and that the hijacked exchange is accounted separately
// rather than as a latency observation.
func TestMiddlewareHijacker(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/raw", func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("wrapper lost http.Hijacker")
			return
		}
		conn, rw, err := hj.Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		defer conn.Close()
		fmt.Fprint(rw, "HTTP/1.1 200 OK\r\nContent-Length: 3\r\nConnection: close\r\n\r\nraw")
		rw.Flush()
	})
	srv := httptest.NewServer(HTTPMiddleware(mux, MiddlewareConfig{
		Registry: reg, Tracer: NewTracer(8), Route: RouteFromMux(mux),
	}))
	defer srv.Close()

	conn, err := net_Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /raw HTTP/1.1\r\nHost: x\r\n\r\n")
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "200") {
		t.Errorf("hijacked response line = %q", line)
	}

	s := reg.Snapshot()
	if got := s.Counters[`http.requests{endpoint="/raw",code="hijacked"}`]; got != 1 {
		t.Errorf("hijacked requests = %d, want 1; counters = %v", got, s.Counters)
	}
	if h := s.Histograms[`http.request.duration{endpoint="/raw"}`]; h.Count != 0 {
		t.Errorf("hijacked exchange observed a latency: %+v", h)
	}
}

// TestMiddlewareJoinsRemoteTrace checks the server span parents under an
// extracted traceparent.
func TestMiddlewareJoinsRemoteTrace(t *testing.T) {
	tr := NewTracer(8)
	mux := http.NewServeMux()
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {})
	srv := httptest.NewServer(HTTPMiddleware(mux, MiddlewareConfig{
		Registry: NewRegistry(), Tracer: tr, Route: RouteFromMux(mux),
	}))
	defer srv.Close()

	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("GET", srv.URL+"/x", nil)
	req.Header.Set(TraceParentHeader, "00-"+trace+"-00f067aa0ba902b7-01")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Trace != trace {
		t.Errorf("server span trace = %q, want %q", spans[0].Trace, trace)
	}
	if spans[0].Parent != 0x00f067aa0ba902b7 {
		t.Errorf("server span parent = %x, want 00f067aa0ba902b7", spans[0].Parent)
	}
}

// net_Dial opens a raw TCP connection to an httptest URL.
func net_Dial(url string) (io.ReadWriteCloser, error) {
	return net.Dial("tcp", strings.TrimPrefix(url, "http://"))
}
