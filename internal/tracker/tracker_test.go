package tracker

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aide/internal/hotlist"
	"aide/internal/proxycache"
	"aide/internal/robots"
	"aide/internal/sched"
	"aide/internal/simclock"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// rig bundles a tracker wired to a synthetic web for scenario tests.
type rig struct {
	web   *websim.Web
	clock *simclock.Sim
	hist  *hotlist.History
	tr    *Tracker
}

func newRig(t *testing.T, cfgSrc string) *rig {
	t.Helper()
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	cfg, err := w3config.ParseString(cfgSrc)
	if err != nil {
		t.Fatal(err)
	}
	hist := hotlist.NewHistory()
	client := webclient.New(web)
	tr := New(client, cfg, hist, clock)
	return &rig{web: web, clock: clock, hist: hist, tr: tr}
}

func entry(url string) hotlist.Entry { return hotlist.Entry{URL: url, Title: url} }

func one(t *testing.T, tr *Tracker, url string) Result {
	t.Helper()
	rs := tr.Run(context.Background(), []hotlist.Entry{entry(url)})
	if len(rs) != 1 {
		t.Fatalf("results = %d", len(rs))
	}
	return rs[0]
}

func TestChangedVsUnchanged(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p := r.web.Site("h").Page("/p")
	p.Set("v1")
	// User saw the page an hour after it appeared.
	r.web.Advance(time.Hour)
	r.hist.Visit("http://h/p", r.clock.Now())

	res := one(t, r.tr, "http://h/p")
	if res.Status != Unchanged {
		t.Fatalf("unmodified page: %+v", res)
	}

	// The page changes later; next run must flag it.
	r.web.Advance(24 * time.Hour)
	p.Set("v2")
	r.web.Advance(time.Hour)
	res = one(t, r.tr, "http://h/p")
	if res.Status != Changed || res.Via != "HEAD" {
		t.Fatalf("modified page: %+v", res)
	}
}

func TestNeverVisitedIsChanged(t *testing.T) {
	r := newRig(t, "Default 0\n")
	r.web.Site("h").Page("/new").Set("content")
	res := one(t, r.tr, "http://h/new")
	if res.Status != Changed {
		t.Fatalf("never-visited page not reported: %+v", res)
	}
}

func TestNeverThresholdSkipsEntirely(t *testing.T) {
	r := newRig(t, "http://h/dilbert/.* never\nDefault 0\n")
	r.web.Site("h").Page("/dilbert/today").Set("comic")
	res := one(t, r.tr, "http://h/dilbert/today")
	if res.Status != NotChecked || res.Via != "never" {
		t.Fatalf("never rule: %+v", res)
	}
	if h, g := r.web.TotalRequests(); h+g != 0 {
		t.Errorf("never URL generated %d requests", h+g)
	}
}

func TestVisitedRecentlySkipsHTTP(t *testing.T) {
	r := newRig(t, "Default 2d\n")
	r.web.Site("h").Page("/p").Set("v1")
	r.web.Advance(time.Hour)
	r.hist.Visit("http://h/p", r.clock.Now())
	r.web.Advance(time.Hour) // well inside the 2d threshold

	res := one(t, r.tr, "http://h/p")
	if res.Status != NotChecked || res.Via != "visited-recently" {
		t.Fatalf("recent visit: %+v", res)
	}
	if h, g := r.web.TotalRequests(); h+g != 0 {
		t.Errorf("recently visited URL generated %d requests", h+g)
	}
}

func TestKnownModifiedShortcutAvoidsHTTP(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p := r.web.Site("h").Page("/p")
	p.Set("v1")
	r.web.Advance(time.Hour)
	r.hist.Visit("http://h/p", r.clock.Now())
	r.web.Advance(time.Hour)
	p.Set("v2")
	r.web.Advance(time.Hour)

	// First run learns the new modification date over HTTP.
	res := one(t, r.tr, "http://h/p")
	if res.Status != Changed {
		t.Fatalf("first run: %+v", res)
	}
	heads1, _ := r.web.TotalRequests()

	// Second run within the staleness window: the state cache already
	// knows the page is newer than the visit — no HTTP at all.
	r.web.Advance(time.Hour)
	res = one(t, r.tr, "http://h/p")
	if res.Status != Changed || res.Via != "state-cache" {
		t.Fatalf("second run: %+v", res)
	}
	heads2, _ := r.web.TotalRequests()
	if heads2 != heads1 {
		t.Errorf("known-modified page re-polled: %d -> %d HEADs", heads1, heads2)
	}
}

func TestStaleKnowledgeRefetches(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p := r.web.Site("h").Page("/p")
	p.Set("v1")
	r.web.Advance(time.Hour)
	r.hist.Visit("http://h/p", r.clock.Now())
	r.web.Advance(time.Hour)
	p.Set("v2")
	r.web.Advance(time.Hour)
	one(t, r.tr, "http://h/p") // learn the date
	heads1, _ := r.web.TotalRequests()

	// Beyond StaleAfter, the cached date is no longer trusted.
	r.web.Advance(8 * 24 * time.Hour)
	res := one(t, r.tr, "http://h/p")
	if res.Via != "HEAD" {
		t.Fatalf("stale knowledge not refreshed: %+v", res)
	}
	heads2, _ := r.web.TotalRequests()
	if heads2 != heads1+1 {
		t.Errorf("expected one fresh HEAD, got %d", heads2-heads1)
	}
	_ = res
}

func TestCheckedWithinThresholdUsesCachedVerdict(t *testing.T) {
	r := newRig(t, "Default 2d\n")
	p := r.web.Site("h").Page("/p")
	p.Set("v1")
	r.web.Advance(30 * 24 * time.Hour) // make any cached knowledge stale
	res := one(t, r.tr, "http://h/p")  // first check: HEAD
	if res.Via != "HEAD" || res.Status != Changed {
		t.Fatalf("first check: %+v", res)
	}
	// User still hasn't visited. A run an hour later must not re-HEAD:
	// the check was within the 2d threshold.
	heads1, _ := r.web.TotalRequests()
	r.web.Advance(time.Hour)
	res = one(t, r.tr, "http://h/p")
	if res.Via != "state-cache" || res.Status != Changed {
		t.Fatalf("threshold reuse: %+v", res)
	}
	if heads2, _ := r.web.TotalRequests(); heads2 != heads1 {
		t.Errorf("re-polled within threshold")
	}
}

func TestProxyOracleAnswersWithinThreshold(t *testing.T) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	p := web.Site("h").Page("/p")
	p.Set("v1")

	proxy := proxycache.New(web, clock)
	cfg, _ := w3config.ParseString("Default 2d\n")
	hist := hotlist.NewHistory()
	// The tracker's own client bypasses the proxy body cache; only the
	// ModInfo oracle is consulted, as in the paper's daemon setup.
	tr := New(webclient.New(web), cfg, hist, clock)
	tr.Proxy = proxy

	// Prime the proxy as if some browser had just fetched the page.
	if _, err := webclient.New(proxy).Get(context.Background(), "http://h/p"); err != nil {
		t.Fatal(err)
	}
	web.ResetRequestCounts()

	// Make tracker state-cache knowledge absent but proxy info fresh.
	rs := tr.Run(context.Background(), []hotlist.Entry{entry("http://h/p")})
	if rs[0].Via != "proxy" {
		t.Fatalf("proxy oracle unused: %+v", rs[0])
	}
	if h, g := web.TotalRequests(); h+g != 0 {
		t.Errorf("proxy-answerable check hit origin: %d requests", h+g)
	}
}

func TestChecksumFallbackForCGI(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p := r.web.Site("h").Page("/cgi-out")
	p.Set("result A")
	p.SetNoLastModified()
	r.hist.Visit("http://h/cgi-out", r.clock.Now())

	// First check records the checksum; user has visited, so unchanged.
	res := one(t, r.tr, "http://h/cgi-out")
	if res.Status != Unchanged || res.Via != "GET+checksum" {
		t.Fatalf("first checksum check: %+v", res)
	}
	// Same content: still unchanged.
	res = one(t, r.tr, "http://h/cgi-out")
	if res.Status != Unchanged {
		t.Fatalf("same content: %+v", res)
	}
	// Content changes: checksum differs.
	p.Set("result B")
	res = one(t, r.tr, "http://h/cgi-out")
	if res.Status != Changed || res.Via != "GET+checksum" {
		t.Fatalf("changed content: %+v", res)
	}
}

func TestRobotExclusionCachedAndOverridable(t *testing.T) {
	r := newRig(t, "Default 0\n")
	s := r.web.Site("h")
	s.SetRobots("User-agent: *\nDisallow: /private/\n")
	s.Page("/private/p").Set("secret")
	r.tr.Robots = robots.NewCache(func(ctx context.Context, url string) (int, string, error) {
		info, err := r.tr.Client.Get(context.Background(), url)
		return info.Status, info.Body, err
	}, r.clock)

	res := one(t, r.tr, "http://h/private/p")
	if res.Status != Excluded || res.Via != "robots.txt" {
		t.Fatalf("exclusion: %+v", res)
	}
	// Second run answers from the cached exclusion without refetching
	// robots.txt or the page.
	r.web.ResetRequestCounts()
	res = one(t, r.tr, "http://h/private/p")
	if res.Status != Excluded || res.Via != "state-cache" {
		t.Fatalf("cached exclusion: %+v", res)
	}
	if h, g := r.web.TotalRequests(); h+g != 0 {
		t.Errorf("cached exclusion still generated %d requests", h+g)
	}
	// The override flag forces the check (§3.1).
	r.tr.Opt.IgnoreRobots = true
	res = one(t, r.tr, "http://h/private/p")
	if res.Status != Changed {
		t.Fatalf("ignore-robots run: %+v", res)
	}
}

func TestErrorHandlingTransient(t *testing.T) {
	r := newRig(t, "Default 0\n")
	s := r.web.Site("h")
	s.Page("/p").Set("x")
	s.SetDown(true)

	res := one(t, r.tr, "http://h/p")
	if res.Status != Failed || res.ErrKind != webclient.Transient || res.ErrCount != 1 {
		t.Fatalf("down host: %+v", res)
	}
	res = one(t, r.tr, "http://h/p")
	if res.ErrCount != 2 {
		t.Fatalf("error count not accumulating: %+v", res)
	}
	// Recovery resets the counter.
	s.SetDown(false)
	res = one(t, r.tr, "http://h/p")
	if res.Status == Failed {
		t.Fatalf("recovered host still failing: %+v", res)
	}
	if st, _ := r.tr.StateFor("http://h/p"); st.ErrCount != 0 {
		t.Errorf("err count not reset: %+v", st)
	}
}

func TestGonePageReportedAsError(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p := r.web.Site("h").Page("/dead")
	p.Set("x")
	p.SetGone()
	res := one(t, r.tr, "http://h/dead")
	if res.Status != Failed || res.ErrKind != webclient.Gone {
		t.Fatalf("gone page: %+v", res)
	}
}

func TestTreatErrorsAsChecked(t *testing.T) {
	r := newRig(t, "Default 2d\n")
	s := r.web.Site("h")
	s.Page("/p").Set("x")
	s.SetDown(true)
	r.tr.Opt.TreatErrorsAsChecked = true

	one(t, r.tr, "http://h/p") // fails, but counts as checked
	r.web.ResetRequestCounts()
	r.web.Advance(time.Hour)
	res := one(t, r.tr, "http://h/p")
	if res.Via != "threshold" || res.Status != NotChecked {
		t.Fatalf("errored URL re-polled within threshold: %+v", res)
	}
	if h, g := r.web.TotalRequests(); h+g != 0 {
		t.Errorf("requests issued despite treat-errors-as-checked: %d", h+g)
	}
}

func TestSkipHostAfterError(t *testing.T) {
	r := newRig(t, "Default 0\n")
	s := r.web.Site("slow.example")
	s.Page("/a").Set("x")
	s.Page("/b").Set("y")
	s.Page("/c").Set("z")
	r.web.Site("ok.example").Page("/d").Set("w")
	s.SetTimeout(true)
	r.tr.Opt.SkipHostAfterError = true

	rs := r.tr.Run(context.Background(), []hotlist.Entry{
		entry("http://slow.example/a"),
		entry("http://slow.example/b"),
		entry("http://ok.example/d"),
		entry("http://slow.example/c"),
	})
	if rs[0].Status != Failed {
		t.Fatalf("first URL: %+v", rs[0])
	}
	if rs[1].Status != NotChecked || rs[1].Via != "host-error" {
		t.Fatalf("second URL on bad host: %+v", rs[1])
	}
	if rs[3].Status != NotChecked {
		t.Fatalf("later URL on bad host: %+v", rs[3])
	}
	if rs[2].Status == Failed {
		t.Fatalf("healthy host affected: %+v", rs[2])
	}
	// Only one request hit the bad host.
	if h, g := s.Requests(); h+g != 1 {
		t.Errorf("bad host saw %d requests, want 1", h+g)
	}
}

func TestFileURLStat(t *testing.T) {
	r := newRig(t, "file:.* 0\nDefault never\n")
	dir := t.TempDir()
	path := filepath.Join(dir, "notes.html")
	if err := os.WriteFile(path, []byte("<p>notes</p>"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The file's mtime is "now" (wall clock); the user saw it before the
	// simulated epoch, so it reads as changed.
	res := one(t, r.tr, "file:"+path)
	if res.Status != Changed || res.Via != "stat" {
		t.Fatalf("file URL: %+v", res)
	}
	// After visiting now (well past the mtime), it reads as seen.
	r.hist.Visit("file:"+path, time.Now().Add(time.Hour))
	res = one(t, r.tr, "file:"+path)
	if res.Status != Unchanged {
		t.Fatalf("visited file: %+v", res)
	}
}

func TestStatePersistenceRoundTrip(t *testing.T) {
	r := newRig(t, "Default 0\n")
	r.web.Site("h").Page("/p").Set("v1")
	one(t, r.tr, "http://h/p")
	path := filepath.Join(t.TempDir(), "state.json")
	if err := r.tr.SaveState(path); err != nil {
		t.Fatal(err)
	}

	// A fresh tracker (a new run of the script) loads the cache.
	tr2 := New(r.tr.Client, r.tr.Config, r.hist, r.clock)
	if err := tr2.LoadState(path); err != nil {
		t.Fatal(err)
	}
	st, ok := tr2.StateFor("http://h/p")
	if !ok || st.LastModified.IsZero() || st.CheckedAt.IsZero() {
		t.Fatalf("state not restored: %+v ok=%v", st, ok)
	}
	// Missing file is not an error (cold start).
	tr3 := New(r.tr.Client, r.tr.Config, r.hist, r.clock)
	if err := tr3.LoadState(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatal(err)
	}
	// Corrupt file is an error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if err := tr3.LoadState(bad); err == nil {
		t.Error("corrupt state accepted")
	}
}

func TestSummary(t *testing.T) {
	rs := []Result{
		{Status: Changed}, {Status: Changed}, {Status: Unchanged},
		{Status: Failed}, {Status: NotChecked},
	}
	m := Summary(rs)
	if m[Changed] != 2 || m[Unchanged] != 1 || m[Failed] != 1 || m[NotChecked] != 1 {
		t.Errorf("summary = %v", m)
	}
}

// TestReportFigure1 exercises the report shape of Figure 1: anchors with
// descriptive text, changed/unchanged/not-checked/error rows, and the
// Remember/Diff/History links.
func TestReportFigure1(t *testing.T) {
	mod := time.Date(1995, 11, 3, 10, 0, 0, 0, time.UTC)
	visit := time.Date(1995, 10, 1, 9, 0, 0, 0, time.UTC)
	rs := []Result{
		{Entry: hotlist.Entry{URL: "http://a/", Title: "Mobile Computing Page"},
			Status: Changed, LastModified: mod, LastVisited: visit, Via: "HEAD"},
		{Entry: hotlist.Entry{URL: "http://b/", Title: "Stable Page"},
			Status: Unchanged, LastModified: visit, LastVisited: visit, Via: "HEAD"},
		{Entry: hotlist.Entry{URL: "http://c/", Title: "Rarely Polled"},
			Status: NotChecked, Via: "visited-recently"},
		{Entry: hotlist.Entry{URL: "http://d/", Title: "Dead Link"},
			Status: Failed, Err: os.ErrDeadlineExceeded, ErrKind: webclient.Transient, ErrCount: 3},
	}
	html := Report(rs, ReportOptions{
		SnapshotBase: "http://aide.research.att.com/snapshot",
		User:         "douglis@research.att.com",
		Now:          mod.Add(2 * time.Hour),
	})
	for _, want := range []string{
		"<A HREF=\"http://a/\">Mobile Computing Page</A>",
		"<B>Changed</B>",
		"1 of 4 pages have changed",
		"Seen:",
		"Not checked this run",
		"consider removing this URL",
		"/snapshot/remember?",
		"/snapshot/diff?",
		"/snapshot/history?",
		"url=http%3A%2F%2Fa%2F",
		"user=douglis%40research.att.com",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q:\n%s", want, html)
		}
	}
}

func TestReportPrioritization(t *testing.T) {
	older := time.Date(1995, 10, 1, 0, 0, 0, 0, time.UTC)
	newer := time.Date(1995, 11, 1, 0, 0, 0, 0, time.UTC)
	rs := []Result{
		{Entry: hotlist.Entry{URL: "http://unchanged/", Title: "ZZZ Unchanged"}, Status: Unchanged},
		{Entry: hotlist.Entry{URL: "http://older/", Title: "Older Change"}, Status: Changed, LastModified: older},
		{Entry: hotlist.Entry{URL: "http://newer/", Title: "Newer Change"}, Status: Changed, LastModified: newer},
	}
	html := Report(rs, ReportOptions{Prioritize: true})
	iNewer := strings.Index(html, "Newer Change")
	iOlder := strings.Index(html, "Older Change")
	iUnch := strings.Index(html, "ZZZ Unchanged")
	if !(iNewer < iOlder && iOlder < iUnch) {
		t.Errorf("priority order wrong: newer=%d older=%d unchanged=%d", iNewer, iOlder, iUnch)
	}
	// Without prioritization, hotlist order is preserved.
	html = Report(rs, ReportOptions{})
	if !(strings.Index(html, "ZZZ Unchanged") < strings.Index(html, "Older Change")) {
		t.Error("hotlist order not preserved without Prioritize")
	}
}

func TestReportWithoutSnapshotBaseOmitsLinks(t *testing.T) {
	rs := []Result{{Entry: hotlist.Entry{URL: "http://a/", Title: "A"}, Status: Changed}}
	html := Report(rs, ReportOptions{})
	if strings.Contains(html, "Remember") {
		t.Errorf("links present without snapshot base:\n%s", html)
	}
}

func BenchmarkTrackerRun250(b *testing.B) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	cfg, _ := w3config.ParseString("Default 2d\n")
	hist := hotlist.NewHistory()
	tr := New(webclient.New(web), cfg, hist, clock)

	entries := make([]hotlist.Entry, 250)
	for i := range entries {
		host := string(rune('a'+i%20)) + ".example"
		path := "/page" + string(rune('0'+i%10))
		web.Site(host).Page(path).Set("content")
		entries[i] = entry("http://" + host + path)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Run(context.Background(), entries)
	}
}

// staticOracle is an always-fresh ModOracle for TrustOracle tests.
type staticOracle struct {
	mod, at time.Time
	ok      bool
}

func (o staticOracle) ModInfo(string) (time.Time, time.Time, bool) { return o.mod, o.at, o.ok }

func TestTrustOracleAnswersWithoutHTTP(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p := r.web.Site("h").Page("/p")
	p.Set("v1")
	visit := r.clock.Now().Add(time.Hour)
	r.hist.Visit("http://h/p", visit)
	r.web.Advance(10 * 24 * time.Hour)

	// The oracle says the page is unchanged since before the visit;
	// TrustOracle accepts that outright, even though the entry is old.
	r.tr.Proxy = staticOracle{mod: visit.Add(-time.Hour), at: visit, ok: true}
	r.tr.Opt.TrustOracle = true
	res := one(t, r.tr, "http://h/p")
	if res.Status != Unchanged || res.Via != "proxy" {
		t.Fatalf("trusted oracle: %+v", res)
	}
	if h, g := r.web.TotalRequests(); h+g != 0 {
		t.Errorf("trusted oracle still polled: %d requests", h+g)
	}

	// A URL the oracle does not cover falls through to a normal check.
	r.web.Site("h").Page("/other").Set("x")
	r.tr.Proxy = staticOracle{ok: false}
	res = one(t, r.tr, "http://h/other")
	if res.Via != "HEAD" {
		t.Fatalf("uncovered URL: %+v", res)
	}
}

func TestConcurrentRunMatchesSerial(t *testing.T) {
	build := func() (*rig, []hotlist.Entry) {
		r := newRig(t, "Default 0\n")
		var entries []hotlist.Entry
		for i := 0; i < 60; i++ {
			host := string(rune('a'+i%6)) + ".example"
			path := "/p" + string(rune('0'+i%10))
			page := r.web.Site(host).Page(path)
			if page.VersionCount() == 0 {
				page.Set("content " + host + path)
			}
			entries = append(entries, entry("http://"+host+path))
		}
		// One host is down; one page is gone.
		r.web.Site("f.example").SetDown(true)
		dead := r.web.Site("a.example").Page("/dead")
		dead.Set("x")
		dead.SetGone()
		entries = append(entries, entry("http://a.example/dead"))
		return r, entries
	}

	rSerial, entries := build()
	serial := rSerial.tr.Run(context.Background(), entries)

	rConc, entries2 := build()
	rConc.tr.Opt.Concurrency = 8
	conc := rConc.tr.Run(context.Background(), entries2)

	if len(serial) != len(conc) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(conc))
	}
	for i := range serial {
		if serial[i].Entry.URL != conc[i].Entry.URL {
			t.Fatalf("order differs at %d: %s vs %s", i, serial[i].Entry.URL, conc[i].Entry.URL)
		}
		if serial[i].Status != conc[i].Status {
			t.Errorf("%s: serial %v vs concurrent %v",
				serial[i].Entry.URL, serial[i].Status, conc[i].Status)
		}
	}
}

func TestConcurrentDuplicateURLsCheckedOnce(t *testing.T) {
	r := newRig(t, "Default 0\n")
	r.web.Site("h").Page("/p").Set("content")
	r.tr.Opt.Concurrency = 4
	entries := []hotlist.Entry{
		{URL: "http://h/p", Title: "first"},
		{URL: "http://h/p", Title: "second"},
		{URL: "http://h/p", Title: "third"},
	}
	rs := r.tr.Run(context.Background(), entries)
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	for i, want := range []string{"first", "second", "third"} {
		if rs[i].Entry.Title != want || rs[i].Status != Changed {
			t.Errorf("result %d = %+v", i, rs[i])
		}
	}
	if h, g := r.web.TotalRequests(); h+g != 1 {
		t.Errorf("duplicate URL checked %d times, want 1", h+g)
	}
}

func TestBulletinSurfacesInReport(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p := r.web.Site("h").Page("/cgi-page")
	p.Set(`<HTML><HEAD><META NAME="bulletin" CONTENT="2 talks added to the program"></HEAD>
<BODY><P>program listing</P></BODY></HTML>`)
	p.SetNoLastModified() // forces the GET path, where the body is seen
	res := one(t, r.tr, "http://h/cgi-page")
	if res.Bulletin != "2 talks added to the program" {
		t.Fatalf("bulletin = %q (via %s)", res.Bulletin, res.Via)
	}
	html := Report([]Result{res}, ReportOptions{})
	if !strings.Contains(html, "Bulletin: 2 talks added to the program") {
		t.Errorf("report missing bulletin:\n%s", html)
	}
}

func TestCheckEntryMatchesSweepSemantics(t *testing.T) {
	r := newRig(t, "http://h/dilbert/.* never\nDefault 1d\n")
	r.web.Site("h").Page("/p").Set("v1")

	// Never-visited page: changed, same as a sweep would report.
	res := r.tr.CheckEntry(context.Background(), entry("http://h/p"))
	if res.Status != Changed || res.Via != "HEAD" {
		t.Fatalf("CheckEntry on fresh page: %+v", res)
	}
	// State persists across single checks: within the threshold the
	// verdict is answered from the cache, no second HEAD.
	res = r.tr.CheckEntry(context.Background(), entry("http://h/p"))
	if res.Status != Changed || res.Via != "state-cache" {
		t.Fatalf("CheckEntry second call: %+v", res)
	}
	if h, g := r.web.TotalRequests(); h+g != 1 {
		t.Errorf("two CheckEntry calls made %d requests, want 1", h+g)
	}
	// Never rules still apply outside sweeps.
	res = r.tr.CheckEntry(context.Background(), entry("http://h/dilbert/today"))
	if res.Status != NotChecked || res.Via != "never" {
		t.Fatalf("CheckEntry on never URL: %+v", res)
	}
}

func TestPhaseJitterDesynchronisesHosts(t *testing.T) {
	r := newRig(t, "Default 0\n")
	r.web.Site("h1.example").Page("/p").Set("a")
	r.web.Site("h2.example").Page("/p").Set("b")
	// Concurrent path (serial sweeps are host-serial by construction and
	// skip the jitter). Sim-clock sleeps are additive, so even with both
	// host groups in flight the total advance is exactly j1+j2.
	r.tr.Opt.Concurrency = 2
	r.tr.Opt.PhaseJitter = time.Hour
	r.tr.Opt.JitterSeed = 11

	j1 := sched.Jitter("h1.example", 11, time.Hour)
	j2 := sched.Jitter("h2.example", 11, time.Hour)
	if j1 == j2 {
		t.Fatalf("test hosts drew identical jitter %v; pick another seed", j1)
	}

	start := r.clock.Now()
	rs := r.tr.Run(context.Background(),
		[]hotlist.Entry{entry("http://h1.example/p"), entry("http://h2.example/p")})
	for _, res := range rs {
		if res.Status != Changed {
			t.Fatalf("jittered sweep result: %+v", res)
		}
	}
	// Each host group slept out its own offset before its first request;
	// the additive sim-clock sleeps sum to exactly j1+j2.
	if got, want := r.clock.Now().Sub(start), j1+j2; got != want {
		t.Errorf("sweep advanced clock by %v, want %v (j1=%v j2=%v)", got, want, j1, j2)
	}

	// Serial sweeps (Concurrency <= 1) ignore PhaseJitter.
	r2 := newRig(t, "Default 0\n")
	r2.web.Site("h1.example").Page("/p").Set("a")
	r2.tr.Opt.PhaseJitter = time.Hour
	start = r2.clock.Now()
	r2.tr.Run(context.Background(), []hotlist.Entry{entry("http://h1.example/p")})
	if got := r2.clock.Now().Sub(start); got != 0 {
		t.Errorf("serial sweep advanced clock by %v, want 0", got)
	}
}
