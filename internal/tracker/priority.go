package tracker

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// This file implements the §7 remedy for information overload: "Merely
// sorting URLs by most recent modification dates is not satisfactory
// when the number of URLs grows into the hundreds. Instead, we are
// moving toward a user-specified prioritization of URLs along the lines
// of the Tapestry system."
//
// A priority file pairs URL patterns with weights, in the same
// first-match-wins style as the Table 1 threshold file:
//
//	# pattern                                weight
//	http://www\.research\.att\.com/.*        10
//	http://.*\.cs\..*\.edu/.*                5
//	http://www\.yahoo\.com/.*                -3
//	Default                                  0
//
// The report sorts primarily by status (changed first), then by the
// user's weight, then by recency — so a high-priority unchanged page
// still ranks below a low-priority changed one, but among the changed
// pages the user's interests dominate pure recency.

// PriorityRule pairs a pattern with a user-assigned weight.
type PriorityRule struct {
	// Raw is the pattern as written.
	Raw string
	// Pattern is the compiled, fully anchored form.
	Pattern *regexp.Regexp
	// Weight is the user's priority; higher sorts first.
	Weight float64
}

// Priorities is an ordered rule list; the first match wins.
type Priorities struct {
	// Rules are consulted in file order.
	Rules []PriorityRule
	// Default applies when no rule matches.
	Default float64
}

// ParsePriorities reads a priority file.
func ParsePriorities(r io.Reader) (*Priorities, error) {
	p := &Priorities{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("tracker: priorities line %d: want \"pattern weight\", got %q", lineNo, line)
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("tracker: priorities line %d: bad weight %q: %v", lineNo, fields[1], err)
		}
		if fields[0] == "Default" {
			p.Default = w
			continue
		}
		re, err := regexp.Compile("^(?:" + fields[0] + ")$")
		if err != nil {
			return nil, fmt.Errorf("tracker: priorities line %d: bad pattern %q: %v", lineNo, fields[0], err)
		}
		p.Rules = append(p.Rules, PriorityRule{Raw: fields[0], Pattern: re, Weight: w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParsePrioritiesString is ParsePriorities over a string.
func ParsePrioritiesString(s string) (*Priorities, error) {
	return ParsePriorities(strings.NewReader(s))
}

// WeightFor returns the weight governing url.
func (p *Priorities) WeightFor(url string) float64 {
	for _, r := range p.Rules {
		if r.Pattern.MatchString(url) {
			return r.Weight
		}
	}
	return p.Default
}

// Score returns a ReportOptions.Score value combining status, the
// user's weights, and recency. Status dominates (changed > error >
// unchanged > skipped), user weight breaks ties within a status class,
// and recency breaks ties within a weight.
func (p *Priorities) Score(r Result) float64 {
	var rank float64
	switch r.Status {
	case Changed:
		rank = 3
	case Failed:
		rank = 2
	case Unchanged:
		rank = 1
	}
	weight := p.WeightFor(r.Entry.URL)
	recency := 0.0
	if !r.LastModified.IsZero() {
		recency = float64(r.LastModified.Unix()) / 1e12 // < 1 for any sane date
	}
	return rank*1e7 + weight*10 + recency
}
