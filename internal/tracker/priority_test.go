package tracker

import (
	"strings"
	"testing"
	"time"

	"aide/internal/hotlist"
	"aide/internal/w3config"
)

const prioritySample = `# my interests
http://www\.research\.att\.com/.* 10
http://.*\.edu/.* 5
http://www\.yahoo\.com/.* -3
Default 0
`

func TestParsePriorities(t *testing.T) {
	p, err := ParsePrioritiesString(prioritySample)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]float64{
		"http://www.research.att.com/ssr/":         10,
		"http://snapple.cs.washington.edu/mobile/": 5,
		"http://www.yahoo.com/Computers/":          -3,
		"http://unmatched.example/":                0,
	}
	for url, want := range cases {
		if got := p.WeightFor(url); got != want {
			t.Errorf("WeightFor(%s) = %v, want %v", url, got, want)
		}
	}
}

func TestParsePrioritiesErrors(t *testing.T) {
	for _, src := range []string{
		"http://x/ notanumber\n",
		"onlyonefield\n",
		"http://[bad 1\n",
	} {
		if _, err := ParsePrioritiesString(src); err == nil {
			t.Errorf("ParsePriorities(%q) succeeded", src)
		}
	}
}

func TestPriorityScoreOrdering(t *testing.T) {
	p, err := ParsePrioritiesString(prioritySample)
	if err != nil {
		t.Fatal(err)
	}
	older := time.Date(1995, 9, 1, 0, 0, 0, 0, time.UTC)
	newer := time.Date(1995, 11, 1, 0, 0, 0, 0, time.UTC)
	results := []Result{
		{Entry: hotlist.Entry{URL: "http://www.yahoo.com/x", Title: "LowPriChanged"},
			Status: Changed, LastModified: newer},
		{Entry: hotlist.Entry{URL: "http://www.research.att.com/y", Title: "HighPriChanged"},
			Status: Changed, LastModified: older},
		{Entry: hotlist.Entry{URL: "http://www.research.att.com/z", Title: "HighPriUnchanged"},
			Status: Unchanged, LastModified: newer},
		{Entry: hotlist.Entry{URL: "http://plain.example/", Title: "MidChangedNewer"},
			Status: Changed, LastModified: newer},
		{Entry: hotlist.Entry{URL: "http://plain.example/2", Title: "MidChangedOlder"},
			Status: Changed, LastModified: older},
	}
	html := Report(results, ReportOptions{Prioritize: true, Score: p.Score})
	pos := func(title string) int { return strings.Index(html, title) }
	// Changed beats unchanged regardless of weight; among changed, the
	// user's weight dominates recency; within equal weight, recency wins.
	order := []string{"HighPriChanged", "MidChangedNewer", "MidChangedOlder", "LowPriChanged", "HighPriUnchanged"}
	for i := 1; i < len(order); i++ {
		if !(pos(order[i-1]) < pos(order[i])) {
			t.Fatalf("order violated: %s should precede %s\n%s", order[i-1], order[i], html)
		}
	}
}

func TestPriorityFirstMatchWins(t *testing.T) {
	p, err := ParsePrioritiesString("http://h/special/.* 9\nhttp://h/.* 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.WeightFor("http://h/special/x"); got != 9 {
		t.Errorf("specific = %v", got)
	}
	if got := p.WeightFor("http://h/other"); got != 1 {
		t.Errorf("general = %v", got)
	}
}

// TestPriorityMatchingTable pins down the pattern-matching semantics the
// scheduler's interval floors also rely on (priority and threshold files
// share the same first-match-wins, fully anchored rule format): file
// order beats specificity, overlapping patterns resolve to the earliest
// line, anchoring rejects substring matches, and Default position in the
// file is irrelevant.
func TestPriorityMatchingTable(t *testing.T) {
	cases := []struct {
		name string
		file string
		url  string
		want float64
	}{
		{"first match wins over later broader", "http://h/a/.* 3\nhttp://h/.* 1\n", "http://h/a/x", 3},
		{"first match wins even when broader comes first",
			"http://h/.* 1\nhttp://h/a/.* 3\n", "http://h/a/x", 1},
		{"overlapping patterns: earliest of three",
			"http://h/a/b/.* 7\nhttp://h/a/.* 5\nhttp://h/.* 1\n", "http://h/a/b/c", 7},
		{"overlap skips non-matching earlier line",
			"http://other/.* 9\nhttp://h/a/.* 5\nhttp://h/.* 1\n", "http://h/a/x", 5},
		{"patterns are fully anchored: no substring match",
			"http://h/a 5\nDefault 1\n", "http://h/a/trailing", 1},
		{"patterns are fully anchored: no suffix match",
			".*h/a 5\nDefault 1\n", "http://h/a/x", 1},
		{"Default only when nothing matches", "http://h/.* 5\nDefault 2\n", "http://other/", 2},
		{"Default line position is irrelevant",
			"Default 2\nhttp://h/.* 5\n", "http://h/x", 5},
		{"identical patterns: first weight wins",
			"http://h/.* 4\nhttp://h/.* 8\n", "http://h/x", 4},
		{"regex alternation matches either branch",
			"http://(a|b)/.* 6\nDefault 0\n", "http://b/x", 6},
		{"empty rule set falls to zero default", "", "http://anything/", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := ParsePrioritiesString(c.file)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if got := p.WeightFor(c.url); got != c.want {
				t.Errorf("WeightFor(%s) = %v, want %v", c.url, got, c.want)
			}
		})
	}
}

// TestThresholdFloorMatchingTable exercises the Table 1 threshold
// matching that the scheduler consumes through its Floor hook: `never`
// entries, overlapping patterns, and first-match-wins ordering decide
// which URLs are schedulable at all and what their minimum intervals
// are.
func TestThresholdFloorMatchingTable(t *testing.T) {
	const file = `Default 2d
http://fast\.example/.* 0
http://slow\.example/daily/.* 1d
http://slow\.example/.* 7d
http://noisy\.example/counter\.html never
http://noisy\.example/.* 12h
`
	cfg, err := w3config.ParseString(file)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		url   string
		every time.Duration
		never bool
	}{
		{"http://fast.example/any", 0, false},
		{"http://slow.example/daily/news", 24 * time.Hour, false}, // specific line listed first wins
		{"http://slow.example/archive", 7 * 24 * time.Hour, false},
		{"http://noisy.example/counter.html", 0, true}, // never beats the later 12h line
		{"http://noisy.example/stable.html", 12 * time.Hour, false},
		{"http://unmatched.example/", 2 * 24 * time.Hour, false}, // Default
	}
	for _, c := range cases {
		th := cfg.ThresholdFor(c.url)
		if th.Never != c.never || th.Every != c.every {
			t.Errorf("ThresholdFor(%s) = {Never:%v Every:%v}, want {Never:%v Every:%v}",
				c.url, th.Never, th.Every, c.never, c.every)
		}
	}
}
