package tracker

import (
	"strings"
	"testing"
	"time"

	"aide/internal/hotlist"
)

const prioritySample = `# my interests
http://www\.research\.att\.com/.* 10
http://.*\.edu/.* 5
http://www\.yahoo\.com/.* -3
Default 0
`

func TestParsePriorities(t *testing.T) {
	p, err := ParsePrioritiesString(prioritySample)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]float64{
		"http://www.research.att.com/ssr/":         10,
		"http://snapple.cs.washington.edu/mobile/": 5,
		"http://www.yahoo.com/Computers/":          -3,
		"http://unmatched.example/":                0,
	}
	for url, want := range cases {
		if got := p.WeightFor(url); got != want {
			t.Errorf("WeightFor(%s) = %v, want %v", url, got, want)
		}
	}
}

func TestParsePrioritiesErrors(t *testing.T) {
	for _, src := range []string{
		"http://x/ notanumber\n",
		"onlyonefield\n",
		"http://[bad 1\n",
	} {
		if _, err := ParsePrioritiesString(src); err == nil {
			t.Errorf("ParsePriorities(%q) succeeded", src)
		}
	}
}

func TestPriorityScoreOrdering(t *testing.T) {
	p, err := ParsePrioritiesString(prioritySample)
	if err != nil {
		t.Fatal(err)
	}
	older := time.Date(1995, 9, 1, 0, 0, 0, 0, time.UTC)
	newer := time.Date(1995, 11, 1, 0, 0, 0, 0, time.UTC)
	results := []Result{
		{Entry: hotlist.Entry{URL: "http://www.yahoo.com/x", Title: "LowPriChanged"},
			Status: Changed, LastModified: newer},
		{Entry: hotlist.Entry{URL: "http://www.research.att.com/y", Title: "HighPriChanged"},
			Status: Changed, LastModified: older},
		{Entry: hotlist.Entry{URL: "http://www.research.att.com/z", Title: "HighPriUnchanged"},
			Status: Unchanged, LastModified: newer},
		{Entry: hotlist.Entry{URL: "http://plain.example/", Title: "MidChangedNewer"},
			Status: Changed, LastModified: newer},
		{Entry: hotlist.Entry{URL: "http://plain.example/2", Title: "MidChangedOlder"},
			Status: Changed, LastModified: older},
	}
	html := Report(results, ReportOptions{Prioritize: true, Score: p.Score})
	pos := func(title string) int { return strings.Index(html, title) }
	// Changed beats unchanged regardless of weight; among changed, the
	// user's weight dominates recency; within equal weight, recency wins.
	order := []string{"HighPriChanged", "MidChangedNewer", "MidChangedOlder", "LowPriChanged", "HighPriUnchanged"}
	for i := 1; i < len(order); i++ {
		if !(pos(order[i-1]) < pos(order[i])) {
			t.Fatalf("order violated: %s should precede %s\n%s", order[i-1], order[i], html)
		}
	}
}

func TestPriorityFirstMatchWins(t *testing.T) {
	p, err := ParsePrioritiesString("http://h/special/.* 9\nhttp://h/.* 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.WeightFor("http://h/special/x"); got != 9 {
		t.Errorf("specific = %v", got)
	}
	if got := p.WeightFor("http://h/other"); got != 1 {
		t.Errorf("general = %v", got)
	}
}
