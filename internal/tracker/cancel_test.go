package tracker

import (
	"context"
	"testing"
	"time"

	"aide/internal/hotlist"
)

// hungListRig builds a hotlist whose second entry points at a wedged
// host: checking it blocks until the run's context is done.
func hungListRig(t *testing.T) (*rig, []hotlist.Entry) {
	t.Helper()
	r := newRig(t, "Default 0\n")
	r.web.Site("a.example").Page("/p").Set("<P>a</P>")
	r.web.Site("stuck.example").Page("/p").Set("<P>s</P>")
	r.web.Site("stuck.example").SetHang(true)
	r.web.Site("b.example").Page("/p").Set("<P>b</P>")
	r.web.Site("c.example").Page("/p").Set("<P>c</P>")
	entries := []hotlist.Entry{
		entry("http://a.example/p"),
		entry("http://stuck.example/p"),
		entry("http://b.example/p"),
		entry("http://c.example/p"),
	}
	return r, entries
}

// A deadlined run against a hung host must come back by the deadline
// with ordered partial results: everything checked before the hang keeps
// its real verdict, the hung entry and everything after it are reported
// NotChecked via "canceled". This is the acceptance scenario for
// cancellation threading.
func TestTrackerRunCanceled(t *testing.T) {
	r, entries := hungListRig(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	results := r.tr.Run(ctx, entries)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run outlived its deadline by far: %v", elapsed)
	}

	if len(results) != len(entries) {
		t.Fatalf("results = %d, want %d (one per entry, even when canceled)", len(results), len(entries))
	}
	for i, res := range results {
		if res.Entry.URL != entries[i].URL {
			t.Errorf("result %d is %s, want %s (hotlist order)", i, res.Entry.URL, entries[i].URL)
		}
	}
	if results[0].Via == "canceled" || results[0].Status == NotChecked {
		t.Errorf("entry before the hang not checked: %+v", results[0])
	}
	for i, res := range results[1:] {
		if res.Status != NotChecked || res.Via != "canceled" {
			t.Errorf("result %d = {%v %q}, want {NotChecked canceled}", i+1, res.Status, res.Via)
		}
	}
}

// The concurrent scheduler must also respect the deadline: workers on
// healthy hosts finish, the hung check is reported canceled, and no
// goroutine is left behind (the -race run guards the bookkeeping).
func TestTrackerRunCanceledConcurrent(t *testing.T) {
	r, entries := hungListRig(t)
	r.tr.Opt.Concurrency = len(entries)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	results := r.tr.Run(ctx, entries)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run outlived its deadline by far: %v", elapsed)
	}
	if len(results) != len(entries) {
		t.Fatalf("results = %d, want %d", len(results), len(entries))
	}
	for i, res := range results {
		if res.Entry.URL != entries[i].URL {
			t.Errorf("result %d is %s, want %s (hotlist order)", i, res.Entry.URL, entries[i].URL)
		}
		hung := res.Entry.URL == "http://stuck.example/p"
		if hung && res.Via != "canceled" {
			t.Errorf("hung entry = {%v %q}, want canceled", res.Status, res.Via)
		}
		if !hung && res.Via == "canceled" {
			t.Errorf("healthy entry %s reported canceled", res.Entry.URL)
		}
	}
}

// A context canceled before the run starts checks nothing.
func TestTrackerRunPreCanceled(t *testing.T) {
	r, entries := hungListRig(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, res := range r.tr.Run(ctx, entries) {
		if res.Status != NotChecked || res.Via != "canceled" {
			t.Errorf("pre-canceled run checked %s: {%v %q}", res.Entry.URL, res.Status, res.Via)
		}
	}
	heads, gets := r.web.TotalRequests()
	if heads+gets != 0 {
		t.Errorf("pre-canceled run issued %d requests", heads+gets)
	}
}

func TestHostOf(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"http://h/p", "h"},
		{"http://h:8080/p", "h:8080"},
		{"https://secure.example/x", "secure.example"},
		{"HTTP://UPPER.example/", "UPPER.example"},
		{"file:/etc/motd", ""},
		{"form:watch-1", ""},
		{"not a url at all", ""},
		{"://bad", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := hostOf(c.in); got != c.want {
			t.Errorf("hostOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
