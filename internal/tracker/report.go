package tracker

import (
	"fmt"
	"html"
	"net/url"
	"sort"
	"strings"
	"time"
)

// This file renders w3newer's HTML report (the paper's Figure 1): one
// row per hotlist entry with its change status and the three AIDE links —
// Remember, Diff, and History — that hand the URL to the snapshot
// facility (§6).

// ReportOptions configure report generation.
type ReportOptions struct {
	// SnapshotBase is the base URL of the snapshot facility; when empty
	// the Remember/Diff/History links are omitted (stand-alone w3newer).
	SnapshotBase string
	// User is the identity passed to the snapshot facility.
	User string
	// Now is the run timestamp shown in the header.
	Now time.Time
	// Prioritize sorts rows by score instead of hotlist order,
	// addressing §7's information-overload observation ("a
	// user-specified prioritization of URLs along the lines of the
	// Tapestry system").
	Prioritize bool
	// Score overrides the default priority function (higher sorts
	// first). Only used when Prioritize is set.
	Score func(Result) float64
}

// DefaultScore ranks changed pages first (most recently modified on
// top), then errors (the user should prune dead URLs), then the rest.
func DefaultScore(r Result) float64 {
	switch r.Status {
	case Changed:
		// More recent modifications score higher.
		return 3 + float64(r.LastModified.Unix())/1e12
	case Failed:
		return 2
	case Unchanged:
		return 1
	default:
		return 0
	}
}

// Report renders the run results as the Figure 1 HTML document.
func Report(results []Result, opt ReportOptions) string {
	rows := append([]Result(nil), results...)
	if opt.Prioritize {
		score := opt.Score
		if score == nil {
			score = DefaultScore
		}
		sort.SliceStable(rows, func(i, j int) bool { return score(rows[i]) > score(rows[j]) })
	}
	var sb strings.Builder
	sb.WriteString("<HTML><HEAD><TITLE>w3newer: what's new</TITLE></HEAD><BODY>\n")
	fmt.Fprintf(&sb, "<H1>What's new on your hotlist</H1>\n")
	if !opt.Now.IsZero() {
		fmt.Fprintf(&sb, "<P>Run of %s.</P>\n", opt.Now.UTC().Format(time.ANSIC))
	}
	changed := 0
	for _, r := range rows {
		if r.Status == Changed {
			changed++
		}
	}
	fmt.Fprintf(&sb, "<P>%d of %d pages have changed since you last saw them.</P>\n<HR>\n<DL>\n", changed, len(rows))
	for _, r := range rows {
		title := r.Entry.Title
		if title == "" {
			title = r.Entry.URL
		}
		fmt.Fprintf(&sb, "<DT><A HREF=\"%s\">%s</A>%s\n",
			html.EscapeString(r.Entry.URL), html.EscapeString(title), aideLinks(r, opt))
		fmt.Fprintf(&sb, "<DD>%s", statusLine(r))
		if r.Bulletin != "" {
			fmt.Fprintf(&sb, " <I>Bulletin: %s</I>", html.EscapeString(r.Bulletin))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("</DL>\n</BODY></HTML>\n")
	return sb.String()
}

// statusLine renders one row's status sentence.
func statusLine(r Result) string {
	switch r.Status {
	case Changed:
		if r.LastModified.IsZero() {
			return "<B>Changed</B> since your last visit."
		}
		return fmt.Sprintf("<B>Changed</B>: modified %s (after your last visit%s).",
			r.LastModified.UTC().Format(time.ANSIC), visitedClause(r))
	case Unchanged:
		if r.LastModified.IsZero() {
			return "Seen: no change since your last visit."
		}
		return fmt.Sprintf("Seen: last modified %s.", r.LastModified.UTC().Format(time.ANSIC))
	case NotChecked:
		return fmt.Sprintf("Not checked this run (%s).", html.EscapeString(r.Via))
	case Excluded:
		return "Not checked: excluded by the robot exclusion protocol."
	case Failed:
		msg := "unknown error"
		if r.Err != nil {
			msg = r.Err.Error()
		}
		s := fmt.Sprintf("<B>Error</B>: %s (%s).", html.EscapeString(msg), r.ErrKind)
		if r.ErrCount > 1 {
			s += fmt.Sprintf(" %d consecutive failures; consider removing this URL.", r.ErrCount)
		}
		return s
	}
	return ""
}

func visitedClause(r Result) string {
	if r.LastVisited.IsZero() {
		return "; never visited"
	}
	return " of " + r.LastVisited.UTC().Format(time.ANSIC)
}

// aideLinks renders the Remember / Diff / History links of Figure 1.
func aideLinks(r Result, opt ReportOptions) string {
	if opt.SnapshotBase == "" {
		return ""
	}
	base := strings.TrimSuffix(opt.SnapshotBase, "/")
	q := url.Values{}
	q.Set("url", r.Entry.URL)
	if opt.User != "" {
		q.Set("user", opt.User)
	}
	enc := q.Encode()
	return fmt.Sprintf(
		` &nbsp;[<A HREF="%s/remember?%s">Remember</A>] [<A HREF="%s/diff?%s">Diff</A>] [<A HREF="%s/history?%s">History</A>]`,
		base, enc, base, enc, base, enc)
}

// Summary tallies results by status, for logs and experiments.
func Summary(results []Result) map[Status]int {
	m := make(map[Status]int)
	for _, r := range results {
		m[r.Status]++
	}
	return m
}

// HostCounts is one host's sweep outcome, for the degradation report.
type HostCounts struct {
	// Host is the host[:port], or "" for hostless entries (file:, form:).
	Host string
	// OK counts entries answered normally (changed, unchanged,
	// threshold-skipped, excluded — anything that is not a failure).
	OK int
	// Degraded counts failures served with a Stale last-known-good
	// answer.
	Degraded int
	// Skipped counts entries not checked because the host was already
	// known bad this run.
	Skipped int
	// Failed counts hard failures with nothing to fall back on.
	Failed int
}

// HostSummary tallies a sweep per host, separating clean answers from
// degraded (stale-served), skipped (host known bad), and hard-failed
// entries — the "sweep completed degraded" report for operators. Hosts
// are returned sorted by name.
func HostSummary(results []Result) []HostCounts {
	byHost := make(map[string]*HostCounts)
	var order []string
	for _, r := range results {
		h := hostOf(r.Entry.URL)
		hc, ok := byHost[h]
		if !ok {
			hc = &HostCounts{Host: h}
			byHost[h] = hc
			order = append(order, h)
		}
		switch {
		case r.Status == Failed && r.Stale:
			hc.Degraded++
		case r.Status == Failed:
			hc.Failed++
		case r.Status == NotChecked && r.Via == "host-error":
			hc.Skipped++
		default:
			hc.OK++
		}
	}
	sort.Strings(order)
	out := make([]HostCounts, 0, len(order))
	for _, h := range order {
		out = append(out, *byHost[h])
	}
	return out
}
