package tracker

import (
	"context"
	"sync"
	"testing"
	"time"

	"aide/internal/breaker"
	"aide/internal/hotlist"
	"aide/internal/webclient"
)

func TestFailedCheckServesLastKnownGoodAsStale(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p := r.web.Site("h").Page("/p")
	p.Set("v1")
	mod := r.clock.Now()

	// A clean first run populates the state cache.
	res := one(t, r.tr, "http://h/p")
	if res.Status != Changed || res.Stale {
		t.Fatalf("healthy run: %+v", res)
	}

	// The host dies past the staleness window, so the cached-mod-date
	// shortcut does not answer and the check hits the wire.
	r.web.Advance(8 * 24 * time.Hour)
	r.web.Site("h").SetDown(true)
	res = one(t, r.tr, "http://h/p")
	if res.Status != Failed {
		t.Fatalf("dead host: %+v", res)
	}
	if !res.Stale {
		t.Error("failed check with cached state not marked Stale")
	}
	if !res.LastModified.Equal(mod) {
		t.Errorf("stale LastModified = %v, want the cached %v", res.LastModified, mod)
	}
}

func TestFailedCheckWithNoHistoryIsNotStale(t *testing.T) {
	r := newRig(t, "Default 0\n")
	r.web.Site("h").Page("/p").Set("v1")
	r.web.Site("h").SetDown(true)
	res := one(t, r.tr, "http://h/p")
	if res.Status != Failed || res.Stale {
		t.Fatalf("first-ever check of a dead host: %+v (Stale must be false)", res)
	}
}

func TestTrippedBreakerSkipsHostRemainder(t *testing.T) {
	r := newRig(t, "Default 0\n")
	site := r.web.Site("h")
	for _, p := range []string{"/a", "/b", "/c"} {
		site.Page(p).Set("content")
	}
	site.SetDown(true)
	// Threshold 1: the first failure opens the breaker; with serial
	// order, /b and /c must be skipped as host-error without a fetch.
	r.tr.Client.Breakers = breaker.NewSet(breaker.Config{FailureThreshold: 1, Cooldown: time.Hour})
	r.tr.Client.Breakers.Clock = r.clock

	entries := []hotlist.Entry{entry("http://h/a"), entry("http://h/b"), entry("http://h/c")}
	results := r.tr.Run(context.Background(), entries)
	if results[0].Status != Failed {
		t.Fatalf("first URL: %+v", results[0])
	}
	// The second URL meets the now-open breaker: it fails fast with the
	// distinct Tripped kind (no wire attempt) and marks the host bad...
	if results[1].Status != Failed || results[1].ErrKind != webclient.Tripped {
		t.Errorf("second URL = %v kind %v, want Failed/Tripped", results[1].Status, results[1].ErrKind)
	}
	// ...so the third is skipped outright.
	if results[2].Status != NotChecked || results[2].Via != "host-error" {
		t.Errorf("third URL = %v via %q, want NotChecked via host-error",
			results[2].Status, results[2].Via)
	}
	heads, gets := site.Requests()
	if heads+gets != 1 {
		t.Errorf("requests to tripped host = %d, want 1", heads+gets)
	}
}

func TestPerHostSerialization(t *testing.T) {
	r := newRig(t, "Default 0\n")
	// Track concurrent in-flight checks per host via a hanging-ish
	// transport wrapper: count entries inside the transport per host.
	var mu sync.Mutex
	inflight := map[string]int{}
	maxInflight := map[string]int{}
	base := r.tr.Client.Transport
	r.tr.Client.Transport = transportFunc(func(ctx context.Context, req *webclient.Request) (*webclient.Response, error) {
		host := hostOf(req.URL)
		mu.Lock()
		inflight[host]++
		if inflight[host] > maxInflight[host] {
			maxInflight[host] = inflight[host]
		}
		mu.Unlock()
		resp, err := base.RoundTrip(ctx, req)
		mu.Lock()
		inflight[host]--
		mu.Unlock()
		return resp, err
	})

	var entries []hotlist.Entry
	for _, h := range []string{"a", "b", "c"} {
		site := r.web.Site(h)
		for _, p := range []string{"/1", "/2", "/3", "/4"} {
			site.Page(p).Set("content")
			entries = append(entries, entry("http://"+h+p))
		}
	}
	r.tr.Opt.Concurrency = 8
	results := r.tr.Run(context.Background(), entries)
	for _, res := range results {
		if res.Status != Changed {
			t.Fatalf("%s: %+v", res.Entry.URL, res)
		}
	}
	for h, n := range maxInflight {
		if n > 1 {
			t.Errorf("host %s saw %d simultaneous requests, want at most 1", h, n)
		}
	}
}

// transportFunc adapts a function to webclient.Transport.
type transportFunc func(ctx context.Context, req *webclient.Request) (*webclient.Response, error)

func (f transportFunc) RoundTrip(ctx context.Context, req *webclient.Request) (*webclient.Response, error) {
	return f(ctx, req)
}

func TestHostSummaryCounts(t *testing.T) {
	results := []Result{
		{Entry: entry("http://a/1"), Status: Changed},
		{Entry: entry("http://a/2"), Status: Unchanged},
		{Entry: entry("http://b/1"), Status: Failed, Stale: true},
		{Entry: entry("http://b/2"), Status: NotChecked, Via: "host-error"},
		{Entry: entry("http://b/3"), Status: Failed},
		{Entry: entry("form:abc"), Status: Changed},
	}
	sum := HostSummary(results)
	want := []HostCounts{
		{Host: "", OK: 1},
		{Host: "a", OK: 2},
		{Host: "b", Degraded: 1, Skipped: 1, Failed: 1},
	}
	if len(sum) != len(want) {
		t.Fatalf("hosts = %d, want %d: %+v", len(sum), len(want), sum)
	}
	for i := range want {
		if sum[i] != want[i] {
			t.Errorf("host %q = %+v, want %+v", want[i].Host, sum[i], want[i])
		}
	}
}
