package tracker_test

import (
	"context"
	"fmt"
	"time"

	"aide/internal/hotlist"
	"aide/internal/simclock"
	"aide/internal/tracker"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// Example runs one w3newer pass over a two-page hotlist: one page
// changed since the user's visit, one did not.
func Example() {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	news := web.Site("news.example").Page("/daily")
	news.Set("<P>old headline.</P>")
	web.Site("docs.example").Page("/manual").Set("<P>the manual.</P>")

	hist := hotlist.NewHistory()
	visit := clock.Now().Add(time.Hour)
	hist.Visit("http://news.example/daily", visit)
	hist.Visit("http://docs.example/manual", visit)

	// Two days later the news page changes.
	web.Advance(48 * time.Hour)
	news.Set("<P>fresh headline!</P>")

	cfg, _ := w3config.ParseString("Default 0\n")
	tr := tracker.New(webclient.New(web), cfg, hist, clock)
	for _, r := range tr.Run(context.Background(), []hotlist.Entry{
		{URL: "http://news.example/daily", Title: "Daily News"},
		{URL: "http://docs.example/manual", Title: "The Manual"},
	}) {
		fmt.Printf("%s: %s\n", r.Entry.Title, r.Status)
	}
	// Output:
	// Daily News: changed
	// The Manual: unchanged
}

// ExampleParsePriorities shows the §7 Tapestry-style priority file.
func ExampleParsePriorities() {
	p, _ := tracker.ParsePrioritiesString(`
http://www\.research\.att\.com/.* 10
http://www\.yahoo\.com/.* -3
Default 0
`)
	fmt.Println(p.WeightFor("http://www.research.att.com/ssr/"))
	fmt.Println(p.WeightFor("http://www.yahoo.com/Computers/"))
	fmt.Println(p.WeightFor("http://elsewhere.example/"))
	// Output:
	// 10
	// -3
	// 0
}
