// Package tracker implements w3newer, AIDE's modification tracker (§3).
//
// A run walks the user's hotlist and decides, per URL, whether the page
// has changed since the browser history says the user last saw it —
// while avoiding as many HTTP requests as possible:
//
//   - pages already known to be modified since the last visit (from the
//     tracker's own state cache or from the proxy-cache daemon) are
//     reported without any HTTP, unless that knowledge is stale;
//   - pages visited within their per-URL threshold (Table 1) are not
//     checked at all;
//   - pages checked within their threshold are answered from the cached
//     verdict;
//   - file: URLs are stat()ed on every run (cheap);
//   - URLs excluded by the robot exclusion protocol are not fetched, and
//     the exclusion is cached;
//   - pages without Last-Modified (CGI output) fall back to checksums.
//
// Error handling follows §3.1: errors are assumed transient and retried
// next run by default; a flag treats an erroring URL as checked so it is
// polled no more often than a healthy one; host-level failures can skip
// the host's remaining URLs for the run; inaccessible URLs appear in the
// report so the user can prune them.
package tracker

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aide/internal/formreg"
	"aide/internal/fsatomic"
	"aide/internal/hotlist"
	"aide/internal/htmldoc"
	"aide/internal/obs"
	"aide/internal/robots"
	"aide/internal/sched"
	"aide/internal/simclock"
	"aide/internal/w3config"
	"aide/internal/webclient"
)

// Status is the per-URL outcome of a run.
type Status int

// Statuses, in report order.
const (
	// Changed: modified since the user last saw it.
	Changed Status = iota
	// Unchanged: checked (or known) and already seen by the user.
	Unchanged
	// NotChecked: skipped this run (threshold, host error, or "never").
	NotChecked
	// Excluded: robots.txt forbids automated retrieval.
	Excluded
	// Failed: the check errored; see Err.
	Failed
)

// String names the status as the report shows it.
func (s Status) String() string {
	switch s {
	case Changed:
		return "changed"
	case Unchanged:
		return "unchanged"
	case NotChecked:
		return "not checked"
	case Excluded:
		return "robot-excluded"
	case Failed:
		return "error"
	}
	return "unknown"
}

// Result is one row of a run's outcome.
type Result struct {
	// Entry is the hotlist item.
	Entry hotlist.Entry
	// Status is the verdict.
	Status Status
	// LastModified is the page's modification time, when known.
	LastModified time.Time
	// LastVisited is the browser history's view, when known.
	LastVisited time.Time
	// Via names the information source: "state-cache", "proxy", "HEAD",
	// "GET+checksum", "stat", "threshold", "visited-recently",
	// "host-error", "never", "canceled".
	Via string
	// Err is the failure for Status Failed.
	Err error
	// ErrKind classifies Err.
	ErrKind webclient.ErrKind
	// ErrCount is how many consecutive runs have failed for this URL.
	ErrCount int
	// Stale marks a Failed result that still carries last-known-good
	// knowledge (LastModified and/or a stored checksum) from an earlier
	// successful check: the answer served under degradation is explicit
	// about being old rather than silently absent.
	Stale bool
	// Bulletin is the page's Smart-Bookmarks-style self-description
	// (§2.1), when the check happened to fetch the body and one was
	// embedded. Informational only: the paper's critique is that the
	// maintainer's "what's new" is not the reader's.
	Bulletin string
}

// State is the tracker's persistent per-URL memory across runs ("a
// cached modification date from previous runs of w3newer").
type State struct {
	URL           string    `json:"url"`
	LastModified  time.Time `json:"last_modified,omitzero"`
	Checksum      string    `json:"checksum,omitempty"`
	CheckedAt     time.Time `json:"checked_at,omitzero"`
	ErrCount      int       `json:"err_count,omitempty"`
	RobotExcluded bool      `json:"robot_excluded,omitempty"`
}

// ModOracle is the proxy-cache daemon interface (internal/proxycache).
type ModOracle interface {
	// ModInfo returns the cached modification date for url and when that
	// information was obtained.
	ModInfo(url string) (lastMod, cachedAt time.Time, ok bool)
}

// Options configure a Tracker.
type Options struct {
	// StaleAfter is how old cached modification knowledge may be before
	// HTTP is used anyway ("currently, the threshold is one week").
	StaleAfter time.Duration
	// TreatErrorsAsChecked makes an erroring URL count as checked, so it
	// is polled with the same frequency as an accessible one (§3.1's
	// second flag).
	TreatErrorsAsChecked bool
	// SkipHostAfterError skips a host's remaining URLs once one of its
	// URLs has hit a transport error this run.
	SkipHostAfterError bool
	// IgnoreRobots bypasses the robot exclusion protocol (§3.1's
	// "special flag set when the script is invoked").
	IgnoreRobots bool
	// TrustOracle treats the Proxy oracle as authoritative: any entry
	// it has for a URL answers the check outright, with no staleness or
	// threshold reasoning. This models §3.1's push-notification regime,
	// where the oracle is a notification relay kept current by content
	// providers rather than a best-effort cache.
	TrustOracle bool
	// Concurrency bounds the number of simultaneous checks. Values <= 1
	// keep the paper's serial, script-like behaviour. With concurrency,
	// SkipHostAfterError becomes best-effort: checks already in flight
	// when a host fails are not recalled.
	Concurrency int
	// PhaseJitter, when positive, delays each host group's first check
	// in a concurrent run by a deterministic per-host offset in
	// [0, PhaseJitter), so a sweep does not fire every host's first
	// request at the same instant. The offset is sched.Jitter(host,
	// JitterSeed, PhaseJitter), the same helper the continuous
	// scheduler uses. Serial runs ignore it (they are host-serial by
	// construction).
	PhaseJitter time.Duration
	// JitterSeed keys PhaseJitter's deterministic offsets.
	JitterSeed int64
}

// Tracker is a w3newer instance bound to one user's inputs.
type Tracker struct {
	// Client performs the checks; required.
	Client *webclient.Client
	// Config holds the per-URL thresholds; required.
	Config *w3config.Config
	// History is the browser history; required.
	History *hotlist.History
	// Robots, when non-nil, enforces the robot exclusion protocol.
	Robots *robots.Cache
	// Proxy, when non-nil, is consulted for cached modification dates
	// before any HTTP request.
	Proxy ModOracle
	// Forms, when non-nil, resolves form:<id> pseudo-URLs to saved
	// POST invocations (§8.4).
	Forms *formreg.Registry
	// Clock provides time; wall clock when nil.
	Clock simclock.Clock
	// Metrics receives sweep counters and the sweep-duration histogram;
	// obs.Default when nil.
	Metrics *obs.Registry
	// Opt are the behavioural flags.
	Opt Options

	mu     sync.Mutex
	states map[string]*State
}

// metrics returns the tracker's registry (obs.Default when unset).
func (t *Tracker) metrics() *obs.Registry {
	if t.Metrics != nil {
		return t.Metrics
	}
	return obs.Default
}

// DefaultStaleAfter matches the paper's one-week staleness threshold.
const DefaultStaleAfter = 7 * 24 * time.Hour

// New returns a tracker with empty state.
func New(client *webclient.Client, cfg *w3config.Config, hist *hotlist.History, clock simclock.Clock) *Tracker {
	if clock == nil {
		clock = simclock.Wall{}
	}
	return &Tracker{
		Client:  client,
		Config:  cfg,
		History: hist,
		Clock:   clock,
		Opt:     Options{StaleAfter: DefaultStaleAfter},
		states:  make(map[string]*State),
	}
}

// stateLocked returns (creating if needed) the persistent state for
// url; t.mu must be held.
func (t *Tracker) stateLocked(url string) *State {
	s, ok := t.states[url]
	if !ok {
		s = &State{URL: url}
		t.states[url] = s
	}
	return s
}

// stateSnapshot returns a copy of the persistent state for url, creating
// it if needed. checkOne reasons over the copy; every mutation goes
// through the locked helpers below, so concurrent checks never touch a
// shared *State field directly.
func (t *Tracker) stateSnapshot(url string) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return *t.stateLocked(url)
}

// recordFailure bumps the consecutive-error count for url, optionally
// counting the failed attempt as a check, and returns the new count.
func (t *Tracker) recordFailure(url string, markChecked bool, now time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stateLocked(url)
	st.ErrCount++
	if markChecked {
		st.CheckedAt = now
	}
	return st.ErrCount
}

// markRobotExcluded caches a robots.txt exclusion verdict for url.
func (t *Tracker) markRobotExcluded(url string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stateLocked(url).RobotExcluded = true
}

// hostErrs tracks hosts that have failed during a run, for the
// skip-host-after-error policy. It is safe for concurrent use.
type hostErrs struct {
	mu sync.Mutex
	m  map[string]bool
}

func newHostErrs() *hostErrs { return &hostErrs{m: make(map[string]bool)} }

func (h *hostErrs) bad(host string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.m[host]
}

func (h *hostErrs) markBad(host string) {
	if host == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.m[host] = true
}

// Run checks every hotlist entry and returns one result per entry, in
// hotlist order. With Opt.Concurrency > 1, distinct URLs are checked in
// parallel up to the bound; duplicate hotlist entries share one check.
//
// Cancellation: once ctx is done, no new checks are launched and the
// remaining entries are returned as NotChecked with Via "canceled" —
// the run always yields one result per entry, in order, so a deadline
// produces a partial report rather than none.
func (t *Tracker) Run(ctx context.Context, entries []hotlist.Entry) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	start := t.Clock.Now()
	ctx, span := obs.StartSpan(ctx, "tracker.sweep")
	span.SetAttr("entries", strconv.Itoa(len(entries)))
	badHosts := newHostErrs()
	var results []Result
	if t.Opt.Concurrency <= 1 {
		results = make([]Result, 0, len(entries))
		for i, e := range entries {
			if ctx.Err() != nil {
				for _, rest := range entries[i:] {
					results = append(results, canceledResult(rest))
				}
				break
			}
			r := t.checkOne(ctx, e, badHosts)
			t.noteFailure(r, badHosts)
			results = append(results, r)
		}
	} else {
		results = t.runConcurrent(ctx, entries, badHosts)
	}
	t.recordSweep(span, results, start)
	return results
}

// recordSweep finishes a run's span and records the per-sweep metrics:
// the sweep-duration histogram (measured on the tracker's clock, so
// simclock-paced runs are deterministic) and one counter per outcome.
func (t *Tracker) recordSweep(span *obs.Span, results []Result, start time.Time) {
	m := t.metrics()
	dur := t.Clock.Now().Sub(start)
	m.Counter("tracker.sweeps").Inc()
	m.Histogram("tracker.sweep.duration", nil).ObserveDuration(dur)
	sum := Summary(results)
	m.Counter("tracker.checks.changed").Add(int64(sum[Changed]))
	m.Counter("tracker.checks.unchanged").Add(int64(sum[Unchanged]))
	m.Counter("tracker.checks.notchecked").Add(int64(sum[NotChecked]))
	m.Counter("tracker.checks.excluded").Add(int64(sum[Excluded]))
	m.Counter("tracker.checks.failed").Add(int64(sum[Failed]))
	var degraded, skipped int
	for _, r := range results {
		if r.Status == Failed && r.Stale {
			degraded++
		}
		if r.Status == NotChecked && r.Via == "host-error" {
			skipped++
		}
	}
	m.Counter("tracker.checks.degraded").Add(int64(degraded))
	m.Counter("tracker.checks.skipped").Add(int64(skipped))
	span.SetAttr("changed", strconv.Itoa(sum[Changed]))
	span.SetAttr("failed", strconv.Itoa(sum[Failed]))
	span.End()
	obs.Logger().Info("tracker sweep",
		"entries", len(results), "changed", sum[Changed], "unchanged", sum[Unchanged],
		"notchecked", sum[NotChecked]+sum[Excluded], "failed", sum[Failed],
		"degraded", degraded, "skipped", skipped, "duration", dur)
}

// canceledResult marks one entry as unvisited because the run's context
// ended first.
func canceledResult(e hotlist.Entry) Result {
	return Result{Entry: e, Status: NotChecked, Via: "canceled"}
}

// noteFailure records a host-level failure for skip-host logic.
func (t *Tracker) noteFailure(r Result, badHosts *hostErrs) {
	if r.Status != Failed {
		return
	}
	switch {
	case r.ErrKind == webclient.Tripped:
		// The host's circuit breaker is open: nothing else will get
		// through this run, so skip its remaining URLs regardless of the
		// SkipHostAfterError policy.
		badHosts.markBad(hostOf(r.Entry.URL))
	case t.Opt.SkipHostAfterError && r.ErrKind == webclient.Transient:
		badHosts.markBad(hostOf(r.Entry.URL))
	}
}

// runConcurrent fans the checks out over a bounded worker pool with
// per-host serialization: distinct hosts run in parallel up to the
// Concurrency bound, but a single host's URLs are checked one at a time
// by one worker. A misbehaving host is therefore probed by at most one
// in-flight request — skip-host and circuit-breaker knowledge gained on
// its first URL protects all its later ones, and no host ever sees a
// thundering herd from a single sweep. Results keep hotlist order;
// entries naming the same URL are checked once and share the outcome
// (their own Entry is preserved in each Result). A done ctx stops
// further launches; checks already in flight finish (or fail fast,
// since the same ctx reaches the transport) and everything not yet
// launched comes back canceled.
func (t *Tracker) runConcurrent(ctx context.Context, entries []hotlist.Entry, badHosts *hostErrs) []Result {
	results := make([]Result, len(entries))
	// Group duplicate URLs: per-URL state is not designed for two
	// simultaneous checks of the same page, and one check suffices.
	first := make(map[string]int, len(entries))
	var order []int // indexes of the first occurrence of each URL
	for i, e := range entries {
		if _, dup := first[e.URL]; !dup {
			first[e.URL] = i
			order = append(order, i)
		}
	}
	// Partition the unique URLs into serial groups: one group per host,
	// in first-appearance order. Hostless pseudo-URLs (file:, form:)
	// have no server to protect, so each forms its own group and still
	// runs in parallel with everything else.
	type group struct{ idxs []int }
	var groupList []*group
	hostGroup := make(map[string]*group)
	for _, idx := range order {
		h := hostOf(entries[idx].URL)
		if h == "" {
			groupList = append(groupList, &group{idxs: []int{idx}})
			continue
		}
		g, ok := hostGroup[h]
		if !ok {
			g = &group{}
			hostGroup[h] = g
			groupList = append(groupList, g)
		}
		g.idxs = append(g.idxs, idx)
	}
	sem := make(chan struct{}, t.Opt.Concurrency)
	var wg sync.WaitGroup
	launched := make(map[int]bool, len(order))
launch:
	for _, g := range groupList {
		// Waiting for a worker slot must not outlive the run's deadline.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break launch
		}
		for _, idx := range g.idxs {
			launched[idx] = true
		}
		wg.Add(1)
		go func(idxs []int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			// De-synchronise host starts: each host group waits out its
			// own deterministic phase offset before its first request.
			if t.Opt.PhaseJitter > 0 {
				if h := hostOf(entries[idxs[0]].URL); h != "" {
					d := sched.Jitter(h, t.Opt.JitterSeed, t.Opt.PhaseJitter)
					if err := simclock.Sleep(ctx, t.Clock, d); err != nil {
						for _, idx := range idxs {
							results[idx] = canceledResult(entries[idx])
						}
						return
					}
				}
			}
			for _, idx := range idxs {
				if ctx.Err() != nil {
					results[idx] = canceledResult(entries[idx])
					continue
				}
				r := t.checkOne(ctx, entries[idx], badHosts)
				t.noteFailure(r, badHosts)
				results[idx] = r
			}
		}(g.idxs)
	}
	wg.Wait()
	for _, idx := range order {
		if !launched[idx] {
			results[idx] = canceledResult(entries[idx])
		}
	}
	// Fill in duplicates from their primary's outcome.
	for i, e := range entries {
		if p := first[e.URL]; p != i {
			r := results[p]
			r.Entry = e
			results[i] = r
		}
	}
	return results
}

// CheckEntry applies the §3 decision procedure to a single hotlist
// entry, outside any sweep. It is the continuous scheduler's per-URL
// poll path: same state cache, thresholds, robots handling, and proxy
// oracle as a sweep, but no host-error memory is carried across calls —
// host-level isolation is the caller's job (the scheduler consults the
// circuit breakers instead).
func (t *Tracker) CheckEntry(ctx context.Context, e hotlist.Entry) Result {
	return t.checkOne(ctx, e, newHostErrs())
}

// checkOne applies the §3 decision procedure to one URL under ctx,
// traced as a "tracker.check" span nesting whatever robots.txt and
// fetch work the decision needs.
func (t *Tracker) checkOne(ctx context.Context, e hotlist.Entry, badHosts *hostErrs) (r Result) {
	ctx, span := obs.StartSpan(ctx, "tracker.check")
	span.SetAttr("url", e.URL)
	defer func() {
		span.SetAttr("status", r.Status.String())
		span.SetAttr("via", r.Via)
		span.End()
	}()
	now := t.Clock.Now()
	r = Result{Entry: e}
	st := t.stateSnapshot(e.URL)

	lastVisited, visited := t.History.LastVisited(e.URL)
	if !visited && !e.LastVisit.IsZero() {
		// Netscape keeps last-visit in the bookmark file itself.
		lastVisited, visited = e.LastVisit, true
	}
	r.LastVisited = lastVisited

	th := t.Config.ThresholdFor(e.URL)
	if th.Never {
		r.Status = NotChecked
		r.Via = "never"
		return r
	}

	// Cached robot exclusion short-circuits everything (§3.1: "that fact
	// is cached so the page is not accessed again").
	if st.RobotExcluded && !t.Opt.IgnoreRobots {
		r.Status = Excluded
		r.Via = "state-cache"
		return r
	}

	// Host already known bad this run?
	if badHosts.bad(hostOf(e.URL)) {
		r.Status = NotChecked
		r.Via = "host-error"
		return r
	}

	isFile := strings.HasPrefix(e.URL, "file:")

	// An authoritative oracle (a push-notification relay) answers the
	// whole check: whatever modification date it holds is current.
	if !isFile && t.Opt.TrustOracle && t.Proxy != nil {
		if mod, _, ok := t.Proxy.ModInfo(e.URL); ok {
			t.recordSuccess(e.URL, mod, "", now)
			return t.verdict(r, mod, lastVisited, visited, "proxy")
		}
	}

	// Known-modified shortcut: if a cached date (our state or the proxy
	// daemon) says the page changed after the user's last visit, and
	// that knowledge is fresh, report without HTTP.
	if !isFile {
		if mod, via, ok := t.cachedModDate(st, now); ok {
			if visited && mod.After(lastVisited) {
				r.Status = Changed
				r.LastModified = mod
				r.Via = via
				return r
			}
		}
	}

	// Visited within the threshold: not checked (§3: "If the page was
	// visited within the threshold ... the page is not checked").
	if !isFile && visited && th.Every > 0 && now.Sub(lastVisited) < th.Every {
		r.Status = NotChecked
		r.Via = "visited-recently"
		return r
	}

	// Proxy information current with respect to the threshold counts as
	// a check.
	if !isFile && t.Proxy != nil {
		if mod, cachedAt, ok := t.Proxy.ModInfo(e.URL); ok && th.Every > 0 && now.Sub(cachedAt) < th.Every {
			t.recordSuccess(e.URL, mod, "", now)
			return t.verdict(r, mod, lastVisited, visited, "proxy")
		}
	}

	// Checked within the threshold: reuse the cached verdict rather than
	// issuing another HEAD (thresholds bound "the maximum frequency of
	// direct HEAD requests").
	if !isFile && !st.CheckedAt.IsZero() && th.Every > 0 && now.Sub(st.CheckedAt) < th.Every {
		if !st.LastModified.IsZero() {
			return t.verdict(r, st.LastModified, lastVisited, visited, "state-cache")
		}
		r.Status = NotChecked
		r.Via = "threshold"
		return r
	}

	// Robot exclusion protocol, before touching the page itself.
	if !isFile && t.Robots != nil && !t.Opt.IgnoreRobots && !t.Robots.Allowed(ctx, e.URL) {
		t.markRobotExcluded(e.URL)
		r.Status = Excluded
		r.Via = "robots.txt"
		return r
	}

	// Direct check over the wire (a stat for file: URLs, a replayed
	// POST for saved forms).
	var info webclient.PageInfo
	var err error
	if t.Forms != nil && formreg.IsFormURL(e.URL) {
		info, err = t.Forms.Invoke(ctx, t.Client, e.URL)
	} else {
		info, err = t.Client.Check(ctx, e.URL)
	}
	if err != nil {
		if ctx.Err() != nil {
			// The run's context ended, not the page: report the entry as
			// canceled rather than failed, and don't charge it an error.
			return canceledResult(e)
		}
		r.Status = Failed
		r.Via = "HEAD"
		r.Err = err
		r.ErrKind = webclient.Classify(0, err)
		r.ErrCount = t.recordFailure(e.URL, t.Opt.TreatErrorsAsChecked, now)
		return t.degrade(r, st)
	}
	if kind := webclient.Classify(info.Status, nil); kind != webclient.OK {
		r.Status = Failed
		r.Via = "HEAD"
		r.Err = fmt.Errorf("HTTP status %d", info.Status)
		r.ErrKind = kind
		r.ErrCount = t.recordFailure(e.URL, t.Opt.TreatErrorsAsChecked, now)
		return t.degrade(r, st)
	}

	via := "HEAD"
	if isFile {
		via = "stat"
	}
	if info.HasBody {
		if b, ok := htmldoc.Bulletin(info.Body); ok {
			r.Bulletin = b
		}
	}
	mod := info.LastModified
	if !info.HasLastModified {
		// Checksum strategy: no Last-Modified available.
		via = "GET+checksum"
		changed := st.Checksum != "" && st.Checksum != info.Checksum
		firstSight := st.Checksum == ""
		t.recordSuccess(e.URL, time.Time{}, info.Checksum, now)
		switch {
		case firstSight && visited:
			// First checksum; assume the visit saw this content.
			r.Status = Unchanged
		case firstSight, changed:
			r.Status = Changed
			r.LastModified = now // best effort: changed by now
		default:
			r.Status = Unchanged
		}
		r.Via = via
		return r
	}
	t.recordSuccess(e.URL, mod, "", now)
	return t.verdict(r, mod, lastVisited, visited, via)
}

// degrade fills a Failed result with the last-known-good answer from
// the URL's state, marked Stale: a sweep under partial failure reports
// what it last knew about the page instead of reporting nothing.
func (t *Tracker) degrade(r Result, st State) Result {
	if !st.LastModified.IsZero() || st.Checksum != "" {
		r.LastModified = st.LastModified
		r.Stale = true
	}
	return r
}

// verdict fills a result given a known modification date.
func (t *Tracker) verdict(r Result, mod, lastVisited time.Time, visited bool, via string) Result {
	r.LastModified = mod
	r.Via = via
	if !visited || mod.After(lastVisited) {
		r.Status = Changed
	} else {
		r.Status = Unchanged
	}
	return r
}

// cachedModDate returns a fresh cached modification date from the state
// cache or the proxy daemon, with its source label. st is checkOne's
// snapshot copy, so no lock is needed here.
func (t *Tracker) cachedModDate(st State, now time.Time) (time.Time, string, bool) {
	stale := t.Opt.StaleAfter
	if stale <= 0 {
		stale = DefaultStaleAfter
	}
	if !st.LastModified.IsZero() && !st.CheckedAt.IsZero() && now.Sub(st.CheckedAt) < stale {
		return st.LastModified, "state-cache", true
	}
	if t.Proxy != nil {
		if mod, cachedAt, ok := t.Proxy.ModInfo(st.URL); ok && now.Sub(cachedAt) < stale {
			return mod, "proxy", true
		}
	}
	return time.Time{}, "", false
}

// recordSuccess updates the per-URL state after a successful check.
func (t *Tracker) recordSuccess(url string, mod time.Time, checksum string, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stateLocked(url)
	if !mod.IsZero() {
		st.LastModified = mod
	}
	if checksum != "" {
		st.Checksum = checksum
	}
	st.CheckedAt = now
	st.ErrCount = 0
}

// hostOf extracts the host[:port] component of a URL for the host-error
// bookkeeping. Scheme-less URLs and pseudo-URLs without an authority
// (form:<id>, file paths) yield "", which the bookkeeping ignores.
func hostOf(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil {
		return ""
	}
	return u.Host
}

// --- state persistence -------------------------------------------------------

// SaveState writes the per-URL state cache to path (JSON lines would be
// overkill; a single JSON array keeps it human-inspectable). The states
// are copied under the lock — marshaling shared pointers outside it
// would race with a concurrent run's updates.
func (t *Tracker) SaveState(path string) error {
	t.mu.Lock()
	states := make([]State, 0, len(t.states))
	for _, s := range t.states {
		states = append(states, *s)
	}
	t.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].URL < states[j].URL })
	data, err := json.MarshalIndent(states, "", "  ")
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(path, data, 0o644)
}

// LoadState reads a state cache written by SaveState. A missing file is
// not an error: the first run starts cold.
func (t *Tracker) LoadState(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var states []*State
	if err := json.Unmarshal(data, &states); err != nil {
		return fmt.Errorf("tracker: corrupt state file %s: %v", path, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range states {
		t.states[s.URL] = s
	}
	return nil
}

// StateFor exposes a copy of the per-URL state, for tests and reports.
func (t *Tracker) StateFor(url string) (State, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.states[url]
	if !ok {
		return State{}, false
	}
	return *s, true
}
