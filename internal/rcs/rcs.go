// Package rcs implements a Revision Control System work-alike: an archive
// file per document holding the newest revision in full and every older
// revision as a reverse delta (an RCS-format ed script produced by
// internal/textdiff). This is the version repository behind the snapshot
// facility, mirroring the paper's use of RCS (Tichy, SPE 1985):
//
//   - a check-in of unchanged content is detected and skipped,
//   - storage cost beyond the first copy is proportional to the size of
//     the changes, and
//   - any revision can be retrieved by number or by date ("the state of
//     the page as user U last saw it").
//
// The on-disk format is a simplified trunk-only `,v` dialect: @-quoted
// strings with `@` doubled, head-first revision order, and a `noeol` flag
// so that texts without a final newline round-trip exactly.
//
// Two departures from classic RCS keep deep archives fast. Every
// CheckpointEvery-th revision is kept as full text (marked `checkpoint;`
// in its metadata, a keyword older parsers of this dialect never emitted
// but new parsers accept alongside `noeol;`), so a checkout applies a
// bounded number of ed scripts instead of one per intervening revision.
// And parsed archives are cached in a package-level LRU validated by file
// size and mtime, so the common poll cycle (stat, checkout head, check
// in) parses each archive once rather than once per operation.
package rcs

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aide/internal/obs"
	"aide/internal/simclock"
	"aide/internal/textdiff"
)

// ErrNoRevision is returned when a requested revision does not exist.
var ErrNoRevision = errors.New("rcs: no such revision")

// ErrNoArchive is returned when operating on an archive that has never
// had a check-in.
var ErrNoArchive = errors.New("rcs: archive does not exist")

// ErrCorrupt is returned when an archive file exists but cannot be
// parsed, or a stored delta no longer applies — the on-disk bytes are
// damaged (bit rot, torn write). Callers with a replica to fall back on
// (the snapshot facility's failover layer) match this with errors.Is to
// trigger repair instead of failing the read.
var ErrCorrupt = errors.New("rcs: archive corrupt")

// dateFormat is the RCS datestamp layout (UTC).
const dateFormat = "2006.01.02.15.04.05"

// Revision describes one stored revision of a document.
type Revision struct {
	// Num is the trunk revision number, e.g. "1.3".
	Num string
	// Date is the check-in time (UTC).
	Date time.Time
	// Author is the identity supplied at check-in.
	Author string
	// Log is the check-in log message.
	Log string
}

// revEntry is the in-memory form of one archive revision.
type revEntry struct {
	Revision
	noEOL bool
	// checkpoint marks a non-head revision stored as full text (a
	// forward checkpoint) rather than as a delta, bounding how many ed
	// scripts a checkout must apply.
	checkpoint bool
	// text is the full document for the head revision and for
	// checkpoints, and a reverse ed script (new -> old) for every other
	// revision.
	text string
}

// ErrLocked is returned when an operation conflicts with another user's
// revision lock.
var ErrLocked = errors.New("rcs: revision is locked")

// defaultCheckpointEvery is the default spacing of forward checkpoints:
// at most defaultCheckpointEvery-1 deltas separate consecutive full-text
// revisions, so a checkout applies at most that many ed scripts no matter
// how deep the archive grows.
const defaultCheckpointEvery = 8

// Archive is a single versioned document. An Archive value serialises its
// own operations; cross-process exclusion is the caller's responsibility
// (the snapshot facility holds per-URL locks around archive operations).
type Archive struct {
	path  string
	clock simclock.Clock

	// CheckpointEvery bounds the delta-chain length between full-text
	// revisions: every CheckpointEvery-th revision is kept as a forward
	// checkpoint. Zero selects the default; set before the first Checkin
	// to override (tests use small values to force dense checkpoints).
	CheckpointEvery int

	mu sync.Mutex
}

// Open returns a handle on the archive file at path. The file need not
// exist yet; it is created by the first Checkin. If clock is nil the wall
// clock is used.
func Open(path string, clock simclock.Clock) *Archive {
	if clock == nil {
		clock = simclock.Wall{}
	}
	return &Archive{path: path, clock: clock}
}

// Path returns the archive file path.
func (a *Archive) Path() string { return a.path }

// Exists reports whether the archive has at least one revision on disk.
func (a *Archive) Exists() bool {
	_, err := os.Stat(a.path)
	return err == nil
}

// Size returns the archive file size in bytes, or 0 if it does not exist.
func (a *Archive) Size() int64 {
	fi, err := os.Stat(a.path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Checkin stores text as a new head revision and returns its revision
// number. If text is byte-for-byte identical to the current head, nothing
// is written and Checkin returns the existing head number with
// changed=false — the paper relies on this to make "Remember" idempotent.
func (a *Archive) Checkin(text, author, log string) (rev string, changed bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clock.Now().UTC()

	f, err := a.load()
	switch {
	case errors.Is(err, ErrNoArchive):
		f = &archiveFile{}
	case err != nil:
		return "", false, err
	}

	// RCS lock discipline: another user's lock blocks the check-in; the
	// author's own lock is consumed by it (as `ci` does).
	lockReleased := false
	for user := range f.locks {
		if user != quoteWord(author) && user != author {
			return "", false, fmt.Errorf("%w by %s", ErrLocked, user)
		}
		delete(f.locks, user)
		lockReleased = true
	}

	if len(f.revs) > 0 {
		headText := f.revs[0].text
		if headText == text {
			if lockReleased {
				if err := a.store(f); err != nil {
					return "", false, err
				}
			}
			return f.revs[0].Num, false, nil
		}
		// Count the deltas between the old head and the next full-text
		// revision below it. If converting the old head to a delta would
		// stretch that chain past the checkpoint spacing, keep its full
		// text as a forward checkpoint instead; otherwise replace it with
		// a reverse delta that rebuilds it from the new text.
		deltas := 0
		for i := 1; i < len(f.revs) && !f.revs[i].checkpoint; i++ {
			deltas++
		}
		if k := a.checkpointEvery(); deltas >= k-1 {
			f.revs[0].checkpoint = true
		} else {
			oldLines := textdiff.Lines(headText)
			newLines := textdiff.Lines(text)
			f.revs[0].text = textdiff.EdScript(newLines, oldLines)
		}
	}

	num := "1.1"
	if len(f.revs) > 0 {
		num = nextRev(f.revs[0].Num)
	}
	head := revEntry{
		Revision: Revision{Num: num, Date: now, Author: author, Log: log},
		noEOL:    text != "" && !textdiff.HasTrailingNewline(text),
		text:     text,
	}
	f.revs = append([]revEntry{head}, f.revs...)
	if err := a.store(f); err != nil {
		return "", false, err
	}
	return num, true, nil
}

// Head returns the newest revision number.
func (a *Archive) Head() (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return "", err
	}
	return f.revs[0].Num, nil
}

// Checkout returns the text of the given revision. An empty rev selects
// the head.
func (a *Archive) Checkout(rev string) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return "", err
	}
	return f.checkout(rev)
}

// CheckoutAtDate returns the newest revision checked in at or before t,
// mirroring `co -d`. It returns the text and the revision number.
func (a *Archive) CheckoutAtDate(t time.Time) (text, rev string, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return "", "", err
	}
	for _, r := range f.revs { // head-first: first hit is the newest
		if !r.Date.After(t) {
			text, err := f.checkout(r.Num)
			return text, r.Num, err
		}
	}
	return "", "", fmt.Errorf("%w: none at or before %s", ErrNoRevision, t.UTC().Format(dateFormat))
}

// RevTime pairs a revision number with its check-in instant — the
// lightweight row of the revision index that datetime negotiation
// (Memento TimeGates) queries, deliberately without author/log strings
// or any revision text.
type RevTime struct {
	// Num is the trunk revision number, e.g. "1.3".
	Num string
	// Date is the check-in time (UTC).
	Date time.Time
}

// Dates returns every revision's number and check-in time, newest
// first, without checking out any text. It reads through the
// parsed-archive cache on the non-cloning path — the clone load()
// makes for mutating callers would cost a revs-slice copy per index
// query, and a TimeGate negotiation needs only these two columns.
func (a *Archive) Dates() ([]RevTime, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.loadReadOnly()
	if err != nil {
		return nil, err
	}
	out := make([]RevTime, len(f.revs))
	for i, r := range f.revs {
		out[i] = RevTime{Num: r.Num, Date: r.Date}
	}
	return out, nil
}

// Log returns all revisions, newest first, like rlog.
func (a *Archive) Log() ([]Revision, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return nil, err
	}
	out := make([]Revision, len(f.revs))
	for i, r := range f.revs {
		out[i] = r.Revision
	}
	return out, nil
}

// Lock takes an RCS-style soft lock on the head revision for user, the
// way `co -l` reserves the right to make the next check-in. It fails
// with ErrLocked while another user holds a lock. Re-locking by the same
// user refreshes the lock to the current head.
func (a *Archive) Lock(user string) (rev string, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return "", err
	}
	u := quoteWord(user)
	for holder := range f.locks {
		if holder != u {
			return "", fmt.Errorf("%w by %s", ErrLocked, holder)
		}
	}
	if f.locks == nil {
		f.locks = map[string]string{}
	}
	head := f.revs[0].Num
	f.locks[u] = head
	if err := a.store(f); err != nil {
		return "", err
	}
	return head, nil
}

// Unlock releases user's lock (`rcs -u`). Releasing a lock one does not
// hold is an error.
func (a *Archive) Unlock(user string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return err
	}
	u := quoteWord(user)
	if _, held := f.locks[u]; !held {
		return fmt.Errorf("rcs: %s holds no lock", user)
	}
	delete(f.locks, u)
	return a.store(f)
}

// LockedBy reports the current lock holder, if any.
func (a *Archive) LockedBy() (user, rev string, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return "", "", false
	}
	for u, r := range f.locks {
		return u, r, true
	}
	return "", "", false
}

// Prune drops the oldest revisions so that at most keep remain — the
// §4.2 resource-utilization lever ("The facility could also impose a
// limit"). Reverse deltas chain newest-to-oldest, so truncating the tail
// leaves every kept revision reconstructible. It returns the number of
// revisions dropped.
func (a *Archive) Prune(keep int) (dropped int, err error) {
	if keep < 1 {
		return 0, fmt.Errorf("rcs: must keep at least one revision")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return 0, err
	}
	if len(f.revs) <= keep {
		return 0, nil
	}
	dropped = len(f.revs) - keep
	f.revs = f.revs[:keep]
	if err := a.store(f); err != nil {
		return 0, err
	}
	return dropped, nil
}

// DiffRevs returns a unified diff between two revisions, like rcsdiff.
func (a *Archive) DiffRevs(oldRev, newRev string) (string, error) {
	oldText, err := a.Checkout(oldRev)
	if err != nil {
		return "", err
	}
	newText, err := a.Checkout(newRev)
	if err != nil {
		return "", err
	}
	name := filepath.Base(a.path)
	return textdiff.Unified(
		fmt.Sprintf("%s %s", name, oldRev),
		fmt.Sprintf("%s %s", name, newRev),
		textdiff.Lines(oldText), textdiff.Lines(newText), 3), nil
}

// nextRev increments the minor component of a trunk revision number.
func nextRev(num string) string {
	i := strings.LastIndexByte(num, '.')
	minor, err := strconv.Atoi(num[i+1:])
	if err != nil {
		// Corrupt numbers cannot occur through this package's API; fall
		// back to restarting the minor sequence rather than panicking.
		return num + ".1"
	}
	return num[:i+1] + strconv.Itoa(minor+1)
}

// compareRev orders trunk revision numbers ("1.10" > "1.9").
func compareRev(x, y string) int {
	px := strings.Split(x, ".")
	py := strings.Split(y, ".")
	for i := 0; i < len(px) && i < len(py); i++ {
		a, _ := strconv.Atoi(px[i])
		b, _ := strconv.Atoi(py[i])
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return len(px) - len(py)
}

// archiveFile is the parsed archive.
type archiveFile struct {
	revs []revEntry // newest first
	// locks maps a user to the revision they hold locked (RCS-style
	// soft locks; at most one per user).
	locks map[string]string
}

// checkout rebuilds the text of rev by applying reverse deltas down the
// trunk, starting from the nearest full-text revision (the head or a
// forward checkpoint) at or above rev. Checkpoint spacing bounds the
// number of ed scripts applied regardless of archive depth.
func (f *archiveFile) checkout(rev string) (string, error) {
	if len(f.revs) == 0 {
		return "", ErrNoArchive
	}
	if rev == "" {
		rev = f.revs[0].Num
	}
	idx := -1
	for i, r := range f.revs {
		if r.Num == rev {
			idx = i
			break
		}
	}
	if idx < 0 {
		return "", fmt.Errorf("%w: %s", ErrNoRevision, rev)
	}
	start := 0
	for i := idx; i >= 1; i-- {
		if f.revs[i].checkpoint {
			start = i
			break
		}
	}
	if start > 0 {
		obs.Default.Counter("rcs.checkpoint_hits").Inc()
	}
	lines := textdiff.Lines(f.revs[start].text)
	for i := start + 1; i <= idx; i++ {
		var err error
		lines, err = textdiff.ApplyEd(lines, f.revs[i].text)
		if err != nil {
			return "", fmt.Errorf("%w: delta for %s: %v", ErrCorrupt, f.revs[i].Num, err)
		}
	}
	text := textdiff.Join(lines)
	if f.revs[idx].noEOL {
		text = strings.TrimSuffix(text, "\n")
	}
	return text, nil
}

// checkpointEvery returns the effective checkpoint spacing.
func (a *Archive) checkpointEvery() int {
	if a.CheckpointEvery >= 1 {
		return a.CheckpointEvery
	}
	return defaultCheckpointEvery
}

// clone returns a deep-enough copy of f that callers may mutate without
// affecting f: the revs slice and locks map are copied; the strings they
// hold are immutable.
func (f *archiveFile) clone() *archiveFile {
	c := &archiveFile{revs: append([]revEntry(nil), f.revs...)}
	if f.locks != nil {
		c.locks = make(map[string]string, len(f.locks))
		for u, r := range f.locks {
			c.locks[u] = r
		}
	}
	return c
}

// --- parsed-archive cache -------------------------------------------------

// archCache is a package-level LRU of parsed archives keyed by path,
// validated against the file's size and mtime on every use. Snapshot
// facilities open a fresh Archive handle per operation, so the cache must
// outlive individual handles to be useful. Entries are canonical and
// never mutated; load returns clones.
var archCache = struct {
	sync.Mutex
	m    map[string]*archCacheEntry
	tick int64 // LRU clock
}{m: make(map[string]*archCacheEntry)}

// archCacheLimit bounds the number of cached parsed archives.
const archCacheLimit = 64

type archCacheEntry struct {
	f     *archiveFile
	size  int64
	mtime time.Time
	used  int64
}

// cacheGet returns the canonical parsed archive for path if the cached
// entry still matches the file's size and mtime.
func cacheGet(path string, fi os.FileInfo) *archiveFile {
	archCache.Lock()
	defer archCache.Unlock()
	e, ok := archCache.m[path]
	if !ok || e.size != fi.Size() || !e.mtime.Equal(fi.ModTime()) {
		return nil
	}
	archCache.tick++
	e.used = archCache.tick
	return e.f
}

// cachePut stores the canonical parsed archive for path, evicting the
// least recently used entry when the cache is full.
func cachePut(path string, f *archiveFile, fi os.FileInfo) {
	archCache.Lock()
	defer archCache.Unlock()
	archCache.tick++
	archCache.m[path] = &archCacheEntry{f: f, size: fi.Size(), mtime: fi.ModTime(), used: archCache.tick}
	if len(archCache.m) <= archCacheLimit {
		return
	}
	var oldest string
	var oldestUsed int64
	for p, e := range archCache.m {
		if oldest == "" || e.used < oldestUsed {
			oldest, oldestUsed = p, e.used
		}
	}
	delete(archCache.m, oldest)
}

// load parses the archive file, consulting the parsed-archive cache. The
// returned value is a private clone the caller may mutate.
func (a *Archive) load() (*archiveFile, error) {
	f, cached, err := a.loadShared()
	if err != nil {
		return nil, err
	}
	if cached {
		return f.clone(), nil
	}
	return f, nil
}

// loadReadOnly returns the parsed archive without cloning. The result
// may be the canonical cached value: callers must treat it as
// immutable. This is the index-query fast path — a revision-datetime
// listing per TimeGate negotiation must not copy the whole revs slice.
func (a *Archive) loadReadOnly() (*archiveFile, error) {
	f, _, err := a.loadShared()
	return f, err
}

// loadShared stats, consults the cache, and parses on a miss. cached
// reports whether the returned value is the canonical cache entry
// (shared, immutable) rather than a fresh private parse.
func (a *Archive) loadShared() (f *archiveFile, cached bool, err error) {
	fi, err := os.Stat(a.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, ErrNoArchive
		}
		return nil, false, err
	}
	if f := cacheGet(a.path, fi); f != nil {
		obs.Default.Counter("rcs.cache.hits").Inc()
		return f, true, nil
	}
	obs.Default.Counter("rcs.cache.misses").Inc()
	data, err := os.ReadFile(a.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, ErrNoArchive
		}
		return nil, false, err
	}
	f, err = parseArchive(string(data))
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// Cache only if the file is unchanged since the pre-read stat, so a
	// concurrent replace between stat and read cannot pin stale data to
	// the new size/mtime.
	if fi2, err2 := os.Stat(a.path); err2 == nil && fi2.Size() == fi.Size() && fi2.ModTime().Equal(fi.ModTime()) {
		cachePut(a.path, f.clone(), fi)
	}
	return f, false, nil
}

// store atomically rewrites the archive file and refreshes the cache.
func (a *Archive) store(f *archiveFile) error {
	if err := os.MkdirAll(filepath.Dir(a.path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(a.path), ".rcs-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	bw := bufio.NewWriterSize(tmp, 1<<16)
	writeArchive(bw, f)
	werr := bw.Flush()
	if werr == nil {
		// Make the archive durable before the rename flips the name to
		// it: a crash just after the rename must not leave the archive
		// pointing at unwritten data.
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName)
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmpName, a.path); err != nil {
		return err
	}
	if fi, err := os.Stat(a.path); err == nil {
		cachePut(a.path, f.clone(), fi)
	}
	return nil
}

// --- on-disk format -------------------------------------------------------

// serializeArchive renders the archive in the simplified `,v` dialect.
// Kept as the string-returning form for tests; store streams through
// writeArchive directly.
func serializeArchive(f *archiveFile) string {
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	writeArchive(bw, f)
	bw.Flush()
	return sb.String()
}

// writeArchive streams the archive in the simplified `,v` dialect. Errors
// are sticky in the bufio.Writer and surface at Flush, so the body can
// write unconditionally.
func writeArchive(bw *bufio.Writer, f *archiveFile) {
	head := ""
	if len(f.revs) > 0 {
		head = f.revs[0].Num
	}
	fmt.Fprintf(bw, "head\t%s;\n", head)
	bw.WriteString("access;\nsymbols;\nlocks")
	users := make([]string, 0, len(f.locks))
	for u := range f.locks {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		fmt.Fprintf(bw, "\n\t%s:%s", quoteWord(u), f.locks[u])
	}
	bw.WriteString("; strict;\n")
	bw.WriteString("comment\t@# @;\n\n")
	for i, r := range f.revs {
		next := ""
		if i+1 < len(f.revs) {
			next = f.revs[i+1].Num
		}
		fmt.Fprintf(bw, "%s\n", r.Num)
		fmt.Fprintf(bw, "date\t%s;\tauthor %s;\tstate Exp;", r.Date.UTC().Format(dateFormat), quoteWord(r.Author))
		if r.noEOL {
			bw.WriteString("\tnoeol;")
		}
		if r.checkpoint {
			bw.WriteString("\tcheckpoint;")
		}
		bw.WriteString("\n")
		fmt.Fprintf(bw, "next\t%s;\n\n", next)
	}
	bw.WriteString("\ndesc\n@@\n\n")
	for _, r := range f.revs {
		fmt.Fprintf(bw, "\n%s\nlog\n@", r.Num)
		writeEscapedAt(bw, r.Log)
		bw.WriteString("@\ntext\n@")
		writeEscapedAt(bw, r.text)
		bw.WriteString("@\n")
	}
}

// writeEscapedAt writes s with every '@' doubled, without building an
// intermediate escaped copy of (potentially large) revision texts.
func writeEscapedAt(bw *bufio.Writer, s string) {
	for {
		i := strings.IndexByte(s, '@')
		if i < 0 {
			bw.WriteString(s)
			return
		}
		bw.WriteString(s[:i+1])
		bw.WriteByte('@')
		s = s[i+1:]
	}
}

// quoteWord makes an author safe to embed unquoted (RCS authors are simple
// words; ours are email-ish identifiers).
func quoteWord(s string) string {
	if s == "" {
		return "unknown"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.', r == '-', r == '_', r == '@', r == '+':
			return r
		}
		return '_'
	}, s)
}

// parseArchive parses the simplified `,v` dialect. It is deliberately
// strict: a malformed archive is an error, never silently partial data.
func parseArchive(src string) (*archiveFile, error) {
	p := &parser{src: src}
	f := &archiveFile{}

	// Admin section.
	if _, err := p.expectKeyword("head"); err != nil {
		return nil, err
	}
	headNum := p.wordUntilSemi()
	meta := map[string]revEntry{}
	var order []string

	for {
		p.skipSpace()
		word := p.peekWord()
		switch word {
		case "locks":
			p.takeWord()
			for {
				p.skipSpace()
				if p.pos < len(p.src) && p.src[p.pos] == ';' {
					p.pos++
					break
				}
				entry := p.takeWord()
				if entry == "" {
					return nil, errors.New("rcs: unterminated locks list")
				}
				user, rev, ok := strings.Cut(entry, ":")
				if !ok || !isRevNum(rev) {
					return nil, fmt.Errorf("rcs: malformed lock entry %q", entry)
				}
				if f.locks == nil {
					f.locks = map[string]string{}
				}
				f.locks[user] = rev
			}
			continue
		case "access", "symbols", "comment", "strict":
			p.skipStatement()
			continue
		case "desc":
			p.takeWord()
			if _, err := p.atString(); err != nil {
				return nil, fmt.Errorf("rcs: bad desc: %v", err)
			}
		case "":
			return nil, errors.New("rcs: unexpected end of archive header")
		default:
			if !isRevNum(word) {
				return nil, fmt.Errorf("rcs: unexpected token %q in header", word)
			}
			// Revision metadata block.
			num := p.takeWord()
			e := revEntry{Revision: Revision{Num: num}}
			if _, err := p.expectKeyword("date"); err != nil {
				return nil, err
			}
			dateStr := p.wordUntilSemi()
			d, err := time.Parse(dateFormat, dateStr)
			if err != nil {
				return nil, fmt.Errorf("rcs: bad date %q: %v", dateStr, err)
			}
			e.Date = d
			for {
				p.skipSpace()
				kw := p.peekWord()
				if kw == "author" {
					p.takeWord()
					e.Author = p.wordUntilSemi()
				} else if kw == "state" || kw == "branches" {
					p.skipStatement()
				} else if kw == "noeol" {
					p.takeWord()
					p.wordUntilSemi()
					e.noEOL = true
				} else if kw == "checkpoint" {
					p.takeWord()
					p.wordUntilSemi()
					e.checkpoint = true
				} else if kw == "next" {
					p.takeWord()
					p.wordUntilSemi() // chain is implied by order; value unused
					break
				} else {
					return nil, fmt.Errorf("rcs: unexpected token %q in revision %s", kw, num)
				}
			}
			meta[num] = e
			order = append(order, num)
			continue
		}
		break
	}

	// Text sections: "<num> log @...@ text @...@".
	for {
		p.skipSpace()
		word := p.peekWord()
		if word == "" {
			break
		}
		if !isRevNum(word) {
			return nil, fmt.Errorf("rcs: unexpected token %q in body", word)
		}
		num := p.takeWord()
		e, ok := meta[num]
		if !ok {
			return nil, fmt.Errorf("rcs: body for unknown revision %s", num)
		}
		if _, err := p.expectKeyword("log"); err != nil {
			return nil, err
		}
		logStr, err := p.atString()
		if err != nil {
			return nil, fmt.Errorf("rcs: bad log for %s: %v", num, err)
		}
		e.Log = logStr
		if _, err := p.expectKeyword("text"); err != nil {
			return nil, err
		}
		text, err := p.atString()
		if err != nil {
			return nil, fmt.Errorf("rcs: bad text for %s: %v", num, err)
		}
		e.text = text
		meta[num] = e
	}

	for _, num := range order {
		f.revs = append(f.revs, meta[num])
	}
	if len(f.revs) == 0 {
		return nil, errors.New("rcs: archive has no revisions")
	}
	if f.revs[0].Num != headNum {
		return nil, fmt.Errorf("rcs: head %s is not first revision %s", headNum, f.revs[0].Num)
	}
	// Revisions must be strictly descending on the trunk.
	if !sort.SliceIsSorted(f.revs, func(i, j int) bool {
		return compareRev(f.revs[i].Num, f.revs[j].Num) > 0
	}) {
		return nil, errors.New("rcs: revisions out of order")
	}
	return f, nil
}

// parser is a minimal cursor over the archive source.
type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// peekWord returns the next whitespace/semicolon-delimited word without
// consuming it.
func (p *parser) peekWord() string {
	p.skipSpace()
	i := p.pos
	for i < len(p.src) && !isDelim(p.src[i]) {
		i++
	}
	return p.src[p.pos:i]
}

func (p *parser) takeWord() string {
	w := p.peekWord()
	p.pos += len(w)
	return w
}

// wordUntilSemi reads a word and consumes the trailing semicolon.
func (p *parser) wordUntilSemi() string {
	w := p.takeWord()
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ';' {
		p.pos++
	}
	return w
}

// skipStatement consumes everything through the next semicolon.
func (p *parser) skipStatement() {
	for p.pos < len(p.src) && p.src[p.pos] != ';' {
		p.pos++
	}
	if p.pos < len(p.src) {
		p.pos++
	}
}

func (p *parser) expectKeyword(kw string) (string, error) {
	got := p.takeWord()
	if got != kw {
		return "", fmt.Errorf("rcs: expected %q, found %q", kw, got)
	}
	return got, nil
}

// atString parses an @-quoted string with @@ unescaping.
func (p *parser) atString() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '@' {
		return "", errors.New("missing opening @")
	}
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c != '@' {
			sb.WriteByte(c)
			p.pos++
			continue
		}
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '@' {
			sb.WriteByte('@')
			p.pos += 2
			continue
		}
		p.pos++
		return sb.String(), nil
	}
	return "", errors.New("unterminated @-string")
}

func isDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', ';':
		return true
	}
	return false
}

func isRevNum(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
		case s[i] == '.':
			dot = true
		default:
			return false
		}
	}
	return dot
}
