// Package rcs implements a Revision Control System work-alike: an archive
// file per document holding the newest revision in full and every older
// revision as a reverse delta (an RCS-format ed script produced by
// internal/textdiff). This is the version repository behind the snapshot
// facility, mirroring the paper's use of RCS (Tichy, SPE 1985):
//
//   - a check-in of unchanged content is detected and skipped,
//   - storage cost beyond the first copy is proportional to the size of
//     the changes, and
//   - any revision can be retrieved by number or by date ("the state of
//     the page as user U last saw it").
//
// The on-disk format is a simplified trunk-only `,v` dialect: @-quoted
// strings with `@` doubled, head-first revision order, and a `noeol` flag
// so that texts without a final newline round-trip exactly.
package rcs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aide/internal/simclock"
	"aide/internal/textdiff"
)

// ErrNoRevision is returned when a requested revision does not exist.
var ErrNoRevision = errors.New("rcs: no such revision")

// ErrNoArchive is returned when operating on an archive that has never
// had a check-in.
var ErrNoArchive = errors.New("rcs: archive does not exist")

// dateFormat is the RCS datestamp layout (UTC).
const dateFormat = "2006.01.02.15.04.05"

// Revision describes one stored revision of a document.
type Revision struct {
	// Num is the trunk revision number, e.g. "1.3".
	Num string
	// Date is the check-in time (UTC).
	Date time.Time
	// Author is the identity supplied at check-in.
	Author string
	// Log is the check-in log message.
	Log string
}

// revEntry is the in-memory form of one archive revision.
type revEntry struct {
	Revision
	noEOL bool
	// text is the full document for the head revision and a reverse
	// ed script (new -> old) for every other revision.
	text string
}

// ErrLocked is returned when an operation conflicts with another user's
// revision lock.
var ErrLocked = errors.New("rcs: revision is locked")

// Archive is a single versioned document. An Archive value serialises its
// own operations; cross-process exclusion is the caller's responsibility
// (the snapshot facility holds per-URL locks around archive operations).
type Archive struct {
	path  string
	clock simclock.Clock

	mu sync.Mutex
}

// Open returns a handle on the archive file at path. The file need not
// exist yet; it is created by the first Checkin. If clock is nil the wall
// clock is used.
func Open(path string, clock simclock.Clock) *Archive {
	if clock == nil {
		clock = simclock.Wall{}
	}
	return &Archive{path: path, clock: clock}
}

// Path returns the archive file path.
func (a *Archive) Path() string { return a.path }

// Exists reports whether the archive has at least one revision on disk.
func (a *Archive) Exists() bool {
	_, err := os.Stat(a.path)
	return err == nil
}

// Size returns the archive file size in bytes, or 0 if it does not exist.
func (a *Archive) Size() int64 {
	fi, err := os.Stat(a.path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Checkin stores text as a new head revision and returns its revision
// number. If text is byte-for-byte identical to the current head, nothing
// is written and Checkin returns the existing head number with
// changed=false — the paper relies on this to make "Remember" idempotent.
func (a *Archive) Checkin(text, author, log string) (rev string, changed bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clock.Now().UTC()

	f, err := a.load()
	switch {
	case errors.Is(err, ErrNoArchive):
		f = &archiveFile{}
	case err != nil:
		return "", false, err
	}

	// RCS lock discipline: another user's lock blocks the check-in; the
	// author's own lock is consumed by it (as `ci` does).
	lockReleased := false
	for user := range f.locks {
		if user != quoteWord(author) && user != author {
			return "", false, fmt.Errorf("%w by %s", ErrLocked, user)
		}
		delete(f.locks, user)
		lockReleased = true
	}

	if len(f.revs) > 0 {
		headText := f.revs[0].text
		if headText == text {
			if lockReleased {
				if err := a.store(f); err != nil {
					return "", false, err
				}
			}
			return f.revs[0].Num, false, nil
		}
		// Replace the old head's full text with a reverse delta that
		// rebuilds it from the new text.
		oldLines := textdiff.Lines(headText)
		newLines := textdiff.Lines(text)
		f.revs[0].text = textdiff.EdScript(newLines, oldLines)
	}

	num := "1.1"
	if len(f.revs) > 0 {
		num = nextRev(f.revs[0].Num)
	}
	head := revEntry{
		Revision: Revision{Num: num, Date: now, Author: author, Log: log},
		noEOL:    text != "" && !textdiff.HasTrailingNewline(text),
		text:     text,
	}
	f.revs = append([]revEntry{head}, f.revs...)
	if err := a.store(f); err != nil {
		return "", false, err
	}
	return num, true, nil
}

// Head returns the newest revision number.
func (a *Archive) Head() (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return "", err
	}
	return f.revs[0].Num, nil
}

// Checkout returns the text of the given revision. An empty rev selects
// the head.
func (a *Archive) Checkout(rev string) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return "", err
	}
	return f.checkout(rev)
}

// CheckoutAtDate returns the newest revision checked in at or before t,
// mirroring `co -d`. It returns the text and the revision number.
func (a *Archive) CheckoutAtDate(t time.Time) (text, rev string, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return "", "", err
	}
	for _, r := range f.revs { // head-first: first hit is the newest
		if !r.Date.After(t) {
			text, err := f.checkout(r.Num)
			return text, r.Num, err
		}
	}
	return "", "", fmt.Errorf("%w: none at or before %s", ErrNoRevision, t.UTC().Format(dateFormat))
}

// Log returns all revisions, newest first, like rlog.
func (a *Archive) Log() ([]Revision, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return nil, err
	}
	out := make([]Revision, len(f.revs))
	for i, r := range f.revs {
		out[i] = r.Revision
	}
	return out, nil
}

// Lock takes an RCS-style soft lock on the head revision for user, the
// way `co -l` reserves the right to make the next check-in. It fails
// with ErrLocked while another user holds a lock. Re-locking by the same
// user refreshes the lock to the current head.
func (a *Archive) Lock(user string) (rev string, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return "", err
	}
	u := quoteWord(user)
	for holder := range f.locks {
		if holder != u {
			return "", fmt.Errorf("%w by %s", ErrLocked, holder)
		}
	}
	if f.locks == nil {
		f.locks = map[string]string{}
	}
	head := f.revs[0].Num
	f.locks[u] = head
	if err := a.store(f); err != nil {
		return "", err
	}
	return head, nil
}

// Unlock releases user's lock (`rcs -u`). Releasing a lock one does not
// hold is an error.
func (a *Archive) Unlock(user string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return err
	}
	u := quoteWord(user)
	if _, held := f.locks[u]; !held {
		return fmt.Errorf("rcs: %s holds no lock", user)
	}
	delete(f.locks, u)
	return a.store(f)
}

// LockedBy reports the current lock holder, if any.
func (a *Archive) LockedBy() (user, rev string, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return "", "", false
	}
	for u, r := range f.locks {
		return u, r, true
	}
	return "", "", false
}

// Prune drops the oldest revisions so that at most keep remain — the
// §4.2 resource-utilization lever ("The facility could also impose a
// limit"). Reverse deltas chain newest-to-oldest, so truncating the tail
// leaves every kept revision reconstructible. It returns the number of
// revisions dropped.
func (a *Archive) Prune(keep int) (dropped int, err error) {
	if keep < 1 {
		return 0, fmt.Errorf("rcs: must keep at least one revision")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := a.load()
	if err != nil {
		return 0, err
	}
	if len(f.revs) <= keep {
		return 0, nil
	}
	dropped = len(f.revs) - keep
	f.revs = f.revs[:keep]
	if err := a.store(f); err != nil {
		return 0, err
	}
	return dropped, nil
}

// DiffRevs returns a unified diff between two revisions, like rcsdiff.
func (a *Archive) DiffRevs(oldRev, newRev string) (string, error) {
	oldText, err := a.Checkout(oldRev)
	if err != nil {
		return "", err
	}
	newText, err := a.Checkout(newRev)
	if err != nil {
		return "", err
	}
	name := filepath.Base(a.path)
	return textdiff.Unified(
		fmt.Sprintf("%s %s", name, oldRev),
		fmt.Sprintf("%s %s", name, newRev),
		textdiff.Lines(oldText), textdiff.Lines(newText), 3), nil
}

// nextRev increments the minor component of a trunk revision number.
func nextRev(num string) string {
	i := strings.LastIndexByte(num, '.')
	minor, err := strconv.Atoi(num[i+1:])
	if err != nil {
		// Corrupt numbers cannot occur through this package's API; fall
		// back to restarting the minor sequence rather than panicking.
		return num + ".1"
	}
	return num[:i+1] + strconv.Itoa(minor+1)
}

// compareRev orders trunk revision numbers ("1.10" > "1.9").
func compareRev(x, y string) int {
	px := strings.Split(x, ".")
	py := strings.Split(y, ".")
	for i := 0; i < len(px) && i < len(py); i++ {
		a, _ := strconv.Atoi(px[i])
		b, _ := strconv.Atoi(py[i])
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return len(px) - len(py)
}

// archiveFile is the parsed archive.
type archiveFile struct {
	revs []revEntry // newest first
	// locks maps a user to the revision they hold locked (RCS-style
	// soft locks; at most one per user).
	locks map[string]string
}

// checkout rebuilds the text of rev from the head by applying reverse
// deltas down the trunk.
func (f *archiveFile) checkout(rev string) (string, error) {
	if len(f.revs) == 0 {
		return "", ErrNoArchive
	}
	if rev == "" {
		rev = f.revs[0].Num
	}
	idx := -1
	for i, r := range f.revs {
		if r.Num == rev {
			idx = i
			break
		}
	}
	if idx < 0 {
		return "", fmt.Errorf("%w: %s", ErrNoRevision, rev)
	}
	lines := textdiff.Lines(f.revs[0].text)
	for i := 1; i <= idx; i++ {
		var err error
		lines, err = textdiff.ApplyEd(lines, f.revs[i].text)
		if err != nil {
			return "", fmt.Errorf("rcs: corrupt delta for %s: %v", f.revs[i].Num, err)
		}
	}
	text := textdiff.Join(lines)
	if f.revs[idx].noEOL {
		text = strings.TrimSuffix(text, "\n")
	}
	return text, nil
}

// load parses the archive file.
func (a *Archive) load() (*archiveFile, error) {
	data, err := os.ReadFile(a.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoArchive
		}
		return nil, err
	}
	return parseArchive(string(data))
}

// store atomically rewrites the archive file.
func (a *Archive) store(f *archiveFile) error {
	if err := os.MkdirAll(filepath.Dir(a.path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(a.path), ".rcs-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.WriteString(serializeArchive(f))
	if werr == nil {
		// Make the archive durable before the rename flips the name to
		// it: a crash just after the rename must not leave the archive
		// pointing at unwritten data.
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName)
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmpName, a.path)
}

// --- on-disk format -------------------------------------------------------

// serializeArchive renders the archive in the simplified `,v` dialect.
func serializeArchive(f *archiveFile) string {
	var sb strings.Builder
	head := ""
	if len(f.revs) > 0 {
		head = f.revs[0].Num
	}
	fmt.Fprintf(&sb, "head\t%s;\n", head)
	sb.WriteString("access;\nsymbols;\nlocks")
	users := make([]string, 0, len(f.locks))
	for u := range f.locks {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		fmt.Fprintf(&sb, "\n\t%s:%s", quoteWord(u), f.locks[u])
	}
	sb.WriteString("; strict;\n")
	sb.WriteString("comment\t@# @;\n\n")
	for i, r := range f.revs {
		next := ""
		if i+1 < len(f.revs) {
			next = f.revs[i+1].Num
		}
		fmt.Fprintf(&sb, "%s\n", r.Num)
		fmt.Fprintf(&sb, "date\t%s;\tauthor %s;\tstate Exp;", r.Date.UTC().Format(dateFormat), quoteWord(r.Author))
		if r.noEOL {
			sb.WriteString("\tnoeol;")
		}
		sb.WriteString("\n")
		fmt.Fprintf(&sb, "next\t%s;\n\n", next)
	}
	sb.WriteString("\ndesc\n@@\n\n")
	for _, r := range f.revs {
		fmt.Fprintf(&sb, "\n%s\nlog\n@%s@\ntext\n@%s@\n", r.Num, escapeAt(r.Log), escapeAt(r.text))
	}
	return sb.String()
}

func escapeAt(s string) string { return strings.ReplaceAll(s, "@", "@@") }

// quoteWord makes an author safe to embed unquoted (RCS authors are simple
// words; ours are email-ish identifiers).
func quoteWord(s string) string {
	if s == "" {
		return "unknown"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.', r == '-', r == '_', r == '@', r == '+':
			return r
		}
		return '_'
	}, s)
}

// parseArchive parses the simplified `,v` dialect. It is deliberately
// strict: a malformed archive is an error, never silently partial data.
func parseArchive(src string) (*archiveFile, error) {
	p := &parser{src: src}
	f := &archiveFile{}

	// Admin section.
	if _, err := p.expectKeyword("head"); err != nil {
		return nil, err
	}
	headNum := p.wordUntilSemi()
	meta := map[string]revEntry{}
	var order []string

	for {
		p.skipSpace()
		word := p.peekWord()
		switch word {
		case "locks":
			p.takeWord()
			for {
				p.skipSpace()
				if p.pos < len(p.src) && p.src[p.pos] == ';' {
					p.pos++
					break
				}
				entry := p.takeWord()
				if entry == "" {
					return nil, errors.New("rcs: unterminated locks list")
				}
				user, rev, ok := strings.Cut(entry, ":")
				if !ok || !isRevNum(rev) {
					return nil, fmt.Errorf("rcs: malformed lock entry %q", entry)
				}
				if f.locks == nil {
					f.locks = map[string]string{}
				}
				f.locks[user] = rev
			}
			continue
		case "access", "symbols", "comment", "strict":
			p.skipStatement()
			continue
		case "desc":
			p.takeWord()
			if _, err := p.atString(); err != nil {
				return nil, fmt.Errorf("rcs: bad desc: %v", err)
			}
		case "":
			return nil, errors.New("rcs: unexpected end of archive header")
		default:
			if !isRevNum(word) {
				return nil, fmt.Errorf("rcs: unexpected token %q in header", word)
			}
			// Revision metadata block.
			num := p.takeWord()
			e := revEntry{Revision: Revision{Num: num}}
			if _, err := p.expectKeyword("date"); err != nil {
				return nil, err
			}
			dateStr := p.wordUntilSemi()
			d, err := time.Parse(dateFormat, dateStr)
			if err != nil {
				return nil, fmt.Errorf("rcs: bad date %q: %v", dateStr, err)
			}
			e.Date = d
			for {
				p.skipSpace()
				kw := p.peekWord()
				if kw == "author" {
					p.takeWord()
					e.Author = p.wordUntilSemi()
				} else if kw == "state" || kw == "branches" {
					p.skipStatement()
				} else if kw == "noeol" {
					p.takeWord()
					p.wordUntilSemi()
					e.noEOL = true
				} else if kw == "next" {
					p.takeWord()
					p.wordUntilSemi() // chain is implied by order; value unused
					break
				} else {
					return nil, fmt.Errorf("rcs: unexpected token %q in revision %s", kw, num)
				}
			}
			meta[num] = e
			order = append(order, num)
			continue
		}
		break
	}

	// Text sections: "<num> log @...@ text @...@".
	for {
		p.skipSpace()
		word := p.peekWord()
		if word == "" {
			break
		}
		if !isRevNum(word) {
			return nil, fmt.Errorf("rcs: unexpected token %q in body", word)
		}
		num := p.takeWord()
		e, ok := meta[num]
		if !ok {
			return nil, fmt.Errorf("rcs: body for unknown revision %s", num)
		}
		if _, err := p.expectKeyword("log"); err != nil {
			return nil, err
		}
		logStr, err := p.atString()
		if err != nil {
			return nil, fmt.Errorf("rcs: bad log for %s: %v", num, err)
		}
		e.Log = logStr
		if _, err := p.expectKeyword("text"); err != nil {
			return nil, err
		}
		text, err := p.atString()
		if err != nil {
			return nil, fmt.Errorf("rcs: bad text for %s: %v", num, err)
		}
		e.text = text
		meta[num] = e
	}

	for _, num := range order {
		f.revs = append(f.revs, meta[num])
	}
	if len(f.revs) == 0 {
		return nil, errors.New("rcs: archive has no revisions")
	}
	if f.revs[0].Num != headNum {
		return nil, fmt.Errorf("rcs: head %s is not first revision %s", headNum, f.revs[0].Num)
	}
	// Revisions must be strictly descending on the trunk.
	if !sort.SliceIsSorted(f.revs, func(i, j int) bool {
		return compareRev(f.revs[i].Num, f.revs[j].Num) > 0
	}) {
		return nil, errors.New("rcs: revisions out of order")
	}
	return f, nil
}

// parser is a minimal cursor over the archive source.
type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// peekWord returns the next whitespace/semicolon-delimited word without
// consuming it.
func (p *parser) peekWord() string {
	p.skipSpace()
	i := p.pos
	for i < len(p.src) && !isDelim(p.src[i]) {
		i++
	}
	return p.src[p.pos:i]
}

func (p *parser) takeWord() string {
	w := p.peekWord()
	p.pos += len(w)
	return w
}

// wordUntilSemi reads a word and consumes the trailing semicolon.
func (p *parser) wordUntilSemi() string {
	w := p.takeWord()
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ';' {
		p.pos++
	}
	return w
}

// skipStatement consumes everything through the next semicolon.
func (p *parser) skipStatement() {
	for p.pos < len(p.src) && p.src[p.pos] != ';' {
		p.pos++
	}
	if p.pos < len(p.src) {
		p.pos++
	}
}

func (p *parser) expectKeyword(kw string) (string, error) {
	got := p.takeWord()
	if got != kw {
		return "", fmt.Errorf("rcs: expected %q, found %q", kw, got)
	}
	return got, nil
}

// atString parses an @-quoted string with @@ unescaping.
func (p *parser) atString() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '@' {
		return "", errors.New("missing opening @")
	}
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c != '@' {
			sb.WriteByte(c)
			p.pos++
			continue
		}
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '@' {
			sb.WriteByte('@')
			p.pos += 2
			continue
		}
		p.pos++
		return sb.String(), nil
	}
	return "", errors.New("unterminated @-string")
}

func isDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', ';':
		return true
	}
	return false
}

func isRevNum(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
		case s[i] == '.':
			dot = true
		default:
			return false
		}
	}
	return dot
}
