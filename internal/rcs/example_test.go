package rcs_test

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"aide/internal/rcs"
	"aide/internal/simclock"
)

// Example walks the archive lifecycle: check-ins (including a no-op),
// checkout by revision and by date, and the log.
func Example() {
	dir, err := os.MkdirTemp("", "rcs-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	clock := simclock.New(time.Time{})
	arch := rcs.Open(filepath.Join(dir, "page.html,v"), clock)

	rev, changed, _ := arch.Checkin("<P>version one</P>\n", "douglis", "initial")
	fmt.Printf("checked in %s (changed=%v)\n", rev, changed)

	// Checking in identical content is free.
	rev, changed, _ = arch.Checkin("<P>version one</P>\n", "tball", "dup")
	fmt.Printf("duplicate -> %s (changed=%v)\n", rev, changed)

	midpoint := clock.Now().Add(12 * time.Hour)
	clock.Advance(24 * time.Hour)
	rev, _, _ = arch.Checkin("<P>version two</P>\n", "douglis", "update")
	fmt.Printf("updated to %s\n", rev)

	text, _ := arch.Checkout("1.1")
	fmt.Printf("1.1 = %q\n", text)
	_, atRev, _ := arch.CheckoutAtDate(midpoint)
	fmt.Printf("as of midpoint = revision %s\n", atRev)
	log, _ := arch.Log()
	fmt.Printf("%d revisions on record\n", len(log))
	// Output:
	// checked in 1.1 (changed=true)
	// duplicate -> 1.1 (changed=false)
	// updated to 1.2
	// 1.1 = "<P>version one</P>\n"
	// as of midpoint = revision 1.1
	// 2 revisions on record
}
