package rcs

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aide/internal/simclock"
)

func newTestArchive(t *testing.T) (*Archive, *simclock.Sim) {
	t.Helper()
	clock := simclock.New(time.Time{})
	path := filepath.Join(t.TempDir(), "page.html,v")
	return Open(path, clock), clock
}

func TestCheckinCheckoutSingle(t *testing.T) {
	a, _ := newTestArchive(t)
	rev, changed, err := a.Checkin("<html>v1</html>\n", "douglis", "initial")
	if err != nil || !changed || rev != "1.1" {
		t.Fatalf("Checkin = (%q,%v,%v), want (1.1,true,nil)", rev, changed, err)
	}
	got, err := a.Checkout("1.1")
	if err != nil || got != "<html>v1</html>\n" {
		t.Fatalf("Checkout = (%q,%v)", got, err)
	}
	if head, _ := a.Head(); head != "1.1" {
		t.Errorf("Head = %q", head)
	}
}

func TestCheckinUnchangedSkipped(t *testing.T) {
	a, _ := newTestArchive(t)
	if _, _, err := a.Checkin("same\n", "u", "one"); err != nil {
		t.Fatal(err)
	}
	size1 := a.Size()
	rev, changed, err := a.Checkin("same\n", "u", "two")
	if err != nil {
		t.Fatal(err)
	}
	if changed || rev != "1.1" {
		t.Fatalf("duplicate checkin = (%q,%v), want (1.1,false)", rev, changed)
	}
	if a.Size() != size1 {
		t.Errorf("archive grew on unchanged checkin: %d -> %d", size1, a.Size())
	}
}

func TestMultiRevisionHistory(t *testing.T) {
	a, clock := newTestArchive(t)
	versions := []string{
		"line1\nline2\nline3\n",
		"line1\nline2 modified\nline3\n",
		"line1\nline2 modified\nline3\nline4 added\n",
		"totally\ndifferent\ncontent\n",
	}
	for i, v := range versions {
		clock.Advance(24 * time.Hour)
		rev, changed, err := a.Checkin(v, "ball", "rev")
		if err != nil || !changed {
			t.Fatalf("checkin %d: (%v,%v)", i, changed, err)
		}
		want := "1." + string(rune('1'+i))
		if rev != want {
			t.Fatalf("checkin %d rev = %q, want %q", i, rev, want)
		}
	}
	// Every old version must reconstruct exactly.
	for i, v := range versions {
		rev := "1." + string(rune('1'+i))
		got, err := a.Checkout(rev)
		if err != nil {
			t.Fatalf("checkout %s: %v", rev, err)
		}
		if got != v {
			t.Errorf("checkout %s:\n got %q\nwant %q", rev, got, v)
		}
	}
	log, err := a.Log()
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 4 || log[0].Num != "1.4" || log[3].Num != "1.1" {
		t.Fatalf("log = %+v", log)
	}
	for i := 1; i < len(log); i++ {
		if !log[i].Date.Before(log[i-1].Date) {
			t.Errorf("log dates not descending: %v then %v", log[i-1].Date, log[i].Date)
		}
	}
}

func TestCheckoutAtDate(t *testing.T) {
	a, clock := newTestArchive(t)
	t0 := clock.Now()
	if _, _, err := a.Checkin("v1\n", "u", ""); err != nil {
		t.Fatal(err)
	}
	clock.Advance(48 * time.Hour)
	if _, _, err := a.Checkin("v2\n", "u", ""); err != nil {
		t.Fatal(err)
	}

	text, rev, err := a.CheckoutAtDate(t0.Add(24 * time.Hour))
	if err != nil || rev != "1.1" || text != "v1\n" {
		t.Fatalf("at +24h: (%q,%q,%v)", text, rev, err)
	}
	text, rev, err = a.CheckoutAtDate(t0.Add(72 * time.Hour))
	if err != nil || rev != "1.2" || text != "v2\n" {
		t.Fatalf("at +72h: (%q,%q,%v)", text, rev, err)
	}
	if _, _, err := a.CheckoutAtDate(t0.Add(-time.Hour)); !errors.Is(err, ErrNoRevision) {
		t.Fatalf("before first rev: err = %v, want ErrNoRevision", err)
	}
}

func TestNoTrailingNewline(t *testing.T) {
	a, _ := newTestArchive(t)
	texts := []string{"no newline at end", "now with newline\n", "again none\nsecond"}
	for _, v := range texts {
		if _, _, err := a.Checkin(v, "u", ""); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range texts {
		rev := "1." + string(rune('1'+i))
		got, err := a.Checkout(rev)
		if err != nil || got != v {
			t.Errorf("checkout %s = (%q,%v), want %q", rev, got, err, v)
		}
	}
}

func TestAtSignQuoting(t *testing.T) {
	a, _ := newTestArchive(t)
	v1 := "mail me @ douglis@research.att.com\n@@literal@@\n"
	v2 := "mail me @ ball@research.att.com\n@@literal@@\n"
	if _, _, err := a.Checkin(v1, "u@h", "log with @ sign"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Checkin(v2, "u@h", ""); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Checkout("1.1"); got != v1 {
		t.Errorf("v1 round trip: %q", got)
	}
	if got, _ := a.Checkout("1.2"); got != v2 {
		t.Errorf("v2 round trip: %q", got)
	}
	log, err := a.Log()
	if err != nil {
		t.Fatal(err)
	}
	if log[1].Log != "log with @ sign" {
		t.Errorf("log message = %q", log[1].Log)
	}
}

func TestEmptyDocument(t *testing.T) {
	a, _ := newTestArchive(t)
	if _, _, err := a.Checkin("", "u", "empty"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Checkin("content\n", "u", ""); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Checkout("1.1"); err != nil || got != "" {
		t.Errorf("empty checkout = (%q,%v)", got, err)
	}
}

func TestMissingArchiveAndRevision(t *testing.T) {
	a, _ := newTestArchive(t)
	if _, err := a.Checkout("1.1"); !errors.Is(err, ErrNoArchive) {
		t.Errorf("checkout on missing archive: %v", err)
	}
	if _, err := a.Log(); !errors.Is(err, ErrNoArchive) {
		t.Errorf("log on missing archive: %v", err)
	}
	if _, _, err := a.Checkin("x\n", "u", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Checkout("9.9"); !errors.Is(err, ErrNoRevision) {
		t.Errorf("checkout missing rev: %v", err)
	}
}

func TestDiffRevs(t *testing.T) {
	a, _ := newTestArchive(t)
	if _, _, err := a.Checkin("alpha\nbeta\n", "u", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Checkin("alpha\ngamma\n", "u", ""); err != nil {
		t.Fatal(err)
	}
	d, err := a.DiffRevs("1.1", "1.2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d, "-beta") || !strings.Contains(d, "+gamma") {
		t.Errorf("diff missing changes:\n%s", d)
	}
}

func TestRevNumbersPastTen(t *testing.T) {
	a, _ := newTestArchive(t)
	for i := 0; i < 12; i++ {
		text := strings.Repeat("line\n", i+1)
		if _, _, err := a.Checkin(text, "u", ""); err != nil {
			t.Fatal(err)
		}
	}
	head, _ := a.Head()
	if head != "1.12" {
		t.Fatalf("head = %q, want 1.12", head)
	}
	// 1.9 vs 1.10 ordering must be numeric, not lexical.
	if got, _ := a.Checkout("1.10"); got != strings.Repeat("line\n", 10) {
		t.Errorf("1.10 content wrong (%d lines)", strings.Count(got, "\n"))
	}
}

func TestPropertyRandomHistoryReconstructs(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	a, clock := newTestArchive(t)
	words := []string{"alpha", "beta", "gamma", "<p>", "</p>", "delta", ""}
	var versions []string
	cur := []string{"start"}
	for i := 0; i < 25; i++ {
		// Random edit: insert, delete, or replace a random line.
		next := append([]string(nil), cur...)
		switch op := r.Intn(3); {
		case op == 0 || len(next) == 0:
			pos := 0
			if len(next) > 0 {
				pos = r.Intn(len(next) + 1)
			}
			next = append(next[:pos], append([]string{words[r.Intn(len(words))]}, next[pos:]...)...)
		case op == 1:
			pos := r.Intn(len(next))
			next = append(next[:pos], next[pos+1:]...)
		default:
			pos := r.Intn(len(next))
			next[pos] = words[r.Intn(len(words))] + "-edited"
		}
		cur = next
		text := strings.Join(cur, "\n") + "\n"
		clock.Advance(time.Hour)
		if _, _, err := a.Checkin(text, "u", ""); err != nil {
			t.Fatal(err)
		}
		if n := len(versions); n == 0 || versions[n-1] != text {
			versions = append(versions, text)
		}
	}
	log, err := a.Log()
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != len(versions) {
		t.Fatalf("revision count = %d, want %d", len(log), len(versions))
	}
	for i, v := range versions {
		rev := log[len(log)-1-i].Num
		got, err := a.Checkout(rev)
		if err != nil || got != v {
			t.Fatalf("rev %s mismatch: err=%v\n got %q\nwant %q", rev, err, got, v)
		}
	}
}

func TestStorageIsDeltaNotFullCopies(t *testing.T) {
	a, _ := newTestArchive(t)
	base := strings.Repeat("unchanging boilerplate line\n", 400)
	for i := 0; i < 10; i++ {
		text := base + "changing footer " + strings.Repeat("x", i) + "\n"
		if _, _, err := a.Checkin(text, "u", ""); err != nil {
			t.Fatal(err)
		}
	}
	fullCopies := int64(10 * len(base))
	if a.Size() >= fullCopies/2 {
		t.Errorf("archive size %d not delta-compressed (10 full copies would be %d)",
			a.Size(), fullCopies)
	}
}

func TestParseRejectsCorrupt(t *testing.T) {
	cases := []string{
		"",
		"garbage",
		"head 1.1;\n", // no revisions
		"head 1.2;\n1.1\ndate 1995.01.01.00.00.00; author u; next ;\n\ndesc\n@@\n\n1.1\nlog\n@@\ntext\n@x@\n", // head mismatch
		"head 1.1;\n1.1\ndate NOTADATE; author u; next ;\n\ndesc\n@@\n",
		"head 1.1;\n1.1\ndate 1995.01.01.00.00.00; author u; next ;\n\ndesc\n@@\n\n1.1\nlog\n@unterminated",
	}
	for i, c := range cases {
		if _, err := parseArchive(c); err == nil {
			t.Errorf("case %d: parse succeeded on corrupt input", i)
		}
	}
}

func TestConcurrentCheckins(t *testing.T) {
	a, _ := newTestArchive(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 5 && err == nil; i++ {
				_, _, err = a.Checkin(strings.Repeat("g", g+1)+"\n", "u", "")
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Archive must still be parseable and consistent.
	if _, err := a.Log(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenNilClockUsesWall(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x,v")
	a := Open(path, nil)
	before := time.Now().Add(-time.Minute)
	if _, _, err := a.Checkin("x\n", "u", ""); err != nil {
		t.Fatal(err)
	}
	log, _ := a.Log()
	if log[0].Date.Before(before) {
		t.Errorf("wall-clock date too old: %v", log[0].Date)
	}
}

func TestArchiveFileIsPlainText(t *testing.T) {
	a, _ := newTestArchive(t)
	if _, _, err := a.Checkin("<html>hello</html>\n", "douglis", "first"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(a.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"head\t1.1;", "author douglis;", "text\n@<html>hello</html>\n@"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("archive file missing %q:\n%s", want, data)
		}
	}
}

func BenchmarkCheckin(b *testing.B) {
	dir := b.TempDir()
	base := strings.Repeat("stable line of page content here\n", 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Open(filepath.Join(dir, "bench", "p"+string(rune('a'+i%26)), "x,v"), nil)
		if _, _, err := a.Checkin(base+"footer\n", "u", ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckoutDeep(b *testing.B) {
	a := Open(filepath.Join(b.TempDir(), "deep,v"), nil)
	base := strings.Repeat("stable line\n", 100)
	for i := 0; i < 50; i++ {
		if _, _, err := a.Checkin(base+"version "+strings.Repeat("i", i+1)+"\n", "u", ""); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Checkout("1.1"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPruneKeepsNewestRevisions(t *testing.T) {
	a, clock := newTestArchive(t)
	for i := 0; i < 10; i++ {
		clock.Advance(time.Hour)
		if _, _, err := a.Checkin(strings.Repeat("line\n", i+1), "u", ""); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := a.Size()
	dropped, err := a.Prune(3)
	if err != nil || dropped != 7 {
		t.Fatalf("Prune = (%d,%v), want (7,nil)", dropped, err)
	}
	if a.Size() >= sizeBefore {
		t.Errorf("prune did not shrink archive: %d -> %d", sizeBefore, a.Size())
	}
	log, err := a.Log()
	if err != nil || len(log) != 3 {
		t.Fatalf("log after prune = %d revs, err %v", len(log), err)
	}
	if log[0].Num != "1.10" || log[2].Num != "1.8" {
		t.Fatalf("wrong revisions kept: %+v", log)
	}
	// Every kept revision still reconstructs.
	for i, want := range []int{10, 9, 8} {
		got, err := a.Checkout(log[i].Num)
		if err != nil || got != strings.Repeat("line\n", want) {
			t.Errorf("checkout %s after prune: err=%v", log[i].Num, err)
		}
	}
	// Dropped revisions are gone.
	if _, err := a.Checkout("1.1"); !errors.Is(err, ErrNoRevision) {
		t.Errorf("pruned revision still accessible: %v", err)
	}
	// Numbering continues from the head.
	rev, _, err := a.Checkin("fresh content\n", "u", "")
	if err != nil || rev != "1.11" {
		t.Errorf("checkin after prune = (%q,%v)", rev, err)
	}
}

func TestPruneNoOpAndValidation(t *testing.T) {
	a, _ := newTestArchive(t)
	if _, err := a.Prune(1); !errors.Is(err, ErrNoArchive) {
		t.Errorf("prune on missing archive: %v", err)
	}
	a.Checkin("v1\n", "u", "")
	a.Checkin("v2\n", "u", "")
	if dropped, err := a.Prune(5); err != nil || dropped != 0 {
		t.Errorf("prune with slack = (%d,%v)", dropped, err)
	}
	if _, err := a.Prune(0); err == nil {
		t.Error("prune(0) accepted")
	}
}

func TestLockDiscipline(t *testing.T) {
	a, _ := newTestArchive(t)
	if _, err := a.Lock("douglis"); !errors.Is(err, ErrNoArchive) {
		t.Fatalf("lock on missing archive: %v", err)
	}
	a.Checkin("v1\n", "douglis", "")

	rev, err := a.Lock("douglis")
	if err != nil || rev != "1.1" {
		t.Fatalf("lock = (%q,%v)", rev, err)
	}
	if user, lrev, ok := a.LockedBy(); !ok || user != "douglis" || lrev != "1.1" {
		t.Fatalf("LockedBy = (%q,%q,%v)", user, lrev, ok)
	}
	// Another user can neither lock nor check in.
	if _, err := a.Lock("tball"); !errors.Is(err, ErrLocked) {
		t.Fatalf("second lock: %v", err)
	}
	if _, _, err := a.Checkin("v2 by tball\n", "tball", ""); !errors.Is(err, ErrLocked) {
		t.Fatalf("locked checkin by other: %v", err)
	}
	// The holder's check-in succeeds and consumes the lock.
	rev, changed, err := a.Checkin("v2 by douglis\n", "douglis", "")
	if err != nil || !changed || rev != "1.2" {
		t.Fatalf("holder checkin = (%q,%v,%v)", rev, changed, err)
	}
	if _, _, ok := a.LockedBy(); ok {
		t.Fatal("lock survived the check-in")
	}
	// Now anyone may proceed again.
	if _, _, err := a.Checkin("v3 by tball\n", "tball", ""); err != nil {
		t.Fatal(err)
	}
}

func TestLockPersistsOnDisk(t *testing.T) {
	a, _ := newTestArchive(t)
	a.Checkin("v1\n", "u", "")
	if _, err := a.Lock("douglis"); err != nil {
		t.Fatal(err)
	}
	// A second handle on the same file sees the lock.
	b := Open(a.Path(), nil)
	if user, _, ok := b.LockedBy(); !ok || user != "douglis" {
		t.Fatalf("lock not persisted: (%q,%v)", user, ok)
	}
	data, _ := os.ReadFile(a.Path())
	if !strings.Contains(string(data), "douglis:1.1") {
		t.Errorf("lock missing from archive file:\n%s", data)
	}
}

func TestUnlock(t *testing.T) {
	a, _ := newTestArchive(t)
	a.Checkin("v1\n", "u", "")
	a.Lock("douglis")
	if err := a.Unlock("tball"); err == nil {
		t.Fatal("unlock by non-holder succeeded")
	}
	if err := a.Unlock("douglis"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := a.LockedBy(); ok {
		t.Fatal("lock survived unlock")
	}
	if _, err := a.Lock("tball"); err != nil {
		t.Fatalf("lock after unlock: %v", err)
	}
}

func TestRelockRefreshesToHead(t *testing.T) {
	a, _ := newTestArchive(t)
	a.Checkin("v1\n", "douglis", "")
	a.Lock("douglis")
	a.Checkin("v2\n", "douglis", "") // consumes lock
	a.Lock("douglis")
	if _, rev, _ := a.LockedBy(); rev != "1.2" {
		t.Fatalf("relock rev = %q, want 1.2", rev)
	}
}

func TestPropertySerializeParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	alphabet := []string{"plain line", "line with @ sign", "@@", "", "  indented", "tab\tseparated"}
	for trial := 0; trial < 60; trial++ {
		f := &archiveFile{}
		n := 1 + r.Intn(6)
		for i := n; i >= 1; i-- { // newest first
			var body strings.Builder
			for l := 0; l < r.Intn(8); l++ {
				body.WriteString(alphabet[r.Intn(len(alphabet))] + "\n")
			}
			f.revs = append(f.revs, revEntry{
				Revision: Revision{
					Num:    fmt.Sprintf("1.%d", i),
					Date:   time.Date(1995, 9, 1+i, i, 0, 0, 0, time.UTC),
					Author: "user" + string(rune('a'+r.Intn(3))),
					Log:    alphabet[r.Intn(len(alphabet))],
				},
				noEOL: r.Intn(4) == 0,
				text:  body.String(),
			})
		}
		if r.Intn(2) == 0 {
			f.locks = map[string]string{"locker": f.revs[0].Num}
		}
		got, err := parseArchive(serializeArchive(f))
		if err != nil {
			t.Fatalf("trial %d: parse(serialize) failed: %v\n%s", trial, err, serializeArchive(f))
		}
		if len(got.revs) != len(f.revs) {
			t.Fatalf("trial %d: rev count %d != %d", trial, len(got.revs), len(f.revs))
		}
		for i := range f.revs {
			w, g := f.revs[i], got.revs[i]
			if g.Num != w.Num || !g.Date.Equal(w.Date) || g.Log != w.Log ||
				g.text != w.text || g.noEOL != w.noEOL {
				t.Fatalf("trial %d rev %d mismatch:\n got %+v\nwant %+v", trial, i, g, w)
			}
		}
		if len(f.locks) > 0 {
			if got.locks["locker"] != f.locks["locker"] {
				t.Fatalf("trial %d: locks lost: %v", trial, got.locks)
			}
		}
	}
}

// TestDatesIndex exercises the read-only revision index: numbers and
// datetimes newest-first, matching Log, with no text checked out and no
// clone of the cached parse mutated by a subsequent check-in.
func TestDatesIndex(t *testing.T) {
	a, clock := newTestArchive(t)
	clock.Set(time.Date(1996, 6, 1, 12, 0, 0, 0, time.UTC))
	for i := 0; i < 5; i++ {
		if _, _, err := a.Checkin(fmt.Sprintf("v%d\n", i), "u", "l"); err != nil {
			t.Fatal(err)
		}
		clock.Advance(24 * time.Hour)
	}

	idx, err := a.Dates()
	if err != nil {
		t.Fatal(err)
	}
	logRevs, err := a.Log()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != len(logRevs) {
		t.Fatalf("Dates len %d, Log len %d", len(idx), len(logRevs))
	}
	for i := range idx {
		if idx[i].Num != logRevs[i].Num || !idx[i].Date.Equal(logRevs[i].Date) {
			t.Errorf("row %d: Dates %v / Log %v", i, idx[i], logRevs[i])
		}
	}
	if idx[0].Num != "1.5" || idx[len(idx)-1].Num != "1.1" {
		t.Errorf("order wrong: head %s tail %s", idx[0].Num, idx[len(idx)-1].Num)
	}

	// The index must not alias mutable state: a check-in after Dates
	// must not disturb the slice already returned.
	before := append([]RevTime(nil), idx...)
	if _, _, err := a.Checkin("v5\n", "u", "l"); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != idx[i] {
			t.Fatalf("returned index mutated by later check-in at row %d", i)
		}
	}
	idx2, err := a.Dates()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx2) != 6 || idx2[0].Num != "1.6" {
		t.Errorf("post-checkin index: %v", idx2[:1])
	}
}

// TestDatesMissingArchive pins the error for never-archived documents.
func TestDatesMissingArchive(t *testing.T) {
	a, _ := newTestArchive(t)
	if _, err := a.Dates(); !errors.Is(err, ErrNoArchive) {
		t.Fatalf("Dates on missing archive: %v, want ErrNoArchive", err)
	}
}
