package rcs

import (
	"testing"
	"time"
)

// FuzzParseArchive throws arbitrary bytes at the archive parser: it must
// reject or accept without panicking, and anything it accepts must
// serialize and re-parse to the same revision list.
func FuzzParseArchive(f *testing.F) {
	valid := serializeArchive(&archiveFile{revs: []revEntry{{
		Revision: Revision{Num: "1.2", Date: mustDate("1995.11.03.12.00.00"), Author: "douglis", Log: "l"},
		text:     "head text\n",
	}, {
		Revision: Revision{Num: "1.1", Date: mustDate("1995.09.29.12.00.00"), Author: "tball"},
		text:     "d1 1\na1 1\nold line\n",
	}}})
	seeds := []string{
		"",
		valid,
		"head 1.1;",
		"head\t1.1;\naccess;\nlocks; strict;\ncomment @# @;\n\n1.1\ndate 1995.01.01.00.00.00;\tauthor u;\tstate Exp;\nnext\t;\n\n\ndesc\n@@\n\n\n1.1\nlog\n@@\ntext\n@x@\n",
		"garbage @ everywhere @@",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		af, err := parseArchive(src)
		if err != nil {
			return
		}
		round, err := parseArchive(serializeArchive(af))
		if err != nil {
			t.Fatalf("accepted archive did not round-trip: %v", err)
		}
		if len(round.revs) != len(af.revs) {
			t.Fatalf("round trip changed rev count: %d -> %d", len(af.revs), len(round.revs))
		}
	})
}

func mustDate(s string) time.Time {
	parsed, err := time.Parse(dateFormat, s)
	if err != nil {
		panic(err)
	}
	return parsed
}
