package rcs

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"aide/internal/obs"
	"aide/internal/simclock"
)

// pageText fabricates a revision body that changes a little each step,
// like a real page across polls.
func pageText(i int) string {
	var sb strings.Builder
	for l := 0; l < 40; l++ {
		if l == i%40 {
			fmt.Fprintf(&sb, "line %d changed at revision %d\n", l, i)
			continue
		}
		fmt.Fprintf(&sb, "stable line %d of the page\n", l)
	}
	return sb.String()
}

// TestCheckpointSpacing checks the structural invariant: at most
// CheckpointEvery-1 deltas separate consecutive full-text revisions.
func TestCheckpointSpacing(t *testing.T) {
	a, clock := newTestArchive(t)
	a.CheckpointEvery = 3
	for i := 0; i < 12; i++ {
		clock.Advance(time.Hour)
		if _, _, err := a.Checkin(pageText(i), "u", "rev"); err != nil {
			t.Fatal(err)
		}
	}
	f, err := a.load()
	if err != nil {
		t.Fatal(err)
	}
	checkpoints := 0
	run := 0 // deltas since the last full-text revision
	for i, r := range f.revs {
		full := i == 0 || r.checkpoint
		if full {
			if r.checkpoint {
				checkpoints++
			}
			run = 0
			continue
		}
		run++
		if run > a.CheckpointEvery-1 {
			t.Fatalf("revision %s: %d consecutive deltas, spacing %d violated",
				r.Num, run, a.CheckpointEvery)
		}
	}
	if checkpoints == 0 {
		t.Fatal("12 revisions at spacing 3 produced no checkpoints")
	}
	// Every revision must still reconstruct exactly.
	for i := 0; i < 12; i++ {
		rev := fmt.Sprintf("1.%d", i+1)
		got, err := a.Checkout(rev)
		if err != nil {
			t.Fatalf("Checkout(%s): %v", rev, err)
		}
		if got != pageText(i) {
			t.Errorf("Checkout(%s) differs from checked-in text", rev)
		}
	}
}

// TestCheckpointedMatchesPlainCheckout runs the same history through a
// densely checkpointed archive and an effectively checkpoint-free one and
// requires identical checkouts for every revision.
func TestCheckpointedMatchesPlainCheckout(t *testing.T) {
	clock := simclock.New(time.Time{})
	dir := t.TempDir()
	cp := Open(dir+"/cp,v", clock)
	cp.CheckpointEvery = 2
	plain := Open(dir+"/plain,v", clock)
	plain.CheckpointEvery = 1 << 30
	const n = 15
	for i := 0; i < n; i++ {
		clock.Advance(time.Hour)
		text := pageText(i)
		if i%4 == 3 {
			text = strings.TrimSuffix(text, "\n") // exercise noeol interplay
		}
		if _, _, err := cp.Checkin(text, "u", "rev"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := plain.Checkin(text, "u", "rev"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= n; i++ {
		rev := fmt.Sprintf("1.%d", i)
		a, err1 := cp.Checkout(rev)
		b, err2 := plain.Checkout(rev)
		if err1 != nil || err2 != nil {
			t.Fatalf("Checkout(%s): %v / %v", rev, err1, err2)
		}
		if a != b {
			t.Errorf("Checkout(%s): checkpointed and plain archives disagree", rev)
		}
	}
}

// TestCheckpointRoundTripByteIdentical: a checkpointed archive must
// survive parse -> serialize unchanged, byte for byte.
func TestCheckpointRoundTripByteIdentical(t *testing.T) {
	a, clock := newTestArchive(t)
	a.CheckpointEvery = 2
	for i := 0; i < 9; i++ {
		clock.Advance(time.Hour)
		if _, _, err := a.Checkin(pageText(i), "u", "log @ with at-sign"); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(a.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "\tcheckpoint;") {
		t.Fatal("spacing 2 over 9 revisions wrote no checkpoint keyword")
	}
	f, err := parseArchive(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got := serializeArchive(f); got != string(raw) {
		t.Errorf("serialize(parse(archive)) differs from archive on disk")
	}
}

// TestPreCheckpointArchiveReadable: archives written before the
// checkpoint keyword existed (no `checkpoint;` anywhere) must still parse
// and check out every revision.
func TestPreCheckpointArchiveReadable(t *testing.T) {
	a, clock := newTestArchive(t)
	a.CheckpointEvery = 1 << 30 // emit the historical, checkpoint-free format
	texts := make([]string, 6)
	for i := range texts {
		clock.Advance(time.Hour)
		texts[i] = pageText(i)
		if _, _, err := a.Checkin(texts[i], "u", "rev"); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(a.Path())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "checkpoint") {
		t.Fatal("expected a checkpoint-free archive")
	}
	f, err := parseArchive(string(raw))
	if err != nil {
		t.Fatalf("parse of pre-checkpoint archive: %v", err)
	}
	for i, want := range texts {
		got, err := f.checkout(fmt.Sprintf("1.%d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("revision 1.%d differs after pre-checkpoint parse", i+1)
		}
	}
}

// TestCheckpointHitsMetric: checking out a pre-checkpoint revision of a
// deep archive must record a checkpoint hit.
func TestCheckpointHitsMetric(t *testing.T) {
	a, clock := newTestArchive(t)
	a.CheckpointEvery = 2
	for i := 0; i < 8; i++ {
		clock.Advance(time.Hour)
		if _, _, err := a.Checkin(pageText(i), "u", "rev"); err != nil {
			t.Fatal(err)
		}
	}
	before := obs.Default.Counter("rcs.checkpoint_hits").Value()
	if _, err := a.Checkout("1.1"); err != nil {
		t.Fatal(err)
	}
	if after := obs.Default.Counter("rcs.checkpoint_hits").Value(); after <= before {
		t.Errorf("rcs.checkpoint_hits did not advance: %d -> %d", before, after)
	}
}

// TestArchiveCacheHitAndInvalidation: repeated operations on one path hit
// the parsed-archive cache; replacing the file on disk (different
// size/mtime) must invalidate it.
func TestArchiveCacheHitAndInvalidation(t *testing.T) {
	clock := simclock.New(time.Time{})
	dir := t.TempDir()
	a := Open(dir+"/a,v", clock)
	if _, _, err := a.Checkin("original text\n", "u", "one"); err != nil {
		t.Fatal(err)
	}
	hitsBefore := obs.Default.Counter("rcs.cache.hits").Value()
	for i := 0; i < 3; i++ {
		if got, err := a.Checkout(""); err != nil || got != "original text\n" {
			t.Fatalf("Checkout = (%q, %v)", got, err)
		}
	}
	if hits := obs.Default.Counter("rcs.cache.hits").Value(); hits < hitsBefore+3 {
		t.Errorf("cache hits %d -> %d, want +3", hitsBefore, hits)
	}

	// A fresh handle on the same path must share the cache.
	b := Open(dir+"/a,v", clock)
	hitsBefore = obs.Default.Counter("rcs.cache.hits").Value()
	if got, err := b.Checkout(""); err != nil || got != "original text\n" {
		t.Fatalf("Checkout = (%q, %v)", got, err)
	}
	if hits := obs.Default.Counter("rcs.cache.hits").Value(); hits <= hitsBefore {
		t.Error("fresh handle on same path did not hit the cache")
	}

	// Replace the archive behind the cache's back.
	other := Open(dir+"/other,v", clock)
	if _, _, err := other.Checkin("replacement text\n", "u", "one"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(other.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a.Path(), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Force a different mtime in case the filesystem clock is coarse.
	stamp := time.Now().Add(time.Hour)
	if err := os.Chtimes(a.Path(), stamp, stamp); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Checkout(""); err != nil || got != "replacement text\n" {
		t.Fatalf("Checkout after external replace = (%q, %v), cache served stale data", got, err)
	}
}

// TestCacheCloneIsolation: a cached parse must not be corrupted by the
// mutations Checkin performs on its working copy.
func TestCacheCloneIsolation(t *testing.T) {
	a, clock := newTestArchive(t)
	for i := 0; i < 5; i++ {
		clock.Advance(time.Hour)
		if _, _, err := a.Checkin(pageText(i), "u", "rev"); err != nil {
			t.Fatal(err)
		}
		// Re-read every revision so any aliasing between the cache's
		// entry and Checkin's mutated copy would surface as corruption.
		for j := 0; j <= i; j++ {
			rev := fmt.Sprintf("1.%d", j+1)
			got, err := a.Checkout(rev)
			if err != nil {
				t.Fatalf("Checkout(%s): %v", rev, err)
			}
			if got != pageText(j) {
				t.Fatalf("Checkout(%s) corrupted after later checkin", rev)
			}
		}
	}
}
