package sched

import (
	"context"
	"sync"
	"testing"
	"time"

	"aide/internal/breaker"
	"aide/internal/obs"
	"aide/internal/simclock"
)

// rig wires a scheduler to a scripted Poll function on a simulated
// clock. outcomes maps URL -> outcome; unlisted URLs poll Unchanged.
type rig struct {
	sched *Scheduler
	clock *simclock.Sim
	reg   *obs.Registry

	mu       sync.Mutex
	outcomes map[string]Outcome
	polls    map[string]int
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{
		clock:    simclock.New(time.Time{}),
		reg:      obs.NewRegistry(),
		outcomes: make(map[string]Outcome),
		polls:    make(map[string]int),
	}
	r.sched = New(cfg)
	r.sched.Clock = r.clock
	r.sched.Metrics = r.reg
	r.sched.Poll = func(_ context.Context, url string) Outcome {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.polls[url]++
		return r.outcomes[url]
	}
	return r
}

func (r *rig) pollCount(url string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.polls[url]
}

// drive advances the clock in steps of dt, ticking after each step.
func (r *rig) drive(t *testing.T, steps int, dt time.Duration) {
	t.Helper()
	for i := 0; i < steps; i++ {
		r.clock.Advance(dt)
		r.sched.Tick(context.Background())
	}
}

func (r *rig) itemFor(t *testing.T, url string) *item {
	t.Helper()
	r.sched.mu.Lock()
	defer r.sched.mu.Unlock()
	it, ok := r.sched.items[url]
	if !ok {
		t.Fatalf("URL %q not scheduled", url)
	}
	return it
}

func TestAdaptivityDivergesFastFromStagnant(t *testing.T) {
	cfg := Config{MinInterval: time.Minute, MaxInterval: time.Hour, HostRPS: 100, Seed: 7}
	r := newRig(t, cfg)
	r.outcomes["http://fast.example/a"] = Changed
	r.outcomes["http://slow.example/b"] = Unchanged
	r.sched.Add("http://fast.example/a")
	r.sched.Add("http://slow.example/b")

	r.drive(t, 600, 30*time.Second) // 5 simulated hours

	fast := r.itemFor(t, "http://fast.example/a")
	slow := r.itemFor(t, "http://slow.example/b")
	if fast.interval != cfg.MinInterval {
		t.Errorf("fast interval = %v, want exactly MinInterval %v", fast.interval, cfg.MinInterval)
	}
	if slow.interval < cfg.MaxInterval/2 {
		t.Errorf("stagnant interval = %v, want >= %v (half of MaxInterval)", slow.interval, cfg.MaxInterval/2)
	}
	if fp, sp := r.pollCount("http://fast.example/a"), r.pollCount("http://slow.example/b"); fp <= 3*sp {
		t.Errorf("fast polled %d times vs stagnant %d; want fast > 3x stagnant", fp, sp)
	}
}

func TestFloorBoundsInterval(t *testing.T) {
	cfg := Config{MinInterval: time.Minute, MaxInterval: time.Hour, HostRPS: 100}
	r := newRig(t, cfg)
	floor := 10 * time.Minute
	r.sched.Floor = func(url string) (time.Duration, bool) {
		if url == "http://never.example/x" {
			return 0, true
		}
		return floor, false
	}
	r.outcomes["http://floored.example/a"] = Changed
	if !r.sched.Add("http://floored.example/a") {
		t.Fatal("Add rejected a pollable URL")
	}
	if r.sched.Add("http://never.example/x") {
		t.Error("Add accepted a URL matching a `never` threshold")
	}
	if got := r.reg.Counter("sched.rejected_never").Value(); got != 1 {
		t.Errorf("sched.rejected_never = %d, want 1", got)
	}

	r.drive(t, 200, time.Minute)

	it := r.itemFor(t, "http://floored.example/a")
	if it.interval < floor {
		t.Errorf("interval = %v dropped below floor %v despite constant changes", it.interval, floor)
	}
	// Realized polls must respect the floor too: over 200 simulated
	// minutes at a 10-minute floor, at most ~21 polls fit.
	if n := r.pollCount("http://floored.example/a"); n > 21 {
		t.Errorf("polled %d times in 200m with a 10m floor; want <= 21", n)
	}
}

func TestPolitenessDefersBeyondBurst(t *testing.T) {
	cfg := Config{MinInterval: time.Minute, MaxInterval: time.Hour, HostRPS: 0.1, HostBurst: 2, Seed: 3}
	r := newRig(t, cfg)
	urls := []string{
		"http://busy.example/1",
		"http://busy.example/2",
		"http://busy.example/3",
		"http://busy.example/4",
	}
	for _, u := range urls {
		r.sched.Add(u)
	}
	// Everything comes due within the first minute of phase spread.
	r.clock.Advance(time.Minute)
	st := r.sched.Tick(context.Background())
	if st.Polled != 2 {
		t.Fatalf("first tick polled %d URLs, want burst of 2 (stats: %+v)", st.Polled, st)
	}
	if st.DeferredPoliteness != 2 {
		t.Fatalf("first tick deferred %d URLs for politeness, want 2", st.DeferredPoliteness)
	}
	if got := r.reg.Counter("sched.deferred.politeness").Value(); got != 2 {
		t.Errorf("sched.deferred.politeness = %d, want 2", got)
	}
	// The deferred pair must be staggered, not re-synchronised: their
	// due times differ by one emission interval (10s at 0.1 rps).
	r.sched.mu.Lock()
	var dues []time.Time
	for _, it := range r.sched.items {
		if it.samples == 0 && !it.polled {
			dues = append(dues, it.due)
		}
	}
	r.sched.mu.Unlock()
	if len(dues) != 2 {
		t.Fatalf("found %d unpolled items, want 2", len(dues))
	}
	gap := dues[1].Sub(dues[0])
	if gap < 0 {
		gap = -gap
	}
	if want := 10 * time.Second; gap != want {
		t.Errorf("deferred due times %v apart, want exactly one emission interval %v", gap, want)
	}
	// Draining the backlog: everything gets polled eventually.
	r.drive(t, 10, 30*time.Second)
	for _, u := range urls {
		if r.pollCount(u) == 0 {
			t.Errorf("URL %s never polled after deferral", u)
		}
	}
}

func TestBreakerNotReadyDefersHost(t *testing.T) {
	clock := simclock.New(time.Time{})
	reg := obs.NewRegistry()
	breakers := breaker.NewSet(breaker.Config{FailureThreshold: 1, Cooldown: 5 * time.Minute})
	breakers.Clock = clock
	breakers.Metrics = reg

	cfg := Config{MinInterval: time.Minute, MaxInterval: time.Hour, HostRPS: 100, BreakerDefer: time.Minute}
	r := newRig(t, cfg)
	r.sched.Clock = clock
	r.sched.Breakers = breakers
	r.sched.Add("http://dead.example/a")

	// Trip the host's breaker.
	b := breakers.For("dead.example")
	b.Allow()
	b.Record(false)
	if b.Ready() {
		t.Fatal("breaker ready immediately after tripping")
	}

	clock.Advance(2 * time.Minute)
	st := r.sched.Tick(context.Background())
	if st.Polled != 0 || st.DeferredBreaker != 1 {
		t.Fatalf("tick with tripped breaker: polled=%d deferred=%d, want 0/1", st.Polled, st.DeferredBreaker)
	}
	if got := r.reg.Counter("sched.deferred.breaker").Value(); got != 1 {
		t.Errorf("sched.deferred.breaker = %d, want 1", got)
	}
	if n := r.pollCount("http://dead.example/a"); n != 0 {
		t.Fatalf("tripped host polled %d times, want 0", n)
	}

	// Past the cooldown the breaker is Ready (a probe would be
	// admitted) and the scheduler resumes polling.
	clock.Advance(5 * time.Minute)
	st = r.sched.Tick(context.Background())
	if st.Polled != 1 {
		t.Fatalf("tick after cooldown polled %d, want 1 (stats: %+v)", st.Polled, st)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	const max = time.Hour
	a := Jitter("http://x.example/p", 42, max)
	b := Jitter("http://x.example/p", 42, max)
	if a != b {
		t.Errorf("Jitter not deterministic: %v vs %v", a, b)
	}
	if a < 0 || a >= max {
		t.Errorf("Jitter %v outside [0, %v)", a, max)
	}
	if Jitter("http://x.example/p", 43, max) == a && Jitter("http://y.example/q", 42, max) == a {
		t.Error("Jitter ignores both seed and key")
	}
	if Jitter("anything", 1, 0) != 0 {
		t.Error("Jitter with max<=0 should be 0")
	}
}

func TestPersistenceRoundtrip(t *testing.T) {
	path := t.TempDir() + "/sched.json"
	cfg := Config{MinInterval: time.Minute, MaxInterval: time.Hour, HostRPS: 100, Seed: 5}
	r := newRig(t, cfg)
	r.outcomes["http://fast.example/a"] = Changed
	r.sched.Add("http://fast.example/a")
	r.sched.Add("http://cold.example/b")
	r.drive(t, 60, time.Minute)

	before := r.itemFor(t, "http://fast.example/a")
	if before.samples == 0 {
		t.Fatal("no samples accumulated before save")
	}
	if err := r.sched.SaveState(path); err != nil {
		t.Fatalf("SaveState: %v", err)
	}

	r2 := newRig(t, cfg)
	r2.clock.Set(r.clock.Now())
	if err := r2.sched.LoadState(path); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	r2.sched.Add("http://fast.example/a")
	after := r2.itemFor(t, "http://fast.example/a")
	if after.rate != before.rate || after.samples != before.samples {
		t.Errorf("restored rate/samples = %v/%d, want %v/%d",
			after.rate, after.samples, before.rate, before.samples)
	}
	if after.interval != before.interval {
		t.Errorf("restored interval = %v, want %v", after.interval, before.interval)
	}
	// A URL absent from the new hotlist leaves no trace.
	if r2.sched.Len() != 1 {
		t.Errorf("restored queue length = %d, want 1", r2.sched.Len())
	}

	// Missing file is a clean first run.
	r3 := newRig(t, cfg)
	if err := r3.sched.LoadState(t.TempDir() + "/absent.json"); err != nil {
		t.Errorf("LoadState on missing file: %v", err)
	}
}

func TestCancelRequeuesWithoutLoss(t *testing.T) {
	cfg := Config{MinInterval: time.Minute, MaxInterval: time.Hour, HostRPS: 100, Workers: 1}
	r := newRig(t, cfg)
	urls := []string{"http://a.example/1", "http://b.example/2", "http://c.example/3"}
	for _, u := range urls {
		r.sched.Add(u)
	}
	r.clock.Advance(time.Minute)

	ctx, cancel := context.WithCancel(context.Background())
	polled := 0
	r.sched.Poll = func(_ context.Context, _ string) Outcome {
		polled++
		cancel() // cancel mid-tick after the first poll starts
		return Unchanged
	}
	st := r.sched.Tick(ctx)
	if st.Requeued == 0 {
		t.Fatalf("canceled tick requeued nothing (stats: %+v, polled: %d)", st, polled)
	}
	if st.Queue != len(urls) {
		t.Fatalf("queue = %d after canceled tick, want %d (no work lost)", st.Queue, len(urls))
	}
	// A later, uncanceled tick drains the requeued URLs.
	r.sched.Poll = func(_ context.Context, _ string) Outcome { return Unchanged }
	st = r.sched.Tick(context.Background())
	if st.Polled != st.Due || st.Polled == 0 {
		t.Fatalf("follow-up tick polled %d of %d due", st.Polled, st.Due)
	}
}

func TestRemoveMidSchedule(t *testing.T) {
	cfg := Config{MinInterval: time.Minute, MaxInterval: time.Hour, HostRPS: 100}
	r := newRig(t, cfg)
	r.sched.Add("http://a.example/1")
	r.sched.Add("http://b.example/2")
	r.sched.Remove("http://a.example/1")
	r.sched.Remove("http://ghost.example/none") // unknown: no-op
	if r.sched.Len() != 1 {
		t.Fatalf("Len = %d after remove, want 1", r.sched.Len())
	}
	r.drive(t, 5, time.Minute)
	if r.pollCount("http://a.example/1") != 0 {
		t.Error("removed URL was polled")
	}
	if r.pollCount("http://b.example/2") == 0 {
		t.Error("remaining URL never polled")
	}
}

func TestRunDrainsOnCancel(t *testing.T) {
	// Run on the wall clock with tiny intervals; cancel stops it.
	cfg := Config{MinInterval: 5 * time.Millisecond, MaxInterval: 20 * time.Millisecond,
		HostRPS: 1000, HostBurst: 10, IdleWait: 5 * time.Millisecond}
	s := New(cfg)
	reg := obs.NewRegistry()
	s.Metrics = reg
	var mu sync.Mutex
	polled := 0
	s.Poll = func(_ context.Context, _ string) Outcome {
		mu.Lock()
		polled++
		mu.Unlock()
		return Changed
	}
	ticks := make(chan TickStats, 64)
	s.OnTick = func(st TickStats) {
		select {
		case ticks <- st:
		default:
		}
	}
	s.Add("http://w.example/a")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()

	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := polled
		mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("Run polled only %d times in 2s", n)
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

func TestSnapshotAndDebugHandler(t *testing.T) {
	cfg := Config{MinInterval: time.Minute, MaxInterval: time.Hour, HostRPS: 100, Seed: 2}
	r := newRig(t, cfg)
	r.outcomes["http://fast.example/a"] = Changed
	r.sched.Add("http://fast.example/a")
	r.sched.Add("http://slow.example/b")
	r.drive(t, 10, time.Minute)

	snap := r.sched.SnapshotState()
	if snap.Queue != 2 || len(snap.URLs) != 2 {
		t.Fatalf("snapshot queue=%d urls=%d, want 2/2", snap.Queue, len(snap.URLs))
	}
	if snap.NextDue.IsZero() {
		t.Error("snapshot NextDue is zero with a non-empty queue")
	}
	if len(snap.Hosts) == 0 {
		t.Error("snapshot has no host buckets after polling")
	}
	for _, u := range snap.URLs {
		if u.LastOutcome == "" {
			t.Errorf("URL %s has no last outcome after 10 ticks", u.URL)
		}
		if u.IntervalSeconds <= 0 {
			t.Errorf("URL %s has non-positive interval", u.URL)
		}
	}
	// Soonest-due-first ordering.
	for i := 1; i < len(snap.URLs); i++ {
		if snap.URLs[i].NextDue.Before(snap.URLs[i-1].NextDue) {
			t.Error("snapshot URLs not sorted by next due")
		}
	}
}

func TestEstimatorMapping(t *testing.T) {
	lo, hi := time.Minute, time.Hour
	cases := []struct {
		rate float64
		want time.Duration
	}{
		{1.0, lo},  // saturates at the floor
		{0.95, lo}, // still saturated
		{0.0, hi},  // saturates at the ceiling
		{0.05, hi}, // still saturated
	}
	for _, c := range cases {
		if got := intervalFor(c.rate, lo, hi); got != c.want {
			t.Errorf("intervalFor(%v) = %v, want %v", c.rate, got, c.want)
		}
	}
	mid := intervalFor(0.5, lo, hi)
	if mid <= lo || mid >= hi {
		t.Errorf("intervalFor(0.5) = %v, want strictly between %v and %v", mid, lo, hi)
	}
	// Monotone: higher rate, shorter interval.
	prev := hi + 1
	for _, rate := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		iv := intervalFor(rate, lo, hi)
		if iv > prev {
			t.Errorf("intervalFor not monotone at rate %v: %v > %v", rate, iv, prev)
		}
		prev = iv
	}
	// Degenerate bounds collapse to lo.
	if got := intervalFor(0.5, time.Hour, time.Hour); got != time.Hour {
		t.Errorf("intervalFor with lo==hi = %v, want %v", got, time.Hour)
	}
}

func TestObserveWarmupAndDecay(t *testing.T) {
	// First observation dominates.
	if r := observe(0, 0, true); r != 1.0 {
		t.Errorf("first changed observation rate = %v, want 1", r)
	}
	// A long changed run then a long unchanged run decays the rate.
	rate := 0.0
	for i := 0; i < 10; i++ {
		rate = observe(rate, i, true)
	}
	if rate < 0.9 {
		t.Errorf("rate after 10 changed = %v, want >= 0.9", rate)
	}
	for i := 10; i < 30; i++ {
		rate = observe(rate, i, false)
	}
	if rate > 0.1 {
		t.Errorf("rate after 20 unchanged = %v, want <= 0.1", rate)
	}
}
