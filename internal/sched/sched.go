// Package sched is AIDE's continuous polling scheduler: the successor to
// the lockstep batch sweeps that w3newer inherited from the paper.
//
// The paper's w3newer walks the whole hotlist once per run, gated only by
// the static per-URL-pattern thresholds of Table 1. That wastes fetches
// on pages that have not changed in months, lags behind pages that change
// hourly, and fires every host's first request at the same instant. This
// package replaces the sweep with a priority queue: each URL carries its
// own next-due time, computed from an exponentially weighted estimate of
// how often the page has actually been observed to change, bounded below
// by the Table 1 threshold (so the paper's semantics remain a floor) and
// above by a configurable maximum.
//
// The scheduler is built from four pieces:
//
//   - a min-heap of per-URL next-due times, with deterministic per-URL
//     jitter so rescheduled URLs do not re-synchronise;
//   - a per-URL change-rate estimator (see estimate.go) adapting each
//     interval between MinInterval and MaxInterval;
//   - per-host politeness: a GCRA token bucket per host (see bucket.go)
//     plus deferral of hosts whose circuit breaker is not ready, so a
//     tripped host is left alone rather than busy-polled;
//   - a bounded worker pool draining due URLs host-serially through the
//     caller-supplied Poll function, with graceful drain on cancellation
//     (undrained URLs are requeued, never lost).
//
// Time comes from an injected simclock.Clock, and all randomness is
// derived from FNV-1a hashes of (seed, URL), so a simulated run is
// deterministic: same seed, same web, same schedule, byte for byte.
package sched

import (
	"container/heap"
	"context"
	"net/url"
	"strings"
	"sync"
	"time"

	"aide/internal/breaker"
	"aide/internal/obs"
	"aide/internal/simclock"
)

// Outcome classifies one poll of one URL, as reported by the Poll
// callback. The estimator only learns from Changed and Unchanged;
// Failed and Skipped reschedule without touching the change rate.
type Outcome int

// Poll outcomes.
const (
	// Unchanged: the page was fetched (or HEAD-checked) and had not
	// changed since the last poll.
	Unchanged Outcome = iota
	// Changed: the page had a new version.
	Changed
	// Failed: the check errored (transport failure, breaker trip, …).
	Failed
	// Skipped: the check was skipped (threshold not elapsed, canceled).
	Skipped
)

// String names the outcome as metrics and /debug/sched show it.
func (o Outcome) String() string {
	switch o {
	case Unchanged:
		return "unchanged"
	case Changed:
		return "changed"
	case Failed:
		return "failed"
	case Skipped:
		return "skipped"
	}
	return "unknown"
}

// Config tunes a Scheduler. The zero value gets workable defaults.
type Config struct {
	// MinInterval is the shortest adapted poll interval (default 15m).
	// Per-URL threshold floors can only raise it.
	MinInterval time.Duration
	// MaxInterval is the longest adapted poll interval (default 7 days,
	// the paper's "weekly" outer threshold).
	MaxInterval time.Duration
	// HostRPS is the per-host politeness rate in requests per second
	// (default 1). Polls beyond it are deferred, not dropped.
	HostRPS float64
	// HostBurst is how many polls a host may absorb back to back before
	// the rate limit bites (default 2).
	HostBurst int
	// Workers bounds how many hosts are polled concurrently in one tick
	// (default 4). Within a host, polls are always serial.
	Workers int
	// JitterFrac is the fraction of each interval used as the jitter
	// window (default 0.1): a rescheduled URL comes due up to this much
	// early, spreading load without ever violating the floor.
	JitterFrac float64
	// Seed keys the deterministic jitter (default 0).
	Seed int64
	// BreakerDefer is how long a URL is pushed back when its host's
	// breaker is not ready (default 1m, matching the breaker cooldown).
	BreakerDefer time.Duration
	// IdleWait is how long Run sleeps when the queue is empty
	// (default 1s).
	IdleWait time.Duration
}

func (c Config) minInterval() time.Duration {
	if c.MinInterval > 0 {
		return c.MinInterval
	}
	return 15 * time.Minute
}

func (c Config) maxInterval() time.Duration {
	if c.MaxInterval > 0 {
		return c.MaxInterval
	}
	return 7 * 24 * time.Hour
}

func (c Config) hostRPS() float64 {
	if c.HostRPS > 0 {
		return c.HostRPS
	}
	return 1
}

func (c Config) hostBurst() int {
	if c.HostBurst > 0 {
		return c.HostBurst
	}
	return 2
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 4
}

func (c Config) jitterFrac() float64 {
	if c.JitterFrac > 0 {
		return c.JitterFrac
	}
	return 0.1
}

func (c Config) breakerDefer() time.Duration {
	if c.BreakerDefer > 0 {
		return c.BreakerDefer
	}
	return time.Minute
}

func (c Config) idleWait() time.Duration {
	if c.IdleWait > 0 {
		return c.IdleWait
	}
	return time.Second
}

// item is one scheduled URL.
type item struct {
	url  string
	host string

	rate     float64       // EWMA of changed(1)/unchanged(0) outcomes
	samples  int           // informative polls so far
	interval time.Duration // current adapted interval
	floor    time.Duration // Table 1 threshold floor (0 = none)

	due         time.Time
	seq         int64 // tiebreak: FIFO among equal due times
	index       int   // heap index; -1 when popped
	lastPolled  time.Time
	lastOutcome Outcome
	polled      bool // lastPolled/lastOutcome are valid
}

// itemHeap is a min-heap on (due, seq).
type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *itemHeap) Push(x any) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// Scheduler drains a min-heap of per-URL due times through a bounded
// worker pool, politely per host. Configure the exported fields before
// the first Add/Tick; they must not change afterwards.
type Scheduler struct {
	// Clock paces the schedule; wall clock when nil.
	Clock simclock.Clock
	// Metrics receives sched.* counters, gauges, and the interval
	// histogram; obs.Default when nil.
	Metrics *obs.Registry
	// Breakers, when set, defers whole hosts whose breaker is not ready
	// instead of letting every URL on a dead host fail individually.
	Breakers *breaker.Set
	// Poll checks one URL through the tracker/webclient path and reports
	// what happened. Required.
	Poll func(ctx context.Context, url string) Outcome
	// Floor, when set, returns the per-URL threshold floor (Table 1):
	// the adapted interval never drops below it, and never==true keeps
	// the URL out of the schedule entirely.
	Floor func(url string) (every time.Duration, never bool)
	// OnTick, when set, observes each completed tick (Run only calls it
	// after ticks; manual Tick callers may read the return instead).
	OnTick func(TickStats)

	cfg     Config
	cfgOnce sync.Once

	mu      sync.Mutex
	heap    itemHeap
	items   map[string]*item
	buckets map[string]*bucket
	loaded  map[string]persistEntry // state from LoadState, consumed by Add
	seq     int64
}

// New returns a scheduler with the given config. Set the exported
// fields (Clock, Poll, …) before use.
func New(cfg Config) *Scheduler {
	s := &Scheduler{}
	s.init(cfg)
	return s
}

func (s *Scheduler) init(cfg Config) {
	s.cfgOnce.Do(func() {
		s.cfg = cfg
		s.items = make(map[string]*item)
		s.buckets = make(map[string]*bucket)
	})
}

func (s *Scheduler) clock() simclock.Clock {
	if s.Clock != nil {
		return s.Clock
	}
	return simclock.Wall{}
}

func (s *Scheduler) metrics() *obs.Registry {
	if s.Metrics != nil {
		return s.Metrics
	}
	return obs.Default
}

// IntervalBuckets are the histogram bounds for sched.interval_seconds:
// one minute through the paper's weekly threshold.
var IntervalBuckets = []float64{60, 300, 900, 3600, 4 * 3600, 12 * 3600, 86400, 3 * 86400, 7 * 86400}

// Add schedules a URL. The first poll is spread deterministically over
// one minimum interval so a freshly loaded hotlist does not fire every
// request at the same instant. URLs matching a `never` threshold are
// rejected (returns false), as are duplicates (returns true: already
// scheduled). State previously loaded with LoadState is applied here.
func (s *Scheduler) Add(url string) bool {
	s.init(Config{})
	floor, never := time.Duration(0), false
	if s.Floor != nil {
		floor, never = s.Floor(url)
	}
	if never {
		s.metrics().Counter("sched.rejected_never").Inc()
		return false
	}
	now := s.clock().Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[url]; ok {
		return true
	}
	it := &item{
		url:      url,
		host:     hostOf(url),
		interval: maxDur(s.cfg.minInterval(), floor),
		floor:    floor,
		index:    -1,
	}
	if st, ok := s.loaded[url]; ok {
		it.rate = st.Rate
		it.samples = st.Samples
		if st.IntervalSeconds > 0 {
			it.interval = clampDur(time.Duration(st.IntervalSeconds*float64(time.Second)),
				maxDur(s.cfg.minInterval(), floor), s.cfg.maxInterval())
		}
		if !st.NextDue.IsZero() && st.NextDue.After(now) {
			it.due = st.NextDue
		}
		delete(s.loaded, url)
	}
	if it.due.IsZero() {
		// Phase-spread the first poll over one minimum interval.
		it.due = now.Add(Jitter(url, s.cfg.Seed, s.cfg.minInterval()))
	}
	it.seq = s.seq
	s.seq++
	s.items[url] = it
	heap.Push(&s.heap, it)
	s.metrics().Gauge("sched.urls").Set(int64(len(s.items)))
	return true
}

// Remove drops a URL from the schedule. Safe for unknown URLs.
func (s *Scheduler) Remove(url string) {
	s.init(Config{})
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.items[url]
	if !ok {
		return
	}
	delete(s.items, url)
	if it.index >= 0 {
		heap.Remove(&s.heap, it.index)
	}
	s.metrics().Gauge("sched.urls").Set(int64(len(s.items)))
}

// Len reports how many URLs are scheduled.
func (s *Scheduler) Len() int {
	s.init(Config{})
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// NextDue returns the earliest next-due time, or ok==false when the
// schedule is empty.
func (s *Scheduler) NextDue() (time.Time, bool) {
	s.init(Config{})
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.heap.Len() == 0 {
		return time.Time{}, false
	}
	return s.heap[0].due, true
}

// TickStats summarises one Tick.
type TickStats struct {
	// Time is the clock reading the tick ran at.
	Time time.Time
	// Due is how many URLs had come due.
	Due int
	// Polled is how many of them were actually checked.
	Polled int
	// Changed/Unchanged/Failed/Skipped break Polled down by outcome.
	Changed, Unchanged, Failed, Skipped int
	// DeferredBreaker counts URLs pushed back because their host's
	// breaker was not ready; DeferredPoliteness counts URLs pushed back
	// by the per-host rate limit.
	DeferredBreaker, DeferredPoliteness int
	// Queue is the total number of scheduled URLs after the tick.
	Queue int
	// Requeued counts due URLs put back unpolled on cancellation.
	Requeued int
}

// Polls returns Changed+Unchanged+Failed+Skipped (== Polled).
func (ts TickStats) Polls() int {
	return ts.Changed + ts.Unchanged + ts.Failed + ts.Skipped
}

// hostWork is one host's share of a tick: the due items admitted for
// polling, in due order.
type hostWork struct {
	host  string
	items []*item
}

// Tick pops every URL at or past due, enforces breaker and politeness
// deferral per host, polls the survivors through a bounded worker pool
// (hosts in parallel, URLs within a host serial), reschedules each, and
// returns what happened. When ctx is canceled mid-tick the remaining
// URLs are requeued at their old due times — a drained tick never loses
// work.
func (s *Scheduler) Tick(ctx context.Context) TickStats {
	s.init(Config{})
	clock := s.clock()
	m := s.metrics()
	now := clock.Now()
	st := TickStats{Time: now}

	// Pop everything due, preserving (due, seq) order.
	s.mu.Lock()
	var due []*item
	for s.heap.Len() > 0 && !s.heap[0].due.After(now) {
		due = append(due, heap.Pop(&s.heap).(*item))
	}
	st.Due = len(due)
	m.Gauge("sched.due_depth").Set(int64(len(due)))

	// Partition by host; defer hosts whose breaker is not ready and
	// items beyond the host's politeness budget.
	var work []*hostWork
	byHost := make(map[string]*hostWork)
	T := time.Duration(float64(time.Second) / s.cfg.hostRPS())
	for _, it := range due {
		if s.Breakers != nil && !s.Breakers.For(it.host).Ready() {
			it.due = now.Add(s.cfg.breakerDefer())
			heap.Push(&s.heap, it)
			st.DeferredBreaker++
			m.Counter("sched.deferred.breaker").Inc()
			continue
		}
		hw := byHost[it.host]
		if hw == nil {
			hw = &hostWork{host: it.host}
			byHost[it.host] = hw
			work = append(work, hw)
		}
		b := s.buckets[it.host]
		if b == nil {
			b = newBucket(s.cfg.hostRPS(), s.cfg.hostBurst())
			s.buckets[it.host] = b
		}
		// Anything beyond the host's politeness budget is deferred to
		// its conforming time, each deferred item staggered one emission
		// interval after the previous so they do not pile up again.
		if wait, ok := b.take(now); ok {
			hw.items = append(hw.items, it)
		} else {
			it.due = now.Add(wait + time.Duration(b.deferrals)*T)
			b.deferrals++
			heap.Push(&s.heap, it)
			st.DeferredPoliteness++
			m.Counter("sched.deferred.politeness").Inc()
		}
	}
	for _, b := range s.buckets {
		b.deferrals = 0
	}
	s.mu.Unlock()

	// Poll: hosts in parallel (bounded), URLs within a host serial.
	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, s.cfg.workers())
		resm sync.Mutex
	)
	for _, hw := range work {
		select {
		case <-ctx.Done():
			// Drain: requeue everything not yet started.
			s.requeue(hw.items, &st, &resm)
			continue
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(hw *hostWork) {
			defer wg.Done()
			defer func() { <-sem }()
			for i, it := range hw.items {
				if ctx.Err() != nil {
					s.requeue(hw.items[i:], &st, &resm)
					return
				}
				out := s.Poll(ctx, it.url)
				pollTime := clock.Now()
				s.reschedule(it, out, pollTime)
				resm.Lock()
				st.Polled++
				switch out {
				case Changed:
					st.Changed++
				case Unchanged:
					st.Unchanged++
				case Failed:
					st.Failed++
				case Skipped:
					st.Skipped++
				}
				resm.Unlock()
				m.Counter("sched.polls." + out.String()).Inc()
			}
		}(hw)
	}
	wg.Wait()

	s.mu.Lock()
	st.Queue = len(s.items)
	s.mu.Unlock()
	m.Gauge("sched.queue_len").Set(int64(st.Queue))
	return st
}

// requeue puts unpolled items back on the heap at their original due
// times (capped to now so they come due immediately next tick).
func (s *Scheduler) requeue(items []*item, st *TickStats, resm *sync.Mutex) {
	if len(items) == 0 {
		return
	}
	s.mu.Lock()
	for _, it := range items {
		if _, ok := s.items[it.url]; !ok {
			continue // removed mid-tick
		}
		heap.Push(&s.heap, it)
	}
	s.mu.Unlock()
	resm.Lock()
	st.Requeued += len(items)
	resm.Unlock()
}

// reschedule updates the item's estimator from the outcome and pushes
// it back on the heap with its new due time.
func (s *Scheduler) reschedule(it *item, out Outcome, pollTime time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[it.url]; !ok {
		return // removed while being polled
	}
	it.lastPolled = pollTime
	it.lastOutcome = out
	it.polled = true

	lo := maxDur(s.cfg.minInterval(), it.floor)
	hi := maxDur(s.cfg.maxInterval(), lo)
	switch out {
	case Changed, Unchanged:
		it.rate = observe(it.rate, it.samples, out == Changed)
		it.samples++
		it.interval = intervalFor(it.rate, lo, hi)
	case Failed:
		// No change-rate information; the breaker handles dead hosts.
		// Keep the interval as is.
	case Skipped:
		// Threshold not yet elapsed or canceled: try again one floor
		// interval from now without learning anything.
		if it.floor > 0 {
			it.interval = maxDur(it.interval, it.floor)
		}
	}
	jit := time.Duration(0)
	if f := s.cfg.jitterFrac(); f > 0 {
		window := time.Duration(f * float64(it.interval))
		jit = Jitter(jitterKey(it.url, it.samples), s.cfg.Seed, window)
	}
	next := it.interval - jit
	if next < it.floor {
		next = it.floor
	}
	it.due = pollTime.Add(next)
	it.seq = s.seq
	s.seq++
	heap.Push(&s.heap, it)
	s.metrics().Histogram("sched.interval_seconds", IntervalBuckets).Observe(it.interval.Seconds())
}

// Run ticks the scheduler until ctx is canceled, sleeping on the clock
// until the next due time between ticks. On a simulated clock the sleep
// advances the clock, so Run compresses simulated days into
// microseconds; deterministic tests should instead drive Tick directly.
func (s *Scheduler) Run(ctx context.Context) error {
	s.init(Config{})
	clock := s.clock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		st := s.Tick(ctx)
		if s.OnTick != nil {
			s.OnTick(st)
		}
		wait := s.cfg.idleWait()
		if next, ok := s.NextDue(); ok {
			wait = next.Sub(clock.Now())
			if wait <= 0 {
				// Deferred items can be due immediately; yield briefly so
				// a wall-clock loop cannot spin.
				wait = 10 * time.Millisecond
			}
		}
		if err := simclock.Sleep(ctx, clock, wait); err != nil {
			return err
		}
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// hostOf extracts the lowercased host[:port] from a URL, mirroring the
// tracker's grouping so breaker and politeness keys line up.
func hostOf(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return rawURL
	}
	return strings.ToLower(u.Host)
}
