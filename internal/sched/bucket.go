// Per-host politeness and deterministic jitter for the scheduler.
//
// Politeness is a GCRA (generic cell rate algorithm) token bucket: one
// per host, tracking a theoretical arrival time (TAT). A poll conforms
// if it arrives no earlier than TAT minus the burst tolerance; each
// admitted poll pushes TAT one emission interval further out. GCRA
// needs a single timestamp of state per host and, unlike a counting
// bucket, gives the exact earliest conforming time for non-conforming
// arrivals — which is where the scheduler reschedules them.
//
// Jitter is derived from an FNV-1a hash of (seed, key) rather than a
// shared RNG: any goroutine can compute it without coordination, and a
// given URL always draws the same offset for a given poll number, so
// simulated runs are reproducible.
package sched

import (
	"encoding/binary"
	"hash/fnv"
	"strconv"
	"time"
)

// bucket is a GCRA rate limiter for one host. Not safe for concurrent
// use on its own; the scheduler serialises access under its mutex.
type bucket struct {
	emission time.Duration // T: one emission interval (1/rps)
	tau      time.Duration // burst tolerance: (burst-1)*T
	tat      time.Time     // theoretical arrival time of the next poll

	// deferrals counts non-conforming polls within the current tick so
	// each is staggered one emission interval after the previous.
	deferrals int
}

// newBucket returns a bucket admitting rps polls per second with the
// given burst.
func newBucket(rps float64, burst int) *bucket {
	T := time.Duration(float64(time.Second) / rps)
	if burst < 1 {
		burst = 1
	}
	return &bucket{emission: T, tau: time.Duration(burst-1) * T}
}

// take asks to admit one poll at time now. If it conforms, take charges
// the bucket and returns (0, true). Otherwise nothing is charged and
// take returns (wait, false), where wait is how long until the poll
// would conform.
func (b *bucket) take(now time.Time) (time.Duration, bool) {
	if b.tat.IsZero() {
		b.tat = now
	}
	if earliest := b.tat.Add(-b.tau); now.Before(earliest) {
		return earliest.Sub(now), false
	}
	if b.tat.Before(now) {
		b.tat = now
	}
	b.tat = b.tat.Add(b.emission)
	return 0, true
}

// nextReady reports when the bucket would next admit a poll (now, if
// already conforming).
func (b *bucket) nextReady(now time.Time) time.Time {
	if b.tat.IsZero() {
		return now
	}
	if earliest := b.tat.Add(-b.tau); earliest.After(now) {
		return earliest
	}
	return now
}

// Jitter returns a deterministic pseudo-random duration in [0, max),
// keyed by (seed, key). It is the scheduler's only randomness source
// and is exported so batch sweeps can reuse it for per-host phase
// offsets (see tracker.Options.PhaseJitter).
func Jitter(key string, seed int64, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	h := fnv.New64a()
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], uint64(seed))
	h.Write(sb[:])
	h.Write([]byte(key))
	return time.Duration(h.Sum64() % uint64(max))
}

// jitterKey varies the jitter draw per poll so a URL's offsets do not
// repeat from one reschedule to the next.
func jitterKey(url string, n int) string {
	return url + "#" + strconv.Itoa(n)
}
