// Change-rate estimation and state persistence for the scheduler.
//
// Each URL carries an exponentially weighted moving average of its
// observed poll outcomes (changed = 1, unchanged = 0). The EWMA is the
// simplest of the per-page update-rate models the change-detection
// literature recommends over fixed intervals: it needs one float of
// state, adapts in a handful of samples, and never stops adapting —
// a page that goes quiet decays back toward long intervals.
//
// The rate maps to a poll interval on a log scale between the
// configured bounds, with saturation at both ends: rates >= 0.9 pin to
// exactly the minimum interval and rates <= 0.1 to the maximum, so a
// page that changes every poll actually realises MinInterval instead of
// asymptotically approaching it.
package sched

import (
	"encoding/json"
	"math"
	"os"
	"time"

	"aide/internal/fsatomic"
)

// ewmaAlpha is the steady-state smoothing factor: each new observation
// carries 30% of the estimate, so ~7 polls rewrite history.
const ewmaAlpha = 0.3

// observe folds one changed/unchanged observation into the rate. Early
// samples use a running mean (alpha = 1/(n+1)) so a new URL converges
// in a few polls instead of dragging the initial guess around.
func observe(rate float64, samples int, changed bool) float64 {
	v := 0.0
	if changed {
		v = 1.0
	}
	if samples == 0 {
		return v
	}
	a := ewmaAlpha
	if warm := 1.0 / float64(samples+1); warm > a {
		a = warm
	}
	return a*v + (1-a)*rate
}

// intervalFor maps a change rate to a poll interval between lo and hi
// on a log scale, saturating outside [0.1, 0.9] so the extremes realise
// the exact bounds.
func intervalFor(rate float64, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	r := (rate - 0.1) / 0.8
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	iv := float64(hi) * math.Pow(float64(lo)/float64(hi), r)
	return clampDur(time.Duration(iv), lo, hi)
}

// persistEntry is one URL's saved scheduler state.
type persistEntry struct {
	// Rate is the EWMA change rate in [0, 1].
	Rate float64 `json:"rate"`
	// Samples is how many informative polls fed the rate.
	Samples int `json:"samples"`
	// IntervalSeconds is the adapted poll interval.
	IntervalSeconds float64 `json:"interval_seconds"`
	// NextDue is when the URL was next scheduled (honoured on reload if
	// still in the future).
	NextDue time.Time `json:"next_due,omitzero"`
}

// persistState is the on-disk schema: url -> entry.
type persistState struct {
	URLs map[string]persistEntry `json:"urls"`
}

// SaveState writes every URL's estimator state atomically
// (write-temp + fsync + rename), so a crash mid-save never truncates
// the previous state.
func (s *Scheduler) SaveState(path string) error {
	s.init(Config{})
	s.mu.Lock()
	out := persistState{URLs: make(map[string]persistEntry, len(s.items))}
	for u, it := range s.items {
		out.URLs[u] = persistEntry{
			Rate:            it.rate,
			Samples:         it.samples,
			IntervalSeconds: it.interval.Seconds(),
			NextDue:         it.due,
		}
	}
	s.mu.Unlock()
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadState reads state written by SaveState. It does not schedule
// anything by itself: entries are applied when the matching URL is
// Added, so a shrunken hotlist simply drops stale state. A missing file
// is not an error (first run).
func (s *Scheduler) LoadState(path string) error {
	s.init(Config{})
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var in persistState
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.loaded == nil {
		s.loaded = make(map[string]persistEntry, len(in.URLs))
	}
	for u, e := range in.URLs {
		s.loaded[u] = e
	}
	return nil
}
