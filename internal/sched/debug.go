// /debug/sched: a JSON window into the live schedule — per-URL rate
// estimates, intervals, and next-due times, plus per-host politeness
// state — mirroring how /debug/health exposes the breaker set.
package sched

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// URLState is one scheduled URL as served by /debug/sched.
type URLState struct {
	// URL is the tracked URL.
	URL string `json:"url"`
	// Host is its politeness/breaker grouping key.
	Host string `json:"host"`
	// Rate is the EWMA change rate in [0, 1].
	Rate float64 `json:"rate"`
	// Samples is how many informative polls fed the rate.
	Samples int `json:"samples"`
	// IntervalSeconds is the current adapted poll interval.
	IntervalSeconds float64 `json:"interval_seconds"`
	// FloorSeconds is the Table 1 threshold floor (0 = none).
	FloorSeconds float64 `json:"floor_seconds,omitempty"`
	// NextDue is when the URL next comes due.
	NextDue time.Time `json:"next_due"`
	// LastPolled/LastOutcome describe the most recent poll (omitted
	// until the first one).
	LastPolled  time.Time `json:"last_polled,omitzero"`
	LastOutcome string    `json:"last_outcome,omitempty"`
}

// HostState is one host's politeness state as served by /debug/sched.
type HostState struct {
	// Host is the bucket's key.
	Host string `json:"host"`
	// NextReady is when the host's bucket next admits a poll.
	NextReady time.Time `json:"next_ready"`
}

// Snapshot is the full scheduler state at one instant.
type Snapshot struct {
	// Now is the scheduler clock's reading.
	Now time.Time `json:"now"`
	// Queue is the number of scheduled URLs.
	Queue int `json:"queue"`
	// NextDue is the earliest due time (omitted when the queue is
	// empty).
	NextDue time.Time `json:"next_due,omitzero"`
	// URLs lists every scheduled URL, soonest due first.
	URLs []URLState `json:"urls"`
	// Hosts lists per-host politeness state, sorted by host.
	Hosts []HostState `json:"hosts"`
}

// SnapshotState captures the schedule for /debug/sched.
func (s *Scheduler) SnapshotState() Snapshot {
	s.init(Config{})
	now := s.clock().Now()
	s.mu.Lock()
	snap := Snapshot{Now: now, Queue: len(s.items)}
	if s.heap.Len() > 0 {
		snap.NextDue = s.heap[0].due
	}
	for _, it := range s.items {
		us := URLState{
			URL:             it.url,
			Host:            it.host,
			Rate:            it.rate,
			Samples:         it.samples,
			IntervalSeconds: it.interval.Seconds(),
			FloorSeconds:    it.floor.Seconds(),
			NextDue:         it.due,
		}
		if it.polled {
			us.LastPolled = it.lastPolled
			us.LastOutcome = it.lastOutcome.String()
		}
		snap.URLs = append(snap.URLs, us)
	}
	for host, b := range s.buckets {
		snap.Hosts = append(snap.Hosts, HostState{Host: host, NextReady: b.nextReady(now)})
	}
	s.mu.Unlock()
	sort.Slice(snap.URLs, func(i, j int) bool {
		if !snap.URLs[i].NextDue.Equal(snap.URLs[j].NextDue) {
			return snap.URLs[i].NextDue.Before(snap.URLs[j].NextDue)
		}
		return snap.URLs[i].URL < snap.URLs[j].URL
	})
	sort.Slice(snap.Hosts, func(i, j int) bool { return snap.Hosts[i].Host < snap.Hosts[j].Host })
	return snap
}

// DebugHandler serves the snapshot as indented JSON.
func (s *Scheduler) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.SnapshotState())
	})
}
