package hotlist

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

const netscapeSample = `<!DOCTYPE NETSCAPE-Bookmark-file-1>
<!-- This is an automatically generated file. -->
<TITLE>Bookmarks for Fred</TITLE>
<H1>Bookmarks</H1>
<DL><p>
    <DT><H3 ADD_DATE="812345678">Research</H3>
    <DL><p>
        <DT><A HREF="http://www.usenix.org/" ADD_DATE="812000000" LAST_VISIT="815000000">USENIX Association</A>
        <DT><A HREF="http://www.research.att.com/" LAST_VISIT="816000000">AT&amp;T Research. Home page.</A>
    </DL><p>
    <DT><A HREF="http://www.yahoo.com/">Yahoo</A>
</DL><p>
`

func TestParseNetscape(t *testing.T) {
	entries, err := ParseNetscape(strings.NewReader(netscapeSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3: %+v", len(entries), entries)
	}
	e := entries[0]
	if e.URL != "http://www.usenix.org/" || e.Title != "USENIX Association" {
		t.Errorf("entry 0 = %+v", e)
	}
	if e.LastVisit != time.Unix(815000000, 0).UTC() {
		t.Errorf("LAST_VISIT = %v", e.LastVisit)
	}
	if e.AddDate != time.Unix(812000000, 0).UTC() {
		t.Errorf("ADD_DATE = %v", e.AddDate)
	}
	// Title containing a period spans sentences but must stay whole.
	if entries[1].Title != "AT&amp;T Research. Home page." {
		t.Errorf("entry 1 title = %q", entries[1].Title)
	}
	// Entry without dates parses with zero times.
	if !entries[2].LastVisit.IsZero() || entries[2].Title != "Yahoo" {
		t.Errorf("entry 2 = %+v", entries[2])
	}
}

func TestNetscapeRoundTrip(t *testing.T) {
	in := []Entry{
		{URL: "http://a/", Title: "Page A", AddDate: time.Unix(812000000, 0).UTC(),
			LastVisit: time.Unix(815000000, 0).UTC()},
		{URL: "http://b/", Title: "Page B"},
	}
	var buf bytes.Buffer
	if err := WriteNetscape(&buf, "Bookmarks", in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseNetscape(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in %+v\nout %+v", in, out)
	}
}

const mosaicSample = `ncsa-xmosaic-hotlist-format-1
Default
http://www.usenix.org/ Thu Sep 28 12:00:00 1995
USENIX Association
http://c2.com/cgi-bin/wiki Fri Sep 29 08:30:00 1995
WikiWikiWeb front page
`

func TestParseMosaic(t *testing.T) {
	entries, err := ParseMosaic(strings.NewReader(mosaicSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].URL != "http://www.usenix.org/" || entries[0].Title != "USENIX Association" {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	want := time.Date(1995, 9, 28, 12, 0, 0, 0, time.UTC)
	if !entries[0].AddDate.Equal(want) {
		t.Errorf("date = %v, want %v", entries[0].AddDate, want)
	}
	if entries[1].Title != "WikiWikiWeb front page" {
		t.Errorf("entry 1 = %+v", entries[1])
	}
}

func TestMosaicRoundTrip(t *testing.T) {
	in := []Entry{
		{URL: "http://x/", Title: "X page", AddDate: time.Date(1995, 11, 3, 1, 2, 3, 0, time.UTC)},
		{URL: "http://y/", Title: "Y page", AddDate: time.Date(1995, 12, 25, 0, 0, 0, 0, time.UTC)},
	}
	var buf bytes.Buffer
	if err := WriteMosaic(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseMosaic(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in %+v\nout %+v", in, out)
	}
}

func TestParseMosaicRejectsWrongHeader(t *testing.T) {
	if _, err := ParseMosaic(strings.NewReader("not-a-hotlist\n")); err == nil {
		t.Error("bad header accepted")
	}
}

func TestParseSniffsFormat(t *testing.T) {
	if entries, err := Parse(strings.NewReader(netscapeSample)); err != nil || len(entries) != 3 {
		t.Errorf("netscape sniff: %d entries, err %v", len(entries), err)
	}
	if entries, err := Parse(strings.NewReader(mosaicSample)); err != nil || len(entries) != 2 {
		t.Errorf("mosaic sniff: %d entries, err %v", len(entries), err)
	}
	if _, err := Parse(strings.NewReader("random text")); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestHistoryBasics(t *testing.T) {
	h := NewHistory()
	if _, ok := h.LastVisited("http://x/"); ok {
		t.Error("empty history has entries")
	}
	t1 := time.Date(1995, 10, 1, 10, 0, 0, 0, time.UTC)
	t2 := t1.Add(time.Hour)
	h.Visit("http://x/", t1)
	h.Visit("http://x/", t2)
	if got, _ := h.LastVisited("http://x/"); !got.Equal(t2) {
		t.Errorf("latest visit = %v, want %v", got, t2)
	}
	// Older visit must not regress the record.
	h.Visit("http://x/", t1)
	if got, _ := h.LastVisited("http://x/"); !got.Equal(t2) {
		t.Errorf("visit regressed to %v", got)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	h := NewHistory()
	h.Visit("http://a/", time.Date(1995, 9, 29, 12, 0, 0, 0, time.UTC))
	h.Visit("http://b/", time.Date(1995, 11, 3, 18, 30, 0, 0, time.UTC))
	var buf bytes.Buffer
	if err := h.WriteHistory(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := ParseHistory(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"http://a/", "http://b/"} {
		want, _ := h.LastVisited(u)
		got, ok := h2.LastVisited(u)
		if !ok || !got.Equal(want) {
			t.Errorf("%s: got %v ok=%v, want %v", u, got, ok, want)
		}
	}
}

func TestParseHistoryRejectsWrongHeader(t *testing.T) {
	if _, err := ParseHistory(strings.NewReader("wrong\n")); err == nil {
		t.Error("bad history header accepted")
	}
}

func TestHistorySkipsMalformedLines(t *testing.T) {
	src := `ncsa-mosaic-history-format-1
Default
http://good/ Thu Sep 28 12:00:00 1995
malformed-line-without-date
http://bad/ not a date at all
`
	h, err := ParseHistory(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.LastVisited("http://good/"); !ok {
		t.Error("good line lost")
	}
	if _, ok := h.LastVisited("http://bad/"); ok {
		t.Error("malformed date accepted")
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d, want 1", h.Len())
	}
}

func TestHistoryConcurrentAccess(t *testing.T) {
	h := NewHistory()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			h.Visit("http://x/", time.Unix(int64(i), 0))
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		h.LastVisited("http://x/")
	}
	<-done
}
