// Package hotlist reads and writes the browser-side inputs of w3newer:
// the user's hotlist (bookmarks) naming the URLs of interest, and the
// browser's history file recording when each URL was last viewed (§3:
// "The time when the user has viewed the page comes from the W3 browser's
// history").
//
// Two mid-1990s hotlist formats are supported — Netscape's HTML bookmark
// file and NCSA Mosaic's plain-text hotlist — plus the Mosaic-style
// global history format.
package hotlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aide/internal/htmldoc"
)

// Entry is one hotlist item.
type Entry struct {
	// URL is the bookmarked location.
	URL string
	// Title is the descriptive text shown in reports.
	Title string
	// AddDate is when the bookmark was created (zero if unknown).
	AddDate time.Time
	// LastVisit is the browser's record of the last visit (zero if
	// unknown); Netscape stores it in the bookmark file itself.
	LastVisit time.Time
}

// --- Netscape bookmark files ------------------------------------------------

// netscapeHeader begins every Netscape bookmark file.
const netscapeHeader = "<!DOCTYPE NETSCAPE-Bookmark-file-1>"

// ParseNetscape parses a Netscape bookmark file. Folder structure is
// flattened: w3newer only needs the URL list.
func ParseNetscape(r io.Reader) ([]Entry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	// Scan the flat item stream for <A HREF=...>title words</A> runs. An
	// anchor's title may span sentence tokens (titles contain periods),
	// so the current entry persists across tokens.
	var cur *Entry
	flush := func() {
		if cur != nil && cur.URL != "" {
			cur.Title = strings.TrimSpace(cur.Title)
			entries = append(entries, *cur)
		}
		cur = nil
	}
	for _, tok := range htmldoc.Tokenize(string(data)) {
		for _, it := range tok.Items {
			switch {
			case it.Kind == htmldoc.Markup && it.Name == "A":
				flush()
				e := Entry{}
				for _, a := range it.Attrs {
					switch a.Name {
					case "HREF":
						e.URL = a.Value
					case "ADD_DATE":
						e.AddDate = unixAttr(a.Value)
					case "LAST_VISIT":
						e.LastVisit = unixAttr(a.Value)
					}
				}
				cur = &e
			case it.Kind == htmldoc.Markup && it.Name == "/A":
				flush()
			case it.Kind == htmldoc.Word && cur != nil:
				if cur.Title != "" {
					cur.Title += " "
				}
				cur.Title += it.Raw
			}
		}
	}
	flush()
	return entries, nil
}

// WriteNetscape renders entries as a Netscape bookmark file.
func WriteNetscape(w io.Writer, title string, entries []Entry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, netscapeHeader)
	fmt.Fprintf(bw, "<TITLE>%s</TITLE>\n<H1>%s</H1>\n<DL><p>\n", title, title)
	for _, e := range entries {
		fmt.Fprintf(bw, `    <DT><A HREF="%s"`, e.URL)
		if !e.AddDate.IsZero() {
			fmt.Fprintf(bw, ` ADD_DATE="%d"`, e.AddDate.Unix())
		}
		if !e.LastVisit.IsZero() {
			fmt.Fprintf(bw, ` LAST_VISIT="%d"`, e.LastVisit.Unix())
		}
		fmt.Fprintf(bw, ">%s</A>\n", e.Title)
	}
	fmt.Fprintln(bw, "</DL><p>")
	return bw.Flush()
}

func unixAttr(v string) time.Time {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n <= 0 {
		return time.Time{}
	}
	return time.Unix(n, 0).UTC()
}

// --- Mosaic hotlists ---------------------------------------------------------

// mosaicHeader begins an NCSA Mosaic hotlist.
const mosaicHeader = "ncsa-xmosaic-hotlist-format-1"

// ParseMosaic parses an NCSA Mosaic hotlist: a two-line header followed
// by pairs of lines — "URL date" then the title.
func ParseMosaic(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != mosaicHeader {
		return nil, fmt.Errorf("hotlist: not a Mosaic hotlist (missing %q)", mosaicHeader)
	}
	sc.Scan() // list name line ("Default"); ignored
	var entries []Entry
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		url, dateStr, _ := strings.Cut(line, " ")
		e := Entry{URL: url}
		if t, err := time.Parse(time.ANSIC, strings.TrimSpace(dateStr)); err == nil {
			e.AddDate = t.UTC()
		}
		if sc.Scan() {
			e.Title = strings.TrimSpace(sc.Text())
		}
		entries = append(entries, e)
	}
	return entries, sc.Err()
}

// WriteMosaic renders entries in the Mosaic hotlist format.
func WriteMosaic(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, mosaicHeader)
	fmt.Fprintln(bw, "Default")
	for _, e := range entries {
		d := e.AddDate
		if d.IsZero() {
			d = time.Unix(0, 0)
		}
		fmt.Fprintf(bw, "%s %s\n%s\n", e.URL, d.UTC().Format(time.ANSIC), e.Title)
	}
	return bw.Flush()
}

// Parse sniffs the format (Netscape or Mosaic) and parses accordingly.
func Parse(r io.Reader) ([]Entry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := strings.TrimSpace(string(data))
	switch {
	case strings.HasPrefix(s, mosaicHeader):
		return ParseMosaic(strings.NewReader(s))
	case strings.HasPrefix(strings.ToUpper(s), "<!DOCTYPE NETSCAPE"):
		return ParseNetscape(strings.NewReader(s))
	default:
		return nil, fmt.Errorf("hotlist: unrecognised hotlist format")
	}
}

// --- browser history ----------------------------------------------------------

// historyHeader begins an NCSA Mosaic global-history file.
const historyHeader = "ncsa-mosaic-history-format-1"

// History is the browser's record of last-visit times per URL. It is the
// tracker's source for "has the user already seen this version?" and is
// safe for concurrent use.
type History struct {
	mu     sync.RWMutex
	visits map[string]time.Time
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{visits: make(map[string]time.Time)}
}

// LastVisited returns when url was last viewed, if ever.
func (h *History) LastVisited(url string) (time.Time, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	t, ok := h.visits[url]
	return t, ok
}

// Visit records a view of url at time t, keeping the latest time.
func (h *History) Visit(url string, t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if old, ok := h.visits[url]; !ok || t.After(old) {
		h.visits[url] = t
	}
}

// Len returns the number of URLs in the history.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.visits)
}

// ParseHistory reads an NCSA-format global history file.
func ParseHistory(r io.Reader) (*History, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != historyHeader {
		return nil, fmt.Errorf("hotlist: not a history file (missing %q)", historyHeader)
	}
	sc.Scan() // list name line; ignored
	h := NewHistory()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		url, dateStr, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		t, err := time.Parse(time.ANSIC, strings.TrimSpace(dateStr))
		if err != nil {
			continue
		}
		h.visits[url] = t.UTC()
	}
	return h, sc.Err()
}

// WriteHistory renders the history in NCSA format, sorted by URL for
// stable output.
func (h *History) WriteHistory(w io.Writer) error {
	h.mu.RLock()
	urls := make([]string, 0, len(h.visits))
	for u := range h.visits {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	lines := make([]string, len(urls))
	for i, u := range urls {
		lines[i] = fmt.Sprintf("%s %s", u, h.visits[u].UTC().Format(time.ANSIC))
	}
	h.mu.RUnlock()

	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, historyHeader)
	fmt.Fprintln(bw, "Default")
	for _, l := range lines {
		fmt.Fprintln(bw, l)
	}
	return bw.Flush()
}
