package memento

import (
	"testing"
	"time"
)

func at(day, hour int) time.Time {
	return time.Date(1996, time.June, day, hour, 0, 0, 0, time.UTC)
}

// index5 is a generated five-memento history, one capture a day.
func index5() []Memento {
	ms := make([]Memento, 5)
	for i := range ms {
		ms[i] = Memento{Rev: "1." + string(rune('1'+i)), Time: at(i+1, 12)}
	}
	return ms
}

func TestNegotiate(t *testing.T) {
	ms := index5()
	cases := []struct {
		name string
		t    time.Time
		want int
	}{
		{"exact first", at(1, 12), 0},
		{"exact middle", at(3, 12), 2},
		{"exact last", at(5, 12), 4},
		{"before first clamps", at(1, 0), 0},
		{"way before first clamps", time.Date(1990, 1, 1, 0, 0, 0, 0, time.UTC), 0},
		{"after last clamps", at(5, 23), 4},
		{"way after last clamps", time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), 4},
		{"nearer earlier", at(2, 13), 1},
		{"nearer later", at(3, 2), 2},
		{"midpoint ties earlier", at(2, 0), 0}, // exactly between day1 12:00 and day2 12:00
		{"one second past midpoint", at(2, 0).Add(time.Second), 1},
		{"one second before midpoint", at(2, 0).Add(-time.Second), 0},
	}
	for _, c := range cases {
		if got := Negotiate(ms, c.t); got != c.want {
			t.Errorf("%s: Negotiate(%v) = %d, want %d", c.name, c.t, got, c.want)
		}
	}
}

func TestNegotiateSingleRevision(t *testing.T) {
	ms := []Memento{{Rev: "1.1", Time: at(3, 12)}}
	for _, q := range []time.Time{at(1, 0), at(3, 12), at(9, 0)} {
		if got := Negotiate(ms, q); got != 0 {
			t.Errorf("Negotiate(single, %v) = %d, want 0", q, got)
		}
	}
}

func TestNegotiateEmpty(t *testing.T) {
	if got := Negotiate(nil, at(1, 0)); got != -1 {
		t.Errorf("Negotiate(nil) = %d, want -1", got)
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	want := time.Date(1996, time.June, 3, 14, 30, 59, 0, time.UTC)
	s := FormatTimestamp(want)
	if s != "19960603143059" {
		t.Fatalf("FormatTimestamp = %q", s)
	}
	got, err := ParseTimestamp(s)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("round trip %v -> %v", want, got)
	}
}

func TestParseTimestampPartial(t *testing.T) {
	cases := []struct {
		in   string
		want time.Time
	}{
		{"1996", time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC)},
		{"199606", time.Date(1996, 6, 1, 0, 0, 0, 0, time.UTC)},
		{"19960603", time.Date(1996, 6, 3, 0, 0, 0, 0, time.UTC)},
		{"1996060314", time.Date(1996, 6, 3, 14, 0, 0, 0, time.UTC)},
		{"199606031430", time.Date(1996, 6, 3, 14, 30, 0, 0, time.UTC)},
	}
	for _, c := range cases {
		got, err := ParseTimestamp(c.in)
		if err != nil {
			t.Errorf("ParseTimestamp(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseTimestamp(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTimestampRejects(t *testing.T) {
	for _, in := range []string{"", "96", "199", "19960", "1996060314305", "19961301000000", "199606031430599", "1996x6", "hello"} {
		if _, err := ParseTimestamp(in); err == nil {
			t.Errorf("ParseTimestamp(%q) accepted, want error", in)
		}
	}
}

func TestFixScheme(t *testing.T) {
	cases := map[string]string{
		"http:/example.com/a":    "http://example.com/a",
		"http://example.com/a":   "http://example.com/a",
		"https:/example.com":     "https://example.com",
		"https://example.com":    "https://example.com",
		"ftp:/example.com":       "ftp:/example.com", // only web schemes are repaired
		"example.com/http:/deep": "example.com/http:/deep",
	}
	for in, want := range cases {
		if got := fixScheme(in); got != want {
			t.Errorf("fixScheme(%q) = %q, want %q", in, got, want)
		}
	}
}
