package memento

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"aide/internal/flushwriter"
	"aide/internal/httpdate"
)

// Handlers serves the RFC 7089 endpoints for one Source. Zero fields
// beyond Source are required; PageSize defaults to DefaultPageSize.
type Handlers struct {
	Source   Source
	PageSize int
}

// Mount registers the Memento routes on mux:
//
//	/timegate/<url>  and /timegate?url=      TimeGate (pattern 1: 302)
//	/timemap/link/[<page>/]<url>             TimeMap, application/link-format
//	  and /timemap/link?url=&page=
//	/memento/<ts14>/<url>                    URI-M: one archived state
//	/memento/diff?url=&from=&to=             HtmlDiff between two mementos
//
// The path-embedded forms mirror public web-archive URI conventions;
// the query forms survive proxies and ServeMux path cleaning
// untouched, so scripted clients (CI, loadgen) prefer them.
func (h *Handlers) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/timegate", h.timeGate)
	mux.HandleFunc("/timegate/", h.timeGate)
	mux.HandleFunc("/timemap/link", h.timeMap)
	mux.HandleFunc("/timemap/link/", h.timeMap)
	mux.HandleFunc("/memento/diff", h.diff)
	mux.HandleFunc("/memento/", h.memento)
}

// ResolverFor mints URIs for the host the client addressed, so
// Location and Link values work from wherever the archive is
// reachable; with no Host the URIs come out host-relative.
func ResolverFor(r *http.Request) Resolver {
	if r.Host == "" {
		return Resolver{}
	}
	scheme := "http"
	if r.TLS != nil {
		scheme = "https"
	}
	return Resolver{Base: scheme + "://" + r.Host}
}

// MementoLinks renders the Link header value for a response serving
// ms[i]: the original/timegate/timemap relations, neighbouring
// mementos when they exist, and the served memento itself with its
// datetime. Shared by the URI-M handler and the snapshot server's
// native checkout endpoint (RFC 7089 §2.2.1: any response whose
// entity-body is a memento carries these links).
func MementoLinks(res Resolver, pageURL string, ms []Memento, i int) string {
	ls := linkSet{sep: ", "}
	ls.add(pageURL, "original")
	ls.add(res.TimeGate(pageURL), "timegate")
	ls.add(res.TimeMap(pageURL, 1), "timemap", "type", ContentType)
	if i > 0 {
		ls.add(res.Memento(pageURL, ms[i-1]), "prev memento", "datetime", httpdate.Format(ms[i-1].Time))
	}
	if i < len(ms)-1 {
		ls.add(res.Memento(pageURL, ms[i+1]), "next memento", "datetime", httpdate.Format(ms[i+1].Time))
	}
	ls.add(res.Memento(pageURL, ms[i]), "memento", "datetime", httpdate.Format(ms[i].Time))
	return ls.String()
}

// DiffLinks renders the Link header for a diff whose entity-body
// derives from two mementos, ms[fi] (older) and ms[ti] (newer).
func DiffLinks(res Resolver, pageURL string, ms []Memento, fi, ti int) string {
	ls := linkSet{sep: ", "}
	ls.add(pageURL, "original")
	ls.add(res.TimeGate(pageURL), "timegate")
	ls.add(res.TimeMap(pageURL, 1), "timemap", "type", ContentType)
	ls.add(res.Memento(pageURL, ms[fi]), "memento", "datetime", httpdate.Format(ms[fi].Time))
	ls.add(res.Memento(pageURL, ms[ti]), "memento", "datetime", httpdate.Format(ms[ti].Time))
	return ls.String()
}

func (h *Handlers) pageSize() int {
	if h.PageSize > 0 {
		return h.PageSize
	}
	return DefaultPageSize
}

// target recovers the Original Resource URL from a request: the path
// remainder after prefix when present (undoing ServeMux's scheme-slash
// collapse and re-attaching the query string the embedded URL carried),
// the url query parameter otherwise.
func target(r *http.Request, prefix string) string {
	rest := strings.TrimPrefix(r.URL.Path, prefix)
	rest = strings.TrimPrefix(rest, "/")
	if rest == "" {
		return r.URL.Query().Get("url")
	}
	if r.URL.RawQuery != "" {
		rest += "?" + r.URL.RawQuery
	}
	return fixScheme(rest)
}

// index loads the memento list for a target, writing the HTTP error
// itself when the lookup fails. ok is false when a response was
// already written.
func (h *Handlers) index(w http.ResponseWriter, pageURL string) (ms []Memento, ok bool) {
	if pageURL == "" {
		http.Error(w, "missing target URL (append /<url> to the path or pass ?url=)", http.StatusBadRequest)
		return nil, false
	}
	ms, err := h.Source.Index(pageURL)
	switch {
	case errors.Is(err, ErrNotArchived):
		http.Error(w, err.Error(), http.StatusNotFound)
		return nil, false
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return nil, false
	case len(ms) == 0:
		http.Error(w, ErrNotArchived.Error(), http.StatusNotFound)
		return nil, false
	}
	return ms, true
}

// timeGate negotiates in the datetime dimension (RFC 7089 pattern 1):
// 302 to the URI-M closest to Accept-Datetime, latest memento when the
// header is absent.
func (h *Handlers) timeGate(w http.ResponseWriter, r *http.Request) {
	pageURL := target(r, "/timegate")
	ms, ok := h.index(w, pageURL)
	if !ok {
		return
	}
	i := len(ms) - 1 // no Accept-Datetime: most recent memento
	if adt := r.Header.Get("Accept-Datetime"); adt != "" {
		t, err := httpdate.Parse(adt)
		if err != nil {
			http.Error(w, "Accept-Datetime must be an HTTP-date: "+err.Error(), http.StatusBadRequest)
			return
		}
		i = Negotiate(ms, t)
	}
	res := ResolverFor(r)
	ls := linkSet{sep: ", "}
	ls.add(pageURL, "original")
	ls.add(res.TimeMap(pageURL, 1), "timemap", "type", ContentType)
	ls.add(res.Memento(pageURL, ms[0]), "first memento", "datetime", httpdate.Format(ms[0].Time))
	ls.add(res.Memento(pageURL, ms[len(ms)-1]), "last memento", "datetime", httpdate.Format(ms[len(ms)-1].Time))
	hdr := w.Header()
	hdr.Set("Vary", "accept-datetime")
	hdr.Set("Link", ls.String())
	hdr.Set("Location", res.Memento(pageURL, ms[i]))
	w.WriteHeader(http.StatusFound)
	fmt.Fprintf(w, "see %s\n", res.Memento(pageURL, ms[i]))
}

// timeMap serves one application/link-format page of a URL's memento
// list. The path form carries the page as a leading all-digit segment
// (/timemap/link/2/<url>); page 1 omits it.
func (h *Handlers) timeMap(w http.ResponseWriter, r *http.Request) {
	page := 1
	rest := strings.TrimPrefix(r.URL.Path, "/timemap/link")
	rest = strings.TrimPrefix(rest, "/")
	if seg, tail, found := strings.Cut(rest, "/"); found && isTimestamp(seg) {
		n, err := strconv.Atoi(seg)
		if err != nil || n < 1 {
			http.Error(w, "bad TimeMap page number", http.StatusBadRequest)
			return
		}
		page = n
		r.URL.Path = "/timemap/link/" + tail
	} else if rest == "" {
		if p := r.URL.Query().Get("page"); p != "" {
			n, err := strconv.Atoi(p)
			if err != nil || n < 1 {
				http.Error(w, "bad TimeMap page number", http.StatusBadRequest)
				return
			}
			page = n
		}
	}
	pageURL := target(r, "/timemap/link")
	ms, ok := h.index(w, pageURL)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", ContentType)
	var b strings.Builder
	if err := WriteTimeMap(&b, ResolverFor(r), pageURL, ms, page, h.pageSize()); err != nil {
		if errors.Is(err, ErrNoPage) {
			http.Error(w, err.Error(), http.StatusNotFound)
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	fw := flushwriter.New(w, 0)
	fw.WriteStringChunks(b.String())
}

// memento serves one archived state: /memento/<ts14>/<url>. A
// timestamp between captures negotiates to the closest memento and
// names the canonical URI-M in Content-Location.
func (h *Handlers) memento(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/memento/")
	seg, tail, found := strings.Cut(rest, "/")
	if !found || !isTimestamp(seg) {
		http.Error(w, "want /memento/<YYYYMMDDhhmmss>/<url>", http.StatusBadRequest)
		return
	}
	t, err := ParseTimestamp(seg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	pageURL := tail
	if r.URL.RawQuery != "" {
		pageURL += "?" + r.URL.RawQuery
	}
	pageURL = fixScheme(pageURL)
	ms, ok := h.index(w, pageURL)
	if !ok {
		return
	}
	i := Negotiate(ms, t)
	m := ms[i]
	doc, err := h.Source.Checkout(pageURL, m.Rev)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	res := ResolverFor(r)
	hdr := w.Header()
	hdr.Set("Memento-Datetime", httpdate.Format(m.Time))
	hdr.Set("Link", MementoLinks(res, pageURL, ms, i))
	hdr.Set("Content-Type", "text/html; charset=utf-8")
	if !m.Time.Equal(t) {
		// Negotiated away from the requested instant: name the canonical
		// URI-M so clients can cache under the right key.
		hdr.Set("Content-Location", res.Memento(pageURL, m))
	}
	fw := flushwriter.New(w, 0)
	fw.WriteStringChunks(doc)
}

// diff renders the HtmlDiff between the mementos closest to the from
// and to instants: /memento/diff?url=&from=&to=. Datetimes accept both
// 14-digit timestamps and HTTP-dates; to defaults to the latest
// memento.
func (h *Handlers) diff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pageURL := q.Get("url")
	ms, ok := h.index(w, pageURL)
	if !ok {
		return
	}
	from, err := parseDatetime(q.Get("from"))
	if err != nil {
		http.Error(w, "bad from datetime: "+err.Error(), http.StatusBadRequest)
		return
	}
	fi := Negotiate(ms, from)
	ti := len(ms) - 1
	if v := q.Get("to"); v != "" {
		to, err := parseDatetime(v)
		if err != nil {
			http.Error(w, "bad to datetime: "+err.Error(), http.StatusBadRequest)
			return
		}
		ti = Negotiate(ms, to)
	}
	if fi > ti {
		fi, ti = ti, fi // always diff forward in time
	}
	render, err := h.Source.DiffStream(pageURL, ms[fi].Rev, ms[ti].Rev)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	hdr := w.Header()
	hdr.Set("Memento-Datetime", httpdate.Format(ms[ti].Time))
	hdr.Set("Link", DiffLinks(ResolverFor(r), pageURL, ms, fi, ti))
	hdr.Set("Content-Type", "text/html; charset=utf-8")
	fw := flushwriter.New(w, 0)
	if err := render(fw); err != nil && fw.Written() == 0 {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseDatetime accepts either URI-M timestamp or HTTP-date forms for
// query parameters; empty means "now is unspecified" and is an error —
// callers choose their own defaults before calling.
func parseDatetime(s string) (t time.Time, err error) {
	if s == "" {
		return time.Time{}, errors.New("empty datetime")
	}
	if isTimestamp(s) {
		return ParseTimestamp(s)
	}
	return httpdate.Parse(s)
}
