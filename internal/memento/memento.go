// Package memento implements the Memento framework (RFC 7089,
// "HTTP Framework for Time-Based Access to Resource States" — Van de
// Sompel et al.) over an archive that can list and retrieve dated
// revisions of a URL. The snapshot facility stores every revision of
// every tracked page with its check-in instant; this package is the
// standard read face for that history:
//
//   - a TimeGate per Original Resource, negotiating in the datetime
//     dimension via the Accept-Datetime header (302 to the closest
//     memento, Vary: accept-datetime),
//   - TimeMaps in application/link-format enumerating every memento,
//     paged with self/prev/next links carrying from/until attributes so
//     a URL with millions of revisions never renders one unbounded
//     response, and
//   - Memento-Datetime and Link headers on the mementos themselves,
//     plus an HtmlDiff between any two negotiated mementos.
//
// The package is protocol-pure: it depends on a Source interface for
// the revision index, checkouts, and diff rendering, and on nothing
// from the snapshot layer, so the negotiation state machine, paging
// model, and header grammar are testable against a synthetic archive.
package memento

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ErrNotArchived is the Source error for a URL with no archived
// revisions; handlers map it to 404.
var ErrNotArchived = errors.New("memento: URL not archived")

// Memento is one archived state of an Original Resource: the archive's
// revision identifier and the instant the state was captured
// (Memento-Datetime).
type Memento struct {
	// Rev is the underlying archive's revision number (e.g. "1.3").
	Rev string
	// Time is the capture instant (UTC).
	Time time.Time
}

// Source is the archive the protocol layer negotiates against.
// Implementations must resolve URLs through their own storage layout
// (flat or sharded) — this package never sees file paths.
type Source interface {
	// Index lists a URL's mementos oldest-first. A URL with no archive
	// returns ErrNotArchived (possibly wrapped).
	Index(pageURL string) ([]Memento, error)
	// Checkout returns the archived text of one revision, ready to
	// serve (base-href injection and similar rewriting are the
	// implementation's business).
	Checkout(pageURL, rev string) (string, error)
	// DiffStream prepares an HtmlDiff of two revisions and returns the
	// function that renders it to a writer — the streaming, cache-backed
	// read path.
	DiffStream(pageURL, oldRev, newRev string) (func(w io.Writer) error, error)
}

// Negotiate picks the memento closest in time to t from ms, which must
// be sorted oldest-first. The rules, in order:
//
//   - an exact Time match wins;
//   - t before the first memento clamps to the first, t after the last
//     clamps to the last (RFC 7089 §4.5.3 leaves boundary handling to
//     the server; clamping means every datetime resolves);
//   - otherwise the memento with the smallest |Time−t| wins, with an
//     exact midpoint tie broken toward the earlier memento — the
//     revision that was actually current at t, matching RCS `co -d`
//     semantics.
//
// It returns the index into ms, or -1 when ms is empty.
func Negotiate(ms []Memento, t time.Time) int {
	if len(ms) == 0 {
		return -1
	}
	// First memento strictly after t: ms[i-1].Time <= t < ms[i].Time.
	i := sort.Search(len(ms), func(i int) bool { return ms[i].Time.After(t) })
	if i == 0 {
		return 0 // before the first capture
	}
	if i == len(ms) {
		return len(ms) - 1 // after the last capture
	}
	before := t.Sub(ms[i-1].Time)
	after := ms[i].Time.Sub(t)
	if after < before {
		return i
	}
	return i - 1 // exact matches (before==0) and midpoint ties go earlier
}

// timestampLayout is the URI-M datetime form: the 14-digit
// YYYYMMDDhhmmss convention web archives embed in memento URIs.
const timestampLayout = "20060102150405"

// FormatTimestamp renders t as the 14-digit URI-M timestamp.
func FormatTimestamp(t time.Time) string {
	return t.UTC().Format(timestampLayout)
}

// ParseTimestamp parses a URI-M timestamp: 4 to 14 digits, partial
// values padded to the period's start ("1996" means 1996-01-01
// 00:00:00, "199606031200" means 1996-06-03 12:00:00).
func ParseTimestamp(s string) (time.Time, error) {
	if len(s) < 4 || len(s) > 14 || len(s)%2 != 0 {
		return time.Time{}, fmt.Errorf("memento: bad timestamp %q (want 4-14 digits)", s)
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return time.Time{}, fmt.Errorf("memento: bad timestamp %q (want digits)", s)
		}
	}
	const pad = "00010101000000" // zero-value layout tail: month/day default to 01
	full := s + pad[len(s):]
	t, err := time.Parse(timestampLayout, full)
	if err != nil {
		return time.Time{}, fmt.Errorf("memento: bad timestamp %q: %v", s, err)
	}
	return t, nil
}

// isTimestamp reports whether a path segment looks like a URI-M
// timestamp (all digits) rather than the leading segment of an
// embedded URL.
func isTimestamp(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// fixScheme undoes net/http path cleaning on an embedded URL:
// ServeMux's canonicalisation collapses the "//" after the scheme
// ("/timegate/http://h/p" redirects to "/timegate/http:/h/p"), so a
// client that followed the 301 arrives with a single slash.
func fixScheme(u string) string {
	for _, scheme := range [...]string{"http", "https"} {
		p := scheme + ":/"
		if strings.HasPrefix(u, p) && !strings.HasPrefix(u, p+"/") {
			return p + "/" + u[len(p):]
		}
	}
	return u
}
