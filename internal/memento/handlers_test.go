package memento

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"aide/internal/httpdate"
)

// fakeSource is a synthetic archive: an in-memory index plus canned
// checkout/diff bodies, so handler tests exercise the protocol layer
// against histories of any size without touching disk.
type fakeSource struct {
	pages map[string][]Memento
	diffs []string
}

func (f *fakeSource) Index(u string) ([]Memento, error) {
	ms, ok := f.pages[u]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotArchived, u)
	}
	return ms, nil
}

func (f *fakeSource) Checkout(u, rev string) (string, error) {
	return "doc " + u + " " + rev, nil
}

func (f *fakeSource) DiffStream(u, oldRev, newRev string) (func(io.Writer) error, error) {
	f.diffs = append(f.diffs, oldRev+"->"+newRev)
	return func(w io.Writer) error {
		_, err := io.WriteString(w, "diff "+oldRev+" "+newRev)
		return err
	}, nil
}

// genIndex builds n mementos an hour apart starting 1996-01-01 00:00.
func genIndex(n int) []Memento {
	base := time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC)
	ms := make([]Memento, n)
	for i := range ms {
		ms[i] = Memento{Rev: fmt.Sprintf("1.%d", i+1), Time: base.Add(time.Duration(i) * time.Hour)}
	}
	return ms
}

const testURL = "http://example.com/a"

func newTestServer(t *testing.T, src *fakeSource, pageSize int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	(&Handlers{Source: src, PageSize: pageSize}).Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// noRedirect returns a client that surfaces 3xx responses instead of
// following them.
func noRedirect() *http.Client {
	return &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
}

// link is one parsed application/link-format entry.
type link struct {
	uri   string
	attrs map[string]string
}

// parseLinks parses link-format text (TimeMap bodies and Link header
// values share the grammar). Commas inside quoted strings — HTTP-dates
// carry one — do not split entries.
func parseLinks(t *testing.T, s string) []link {
	t.Helper()
	var out []link
	var cur strings.Builder
	inQuote := false
	flush := func() {
		entry := strings.TrimSpace(cur.String())
		cur.Reset()
		if entry == "" {
			return
		}
		if entry[0] != '<' {
			t.Fatalf("link entry %q does not start with <uri>", entry)
		}
		end := strings.IndexByte(entry, '>')
		if end < 0 {
			t.Fatalf("link entry %q has unterminated uri", entry)
		}
		l := link{uri: entry[1:end], attrs: map[string]string{}}
		for _, part := range strings.Split(entry[end+1:], ";") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			k, v, ok := strings.Cut(part, "=")
			if !ok {
				t.Fatalf("link attr %q in %q is not key=value", part, entry)
			}
			l.attrs[k] = strings.Trim(v, `"`)
		}
		out = append(out, l)
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

// rels indexes parsed links by their rel value.
func rels(ls []link) map[string][]link {
	m := map[string][]link{}
	for _, l := range ls {
		m[l.attrs["rel"]] = append(m[l.attrs["rel"]], l)
	}
	return m
}

func TestTimeGateNegotiation(t *testing.T) {
	ms := genIndex(5)
	src := &fakeSource{pages: map[string][]Memento{testURL: ms}}
	ts := newTestServer(t, src, 0)
	client := noRedirect()

	get := func(acceptDatetime string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+"/timegate?url="+testURL, nil)
		if acceptDatetime != "" {
			req.Header.Set("Accept-Datetime", acceptDatetime)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// No Accept-Datetime: latest memento.
	resp := get("")
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("status = %d, want 302", resp.StatusCode)
	}
	if v := resp.Header.Get("Vary"); !strings.EqualFold(v, "accept-datetime") {
		t.Errorf("Vary = %q, want accept-datetime", v)
	}
	wantLoc := "/memento/" + FormatTimestamp(ms[4].Time) + "/" + testURL
	if loc := resp.Header.Get("Location"); !strings.HasSuffix(loc, wantLoc) {
		t.Errorf("Location = %q, want suffix %q", loc, wantLoc)
	}
	lr := rels(parseLinks(t, resp.Header.Get("Link")))
	if len(lr["original"]) != 1 || lr["original"][0].uri != testURL {
		t.Errorf("Link original = %+v", lr["original"])
	}
	if len(lr["timemap"]) != 1 || lr["timemap"][0].attrs["type"] != ContentType {
		t.Errorf("Link timemap = %+v", lr["timemap"])
	}
	for _, rel := range []string{"first memento", "last memento"} {
		if len(lr[rel]) != 1 {
			t.Errorf("Link %q missing: %+v", rel, lr)
			continue
		}
		if _, err := httpdate.Parse(lr[rel][0].attrs["datetime"]); err != nil {
			t.Errorf("Link %q datetime %q: %v", rel, lr[rel][0].attrs["datetime"], err)
		}
	}

	// Accept-Datetime negotiates to the closest memento.
	resp = get(httpdate.Format(ms[2].Time.Add(10 * time.Minute)))
	wantLoc = "/memento/" + FormatTimestamp(ms[2].Time) + "/" + testURL
	if loc := resp.Header.Get("Location"); !strings.HasSuffix(loc, wantLoc) {
		t.Errorf("negotiated Location = %q, want suffix %q", loc, wantLoc)
	}

	// Before the first capture clamps to the first memento.
	resp = get("Mon, 01 Jan 1990 00:00:00 GMT")
	wantLoc = "/memento/" + FormatTimestamp(ms[0].Time) + "/" + testURL
	if loc := resp.Header.Get("Location"); !strings.HasSuffix(loc, wantLoc) {
		t.Errorf("clamped Location = %q, want suffix %q", loc, wantLoc)
	}

	// Unparseable Accept-Datetime is the client's error.
	if resp = get("not a date"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad Accept-Datetime status = %d, want 400", resp.StatusCode)
	}
}

func TestTimeGatePathFormFollowsThrough(t *testing.T) {
	ms := genIndex(3)
	src := &fakeSource{pages: map[string][]Memento{testURL: ms}}
	ts := newTestServer(t, src, 0)

	// The path-embedded form rides through ServeMux path cleaning (301)
	// and the TimeGate 302 to land on the memento itself.
	req, _ := http.NewRequest("GET", ts.URL+"/timegate/"+testURL, nil)
	req.Header.Set("Accept-Datetime", httpdate.Format(ms[1].Time))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %q", resp.StatusCode, body)
	}
	if want := "doc " + testURL + " 1.2"; string(body) != want {
		t.Errorf("body = %q, want %q", body, want)
	}
	if resp.Header.Get("Memento-Datetime") != httpdate.Format(ms[1].Time) {
		t.Errorf("Memento-Datetime = %q", resp.Header.Get("Memento-Datetime"))
	}
}

func TestTimeGateNotArchived(t *testing.T) {
	ts := newTestServer(t, &fakeSource{pages: map[string][]Memento{}}, 0)
	resp, err := noRedirect().Get(ts.URL + "/timegate?url=http://nowhere.invalid/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestMementoHeaders(t *testing.T) {
	ms := genIndex(3)
	src := &fakeSource{pages: map[string][]Memento{testURL: ms}}
	ts := newTestServer(t, src, 0)

	resp, err := http.Get(ts.URL + "/memento/" + FormatTimestamp(ms[1].Time) + "/" + testURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if want := "doc " + testURL + " 1.2"; string(body) != want {
		t.Errorf("body = %q, want %q", body, want)
	}
	if got := resp.Header.Get("Memento-Datetime"); got != httpdate.Format(ms[1].Time) {
		t.Errorf("Memento-Datetime = %q, want %q", got, httpdate.Format(ms[1].Time))
	}
	if resp.Header.Get("Content-Location") != "" {
		t.Errorf("canonical URI-M should not carry Content-Location")
	}
	lr := rels(parseLinks(t, resp.Header.Get("Link")))
	for _, rel := range []string{"original", "timegate", "timemap", "prev memento", "next memento", "memento"} {
		if len(lr[rel]) != 1 {
			t.Errorf("Link %q count = %d, want 1 (%+v)", rel, len(lr[rel]), lr)
		}
	}
	if u := lr["prev memento"][0].uri; !strings.Contains(u, FormatTimestamp(ms[0].Time)) {
		t.Errorf("prev memento uri = %q", u)
	}
	if u := lr["next memento"][0].uri; !strings.Contains(u, FormatTimestamp(ms[2].Time)) {
		t.Errorf("next memento uri = %q", u)
	}

	// A timestamp between captures serves the negotiated memento and
	// names its canonical URI-M.
	resp, err = http.Get(ts.URL + "/memento/" + FormatTimestamp(ms[1].Time.Add(time.Minute)) + "/" + testURL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Memento-Datetime"); got != httpdate.Format(ms[1].Time) {
		t.Errorf("negotiated Memento-Datetime = %q", got)
	}
	if cl := resp.Header.Get("Content-Location"); !strings.Contains(cl, FormatTimestamp(ms[1].Time)) {
		t.Errorf("Content-Location = %q, want canonical URI-M", cl)
	}

	// Partial timestamps resolve too.
	resp, err = http.Get(ts.URL + "/memento/1996/" + testURL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("partial timestamp status = %d", resp.StatusCode)
	}
}

func TestMementoPreservesTargetQuery(t *testing.T) {
	queryURL := "http://example.com/a?x=1"
	src := &fakeSource{pages: map[string][]Memento{queryURL: genIndex(2)}}
	ts := newTestServer(t, src, 0)
	resp, err := http.Get(ts.URL + "/memento/19960101000000/" + queryURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %q", resp.StatusCode, body)
	}
	if want := "doc " + queryURL + " 1.1"; string(body) != want {
		t.Errorf("body = %q, want %q", body, want)
	}
}

func TestTimeMapSmall(t *testing.T) {
	ms := genIndex(4)
	src := &fakeSource{pages: map[string][]Memento{testURL: ms}}
	ts := newTestServer(t, src, 0)

	resp, err := http.Get(ts.URL + "/timemap/link?url=" + testURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	lr := rels(parseLinks(t, string(body)))
	if len(lr["original"]) != 1 || lr["original"][0].uri != testURL {
		t.Errorf("original link = %+v", lr["original"])
	}
	if len(lr["timegate"]) != 1 {
		t.Errorf("timegate link missing")
	}
	self := lr["self"]
	if len(self) != 1 {
		t.Fatalf("self link count = %d", len(self))
	}
	if self[0].attrs["from"] != httpdate.Format(ms[0].Time) || self[0].attrs["until"] != httpdate.Format(ms[3].Time) {
		t.Errorf("self from/until = %q/%q", self[0].attrs["from"], self[0].attrs["until"])
	}
	if len(lr["prev"]) != 0 || len(lr["next"]) != 0 {
		t.Errorf("single-page TimeMap has prev/next: %+v", lr)
	}
	if len(lr["first memento"]) != 1 || len(lr["last memento"]) != 1 || len(lr["memento"]) != 2 {
		t.Errorf("memento link counts: first=%d last=%d plain=%d",
			len(lr["first memento"]), len(lr["last memento"]), len(lr["memento"]))
	}
}

func TestTimeMapSingleMemento(t *testing.T) {
	src := &fakeSource{pages: map[string][]Memento{testURL: genIndex(1)}}
	ts := newTestServer(t, src, 0)
	resp, err := http.Get(ts.URL + "/timemap/link?url=" + testURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lr := rels(parseLinks(t, string(body)))
	if len(lr["first last memento"]) != 1 {
		t.Errorf(`single-memento TimeMap wants rel="first last memento": %+v`, lr)
	}
}

// TestTimeMapPagingRoundTrip generates a 10,500-revision history and
// walks the paged TimeMap like a Memento client: fetch page 1, follow
// rel="next" until it disappears, and check the union reconstructs the
// full index exactly.
func TestTimeMapPagingRoundTrip(t *testing.T) {
	const n, pageSize = 10500, 500
	ms := genIndex(n)
	src := &fakeSource{pages: map[string][]Memento{testURL: ms}}
	ts := newTestServer(t, src, pageSize)

	wantPages := PageCount(n, pageSize)
	if wantPages != 21 {
		t.Fatalf("PageCount = %d, want 21", wantPages)
	}

	type entry struct {
		uri string
		ts  time.Time
	}
	seen := map[string]entry{}
	next := ts.URL + "/timemap/link?url=" + testURL
	pages := 0
	for next != "" {
		resp, err := http.Get(next)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page %d status = %d", pages+1, resp.StatusCode)
		}
		pages++
		lr := rels(parseLinks(t, string(body)))
		if len(lr["self"]) != 1 {
			t.Fatalf("page %d: self link count = %d", pages, len(lr["self"]))
		}
		if pages > 1 && len(lr["prev"]) != 1 {
			t.Errorf("page %d: missing prev link", pages)
		}
		for _, rel := range []string{"memento", "first memento", "last memento", "first last memento"} {
			for _, l := range lr[rel] {
				dt, err := httpdate.Parse(l.attrs["datetime"])
				if err != nil {
					t.Fatalf("memento link %q datetime: %v", l.uri, err)
				}
				seen[l.uri] = entry{uri: l.uri, ts: dt}
			}
		}
		next = ""
		if nl := lr["next"]; len(nl) == 1 {
			if nl[0].attrs["from"] == "" || nl[0].attrs["until"] == "" {
				t.Errorf("page %d: next link lacks from/until", pages)
			}
			next = nl[0].uri
		}
	}
	if pages != wantPages {
		t.Errorf("walked %d pages, want %d", pages, wantPages)
	}
	if len(seen) != n {
		t.Fatalf("reconstructed %d mementos, want %d", len(seen), n)
	}
	got := make([]entry, 0, n)
	for _, e := range seen {
		got = append(got, e)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].ts.Before(got[j].ts) })
	for i, e := range got {
		if !e.ts.Equal(ms[i].Time) {
			t.Fatalf("memento %d time = %v, want %v", i, e.ts, ms[i].Time)
		}
		if want := FormatTimestamp(ms[i].Time); !strings.Contains(e.uri, "/memento/"+want+"/") {
			t.Fatalf("memento %d uri = %q, want timestamp %s", i, e.uri, want)
		}
	}
}

func TestTimeMapPathFormWithPage(t *testing.T) {
	const n, pageSize = 1200, 500
	src := &fakeSource{pages: map[string][]Memento{testURL: genIndex(n)}}
	ts := newTestServer(t, src, pageSize)

	resp, err := http.Get(ts.URL + "/timemap/link/3/" + testURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %q", resp.StatusCode, body)
	}
	lr := rels(parseLinks(t, string(body)))
	// Page 3 of 3 holds mementos 1001..1200: 199 plain + the global last.
	if len(lr["memento"]) != 199 || len(lr["last memento"]) != 1 {
		t.Errorf("page 3 counts: memento=%d last=%d", len(lr["memento"]), len(lr["last memento"]))
	}
	if len(lr["next"]) != 0 {
		t.Errorf("final page has next link")
	}

	// Pages outside the map 404.
	resp, err = http.Get(ts.URL + "/timemap/link/4/" + testURL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("overflow page status = %d, want 404", resp.StatusCode)
	}
}

func TestDiffHandler(t *testing.T) {
	ms := genIndex(5)
	src := &fakeSource{pages: map[string][]Memento{testURL: ms}}
	ts := newTestServer(t, src, 0)

	get := func(query string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/memento/diff?" + query)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// from/to as 14-digit timestamps; to defaults to latest.
	resp, body := get("url=" + testURL + "&from=" + FormatTimestamp(ms[1].Time))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %q", resp.StatusCode, body)
	}
	if body != "diff 1.2 1.5" {
		t.Errorf("body = %q, want diff 1.2 1.5", body)
	}
	if got := resp.Header.Get("Memento-Datetime"); got != httpdate.Format(ms[4].Time) {
		t.Errorf("Memento-Datetime = %q", got)
	}
	lr := rels(parseLinks(t, resp.Header.Get("Link")))
	if len(lr["memento"]) != 2 {
		t.Errorf("diff Link mementos = %d, want 2", len(lr["memento"]))
	}

	// HTTP-date forms negotiate too, and reversed bounds are reordered.
	_, body = get("url=" + testURL +
		"&from=" + strings.ReplaceAll(httpdate.Format(ms[3].Time), " ", "%20") +
		"&to=" + strings.ReplaceAll(httpdate.Format(ms[0].Time), " ", "%20"))
	if body != "diff 1.1 1.4" {
		t.Errorf("reversed bounds body = %q, want diff 1.1 1.4", body)
	}

	// Missing from is the client's error.
	if resp, _ = get("url=" + testURL); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing from status = %d, want 400", resp.StatusCode)
	}
	// Unknown URL 404s before datetime validation.
	if resp, _ = get("url=http://nowhere.invalid/&from=1996"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown url status = %d, want 404", resp.StatusCode)
	}
}
