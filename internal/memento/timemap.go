package memento

import (
	"fmt"
	"io"
	"strings"

	"aide/internal/httpdate"
)

// ContentType is the media type of a TimeMap body (RFC 6690
// application/link-format, as profiled by RFC 7089 §5).
const ContentType = "application/link-format"

// DefaultPageSize is the memento count per TimeMap page when the
// operator does not configure one.
const DefaultPageSize = 500

// Resolver mints the URIs this archive uses for the Memento roles of a
// page. Base is the external scheme://host prefix; empty produces
// host-relative URIs, which is what handlers fall back to when a
// request carries no Host.
type Resolver struct {
	Base string
}

// TimeGate returns the URI-G for a page (query form, safe under
// ServeMux path cleaning).
func (r Resolver) TimeGate(pageURL string) string {
	return r.Base + "/timegate?url=" + escapeQuery(pageURL)
}

// TimeMap returns the URI-T of one TimeMap page (1-based).
func (r Resolver) TimeMap(pageURL string, page int) string {
	u := r.Base + "/timemap/link?url=" + escapeQuery(pageURL)
	if page > 1 {
		u += fmt.Sprintf("&page=%d", page)
	}
	return u
}

// Memento returns the URI-M of the state captured at t: the 14-digit
// timestamp path form, so the capture instant is readable in the URI
// itself.
func (r Resolver) Memento(pageURL string, t Memento) string {
	return r.Base + "/memento/" + FormatTimestamp(t.Time) + "/" + pageURL
}

// escapeQuery percent-escapes the characters that would corrupt a URL
// embedded in a query string (matches the snapshot server's own form
// rendering; kept minimal so archived URLs stay human-readable).
func escapeQuery(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "&", "%26")
	s = strings.ReplaceAll(s, "+", "%2B")
	s = strings.ReplaceAll(s, "#", "%23")
	s = strings.ReplaceAll(s, " ", "%20")
	return s
}

// linkSet accumulates RFC 6690 links; sep distinguishes the TimeMap
// body form (",\n" — one link per line) from the Link header form
// (", ").
type linkSet struct {
	b   strings.Builder
	sep string
}

// add appends one link. attrs are flat key/value pairs; values are
// emitted as quoted-strings.
func (l *linkSet) add(uri, rel string, attrs ...string) {
	if l.b.Len() > 0 {
		l.b.WriteString(l.sep)
	}
	fmt.Fprintf(&l.b, "<%s>;rel=%q", uri, rel)
	for i := 0; i+1 < len(attrs); i += 2 {
		fmt.Fprintf(&l.b, ";%s=%q", attrs[i], attrs[i+1])
	}
}

func (l *linkSet) String() string { return l.b.String() }

// PageCount returns how many TimeMap pages n mementos occupy at the
// given page size (at least 1 — an archived URL always has one page).
func PageCount(n, pageSize int) int {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	pages := (n + pageSize - 1) / pageSize
	if pages < 1 {
		pages = 1
	}
	return pages
}

// ErrNoPage is returned by WriteTimeMap for a page number outside
// [1, PageCount]; handlers map it to 404.
var ErrNoPage = fmt.Errorf("memento: no such TimeMap page")

// WriteTimeMap renders one page of a URL's TimeMap in
// application/link-format. ms must be oldest-first. Every page carries
// the original/timegate relations, a self link with the page's
// from/until datetime range, prev/next links to neighbouring pages
// (with their ranges, so clients can seek without fetching), the
// archive-wide first and last mementos, and a memento link per entry
// in the page's window.
func WriteTimeMap(w io.Writer, res Resolver, pageURL string, ms []Memento, page, pageSize int) error {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	pages := PageCount(len(ms), pageSize)
	if page < 1 || page > pages {
		return fmt.Errorf("%w: page %d of %d", ErrNoPage, page, pages)
	}
	lo := (page - 1) * pageSize
	hi := lo + pageSize
	if hi > len(ms) {
		hi = len(ms)
	}
	window := ms[lo:hi]

	ls := linkSet{sep: ",\n"}
	ls.add(pageURL, "original")
	ls.add(res.TimeGate(pageURL), "timegate")
	self := []string{"type", ContentType}
	if len(window) > 0 {
		self = append(self,
			"from", httpdate.Format(window[0].Time),
			"until", httpdate.Format(window[len(window)-1].Time))
	}
	ls.add(res.TimeMap(pageURL, page), "self", self...)
	if page > 1 {
		plo := (page - 2) * pageSize
		prev := ms[plo : plo+pageSize]
		ls.add(res.TimeMap(pageURL, page-1), "prev",
			"type", ContentType,
			"from", httpdate.Format(prev[0].Time),
			"until", httpdate.Format(prev[len(prev)-1].Time))
	}
	if page < pages {
		next := ms[hi:min(hi+pageSize, len(ms))]
		ls.add(res.TimeMap(pageURL, page+1), "next",
			"type", ContentType,
			"from", httpdate.Format(next[0].Time),
			"until", httpdate.Format(next[len(next)-1].Time))
	}
	for i, m := range window {
		rel := "memento"
		switch g := lo + i; {
		case len(ms) == 1:
			rel = "first last memento"
		case g == 0:
			rel = "first memento"
		case g == len(ms)-1:
			rel = "last memento"
		}
		ls.add(res.Memento(pageURL, m), rel, "datetime", httpdate.Format(m.Time))
	}
	// Pages that do not contain the archive boundaries still link them,
	// so any single page identifies the URL's full temporal extent.
	if len(ms) > 1 {
		if lo > 0 {
			ls.add(res.Memento(pageURL, ms[0]), "first memento",
				"datetime", httpdate.Format(ms[0].Time))
		}
		if hi < len(ms) {
			ls.add(res.Memento(pageURL, ms[len(ms)-1]), "last memento",
				"datetime", httpdate.Format(ms[len(ms)-1].Time))
		}
	}
	_, err := io.WriteString(w, ls.String()+"\n")
	return err
}
