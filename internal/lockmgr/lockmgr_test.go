package lockmgr

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestLockUnlockBasic(t *testing.T) {
	m := New(t.TempDir())
	unlock, err := m.Lock("http://example.com/page")
	if err != nil {
		t.Fatal(err)
	}
	unlock()
	// Re-acquire after unlock must succeed immediately.
	unlock2, err := m.Lock("http://example.com/page")
	if err != nil {
		t.Fatal(err)
	}
	unlock2()
}

func TestUnlockIdempotent(t *testing.T) {
	m := New(t.TempDir())
	unlock, err := m.Lock("k")
	if err != nil {
		t.Fatal(err)
	}
	unlock()
	unlock() // second call must be a no-op, not a panic or double-unlock
	if _, err := m.Lock("k"); err != nil {
		t.Fatal(err)
	}
}

func TestMutualExclusionSameKey(t *testing.T) {
	m := New(t.TempDir())
	const goroutines = 16
	var counter, max int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			unlock, err := m.Lock("shared")
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			counter++
			if counter > max {
				max = counter
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			counter--
			mu.Unlock()
			unlock()
		}()
	}
	wg.Wait()
	if max != 1 {
		t.Errorf("max concurrent holders = %d, want 1", max)
	}
}

func TestDifferentKeysIndependent(t *testing.T) {
	m := New(t.TempDir())
	u1, err := m.Lock("key-a")
	if err != nil {
		t.Fatal(err)
	}
	defer u1()
	// A different key must not block.
	done := make(chan struct{})
	go func() {
		u2, err := m.Lock("key-b")
		if err == nil {
			u2()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("independent key blocked")
	}
}

func TestTryLockContention(t *testing.T) {
	m := New(t.TempDir())
	unlock, err := m.Lock("k")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.TryLock("k"); ok {
		t.Fatal("TryLock succeeded while held")
	}
	unlock()
	u2, ok, err := m.TryLock("k")
	if err != nil || !ok {
		t.Fatalf("TryLock after release: ok=%v err=%v", ok, err)
	}
	u2()
}

func TestStaleLockBroken(t *testing.T) {
	dir := t.TempDir()
	m := New(dir)
	m.StaleAfter = 50 * time.Millisecond
	m.AcquireTimeout = 2 * time.Second

	// Simulate a crashed process: plant a lock file by hand.
	path, err := m.lockFile("k")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("99999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}

	unlock, err := m.Lock("k")
	if err != nil {
		t.Fatalf("stale lock not broken: %v", err)
	}
	unlock()
}

func TestAcquireTimeout(t *testing.T) {
	dir := t.TempDir()
	// Two managers simulate two processes sharing the lock directory.
	m1 := New(dir)
	m2 := New(dir)
	m2.AcquireTimeout = 100 * time.Millisecond
	m2.StaleAfter = time.Hour

	unlock, err := m1.Lock("k")
	if err != nil {
		t.Fatal(err)
	}
	defer unlock()
	start := time.Now()
	if _, err := m2.Lock("k"); err == nil {
		t.Fatal("cross-process lock acquired while held")
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Error("timed out too early")
	}
}

func TestCrossProcessHandoff(t *testing.T) {
	dir := t.TempDir()
	m1 := New(dir)
	m2 := New(dir)
	unlock, err := m1.Lock("k")
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		u, err := m2.Lock("k")
		if err == nil {
			u()
		}
		acquired <- err
	}()
	time.Sleep(50 * time.Millisecond)
	unlock()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("second process failed to acquire after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second process never acquired")
	}
}

func TestEntryMapDoesNotLeak(t *testing.T) {
	m := New(t.TempDir())
	for i := 0; i < 100; i++ {
		unlock, err := m.Lock(string(rune('a' + i%26)))
		if err != nil {
			t.Fatal(err)
		}
		unlock()
	}
	m.mu.Lock()
	n := len(m.locks)
	m.mu.Unlock()
	if n != 0 {
		t.Errorf("entry map holds %d idle entries, want 0", n)
	}
}

func TestLockFilesRemovedOnUnlock(t *testing.T) {
	dir := t.TempDir()
	m := New(dir)
	unlock, err := m.Lock("k")
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.lock"))
	if len(files) != 1 {
		t.Fatalf("want 1 lock file while held, got %d", len(files))
	}
	unlock()
	files, _ = filepath.Glob(filepath.Join(dir, "*.lock"))
	if len(files) != 0 {
		t.Errorf("lock file left behind after unlock: %v", files)
	}
}

func TestLockDirectoryCreationFailure(t *testing.T) {
	// A file where the lock directory should be makes MkdirAll fail.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "locks")
	if err := os.WriteFile(blocker, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := New(blocker)
	if _, err := m.Lock("k"); err == nil {
		t.Fatal("lock with unusable directory succeeded")
	}
	if _, ok, err := m.TryLock("k"); ok || err == nil {
		t.Fatalf("trylock with unusable directory: ok=%v err=%v", ok, err)
	}
}

func TestTryLockCrossProcessContention(t *testing.T) {
	dir := t.TempDir()
	m1, m2 := New(dir), New(dir)
	unlock, err := m1.Lock("k")
	if err != nil {
		t.Fatal(err)
	}
	defer unlock()
	// The other "process" cannot TryLock while the file is held.
	if _, ok, err := m2.TryLock("k"); ok || err != nil {
		t.Fatalf("cross-process TryLock: ok=%v err=%v", ok, err)
	}
}

func TestFreshLockNotBrokenAsStale(t *testing.T) {
	dir := t.TempDir()
	m1 := New(dir)
	m2 := New(dir)
	m2.StaleAfter = time.Hour
	m2.AcquireTimeout = 80 * time.Millisecond
	unlock, err := m1.Lock("k")
	if err != nil {
		t.Fatal(err)
	}
	defer unlock()
	if _, err := m2.Lock("k"); err == nil {
		t.Fatal("fresh lock was stolen")
	}
	// The holder's lock file must still exist (not broken).
	files, _ := filepath.Glob(filepath.Join(dir, "*.lock"))
	if len(files) != 1 {
		t.Fatalf("lock files = %v", files)
	}
}
