// Package lockmgr provides the per-key mutual exclusion the snapshot
// facility needs (§4.2): one lock per URL around repository operations
// and one lock per user around control-file updates.
//
// A Manager combines an in-process queue (goroutines waiting on the same
// key block on a shared mutex, so simultaneous requests for the same page
// are serialised rather than duplicated) with an on-disk lock file that
// excludes other processes, in the spirit of the paper's "UNIX file
// locking on both a per-URL lock file and the per-user control file".
// Lock files older than StaleAfter are considered abandoned by a crashed
// process and are broken.
package lockmgr

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// Default tuning; overridable per Manager.
const (
	// DefaultStaleAfter is how old a lock file must be before it is
	// presumed abandoned and broken.
	DefaultStaleAfter = 5 * time.Minute
	// DefaultAcquireTimeout bounds how long Lock waits for another
	// process before giving up.
	DefaultAcquireTimeout = 30 * time.Second
	// pollInterval is the retry cadence while another process holds the
	// file lock.
	pollInterval = 10 * time.Millisecond
)

// Manager hands out per-key locks backed by lock files under Dir.
type Manager struct {
	dir string
	// StaleAfter is the age at which a lock file is broken.
	StaleAfter time.Duration
	// AcquireTimeout bounds Lock's wait for the on-disk lock.
	AcquireTimeout time.Duration

	mu    sync.Mutex
	locks map[string]*entry
}

type entry struct {
	mu   sync.Mutex
	refs int
}

// New returns a Manager storing lock files under dir (created on demand).
func New(dir string) *Manager {
	return &Manager{
		dir:            dir,
		StaleAfter:     DefaultStaleAfter,
		AcquireTimeout: DefaultAcquireTimeout,
		locks:          make(map[string]*entry),
	}
}

// Lock acquires the lock for key, blocking in-process waiters and
// contending with other processes through the lock file. It returns an
// unlock function, which must be called exactly once.
func (m *Manager) Lock(key string) (unlock func(), err error) {
	e := m.acquireEntry(key)
	e.mu.Lock()
	path, err := m.lockFile(key)
	if err != nil {
		e.mu.Unlock()
		m.releaseEntry(key)
		return nil, err
	}
	deadline := time.Now().Add(m.AcquireTimeout)
	for {
		ok, ferr := m.tryLockFile(path)
		if ferr != nil {
			e.mu.Unlock()
			m.releaseEntry(key)
			return nil, ferr
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			e.mu.Unlock()
			m.releaseEntry(key)
			return nil, fmt.Errorf("lockmgr: timed out waiting for %q", key)
		}
		time.Sleep(pollInterval)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			os.Remove(path)
			e.mu.Unlock()
			m.releaseEntry(key)
		})
	}, nil
}

// TryLock attempts to acquire the lock without blocking. It returns
// ok=false if some other holder (in-process or on disk) has it.
func (m *Manager) TryLock(key string) (unlock func(), ok bool, err error) {
	e := m.acquireEntry(key)
	if !e.mu.TryLock() {
		m.releaseEntry(key)
		return nil, false, nil
	}
	path, err := m.lockFile(key)
	if err != nil {
		e.mu.Unlock()
		m.releaseEntry(key)
		return nil, false, err
	}
	got, err := m.tryLockFile(path)
	if err != nil || !got {
		e.mu.Unlock()
		m.releaseEntry(key)
		return nil, false, err
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			os.Remove(path)
			e.mu.Unlock()
			m.releaseEntry(key)
		})
	}, true, nil
}

// acquireEntry bumps the refcount on the per-key in-process entry.
func (m *Manager) acquireEntry(key string) *entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.locks[key]
	if !ok {
		e = &entry{}
		m.locks[key] = e
	}
	e.refs++
	return e
}

// releaseEntry drops the refcount, deleting idle entries so the map does
// not grow without bound across many URLs.
func (m *Manager) releaseEntry(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.locks[key]
	if e == nil {
		return
	}
	e.refs--
	if e.refs <= 0 {
		delete(m.locks, key)
	}
}

// lockFile returns the lock file path for key, creating the directory.
func (m *Manager) lockFile(key string) (string, error) {
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		return "", err
	}
	sum := sha1.Sum([]byte(key))
	return filepath.Join(m.dir, hex.EncodeToString(sum[:])+".lock"), nil
}

// tryLockFile attempts to create the lock file exclusively, breaking it
// first if it is stale.
func (m *Manager) tryLockFile(path string) (bool, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err == nil {
		fmt.Fprintf(f, "%s\n", strconv.Itoa(os.Getpid()))
		f.Close()
		return true, nil
	}
	if !os.IsExist(err) {
		return false, err
	}
	fi, serr := os.Stat(path)
	if serr != nil {
		// Raced with the holder's unlock; retry on the next poll.
		return false, nil
	}
	if time.Since(fi.ModTime()) > m.StaleAfter {
		// Abandoned lock from a crashed process: break it. A race here
		// at worst removes a lock file created a poll ago; the O_EXCL
		// create below (next iteration) re-arbitrates.
		os.Remove(path)
	}
	return false, nil
}
