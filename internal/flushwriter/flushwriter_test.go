package flushwriter

import (
	"errors"
	"strings"
	"testing"
)

// sink is a writer with optional flush support and a programmable
// failure point.
type sink struct {
	buf     strings.Builder
	flushes int
	failAt  int // fail writes once total bytes reach this (0 = never)
}

func (s *sink) Write(p []byte) (int, error) {
	if s.failAt > 0 && s.buf.Len()+len(p) > s.failAt {
		return 0, errors.New("client hung up")
	}
	return s.buf.Write(p)
}

// flushSink adds http.Flusher.
type flushSink struct{ sink }

func (f *flushSink) Flush() { f.flushes++ }

func TestWriteForwardsAndCounts(t *testing.T) {
	var s sink
	w := New(&s, 0)
	w.Write([]byte("hello "))
	w.WriteString("world")
	if s.buf.String() != "hello world" {
		t.Errorf("dst = %q", s.buf.String())
	}
	if w.Written() != 11 {
		t.Errorf("Written = %d, want 11", w.Written())
	}
	if w.Err() != nil {
		t.Errorf("Err = %v", w.Err())
	}
}

func TestThresholdFlush(t *testing.T) {
	var f flushSink
	w := New(&f, 10)
	w.WriteString("123456") // below threshold: no flush
	if f.flushes != 0 {
		t.Fatalf("flushed before threshold: %d", f.flushes)
	}
	w.WriteString("789012") // crosses 10 bytes
	if f.flushes != 1 {
		t.Errorf("flushes = %d, want 1", f.flushes)
	}
	// The counter reset: another small write stays buffered.
	w.WriteString("ab")
	if f.flushes != 1 {
		t.Errorf("flushes after reset = %d, want 1", f.flushes)
	}
	// Explicit mid-stream Flush pushes the pending bytes once.
	w.Flush()
	w.Flush() // nothing pending: no second flush
	if f.flushes != 2 {
		t.Errorf("flushes after explicit Flush = %d, want 2", f.flushes)
	}
}

func TestNoFlusherIsNoop(t *testing.T) {
	var s sink
	w := New(&s, 1)
	w.WriteString("plenty of bytes, nothing to flush to")
	w.Flush() // must not panic or error
	if w.Err() != nil {
		t.Errorf("Err = %v", w.Err())
	}
}

func TestStickyError(t *testing.T) {
	s := sink{failAt: 5}
	w := New(&s, 0)
	if _, err := w.WriteString("1234"); err != nil {
		t.Fatalf("write under the failure point errored: %v", err)
	}
	if _, err := w.WriteString("5678"); err == nil {
		t.Fatal("write past the failure point succeeded")
	}
	// Every later write is a cheap no-op returning the same error.
	before := s.buf.String()
	if _, err := w.WriteString("more"); err == nil {
		t.Error("sticky error cleared")
	}
	if s.buf.String() != before {
		t.Error("write after sticky error reached the destination")
	}
	if w.Written() != 4 {
		t.Errorf("Written = %d, want the 4 delivered bytes", w.Written())
	}
	if w.Err() == nil {
		t.Error("Err lost the sticky error")
	}
}

func TestWriteStringChunks(t *testing.T) {
	var f flushSink
	w := New(&f, DefaultThreshold)
	big := strings.Repeat("x", ChunkSize*2+100)
	if err := w.WriteStringChunks(big); err != nil {
		t.Fatal(err)
	}
	if f.buf.String() != big {
		t.Errorf("chunked write delivered %d bytes, want %d", f.buf.Len(), len(big))
	}
	// Crossing the threshold repeatedly must have produced interim
	// flushes — the point of chunking a cached page.
	if f.flushes == 0 {
		t.Error("no interim flush during a multi-chunk write")
	}
	// An aborted client stops the loop with the sticky error.
	a := &flushSink{sink: sink{failAt: ChunkSize + 10}}
	wa := New(a, 0)
	if err := wa.WriteStringChunks(big); err == nil {
		t.Error("chunked write to an aborted client returned nil")
	}
	if wa.Written() > int64(ChunkSize) {
		t.Errorf("kept writing after the abort: %d bytes", wa.Written())
	}
}
