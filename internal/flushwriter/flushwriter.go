// Package flushwriter adapts an http.ResponseWriter (or any io.Writer)
// for streamed responses: output is forwarded immediately, an
// http.Flusher-backed writer is flushed every Threshold bytes so the
// first chunk of a multi-MB page reaches the client while the rest is
// still being rendered, and the first write error sticks — a client
// that hung up turns every later write into a cheap no-op, so handlers
// streaming large pages stop paying for output nobody will read.
//
// The writer also counts bytes delivered, which the RED middleware's
// latency numbers do not capture: a partially-written response and a
// complete one both record a status, but only Written tells them apart.
package flushwriter

import (
	"io"
	"net/http"
)

// DefaultThreshold is the flush cadence when the caller passes 0: small
// enough for prompt first-byte delivery, large enough not to defeat
// net/http's own buffering.
const DefaultThreshold = 8 << 10

// Writer streams to dst, flushing every Threshold bytes when dst can
// flush. Not safe for concurrent use.
type Writer struct {
	dst        io.Writer
	flusher    http.Flusher
	sw         io.StringWriter // dst's string fast path, when it has one
	threshold  int
	sinceFlush int
	written    int64
	err        error
}

// New wraps dst. Flushing engages only when dst implements
// http.Flusher; threshold <= 0 selects DefaultThreshold.
func New(dst io.Writer, threshold int) *Writer {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	w := &Writer{dst: dst, threshold: threshold}
	if f, ok := dst.(http.Flusher); ok {
		w.flusher = f
	}
	if sw, ok := dst.(io.StringWriter); ok {
		w.sw = sw
	}
	return w
}

// Write forwards p to the destination and flushes when the threshold of
// unflushed bytes is reached. After the first error every call returns
// that error without touching the destination.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.dst.Write(p)
	w.account(n, err)
	return n, w.err
}

// WriteString is Write's copy-free string form when the destination
// supports one (http.ResponseWriter does).
func (w *Writer) WriteString(s string) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	var n int
	var err error
	if w.sw != nil {
		n, err = w.sw.WriteString(s)
	} else {
		n, err = w.dst.Write([]byte(s))
	}
	w.account(n, err)
	return n, w.err
}

func (w *Writer) account(n int, err error) {
	w.written += int64(n)
	w.sinceFlush += n
	if err != nil {
		w.err = err
		return
	}
	if w.flusher != nil && w.sinceFlush >= w.threshold {
		w.flusher.Flush()
		w.sinceFlush = 0
	}
}

// Flush pushes any bytes the destination has buffered to the client.
// No-op for destinations that cannot flush. Handlers should NOT call
// this when the response is complete — net/http flushes on handler
// return, and an explicit flush first forces chunked encoding and an
// extra write syscall on every small response; Flush exists for
// mid-stream progress points the byte threshold hasn't reached.
func (w *Writer) Flush() {
	if w.err == nil && w.flusher != nil && w.sinceFlush > 0 {
		w.flusher.Flush()
		w.sinceFlush = 0
	}
}

// Written reports the bytes the destination accepted so far.
func (w *Writer) Written() int64 { return w.written }

// Err reports the sticky error, nil while the destination is healthy.
func (w *Writer) Err() error { return w.err }

// ChunkSize bounds one WriteStringChunks write: cached multi-MB pages
// stream through the same bounded-write discipline as fresh renders.
const ChunkSize = 32 << 10

// WriteStringChunks streams s in ChunkSize pieces, so a large
// already-rendered string (a cache hit) flushes progressively instead
// of landing as one write. Returns the sticky error.
func (w *Writer) WriteStringChunks(s string) error {
	for off := 0; off < len(s); off += ChunkSize {
		end := off + ChunkSize
		if end > len(s) {
			end = len(s)
		}
		if _, err := w.WriteString(s[off:end]); err != nil {
			return err
		}
	}
	return w.err
}
