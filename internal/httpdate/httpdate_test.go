package httpdate

import (
	"errors"
	"testing"
	"time"
)

// ref is the instant RFC 9110 uses in its own examples.
var ref = time.Date(1994, time.November, 6, 8, 49, 37, 0, time.UTC)

func TestParseCanonicalForms(t *testing.T) {
	cases := []struct {
		name, in string
		want     time.Time
	}{
		{"imf-fixdate", "Sun, 06 Nov 1994 08:49:37 GMT", ref},
		{"rfc850", "Sunday, 06-Nov-94 08:49:37 GMT", ref},
		{"asctime", "Sun Nov  6 08:49:37 1994", ref},
		{"asctime single space", "Sun Nov 6 08:49:37 1994", ref},
		{"rfc1123z zero offset", "Sun, 06 Nov 1994 08:49:37 +0000", ref},
		{"rfc1123z offset", "Sun, 06 Nov 1994 10:49:37 +0200", ref},
		{"single-digit day", "Sun, 6 Nov 1994 08:49:37 GMT", ref},
		{"rfc850 four-digit year", "Sun, 06-Nov-1994 08:49:37 GMT", ref},
		{"no weekday", "06 Nov 1994 08:49:37 GMT", ref},
		{"ut zone", "Sun, 06 Nov 1994 08:49:37 UT", ref},
		{"utc zone", "Sun, 06 Nov 1994 08:49:37 UTC", ref},
		{"lowercase zone", "Sun, 06 Nov 1994 08:49:37 gmt", ref},
		{"surrounding space", "  Sun, 06 Nov 1994 08:49:37 GMT  ", ref},
		{"rfc3339", "1994-11-06T08:49:37Z", ref},
		{"rfc3339 offset", "1994-11-06T10:49:37+02:00", ref},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("%s: Parse(%q): %v", c.name, c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%s: Parse(%q) = %v, want %v", c.name, c.in, got, c.want)
		}
		if got.Location() != time.UTC {
			t.Errorf("%s: Parse(%q) location = %v, want UTC", c.name, c.in, got.Location())
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, in := range []string{
		"",
		"   ",
		"not a date",
		"Sun, 06 Nov 1994",              // no time
		"08:49:37 GMT",                  // no date
		"Sun, 32 Nov 1994 08:49:37 GMT", // day out of range
		"Sun, 06 Xyz 1994 08:49:37 GMT", // bad month
		"1700000000",                    // bare epoch seconds are not an HTTP-date
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted, want error", in)
		} else if !errors.Is(err, ErrBadDate) {
			t.Errorf("Parse(%q) error %v does not wrap ErrBadDate", in, err)
		}
	}
}

// TestRFC850TwoDigitYearWindow pins the century mapping for the
// obsolete two-digit form: Go's time package maps 69–99 to 19xx and
// 00–68 to 20xx.
func TestRFC850TwoDigitYearWindow(t *testing.T) {
	got, err := Parse("Thursday, 01-Jan-04 00:00:00 GMT")
	if err != nil {
		t.Fatal(err)
	}
	if got.Year() != 2004 {
		t.Errorf("two-digit year 04 parsed as %d, want 2004", got.Year())
	}
}

func TestFormatRoundTrip(t *testing.T) {
	times := []time.Time{
		ref,
		time.Date(1996, time.June, 3, 0, 0, 0, 0, time.UTC),
		time.Date(2026, time.August, 7, 23, 59, 59, 0, time.UTC),
		time.Date(2000, time.February, 29, 12, 0, 0, 0, time.UTC), // leap day
	}
	for _, want := range times {
		s := Format(want)
		got, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(Format(%v)) = %v", want, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("round trip %v -> %q -> %v", want, s, got)
		}
	}
	if s := Format(ref); s != "Sun, 06 Nov 1994 08:49:37 GMT" {
		t.Errorf("Format(ref) = %q", s)
	}
	// Format normalises any zone to GMT.
	est := time.FixedZone("EST", -5*3600)
	if s := Format(time.Date(1994, 11, 6, 3, 49, 37, 0, est)); s != "Sun, 06 Nov 1994 08:49:37 GMT" {
		t.Errorf("Format(EST instant) = %q", s)
	}
}

// FuzzParse asserts two properties over arbitrary inputs: Parse never
// panics, and anything it accepts re-parses to the same instant after
// canonical formatting (Format is a fixpoint under Parse).
func FuzzParse(f *testing.F) {
	f.Add("Sun, 06 Nov 1994 08:49:37 GMT")
	f.Add("Sunday, 06-Nov-94 08:49:37 GMT")
	f.Add("Sun Nov  6 08:49:37 1994")
	f.Add("1994-11-06T08:49:37Z")
	f.Add("Sun, 06 Nov 1994 08:49:37 utc")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		got, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(Format(got))
		if err != nil {
			t.Fatalf("Format(%v) = %q does not re-parse: %v", got, Format(got), err)
		}
		// HTTP-dates carry second precision; accepted RFC 3339 values
		// may carry more, which Format truncates.
		if back.Unix() != got.Unix() {
			t.Fatalf("round trip drift: %q -> %v -> %v", s, got, back)
		}
	})
}
