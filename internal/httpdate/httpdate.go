// Package httpdate parses and formats HTTP-dates (RFC 9110 §5.6.7,
// formerly RFC 7231 §7.1.1.1): the preferred IMF-fixdate (RFC 1123),
// plus the two obsolete forms every server must still accept — RFC 850
// and ANSI C asctime(). It exists so that every header carrying a date
// (If-Modified-Since, Last-Modified, Retry-After, Accept-Datetime,
// Memento-Datetime) goes through one parser instead of scattered
// http.ParseTime/time.Parse calls with differing leniency.
//
// Beyond the three canonical forms, Parse is deliberately liberal in
// what it accepts from the wild: numeric zone offsets on RFC 1123
// dates, single-digit days, "UTC" and lowercase zone names, and — as a
// convenience for machine-generated values such as loadgen workloads —
// RFC 3339. Format always emits the canonical IMF-fixdate in GMT, the
// only form a conforming server may generate.
package httpdate

import (
	"errors"
	"strings"
	"time"
)

// ErrBadDate is wrapped by every Parse failure, so call sites can
// errors.Is against one sentinel regardless of which format almost
// matched.
var ErrBadDate = errors.New("httpdate: unparseable HTTP-date")

// layouts are tried in order of likelihood on real traffic. The
// RFC 1123 family leads (the only form modern software emits), the
// obsolete RFC 850 and asctime forms follow, and the lenient tail
// accepts common malformations and RFC 3339.
var layouts = []string{
	time.RFC1123,                     // Sun, 06 Nov 1994 08:49:37 GMT
	time.RFC1123Z,                    // Sun, 06 Nov 1994 08:49:37 +0000
	time.RFC850,                      // Sunday, 06-Nov-94 08:49:37 GMT
	time.ANSIC,                       // Sun Nov  6 08:49:37 1994
	"Mon, 2 Jan 2006 15:04:05 MST",   // single-digit day RFC 1123
	"Mon, 2 Jan 2006 15:04:05 -0700", // single-digit day RFC 1123Z
	"Mon, 02-Jan-2006 15:04:05 MST",  // RFC 850 with four-digit year
	"2 Jan 2006 15:04:05 MST",        // weekday dropped entirely
	"02 Jan 2006 15:04:05 -0700",
	time.RFC3339, // 1994-11-06T08:49:37Z (machine-generated values)
}

// Parse interprets s as an HTTP-date. The returned time is always in
// UTC: an HTTP-date names an instant, and callers compare instants.
// Parse never accepts the empty string.
func Parse(s string) (time.Time, error) {
	v := strings.TrimSpace(s)
	if v == "" {
		return time.Time{}, ErrBadDate
	}
	for _, layout := range layouts {
		if t, err := time.Parse(layout, v); err == nil {
			return t.UTC(), nil
		}
	}
	// Zone-name case (gmt, Utc) and "UTC" where GMT is expected defeat
	// time.Parse's abbreviation matching; normalise the trailing word
	// and retry the name-zoned layouts once.
	if fixed, changed := normalizeZone(v); changed {
		for _, layout := range layouts {
			if t, err := time.Parse(layout, fixed); err == nil {
				return t.UTC(), nil
			}
		}
	}
	return time.Time{}, ErrBadDate
}

// normalizeZone upper-cases a trailing alphabetic zone word and maps
// UT/UTC to GMT (RFC 9110 treats the obsolete UT as GMT; UTC shows up
// in the wild). Reports whether anything changed.
func normalizeZone(s string) (string, bool) {
	i := strings.LastIndexByte(s, ' ')
	if i < 0 || i+1 >= len(s) {
		return s, false
	}
	zone := s[i+1:]
	for j := 0; j < len(zone); j++ {
		c := zone[j]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return s, false
		}
	}
	up := strings.ToUpper(zone)
	if up == "UT" || up == "UTC" {
		up = "GMT"
	}
	if up == zone {
		return s, false
	}
	return s[:i+1] + up, true
}

// TimeFormat is the canonical IMF-fixdate layout (identical to
// net/http's TimeFormat, restated here so the package stays free of an
// HTTP dependency).
const TimeFormat = "Mon, 02 Jan 2006 15:04:05 GMT"

// Format renders t as the canonical IMF-fixdate ("Sun, 06 Nov 1994
// 08:49:37 GMT") — the only HTTP-date form a server should emit.
func Format(t time.Time) string {
	return t.UTC().Format(TimeFormat)
}
