// Package htmldiff compares two HTML pages and renders the differences as
// marked-up HTML, reproducing the paper's §5.
//
// The comparison treats a document as a sequence of sentences and
// sentence-breaking markups (internal/htmldoc) and computes a weighted
// longest common subsequence over the tokens with Hirschberg's algorithm
// (internal/lcs):
//
//   - breaking markups match only identical breaking markups (modulo
//     whitespace, case, and attribute order), with weight 1;
//   - sentences match sentences in two steps: a cheap length filter, then
//     an inner LCS whose weight W is the number of common words and
//     content-defining markups; the sentences match iff 2·W/L is large
//     enough, where L is the sum of their lengths.
//
// The default presentation is the paper's merged page: common material
// appears once, deleted text is struck out (<STRIKE>), inserted text is
// bold italic (<STRONG><I>), and red/green arrows — internal hypertext
// references chained together — point at old and new material. Old
// markups (deleted images, dead anchors) are eliminated from the merged
// page to keep it syntactically sane.
package htmldiff

import (
	"strings"

	"aide/internal/htmldoc"
	"aide/internal/lcs"
	"aide/internal/obs"
)

// Mode selects the presentation of the comparison (§5.2).
type Mode int

// Presentation modes.
const (
	// Merged produces one page summarising common, old, and new material.
	Merged Mode = iota
	// OnlyDifferences elides the common material, like UNIX diff.
	OnlyDifferences
	// OnlyNew is the "Draconian" option: the new page plus markers
	// pointing at the new material; old material is left out entirely.
	OnlyNew
)

// Options tune the comparison and presentation.
type Options struct {
	// Mode selects the presentation; the default is Merged.
	Mode Mode
	// Reverse swaps the sense of old and new, producing a merged page
	// with the old markups intact and the new ones deleted (§5.2).
	Reverse bool
	// LengthRatio is the first-step sentence filter: two sentences may
	// match only if min(len)/max(len) >= LengthRatio. 0 means the
	// default of 0.5.
	LengthRatio float64
	// MatchRatio is the second-step threshold on 2W/L. 0 means the
	// default of 0.5.
	MatchRatio float64
	// CoalesceWithin, if positive, merges difference regions separated
	// by at most this many common tokens into single old-block /
	// new-block passages — §5.3's control over "the degree to which old
	// and new text can be interspersed". Zero disables coalescing.
	CoalesceWithin int
	// MaxChangeFraction, if positive, suppresses the merged view when
	// the fraction of changed tokens exceeds it (§5.3: changes "so
	// pervasive as to make the resulting merged HTML unreadable"). The
	// result is then the new page with an explanatory banner.
	MaxChangeFraction float64
	// Title is used in the banner; typically the page URL.
	Title string
	// OldArrow and NewArrow override the difference markers. They must
	// be self-contained HTML fragments (e.g. <IMG> tags). Defaults are
	// red and green text arrows.
	OldArrow, NewArrow string
}

func (o *Options) lengthRatio() float64 {
	if o.LengthRatio > 0 {
		return o.LengthRatio
	}
	return 0.5
}

func (o *Options) matchRatio() float64 {
	if o.MatchRatio > 0 {
		return o.MatchRatio
	}
	return 0.5
}

func (o *Options) oldArrow() string {
	if o.OldArrow != "" {
		return o.OldArrow
	}
	return `<FONT COLOR="#CC0000"><B>-&gt;</B></FONT>`
}

func (o *Options) newArrow() string {
	if o.NewArrow != "" {
		return o.NewArrow
	}
	return `<FONT COLOR="#007700"><B>-&gt;</B></FONT>`
}

// Stats summarises a comparison.
type Stats struct {
	// OldTokens and NewTokens are the token counts of the two inputs.
	OldTokens, NewTokens int
	// Common counts tokens matched with identical content.
	Common int
	// Modified counts sentence pairs matched by the weighted LCS but not
	// identical (edited in place).
	Modified int
	// Deleted and Inserted count unmatched old and new tokens.
	Deleted, Inserted int
	// Differences is the number of difference regions (arrow anchors).
	Differences int
	// ChangeFraction is (Deleted+Inserted+Modified) / max(token counts).
	ChangeFraction float64
}

// Changed reports whether the two stats describe any difference.
func (s Stats) Changed() bool {
	return s.Modified > 0 || s.Deleted > 0 || s.Inserted > 0
}

// Result is the outcome of a comparison.
type Result struct {
	// HTML is the rendered presentation.
	HTML string
	// Stats summarises the comparison.
	Stats Stats
	// Suppressed is true when MaxChangeFraction cut off the merged view.
	Suppressed bool
}

// Diff compares two HTML pages and renders the differences into one
// string. It is Prepare + RenderTo over a strings.Builder; callers that
// can stream (the snapshot server's diff handlers) use those two halves
// directly and never materialise the page.
func Diff(oldHTML, newHTML string, opt Options) Result {
	p := Prepare(oldHTML, newHTML, opt)
	var sb strings.Builder
	p.RenderTo(&sb) // a Builder never fails
	return Result{HTML: sb.String(), Stats: p.stats, Suppressed: p.suppressed}
}

// recordDiffMetrics counts a comparison's inputs in the process
// registry: token and sentence volumes plus the outer LCS's cost bound
// (the token-pair table Hirschberg's algorithm walks), the number every
// later perf PR on the diff path reports against.
func recordDiffMetrics(oldToks, newToks []htmldoc.Token) {
	m := obs.Default
	m.Counter("htmldiff.diffs").Inc()
	m.Counter("htmldiff.tokens.old").Add(int64(len(oldToks)))
	m.Counter("htmldiff.tokens.new").Add(int64(len(newToks)))
	m.Counter("htmldiff.lcs.cells").Add(int64(len(oldToks)) * int64(len(newToks)))
	var sentences int64
	for _, t := range oldToks {
		if t.Kind == htmldoc.Sentence {
			sentences++
		}
	}
	for _, t := range newToks {
		if t.Kind == htmldoc.Sentence {
			sentences++
		}
	}
	m.Counter("htmldiff.sentences").Add(sentences)
}

// recordAnchorMetrics exposes the anchored fast path's behaviour on the
// process registry: how often unique sentences pinned the alignment, how
// often crossing anchors forced the full Hirschberg fallback, and how
// many DP cells the anchoring saved versus the quadratic bound.
func recordAnchorMetrics(ast lcs.AnchorStats) {
	m := obs.Default
	m.Counter("lcs.anchor_hits").Add(int64(ast.Anchors))
	m.Counter("lcs.anchor.trimmed").Add(int64(ast.Trimmed))
	if ast.Fallback {
		m.Counter("lcs.anchor.fallbacks").Inc()
	}
	m.Counter("lcs.cells.evaluated").Add(ast.Cells)
	m.Counter("lcs.cells.saved").Add(ast.FullCells - ast.Cells)
}

// Compare runs only the alignment and returns the statistics; it is the
// cheap path for "has this page really changed?" noise filtering.
func Compare(oldHTML, newHTML string, opt Options) Stats {
	if opt.Reverse {
		oldHTML, newHTML = newHTML, oldHTML
	}
	_, stats := align(htmldoc.Tokenize(oldHTML), htmldoc.Tokenize(newHTML), &opt)
	return stats
}

// --- alignment -------------------------------------------------------------

// segKind classifies an alignment segment.
type segKind int

const (
	segCommon segKind = iota
	segOld
	segNew
	segModified
	segBlock
)

// segment is a run of the alignment: common tokens, unmatched old tokens,
// unmatched new tokens, one matched-but-edited sentence pair, or — after
// coalescing — a block of old material paired with ordered new parts.
type segment struct {
	kind  segKind
	old   []htmldoc.Token
	new   []htmldoc.Token
	parts []blockPart // segBlock only
}

// align computes the token alignment and folds it into segments.
func align(oldToks, newToks []htmldoc.Token, opt *Options) ([]segment, Stats) {
	w := newTokenWeights(oldToks, newToks, opt.lengthRatio(), opt.matchRatio())
	pairs, ast := lcs.AnchoredStats(w)
	recordAnchorMetrics(ast)

	var segs []segment
	stats := Stats{OldTokens: len(oldToks), NewTokens: len(newToks)}
	ai, bi := 0, 0
	emitGap := func(aHi, bHi int) {
		if aHi > ai {
			segs = append(segs, segment{kind: segOld, old: oldToks[ai:aHi]})
			stats.Deleted += aHi - ai
		}
		if bHi > bi {
			segs = append(segs, segment{kind: segNew, new: newToks[bi:bHi]})
			stats.Inserted += bHi - bi
		}
		ai, bi = aHi, bHi
	}
	for _, p := range pairs {
		emitGap(p.AIdx, p.BIdx)
		ot, nt := oldToks[p.AIdx], newToks[p.BIdx]
		if w.idA[p.AIdx] == w.idB[p.BIdx] {
			// Identical token: extend or start a common segment.
			if n := len(segs); n > 0 && segs[n-1].kind == segCommon {
				segs[n-1].old = append(segs[n-1].old, ot)
				segs[n-1].new = append(segs[n-1].new, nt)
			} else {
				segs = append(segs, segment{kind: segCommon,
					old: []htmldoc.Token{ot}, new: []htmldoc.Token{nt}})
			}
			stats.Common++
		} else {
			segs = append(segs, segment{kind: segModified,
				old: []htmldoc.Token{ot}, new: []htmldoc.Token{nt}})
			stats.Modified++
		}
		ai, bi = p.AIdx+1, p.BIdx+1
	}
	emitGap(len(oldToks), len(newToks))

	for _, s := range segs {
		if s.kind != segCommon {
			stats.Differences++
		}
	}
	denom := stats.OldTokens
	if stats.NewTokens > denom {
		denom = stats.NewTokens
	}
	if denom > 0 {
		stats.ChangeFraction = float64(stats.Deleted+stats.Inserted+stats.Modified) / float64(denom)
	}
	return segs, stats
}

// tokenWeights implements lcs.AnchorWeights over two token streams with
// the paper's two-step sentence matching, plus three speed optimisations:
// token interning (each distinct (kind, NormKey) pair becomes one int32
// id, so identity checks and the anchored fast path's hashes are integer
// compares), O(1) rejects via kind/length checks, and a lazily allocated
// memo of the expensive inner-LCS weights (Hirschberg evaluates each cell
// several times across its recursion levels).
type tokenWeights struct {
	a, b        []htmldoc.Token
	idA, idB    []int32 // interned (kind, NormKey); equal id == identical token
	lenA, lenB  []int
	itemsA      [][]int32 // per-token interned item keys (sentences only)
	itemsB      [][]int32
	memo        [][]float32 // fuzzy inner-LCS results; rows allocated on demand
	lengthRatio float64
	matchRatio  float64
}

const memoLimit = 1 << 24 // cells; beyond this, recompute on demand

func newTokenWeights(a, b []htmldoc.Token, lengthRatio, matchRatio float64) *tokenWeights {
	w := &tokenWeights{
		a: a, b: b,
		idA: make([]int32, len(a)), idB: make([]int32, len(b)),
		lenA: make([]int, len(a)), lenB: make([]int, len(b)),
		itemsA: make([][]int32, len(a)), itemsB: make([][]int32, len(b)),
		lengthRatio: lengthRatio, matchRatio: matchRatio,
	}
	in := &interner{
		tokTab:  make(map[string]int32, len(a)+len(b)),
		itemTab: make(map[string]int32),
	}
	for i, t := range a {
		w.idA[i] = in.token(t)
		w.lenA[i] = t.ContentLength()
		w.itemsA[i] = in.items(t)
	}
	for j, t := range b {
		w.idB[j] = in.token(t)
		w.lenB[j] = t.ContentLength()
		w.itemsB[j] = in.items(t)
	}
	if n := len(a) * len(b); n > 0 && n <= memoLimit {
		w.memo = make([][]float32, len(a))
	}
	return w
}

// interner assigns stable small ids to token and item norm keys. Keys are
// built in a reused scratch buffer; the map lookup on []byte-to-string
// conversion does not allocate, so a string is materialised only the
// first time a distinct key is seen.
type interner struct {
	tokTab  map[string]int32
	itemTab map[string]int32
	buf     []byte
}

// token maps a token's (kind, NormKey) to a stable small id; two tokens
// get the same id iff they are identical under the paper's
// whitespace/case/attribute-order normalisation.
func (in *interner) token(t htmldoc.Token) int32 {
	kind := byte('S')
	if t.Kind == htmldoc.Breaking {
		kind = 'B'
	}
	key := append(in.buf[:0], kind)
	key = t.AppendNormKey(key)
	in.buf = key
	if id, ok := in.tokTab[string(key)]; ok {
		return id
	}
	id := int32(len(in.tokTab))
	in.tokTab[string(key)] = id
	return id
}

// items interns a sentence's item norm keys for the inner LCS.
func (in *interner) items(t htmldoc.Token) []int32 {
	if t.Kind != htmldoc.Sentence {
		return nil
	}
	ids := make([]int32, len(t.Items))
	for i, it := range t.Items {
		key := it.AppendNormKey(in.buf[:0])
		in.buf = key
		id, ok := in.itemTab[string(key)]
		if !ok {
			id = int32(len(in.itemTab))
			in.itemTab[string(key)] = id
		}
		ids[i] = id
	}
	return ids
}

func itemKeys(t htmldoc.Token) []string {
	if t.Kind != htmldoc.Sentence {
		return nil
	}
	keys := make([]string, len(t.Items))
	for i, it := range t.Items {
		keys[i] = it.NormKey()
	}
	return keys
}

func (w *tokenWeights) LenA() int { return len(w.a) }
func (w *tokenWeights) LenB() int { return len(w.b) }

// HashA and HashB expose the interned ids as the anchored fast path's
// content hashes: ids are collision-free by construction, so equal hashes
// mean identical tokens.
func (w *tokenWeights) HashA(i int) uint64 { return uint64(w.idA[i]) }
func (w *tokenWeights) HashB(j int) uint64 { return uint64(w.idB[j]) }

func (w *tokenWeights) Weight(i, j int) float64 {
	ta, tb := w.a[i], w.b[j]
	if ta.Kind != tb.Kind {
		return 0 // sentences match only sentences, markups only markups
	}
	identical := w.idA[i] == w.idB[j]
	if ta.Kind == htmldoc.Breaking {
		if identical {
			return 1
		}
		return 0
	}
	la, lb := w.lenA[i], w.lenB[j]
	if la == 0 && lb == 0 {
		// Formatting-only sentences: match iff identical.
		if identical {
			return 0.5
		}
		return 0
	}
	// Step 1: the sentence-length filter.
	lo, hi := la, lb
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 0 && float64(lo)/float64(hi) < w.lengthRatio {
		return 0
	}
	if identical {
		return float64(la) // identical sentence: W is its full length
	}
	// Step 2: the inner LCS over words and markups. Only this step is
	// worth memoising; everything above is O(1).
	if w.memo != nil {
		if row := w.memo[i]; row != nil && row[j] >= 0 {
			return float64(row[j])
		}
	}
	v := w.innerWeight(i, j)
	if w.memo != nil {
		row := w.memo[i]
		if row == nil {
			row = make([]float32, len(w.b))
			for k := range row {
				row[k] = -1
			}
			w.memo[i] = row
		}
		row[j] = float32(v)
	}
	return v
}

// innerWeight runs the per-sentence-pair LCS over interned items and
// applies the 2W/L match threshold.
func (w *tokenWeights) innerWeight(i, j int) float64 {
	pairs := lcs.IDs(w.itemsA[i], w.itemsB[j])
	W := 0
	for _, p := range pairs {
		it := w.a[i].Items[p.AIdx]
		if it.Kind == htmldoc.Word || it.IsContentDefining() {
			W++
		}
	}
	L := w.lenA[i] + w.lenB[j]
	if L == 0 || 2*float64(W)/float64(L) < w.matchRatio {
		return 0
	}
	return float64(W)
}
