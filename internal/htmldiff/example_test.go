package htmldiff_test

import (
	"fmt"
	"strings"

	"aide/internal/htmldiff"
)

// ExampleDiff shows the basic comparison: a sentence was edited and a
// new sentence appended; the merged page strikes the old word and
// emphasises the new material.
func ExampleDiff() {
	oldPage := `<P>The meeting is on Tuesday.</P>`
	newPage := `<P>The meeting is on Thursday. Bring your laptop.</P>`

	r := htmldiff.Diff(oldPage, newPage, htmldiff.Options{})
	fmt.Println("changed:", r.Stats.Changed())
	fmt.Println("regions:", r.Stats.Differences)
	fmt.Println("struck out Tuesday:", strings.Contains(r.HTML, "<STRIKE>Tuesday.</STRIKE>"))
	fmt.Println("emphasised laptop:", strings.Contains(r.HTML, "<STRONG><I>Bring your laptop.</I></STRONG>"))
	// Output:
	// changed: true
	// regions: 2
	// struck out Tuesday: true
	// emphasised laptop: true
}

// ExampleCompare shows the cheap statistics-only path used for noise
// filtering: whitespace and markup-case differences are not changes.
func ExampleCompare() {
	a := "<P>Hello   world.</P>"
	b := "<p>\nHello world.\n</p>"
	s := htmldiff.Compare(a, b, htmldiff.Options{})
	fmt.Println("changed:", s.Changed())
	// Output:
	// changed: false
}

// ExampleOptions_onlyNew demonstrates the "Draconian" presentation: the
// new page plus markers, with deleted material left out entirely.
func ExampleOptions_onlyNew() {
	oldPage := `<P>Keep this. Drop this sentence.</P>`
	newPage := `<P>Keep this.</P>`
	r := htmldiff.Diff(oldPage, newPage, htmldiff.Options{Mode: htmldiff.OnlyNew})
	fmt.Println("shows deletion:", strings.Contains(r.HTML, "Drop this"))
	// Output:
	// shows deletion: false
}
