package htmldiff

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"aide/internal/htmldoc"
)

// Property-based tests for the invariants a diff-to-HTML renderer must
// never break, over randomly generated 1995-style documents.

// genDoc builds a random small HTML document from a fixed vocabulary.
func genDoc(r *rand.Rand) string {
	words := []string{"web", "page", "change", "track", "version", "diff", "system"}
	tags := []string{"P", "LI", "H2", "BLOCKQUOTE"}
	var sb strings.Builder
	sb.WriteString("<HTML><BODY>")
	for para := 0; para < 1+r.Intn(6); para++ {
		tag := tags[r.Intn(len(tags))]
		sb.WriteString("<" + tag + ">")
		for s := 0; s < 1+r.Intn(3); s++ {
			for w := 0; w < 1+r.Intn(6); w++ {
				sb.WriteString(words[r.Intn(len(words))] + " ")
			}
			sb.WriteString(". ")
		}
		sb.WriteString("</" + tag + ">")
	}
	sb.WriteString("</BODY></HTML>")
	return sb.String()
}

// mutate applies a random edit: delete, insert, or swap a paragraph.
func mutate(r *rand.Rand, doc string) string {
	parts := strings.SplitAfter(doc, ">")
	if len(parts) < 4 {
		return doc + "<P>added tail sentence here.</P>"
	}
	i := 1 + r.Intn(len(parts)-2)
	switch r.Intn(3) {
	case 0:
		parts[i] = "" // delete a fragment
	case 1:
		parts[i] += "<P>inserted paragraph right here. </P>"
	default:
		j := 1 + r.Intn(len(parts)-2)
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "")
}

func TestPropertySelfDiffIsEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		doc := genDoc(r)
		res := Diff(doc, doc, Options{})
		if res.Stats.Changed() {
			t.Fatalf("trial %d: self diff changed: %+v\ndoc: %s", trial, res.Stats, doc)
		}
		if res.Stats.ChangeFraction != 0 {
			t.Fatalf("trial %d: self diff fraction %v", trial, res.Stats.ChangeFraction)
		}
	}
}

func TestPropertyAllNewContentSurvivesInMerged(t *testing.T) {
	// Every word of the NEW document must appear in the merged page
	// (deletions are struck out but additions and common text must all
	// be there).
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		oldDoc := genDoc(r)
		newDoc := mutate(r, oldDoc)
		res := Diff(oldDoc, newDoc, Options{})
		for _, tok := range htmldoc.Tokenize(newDoc) {
			for _, it := range tok.Items {
				if it.Kind != htmldoc.Word {
					continue
				}
				if !strings.Contains(res.HTML, it.Raw) {
					t.Fatalf("trial %d: new word %q missing from merged page\nold: %s\nnew: %s\nout: %s",
						trial, it.Raw, oldDoc, newDoc, res.HTML)
				}
			}
		}
	}
}

func TestPropertyOnlyNewNeverStrikes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		oldDoc := genDoc(r)
		newDoc := mutate(r, oldDoc)
		res := Diff(oldDoc, newDoc, Options{Mode: OnlyNew})
		if strings.Contains(body(res), "<STRIKE>") {
			t.Fatalf("trial %d: OnlyNew produced strike-out", trial)
		}
	}
}

func TestPropertyBalancedMarkupInsertions(t *testing.T) {
	// The renderer's own markup must stay balanced: equal counts of
	// open/close STRIKE and STRONG tags.
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 150; trial++ {
		oldDoc := genDoc(r)
		newDoc := mutate(r, mutate(r, oldDoc))
		res := Diff(oldDoc, newDoc, Options{})
		for _, pair := range [][2]string{
			{"<STRIKE>", "</STRIKE>"},
			{"<STRONG><I>", "</I></STRONG>"},
		} {
			open := strings.Count(res.HTML, pair[0])
			clos := strings.Count(res.HTML, pair[1])
			if open != clos {
				t.Fatalf("trial %d: unbalanced %s: %d open, %d close\n%s",
					trial, pair[0], open, clos, res.HTML)
			}
		}
	}
}

func TestPropertySymmetricRoles(t *testing.T) {
	// The *verdict* is direction-independent: if (a,b) differ then (b,a)
	// differ, token counts swap, and Reverse produces the same stats as
	// swapping the arguments. (The fine-grained deleted/modified split
	// may legitimately differ between directions: optimal weighted
	// alignments are not unique.)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		a := genDoc(r)
		b := mutate(r, a)
		sAB := Compare(a, b, Options{})
		sBA := Compare(b, a, Options{})
		if sAB.Changed() != sBA.Changed() {
			t.Fatalf("trial %d: verdicts disagree: %+v vs %+v", trial, sAB, sBA)
		}
		if sAB.OldTokens != sBA.NewTokens || sAB.NewTokens != sBA.OldTokens {
			t.Fatalf("trial %d: token counts do not swap: %+v vs %+v", trial, sAB, sBA)
		}
		sRev := Compare(a, b, Options{Reverse: true})
		if sRev != sBA {
			t.Fatalf("trial %d: Reverse != swapped args: %+v vs %+v", trial, sRev, sBA)
		}
	}
}

func TestQuickArbitraryBytesNeverPanic(t *testing.T) {
	f := func(a, b []byte) bool {
		Diff(string(a), string(b), Options{})
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyAnchorChainComplete(t *testing.T) {
	// Every emitted anchor NAME from 1..Differences exists exactly once,
	// and every HREF in the chain points at an existing anchor or the top.
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		a := genDoc(r)
		b := mutate(r, mutate(r, a))
		res := Diff(a, b, Options{})
		for i := 1; i <= res.Stats.Differences; i++ {
			name := `NAME="` + anchorName(i) + `"`
			if n := strings.Count(res.HTML, name); n != 1 {
				t.Fatalf("trial %d: anchor %d appears %d times", trial, i, n)
			}
		}
		if res.Stats.Differences > 0 &&
			!strings.Contains(res.HTML, `HREF="#`+anchorName(1)+`"`) {
			t.Fatalf("trial %d: banner link to first difference missing", trial)
		}
	}
}
