package htmldiff

import "testing"

// FuzzDiff checks the comparator's hard invariants on arbitrary inputs:
// no panics, a zero change fraction iff nothing changed, and the
// suppression path never fires for identical inputs.
func FuzzDiff(f *testing.F) {
	f.Add("<P>one two three.</P>", "<P>one two four.</P>")
	f.Add("", "")
	f.Add("<UL><LI>a<LI>b</UL>", "<P>a b</P>")
	f.Add("<PRE>x  y</PRE>", "<PRE>x y</PRE>")
	f.Fuzz(func(t *testing.T, a, b string) {
		r := Diff(a, b, Options{MaxChangeFraction: 0.99, CoalesceWithin: 2})
		if !r.Stats.Changed() && r.Stats.ChangeFraction != 0 {
			t.Fatalf("unchanged but fraction %v", r.Stats.ChangeFraction)
		}
		self := Diff(a, a, Options{MaxChangeFraction: 0.01})
		if self.Suppressed || self.Stats.Changed() {
			t.Fatalf("self diff changed/suppressed: %+v", self.Stats)
		}
	})
}
