package htmldiff

// Rendering: the presentation half of §5. A comparison is computed once
// (Prepare) and rendered by streaming the marked-up page through a
// docWriter — a small buffered adapter over any io.Writer with a sticky
// error — so a multi-MB merged page never has to exist as one string.
// Diff keeps the historical buffered interface by rendering into a
// strings.Builder.

import (
	"fmt"
	"html"
	"io"
	"strings"

	"aide/internal/htmldoc"
	"aide/internal/lcs"
)

// Prepared is a computed comparison whose presentation has not been
// rendered yet: the alignment segments, the statistics, and the
// suppression verdict. RenderTo streams the presentation; it may be
// called more than once (each call re-renders from the segments).
type Prepared struct {
	segs       []segment
	stats      Stats
	suppressed bool
	newToks    []htmldoc.Token
	opt        Options
}

// Prepare tokenizes and aligns the two pages — the expensive half of a
// comparison — without rendering anything.
func Prepare(oldHTML, newHTML string, opt Options) *Prepared {
	if opt.Reverse {
		oldHTML, newHTML = newHTML, oldHTML
	}
	oldToks := htmldoc.Tokenize(oldHTML)
	newToks := htmldoc.Tokenize(newHTML)
	recordDiffMetrics(oldToks, newToks)
	segs, stats := align(oldToks, newToks, &opt)
	if opt.CoalesceWithin > 0 {
		segs = coalesce(segs, opt.CoalesceWithin)
		stats.Differences = 0
		for _, s := range segs {
			if s.kind != segCommon {
				stats.Differences++
			}
		}
	}
	p := &Prepared{segs: segs, stats: stats, newToks: newToks, opt: opt}
	if opt.MaxChangeFraction > 0 && stats.ChangeFraction > opt.MaxChangeFraction && stats.Changed() {
		p.suppressed = true
	}
	return p
}

// Stats returns the comparison's statistics.
func (p *Prepared) Stats() Stats { return p.stats }

// Suppressed reports whether MaxChangeFraction cut off the merged view.
func (p *Prepared) Suppressed() bool { return p.suppressed }

// RenderTo streams the presentation into w and returns the first write
// error (nil when w accepted everything). Output is written in bounded
// chunks, so w sees steady progress on arbitrarily large pages.
func (p *Prepared) RenderTo(w io.Writer) error {
	d := newDocWriter(w)
	if p.suppressed {
		renderSuppressed(d, p.newToks, p.stats, &p.opt)
		return d.close()
	}
	switch p.opt.Mode {
	case OnlyDifferences:
		renderOnlyDifferences(d, p.segs, p.stats, &p.opt)
	case OnlyNew:
		renderOnlyNew(d, p.segs, p.stats, &p.opt)
	default:
		renderMerged(d, p.segs, p.stats, &p.opt)
	}
	return d.close()
}

// --- docWriter -------------------------------------------------------------

// docWriterChunk is the docWriter buffer size: each underlying Write is
// at most this large, which bounds per-request buffering and gives
// flush-aware writers regular flush points.
const docWriterChunk = 8 << 10

// docWriter adapts the renderers to a plain io.Writer: writes are
// buffered into chunks of at most docWriterChunk bytes, and the first
// underlying write error sticks, turning every later write into a no-op
// so rendering to an aborted client stops paying for output it cannot
// deliver.
type docWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func newDocWriter(w io.Writer) *docWriter {
	return &docWriter{w: w, buf: make([]byte, 0, docWriterChunk)}
}

// flush hands the buffered bytes to the underlying writer.
func (d *docWriter) flush() {
	if len(d.buf) == 0 {
		return
	}
	if d.err == nil {
		_, d.err = d.w.Write(d.buf)
	}
	d.buf = d.buf[:0]
}

// close flushes the tail and reports the sticky error.
func (d *docWriter) close() error {
	d.flush()
	return d.err
}

// Write implements io.Writer so fmt.Fprintf can target the docWriter.
func (d *docWriter) Write(p []byte) (int, error) {
	if d.err != nil {
		return len(p), nil // sticky error: swallow, renderers bail cheaply
	}
	if len(d.buf)+len(p) > cap(d.buf) {
		d.flush()
	}
	if len(p) >= cap(d.buf) {
		if d.err == nil {
			_, d.err = d.w.Write(p)
		}
		return len(p), nil
	}
	d.buf = append(d.buf, p...)
	return len(p), nil
}

// WriteString mirrors strings.Builder's method so the renderers are
// source-compatible with their buffered history.
func (d *docWriter) WriteString(s string) {
	if d.err != nil {
		return
	}
	if len(d.buf)+len(s) > cap(d.buf) {
		d.flush()
	}
	if len(s) >= cap(d.buf) {
		if d.err == nil {
			_, d.err = io.WriteString(d.w, s)
		}
		return
	}
	d.buf = append(d.buf, s...)
}

// writeByte is strings.Builder's WriteByte without the error return
// (the sticky error carries write failures to close); lower-cased so
// vet's stdmethods check does not demand the standard signature.
func (d *docWriter) writeByte(b byte) {
	if d.err != nil {
		return
	}
	if len(d.buf) >= cap(d.buf) {
		d.flush()
	}
	d.buf = append(d.buf, b)
}

// --- rendering -------------------------------------------------------------

// anchorName returns the NAME of the n-th difference anchor.
func anchorName(n int) string { return fmt.Sprintf("AIDE-diff-%d", n) }

// arrow emits the n-th difference marker: an internal hypertext reference
// chained to the following difference (the last chains back to the top).
func arrow(n, total int, glyph string) string {
	next := "#AIDE-top"
	if n < total {
		next = "#" + anchorName(n+1)
	}
	return fmt.Sprintf(`<A NAME="%s" HREF="%s">%s</A>`, anchorName(n), next, glyph)
}

// banner renders the header inserted at the front of the output (§5.2:
// "A banner at the front of the document contains a link to the first
// difference").
func banner(d *docWriter, stats Stats, opt *Options, note string) {
	d.WriteString(`<A NAME="AIDE-top"></A><TABLE BORDER=1 WIDTH="100%"><TR><TD>`)
	d.WriteString(`<B>AIDE HtmlDiff</B>`)
	if opt.Title != "" {
		d.WriteString(": " + html.EscapeString(opt.Title))
	}
	d.WriteString("<BR>\n")
	if !stats.Changed() {
		d.WriteString("No differences found.")
	} else {
		fmt.Fprintf(d, "%d difference region(s): %d deleted, %d inserted, %d modified token(s). ",
			stats.Differences, stats.Deleted, stats.Inserted, stats.Modified)
		fmt.Fprintf(d, `<A HREF="#%s">First difference</A>. `, anchorName(1))
		d.WriteString(`Deleted text is <STRIKE>struck out</STRIKE>; new text is <STRONG><I>emphasized</I></STRONG>.`)
	}
	if note != "" {
		d.WriteString("<BR>\n" + note)
	}
	d.WriteString("</TD></TR></TABLE>\n<HR>\n")
}

// renderMerged produces the paper's preferred merged-page presentation.
func renderMerged(d *docWriter, segs []segment, stats Stats, opt *Options) {
	banner(d, stats, opt, "")
	n := 0
	for _, s := range segs {
		if d.err != nil {
			return
		}
		switch s.kind {
		case segCommon:
			for _, t := range s.new {
				d.WriteString(t.Text())
				d.writeByte('\n')
			}
		case segOld:
			n++
			d.WriteString(arrow(n, stats.Differences, opt.oldArrow()))
			d.writeByte('\n')
			renderOldTokens(d, s.old)
		case segNew:
			n++
			d.WriteString(arrow(n, stats.Differences, opt.newArrow()))
			d.writeByte('\n')
			renderNewTokens(d, s.new)
		case segModified:
			n++
			d.WriteString(arrow(n, stats.Differences, opt.newArrow()))
			d.writeByte('\n')
			renderModifiedSentence(d, s.old[0], s.new[0])
		case segBlock:
			n++
			d.WriteString(arrow(n, stats.Differences, opt.newArrow()))
			d.writeByte('\n')
			renderBlock(d, s)
		}
	}
}

// renderOnlyDifferences elides common material (§5.2's second option).
func renderOnlyDifferences(d *docWriter, segs []segment, stats Stats, opt *Options) {
	banner(d, stats, opt,
		"Common text has been elided; only changed material is shown.")
	n := 0
	for _, s := range segs {
		if d.err != nil {
			return
		}
		switch s.kind {
		case segCommon:
			continue
		case segOld:
			n++
			d.WriteString(arrow(n, stats.Differences, opt.oldArrow()))
			d.writeByte('\n')
			renderOldTokens(d, s.old)
		case segNew:
			n++
			d.WriteString(arrow(n, stats.Differences, opt.newArrow()))
			d.writeByte('\n')
			renderNewTokens(d, s.new)
		case segModified:
			n++
			d.WriteString(arrow(n, stats.Differences, opt.newArrow()))
			d.writeByte('\n')
			renderModifiedSentence(d, s.old[0], s.new[0])
		case segBlock:
			n++
			d.WriteString(arrow(n, stats.Differences, opt.newArrow()))
			d.writeByte('\n')
			renderBlock(d, s)
		}
		d.WriteString("<HR>\n")
	}
}

// renderOnlyNew is the "Draconian" option: the most recent page plus
// markers pointing at new material; nothing old is shown, so the result
// has no syntactic risk at all.
func renderOnlyNew(d *docWriter, segs []segment, stats Stats, opt *Options) {
	banner(d, stats, opt, "Deleted material is not shown.")
	n := 0
	for _, s := range segs {
		if d.err != nil {
			return
		}
		switch s.kind {
		case segCommon:
			for _, t := range s.new {
				d.WriteString(t.Text())
				d.writeByte('\n')
			}
		case segOld:
			n++ // anchor chain still counts the region, but shows nothing
			d.WriteString(arrow(n, stats.Differences, opt.oldArrow()))
			d.writeByte('\n')
		case segNew:
			n++
			d.WriteString(arrow(n, stats.Differences, opt.newArrow()))
			d.writeByte('\n')
			renderNewTokens(d, s.new)
		case segModified:
			n++
			d.WriteString(arrow(n, stats.Differences, opt.newArrow()))
			d.writeByte('\n')
			d.WriteString(s.new[0].Text())
			d.writeByte('\n')
		case segBlock:
			n++
			d.WriteString(arrow(n, stats.Differences, opt.newArrow()))
			d.writeByte('\n')
			for _, p := range s.parts {
				d.WriteString(p.tok.Text())
				d.writeByte('\n')
			}
		}
	}
}

// renderSuppressed is the §5.3 fallback when changes are too pervasive.
func renderSuppressed(d *docWriter, newToks []htmldoc.Token, stats Stats, opt *Options) {
	d.WriteString(`<A NAME="AIDE-top"></A><TABLE BORDER=1 WIDTH="100%"><TR><TD><B>AIDE HtmlDiff</B>`)
	if opt.Title != "" {
		d.WriteString(": " + html.EscapeString(opt.Title))
	}
	fmt.Fprintf(d, "<BR>\nChanges are too pervasive to display meaningfully "+
		"(%.0f%% of the page changed); showing the new version unannotated.",
		stats.ChangeFraction*100)
	d.WriteString("</TD></TR></TABLE>\n<HR>\n")
	for _, t := range newToks {
		if d.err != nil {
			return
		}
		d.WriteString(t.Text())
		d.writeByte('\n')
	}
}

// renderOldTokens emits deleted material: words struck out, markups
// eliminated (old hypertext references and images do not appear in the
// merged page — §5.2).
func renderOldTokens(d *docWriter, toks []htmldoc.Token) {
	for _, t := range toks {
		if t.Kind == htmldoc.Breaking {
			continue // old structural markup is dropped entirely
		}
		words := make([]string, 0, len(t.Items))
		for _, it := range t.Items {
			if it.Kind == htmldoc.Word {
				words = append(words, it.Raw)
			}
		}
		if len(words) == 0 {
			continue
		}
		sep := " "
		if t.Pre {
			sep = "\n"
		}
		d.WriteString("<STRIKE>")
		d.WriteString(strings.Join(words, sep))
		d.WriteString("</STRIKE>\n")
	}
}

// renderNewTokens emits inserted material: breaking markups as-is, and
// sentence words wrapped in the new-text font with their markups intact.
func renderNewTokens(d *docWriter, toks []htmldoc.Token) {
	for _, t := range toks {
		if t.Kind == htmldoc.Breaking {
			d.WriteString(t.Text())
			d.writeByte('\n')
			continue
		}
		renderEmphasizedSentence(d, t, nil)
	}
}

// renderEmphasizedSentence writes a sentence with word runs wrapped in
// <STRONG><I>. If emphasize is non-nil, only items whose index is present
// are emphasised; otherwise all words are.
func renderEmphasizedSentence(d *docWriter, t htmldoc.Token, emphasize map[int]bool) {
	sep := " "
	if t.Pre {
		sep = "\n"
	}
	inEmph := false
	for idx, it := range t.Items {
		if idx > 0 {
			d.WriteString(sep)
		}
		want := it.Kind == htmldoc.Word && (emphasize == nil || emphasize[idx])
		if want && !inEmph {
			d.WriteString("<STRONG><I>")
			inEmph = true
		}
		if !want && inEmph {
			d.WriteString("</I></STRONG>")
			inEmph = false
		}
		d.WriteString(it.Raw)
	}
	if inEmph {
		d.WriteString("</I></STRONG>")
	}
	d.writeByte('\n')
}

// renderModifiedSentence merges a matched-but-edited sentence pair:
// common words in the original font, deleted words struck out, inserted
// words emphasised, old markups eliminated, new markups kept. A changed
// content-defining markup (e.g. an anchor whose URL changed) is pointed
// at by the arrow, but its text stays in the original font (§5.2).
func renderModifiedSentence(d *docWriter, old, new htmldoc.Token) {
	oldKeys := itemKeys(old)
	newKeys := itemKeys(new)
	pairs := lcs.Strings(oldKeys, newKeys)
	matchedOld := make(map[int]bool, len(pairs))
	for _, p := range pairs {
		matchedOld[p.AIdx] = true
	}
	sep := " "
	if new.Pre {
		sep = "\n"
	}

	// Walk the new sentence, interleaving deleted old words at the
	// positions where they disappeared.
	oi := 0
	first := true
	writeSep := func() {
		if !first {
			d.WriteString(sep)
		}
		first = false
	}
	flushOldUpTo := func(limit int) {
		for ; oi < limit; oi++ {
			it := old.Items[oi]
			if matchedOld[oi] || it.Kind != htmldoc.Word {
				continue // matched items render via new; old markups drop
			}
			writeSep()
			d.WriteString("<STRIKE>" + it.Raw + "</STRIKE>")
		}
	}
	pi := 0
	for ni, it := range new.Items {
		// Emit any old deletions that precede this new item's match.
		if pi < len(pairs) && pairs[pi].BIdx == ni {
			flushOldUpTo(pairs[pi].AIdx)
			oi = pairs[pi].AIdx + 1
			pi++
			writeSep()
			d.WriteString(it.Raw)
			continue
		}
		writeSep()
		if it.Kind == htmldoc.Word {
			d.WriteString("<STRONG><I>" + it.Raw + "</I></STRONG>")
		} else {
			d.WriteString(it.Raw) // new markup kept, unhighlighted
		}
	}
	flushOldUpTo(len(old.Items))
	d.writeByte('\n')
}
