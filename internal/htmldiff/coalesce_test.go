package htmldiff

import (
	"strings"
	"testing"
)

// muddled builds the §5.3 worst case: every other sentence changed.
const muddledOld = `<P>one stays. two goes. three stays. four goes. five stays. six goes.</P>`
const muddledNew = `<P>one stays. TWO CAME. three stays. FOUR CAME. five stays. SIX CAME.</P>`

func TestCoalesceMergesAlternatingChanges(t *testing.T) {
	plain := Diff(muddledOld, muddledNew, Options{})
	coal := Diff(muddledOld, muddledNew, Options{CoalesceWithin: 2})
	if plain.Stats.Differences <= coal.Stats.Differences {
		t.Fatalf("coalescing did not reduce regions: %d -> %d",
			plain.Stats.Differences, coal.Stats.Differences)
	}
	if coal.Stats.Differences != 1 {
		t.Fatalf("want one coalesced region, got %d", coal.Stats.Differences)
	}
	// The old passage appears struck as a block, before the new passage.
	out := body(coal)
	firstStrike := strings.Index(out, "<STRIKE>")
	lastStrike := strings.LastIndex(out, "</STRIKE>")
	firstEmph := strings.Index(out, "<STRONG><I>")
	if firstStrike < 0 || firstEmph < 0 || lastStrike > firstEmph {
		t.Errorf("old block does not precede new block:\n%s", out)
	}
	// All content survives: old deleted words struck, new words present.
	for _, want := range []string{"two", "four", "six", "TWO", "FOUR", "SIX", "one", "five"} {
		if !strings.Contains(out, want) {
			t.Errorf("coalesced output missing %q:\n%s", want, out)
		}
	}
}

func TestCoalesceLeavesIsolatedChangesAlone(t *testing.T) {
	a := `<P>alpha beta gamma delta epsilon zeta eta theta one gone here.</P>
<P>middle paragraph totally stable with many words inside it.</P>
<P>iota kappa lambda mu nu xi omicron pi two gone here.</P>`
	b := strings.ReplaceAll(a, "one gone here", "one came here")
	b = strings.ReplaceAll(b, "two gone here", "two came here")
	plain := Diff(a, b, Options{})
	coal := Diff(a, b, Options{CoalesceWithin: 1})
	// The changes are far apart (long common runs), so coalescing with a
	// small window must not merge them.
	if coal.Stats.Differences != plain.Stats.Differences {
		t.Errorf("distant changes merged: %d vs %d",
			coal.Stats.Differences, plain.Stats.Differences)
	}
}

func TestCoalesceZeroIsIdentity(t *testing.T) {
	a := muddledOld
	b := muddledNew
	plain := Diff(a, b, Options{})
	zero := Diff(a, b, Options{CoalesceWithin: 0})
	if plain.HTML != zero.HTML {
		t.Error("CoalesceWithin=0 altered output")
	}
}

func TestCoalesceOnlyNewMode(t *testing.T) {
	r := Diff(muddledOld, muddledNew, Options{CoalesceWithin: 2, Mode: OnlyNew})
	out := body(r)
	if strings.Contains(out, "<STRIKE>") {
		t.Errorf("OnlyNew block contains strike-out:\n%s", out)
	}
	for _, want := range []string{"TWO", "FOUR", "SIX", "one", "three"} {
		if !strings.Contains(out, want) {
			t.Errorf("OnlyNew block missing %q:\n%s", want, out)
		}
	}
}

func TestCoalesceIdenticalInputsUnaffected(t *testing.T) {
	r := Diff(muddledOld, muddledOld, Options{CoalesceWithin: 3})
	if r.Stats.Changed() || r.Stats.Differences != 0 {
		t.Errorf("identical inputs with coalescing: %+v", r.Stats)
	}
}
