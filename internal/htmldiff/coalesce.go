package htmldiff

import (
	"aide/internal/htmldoc"
)

// This file implements the other §5.3 refinement: "We are experimenting
// with methods for varying the degree to which old and new text can be
// interspersed". When every other sentence changed, the strict merged
// page becomes a muddle of alternating struck-out and emphasised
// fragments. Coalescing rewrites such passages as one block: the old
// passage struck out in full, then the new passage in full — at the cost
// of repeating the small amount of common text inside the block.

// blockPart is one token of a coalesced block's new side.
type blockPart struct {
	tok      htmldoc.Token
	inserted bool
}

// coalesce merges difference regions separated by runs of at most
// within common tokens into single block segments. within <= 0 leaves
// the segments untouched.
func coalesce(segs []segment, within int) []segment {
	if within <= 0 {
		return segs
	}
	var out []segment
	i := 0
	for i < len(segs) {
		if segs[i].kind == segCommon {
			out = append(out, segs[i])
			i++
			continue
		}
		// Start of a difference cluster: extend while the gaps between
		// difference segments are short common runs.
		j := i
		diffCount := 0
		last := i
		for j < len(segs) {
			if segs[j].kind == segCommon {
				if len(segs[j].new) > within {
					break
				}
				j++
				continue
			}
			diffCount++
			last = j
			j++
		}
		cluster := segs[i : last+1]
		if diffCount < 2 {
			// A lone difference region is already readable.
			out = append(out, cluster...)
		} else {
			out = append(out, buildBlock(cluster))
		}
		i = last + 1
	}
	return out
}

// buildBlock folds a cluster of segments into one block segment.
func buildBlock(cluster []segment) segment {
	blk := segment{kind: segBlock}
	for _, s := range cluster {
		switch s.kind {
		case segCommon:
			blk.old = append(blk.old, s.old...)
			for _, tok := range s.new {
				blk.parts = append(blk.parts, blockPart{tok: tok})
			}
		case segOld:
			blk.old = append(blk.old, s.old...)
		case segNew:
			for _, tok := range s.new {
				blk.parts = append(blk.parts, blockPart{tok: tok, inserted: true})
			}
		case segModified:
			blk.old = append(blk.old, s.old...)
			blk.parts = append(blk.parts, blockPart{tok: s.new[0], inserted: true})
		}
	}
	return blk
}

// renderBlock writes a coalesced block: the old passage struck out in
// full, then the new passage with its insertions emphasised.
func renderBlock(sb *docWriter, s segment) {
	renderOldTokens(sb, s.old)
	for _, p := range s.parts {
		if p.tok.Kind == htmldoc.Breaking {
			sb.WriteString(p.tok.Text())
			sb.writeByte('\n')
			continue
		}
		if p.inserted {
			renderEmphasizedSentence(sb, p.tok, nil)
		} else {
			sb.WriteString(p.tok.Text())
			sb.writeByte('\n')
		}
	}
}
