package htmldiff

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"aide/internal/htmldoc"
	"aide/internal/lcs"
	"aide/internal/obs"
)

// editInPlace derives a new document with edit-style changes only (word
// replacements, sentence insertions, fragment deletions — no moves), the
// change class real pages exhibit between polls and the one for which the
// anchored fast path must score exactly what the DP oracle scores.
func editInPlace(r *rand.Rand, doc string) string {
	parts := strings.SplitAfter(doc, ">")
	if len(parts) < 4 {
		return doc + "<P>added tail sentence here.</P>"
	}
	for edits := 0; edits < 1+r.Intn(3); edits++ {
		i := 1 + r.Intn(len(parts)-2)
		switch r.Intn(3) {
		case 0:
			parts[i] = "" // delete a fragment
		case 1:
			parts[i] += fmt.Sprintf("<P>inserted sentence number %d right here. </P>", edits)
		default:
			// Replace a word inside the fragment.
			words := strings.Fields(parts[i])
			if len(words) > 0 && !strings.HasPrefix(words[0], "<") {
				words[0] = fmt.Sprintf("edited%d", edits)
				parts[i] = strings.Join(words, " ")
			}
		}
	}
	return strings.Join(parts, "")
}

// TestPropertyAnchoredAlignmentMatchesOracle asserts the tentpole
// equivalence: on edit-style changes the anchored fast path's alignment
// has exactly the total match weight of the quadratic DP oracle.
func TestPropertyAnchoredAlignmentMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 150; trial++ {
		oldDoc := genDoc(r)
		newDoc := editInPlace(r, oldDoc)
		w := newTokenWeights(htmldoc.Tokenize(oldDoc), htmldoc.Tokenize(newDoc), 0.5, 0.5)
		anchored, _ := lcs.AnchoredStats(w)
		oracle := lcs.DP(w)
		aw, dw := lcs.TotalWeight(anchored), lcs.TotalWeight(oracle)
		if aw != dw {
			t.Fatalf("trial %d: anchored weight %v != oracle %v\nold: %s\nnew: %s",
				trial, aw, dw, oldDoc, newDoc)
		}
	}
}

// TestPropertyAnchoredNeverBeatsOracle covers arbitrary mutations
// including paragraph swaps: moved content may legitimately produce a
// lower-weight (still valid) alignment, but never a higher one, and the
// result must remain a valid increasing match sequence.
func TestPropertyAnchoredNeverBeatsOracle(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 150; trial++ {
		oldDoc := genDoc(r)
		newDoc := mutate(r, mutate(r, oldDoc))
		w := newTokenWeights(htmldoc.Tokenize(oldDoc), htmldoc.Tokenize(newDoc), 0.5, 0.5)
		anchored, _ := lcs.AnchoredStats(w)
		dw := lcs.TotalWeight(lcs.DP(w))
		if aw := lcs.TotalWeight(anchored); aw > dw {
			t.Fatalf("trial %d: anchored weight %v exceeds oracle %v", trial, aw, dw)
		}
		lastA, lastB := -1, -1
		for _, p := range anchored {
			if p.AIdx <= lastA || p.BIdx <= lastB {
				t.Fatalf("trial %d: pairs not increasing: %v", trial, anchored)
			}
			if got := w.Weight(p.AIdx, p.BIdx); got != p.Weight || got <= 0 {
				t.Fatalf("trial %d: pair %v weight mismatch (got %v)", trial, p, got)
			}
			lastA, lastB = p.AIdx, p.BIdx
		}
	}
}

// TestInterningIdentity: interned ids agree with NormKey equality across
// both token streams, including the kind distinction.
func TestInterningIdentity(t *testing.T) {
	oldDoc := "<P>alpha beta. <HR> gamma delta.</P>"
	newDoc := "<P>alpha beta. <HR> gamma DELTA.</P>"
	a, b := htmldoc.Tokenize(oldDoc), htmldoc.Tokenize(newDoc)
	w := newTokenWeights(a, b, 0.5, 0.5)
	for i := range a {
		for j := range b {
			gotEq := w.idA[i] == w.idB[j]
			wantEq := a[i].Kind == b[j].Kind && a[i].NormKey() == b[j].NormKey()
			if gotEq != wantEq {
				t.Errorf("intern mismatch at (%d,%d): ids equal=%v, norm keys equal=%v",
					i, j, gotEq, wantEq)
			}
		}
	}
}

func TestAnchorMetricsRecorded(t *testing.T) {
	// A diff with shared structure must record anchor/trim activity.
	old := "<P>first stable sentence here. unique anchor sentence alpha. tail words.</P>"
	new := "<P>first stable sentence here. unique anchor sentence alpha. tail words changed.</P>"
	before := obs.Default.Counter("lcs.anchor.trimmed").Value()
	Diff(old, new, Options{})
	if after := obs.Default.Counter("lcs.anchor.trimmed").Value(); after <= before {
		t.Errorf("lcs.anchor.trimmed did not advance: %d -> %d", before, after)
	}
}
