package htmldiff

import (
	"strings"
	"testing"
)

// body strips the banner (everything through the first <HR>) so tests can
// assert on the marked-up document itself; the banner legend contains
// literal <STRIKE>/<STRONG> samples.
func body(r Result) string {
	_, rest, ok := strings.Cut(r.HTML, "<HR>\n")
	if !ok {
		return r.HTML
	}
	return rest
}

func TestIdenticalPagesNoDifferences(t *testing.T) {
	page := `<HTML><BODY><H1>Title</H1><P>Some stable text here.</P></BODY></HTML>`
	r := Diff(page, page, Options{})
	if r.Stats.Changed() {
		t.Fatalf("identical pages reported changed: %+v", r.Stats)
	}
	if !strings.Contains(r.HTML, "No differences found") {
		t.Errorf("banner missing no-differences notice:\n%s", r.HTML)
	}
	if strings.Contains(r.HTML, "<STRIKE>") || strings.Contains(r.HTML, "<STRONG><I>") {
		t.Errorf("identical diff contains change markup:\n%s", r.HTML)
	}
}

func TestWhitespaceOnlyChangeIsNoChange(t *testing.T) {
	a := "<P>Hello   world. </P>"
	b := "<P>\nHello world.\n</P>"
	if s := Compare(a, b, Options{}); s.Changed() {
		t.Errorf("whitespace-only difference flagged: %+v", s)
	}
}

func TestInsertedSentenceEmphasized(t *testing.T) {
	a := `<P>First sentence stays.</P>`
	b := `<P>First sentence stays. Brand new sentence added.</P>`
	r := Diff(a, b, Options{})
	if r.Stats.Inserted == 0 {
		t.Fatalf("no insertion detected: %+v", r.Stats)
	}
	if !strings.Contains(body(r), "<STRONG><I>Brand") {
		t.Errorf("inserted text not emphasized:\n%s", r.HTML)
	}
	if strings.Contains(body(r), "<STRIKE>") {
		t.Errorf("pure insertion produced struck-out text:\n%s", r.HTML)
	}
}

func TestDeletedSentenceStruckOut(t *testing.T) {
	a := `<P>Keep this. Delete this entire sentence.</P>`
	b := `<P>Keep this.</P>`
	r := Diff(a, b, Options{})
	if r.Stats.Deleted == 0 {
		t.Fatalf("no deletion detected: %+v", r.Stats)
	}
	if !strings.Contains(r.HTML, "<STRIKE>Delete this entire sentence.</STRIKE>") {
		t.Errorf("deleted text not struck out:\n%s", r.HTML)
	}
}

func TestOldMarkupsEliminated(t *testing.T) {
	// Deleted sentences lose their markups: dead links and images must
	// not appear in the merged page (§5.2).
	a := `<P>Gone sentence with <A HREF="dead.html">a dead link</A> and <IMG SRC="gone.gif"> image.</P>`
	b := `<P>Completely different replacement text without any of those markups whatsoever.</P>`
	r := Diff(a, b, Options{})
	if strings.Contains(r.HTML, "dead.html") || strings.Contains(r.HTML, "gone.gif") {
		t.Errorf("old markups leaked into merged page:\n%s", r.HTML)
	}
	if !strings.Contains(r.HTML, "<STRIKE>") {
		t.Errorf("deleted words not struck out:\n%s", r.HTML)
	}
}

func TestModifiedSentenceWordLevel(t *testing.T) {
	a := `<P>The committee meets on Tuesday at noon.</P>`
	b := `<P>The committee meets on Thursday at noon.</P>`
	r := Diff(a, b, Options{})
	if r.Stats.Modified != 1 {
		t.Fatalf("want 1 modified sentence, got %+v", r.Stats)
	}
	if !strings.Contains(r.HTML, "<STRIKE>Tuesday</STRIKE>") {
		t.Errorf("old word not struck:\n%s", r.HTML)
	}
	if !strings.Contains(r.HTML, "<STRONG><I>Thursday</I></STRONG>") {
		t.Errorf("new word not emphasized:\n%s", r.HTML)
	}
	// Unchanged words keep their original font.
	if strings.Contains(r.HTML, "<STRONG><I>committee") {
		t.Errorf("unchanged word emphasized:\n%s", r.HTML)
	}
}

func TestAnchorURLChangeKeepsTextFont(t *testing.T) {
	// The paper's example: changing the URL in an anchor but not the
	// anchor text. An arrow points at the sentence, but the text itself
	// stays in its original font.
	a := `<P>See <A HREF="old-location.html">the project page</A> for details.</P>`
	b := `<P>See <A HREF="new-location.html">the project page</A> for details.</P>`
	r := Diff(a, b, Options{})
	if r.Stats.Modified != 1 {
		t.Fatalf("want modified sentence, got %+v", r.Stats)
	}
	if strings.Contains(body(r), "<STRIKE>") || strings.Contains(body(r), "<STRONG><I>") {
		t.Errorf("anchor-only change altered text font:\n%s", r.HTML)
	}
	if !strings.Contains(r.HTML, "new-location.html") {
		t.Errorf("new anchor missing:\n%s", r.HTML)
	}
	if strings.Contains(r.HTML, "old-location.html") {
		t.Errorf("old anchor kept:\n%s", r.HTML)
	}
	if !strings.Contains(r.HTML, anchorName(1)) {
		t.Errorf("no arrow points at the modified sentence:\n%s", r.HTML)
	}
}

func TestParagraphToListIsFormatChangeOnly(t *testing.T) {
	// §5.1: sentence content matches; the <P> -> <UL>/<LI> markups are
	// the differences.
	a := `<P>First point here. Second point here.</P>`
	b := `<UL><LI>First point here.<LI>Second point here.</UL>`
	r := Diff(a, b, Options{})
	if r.Stats.Modified != 0 {
		t.Errorf("sentences reported modified: %+v", r.Stats)
	}
	// The content sentences survive unhighlighted.
	if strings.Contains(r.HTML, "<STRIKE>First") || strings.Contains(r.HTML, "<STRONG><I>First") {
		t.Errorf("unchanged sentence content highlighted:\n%s", r.HTML)
	}
	// Structural change is visible: the new list markup is present.
	if !strings.Contains(r.HTML, "<UL>") {
		t.Errorf("new structure missing:\n%s", r.HTML)
	}
}

func TestArrowChain(t *testing.T) {
	a := `<P>One stays. Two goes away. Three stays. Four goes away too. Five stays.</P>`
	b := `<P>One stays. Three stays. Five stays. Six is brand new here.</P>`
	r := Diff(a, b, Options{})
	if r.Stats.Differences < 2 {
		t.Fatalf("expected at least 2 difference regions: %+v", r.Stats)
	}
	// First arrow links to second.
	if !strings.Contains(r.HTML, `<A NAME="AIDE-diff-1" HREF="#AIDE-diff-2">`) {
		t.Errorf("arrow chain broken:\n%s", r.HTML)
	}
	// Last arrow links back to the top.
	last := anchorName(r.Stats.Differences)
	if !strings.Contains(r.HTML, `<A NAME="`+last+`" HREF="#AIDE-top">`) {
		t.Errorf("last arrow does not return to top:\n%s", r.HTML)
	}
	// Banner links to the first difference.
	if !strings.Contains(r.HTML, `<A HREF="#AIDE-diff-1">First difference</A>`) {
		t.Errorf("banner missing first-difference link:\n%s", r.HTML)
	}
}

func TestOldAndNewArrowsDistinct(t *testing.T) {
	a := `<P>Content removed entirely from this page now.</P><P>Shared tail sentence.</P>`
	b := `<P>Shared tail sentence.</P><P>Fresh content appended to this page now.</P>`
	r := Diff(a, b, Options{})
	if !strings.Contains(r.HTML, "#CC0000") {
		t.Errorf("no red (old) arrow:\n%s", r.HTML)
	}
	if !strings.Contains(r.HTML, "#007700") {
		t.Errorf("no green (new) arrow:\n%s", r.HTML)
	}
}

func TestReverseSwapsRoles(t *testing.T) {
	a := `<P>Original sentence about cats.</P>`
	b := `<P>Original sentence about cats. Added sentence about dogs.</P>`
	r := Diff(a, b, Options{Reverse: true})
	// Reversed: the added sentence is now the "old" (deleted) one.
	if !strings.Contains(r.HTML, "<STRIKE>Added sentence about dogs.</STRIKE>") {
		t.Errorf("reverse mode did not strike the added sentence:\n%s", r.HTML)
	}
}

func TestOnlyDifferencesElidesCommon(t *testing.T) {
	a := `<P>Common alpha beta gamma delta. Removed sentence here.</P>`
	b := `<P>Common alpha beta gamma delta.</P>`
	r := Diff(a, b, Options{Mode: OnlyDifferences})
	if strings.Contains(r.HTML, "alpha beta gamma") {
		t.Errorf("common text not elided:\n%s", r.HTML)
	}
	if !strings.Contains(r.HTML, "<STRIKE>Removed sentence here.</STRIKE>") {
		t.Errorf("difference missing:\n%s", r.HTML)
	}
}

func TestOnlyNewHidesDeletions(t *testing.T) {
	a := `<P>Stays the same. Vanishing sentence.</P>`
	b := `<P>Stays the same. Arriving sentence.</P>`
	r := Diff(a, b, Options{Mode: OnlyNew})
	if strings.Contains(r.HTML, "Vanishing") {
		t.Errorf("deleted material shown in OnlyNew mode:\n%s", r.HTML)
	}
	if !strings.Contains(body(r), "Arriving sentence.") {
		t.Errorf("new material missing:\n%s", r.HTML)
	}
	if strings.Contains(body(r), "<STRIKE>") {
		t.Errorf("strike-out in OnlyNew mode:\n%s", r.HTML)
	}
}

func TestSuppressionOnPervasiveChange(t *testing.T) {
	a := `<P>alpha one. beta two. gamma three. delta four. epsilon five.</P>`
	b := `<P>zeta six. eta seven. theta eight. iota nine. kappa ten.</P>`
	r := Diff(a, b, Options{MaxChangeFraction: 0.5, Title: "http://x/"})
	if !r.Suppressed {
		t.Fatalf("pervasive change not suppressed: %+v", r.Stats)
	}
	if strings.Contains(r.HTML, "<STRIKE>") {
		t.Errorf("suppressed view still contains strike-outs:\n%s", r.HTML)
	}
	if !strings.Contains(r.HTML, "too pervasive") {
		t.Errorf("suppression notice missing:\n%s", r.HTML)
	}
	// The new content is shown.
	if !strings.Contains(r.HTML, "kappa ten.") {
		t.Errorf("new page content missing:\n%s", r.HTML)
	}
}

func TestSuppressionNotTriggeredBelowThreshold(t *testing.T) {
	a := `<P>one two three four five six seven eight nine ten. changed bit.</P>`
	b := `<P>one two three four five six seven eight nine ten. altered bit.</P>`
	r := Diff(a, b, Options{MaxChangeFraction: 0.9})
	if r.Suppressed {
		t.Errorf("small change suppressed: %+v", r.Stats)
	}
}

func TestTitleEscaped(t *testing.T) {
	r := Diff("<P>a.</P>", "<P>b.</P>", Options{Title: `<script>"evil"</script>`})
	if strings.Contains(r.HTML, "<script>") {
		t.Errorf("title not escaped:\n%s", r.HTML)
	}
}

func TestCustomArrows(t *testing.T) {
	a := `<P>old sentence removed now.</P><P>shared ending sentence.</P>`
	b := `<P>shared ending sentence.</P>`
	r := Diff(a, b, Options{OldArrow: `<IMG SRC="red.gif" ALT="old">`})
	if !strings.Contains(r.HTML, `<IMG SRC="red.gif" ALT="old">`) {
		t.Errorf("custom arrow not used:\n%s", r.HTML)
	}
}

func TestPreContentComparedByLine(t *testing.T) {
	a := "<PRE>\nline one   kept\nline two   gone\n</PRE>"
	b := "<PRE>\nline one   kept\nline two   here\n</PRE>"
	r := Diff(a, b, Options{})
	if !r.Stats.Changed() {
		t.Fatalf("pre change not detected")
	}
	// Spacing inside PRE is preserved in the output.
	if !strings.Contains(r.HTML, "line one   kept") {
		t.Errorf("pre spacing lost:\n%s", r.HTML)
	}
}

func TestCompareStatsCounts(t *testing.T) {
	a := `<P>s one stays here. s two leaves now.</P>`
	b := `<P>s one stays here. s three arrives now.</P>`
	s := Compare(a, b, Options{})
	if s.Deleted+s.Modified == 0 || s.Inserted+s.Modified == 0 {
		t.Errorf("stats missing changes: %+v", s)
	}
	if s.ChangeFraction <= 0 || s.ChangeFraction > 1 {
		t.Errorf("change fraction out of range: %v", s.ChangeFraction)
	}
}

func TestEmptyInputs(t *testing.T) {
	r := Diff("", "", Options{})
	if r.Stats.Changed() {
		t.Errorf("empty vs empty changed: %+v", r.Stats)
	}
	r = Diff("", "<P>brand new page content.</P>", Options{})
	if r.Stats.Inserted == 0 {
		t.Errorf("empty old vs content: %+v", r.Stats)
	}
	r = Diff("<P>removed page content.</P>", "", Options{})
	if r.Stats.Deleted == 0 {
		t.Errorf("content vs empty new: %+v", r.Stats)
	}
}

// usenixOld/usenixNew model the Figure 2 scenario: two versions of an
// association home page with an edited announcement and a new item.
const usenixOld = `<HTML><HEAD><TITLE>USENIX Association</TITLE></HEAD><BODY>
<H1>USENIX: The UNIX and Advanced Computing Systems Association</H1>
<P>USENIX is the UNIX and Advanced Computing Systems professional and
technical association.</P>
<UL>
<LI><A HREF="events.html">Calendar of upcoming events</A>
<LI><A HREF="lisa95.html">LISA IX, Monterey, September 17-22, 1995.</A>
<LI><A HREF="sec95.html">5th Security Symposium, Salt Lake City.</A>
</UL>
<P>Membership information is available online. Contact our office for
registration materials.</P>
<HR>
<ADDRESS>USENIX Association, Berkeley CA</ADDRESS>
</BODY></HTML>`

const usenixNew = `<HTML><HEAD><TITLE>USENIX Association</TITLE></HEAD><BODY>
<H1>USENIX: The UNIX and Advanced Computing Systems Association</H1>
<P>USENIX is the UNIX and Advanced Computing Systems professional and
technical association.</P>
<UL>
<LI><A HREF="events.html">Calendar of upcoming events</A>
<LI><A HREF="usenix96.html">1996 USENIX Technical Conference, San Diego,
January 22-26, 1996.</A>
<LI><A HREF="sec95.html">5th Security Symposium, Salt Lake City.</A>
<LI><A HREF="sage.html">SAGE: the System Administrators Guild</A>
</UL>
<P>Membership information is available online. Contact our office for
registration materials.</P>
<HR>
<ADDRESS>USENIX Association, Berkeley CA</ADDRESS>
</BODY></HTML>`

func TestMergedPageFigure2(t *testing.T) {
	r := Diff(usenixOld, usenixNew, Options{Title: "http://www.usenix.org/"})
	// The LISA announcement was replaced by the 1996 conference.
	if !strings.Contains(body(r), "<STRIKE>") {
		t.Errorf("no struck-out old announcement:\n%s", r.HTML)
	}
	if !strings.Contains(r.HTML, "usenix96.html") {
		t.Errorf("new announcement link missing:\n%s", r.HTML)
	}
	if strings.Contains(r.HTML, "lisa95.html") {
		t.Errorf("old announcement link survived into merged page:\n%s", r.HTML)
	}
	// The SAGE item is a pure addition and must be emphasised.
	if !strings.Contains(r.HTML, "<STRONG><I>SAGE:") {
		t.Errorf("added item not emphasized:\n%s", r.HTML)
	}
	// Common material appears exactly once.
	if n := strings.Count(r.HTML, "Membership information is available online."); n != 1 {
		t.Errorf("common sentence appears %d times", n)
	}
	// Arrows chain from the banner through every region.
	if !strings.Contains(r.HTML, `HREF="#AIDE-diff-1"`) {
		t.Errorf("banner does not link to first difference:\n%s", r.HTML)
	}
}

func TestLargeDocumentAlignment(t *testing.T) {
	// Build a long document and verify the aligner stays correct when
	// the memo path and Hirschberg recursion are well exercised.
	var a, b strings.Builder
	for i := 0; i < 300; i++ {
		s := "<P>Paragraph number " + strings.Repeat("x", i%7+1) + " content sentence here.</P>\n"
		a.WriteString(s)
		if i%29 == 0 {
			b.WriteString("<P>Injected sentence replaces the original paragraph entirely.</P>\n")
		} else {
			b.WriteString(s)
		}
	}
	r := Diff(a.String(), b.String(), Options{})
	if !r.Stats.Changed() {
		t.Fatal("changes not detected in large doc")
	}
	if r.Stats.Common == 0 {
		t.Fatal("no common tokens found in large doc")
	}
	// Most of the document is unchanged.
	if r.Stats.ChangeFraction > 0.3 {
		t.Errorf("change fraction unexpectedly high: %v", r.Stats.ChangeFraction)
	}
}

func BenchmarkHtmlDiffSmallChange(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString("<P>Stable paragraph with a handful of words in it. ")
		sb.WriteString("Second stable sentence too.</P>\n")
	}
	oldPage := sb.String()
	newPage := strings.Replace(oldPage, "handful", "bunch", 3)
	b.SetBytes(int64(len(oldPage)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Diff(oldPage, newPage, Options{})
	}
}

func BenchmarkCompareIdentical(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("<P>Identical page content sentence number whatever.</P>\n")
	}
	page := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(page, page, Options{})
	}
}
