package formreg

import (
	"context"
	"net/url"
	"strings"
	"testing"
	"time"

	"aide/internal/simclock"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// stockService installs a POST-only quote service on the synthetic web
// — the classic CGI-behind-a-form case of §8.4.
func stockService(web *websim.Web) {
	page := web.Site("quotes.example.com").Page("/cgi-bin/lookup")
	prices := map[string]int{"T": 63, "IBM": 91}
	page.SetForm(func(form url.Values, _ int) string {
		sym := form.Get("symbol")
		price, ok := prices[sym]
		if !ok {
			return "<HTML><BODY>Unknown symbol " + sym + "</BODY></HTML>\n"
		}
		if form.Get("detail") == "full" {
			price += 1000 // different view, different output
		}
		return "<HTML><BODY>" + sym + " trades at " + itoa(price) + "</BODY></HTML>\n"
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestSaveLookupInvoke(t *testing.T) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	stockService(web)
	client := webclient.New(web)
	reg, err := New("")
	if err != nil {
		t.Fatal(err)
	}

	f, err := reg.Save("AT&T quote", "http://quotes.example.com/cgi-bin/lookup",
		url.Values{"symbol": {"T"}})
	if err != nil {
		t.Fatal(err)
	}
	if !IsFormURL(f.PseudoURL()) || !strings.HasPrefix(f.PseudoURL(), "form:") {
		t.Fatalf("pseudo URL = %q", f.PseudoURL())
	}
	if _, ok := reg.Lookup(f.PseudoURL()); !ok {
		t.Fatal("lookup by pseudo-URL failed")
	}

	info, err := reg.Invoke(context.Background(), client, f.PseudoURL())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Body, "T trades at 63") {
		t.Fatalf("service output = %q", info.Body)
	}
	if info.URL != f.PseudoURL() {
		t.Errorf("info URL = %q, want pseudo-URL", info.URL)
	}
	if info.Checksum == "" {
		t.Error("no checksum on POST output")
	}
}

func TestStableIDsAndDistinctInputs(t *testing.T) {
	reg, _ := New("")
	a1, _ := reg.Save("one", "http://svc/", url.Values{"q": {"x"}})
	a2, _ := reg.Save("renamed", "http://svc/", url.Values{"q": {"x"}})
	if a1.ID != a2.ID {
		t.Errorf("same input got different IDs: %s vs %s", a1.ID, a2.ID)
	}
	b, _ := reg.Save("other", "http://svc/", url.Values{"q": {"y"}})
	if b.ID == a1.ID {
		t.Error("different inputs share an ID")
	}
	if len(reg.All()) != 2 {
		t.Errorf("All = %d entries", len(reg.All()))
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	reg, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := reg.Save("persisted", "http://svc/run", url.Values{"a": {"1"}, "b": {"2"}})
	if err != nil {
		t.Fatal(err)
	}

	reg2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reg2.Lookup(f.ID)
	if !ok || got.Action != "http://svc/run" || got.Fields.Get("b") != "2" || got.Title != "persisted" {
		t.Fatalf("reloaded form = %+v ok=%v", got, ok)
	}

	if err := reg2.Delete(f.PseudoURL()); err != nil {
		t.Fatal(err)
	}
	reg3, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg3.Lookup(f.ID); ok {
		t.Error("deleted form survived reload")
	}
}

func TestInvokeUnknownForm(t *testing.T) {
	reg, _ := New("")
	client := webclient.New(websim.New(simclock.New(time.Time{})))
	if _, err := reg.Invoke(context.Background(), client, "form:doesnotexist"); err == nil {
		t.Error("unknown form invoked successfully")
	}
}

func TestSaveRejectsEmptyAction(t *testing.T) {
	reg, _ := New("")
	if _, err := reg.Save("t", "", url.Values{}); err == nil {
		t.Error("empty action accepted")
	}
}

func TestChangeDetectionThroughChecksums(t *testing.T) {
	// The §8.4 end goal: notice when a POST service's output changes for
	// the same stored input.
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	counterOn := false
	page := web.Site("svc.example").Page("/report")
	page.SetForm(func(form url.Values, n int) string {
		if counterOn {
			return "<HTML><BODY>report v2 for " + form.Get("q") + "</BODY></HTML>\n"
		}
		return "<HTML><BODY>report v1 for " + form.Get("q") + "</BODY></HTML>\n"
	})
	client := webclient.New(web)
	reg, _ := New("")
	f, _ := reg.Save("report", "http://svc.example/report", url.Values{"q": {"weekly"}})

	i1, err := reg.Invoke(context.Background(), client, f.ID)
	if err != nil {
		t.Fatal(err)
	}
	i2, _ := reg.Invoke(context.Background(), client, f.ID)
	if i1.Checksum != i2.Checksum {
		t.Fatal("stable service produced differing checksums")
	}
	counterOn = true
	i3, _ := reg.Invoke(context.Background(), client, f.ID)
	if i3.Checksum == i1.Checksum {
		t.Fatal("changed service output not reflected in checksum")
	}
}

func TestGetOnPostOnlyServiceFails(t *testing.T) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	stockService(web)
	client := webclient.New(web)
	info, err := client.Get(context.Background(), "http://quotes.example.com/cgi-bin/lookup")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != 405 {
		t.Errorf("GET on POST-only service: status %d, want 405", info.Status)
	}
}
