// Package formreg implements the §8.4 extension: tracking CGI services
// that are invoked through the POST protocol. GET services can be
// tracked like any page because their input is part of the URL, but
// "services that use POST cannot be accessed, because the input to the
// services is not stored."
//
// The paper's proposed interface is exactly what this package provides:
// the user saves a filled-out form with AIDE ("change the URL the form
// invokes to be something provided by AIDE. It, in turn, would have to
// make a copy of its input to pass along to the actual service"). A
// saved form gets a stable pseudo-URL, form:<id>, which w3newer can
// poll (POST + checksum, since POST output never has a Last-Modified)
// and the snapshot facility can archive and diff.
package formreg

import (
	"context"
	"crypto/sha1"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"

	"aide/internal/fsatomic"
	"strings"
	"sync"

	"aide/internal/webclient"
)

// Scheme is the pseudo-URL scheme for saved forms.
const Scheme = "form:"

// SavedForm is one filled-out form kept by AIDE.
type SavedForm struct {
	// ID is the stable handle derived from the action and fields.
	ID string `json:"id"`
	// Title is the user's description for reports.
	Title string `json:"title,omitempty"`
	// Action is the URL the form invokes (the FORM tag's ACTION).
	Action string `json:"action"`
	// Fields is the filled-out input, re-sent on every invocation.
	Fields url.Values `json:"fields"`
}

// PseudoURL returns the trackable form:<id> URL for the saved form.
func (f SavedForm) PseudoURL() string { return Scheme + f.ID }

// Encode renders the fields in application/x-www-form-urlencoded form
// with deterministic key order.
func (f SavedForm) Encode() string { return f.Fields.Encode() }

// Registry stores saved forms, persistently when given a directory.
type Registry struct {
	mu    sync.Mutex
	forms map[string]SavedForm
	path  string // "" = in-memory only
}

// New returns a registry persisted in dir (or purely in-memory when dir
// is empty). An existing registry file is loaded.
func New(dir string) (*Registry, error) {
	r := &Registry{forms: make(map[string]SavedForm)}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	r.path = filepath.Join(dir, "forms.json")
	data, err := os.ReadFile(r.path)
	if err != nil {
		if os.IsNotExist(err) {
			return r, nil
		}
		return nil, err
	}
	var forms []SavedForm
	if err := json.Unmarshal(data, &forms); err != nil {
		return nil, fmt.Errorf("formreg: corrupt registry %s: %v", r.path, err)
	}
	for _, f := range forms {
		r.forms[f.ID] = f
	}
	return r, nil
}

// Save registers a filled-out form and returns it with its assigned ID.
// Saving the same action+fields again returns the same ID (updating the
// title), so pseudo-URLs are stable across sessions.
func (r *Registry) Save(title, action string, fields url.Values) (SavedForm, error) {
	if action == "" {
		return SavedForm{}, fmt.Errorf("formreg: empty action URL")
	}
	f := SavedForm{Title: title, Action: action, Fields: fields}
	f.ID = formID(action, fields)
	r.mu.Lock()
	r.forms[f.ID] = f
	err := r.persistLocked()
	r.mu.Unlock()
	if err != nil {
		return SavedForm{}, err
	}
	return f, nil
}

// Lookup resolves a form ID or pseudo-URL.
func (r *Registry) Lookup(idOrURL string) (SavedForm, bool) {
	id := strings.TrimPrefix(idOrURL, Scheme)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.forms[id]
	return f, ok
}

// Delete removes a saved form.
func (r *Registry) Delete(idOrURL string) error {
	id := strings.TrimPrefix(idOrURL, Scheme)
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.forms, id)
	return r.persistLocked()
}

// All lists saved forms sorted by ID.
func (r *Registry) All() []SavedForm {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SavedForm, 0, len(r.forms))
	for _, f := range r.forms {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Invoke replays the saved form against its service under ctx and
// returns the output ("make a copy of its input to pass along to the
// actual service"). The result carries a checksum; POST output never
// has a Last-Modified date, so checksums are the only change signal.
func (r *Registry) Invoke(ctx context.Context, client *webclient.Client, idOrURL string) (webclient.PageInfo, error) {
	f, ok := r.Lookup(idOrURL)
	if !ok {
		return webclient.PageInfo{}, fmt.Errorf("formreg: no saved form %q", idOrURL)
	}
	info, err := client.Post(ctx, f.Action, f.Encode())
	if err != nil {
		return info, err
	}
	// Reports show the pseudo-URL, not the (input-less) action.
	info.URL = f.PseudoURL()
	return info, nil
}

// IsFormURL reports whether url names a saved form.
func IsFormURL(url string) bool { return strings.HasPrefix(url, Scheme) }

// persistLocked writes the registry file; r.mu must be held.
func (r *Registry) persistLocked() error {
	if r.path == "" {
		return nil
	}
	forms := make([]SavedForm, 0, len(r.forms))
	for _, f := range r.forms {
		forms = append(forms, f)
	}
	sort.Slice(forms, func(i, j int) bool { return forms[i].ID < forms[j].ID })
	data, err := json.MarshalIndent(forms, "", "  ")
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(r.path, data, 0o644)
}

// formID derives the stable handle: a short hash of the action URL and
// the canonically encoded fields.
func formID(action string, fields url.Values) string {
	h := sha1.New()
	fmt.Fprintf(h, "%s\x00%s", action, fields.Encode())
	return hex.EncodeToString(h.Sum(nil))[:16]
}
