// Package proxycache implements the caching proxy that w3newer consults
// before going to the network (§3): it caches page bodies and
// modification dates with a time-to-live, and exposes the cached
// modification information as a cheap oracle — the paper's "related
// daemon on the same machine as an AT&T-wide proxy-caching server, which
// returns information about pages that are currently cached on the
// server and may eliminate some accesses over the Internet".
//
// The cache is a webclient.Transport wrapper, so a Client pointed at it
// behaves exactly like one pointed at the origin, minus the traffic.
package proxycache

import (
	"container/list"
	"context"
	"sync"
	"time"

	"aide/internal/obs"
	"aide/internal/simclock"
	"aide/internal/webclient"
)

// Stats counts cache outcomes.
type Stats struct {
	// Hits served entirely from cache.
	Hits int
	// Misses forwarded upstream (cold or expired).
	Misses int
	// Revalidated counts expired entries refreshed by a conditional GET
	// that came back 304 Not Modified.
	Revalidated int
	// Errors are upstream failures.
	Errors int
}

// Cache is a TTL + LRU caching proxy over an upstream transport.
type Cache struct {
	// TTL is how long a cached entry is served without revalidation
	// (the "time-to-live value" of §3.1).
	TTL time.Duration
	// MaxEntries bounds the cache size; older entries are evicted LRU.
	MaxEntries int
	// Metrics receives the hit/miss/revalidation counters (in addition
	// to the Stats snapshot); obs.Default when nil.
	Metrics *obs.Registry

	upstream webclient.Transport
	clock    simclock.Clock

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent
	stats   Stats
}

// entry is one cached page.
type entry struct {
	url      string
	status   int
	lastMod  time.Time
	location string
	body     string
	hasBody  bool
	cachedAt time.Time
}

// DefaultTTL mirrors a mid-1990s proxy's default freshness window.
const DefaultTTL = 24 * time.Hour

// New returns a cache over upstream. If clock is nil the wall clock is
// used.
func New(upstream webclient.Transport, clock simclock.Clock) *Cache {
	if clock == nil {
		clock = simclock.Wall{}
	}
	return &Cache{
		TTL:        DefaultTTL,
		MaxEntries: 10000,
		upstream:   upstream,
		clock:      clock,
		entries:    make(map[string]*list.Element),
		lru:        list.New(),
	}
}

// RoundTrip implements webclient.Transport. HEAD requests are satisfied
// from cached metadata when fresh; GET requests need a fresh cached
// body. An expired entry with a known modification date is revalidated
// with a conditional GET — a 304 renews it without re-transferring the
// body (the "check the modification date of a cached page" behaviour of
// §3.1's cache-consistency discussion). The caller's ctx flows through
// to the upstream transport; cache hits never consult it.
func (c *Cache) RoundTrip(ctx context.Context, req *webclient.Request) (*webclient.Response, error) {
	m := c.metrics()
	ctx, span := obs.StartSpan(ctx, "proxycache.lookup")
	span.SetAttr("url", req.URL)
	outcome := "miss"
	defer func() { span.SetAttr("outcome", outcome); span.End() }()
	now := c.clock.Now()
	var staleMod time.Time
	c.mu.Lock()
	if el, ok := c.entries[req.URL]; ok {
		e := el.Value.(*entry)
		if now.Sub(e.cachedAt) <= c.TTL && (req.Method == "HEAD" || e.hasBody) {
			c.lru.MoveToFront(el)
			c.stats.Hits++
			c.mu.Unlock()
			m.Counter("proxycache.hits").Inc()
			outcome = "hit"
			return e.respond(req.Method), nil
		}
		if e.hasBody && e.status == 200 && !e.lastMod.IsZero() && req.Method != "POST" {
			staleMod = e.lastMod
		}
	}
	c.stats.Misses++
	c.mu.Unlock()
	m.Counter("proxycache.misses").Inc()

	upReq := *req
	if !staleMod.IsZero() && upReq.IfModifiedSince.IsZero() {
		upReq.IfModifiedSince = staleMod
	}
	resp, err := c.upstream.RoundTrip(ctx, &upReq)
	if err != nil {
		c.mu.Lock()
		c.stats.Errors++
		c.mu.Unlock()
		m.Counter("proxycache.errors").Inc()
		outcome = "error"
		return nil, err
	}
	if resp.Status == 304 && !staleMod.IsZero() && req.IfModifiedSince.IsZero() {
		// Our own revalidation succeeded: renew the entry and answer
		// the client from it (the client did not ask conditionally).
		m.Counter("proxycache.revalidated").Inc()
		outcome = "revalidated"
		c.mu.Lock()
		c.stats.Revalidated++
		var renewed *webclient.Response
		if el, ok := c.entries[req.URL]; ok {
			e := el.Value.(*entry)
			e.cachedAt = now
			c.lru.MoveToFront(el)
			renewed = e.respond(req.Method)
		}
		c.mu.Unlock()
		if renewed != nil {
			return renewed, nil
		}
		// Entry vanished under us (eviction race): fall through with an
		// unconditional refetch.
		resp, err = c.upstream.RoundTrip(ctx, req)
		if err != nil {
			return nil, err
		}
	}
	c.store(req, resp, now)
	return resp, nil
}

// metrics returns the cache's registry (obs.Default when unset).
func (c *Cache) metrics() *obs.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return obs.Default
}

// store records an upstream response.
func (c *Cache) store(req *webclient.Request, resp *webclient.Response, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var e *entry
	if el, ok := c.entries[req.URL]; ok {
		e = el.Value.(*entry)
		c.lru.MoveToFront(el)
	} else {
		e = &entry{url: req.URL}
		c.entries[req.URL] = c.lru.PushFront(e)
	}
	e.status = resp.Status
	e.lastMod = resp.LastModified
	e.location = resp.Location
	e.cachedAt = now
	if req.Method != "HEAD" {
		e.body = resp.Body
		e.hasBody = true
	}
	for c.MaxEntries > 0 && c.lru.Len() > c.MaxEntries {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).url)
	}
}

// respond builds a response from a cached entry.
func (e *entry) respond(method string) *webclient.Response {
	resp := &webclient.Response{
		Status:       e.status,
		LastModified: e.lastMod,
		Location:     e.location,
	}
	if method != "HEAD" {
		resp.Body = e.body
	}
	return resp
}

// ModInfo is the daemon interface w3newer queries: the cached
// modification date for url and when that information was obtained.
// ok is false when the page is not in the cache (expired entries still
// report, with their old cachedAt — the caller judges staleness).
func (c *Cache) ModInfo(url string) (lastMod, cachedAt time.Time, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[url]
	if !found {
		return time.Time{}, time.Time{}, false
	}
	e := el.Value.(*entry)
	if e.status != 200 || e.lastMod.IsZero() {
		return time.Time{}, time.Time{}, false
	}
	return e.lastMod, e.cachedAt, true
}

// Stats returns a snapshot of the hit/miss counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Flush drops all entries (a client "forcing a full reload" at cache
// scope).
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
}
