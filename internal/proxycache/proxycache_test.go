package proxycache

import (
	"context"
	"testing"
	"time"

	"aide/internal/simclock"
	"aide/internal/webclient"
	"aide/internal/websim"
)

func newRig() (*websim.Web, *Cache, *simclock.Sim) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	return web, New(web, clock), clock
}

func TestCacheHitServesWithoutOrigin(t *testing.T) {
	web, cache, _ := newRig()
	web.Site("h").Page("/p").Set("body v1")
	c := webclient.New(cache)

	i1, err := c.Get(context.Background(), "http://h/p")
	if err != nil || i1.Body != "body v1" {
		t.Fatalf("first get: %+v err=%v", i1, err)
	}
	web.ResetRequestCounts()
	i2, err := c.Get(context.Background(), "http://h/p")
	if err != nil || i2.Body != "body v1" {
		t.Fatalf("second get: %+v err=%v", i2, err)
	}
	if h, g := web.TotalRequests(); h+g != 0 {
		t.Errorf("cache hit reached origin: %d requests", h+g)
	}
	s := cache.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTTLExpiryRefetches(t *testing.T) {
	web, cache, clock := newRig()
	p := web.Site("h").Page("/p")
	p.Set("v1")
	c := webclient.New(cache)
	c.Get(context.Background(), "http://h/p")
	clock.Advance(cache.TTL + time.Minute)
	p.Set("v2")

	info, err := c.Get(context.Background(), "http://h/p")
	if err != nil || info.Body != "v2" {
		t.Fatalf("expired entry served stale: %+v err=%v", info, err)
	}
}

func TestHeadSatisfiedFromGetEntry(t *testing.T) {
	web, cache, _ := newRig()
	web.Site("h").Page("/p").Set("body")
	c := webclient.New(cache)
	c.Get(context.Background(), "http://h/p")
	web.ResetRequestCounts()

	info, err := c.Head(context.Background(), "http://h/p")
	if err != nil || !info.HasLastModified {
		t.Fatalf("HEAD from cache: %+v err=%v", info, err)
	}
	if h, g := web.TotalRequests(); h+g != 0 {
		t.Errorf("cached HEAD reached origin")
	}
}

func TestGetAfterHeadFetchesBody(t *testing.T) {
	web, cache, _ := newRig()
	web.Site("h").Page("/p").Set("the body")
	c := webclient.New(cache)
	c.Head(context.Background(), "http://h/p") // caches metadata only
	info, err := c.Get(context.Background(), "http://h/p")
	if err != nil || info.Body != "the body" {
		t.Fatalf("GET after HEAD: %+v err=%v", info, err)
	}
}

func TestModInfoOracle(t *testing.T) {
	web, cache, clock := newRig()
	p := web.Site("h").Page("/p")
	p.Set("v1")
	modTime := clock.Now()
	c := webclient.New(cache)

	if _, _, ok := cache.ModInfo("http://h/p"); ok {
		t.Fatal("oracle answered before any fetch")
	}
	c.Get(context.Background(), "http://h/p")
	mod, cachedAt, ok := cache.ModInfo("http://h/p")
	if !ok || !mod.Equal(modTime) || !cachedAt.Equal(clock.Now()) {
		t.Fatalf("oracle = (%v,%v,%v)", mod, cachedAt, ok)
	}
	// Pages without Last-Modified yield no oracle info.
	dyn := web.Site("h").Page("/cgi")
	dyn.Set("x")
	dyn.SetNoLastModified()
	c.Get(context.Background(), "http://h/cgi")
	if _, _, ok := cache.ModInfo("http://h/cgi"); ok {
		t.Error("oracle answered for page without Last-Modified")
	}
}

func TestLRUEviction(t *testing.T) {
	web, cache, _ := newRig()
	cache.MaxEntries = 3
	for _, p := range []string{"/a", "/b", "/c", "/d"} {
		web.Site("h").Page(p).Set("x" + p)
	}
	c := webclient.New(cache)
	for _, p := range []string{"/a", "/b", "/c"} {
		c.Get(context.Background(), "http://h"+p)
	}
	c.Get(context.Background(), "http://h/a") // refresh /a in the LRU
	c.Get(context.Background(), "http://h/d") // evicts /b
	if cache.Len() != 3 {
		t.Fatalf("len = %d", cache.Len())
	}
	if _, _, ok := cache.ModInfo("http://h/b"); ok {
		t.Error("LRU victim /b still cached")
	}
	if _, _, ok := cache.ModInfo("http://h/a"); !ok {
		t.Error("recently used /a evicted")
	}
}

func TestErrorsPropagateAndCount(t *testing.T) {
	web, cache, _ := newRig()
	s := web.Site("h")
	s.Page("/p").Set("x")
	s.SetDown(true)
	c := webclient.New(cache)
	if _, err := c.Get(context.Background(), "http://h/p"); err == nil {
		t.Fatal("origin error swallowed")
	}
	if cache.Stats().Errors != 1 {
		t.Errorf("stats = %+v", cache.Stats())
	}
}

func TestFlush(t *testing.T) {
	web, cache, _ := newRig()
	web.Site("h").Page("/p").Set("x")
	c := webclient.New(cache)
	c.Get(context.Background(), "http://h/p")
	cache.Flush()
	if cache.Len() != 0 {
		t.Errorf("len after flush = %d", cache.Len())
	}
	web.ResetRequestCounts()
	c.Get(context.Background(), "http://h/p")
	if _, g := web.TotalRequests(); g != 1 {
		t.Errorf("flushed entry not refetched")
	}
}

func TestCentralizationEconomy(t *testing.T) {
	// §2.1: "Centralizing the update checks on a W3 server has the
	// advantage of polling hosts only once regardless of the number of
	// users interested." N users sharing a proxy generate one origin GET.
	web, cache, _ := newRig()
	web.Site("h").Page("/popular").Set("content")
	for u := 0; u < 25; u++ {
		c := webclient.New(cache)
		if _, err := c.Get(context.Background(), "http://h/popular"); err != nil {
			t.Fatal(err)
		}
	}
	if _, g := web.TotalRequests(); g != 1 {
		t.Errorf("origin saw %d GETs for 25 users, want 1", g)
	}
}

func TestRevalidationWith304(t *testing.T) {
	web, cache, clock := newRig()
	p := web.Site("h").Page("/p")
	p.Set("stable body")
	c := webclient.New(cache)
	if _, err := c.Get(context.Background(), "http://h/p"); err != nil {
		t.Fatal(err)
	}
	// TTL expires but the page has not changed: the proxy revalidates
	// with a conditional GET, gets 304, and serves the cached body.
	clock.Advance(cache.TTL + time.Minute)
	info, err := c.Get(context.Background(), "http://h/p")
	if err != nil || info.Body != "stable body" {
		t.Fatalf("revalidated get: %+v err=%v", info, err)
	}
	if s := cache.Stats(); s.Revalidated != 1 {
		t.Errorf("stats = %+v, want 1 revalidation", s)
	}
	// A further fetch within the renewed TTL is a plain hit.
	if _, err := c.Get(context.Background(), "http://h/p"); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 {
		t.Errorf("stats after renewed hit = %+v", s)
	}
}

func TestRevalidationChangedBody(t *testing.T) {
	web, cache, clock := newRig()
	p := web.Site("h").Page("/p")
	p.Set("v1")
	c := webclient.New(cache)
	c.Get(context.Background(), "http://h/p")
	clock.Advance(cache.TTL + time.Minute)
	p.Set("v2") // changed at a later mod time
	info, err := c.Get(context.Background(), "http://h/p")
	if err != nil || info.Body != "v2" {
		t.Fatalf("changed revalidation: %+v err=%v", info, err)
	}
	if s := cache.Stats(); s.Revalidated != 0 {
		t.Errorf("spurious revalidation recorded: %+v", s)
	}
}

func TestClientConditionalPassesThrough(t *testing.T) {
	web, cache, clock := newRig()
	p := web.Site("h").Page("/p")
	p.Set("body")
	mod := clock.Now()
	c := webclient.New(cache)
	c.Get(context.Background(), "http://h/p")
	// A client that already holds the current version gets its own 304
	// through the proxy.
	_, notMod, err := c.GetConditional(context.Background(), "http://h/p", mod.Add(time.Hour))
	_ = notMod
	if err != nil {
		t.Fatal(err)
	}
}
