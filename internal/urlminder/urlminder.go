// Package urlminder implements the URL-minder comparator of §2.1: a
// change-notification service that "runs as a service on the W3 itself
// and sends email when a page changes. Unlike the tools that run on the
// user's host and use the hotlist to determine which URLs to check,
// URL-minder acts on URLs provided explicitly by a user via an HTML
// form. ... URL-minder uses a checksum of the content of a page, so it
// can detect changes in pages that do not provide a Last-Modified date
// ... and checks pages with an arbitrary frequency that is guaranteed to
// be at least as often as some threshold, such as a week."
//
// It exists here as the baseline AIDE is compared against: central like
// AIDE's server-side tracking, but GET+checksum only (no HEAD economy),
// email-only notification (no archived versions, no HtmlDiff — the user
// learns *that* the page changed, never *how*), and form-only
// registration.
package urlminder

import (
	"context"
	"fmt"
	"html"
	"net/http"
	"sort"
	"sync"
	"time"

	"aide/internal/simclock"
	"aide/internal/webclient"
)

// Message is one outgoing notification email.
type Message struct {
	// To is the recipient address.
	To string
	// Subject is the mail subject.
	Subject string
	// Body is the mail text.
	Body string
	// SentAt is when the service generated it.
	SentAt time.Time
}

// Mailer delivers notification email.
type Mailer interface {
	// Send delivers one message.
	Send(m Message) error
}

// Outbox is a Mailer that collects messages, for tests and demos.
type Outbox struct {
	mu       sync.Mutex
	messages []Message
}

// Send implements Mailer.
func (o *Outbox) Send(m Message) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.messages = append(o.messages, m)
	return nil
}

// Messages returns a copy of everything sent.
func (o *Outbox) Messages() []Message {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Message(nil), o.messages...)
}

// SweepStats summarises one service pass.
type SweepStats struct {
	// Due is how many URLs were due for a check.
	Due int
	// Changed is how many checksums differed.
	Changed int
	// Mailed is how many notification emails went out.
	Mailed int
	// Errors counts failed retrievals.
	Errors int
	// Canceled counts due URLs left unchecked because the sweep's
	// context ended first.
	Canceled int
}

// Service is the URL-minder instance.
type Service struct {
	// Client fetches pages.
	Client *webclient.Client
	// Mailer sends notifications.
	Mailer Mailer
	// Clock provides time.
	Clock simclock.Clock
	// CheckInterval is the per-URL check cadence — the paper's "at
	// least as often as some threshold, such as a week".
	CheckInterval time.Duration

	mu    sync.Mutex
	state map[string]*urlState
}

type urlState struct {
	subscribers map[string]bool
	checksum    string
	lastChecked time.Time
}

// New returns a service with a one-week check interval.
func New(client *webclient.Client, mailer Mailer, clock simclock.Clock) *Service {
	if clock == nil {
		clock = simclock.Wall{}
	}
	return &Service{
		Client:        client,
		Mailer:        mailer,
		Clock:         clock,
		CheckInterval: 7 * 24 * time.Hour,
		state:         make(map[string]*urlState),
	}
}

// Register subscribes email to changes of url.
func (s *Service) Register(email, url string) error {
	if email == "" || url == "" {
		return fmt.Errorf("urlminder: need both email and url")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.state[url]
	if !ok {
		st = &urlState{subscribers: make(map[string]bool)}
		s.state[url] = st
	}
	st.subscribers[email] = true
	return nil
}

// Unregister removes a subscription; the URL stops being checked when
// its last subscriber leaves.
func (s *Service) Unregister(email, url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.state[url]
	if !ok {
		return
	}
	delete(st.subscribers, email)
	if len(st.subscribers) == 0 {
		delete(s.state, url)
	}
}

// URLs lists the registered URLs, sorted.
func (s *Service) URLs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	urls := make([]string, 0, len(s.state))
	for u := range s.state {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}

// Sweep checks every registered URL that is due (older than
// CheckInterval since its last check; a never-checked URL is always
// due), comparing content checksums and mailing every subscriber of a
// changed page. The first check records the baseline silently. A done
// ctx stops the pass between URLs; unvisited URLs stay due and are
// counted in Canceled.
func (s *Service) Sweep(ctx context.Context) SweepStats {
	now := s.Clock.Now()
	type job struct {
		url  string
		subs []string
	}
	var jobs []job
	s.mu.Lock()
	for u, st := range s.state {
		if !st.lastChecked.IsZero() && now.Sub(st.lastChecked) < s.CheckInterval {
			continue
		}
		subs := make([]string, 0, len(st.subscribers))
		for e := range st.subscribers {
			subs = append(subs, e)
		}
		sort.Strings(subs)
		jobs = append(jobs, job{url: u, subs: subs})
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].url < jobs[j].url })

	var stats SweepStats
	stats.Due = len(jobs)
	for i, j := range jobs {
		if ctx.Err() != nil {
			stats.Canceled = len(jobs) - i
			break
		}
		info, err := s.Client.Get(ctx, j.url) // always a full GET: checksum strategy
		s.mu.Lock()
		st := s.state[j.url]
		if st == nil {
			s.mu.Unlock()
			continue // unregistered mid-sweep
		}
		st.lastChecked = now
		if err != nil || webclient.Classify(info.Status, nil) != webclient.OK {
			s.mu.Unlock()
			stats.Errors++
			continue
		}
		first := st.checksum == ""
		changed := !first && st.checksum != info.Checksum
		st.checksum = info.Checksum
		s.mu.Unlock()
		if !changed {
			continue
		}
		stats.Changed++
		for _, email := range j.subs {
			m := Message{
				To:      email,
				Subject: "Your URL-minder: change detected",
				Body: fmt.Sprintf("The page you asked us to watch has changed:\n\n    %s\n\n"+
					"We cannot tell you what changed, only that it did.\n", j.url),
				SentAt: now,
			}
			if s.Mailer != nil && s.Mailer.Send(m) == nil {
				stats.Mailed++
			}
		}
	}
	return stats
}

// Handler returns the registration form endpoint — the paper's "URLs
// provided explicitly by a user via an HTML form".
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, `<HTML><BODY><H1>URL-minder</H1>
<FORM ACTION="/register" METHOD="GET">
URL: <INPUT NAME="url" SIZE=60>
Email: <INPUT NAME="email" SIZE=30>
<INPUT TYPE=SUBMIT VALUE="Watch it">
</FORM></BODY></HTML>
`)
	})
	mux.HandleFunc("/register", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if err := s.Register(q.Get("email"), q.Get("url")); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, "<HTML><BODY>Watching %s for %s.</BODY></HTML>\n",
			html.EscapeString(q.Get("url")), html.EscapeString(q.Get("email")))
	})
	return mux
}
