package urlminder

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aide/internal/simclock"
	"aide/internal/webclient"
	"aide/internal/websim"
)

type rig struct {
	web    *websim.Web
	clock  *simclock.Sim
	outbox *Outbox
	svc    *Service
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	outbox := &Outbox{}
	svc := New(webclient.New(web), outbox, clock)
	return &rig{web: web, clock: clock, outbox: outbox, svc: svc}
}

func TestFirstSweepIsBaseline(t *testing.T) {
	r := newRig(t)
	r.web.Site("h").Page("/p").Set("v1")
	r.svc.Register("u@h", "http://h/p")
	stats := r.svc.Sweep(context.Background())
	if stats.Due != 1 || stats.Changed != 0 || stats.Mailed != 0 {
		t.Fatalf("baseline sweep: %+v", stats)
	}
	if len(r.outbox.Messages()) != 0 {
		t.Error("baseline sweep sent mail")
	}
}

func TestChangeTriggersEmail(t *testing.T) {
	r := newRig(t)
	p := r.web.Site("h").Page("/p")
	p.Set("v1")
	r.svc.Register("fred@att.com", "http://h/p")
	r.svc.Register("tom@att.com", "http://h/p")
	r.svc.Sweep(context.Background())

	r.clock.Advance(8 * 24 * time.Hour)
	p.Set("v2")
	stats := r.svc.Sweep(context.Background())
	if stats.Changed != 1 || stats.Mailed != 2 {
		t.Fatalf("change sweep: %+v", stats)
	}
	msgs := r.outbox.Messages()
	if len(msgs) != 2 {
		t.Fatalf("messages = %+v", msgs)
	}
	if !strings.Contains(msgs[0].Body, "http://h/p") {
		t.Errorf("mail body missing URL: %q", msgs[0].Body)
	}
	// The deficiency the paper calls out: the mail says *that*, not *how*.
	if strings.Contains(msgs[0].Body, "v1") || strings.Contains(msgs[0].Body, "v2") {
		t.Errorf("URL-minder mail should not contain content details: %q", msgs[0].Body)
	}
}

func TestChecksumWorksWithoutLastModified(t *testing.T) {
	r := newRig(t)
	p := r.web.Site("h").Page("/cgi")
	p.Set("output 1")
	p.SetNoLastModified()
	r.svc.Register("u@h", "http://h/cgi")
	r.svc.Sweep(context.Background())
	r.clock.Advance(8 * 24 * time.Hour)
	p.Set("output 2")
	if stats := r.svc.Sweep(context.Background()); stats.Changed != 1 {
		t.Fatalf("CGI change missed: %+v", stats)
	}
}

func TestCheckIntervalRespected(t *testing.T) {
	r := newRig(t)
	r.web.Site("h").Page("/p").Set("v1")
	r.svc.Register("u@h", "http://h/p")
	r.svc.Sweep(context.Background())
	r.web.ResetRequestCounts()

	// A sweep a day later does nothing: the URL is not due for a week.
	r.clock.Advance(24 * time.Hour)
	if stats := r.svc.Sweep(context.Background()); stats.Due != 0 {
		t.Fatalf("sweep within interval: %+v", stats)
	}
	if h, g := r.web.TotalRequests(); h+g != 0 {
		t.Errorf("requests within interval: %d", h+g)
	}
	r.clock.Advance(7 * 24 * time.Hour)
	if stats := r.svc.Sweep(context.Background()); stats.Due != 1 {
		t.Fatalf("sweep past interval: %+v", stats)
	}
}

func TestAlwaysFullGET(t *testing.T) {
	// URL-minder's cost model: the checksum strategy always transfers
	// the body, even for pages that do provide Last-Modified.
	r := newRig(t)
	r.web.Site("h").Page("/p").Set("content with last-modified")
	r.svc.Register("u@h", "http://h/p")
	r.svc.Sweep(context.Background())
	h, g := r.web.TotalRequests()
	if h != 0 || g != 1 {
		t.Errorf("requests = (%d HEAD, %d GET), want (0,1)", h, g)
	}
}

func TestUnregisterStopsChecks(t *testing.T) {
	r := newRig(t)
	r.web.Site("h").Page("/p").Set("v1")
	r.svc.Register("u@h", "http://h/p")
	r.svc.Unregister("u@h", "http://h/p")
	if n := len(r.svc.URLs()); n != 0 {
		t.Fatalf("URLs after unregister = %d", n)
	}
	if stats := r.svc.Sweep(context.Background()); stats.Due != 0 {
		t.Fatalf("sweep after unregister: %+v", stats)
	}
}

func TestErrorsCounted(t *testing.T) {
	r := newRig(t)
	s := r.web.Site("h")
	s.Page("/p").Set("x")
	s.SetDown(true)
	r.svc.Register("u@h", "http://h/p")
	if stats := r.svc.Sweep(context.Background()); stats.Errors != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRegistrationValidation(t *testing.T) {
	r := newRig(t)
	if err := r.svc.Register("", "http://h/p"); err == nil {
		t.Error("empty email accepted")
	}
	if err := r.svc.Register("u@h", ""); err == nil {
		t.Error("empty url accepted")
	}
}

func TestFormEndpoint(t *testing.T) {
	r := newRig(t)
	srv := httptest.NewServer(r.svc.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/register?email=u%40h&url=http%3A%2F%2Fh%2Fp")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "Watching") {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	if got := r.svc.URLs(); len(got) != 1 || got[0] != "http://h/p" {
		t.Fatalf("URLs = %v", got)
	}
	resp, err = http.Get(srv.URL + "/register?email=&url=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad register code = %d", resp.StatusCode)
	}
}
