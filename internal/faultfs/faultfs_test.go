package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestNilInjectorPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	var in *Injector
	if err := in.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatalf("nil WriteFile: %v", err)
	}
	data, err := in.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("nil ReadFile = %q, %v", data, err)
	}
	if n := in.Injected(); n != 0 {
		t.Fatalf("nil Injected = %d", n)
	}
}

func TestFaultReadEIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := New(Profile{Seed: 1, ReadErrProb: 1})
	_, err := in.ReadFile(path)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	if in.Injected() == 0 {
		t.Fatal("Injected not counted")
	}
}

func TestFaultWriteENOSPCLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := New(Profile{Seed: 1, WriteErrProb: 1})
	err := in.WriteFile(path, []byte("replacement"), 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "original" {
		t.Fatalf("original clobbered: %q", data)
	}
}

func TestFaultTornWriteKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	full := []byte("0123456789abcdef")
	in := New(Profile{Seed: 7, TornWriteProb: 1})
	if err := in.WriteFile(path, full, 0o644); err != nil {
		t.Fatalf("torn write should not error: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(full) || len(got) < 1 {
		t.Fatalf("torn write kept %d of %d bytes", len(got), len(full))
	}
	if !bytes.HasPrefix(full, got) {
		t.Fatalf("torn result %q is not a prefix of %q", got, full)
	}
}

func TestFaultBitFlipPreservesLength(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	orig := []byte("the quick brown fox jumps over the lazy dog")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	in := New(Profile{Seed: 3, BitFlipProb: 1})
	got, err := in.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("length changed: %d != %d", len(got), len(orig))
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^orig[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("want exactly 1 flipped bit, got %d", diff)
	}
	// The on-disk file is untouched.
	disk, _ := os.ReadFile(path)
	if !bytes.Equal(disk, orig) {
		t.Fatal("bit flip leaked to disk")
	}
}

func TestDeterminism(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("deterministic content here"), 0o644); err != nil {
		t.Fatal(err)
	}
	run := func() []string {
		in := New(Profile{Seed: 42, ReadErrProb: 0.3, BitFlipProb: 0.3})
		var outcomes []string
		for i := 0; i < 50; i++ {
			data, err := in.ReadFile(path)
			switch {
			case err != nil:
				outcomes = append(outcomes, "eio")
			case string(data) != "deterministic content here":
				outcomes = append(outcomes, "flip")
			default:
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at op %d: %s != %s", i, a[i], b[i])
		}
	}
}

func TestPathSubstrFilter(t *testing.T) {
	dir := t.TempDir()
	hot := filepath.Join(dir, "shard-000", "f")
	cold := filepath.Join(dir, "users", "f")
	for _, p := range []string{hot, cold} {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	in := New(Profile{Seed: 1, ReadErrProb: 1, PathSubstr: "shard-000"})
	if _, err := in.ReadFile(cold); err != nil {
		t.Fatalf("filtered path should pass: %v", err)
	}
	if _, err := in.ReadFile(hot); !errors.Is(err, syscall.EIO) {
		t.Fatalf("matching path should fault, got %v", err)
	}
}

func TestFlipBitPreservesSizeAndMtime(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	orig := []byte("some archive content that will rot")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 99); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("size changed: %d != %d", after.Size(), before.Size())
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Fatalf("mtime changed: %v != %v", after.ModTime(), before.ModTime())
	}
	got, _ := os.ReadFile(path)
	if bytes.Equal(got, orig) {
		t.Fatal("content unchanged after FlipBit")
	}
}

func TestTruncatePreservesMtime(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(path)
	if err := Truncate(path, 4); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() != 4 {
		t.Fatalf("size = %d, want 4", after.Size())
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Fatal("mtime changed")
	}
}
