// Package faultfs is a disk-fault injection seam for the snapshot
// store's file operations. Real archives at production scale see every
// failure a disk can produce: ENOSPC mid-write, EIO on a dying sector,
// torn writes after a crash, and silent bit rot that leaves size and
// mtime intact. The durability layer (checksum scrub, failover reads,
// quarantine-and-repair) exists to survive those, so its tests need a
// way to produce them on demand — deterministically, the same way
// websim's chaos profile makes network faults reproducible.
//
// An Injector wraps the basic file operations the facility's durability
// paths use (read, atomic write, rename). A nil *Injector is the
// passthrough: every method works on a nil receiver and performs the
// real operation, so production code carries the seam at zero cost.
// With a Profile installed, a seeded source decides per-operation
// whether to inject:
//
//	EIO on reads        — the read fails with syscall.EIO.
//	Bit flips on reads  — the read "succeeds" but one bit is wrong,
//	                      modelling rot between media and memory.
//	ENOSPC on writes    — the write fails with syscall.ENOSPC and
//	                      leaves the original file untouched (the
//	                      fsatomic contract).
//	Torn writes         — only a prefix of the data reaches the final
//	                      name, modelling a crash mid-replace on a
//	                      filesystem without the rename guarantee.
//
// The package also exports direct-damage helpers (FlipBit, Truncate)
// for tests that want to corrupt a specific file in place — preserving
// size and mtime, the signature of bit rot that defeats stat-based
// validation and forces a full-content checksum scrub to notice.
package faultfs

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"

	"aide/internal/fsatomic"
)

// Profile specifies the fault mix. All probabilities are in [0,1] and
// are drawn from the profile's seeded source, so a fixed operation
// sequence sees the same faults on every run.
type Profile struct {
	// Seed seeds the fault source; the same seed and operation order
	// reproduce the same fault sequence exactly.
	Seed int64
	// ReadErrProb is the probability a ReadFile fails with EIO.
	ReadErrProb float64
	// BitFlipProb is the probability a ReadFile returns data with one
	// bit flipped (position drawn from the same seeded source).
	BitFlipProb float64
	// WriteErrProb is the probability a WriteFile fails with ENOSPC
	// before touching the destination.
	WriteErrProb float64
	// TornWriteProb is the probability a WriteFile persists only a
	// prefix of the data (at least one byte, less than all of it).
	TornWriteProb float64
	// PathSubstr, when non-empty, restricts injection to paths
	// containing the substring; other paths pass through untouched.
	PathSubstr string
}

// Injector applies a fault Profile to file operations. The zero value
// and the nil pointer are both passthroughs. Safe for concurrent use.
type Injector struct {
	mu      sync.Mutex
	profile Profile
	rng     *rand.Rand

	reads, writes, injected int64
}

// New returns an injector applying the given profile.
func New(p Profile) *Injector {
	return &Injector{profile: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// SetProfile replaces the fault profile and reseeds the source.
func (in *Injector) SetProfile(p Profile) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.profile = p
	in.rng = rand.New(rand.NewSource(p.Seed))
}

// Injected reports how many operations had a fault injected.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// roll draws one fault decision for path. kind selects the probability
// pair; it returns the chosen fault ("" = none) plus a positional draw
// for bit flips and torn writes.
func (in *Injector) roll(path string, kinds []string, probs []float64) (fault string, pos float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng == nil {
		in.rng = rand.New(rand.NewSource(in.profile.Seed))
	}
	if in.profile.PathSubstr != "" && !strings.Contains(path, in.profile.PathSubstr) {
		return "", 0
	}
	// Always burn the same number of draws per operation so the fault
	// sequence depends only on operation order, not on prior outcomes.
	p := in.rng.Float64()
	pos = in.rng.Float64()
	acc := 0.0
	for i, kind := range kinds {
		acc += probs[i]
		if p < acc {
			in.injected++
			return kind, pos
		}
	}
	return "", pos
}

// ReadFile reads path, subject to EIO and bit-flip injection.
func (in *Injector) ReadFile(path string) ([]byte, error) {
	if in == nil {
		return os.ReadFile(path)
	}
	in.mu.Lock()
	in.reads++
	pr := in.profile
	in.mu.Unlock()
	fault, pos := in.roll(path, []string{"eio", "bitflip"}, []float64{pr.ReadErrProb, pr.BitFlipProb})
	if fault == "eio" {
		return nil, &os.PathError{Op: "read", Path: path, Err: syscall.EIO}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if fault == "bitflip" && len(data) > 0 {
		flipped := make([]byte, len(data))
		copy(flipped, data)
		bit := int(pos * float64(len(flipped)*8))
		if bit >= len(flipped)*8 {
			bit = len(flipped)*8 - 1
		}
		flipped[bit/8] ^= 1 << (bit % 8)
		return flipped, nil
	}
	return data, nil
}

// WriteFile atomically replaces path with data (via fsatomic), subject
// to ENOSPC and torn-write injection. An injected ENOSPC leaves the
// original file untouched; an injected torn write persists a strict
// prefix — the crash the scrub layer must detect.
func (in *Injector) WriteFile(path string, data []byte, perm os.FileMode) error {
	if in == nil {
		return fsatomic.WriteFile(path, data, perm)
	}
	in.mu.Lock()
	in.writes++
	pr := in.profile
	in.mu.Unlock()
	fault, pos := in.roll(path, []string{"enospc", "torn"}, []float64{pr.WriteErrProb, pr.TornWriteProb})
	switch fault {
	case "enospc":
		return &os.PathError{Op: "write", Path: path, Err: syscall.ENOSPC}
	case "torn":
		if len(data) > 1 {
			keep := 1 + int(pos*float64(len(data)-1))
			if keep >= len(data) {
				keep = len(data) - 1
			}
			data = data[:keep]
		}
	}
	return fsatomic.WriteFile(path, data, perm)
}

// Rename renames oldpath to newpath (no injection: rename is the
// atomicity point the durability layer itself relies on; simulating a
// lost rename is the torn-write fault above).
func (in *Injector) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}

// --- direct damage helpers (tests) ---------------------------------------------

// FlipBit flips one bit of the file at path in place, preserving the
// file's size and restoring its mtime — classic silent bit rot, which
// stat-based validation (size+mtime) cannot see.
func FlipBit(path string, bitOffset int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.Size() == 0 {
		return fmt.Errorf("faultfs: cannot flip a bit in empty %s", path)
	}
	bit := bitOffset % (fi.Size() * 8)
	if bit < 0 {
		bit += fi.Size() * 8
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, bit/8); err != nil {
		return err
	}
	buf[0] ^= 1 << (bit % 8)
	if _, err := f.WriteAt(buf, bit/8); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Restore the mtime so the rot is invisible to stat.
	return os.Chtimes(path, time.Time{}, fi.ModTime())
}

// Truncate cuts the file at path to n bytes in place, restoring its
// mtime — the torn write discovered only after the fact.
func Truncate(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if err := os.Truncate(path, n); err != nil {
		return err
	}
	return os.Chtimes(path, time.Time{}, fi.ModTime())
}
