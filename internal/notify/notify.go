// Package notify implements the notification architecture §3.1 envisions
// as the scalable alternative to polling: "A user who expresses an
// interest in a page, or a browser that is currently caching a page,
// could register an interest in the page with its local caching service.
// The caching service would in turn register an interest with an
// Internet-wide, distributed service that would make a best effort to
// notify the caching service of changes in a timely fashion. ... either
// the content provider notifies the repository of changes, or the
// repository polls it periodically. Either way, there would not be a
// large number of clients polling each interesting HTTP server."
//
// Two pieces:
//
//   - Hub: the Internet-wide service. Content providers push change
//     announcements for their URLs, or the hub polls providers that
//     don't (the "negotiation between the distributed repository and the
//     content provider"). Delivery to subscribers is asynchronous and
//     best-effort: a slow subscriber's queue overflows and drops rather
//     than stalling the hub.
//
//   - Relay: a local caching service's subscription endpoint. It
//     accumulates the modification dates announced by the hub and
//     exposes them through the same ModInfo oracle interface as the
//     proxy-cache daemon, so w3newer consults lazily pushed knowledge
//     exactly as it consults the proxy — no polling at all for pages
//     covered by notifications.
package notify

import (
	"context"
	"sync"
	"time"

	"aide/internal/simclock"
	"aide/internal/webclient"
)

// Notification announces that a URL changed at (or before) ModTime.
type Notification struct {
	// URL is the changed page.
	URL string
	// ModTime is the page's new modification time.
	ModTime time.Time
	// AnnouncedAt is when the hub learned of the change.
	AnnouncedAt time.Time
}

// Subscriber receives notifications. Deliveries are asynchronous; the
// hub never blocks on a subscriber.
type Subscriber interface {
	// Notify delivers one notification. It must not block for long;
	// the hub's per-subscriber queue is bounded.
	Notify(Notification)
}

// HubStats counts hub activity.
type HubStats struct {
	// Announced counts change announcements accepted (pushed or
	// discovered by polling).
	Announced int
	// Delivered counts notifications handed to subscribers.
	Delivered int
	// Dropped counts notifications discarded because a subscriber's
	// queue was full (best-effort delivery).
	Dropped int
	// Polled counts provider polls performed by PollSweep.
	Polled int
}

// Hub is the distributed notification service (one node of it; the
// paper's Harvest-style replication is out of scope, the interface is
// the point).
type Hub struct {
	clock simclock.Clock
	// QueueSize bounds each subscriber's pending deliveries.
	QueueSize int

	mu        sync.Mutex
	interests map[string][]*subscription // URL -> subscribers
	lastMod   map[string]time.Time       // URL -> last announced mod time
	polled    map[string]bool            // URLs the hub polls itself
	stats     HubStats
	closed    bool
}

// subscription is one subscriber's bounded delivery queue.
type subscription struct {
	sub   Subscriber
	queue chan Notification
	done  chan struct{}
}

// NewHub returns a hub on the given clock (wall clock if nil).
func NewHub(clock simclock.Clock) *Hub {
	if clock == nil {
		clock = simclock.Wall{}
	}
	return &Hub{
		clock:     clock,
		QueueSize: 64,
		interests: make(map[string][]*subscription),
		lastMod:   make(map[string]time.Time),
		polled:    make(map[string]bool),
	}
}

// Subscribe registers interest in url on behalf of sub. The poll flag
// asks the hub to poll the provider itself during PollSweep (for
// providers that never push).
func (h *Hub) Subscribe(url string, sub Subscriber, poll bool) {
	s := &subscription{
		sub:   sub,
		queue: make(chan Notification, h.QueueSize),
		done:  make(chan struct{}),
	}
	go func() {
		for n := range s.queue {
			s.sub.Notify(n)
		}
		close(s.done)
	}()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.interests[url] = append(h.interests[url], s)
	if poll {
		h.polled[url] = true
	}
}

// Announce is the content-provider push path: the provider tells the
// repository its page changed.
func (h *Hub) Announce(url string, mod time.Time) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if last, ok := h.lastMod[url]; ok && !mod.After(last) {
		h.mu.Unlock()
		return // stale or duplicate announcement
	}
	h.lastMod[url] = mod
	h.stats.Announced++
	n := Notification{URL: url, ModTime: mod, AnnouncedAt: h.clock.Now()}
	subs := append([]*subscription(nil), h.interests[url]...)
	for _, s := range subs {
		select {
		case s.queue <- n:
			h.stats.Delivered++
		default:
			h.stats.Dropped++ // best effort: never block the hub
		}
	}
	h.mu.Unlock()
}

// PollSweep is the repository-polls-the-provider path: one pass over the
// URLs marked for polling, issuing HEAD requests and announcing any
// newer modification dates. Each URL costs one request regardless of
// subscriber count. A done ctx ends the pass between URLs.
func (h *Hub) PollSweep(ctx context.Context, client *webclient.Client) {
	h.mu.Lock()
	urls := make([]string, 0, len(h.polled))
	for u := range h.polled {
		urls = append(urls, u)
	}
	h.mu.Unlock()
	for _, u := range urls {
		if ctx.Err() != nil {
			return
		}
		info, err := client.Head(ctx, u)
		h.mu.Lock()
		h.stats.Polled++
		h.mu.Unlock()
		if err != nil || !info.HasLastModified {
			continue
		}
		h.Announce(u, info.LastModified)
	}
}

// Stats returns a snapshot of the counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Close stops accepting announcements and drains subscriber queues.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	var subs []*subscription
	for _, list := range h.interests {
		subs = append(subs, list...)
	}
	h.interests = make(map[string][]*subscription)
	h.mu.Unlock()
	for _, s := range subs {
		close(s.queue)
		<-s.done
	}
}

// Relay is the local caching service's end of the protocol: it receives
// notifications and remembers the freshest modification date per URL.
// It implements the tracker's ModOracle, so w3newer treats lazily pushed
// knowledge exactly like proxy-cache knowledge.
type Relay struct {
	clock simclock.Clock

	mu      sync.Mutex
	entries map[string]relayEntry
	// received counts notifications accepted.
	received int
}

type relayEntry struct {
	mod        time.Time
	receivedAt time.Time
}

// NewRelay returns an empty relay on the given clock (wall if nil).
func NewRelay(clock simclock.Clock) *Relay {
	if clock == nil {
		clock = simclock.Wall{}
	}
	return &Relay{clock: clock, entries: make(map[string]relayEntry)}
}

// Notify implements Subscriber.
func (r *Relay) Notify(n Notification) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[n.URL]; ok && !n.ModTime.After(e.mod) {
		return
	}
	r.entries[n.URL] = relayEntry{mod: n.ModTime, receivedAt: r.clock.Now()}
	r.received++
}

// ModInfo implements the tracker.ModOracle interface: the freshest
// notified modification date and when it arrived.
func (r *Relay) ModInfo(url string) (lastMod, cachedAt time.Time, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, found := r.entries[url]
	if !found {
		return time.Time{}, time.Time{}, false
	}
	return e.mod, e.receivedAt, true
}

// Received reports how many notifications the relay has accepted.
func (r *Relay) Received() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.received
}
