package notify

import (
	"context"
	"sync"
	"testing"
	"time"

	"aide/internal/hotlist"
	"aide/internal/simclock"
	"aide/internal/tracker"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestProviderPushReachesRelay(t *testing.T) {
	clock := simclock.New(time.Time{})
	hub := NewHub(clock)
	defer hub.Close()
	relay := NewRelay(clock)
	hub.Subscribe("http://h/p", relay, false)

	mod := clock.Now()
	hub.Announce("http://h/p", mod)
	waitFor(t, func() bool { return relay.Received() == 1 })

	got, at, ok := relay.ModInfo("http://h/p")
	if !ok || !got.Equal(mod) || at.IsZero() {
		t.Fatalf("ModInfo = (%v,%v,%v)", got, at, ok)
	}
}

func TestDuplicateAndStaleAnnouncementsSuppressed(t *testing.T) {
	clock := simclock.New(time.Time{})
	hub := NewHub(clock)
	defer hub.Close()
	relay := NewRelay(clock)
	hub.Subscribe("http://h/p", relay, false)

	mod := clock.Now()
	hub.Announce("http://h/p", mod)
	hub.Announce("http://h/p", mod)                 // duplicate
	hub.Announce("http://h/p", mod.Add(-time.Hour)) // stale
	waitFor(t, func() bool { return relay.Received() >= 1 })
	time.Sleep(10 * time.Millisecond)
	if n := relay.Received(); n != 1 {
		t.Errorf("relay received %d notifications, want 1", n)
	}
	if s := hub.Stats(); s.Announced != 1 {
		t.Errorf("hub stats = %+v", s)
	}
}

func TestMultipleSubscribersOneAnnouncement(t *testing.T) {
	clock := simclock.New(time.Time{})
	hub := NewHub(clock)
	defer hub.Close()
	relays := make([]*Relay, 5)
	for i := range relays {
		relays[i] = NewRelay(clock)
		hub.Subscribe("http://h/p", relays[i], false)
	}
	hub.Announce("http://h/p", clock.Now())
	for i, r := range relays {
		rr := r
		waitFor(t, func() bool { return rr.Received() == 1 })
		_ = i
	}
	if s := hub.Stats(); s.Delivered != 5 {
		t.Errorf("delivered = %d, want 5", s.Delivered)
	}
}

// blockingSubscriber never returns from Notify, to exercise the
// best-effort overflow path.
type blockingSubscriber struct{ block chan struct{} }

func (b *blockingSubscriber) Notify(Notification) { <-b.block }

func TestBestEffortDropsOnOverflow(t *testing.T) {
	clock := simclock.New(time.Time{})
	hub := NewHub(clock)
	hub.QueueSize = 2
	blocker := &blockingSubscriber{block: make(chan struct{})}
	hub.Subscribe("http://h/p", blocker, false)

	// One in-flight + two queued fit; further announcements must drop
	// rather than stall.
	for i := 0; i < 10; i++ {
		hub.Announce("http://h/p", clock.Now().Add(time.Duration(i+1)*time.Minute))
	}
	if s := hub.Stats(); s.Dropped == 0 {
		t.Errorf("no drops despite blocked subscriber: %+v", s)
	}
	close(blocker.block)
	hub.Close()
}

func TestPollSweepDiscoversChanges(t *testing.T) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	p := web.Site("h").Page("/p")
	p.Set("v1")
	client := webclient.New(web)

	hub := NewHub(clock)
	defer hub.Close()
	relay := NewRelay(clock)
	// This provider never pushes; the hub polls it.
	hub.Subscribe("http://h/p", relay, true)

	hub.PollSweep(context.Background(), client)
	waitFor(t, func() bool { return relay.Received() == 1 })

	// No change: the sweep polls but announces nothing new.
	hub.PollSweep(context.Background(), client)
	time.Sleep(5 * time.Millisecond)
	if relay.Received() != 1 {
		t.Errorf("unchanged page re-announced")
	}
	// Change: the next sweep discovers and announces it.
	web.Advance(24 * time.Hour)
	p.Set("v2")
	hub.PollSweep(context.Background(), client)
	waitFor(t, func() bool { return relay.Received() == 2 })
	if s := hub.Stats(); s.Polled != 3 {
		t.Errorf("polled = %d, want 3", s.Polled)
	}
}

// TestTrackerConsumesRelay is the §3.1 integration: with a relay as the
// tracker's oracle, a pushed change is reported without any polling.
func TestTrackerConsumesRelay(t *testing.T) {
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	p := web.Site("h").Page("/p")
	p.Set("v1")

	hist := hotlist.NewHistory()
	hist.Visit("http://h/p", clock.Now().Add(time.Hour)) // user saw v1

	hub := NewHub(clock)
	defer hub.Close()
	relay := NewRelay(clock)
	hub.Subscribe("http://h/p", relay, false)

	cfg, _ := w3config.ParseString("Default 2d\n")
	tr := tracker.New(webclient.New(web), cfg, hist, clock)
	tr.Proxy = relay // the relay speaks the same oracle protocol

	// The provider pushes a change three days later.
	web.Advance(72 * time.Hour)
	p.Set("v2")
	hub.Announce("http://h/p", clock.Now())
	waitFor(t, func() bool { return relay.Received() == 1 })

	web.ResetRequestCounts()
	rs := tr.Run(context.Background(), []hotlist.Entry{{URL: "http://h/p", Title: "P"}})
	if rs[0].Status != tracker.Changed || rs[0].Via != "proxy" {
		t.Fatalf("result = %+v", rs[0])
	}
	if h, g := web.TotalRequests(); h+g != 0 {
		t.Errorf("notified change still polled the origin: %d requests", h+g)
	}
}

func TestRelayConcurrent(t *testing.T) {
	clock := simclock.New(time.Time{})
	relay := NewRelay(clock)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				relay.Notify(Notification{URL: "http://h/p", ModTime: time.Unix(int64(i*1000+j), 0)})
				relay.ModInfo("http://h/p")
			}
		}(i)
	}
	wg.Wait()
	if _, _, ok := relay.ModInfo("http://h/p"); !ok {
		t.Error("entry lost")
	}
}

func TestCloseIdempotentAndAnnounceAfterClose(t *testing.T) {
	hub := NewHub(simclock.New(time.Time{}))
	relay := NewRelay(nil)
	hub.Subscribe("http://h/p", relay, false)
	hub.Close()
	hub.Close() // must not panic
	hub.Announce("http://h/p", time.Now())
	if s := hub.Stats(); s.Announced != 0 {
		t.Errorf("announcement accepted after close: %+v", s)
	}
}
