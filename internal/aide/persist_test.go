package aide

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestStatePersistenceAcrossRestart(t *testing.T) {
	r := newRig(t, "Default 2d\n")
	p := r.web.Site("h").Page("/p")
	p.Set("v1\n")
	r.srv.Register(userA, Registration{URL: "http://h/p", Title: "Page P"})
	r.srv.AddFixed("http://h/fixed", Registration{}.Title)
	r.web.Site("h").Page("/fixed").Set("f1\n")
	r.srv.TrackAll(context.Background())

	path := filepath.Join(t.TempDir(), "aide-state.json")
	if err := r.srv.SaveState(path); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same facility and web.
	srv2 := NewServer(r.fac, r.srv.Client, r.srv.Config, r.clock)
	if err := srv2.LoadState(path); err != nil {
		t.Fatal(err)
	}
	regs := srv2.Registrations(userA)
	if len(regs) != 1 || regs[0].Title != "Page P" {
		t.Fatalf("restored registrations = %+v", regs)
	}
	total, _ := srv2.TrackedCount()
	if total != 2 {
		t.Fatalf("restored tracked URLs = %d", total)
	}
	// The threshold state survived: an immediate sweep skips everything.
	r.web.ResetRequestCounts()
	stats := srv2.TrackAll(context.Background())
	if stats.Checked != 0 || stats.Skipped != 2 {
		t.Fatalf("post-restore sweep: %+v", stats)
	}
	// Past the threshold, sweeps resume and change detection continues
	// from the restored checksums/dates (no spurious "new version").
	r.web.Advance(3 * 24 * time.Hour)
	stats = srv2.TrackAll(context.Background())
	if stats.Checked != 2 || stats.NewVersions != 0 {
		t.Fatalf("resumed sweep: %+v", stats)
	}
}

func TestLoadStateMissingAndCorrupt(t *testing.T) {
	r := newRig(t, "Default 0\n")
	if err := r.srv.LoadState(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatalf("missing state file: %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if err := r.srv.LoadState(bad); err == nil {
		t.Fatal("corrupt state accepted")
	}
}
