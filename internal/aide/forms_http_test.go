package aide

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"aide/internal/formreg"
	"aide/internal/snapshot"
)

// newTestServer serves h for the duration of the test.
func newTestServer(t *testing.T, h http.Handler) string {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts.URL
}

// readBody drains and closes a response body.
func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// formRig is httpRig plus an enabled form registry and a POST service.
func formRig(t *testing.T) (*rig, string) {
	t.Helper()
	r := newRig(t, "Default 0\n")
	reg, err := formreg.New("")
	if err != nil {
		t.Fatal(err)
	}
	r.srv.Forms = reg
	r.fac.Forms = reg
	r.web.Site("svc.example").Page("/lookup").SetForm(func(form url.Values, n int) string {
		return "<P>answer for " + form.Get("q") + "</P>"
	})
	snap := snapshot.NewServer(r.fac)
	snap.KeepaliveInterval = 0
	ts := newTestServer(t, r.srv.Handler(snap))
	return r, ts
}

func TestFormEndpointsOverHTTP(t *testing.T) {
	r, base := formRig(t)

	// Save a filled-out form; the reserved fields configure it and the
	// rest become stored service input.
	resp, err := http.PostForm(base+"/form/save", url.Values{
		"action": {"http://svc.example/lookup"},
		"title":  {"My saved search"},
		"user":   {userA},
		"q":      {"file systems"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != 200 || !strings.Contains(body, "form:") {
		t.Fatalf("form/save: %d\n%s", resp.StatusCode, body)
	}
	// The save auto-registered the pseudo-URL for the user.
	regs := r.srv.Registrations(userA)
	if len(regs) != 1 || !strings.HasPrefix(regs[0].URL, "form:") {
		t.Fatalf("registrations = %+v", regs)
	}

	// The list shows it; invoke executes it.
	code, body2 := fetch(t, base+"/form/list")
	if code != 200 || !strings.Contains(body2, "My saved search") {
		t.Fatalf("form/list: %d\n%s", code, body2)
	}
	id := strings.TrimPrefix(regs[0].URL, "form:")
	code, body2 = fetch(t, base+"/form/invoke?id="+id)
	if code != 200 || !strings.Contains(body2, "answer for file systems") {
		t.Fatalf("form/invoke: %d\n%s", code, body2)
	}

	// A sweep archives the output; the report covers the pseudo-URL.
	if stats := r.srv.TrackAll(context.Background()); stats.NewVersions != 1 {
		t.Fatalf("sweep: %+v", stats)
	}
	code, body2 = fetch(t, base+"/report?user="+url.QueryEscape(userA))
	if code != 200 || !strings.Contains(body2, "My saved search") {
		t.Fatalf("report: %d\n%s", code, body2)
	}
}

func TestFormEndpointsDisabled(t *testing.T) {
	r := newRig(t, "Default 0\n")
	ts := newTestServer(t, r.srv.Handler(nil))
	for _, path := range []string{"/form/save", "/form/list", "/form/invoke"} {
		code, _ := fetch(t, ts+path)
		if code != http.StatusNotImplemented {
			t.Errorf("%s without registry: code = %d", path, code)
		}
	}
}

func TestFormSaveValidation(t *testing.T) {
	_, base := formRig(t)
	resp, err := http.PostForm(base+"/form/save", url.Values{"q": {"x"}}) // no action
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("save without action: %d", resp.StatusCode)
	}
	code, _ := fetch(t, base+"/form/invoke") // no id
	if code != 400 {
		t.Errorf("invoke without id: %d", code)
	}
	code, _ = fetch(t, base+"/form/invoke?id=nope")
	if code != 404 {
		t.Errorf("invoke unknown id: %d", code)
	}
}
