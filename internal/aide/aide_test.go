package aide

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"aide/internal/simclock"
	"aide/internal/snapshot"
	"aide/internal/w3config"
	"aide/internal/webclient"
	"aide/internal/websim"
)

const (
	userA = "douglis@research.att.com"
	userB = "tball@research.att.com"
)

type rig struct {
	web   *websim.Web
	clock *simclock.Sim
	fac   *snapshot.Facility
	srv   *Server
}

func newRig(t *testing.T, cfgSrc string) *rig {
	t.Helper()
	clock := simclock.New(time.Time{})
	web := websim.New(clock)
	client := webclient.New(web)
	fac, err := snapshot.New(t.TempDir(), client, clock)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := w3config.ParseString(cfgSrc)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{web: web, clock: clock, fac: fac, srv: NewServer(fac, client, cfg, clock)}
}

func TestSharedURLCheckedOnce(t *testing.T) {
	// §8.3: "Regardless of how many users have registered an interest in
	// a page, it need only be checked once."
	r := newRig(t, "Default 0\n")
	r.web.Site("h").Page("/popular").Set("content v1\n")
	for u := 0; u < 50; u++ {
		r.srv.Register(fmt.Sprintf("user%d@att.com", u), Registration{URL: "http://h/popular"})
	}
	stats := r.srv.TrackAll(context.Background())
	if stats.Checked != 1 {
		t.Fatalf("checked = %d, want 1 for 50 users", stats.Checked)
	}
	heads, gets := r.web.TotalRequests()
	if heads+gets > 2 { // one HEAD + one GET for the initial archive
		t.Errorf("origin saw %d requests for 50 users", heads+gets)
	}
}

func TestAutoArchiveOnChange(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p := r.web.Site("h").Page("/p")
	p.Set("v1\n")
	r.srv.Register(userA, Registration{URL: "http://h/p", Title: "Page P"})

	stats := r.srv.TrackAll(context.Background())
	if stats.NewVersions != 1 {
		t.Fatalf("first sweep: %+v", stats)
	}
	// No change: no new version, still checked.
	stats = r.srv.TrackAll(context.Background())
	if stats.NewVersions != 0 || stats.Checked != 1 {
		t.Fatalf("no-change sweep: %+v", stats)
	}
	// Page changes: auto-archived.
	r.web.Advance(24 * time.Hour)
	p.Set("v2\n")
	stats = r.srv.TrackAll(context.Background())
	if stats.NewVersions != 1 {
		t.Fatalf("change sweep: %+v", stats)
	}
	revs, _, err := r.fac.History("", "http://h/p")
	if err != nil || len(revs) != 2 {
		t.Fatalf("archive revisions = %d err=%v", len(revs), err)
	}
}

func TestThresholdSuppressesSweepChecks(t *testing.T) {
	r := newRig(t, "Default 2d\n")
	r.web.Site("h").Page("/p").Set("v1\n")
	r.srv.Register(userA, Registration{URL: "http://h/p"})
	r.srv.TrackAll(context.Background())
	r.web.ResetRequestCounts()

	// One hour later: within the 2d threshold — skipped.
	r.web.Advance(time.Hour)
	stats := r.srv.TrackAll(context.Background())
	if stats.Skipped != 1 || stats.Checked != 0 {
		t.Fatalf("within threshold: %+v", stats)
	}
	if h, g := r.web.TotalRequests(); h+g != 0 {
		t.Errorf("requests issued within threshold: %d", h+g)
	}
	// Three days later: checked again.
	r.web.Advance(72 * time.Hour)
	stats = r.srv.TrackAll(context.Background())
	if stats.Checked != 1 {
		t.Fatalf("past threshold: %+v", stats)
	}
}

func TestPerUserReportAgainstSharedState(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p := r.web.Site("h").Page("/p")
	p.Set("v1\n")
	r.srv.Register(userA, Registration{URL: "http://h/p", Title: "P"})
	r.srv.Register(userB, Registration{URL: "http://h/p", Title: "P"})
	r.srv.TrackAll(context.Background())

	// Neither user has seen anything yet: both see "changed".
	rowsA := r.srv.ReportFor(userA)
	if len(rowsA) != 1 || !rowsA[0].Changed || rowsA[0].HeadRev != "1.1" {
		t.Fatalf("user A rows = %+v", rowsA)
	}

	// A catches up; B does not.
	if err := r.srv.MarkSeen(context.Background(), userA, "http://h/p"); err != nil {
		t.Fatal(err)
	}
	rowsA = r.srv.ReportFor(userA)
	if rowsA[0].Changed || rowsA[0].SeenRev != "1.1" {
		t.Fatalf("user A after seen: %+v", rowsA[0])
	}
	rowsB := r.srv.ReportFor(userB)
	if !rowsB[0].Changed {
		t.Fatalf("user B: %+v", rowsB[0])
	}

	// The page changes and is re-archived: A is behind again.
	r.web.Advance(time.Hour)
	p.Set("v2\n")
	r.srv.TrackAll(context.Background())
	rowsA = r.srv.ReportFor(userA)
	if !rowsA[0].Changed || rowsA[0].SeenRev != "1.1" || rowsA[0].HeadRev != "1.2" {
		t.Fatalf("user A after new version: %+v", rowsA[0])
	}
}

func TestMarkSeenWithoutArchiveErrors(t *testing.T) {
	r := newRig(t, "Default 0\n")
	if err := r.srv.MarkSeen(context.Background(), userA, "http://h/never-archived"); err == nil {
		t.Fatal("MarkSeen on unarchived URL succeeded")
	}
}

func TestSweepErrorsRecorded(t *testing.T) {
	r := newRig(t, "Default 0\n")
	s := r.web.Site("h")
	s.Page("/p").Set("x\n")
	s.SetDown(true)
	r.srv.Register(userA, Registration{URL: "http://h/p", Title: "P"})
	stats := r.srv.TrackAll(context.Background())
	if stats.Errors != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	rows := r.srv.ReportFor(userA)
	if rows[0].Err == nil {
		t.Fatalf("row error missing: %+v", rows[0])
	}
	// Recovery clears the error.
	s.SetDown(false)
	r.srv.TrackAll(context.Background())
	rows = r.srv.ReportFor(userA)
	if rows[0].Err != nil {
		t.Fatalf("error not cleared: %+v", rows[0])
	}
}

func TestChecksumPagesTracked(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p := r.web.Site("h").Page("/cgi")
	p.Set("result A\n")
	p.SetNoLastModified()
	r.srv.Register(userA, Registration{URL: "http://h/cgi"})

	if stats := r.srv.TrackAll(context.Background()); stats.NewVersions != 1 {
		t.Fatalf("first sweep: %+v", stats)
	}
	if stats := r.srv.TrackAll(context.Background()); stats.NewVersions != 0 {
		t.Fatalf("unchanged sweep: %+v", stats)
	}
	p.Set("result B\n")
	if stats := r.srv.TrackAll(context.Background()); stats.NewVersions != 1 {
		t.Fatalf("changed sweep: %+v", stats)
	}
}

func TestRecursiveTrackingOneHop(t *testing.T) {
	r := newRig(t, "Default 0\n")
	s := r.web.Site("h")
	s.Page("/home").Set(`<HTML><BODY>
<A HREF="/projects.html">Projects</A>
<A HREF="people.html">People</A>
<A HREF="http://other.example/ext.html">External</A>
<A HREF="#top">Fragment</A>
</BODY></HTML>
`)
	s.Page("/projects.html").Set("<P>projects v1</P>\n")
	s.Page("/people.html").Set("<P>people v1</P>\n")
	r.web.Site("other.example").Page("/ext.html").Set("ext\n")

	r.srv.Register(userA, Registration{URL: "http://h/home", Recursive: true})
	stats := r.srv.TrackAll(context.Background())
	if stats.Discovered != 2 {
		t.Fatalf("discovered = %d, want 2 (same-host only): %+v", stats.Discovered, stats)
	}
	// The discovered pages are themselves tracked on the next sweep.
	stats = r.srv.TrackAll(context.Background())
	if stats.Checked != 3 {
		t.Fatalf("second sweep checked = %d, want 3", stats.Checked)
	}
	total, derived := r.srv.TrackedCount()
	if total != 3 || derived != 2 {
		t.Fatalf("tracked = (%d,%d)", total, derived)
	}
	// A change in a discovered page is archived automatically.
	r.web.Advance(time.Hour)
	s.Page("/projects.html").Set("<P>projects v2</P>\n")
	stats = r.srv.TrackAll(context.Background())
	if stats.NewVersions != 1 {
		t.Fatalf("derived change sweep: %+v", stats)
	}
}

func TestFixedPagesWhatsNew(t *testing.T) {
	r := newRig(t, "Default 0\n")
	p1 := r.web.Site("h").Page("/fixed1")
	p2 := r.web.Site("h").Page("/fixed2")
	p1.Set("f1 v1\n")
	p2.Set("f2 v1\n")
	r.srv.AddFixed("http://h/fixed1", "Fixed One")
	r.srv.AddFixed("http://h/fixed2", "Fixed Two")
	r.srv.TrackAll(context.Background())

	r.web.Advance(24 * time.Hour)
	p2.Set("f2 v2\n")
	r.srv.TrackAll(context.Background())

	changes := r.srv.FixedChanges()
	if len(changes) != 2 {
		t.Fatalf("changes = %+v", changes)
	}
	// Newest first: fixed2 changed later.
	if changes[0].URL != "http://h/fixed2" || changes[0].Rev != "1.2" {
		t.Fatalf("order/rev wrong: %+v", changes)
	}
	html := r.srv.WhatsNewHTML()
	for _, want := range []string{"Fixed Two", "what changed", "r1=1.1&r2=1.2", "history"} {
		if !strings.Contains(html, want) {
			t.Errorf("what's-new missing %q:\n%s", want, html)
		}
	}
}

func TestReportHTMLShape(t *testing.T) {
	r := newRig(t, "Default 0\n")
	r.web.Site("h").Page("/p").Set("v1\n")
	r.srv.Register(userA, Registration{URL: "http://h/p", Title: "The Page"})
	r.srv.TrackAll(context.Background())
	html := r.srv.ReportHTML(userA)
	for _, want := range []string{
		"The Page", "1 of 1 tracked pages",
		"/remember?", "/diff?", "/history?",
		"<B>Changed</B>", "you have seen none",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q:\n%s", want, html)
		}
	}
}

func TestPreviousRev(t *testing.T) {
	cases := map[string]string{"1.2": "1.1", "1.10": "1.9", "1.1": "", "bogus": ""}
	for in, want := range cases {
		if got := previousRev(in); got != want {
			t.Errorf("previousRev(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegisterUpdatesExisting(t *testing.T) {
	r := newRig(t, "Default 0\n")
	r.srv.Register(userA, Registration{URL: "http://h/p", Title: "Old"})
	r.srv.Register(userA, Registration{URL: "http://h/p", Title: "New", Recursive: true})
	regs := r.srv.Registrations(userA)
	if len(regs) != 1 || regs[0].Title != "New" || !regs[0].Recursive {
		t.Fatalf("regs = %+v", regs)
	}
	if users := r.srv.Users(); len(users) != 1 || users[0] != userA {
		t.Fatalf("users = %v", users)
	}
}
