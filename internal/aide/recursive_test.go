package aide

import (
	"context"
	"net/url"
	"strings"
	"testing"
	"time"

	"aide/internal/formreg"
)

// vlibRig builds a virtual-library root with three same-host children
// and one external link, registers it recursively, and runs a sweep.
func vlibRig(t *testing.T) *rig {
	t.Helper()
	r := newRig(t, "Default 0\n")
	s := r.web.Site("vlib")
	s.Page("/index").Set(`<HTML><BODY><H1>Index</H1>
<UL>
<LI><A HREF="/a.html">Topic A</A>
<LI><A HREF="/b.html">Topic B</A>
<LI><A HREF="http://elsewhere/x">External</A>
</UL></BODY></HTML>`)
	s.Page("/a.html").Set("<P>topic a version one content here.</P>")
	s.Page("/b.html").Set("<P>topic b version one content here.</P>")
	r.web.Site("elsewhere").Page("/x").Set("ext")
	r.srv.Register(userA, Registration{URL: "http://vlib/index", Recursive: true})
	r.srv.TrackAll(context.Background()) // archives index, discovers children
	r.srv.TrackAll(context.Background()) // archives children
	return r
}

func TestDiffRecursive(t *testing.T) {
	r := vlibRig(t)
	// The user catches up on the root and topic A.
	if err := r.srv.MarkSeen(context.Background(), userA, "http://vlib/index"); err != nil {
		t.Fatal(err)
	}
	if err := r.srv.MarkSeen(context.Background(), userA, "http://vlib/a.html"); err != nil {
		t.Fatal(err)
	}
	// Topic A changes; topic B gets a second version too.
	r.web.Advance(24 * time.Hour)
	r.web.Site("vlib").Page("/a.html").Set("<P>topic a version one content here. Plus a brand new sentence.</P>")
	r.web.Site("vlib").Page("/b.html").Set("<P>topic b version two content here.</P>")
	r.srv.TrackAll(context.Background())

	rd, err := r.srv.DiffRecursive(context.Background(), userA, "http://vlib/index")
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Children) != 2 {
		t.Fatalf("children = %+v", rd.Children)
	}
	// Root itself unchanged.
	if rd.Root.Stats.Changed() {
		t.Errorf("root reported changed: %+v", rd.Root.Stats)
	}
	byURL := map[string]ChildDiff{}
	for _, c := range rd.Children {
		byURL[c.URL] = c
	}
	a := byURL["http://vlib/a.html"]
	if a.Skipped != "" || !a.Diff.Stats.Changed() || a.Diff.OldRev != "1.1" {
		t.Errorf("child a = %+v", a)
	}
	// Topic B was never saved by the user: the newest archived pair is
	// used instead.
	b := byURL["http://vlib/b.html"]
	if b.Skipped != "" || !b.Diff.Stats.Changed() || b.Diff.NewRev != "1.2" {
		t.Errorf("child b = %+v", b)
	}
	if rd.ChangedChildren() != 2 {
		t.Errorf("changed children = %d", rd.ChangedChildren())
	}
}

func TestRecursiveDiffHTMLRendering(t *testing.T) {
	r := vlibRig(t)
	r.srv.MarkSeen(context.Background(), userA, "http://vlib/index")
	r.web.Advance(time.Hour)
	r.web.Site("vlib").Page("/a.html").Set("<P>topic a reworded content lives here.</P>")
	r.srv.TrackAll(context.Background())

	out, err := r.srv.RecursiveDiffHTML(context.Background(), userA, "http://vlib/index")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pages it references",
		"Referenced: <A HREF=\"http://vlib/a.html\">",
		"Referenced: <A HREF=\"http://vlib/b.html\">",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("recursive HTML missing %q", want)
		}
	}
	// The external link may appear inside the root page's own rendering,
	// but it must not get a "Referenced:" section of its own.
	if strings.Contains(out, `Referenced: <A HREF="http://elsewhere/x">`) {
		t.Error("external link followed by recursive diff")
	}
}

func TestDiffRecursiveNeverSavedRoot(t *testing.T) {
	r := vlibRig(t)
	if _, err := r.srv.DiffRecursive(context.Background(), "stranger@h", "http://vlib/index"); err == nil {
		t.Error("recursive diff for user who never saved the root succeeded")
	}
}

func TestFormTrackingServerSide(t *testing.T) {
	r := newRig(t, "Default 0\n")
	flip := false
	page := r.web.Site("svc").Page("/report")
	page.SetForm(func(form url.Values, n int) string {
		if flip {
			return "<P>report B for " + form.Get("q") + "</P>"
		}
		return "<P>report A for " + form.Get("q") + "</P>"
	})
	reg, err := formreg.New("")
	if err != nil {
		t.Fatal(err)
	}
	r.srv.Forms = reg
	r.srv.Facility.Forms = reg
	saved, err := reg.Save("weekly report", "http://svc/report", url.Values{"q": {"weekly"}})
	if err != nil {
		t.Fatal(err)
	}
	r.srv.Register(userA, Registration{URL: saved.PseudoURL(), Title: "Weekly report"})

	stats := r.srv.TrackAll(context.Background())
	if stats.NewVersions != 1 || stats.Errors != 0 {
		t.Fatalf("first sweep: %+v", stats)
	}
	// Unchanged output: no new version.
	if stats := r.srv.TrackAll(context.Background()); stats.NewVersions != 0 {
		t.Fatalf("unchanged sweep: %+v", stats)
	}
	// Output changes: archived, and the user's report flags it.
	flip = true
	if stats := r.srv.TrackAll(context.Background()); stats.NewVersions != 1 {
		t.Fatalf("changed sweep: %+v", stats)
	}
	rows := r.srv.ReportFor(userA)
	if len(rows) != 1 || !rows[0].Changed || rows[0].HeadRev != "1.2" {
		t.Fatalf("rows = %+v", rows)
	}
	// The archived output is diffable like any page.
	d, err := r.srv.Facility.DiffRevs(saved.PseudoURL(), "1.1", "1.2")
	if err != nil || !d.Stats.Changed() {
		t.Fatalf("form diff: %+v err=%v", d, err)
	}
}
